package repro

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/davclient"
	"repro/internal/davproto"
	"repro/internal/experiments"
	"repro/internal/migrate"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/tools"
)

// TestGrandTour is the end-to-end integration test: it walks the whole
// story the paper tells, across every module.
//
//  1. A legacy Ecce 1.5 repository is populated in the OODB.
//  2. The repository is migrated to the DAV architecture and verified.
//  3. The unchanged Ecce tools work on the migrated data.
//  4. A third-party agent discovers and annotates molecules by
//     metadata (DASL search under the hood).
//  5. An old-schema OODB client is refused (the coupling DAV removes).
//  6. Versioning tracks an input-deck edit.
//  7. The caching client revalidates instead of refetching.
func TestGrandTour(t *testing.T) {
	// --- 1. Legacy repository in the OODB.
	oenv, err := experiments.StartOODBEnv("")
	if err != nil {
		t.Fatal(err)
	}
	defer oenv.Close()
	legacy := oenv.Storage

	if err := legacy.CreateProject("/thesis", model.Project{
		Name: "thesis", Description: "five years of calculations"}); err != nil {
		t.Fatal(err)
	}
	runner := model.SyntheticRunner{GridPoints: 8}
	for i := 0; i < 6; i++ {
		calcPath := fmt.Sprintf("/thesis/run%02d", i)
		mol := chem.MakeUO2nH2O(i%3 + 1)
		if err := legacy.CreateCalculation(calcPath, model.Calculation{
			Name: fmt.Sprintf("run %d", i), Theory: "SCF", State: model.StateComplete}); err != nil {
			t.Fatal(err)
		}
		if err := legacy.SaveMolecule(calcPath, mol, chem.FormatXYZ); err != nil {
			t.Fatal(err)
		}
		if err := legacy.SaveBasis(calcPath, chem.STO3G()); err != nil {
			t.Fatal(err)
		}
		deck, err := model.GenerateInputDeck(&model.Calculation{Theory: "SCF"}, mol,
			chem.STO3G(), &model.Task{Kind: model.TaskEnergy})
		if err != nil {
			t.Fatal(err)
		}
		if err := legacy.SaveTask(calcPath, model.Task{Name: "energy",
			Kind: model.TaskEnergy, Sequence: 1, InputDeck: deck}); err != nil {
			t.Fatal(err)
		}
		if err := legacy.SaveJob(calcPath, model.Job{Host: "mpp2", Status: model.JobDone}); err != nil {
			t.Fatal(err)
		}
		for _, p := range runner.Run(mol, model.TaskEnergy) {
			if err := legacy.SaveProperty(calcPath, p); err != nil {
				t.Fatal(err)
			}
		}
		if err := legacy.SaveRawFile(calcPath, "run.out", []byte("converged\n"), "text/plain"); err != nil {
			t.Fatal(err)
		}
	}

	// --- 2. Migrate to the DAV architecture and verify.
	denv, err := experiments.StartDAVEnv(experiments.DAVEnvOptions{Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer denv.Close()
	dav := core.NewDAVStorage(denv.Client)

	rep, err := migrate.Migrate(legacy, dav, "/")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Calculations != 6 || rep.Molecules != 6 {
		t.Fatalf("migration report = %+v", rep)
	}
	if err := migrate.Verify(legacy, dav, "/"); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// --- 3. The unchanged tools work on the migrated repository.
	for _, tool := range tools.All(dav) {
		if err := tool.Startup(); err != nil {
			t.Fatalf("%s startup: %v", tool.Name(), err)
		}
		summary, err := tool.Load("/thesis/run03")
		if err != nil {
			t.Fatalf("%s load: %v", tool.Name(), err)
		}
		if summary == "" {
			t.Fatalf("%s: empty summary", tool.Name())
		}
	}

	// --- 4. The agent annotates every molecule; Ecce data unaffected.
	th := &agent.ThermoAgent{S: dav}
	res, err := th.Sweep("/thesis")
	if err != nil {
		t.Fatal(err)
	}
	if res.Discovered != 6 || res.Annotated != 6 {
		t.Fatalf("agent sweep = %+v", res)
	}
	if err := migrate.Verify(legacy, dav, "/"); err != nil {
		t.Fatalf("Ecce data changed by annotation: %v", err)
	}
	// The annotations are queryable via DASL.
	hits, err := dav.FindWhere("/thesis", davproto.CompareExpr{
		Op: davproto.OpLt, Prop: agent.PropEnthalpy, Literal: "-1000",
	}, agent.PropEnthalpy)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no strongly bound systems found via search")
	}

	// --- 5. Schema evolution breaks the OODB but not DAV: a client
	// compiled against an extended model cannot even connect.
	evolved := oodb.SchemaHash(append(model.ClassDescriptors(), "MDTrajectory(frames:[]Frame)"))
	if _, err := oodb.Dial(oenv.Server.Addr(), evolved); !errors.Is(err, oodb.ErrSchemaMismatch) {
		t.Fatalf("evolved client against legacy OODB = %v, want schema mismatch", err)
	}
	// The DAV side shrugs: new metadata in a new namespace, no
	// agreement needed (that's what the agent just did).

	// --- 6. Versioning on the migrated input deck.
	deckPath := "/thesis/run00/tasks/01-energy"
	if err := denv.Client.VersionControl(deckPath); err != nil {
		t.Fatal(err)
	}
	if _, err := denv.Client.PutBytes(deckPath, []byte("revised deck"), "text/plain"); err != nil {
		t.Fatal(err)
	}
	versions, err := denv.Client.VersionTree(deckPath)
	if err != nil || len(versions) != 2 {
		t.Fatalf("versions = (%v, %v)", versions, err)
	}
	v1, err := denv.Client.Get(versions[0].Href)
	if err != nil || !strings.Contains(string(v1), "start") {
		t.Fatalf("original deck lost: (%q..., %v)", firstN(v1, 20), err)
	}

	// --- 7. The caching client revalidates instead of refetching.
	cc := davclient.NewCaching(denv.Client, 0)
	molPath := "/thesis/run03/molecule"
	first, err := cc.Get(molPath)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cc.Get(molPath)
	if err != nil || !bytes.Equal(first, second) {
		t.Fatalf("cached read differs: %v", err)
	}
	hitsN, missesN, _ := cc.CacheStats()
	if hitsN != 1 || missesN != 1 {
		t.Fatalf("cache stats = %d/%d", hitsN, missesN)
	}
}

func firstN(b []byte, n int) string {
	if len(b) < n {
		return string(b)
	}
	return string(b[:n])
}
