// Migration is a self-contained run of the paper's Section 3.2.4
// conversion: populate an OODB (the Ecce 1.5 store), migrate everything
// to WebDAV servers backed by both DBM flavours, verify the copies, and
// compare disk footprints — reproducing the paper's +10 % (SDBM) and
// +25 % (GDBM) observation in shape.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/davclient"
	"repro/internal/davserver"
	"repro/internal/dbm"
	"repro/internal/migrate"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/store"
)

const calculations = 24

func main() {
	// Source: the OODB baseline with a populated project tree.
	oodbDir, err := os.MkdirTemp("", "migration-oodb-*")
	check(err)
	defer os.RemoveAll(oodbDir)
	db, err := oodb.OpenDB(oodbDir)
	check(err)
	defer db.Close()
	osrv := oodb.NewServer(db, core.SchemaFingerprint())
	addr, err := osrv.Listen("127.0.0.1:0")
	check(err)
	defer osrv.Close()
	oc, err := oodb.Dial(addr, core.SchemaFingerprint())
	check(err)
	src, err := core.NewOODBStorage(oc)
	check(err)
	defer src.Close()

	populate(src)
	st, err := src.Client().Stat()
	check(err)
	fmt.Printf("source OODB: %d calculations, %d objects, %d bytes on disk\n",
		calculations, st.Objects, st.FileBytes)

	// Destinations: one DAV server per DBM flavour.
	for _, flavour := range []dbm.Flavour{dbm.SDBM, dbm.GDBM} {
		davDir, err := os.MkdirTemp("", "migration-dav-*")
		check(err)
		defer os.RemoveAll(davDir)
		fs, err := store.NewFSStore(davDir, flavour)
		check(err)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		srv := &http.Server{Handler: davserver.NewHandler(fs, nil)}
		go srv.Serve(l)
		c, err := davclient.New(davclient.Config{
			BaseURL: fmt.Sprintf("http://%s", l.Addr()), Persistent: true})
		check(err)
		dst := core.NewDAVStorage(c)

		rep, err := migrate.Migrate(src, dst, "/")
		check(err)
		check(migrate.Verify(src, dst, "/"))
		used, err := store.DiskUsage(davDir)
		check(err)
		overhead := 100 * (float64(used)/float64(st.FileBytes) - 1)
		fmt.Printf("DAV + %s: migrated %s\n", flavour, rep)
		fmt.Printf("DAV + %s: %d bytes on disk (%+.0f%% vs OODB; paper: %s)\n",
			flavour, used, overhead, paperRef(flavour))

		dst.Close()
		srv.Close()
		fs.Close()
	}
	fmt.Println("\nnote: with these deliberately tiny chemical systems the fixed per-resource")
	fmt.Println("DBM file sizes dominate, so overheads exceed the paper's +10%/+25% — the paper")
	fmt.Println("makes the same caveat; `eccebench disk` uses realistic output sizes and lands")
	fmt.Println("in the paper's range. The ordering (SDBM < GDBM) holds either way.")
}

func paperRef(f dbm.Flavour) string {
	if f == dbm.SDBM {
		return "+10%"
	}
	return "+25%"
}

// populate creates small chemical systems, as in the paper's source
// databases.
func populate(s core.DataStorage) {
	check(s.CreateProject("/converted", model.Project{
		Name: "converted", Description: "pre-DAV data"}))
	runner := model.SyntheticRunner{GridPoints: 8}
	for i := 0; i < calculations; i++ {
		calcPath := fmt.Sprintf("/converted/calc%03d", i)
		mol := chem.MakeWater()
		if i%3 == 0 {
			mol = chem.MakeUO2nH2O(i%4 + 1)
		}
		check(s.CreateCalculation(calcPath, model.Calculation{
			Name: fmt.Sprintf("calc %d", i), Theory: "SCF", State: model.StateComplete}))
		check(s.SaveMolecule(calcPath, mol, chem.FormatXYZ))
		deck, err := model.GenerateInputDeck(&model.Calculation{Theory: "SCF"}, mol, nil,
			&model.Task{Kind: model.TaskEnergy})
		check(err)
		check(s.SaveTask(calcPath, model.Task{Name: "energy", Kind: model.TaskEnergy,
			Sequence: 1, InputDeck: deck}))
		for _, p := range runner.Run(mol, model.TaskEnergy) {
			check(s.SaveProperty(calcPath, p))
		}
		check(s.SaveRawFile(calcPath, "run.out",
			[]byte("converged\n"), "text/plain"))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
