// Federation demonstrates the paper's multi-site motivation: "the need
// for federated access to multiple data stores at multiple locations
// ... to provide multi-scale and/or cross-disciplinary capabilities."
// Two DAV sites and one legacy OODB are mounted into a single
// namespace; discovery fans out across the open mounts, a project
// migrates across sites with one Copy, and the opaque legacy store
// demonstrates exactly why the paper wanted open architectures.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/davclient"
	"repro/internal/davserver"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/store"
)

func main() {
	// Two independent DAV sites.
	pnnl := startDAVSite()
	ornl := startDAVSite()
	// One legacy OODB site.
	legacy := startOODBSite()

	f, err := core.NewFederation(
		core.Mount{Prefix: "/pnnl", Storage: pnnl},
		core.Mount{Prefix: "/ornl", Storage: ornl},
		core.Mount{Prefix: "/legacy", Storage: legacy},
	)
	check(err)
	defer f.Close()

	// Each site holds its own science.
	check(f.CreateProject("/pnnl/aqueous", model.Project{Name: "aqueous", Description: "PNNL hydration work"}))
	check(f.CreateCalculation("/pnnl/aqueous/uo2", model.Calculation{Name: "uo2", Theory: "DFT"}))
	check(f.SaveMolecule("/pnnl/aqueous/uo2", chem.MakeUO2nH2O(4), chem.FormatXYZ))

	check(f.CreateProject("/ornl/surfaces", model.Project{Name: "surfaces", Description: "ORNL catalysis"}))
	check(f.CreateCalculation("/ornl/surfaces/water", model.Calculation{Name: "water", Theory: "SCF"}))
	check(f.SaveMolecule("/ornl/surfaces/water", chem.MakeWater(), chem.FormatXYZ))

	check(f.CreateProject("/legacy/old", model.Project{Name: "old", Description: "pre-DAV archive"}))
	check(f.CreateCalculation("/legacy/old/c", model.Calculation{Name: "c", Theory: "SCF"}))
	check(f.SaveMolecule("/legacy/old/c", chem.MakeUO2nH2O(1), chem.FormatXYZ))

	// One namespace over all sites.
	mounts, err := f.List("/")
	check(err)
	fmt.Print("federated namespace:")
	for _, m := range mounts {
		fmt.Printf(" %s", m.Path)
	}
	fmt.Println()

	// Discovery fans out across the OPEN sites; the legacy OODB is
	// opaque to metadata queries — the paper's core complaint.
	hits, err := f.FindByMetadata("/", core.PropFormula, nil)
	check(err)
	fmt.Printf("federation-wide molecule discovery: %d hits (legacy store opaque)\n", len(hits))
	for _, h := range hits {
		formula, _, err := f.ReadAnnotation(h, core.PropFormula)
		check(err)
		fmt.Printf("  %-28s %s\n", h, formula)
	}

	// Migrate the legacy project to PNNL's open store with one Copy —
	// after which it is discoverable like everything else.
	check(f.Copy("/legacy/old", "/pnnl/old"))
	hits, err = f.FindByMetadata("/", core.PropFormula, nil)
	check(err)
	fmt.Printf("after migrating /legacy/old -> /pnnl/old: %d hits\n", len(hits))
}

func startDAVSite() *core.DAVStorage {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	srv := &http.Server{Handler: davserver.NewHandler(store.NewMemStore(), nil)}
	go srv.Serve(l)
	c, err := davclient.New(davclient.Config{
		BaseURL: fmt.Sprintf("http://%s", l.Addr()), Persistent: true})
	check(err)
	return core.NewDAVStorage(c)
}

func startOODBSite() *core.OODBStorage {
	dir, err := os.MkdirTemp("", "federation-oodb-*")
	check(err)
	db, err := oodb.OpenDB(dir)
	check(err)
	srv := oodb.NewServer(db, core.SchemaFingerprint())
	addr, err := srv.Listen("127.0.0.1:0")
	check(err)
	c, err := oodb.Dial(addr, core.SchemaFingerprint())
	check(err)
	s, err := core.NewOODBStorage(c)
	check(err)
	return s
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
