// Chemworkflow walks the full Ecce scientific workflow from the
// paper's Section 2 — project setup, molecule construction, basis
// selection, input-deck generation, job launch, (synthetic) execution,
// and post-run analysis — entirely through the open DAV data
// architecture, using the same tools Table 3 measures.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/davclient"
	"repro/internal/davserver"
	"repro/internal/dbm"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/tools"
)

func main() {
	// Boot the data server (Ecce 2.0 architecture).
	dir, err := os.MkdirTemp("", "chemworkflow-*")
	check(err)
	defer os.RemoveAll(dir)
	fs, err := store.NewFSStore(dir, dbm.GDBM)
	check(err)
	defer fs.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	srv := &http.Server{Handler: davserver.NewHandler(fs, nil)}
	go srv.Serve(l)
	defer srv.Close()

	c, err := davclient.New(davclient.Config{
		BaseURL: fmt.Sprintf("http://%s", l.Addr()), Persistent: true})
	check(err)
	s := core.NewDAVStorage(c)
	defer s.Close()

	// 1. Project and calculation.
	check(s.CreateProject("/aqueous", model.Project{
		Name: "Aqueous Actinides", Description: "uranyl hydration study"}))
	calcPath := "/aqueous/uranyl-dft"
	check(s.CreateCalculation(calcPath, model.Calculation{
		Name: "uranyl-dft", Theory: "DFT", Annotation: "hydration shell structure"}))
	fmt.Println("created", calcPath)

	// 2. Build the study subject: the paper's UO2·15H2O system.
	mol := chem.MakeUO2nH2O(15)
	check(s.SaveMolecule(calcPath, mol, chem.FormatXYZ))
	builder := tools.NewBuilder(s)
	check(builder.Startup())
	summary, err := builder.Load(calcPath)
	check(err)
	fmt.Println("builder:", summary)

	// 3. Pick a basis set.
	check(s.SaveBasis(calcPath, chem.STO3G()))
	basisTool := tools.NewBasisTool(s)
	check(basisTool.Startup())
	summary, err = basisTool.Load(calcPath)
	check(err)
	fmt.Println("basis tool:", summary)

	// 4. Generate the input deck and mark the calculation ready.
	calc, err := s.LoadCalculation(calcPath)
	check(err)
	deck, err := model.GenerateInputDeck(&calc, mol, chem.STO3G(),
		&model.Task{Kind: model.TaskEnergy})
	check(err)
	check(s.SaveTask(calcPath, model.Task{
		Name: "energy", Kind: model.TaskEnergy, Sequence: 1, InputDeck: deck}))
	calc.State = model.StateReady
	check(s.SaveCalculation(calcPath, calc))
	fmt.Printf("input deck generated (%d bytes)\n", len(deck))

	// 5. Launch the job through the launcher's validation.
	launcher := tools.NewJobLauncher(s)
	check(launcher.Startup())
	check(launcher.Submit(calcPath, "mpp2.emsl.pnl.gov", "large", 64))
	fmt.Println("job submitted to mpp2.emsl.pnl.gov/large")

	// 6. "Run" the calculation (synthetic stand-in for NWChem) and
	//    store the outputs, including the ~1.8 MB density grid.
	calc, _ = s.LoadCalculation(calcPath)
	calc.State = model.StateRunning
	check(s.SaveCalculation(calcPath, calc))
	job, err := s.LoadJob(calcPath)
	check(err)
	job.Status = model.JobRunning
	job.StartTime = time.Now()
	check(s.SaveJob(calcPath, job))

	runner := model.SyntheticRunner{} // default grid ≈ 1.8 MB property
	props := runner.Run(mol, model.TaskEnergy)
	for _, p := range props {
		check(s.SaveProperty(calcPath, p))
	}
	// The program's text output is stored as a raw file alongside the
	// parsed properties (stage-2 data in the paper's migration).
	check(s.SaveRawFile(calcPath, "run.out",
		[]byte(model.FormatOutput(calc.Name, props)), "text/plain"))

	job.Status = model.JobDone
	job.EndTime = time.Now()
	check(s.SaveJob(calcPath, job))
	calc.State = model.StateComplete
	check(s.SaveCalculation(calcPath, calc))
	fmt.Printf("run complete: %d output properties stored\n", len(props))

	// 7. Post-run analysis: re-parse the raw output (as Ecce's parsers
	//    did), then the viewer and the project manager.
	raw, err := s.LoadRawFile(calcPath, "run.out")
	check(err)
	reparsed, err := model.ParseOutput(bytes.NewReader(raw))
	check(err)
	fmt.Printf("re-parsed %d properties from raw output (energy %.4f hartree)\n",
		len(reparsed), reparsed[0].Values[0])

	viewer := tools.NewCalcViewer(s)
	check(viewer.Startup())
	summary, err = viewer.Load(calcPath)
	check(err)
	fmt.Println("viewer:", summary)

	manager := tools.NewCalcManager(s)
	check(manager.Startup())
	summary, err = manager.Load(calcPath)
	check(err)
	fmt.Println("manager:", summary)

	// 8. The whole calculation is one DAV subtree: clone it to start a
	//    follow-up study (the paper's "copy entire task sequences").
	check(s.Copy(calcPath, "/aqueous/uranyl-dft-variant"))
	fmt.Println("cloned calculation to /aqueous/uranyl-dft-variant")

	// 9. Versioning (the V in WebDAV): put the input deck under
	//    version control, revise it, and list the history.
	deckPath := calcPath + "/tasks/01-energy"
	check(c.VersionControl(deckPath))
	_, err = c.PutBytes(deckPath, []byte(deck+"\n# tightened convergence\n"), "text/plain")
	check(err)
	versions, err := c.VersionTree(deckPath)
	check(err)
	fmt.Printf("input deck now has %d versions:\n", len(versions))
	for _, v := range versions {
		fmt.Printf("  v%s (%d bytes) at %s\n", v.Name, v.Size, v.Href)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
