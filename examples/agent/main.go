// Agent demonstrates the paper's Discussion-section scenario: a
// third-party feature-analysis agent that discovers molecule documents
// through metadata, computes new science (thermodynamic estimates),
// and attaches the results as metadata in its own namespace — while
// Ecce's schema, code and data remain untouched.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/agent"
	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/davclient"
	"repro/internal/davserver"
	"repro/internal/model"
	"repro/internal/store"
)

func main() {
	// An in-memory DAV repository with a few stored molecules.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	srv := &http.Server{Handler: davserver.NewHandler(store.NewMemStore(), nil)}
	go srv.Serve(l)
	defer srv.Close()
	c, err := davclient.New(davclient.Config{
		BaseURL: fmt.Sprintf("http://%s", l.Addr()), Persistent: true})
	check(err)
	s := core.NewDAVStorage(c)
	defer s.Close()

	check(s.CreateProject("/chem", model.Project{Name: "chem"}))
	molecules := map[string]*chem.Molecule{
		"water":    chem.MakeWater(),
		"uranyl-2": chem.MakeUO2nH2O(2),
		"uranyl-8": chem.MakeUO2nH2O(8),
	}
	for name, mol := range molecules {
		calcPath := "/chem/" + name
		check(s.CreateCalculation(calcPath, model.Calculation{Name: name}))
		check(s.SaveMolecule(calcPath, mol, chem.FormatXYZ))
	}
	fmt.Printf("Ecce stored %d molecules\n", len(molecules))

	// The agent knows nothing about Ecce beyond two metadata names: it
	// discovers molecules via ecce:formula and writes its findings in
	// its own namespace.
	a := &agent.ThermoAgent{S: s}
	res, err := a.Sweep("/chem")
	check(err)
	fmt.Printf("agent sweep: discovered=%d annotated=%d skipped=%d\n",
		res.Discovered, res.Annotated, res.Skipped)

	// A second sweep is a no-op (version-stamped annotations).
	res, err = a.Sweep("/chem")
	check(err)
	fmt.Printf("second sweep: annotated=%d skipped=%d\n", res.Annotated, res.Skipped)

	// Any DAV client (here: Ecce's own storage layer acting as a
	// generic browser) can now see the agent's results next to Ecce's
	// metadata.
	for name := range molecules {
		molPath := "/chem/" + name + "/molecule"
		formula, _, err := s.ReadAnnotation(molPath, core.PropFormula)
		check(err)
		h, _, err := s.ReadAnnotation(molPath, agent.PropEnthalpy)
		check(err)
		entropy, _, err := s.ReadAnnotation(molPath, agent.PropEntropy)
		check(err)
		fmt.Printf("  %-10s formula=%-8s enthalpy=%s kJ/mol entropy=%s J/mol-K\n",
			name, formula, h, entropy)
	}

	// And Ecce itself still reads its molecules exactly as before.
	mol, err := s.LoadMolecule("/chem/water")
	check(err)
	fmt.Printf("Ecce unaffected: water still loads as %s with %d atoms\n",
		mol.Formula(), mol.AtomCount())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
