// Webview is the paper's thin-client scenario: "Relatively simple cgi
// scripts or servlets can quickly be developed to provide thin-client
// access to many of the features currently provided by heavy
// UNIX/Motif clients." This servlet-equivalent renders the Ecce
// repository as HTML — project tree, calculation states, molecule
// formulas, job records — by speaking plain DAV to the data server.
//
// By default it populates a demo repository, fetches its own page once
// and prints it; pass -listen :8099 to keep serving for a browser.
package main

import (
	"flag"
	"fmt"
	"html"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/davclient"
	"repro/internal/davserver"
	"repro/internal/model"
	"repro/internal/store"
)

func main() {
	listen := flag.String("listen", "", "serve the web view on this address (empty: fetch once and exit)")
	flag.Parse()

	// The data server (in-process for the demo; point the storage at
	// any davd URL in real use).
	l, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	dataSrv := &http.Server{Handler: davserver.NewHandler(store.NewMemStore(), nil)}
	go dataSrv.Serve(l)
	defer dataSrv.Close()
	c, err := davclient.New(davclient.Config{
		BaseURL: fmt.Sprintf("http://%s", l.Addr()), Persistent: true})
	check(err)
	s := core.NewDAVStorage(c)
	defer s.Close()
	populate(s)

	// The thin client: one handler, no Ecce code beyond the core API.
	view := &webView{storage: s}
	if *listen != "" {
		fmt.Printf("webview: http://%s/\n", *listen)
		check(http.ListenAndServe(*listen, view))
		return
	}
	viewL, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	viewSrv := &http.Server{Handler: view}
	go viewSrv.Serve(viewL)
	defer viewSrv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/", viewL.Addr()))
	check(err)
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	check(err)
	fmt.Printf("rendered %d bytes of HTML; excerpt:\n\n", len(page))
	for _, line := range strings.Split(string(page), "\n") {
		if strings.Contains(line, "<li>") || strings.Contains(line, "<h") {
			fmt.Println(strings.TrimSpace(line))
		}
	}
}

// webView renders the repository tree.
type webView struct {
	storage *core.DAVStorage
}

func (v *webView) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintln(w, "<html><head><title>Ecce repository</title></head><body>")
	fmt.Fprintln(w, "<h1>Ecce repository</h1>")
	entries, err := v.storage.List("/")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	for _, e := range entries {
		if e.Type != core.TypeProject {
			continue
		}
		proj, err := v.storage.LoadProject(e.Path)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "<h2>%s</h2>\n<p>%s</p>\n<ul>\n",
			html.EscapeString(proj.Name), html.EscapeString(proj.Description))
		calcs, err := v.storage.List(e.Path)
		if err != nil {
			continue
		}
		for _, ce := range calcs {
			if ce.Type != core.TypeCalculation {
				continue
			}
			v.renderCalc(w, ce.Path)
		}
		fmt.Fprintln(w, "</ul>")
	}
	fmt.Fprintln(w, "</body></html>")
}

func (v *webView) renderCalc(w http.ResponseWriter, calcPath string) {
	calc, err := v.storage.LoadCalculation(calcPath)
	if err != nil {
		return
	}
	detail := fmt.Sprintf("%s [%s, %s]", calc.Name, calc.Theory, calc.State)
	if mol, err := v.storage.LoadMolecule(calcPath); err == nil {
		detail += fmt.Sprintf(" — %s, %d atoms, mass %.1f",
			mol.Formula(), mol.AtomCount(), mol.Mass())
	}
	if job, err := v.storage.LoadJob(calcPath); err == nil {
		detail += fmt.Sprintf(" — job on %s (%s)", job.Host, job.Status)
	}
	fmt.Fprintf(w, "<li>%s</li>\n", html.EscapeString(detail))
}

func populate(s *core.DAVStorage) {
	check(s.CreateProject("/aqueous", model.Project{
		Name: "Aqueous Actinides", Description: "uranyl hydration series"}))
	for i, waters := range []int{2, 8, 15} {
		calcPath := fmt.Sprintf("/aqueous/uo2-%dh2o", waters)
		mol := chem.MakeUO2nH2O(waters)
		check(s.CreateCalculation(calcPath, model.Calculation{
			Name: mol.Name, Theory: "DFT",
			State: []model.State{model.StateComplete, model.StateRunning, model.StateReady}[i]}))
		check(s.SaveMolecule(calcPath, mol, chem.FormatXYZ))
		if i == 0 {
			check(s.SaveJob(calcPath, model.Job{Host: "mpp2.emsl.pnl.gov", Status: model.JobDone}))
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
