// Quickstart: boot a WebDAV data server, store a document, attach
// metadata, query it back, copy a hierarchy, and browse it — the core
// loop of the paper's open data architecture, in one file.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/davclient"
	"repro/internal/davproto"
	"repro/internal/davserver"
	"repro/internal/dbm"
	"repro/internal/store"
)

func main() {
	// 1. A store rooted in a scratch directory: documents are plain
	//    files, properties live in per-resource DBM databases — the
	//    mod_dav layout.
	dir, err := os.MkdirTemp("", "quickstart-*")
	check(err)
	defer os.RemoveAll(dir)
	fs, err := store.NewFSStore(dir, dbm.GDBM)
	check(err)
	defer fs.Close()

	// 2. Serve it over WebDAV on a loopback socket.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	srv := &http.Server{Handler: davserver.NewHandler(fs, nil)}
	go srv.Serve(l)
	defer srv.Close()
	baseURL := fmt.Sprintf("http://%s", l.Addr())
	fmt.Println("server:", baseURL)

	// 3. Connect a client.
	c, err := davclient.New(davclient.Config{BaseURL: baseURL, Persistent: true})
	check(err)
	defer c.Close()

	// 4. Create a collection and a document.
	check(c.Mkcol("/notebook"))
	_, err = c.PutBytes("/notebook/entry1.txt",
		[]byte("Observed strong uranyl hydration shell at 2.4 A.\n"), "text/plain")
	check(err)

	// 5. Attach arbitrary metadata — no schema registration anywhere.
	check(c.SetProps("/notebook/entry1.txt",
		davproto.NewTextProperty("ecce:", "author", "k.schuchardt"),
		davproto.NewTextProperty("ecce:", "topic", "uranyl hydration"),
		davproto.NewTextProperty("urn:review", "status", "draft")))

	// 6. Read selected metadata back (Depth 0 PROPFIND).
	prop, ok, err := c.GetProp("/notebook/entry1.txt",
		davproto.NewTextProperty("ecce:", "topic", "").Name())
	check(err)
	fmt.Printf("topic metadata present=%v value=%q\n", ok, prop.Text())

	// 7. One Depth-1 PROPFIND lists the collection with types and
	//    sizes — what a generic DAV browser sees.
	ms, err := c.PropFindSelected("/notebook", davproto.Depth1,
		davproto.PropResourceType, davproto.PropGetContentLength)
	check(err)
	for _, r := range ms.Responses {
		fmt.Println("  listed:", r.Href)
	}

	// 8. Server-side copy of the whole hierarchy, then delete the
	//    original; the metadata travels with the copy.
	check(c.Copy("/notebook", "/notebook-archive", davproto.DepthInfinity, false))
	check(c.Delete("/notebook"))
	prop, ok, err = c.GetProp("/notebook-archive/entry1.txt",
		davproto.NewTextProperty("urn:review", "status", "").Name())
	check(err)
	fmt.Printf("archived copy keeps foreign metadata: present=%v value=%q\n", ok, prop.Text())

	// 9. The raw data is still an ordinary file on disk — the paper's
	//    "direct access to raw data" requirement.
	raw, err := os.ReadFile(dir + "/notebook-archive/entry1.txt")
	check(err)
	fmt.Printf("raw file on disk: %q\n", string(raw))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
