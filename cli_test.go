package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chem"
	"repro/internal/experiments"
	"repro/internal/model"
)

// buildBinaries compiles the command-line tools once per test run.
func buildBinaries(t *testing.T, names ...string) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping binary build in -short mode")
	}
	dir := t.TempDir()
	out := map[string]string{}
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		out[name] = bin
	}
	return out
}

// runCLI executes a built binary and returns combined output.
func runCLI(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestDavCLIAgainstServer drives the dav binary through a full session
// against an in-process server — the user-facing workflow of the
// README quickstart.
func TestDavCLIAgainstServer(t *testing.T) {
	bins := buildBinaries(t, "dav")
	env, err := experiments.StartDAVEnv(experiments.DAVEnvOptions{Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	dav := func(args ...string) string {
		t.Helper()
		out, err := runCLI(t, bins["dav"], append([]string{"-url", env.URL}, args...)...)
		if err != nil {
			t.Fatalf("dav %v: %v\n%s", args, err, out)
		}
		return out
	}

	// mkcol + put + get round trip.
	dav("mkcol", "/notebook")
	src := filepath.Join(t.TempDir(), "entry.txt")
	if err := os.WriteFile(src, []byte("strong hydration shell\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out := dav("put", src, "/notebook/entry.txt"); !strings.Contains(out, "created") {
		t.Fatalf("put output: %s", out)
	}
	if out := dav("get", "/notebook/entry.txt"); !strings.Contains(out, "hydration shell") {
		t.Fatalf("get output: %s", out)
	}

	// Metadata: propset / props / find / search.
	dav("propset", "/notebook/entry.txt", "ecce:", "topic", "hydration")
	if out := dav("props", "/notebook/entry.txt"); !strings.Contains(out, "{ecce:}topic = hydration") {
		t.Fatalf("props output: %s", out)
	}
	if out := dav("find", "/", "ecce:", "topic"); !strings.Contains(out, "/notebook/entry.txt") {
		t.Fatalf("find output: %s", out)
	}
	if out := dav("search", "/", "ecce:", "topic", "like", "hydr%"); !strings.Contains(out, "/notebook/entry.txt") {
		t.Fatalf("search output: %s", out)
	}
	if out := dav("search", "/", "ecce:", "topic", "eq", "nomatch"); strings.Contains(out, "entry.txt") {
		t.Fatalf("search should not match: %s", out)
	}

	// Versioning.
	dav("vc", "/notebook/entry.txt")
	if err := os.WriteFile(src, []byte("revised entry\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dav("put", src, "/notebook/entry.txt")
	out := dav("versions", "/notebook/entry.txt")
	if !strings.Contains(out, "v1") || !strings.Contains(out, "v2") {
		t.Fatalf("versions output: %s", out)
	}

	// Copy, ls, rm.
	dav("cp", "/notebook", "/archive")
	if out := dav("ls", "/archive"); !strings.Contains(out, "entry.txt") {
		t.Fatalf("ls output: %s", out)
	}
	dav("rm", "/notebook")
	if out, err := runCLI(t, bins["dav"], "-url", env.URL, "get", "/notebook/entry.txt"); err == nil {
		t.Fatalf("get after rm succeeded: %s", out)
	}

	// Lock / unlock.
	token := strings.TrimSpace(dav("lock", "/archive/entry.txt"))
	if !strings.HasPrefix(token, "opaquelocktoken:") {
		t.Fatalf("lock output: %q", token)
	}
	dav("unlock", "/archive/entry.txt", token)
}

// TestDavdAndOodbdBinaries boots the daemons and checks they serve.
func TestDavdAndOodbdBinaries(t *testing.T) {
	bins := buildBinaries(t, "davd", "oodbd")

	davdRoot := t.TempDir()
	davd := exec.Command(bins["davd"], "-addr", "127.0.0.1:0", "-root", davdRoot, "-quiet")
	davdOut, err := davd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := davd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		davd.Process.Kill()
		davd.Wait()
	}()
	url := fieldContaining(waitBanner(t, davdOut, "http://"), "http://")
	if url == "" {
		t.Fatal("davd printed no URL")
	}

	// The dav client can talk to the daemon.
	davBins := buildBinaries(t, "dav")
	out, err := runCLI(t, davBins["dav"], "-url", url, "mkcol", "/x")
	if err != nil {
		t.Fatalf("dav mkcol against davd: %v\n%s", err, out)
	}

	// oodbd boots and reports its schema.
	oodbd := exec.Command(bins["oodbd"], "-addr", "127.0.0.1:0", "-dir", t.TempDir())
	oodbdOut, err := oodbd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := oodbd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		oodbd.Process.Kill()
		oodbd.Wait()
	}()
	if banner := waitBanner(t, oodbdOut, "serving"); banner == "" {
		t.Fatal("oodbd printed no banner")
	}
}

// waitBanner reads from r until a full line containing marker arrives,
// returning everything read so far ("" on EOF without a match).
func waitBanner(t *testing.T, r interface{ Read([]byte) (int, error) }, marker string) string {
	t.Helper()
	buf := make([]byte, 4096)
	var acc string
	for i := 0; i < 50; i++ {
		n, err := r.Read(buf)
		acc += string(buf[:n])
		if strings.Contains(acc, marker) && strings.Contains(acc, "\n") {
			return acc
		}
		if err != nil {
			break
		}
	}
	return ""
}

// fieldContaining returns the first whitespace-separated field of text
// containing substr.
func fieldContaining(text, substr string) string {
	for _, f := range strings.Fields(text) {
		if strings.Contains(f, substr) {
			return f
		}
	}
	return ""
}

// TestEccemigrateBinary runs the full migration pipeline through the
// compiled binaries: oodbd serves a populated legacy store, davd the
// destination, and eccemigrate converts and verifies.
func TestEccemigrateBinary(t *testing.T) {
	bins := buildBinaries(t, "davd", "oodbd", "eccemigrate")

	// Populate a legacy OODB on disk first (in-process, then serve it
	// with the daemon).
	oodbDir := t.TempDir()
	func() {
		env, err := experiments.StartOODBEnv(oodbDir)
		if err != nil {
			t.Fatal(err)
		}
		defer env.Close()
		if err := env.Storage.CreateProject("/legacy", model.Project{Name: "legacy"}); err != nil {
			t.Fatal(err)
		}
		if err := env.Storage.CreateCalculation("/legacy/c1", model.Calculation{
			Name: "c1", Theory: "SCF"}); err != nil {
			t.Fatal(err)
		}
		if err := env.Storage.SaveMolecule("/legacy/c1", chem.MakeWater(), chem.FormatXYZ); err != nil {
			t.Fatal(err)
		}
	}()

	oodbd := exec.Command(bins["oodbd"], "-addr", "127.0.0.1:0", "-dir", oodbDir)
	oodbdOut, _ := oodbd.StdoutPipe()
	if err := oodbd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { oodbd.Process.Kill(); oodbd.Wait() }()
	banner := waitBanner(t, oodbdOut, "serving")
	oodbAddr := fieldContaining(banner, "127.0.0.1:")
	if oodbAddr == "" {
		t.Fatalf("could not find oodbd address in banner %q", banner)
	}

	davd := exec.Command(bins["davd"], "-addr", "127.0.0.1:0", "-root", t.TempDir(), "-quiet")
	davdOut, _ := davd.StdoutPipe()
	if err := davd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { davd.Process.Kill(); davd.Wait() }()
	davURL := fieldContaining(waitBanner(t, davdOut, "http://"), "http://")

	out, err := runCLI(t, bins["eccemigrate"], "-oodb", oodbAddr, "-dav", davURL, "-verify")
	if err != nil {
		t.Fatalf("eccemigrate: %v\n%s", err, out)
	}
	for _, want := range []string{"1 projects", "1 calculations", "verified"} {
		if !strings.Contains(out, want) {
			t.Fatalf("migrate output missing %q:\n%s", want, out)
		}
	}
}
