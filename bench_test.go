// Benchmarks mapping one-to-one onto the paper's evaluation:
//
//	BenchmarkTable1_*   — Table 1, the six PSE metadata operations
//	BenchmarkTable2_*   — Table 2, binary FTP vs HTTP PUT
//	BenchmarkTable3_*   — Table 3, per-tool load on OODB vs DAV
//	BenchmarkMigration  — Section 3.2.4, OODB → DAV conversion
//	BenchmarkAblation_* — design-choice axes (DOM vs SAX parsing,
//	                      persistent vs per-request connections,
//	                      SDBM vs GDBM property databases)
//
// The one-shot table generators with paper-side-by-side output live in
// cmd/eccebench; these wrap the same code paths in testing.B.
package repro

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/davclient"
	"repro/internal/davproto"
	"repro/internal/dbm"
	"repro/internal/experiments"
	"repro/internal/ftp"
	"repro/internal/migrate"
	"repro/internal/model"
	"repro/internal/tools"
)

// ---------------------------------------------------------------- Table 1

// table1Setup boots a DAV environment populated with the paper's 50
// documents x 50 properties x 1 KB workload.
func table1Setup(b *testing.B, persistent bool, parser davclient.ParserKind) *experiments.DAVEnv {
	b.Helper()
	env, err := experiments.StartDAVEnv(experiments.DAVEnvOptions{
		Persistent: persistent, Parser: parser,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(env.Close)
	c := env.Client
	if err := c.Mkcol("/data"); err != nil {
		b.Fatal(err)
	}
	value := bytes.Repeat([]byte{'m'}, 1024)
	for d := 0; d < 50; d++ {
		docPath := fmt.Sprintf("/data/doc%02d", d)
		if _, err := c.PutBytes(docPath, []byte("body"), "text/plain"); err != nil {
			b.Fatal(err)
		}
		props := make([]davproto.Property, 50)
		for p := range props {
			props[p] = davproto.NewTextProperty("ecce:", fmt.Sprintf("testprop%02d", p), string(value))
		}
		if err := c.SetProps(docPath, props...); err != nil {
			b.Fatal(err)
		}
	}
	return env
}

func table1Selected() []xml.Name {
	names := make([]xml.Name, 5)
	for i := range names {
		names[i] = xml.Name{Space: "ecce:", Local: fmt.Sprintf("testprop%02d", i)}
	}
	return names
}

// Table 1(a): all metadata on one document, Depth 0. Paper: 0.068 s.
func BenchmarkTable1_GetAllMetadataDepth0(b *testing.B) {
	env := table1Setup(b, false, davclient.ParserDOM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Client.PropFindAll("/data/doc00", davproto.Depth0); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1(b): five selected properties on one document. Paper: 0.055 s.
func BenchmarkTable1_GetSelectedDepth0(b *testing.B) {
	env := table1Setup(b, false, davclient.ParserDOM)
	sel := table1Selected()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Client.PropFindSelected("/data/doc00", davproto.Depth0, sel...); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1(c): five of fifty properties on 50 documents in one Depth 1
// request. Paper: 2.732 s elapsed, 2.04 s CPU (DOM-parsing bound).
func BenchmarkTable1_GetSelected50ObjectsDepth1(b *testing.B) {
	env := table1Setup(b, false, davclient.ParserDOM)
	sel := table1Selected()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := env.Client.PropFindSelected("/data", davproto.Depth1, sel...)
		if err != nil {
			b.Fatal(err)
		}
		if len(ms.Responses) != 51 {
			b.Fatalf("responses = %d", len(ms.Responses))
		}
	}
}

// Table 1(d): the same query issued per document. Paper: 3.032 s.
func BenchmarkTable1_Get50ObjectsOneAtATime(b *testing.B) {
	env := table1Setup(b, false, davclient.ParserDOM)
	sel := table1Selected()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 0; d < 50; d++ {
			if _, err := env.Client.PropFindSelected(fmt.Sprintf("/data/doc%02d", d),
				davproto.Depth0, sel...); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Table 1(e): copy the 50-document hierarchy server-side. Paper: 3.482 s.
func BenchmarkTable1_CopyHierarchy(b *testing.B) {
	env := table1Setup(b, false, davclient.ParserDOM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := fmt.Sprintf("/copy-%d", i)
		if err := env.Client.Copy("/data", dst, davproto.DepthInfinity, false); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := env.Client.Delete(dst); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// Table 1(f): remove the copied hierarchy. Paper: 1.782 s.
//
// Every removal needs a fresh copy, and the copy costs ~100x the
// delete; excluding it with StopTimer would make testing.B ramp b.N
// into hundreds of copies and blow the wall-clock budget. Instead each
// iteration times copy+delete together and the delete alone is
// reported as the custom delete-ns/op metric — that metric is the
// Table 1(f) number.
func BenchmarkTable1_RemoveHierarchy(b *testing.B) {
	env := table1Setup(b, false, davclient.ParserDOM)
	var deleteNS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := fmt.Sprintf("/rm-%d", i)
		if err := env.Client.Copy("/data", dst, davproto.DepthInfinity, false); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if err := env.Client.Delete(dst); err != nil {
			b.Fatal(err)
		}
		deleteNS += time.Since(start).Nanoseconds()
	}
	b.ReportMetric(float64(deleteNS)/float64(b.N), "delete-ns/op")
}

// ---------------------------------------------------------------- Table 2

const table2SizeMB = 20

// Table 2: binary FTP STOR, local file to server file. Paper: 3.3 s
// for 20 MB over 150 Mbit/s.
func BenchmarkTable2_FTPStor20MB(b *testing.B) {
	srcPath := benchPayload(b, table2SizeMB<<20)
	root := b.TempDir()
	srv := ftp.NewServer(root)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	c, err := ftp.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Quit() })
	if err := c.Login("", ""); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(table2SizeMB << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(srcPath)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Stor("/payload.bin", f); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

// Table 2: HTTP PUT of the same payload. Paper: 3.0 s for 20 MB —
// "performed comparably with a standard binary-mode FTP client".
func BenchmarkTable2_HTTPPut20MB(b *testing.B) {
	srcPath := benchPayload(b, table2SizeMB<<20)
	env, err := experiments.StartDAVEnv(experiments.DAVEnvOptions{Persistent: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(env.Close)
	b.SetBytes(table2SizeMB << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(srcPath)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := env.Client.Put("/payload.bin", f, "application/octet-stream"); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

func benchPayload(b *testing.B, size int64) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), "payload.bin")
	buf := bytes.Repeat([]byte{0xA7, 0x13, 0x5C, 0xE9}, 1<<18) // 1 MiB, incompressible enough
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	var written int64
	for written < size {
		n, err := f.Write(buf)
		if err != nil {
			b.Fatal(err)
		}
		written += int64(n)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// ---------------------------------------------------------------- Table 3

// table3Backends builds both storage architectures populated with the
// UO2·15H2O workload and returns (name, storage, calcPath) triples.
func table3Backends(b *testing.B) map[string]core.DataStorage {
	b.Helper()
	out := map[string]core.DataStorage{}

	oenv, err := experiments.StartOODBEnv("")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(oenv.Close)
	out["OODB"] = oenv.Storage

	denv, err := experiments.StartDAVEnv(experiments.DAVEnvOptions{Persistent: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(denv.Close)
	out["DAV"] = core.NewDAVStorage(denv.Client)
	return out
}

// populateTable3 loads the Table 3 workload into a storage.
func populateTable3(b *testing.B, s core.DataStorage) string {
	b.Helper()
	mol := chem.MakeUO2nH2O(15)
	if err := s.CreateProject("/aqueous", model.Project{Name: "aqueous"}); err != nil {
		b.Fatal(err)
	}
	calcPath := "/aqueous/uranyl"
	if err := s.CreateCalculation(calcPath, model.Calculation{
		Name: "uranyl", Theory: "DFT", State: model.StateReady}); err != nil {
		b.Fatal(err)
	}
	if err := s.SaveMolecule(calcPath, mol, chem.FormatXYZ); err != nil {
		b.Fatal(err)
	}
	if err := s.SaveBasis(calcPath, chem.STO3G()); err != nil {
		b.Fatal(err)
	}
	deck, err := model.GenerateInputDeck(&model.Calculation{Theory: "DFT"}, mol,
		chem.STO3G(), &model.Task{Kind: model.TaskEnergy})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.SaveTask(calcPath, model.Task{Name: "energy", Kind: model.TaskEnergy,
		Sequence: 1, InputDeck: deck}); err != nil {
		b.Fatal(err)
	}
	if err := s.SaveJob(calcPath, model.Job{Host: "mpp2", Status: model.JobDone}); err != nil {
		b.Fatal(err)
	}
	// The paper's workload includes output properties up to 1.8 MB.
	for _, p := range (model.SyntheticRunner{}).Run(mol, model.TaskEnergy) {
		if err := s.SaveProperty(calcPath, p); err != nil {
			b.Fatal(err)
		}
	}
	return calcPath
}

// Table 3: every tool's Load phase on both architectures. The paper's
// headline: DAV loads are as fast or faster than the cache-forward
// OODB despite being a request/response protocol.
func BenchmarkTable3_ToolLoad(b *testing.B) {
	for name, s := range table3Backends(b) {
		calcPath := populateTable3(b, s)
		for _, tool := range tools.All(s) {
			if err := tool.Startup(); err != nil {
				b.Fatal(err)
			}
			b.Run(name+"/"+tool.Name(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := tool.Load(calcPath); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Table 3 (start column): tool startup is storage-independent; one
// sub-benchmark per tool.
func BenchmarkTable3_ToolStartup(b *testing.B) {
	env, err := experiments.StartDAVEnv(experiments.DAVEnvOptions{Persistent: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(env.Close)
	s := core.NewDAVStorage(env.Client)
	for _, tool := range tools.All(s) {
		b.Run(tool.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := tool.Startup(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------------------- Migration

// Section 3.2.4: convert an OODB corpus to the DAV store.
func BenchmarkMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		oenv, err := experiments.StartOODBEnv("")
		if err != nil {
			b.Fatal(err)
		}
		src := oenv.Storage
		if err := src.CreateProject("/p", model.Project{Name: "p"}); err != nil {
			b.Fatal(err)
		}
		runner := model.SyntheticRunner{GridPoints: 8}
		for c := 0; c < 8; c++ {
			calcPath := fmt.Sprintf("/p/calc%d", c)
			mol := chem.MakeUO2nH2O(c%3 + 1)
			if err := src.CreateCalculation(calcPath, model.Calculation{Name: calcPath}); err != nil {
				b.Fatal(err)
			}
			if err := src.SaveMolecule(calcPath, mol, chem.FormatXYZ); err != nil {
				b.Fatal(err)
			}
			for _, p := range runner.Run(mol, model.TaskEnergy) {
				if err := src.SaveProperty(calcPath, p); err != nil {
					b.Fatal(err)
				}
			}
		}
		denv, err := experiments.StartDAVEnv(experiments.DAVEnvOptions{Persistent: true})
		if err != nil {
			b.Fatal(err)
		}
		dst := core.NewDAVStorage(denv.Client)
		b.StartTimer()

		if _, err := migrate.Migrate(src, dst, "/"); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		denv.Close()
		oenv.Close()
		b.StartTimer()
	}
}

// ------------------------------------------------------------- Ablations

// Ablation: the Table 1(c) bulk PROPFIND under both parsers and both
// connection policies — the two optimizations the paper anticipated.
func BenchmarkAblation_PropfindBulk(b *testing.B) {
	configs := []struct {
		name       string
		persistent bool
		parser     davclient.ParserKind
	}{
		{"DOM_reconnect", false, davclient.ParserDOM}, // the paper's measured configuration
		{"DOM_persistent", true, davclient.ParserDOM},
		{"SAX_reconnect", false, davclient.ParserSAX},
		{"SAX_persistent", true, davclient.ParserSAX},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			env := table1Setup(b, cfg.persistent, cfg.parser)
			sel := table1Selected()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.Client.PropFindSelected("/data", davproto.Depth1, sel...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: SDBM vs GDBM property databases under the server's
// PROPPATCH/PROPFIND path.
func BenchmarkAblation_DBMFlavour(b *testing.B) {
	for _, flavour := range []dbm.Flavour{dbm.SDBM, dbm.GDBM} {
		b.Run(flavour.String(), func(b *testing.B) {
			env, err := experiments.StartDAVEnv(experiments.DAVEnvOptions{
				Flavour: flavour, Persistent: true})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(env.Close)
			c := env.Client
			if _, err := c.PutBytes("/doc", []byte("x"), ""); err != nil {
				b.Fatal(err)
			}
			val := string(bytes.Repeat([]byte{'v'}, 512))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prop := davproto.NewTextProperty("ecce:", fmt.Sprintf("p%d", i%50), val)
				if err := c.SetProps("/doc", prop); err != nil {
					b.Fatal(err)
				}
				if _, _, err := c.GetProp("/doc", prop.Name()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: server-side DASL SEARCH vs the client-side PROPFIND walk
// it replaces — the paper cites DASL as the anticipated fix for
// client-side filtering. The workload tags 5 of 50 documents; SEARCH
// returns 5 responses, the walk returns 51 and filters locally.
func BenchmarkAblation_SearchVsWalk(b *testing.B) {
	env := table1Setup(b, true, davclient.ParserDOM)
	tag := xml.Name{Space: "ecce:", Local: "tagged"}
	for d := 0; d < 50; d += 10 {
		if err := env.Client.SetProps(fmt.Sprintf("/data/doc%02d", d),
			davproto.NewTextProperty(tag.Space, tag.Local, "yes")); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("SEARCH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ms, err := env.Client.Search(davproto.BasicSearch{
				Select: []xml.Name{tag}, Scope: "/data",
				Depth: davproto.DepthInfinity,
				Where: davproto.IsDefinedExpr{Prop: tag},
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(ms.Responses) != 5 {
				b.Fatalf("hits = %d", len(ms.Responses))
			}
		}
	})
	b.Run("PROPFIND_walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ms, err := env.Client.PropFindSelected("/data", davproto.DepthInfinity, tag)
			if err != nil {
				b.Fatal(err)
			}
			hits := 0
			for _, r := range ms.Responses {
				if _, ok := davproto.PropsByName(r.Propstats)[tag]; ok {
					hits++
				}
			}
			if hits != 5 {
				b.Fatalf("hits = %d", hits)
			}
		}
	})
}

// Ablation: the ETag-revalidating client cache (the paper's
// anticipated client-side cache) vs uncached GETs on a 1.8 MB
// document.
func BenchmarkAblation_ClientCache(b *testing.B) {
	env, err := experiments.StartDAVEnv(experiments.DAVEnvOptions{Persistent: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(env.Close)
	body := bytes.Repeat([]byte{0x42}, 1800*1024)
	if _, err := env.Client.PutBytes("/big", body, ""); err != nil {
		b.Fatal(err)
	}
	b.Run("uncached", func(b *testing.B) {
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			if _, err := env.Client.Get("/big"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cc := davclient.NewCaching(env.Client, 0)
		if _, err := cc.Get("/big"); err != nil { // warm
			b.Fatal(err)
		}
		b.SetBytes(int64(len(body)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cc.Get("/big"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: the full Table 1 run as a single measured unit (what
// cmd/eccebench prints), useful for regression tracking.
func BenchmarkAblation_Table1EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(experiments.Table1Options{
			Docs: 20, Props: 20, ValueBytes: 512})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 6 {
			b.Fatal("short table")
		}
	}
}
