package dbm

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func cachePath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4, GDBM)
	p := cachePath(t, "a.props")
	ctx := context.Background()

	h1, err := c.Acquire(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	h1.Close()

	h2, err := c.Acquire(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := h2.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	h2.Close()

	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss 1 hit", s)
	}
	if s.Open != 1 || s.Pinned != 0 {
		t.Fatalf("stats = %+v, want 1 open 0 pinned", s)
	}
}

func TestCacheSharedHandleSameDB(t *testing.T) {
	c := NewCache(4, GDBM)
	p := cachePath(t, "a.props")
	ctx := context.Background()
	h1, err := c.Acquire(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Close()
	h2, err := c.Acquire(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if h1.DB() != h2.DB() {
		t.Fatal("two pins on one path returned different DBs")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2, GDBM)
	ctx := context.Background()
	paths := make([]string, 3)
	for i := range paths {
		paths[i] = cachePath(t, fmt.Sprintf("db%d.props", i))
		h, err := c.Acquire(ctx, paths[i])
		if err != nil {
			t.Fatal(err)
		}
		h.Close()
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if s.Open != 2 {
		t.Fatalf("open = %d, want 2 (capacity)", s.Open)
	}
	// The oldest (paths[0]) was evicted; re-acquiring it is a miss.
	before := c.Stats().Misses
	h, err := c.Acquire(ctx, paths[0])
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if c.Stats().Misses != before+1 {
		t.Fatal("evicted entry served as a hit")
	}
}

func TestCachePinnedEntrySurvivesEviction(t *testing.T) {
	c := NewCache(1, GDBM)
	ctx := context.Background()
	p0 := cachePath(t, "pinned.props")
	h, err := c.Acquire(ctx, p0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Overflow the capacity while p0 is pinned.
	for i := 0; i < 3; i++ {
		h2, err := c.Acquire(ctx, cachePath(t, fmt.Sprintf("o%d.props", i)))
		if err != nil {
			t.Fatal(err)
		}
		h2.Close()
	}
	// The pinned handle must still work.
	if _, ok, err := h.Get([]byte("k")); err != nil || !ok {
		t.Fatalf("pinned handle unusable after LRU pressure: ok=%v err=%v", ok, err)
	}
	h.Close()
}

func TestCacheInvalidateClosesAfterLastPin(t *testing.T) {
	c := NewCache(4, GDBM)
	ctx := context.Background()
	p := cachePath(t, "a.props")
	h, err := c.Acquire(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	db := h.DB()
	c.Invalidate(p)
	// Still pinned: operations keep working.
	if err := h.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("doomed-but-pinned handle failed: %v", err)
	}
	h.Close()
	// Now closed: direct use reports ErrClosed.
	if _, _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("after last pin released, Get err = %v, want ErrClosed", err)
	}
	// Re-acquiring opens a fresh DB seeing the persisted data.
	h2, err := c.Acquire(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if _, ok, err := h2.Get([]byte("k")); err != nil || !ok {
		t.Fatalf("reopened DB lost data: ok=%v err=%v", ok, err)
	}
}

func TestCacheInvalidatePrefix(t *testing.T) {
	c := NewCache(8, GDBM)
	ctx := context.Background()
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	inside := filepath.Join(sub, "a.props")
	deeper := filepath.Join(sub, "x")
	if err := os.MkdirAll(deeper, 0o755); err != nil {
		t.Fatal(err)
	}
	nested := filepath.Join(deeper, "b.props")
	outside := filepath.Join(dir, "subx.props") // shares the string prefix, not the directory
	for _, p := range []string{inside, nested, outside} {
		h, err := c.Acquire(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		h.Close()
	}
	c.InvalidatePrefix(sub)
	s := c.Stats()
	if s.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2 (inside + nested)", s.Invalidations)
	}
	if s.Open != 1 {
		t.Fatalf("open = %d, want 1 (outside survives)", s.Open)
	}
}

func TestCacheSingleFlightOpen(t *testing.T) {
	c := NewCache(8, GDBM)
	ctx := context.Background()
	p := cachePath(t, "a.props")
	const workers = 16
	var wg sync.WaitGroup
	dbs := make([]*DB, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := c.Acquire(ctx, p)
			if err != nil {
				t.Error(err)
				return
			}
			dbs[i] = h.DB()
			h.Close()
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if dbs[i] != dbs[0] {
			t.Fatal("concurrent Acquires opened more than one DB")
		}
	}
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight)", s.Misses)
	}
}

func TestCacheOpenErrorNotCached(t *testing.T) {
	c := NewCache(4, GDBM)
	ctx := context.Background()
	// A directory path cannot be opened as a database file.
	dir := t.TempDir()
	if _, err := c.Acquire(ctx, dir); err == nil {
		t.Fatal("Acquire of a directory succeeded")
	}
	if s := c.Stats(); s.Open != 0 {
		t.Fatalf("failed open left %d entries cached", s.Open)
	}
	// The failure is retried, not replayed from cache.
	if _, err := c.Acquire(ctx, dir); err == nil {
		t.Fatal("second Acquire of a directory succeeded")
	}
	if s := c.Stats(); s.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (errors are not cached)", s.Misses)
	}
}

func TestCacheDisabledOpensPerAcquire(t *testing.T) {
	c := NewCache(0, GDBM)
	ctx := context.Background()
	p := cachePath(t, "a.props")
	h1, err := c.Acquire(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	db1 := h1.DB()
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}
	// Uncached Close really closes the DB.
	if _, _, err := db1.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("uncached handle not closed: err = %v", err)
	}
	h2, err := c.Acquire(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if _, ok, err := h2.Get([]byte("k")); err != nil || !ok {
		t.Fatalf("reopen lost data: ok=%v err=%v", ok, err)
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 2 {
		t.Fatalf("disabled cache stats = %+v, want 0 hits 2 misses", s)
	}
}

func TestCacheCloseClosesIdleAndDoomsPinned(t *testing.T) {
	c := NewCache(8, GDBM)
	ctx := context.Background()
	idle, err := c.Acquire(ctx, cachePath(t, "idle.props"))
	if err != nil {
		t.Fatal(err)
	}
	idleDB := idle.DB()
	idle.Close()
	pinned, err := c.Acquire(ctx, cachePath(t, "pinned.props"))
	if err != nil {
		t.Fatal(err)
	}
	pinnedDB := pinned.DB()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := idleDB.Get([]byte("k")); err != ErrClosed {
		t.Fatal("idle DB not closed by cache Close")
	}
	// Pinned survives until its release.
	if err := pinned.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("pinned handle died on cache Close: %v", err)
	}
	pinned.Close()
	if _, _, err := pinnedDB.Get([]byte("k")); err != ErrClosed {
		t.Fatal("pinned DB not closed after last release")
	}
}

func TestCacheConcurrentStress(t *testing.T) {
	c := NewCache(4, GDBM)
	ctx := context.Background()
	dir := t.TempDir()
	paths := make([]string, 8)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("s%d.props", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := paths[(w+i)%len(paths)]
				h, err := c.Acquire(ctx, p)
				if err != nil {
					t.Error(err)
					return
				}
				key := []byte(fmt.Sprintf("k%d", w))
				if err := h.Put(key, []byte("v")); err != nil {
					t.Error(err)
				}
				if _, _, err := h.Get(key); err != nil {
					t.Error(err)
				}
				if i%17 == 0 {
					c.Invalidate(p)
				}
				h.Close()
			}
		}(w)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
