package dbm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHasAndPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.db")
	db, err := Open(path, GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Path() != path {
		t.Fatalf("Path = %q", db.Path())
	}
	if ok, err := db.Has([]byte("k")); ok || err != nil {
		t.Fatalf("Has missing = (%v, %v)", ok, err)
	}
	db.Put([]byte("k"), []byte("v"))
	if ok, err := db.Has([]byte("k")); !ok || err != nil {
		t.Fatalf("Has present = (%v, %v)", ok, err)
	}
	db.Delete([]byte("k"))
	if ok, _ := db.Has([]byte("k")); ok {
		t.Fatal("Has after delete")
	}
}

func TestSyncPersistsAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.db")
	db, err := Open(path, GDBM)
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("a"), bytes.Repeat([]byte{'x'}, 500))
	db.Put([]byte("a"), bytes.Repeat([]byte{'y'}, 500)) // shadow
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	before, _ := db.Stats()
	db.Close()
	db2, err := Open(path, GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	after, _ := db2.Stats()
	if after.LiveBytes != before.LiveBytes || after.DeadBytes != before.DeadBytes {
		t.Fatalf("accounting drifted: %+v vs %+v", before, after)
	}
}

func TestValueTooLargeErrorMentionsFlavour(t *testing.T) {
	db := openTemp(t, SDBM)
	err := db.Put([]byte("k"), make([]byte, 4096))
	if !errors.Is(err, ErrValueTooLarge) || !strings.Contains(err.Error(), "SDBM") {
		t.Fatalf("err = %v", err)
	}
}

func TestFlavourStringUnknown(t *testing.T) {
	if got := Flavour(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("String = %q", got)
	}
	if SDBM.String() != "SDBM" || GDBM.String() != "GDBM" {
		t.Fatal("flavour names")
	}
}

func TestCompactSDBMKeepsLimit(t *testing.T) {
	// Compact on an SDBM database preserves the flavour (and its
	// limits) across the rewrite.
	path := filepath.Join(t.TempDir(), "c.db")
	db, err := Open(path, SDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	db.Put([]byte("k"), []byte("v2"))
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("big"), make([]byte, 2048)); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("limit lost after Compact: %v", err)
	}
	fl, err := FlavourOf(path)
	if err != nil || fl != SDBM {
		t.Fatalf("FlavourOf after Compact = (%v, %v)", fl, err)
	}
}

func TestTruncatedRecordDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.db")
	db, err := Open(path, GDBM)
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("key-one"), bytes.Repeat([]byte{'v'}, 512))
	recordStart := headerSize + int64(len(db.buckets))*8
	db.Close()
	// Chop the file mid-record (inside the value area). The file is
	// preallocated past the data, so cut at a computed offset.
	cut := recordStart + recHdrSize + int64(len("key-one")) + 100
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
	// Either open fails with corruption, or the damaged record is
	// unreadable — never a silent wrong answer.
	db2, err := Open(path, GDBM)
	if err != nil {
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open error = %v, want ErrCorrupt", err)
		}
		return
	}
	defer db2.Close()
	if v, ok, err := db2.Get([]byte("key-one")); err == nil && ok && len(v) == 512 {
		t.Fatal("truncated record read back whole")
	}
}

func TestManyKeysAcrossBuckets(t *testing.T) {
	// Exceed the bucket count so chains definitely collide.
	db := openTemp(t, SDBM) // 128 buckets
	const n = 1000
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != n {
		t.Fatalf("Len = %d", db.Len())
	}
	for i := 0; i < n; i += 97 {
		v, ok, err := db.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %d = (%q, %v, %v)", i, v, ok, err)
		}
	}
	keys, err := db.Keys()
	if err != nil || len(keys) != n {
		t.Fatalf("Keys = (%d, %v)", len(keys), err)
	}
}
