package dbm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, fl Flavour) *DB {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "test.db"), fl)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutGetRoundTrip(t *testing.T) {
	for _, fl := range []Flavour{SDBM, GDBM} {
		t.Run(fl.String(), func(t *testing.T) {
			db := openTemp(t, fl)
			if err := db.Put([]byte("alpha"), []byte("one")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			v, ok, err := db.Get([]byte("alpha"))
			if err != nil || !ok {
				t.Fatalf("Get: ok=%v err=%v", ok, err)
			}
			if string(v) != "one" {
				t.Fatalf("Get = %q, want %q", v, "one")
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	db := openTemp(t, GDBM)
	v, ok, err := db.Get([]byte("nope"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if ok || v != nil {
		t.Fatalf("Get missing = (%q, %v), want (nil, false)", v, ok)
	}
}

func TestOverwriteShadowsOldValue(t *testing.T) {
	db := openTemp(t, GDBM)
	for i := 0; i < 5; i++ {
		if err := db.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put #%d: %v", i, err)
		}
	}
	v, ok, _ := db.Get([]byte("k"))
	if !ok || string(v) != "v4" {
		t.Fatalf("Get = (%q, %v), want (v4, true)", v, ok)
	}
	if n := db.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	st, _ := db.Stats()
	if st.DeadBytes == 0 {
		t.Fatal("overwrites should accumulate dead bytes until Compact")
	}
}

func TestDeleteTombstones(t *testing.T) {
	db := openTemp(t, GDBM)
	db.Put([]byte("k"), []byte("v"))
	ok, err := db.Delete([]byte("k"))
	if err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := db.Get([]byte("k")); ok {
		t.Fatal("Get after Delete should miss")
	}
	// Deleting again reports absence.
	ok, err = db.Delete([]byte("k"))
	if err != nil || ok {
		t.Fatalf("second Delete: ok=%v err=%v, want false, nil", ok, err)
	}
	st, _ := db.Stats()
	if st.DeadBytes == 0 {
		t.Fatal("tombstone should count as dead bytes")
	}
	if st.Keys != 0 {
		t.Fatalf("Keys = %d, want 0", st.Keys)
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	db := openTemp(t, GDBM)
	db.Put([]byte("k"), []byte("old"))
	db.Delete([]byte("k"))
	if err := db.Put([]byte("k"), []byte("new")); err != nil {
		t.Fatalf("Put after Delete: %v", err)
	}
	v, ok, _ := db.Get([]byte("k"))
	if !ok || string(v) != "new" {
		t.Fatalf("Get = (%q, %v), want (new, true)", v, ok)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
}

func TestSDBMValueLimit(t *testing.T) {
	db := openTemp(t, SDBM)
	if err := db.Put([]byte("k"), make([]byte, 1024)); err != nil {
		t.Fatalf("1024-byte value should fit in SDBM: %v", err)
	}
	err := db.Put([]byte("k2"), make([]byte, 1025))
	if !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("Put 1025 bytes = %v, want ErrValueTooLarge", err)
	}
}

func TestGDBMLargeValue(t *testing.T) {
	db := openTemp(t, GDBM)
	big := bytes.Repeat([]byte{0xAB}, 4<<20)
	if err := db.Put([]byte("big"), big); err != nil {
		t.Fatalf("Put 4 MB: %v", err)
	}
	v, ok, err := db.Get([]byte("big"))
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("large value round trip failed: ok=%v err=%v len=%d", ok, err, len(v))
	}
}

func TestInitialFileSizes(t *testing.T) {
	cases := []struct {
		fl   Flavour
		want int64
	}{{SDBM, 8 * 1024}, {GDBM, 25 * 1024}}
	for _, c := range cases {
		t.Run(c.fl.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "sz.db")
			db, err := Open(path, c.fl)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() < c.want {
				t.Fatalf("initial size = %d, want >= %d", fi.Size(), c.want)
			}
		})
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	db, err := Open(path, GDBM)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 200; i++ {
		k, v := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i)
		want[k] = v
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite some, delete some.
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%03d", i)
		want[k] = "updated"
		db.Put([]byte(k), []byte("updated"))
	}
	for i := 150; i < 200; i++ {
		k := fmt.Sprintf("key-%03d", i)
		delete(want, k)
		db.Delete([]byte(k))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, GDBM)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if db2.Len() != len(want) {
		t.Fatalf("Len after reopen = %d, want %d", db2.Len(), len(want))
	}
	for k, v := range want {
		got, ok, err := db2.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%q) = (%q, %v, %v), want %q", k, got, ok, err, v)
		}
	}
}

func TestFlavourMismatchOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fl.db")
	db, err := Open(path, SDBM)
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("v"))
	db.Close()
	if _, err := Open(path, GDBM); err == nil {
		t.Fatal("opening SDBM file as GDBM should fail")
	}
	fl, err := FlavourOf(path)
	if err != nil || fl != SDBM {
		t.Fatalf("FlavourOf = (%v, %v), want (SDBM, nil)", fl, err)
	}
}

func TestCompactReclaimsDeadSpace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.db")
	db, err := Open(path, GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte{'x'}, 2048)
	for i := 0; i < 100; i++ {
		db.Put([]byte("churn"), val) // 99 shadowed copies
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("dead-%d", i)
		db.Put([]byte(k), val)
		db.Delete([]byte(k))
	}
	db.Put([]byte("keep"), []byte("kept"))

	before, _ := db.Stats()
	if before.DeadBytes == 0 {
		t.Fatal("expected dead bytes before compaction")
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, _ := db.Stats()
	if after.DeadBytes != 0 {
		t.Fatalf("DeadBytes after Compact = %d, want 0", after.DeadBytes)
	}
	if after.FileSize >= before.FileSize {
		t.Fatalf("FileSize did not shrink: %d -> %d", before.FileSize, after.FileSize)
	}
	// Contents survive.
	v, ok, _ := db.Get([]byte("churn"))
	if !ok || !bytes.Equal(v, val) {
		t.Fatal("churn key lost by Compact")
	}
	v, ok, _ = db.Get([]byte("keep"))
	if !ok || string(v) != "kept" {
		t.Fatal("keep key lost by Compact")
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
	// And survive a reopen (Compact rewrote the file).
	db.Close()
	db2, err := Open(path, GDBM)
	if err != nil {
		t.Fatalf("reopen after Compact: %v", err)
	}
	defer db2.Close()
	if db2.Len() != 2 {
		t.Fatalf("Len after reopen = %d, want 2", db2.Len())
	}
}

func TestForEachVisitsLiveOnce(t *testing.T) {
	db := openTemp(t, GDBM)
	for i := 0; i < 30; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	db.Put([]byte("k0"), []byte("v2")) // shadowed older version must not be revisited
	db.Delete([]byte("k1"))
	seen := map[string]int{}
	err := db.ForEach(func(k, v []byte) error {
		seen[string(k)]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 29 {
		t.Fatalf("visited %d keys, want 29", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %q visited %d times", k, n)
		}
	}
	if seen["k1"] != 0 {
		t.Fatal("deleted key visited")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	db := openTemp(t, GDBM)
	for i := 0; i < 10; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	sentinel := errors.New("stop")
	n := 0
	err := db.ForEach(func(k, v []byte) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("ForEach err = %v, want sentinel", err)
	}
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	db := openTemp(t, GDBM)
	if err := db.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key should be rejected")
	}
}

func TestClosedOperations(t *testing.T) {
	db := openTemp(t, GDBM)
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, _, err := db.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	if _, err := db.Delete([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close = %v, want ErrClosed", err)
	}
	if err := db.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
}

func TestCorruptFileDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	if err := os.WriteFile(path, []byte("this is not a dbm file at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, GDBM); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open corrupt = %v, want ErrCorrupt", err)
	}
}

func TestBinaryKeysAndValues(t *testing.T) {
	db := openTemp(t, GDBM)
	key := []byte{0, 1, 2, 0xFF, 0, 'k'}
	val := []byte{0xDE, 0xAD, 0, 0xBE, 0xEF}
	if err := db.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := db.Get(key)
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("binary round trip failed: %v %v %x", ok, err, got)
	}
}

// TestQuickMapEquivalence drives the database with a random operation
// sequence and checks it agrees with a plain map at every step.
func TestQuickMapEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := openTemp(t, GDBM)
		ref := map[string]string{}
		keys := []string{"a", "b", "c", "dd", "ee", "ff", "longer-key-name", "k8"}
		for i := 0; i < 300; i++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0: // put
				v := fmt.Sprintf("v%d", rng.Intn(1000))
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Logf("Put: %v", err)
					return false
				}
				ref[k] = v
			case 1: // delete
				ok, err := db.Delete([]byte(k))
				if err != nil {
					t.Logf("Delete: %v", err)
					return false
				}
				if _, exists := ref[k]; exists != ok {
					t.Logf("Delete(%q) ok=%v, ref says %v", k, ok, exists)
					return false
				}
				delete(ref, k)
			case 2: // get
				v, ok, err := db.Get([]byte(k))
				if err != nil {
					t.Logf("Get: %v", err)
					return false
				}
				want, exists := ref[k]
				if ok != exists || (ok && string(v) != want) {
					t.Logf("Get(%q) = (%q,%v), ref (%q,%v)", k, v, ok, want, exists)
					return false
				}
			}
		}
		if db.Len() != len(ref) {
			t.Logf("Len=%d ref=%d", db.Len(), len(ref))
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundTripAfterCompactAndReopen: for any set of key/value
// pairs, Put-all → Compact → reopen → Get-all is the identity.
func TestQuickRoundTripAfterCompactAndReopen(t *testing.T) {
	check := func(pairs map[string]string) bool {
		path := filepath.Join(t.TempDir(), "q.db")
		db, err := Open(path, GDBM)
		if err != nil {
			t.Logf("Open: %v", err)
			return false
		}
		n := 0
		for k, v := range pairs {
			if k == "" {
				continue
			}
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Logf("Put: %v", err)
				return false
			}
			n++
		}
		if err := db.Compact(); err != nil {
			t.Logf("Compact: %v", err)
			return false
		}
		if err := db.Close(); err != nil {
			t.Logf("Close: %v", err)
			return false
		}
		db2, err := Open(path, GDBM)
		if err != nil {
			t.Logf("reopen: %v", err)
			return false
		}
		defer db2.Close()
		if db2.Len() != n {
			t.Logf("Len=%d want %d", db2.Len(), n)
			return false
		}
		for k, v := range pairs {
			if k == "" {
				continue
			}
			got, ok, err := db2.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				t.Logf("Get(%q)=(%q,%v,%v) want %q", k, got, ok, err, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := openTemp(t, GDBM)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 50 && err == nil; i++ {
				k := []byte(fmt.Sprintf("g%d-k%d", g, i))
				if err = db.Put(k, []byte("v")); err != nil {
					break
				}
				_, _, err = db.Get(k)
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent worker: %v", err)
		}
	}
	if db.Len() != 8*50 {
		t.Fatalf("Len = %d, want %d", db.Len(), 8*50)
	}
}

func BenchmarkPut1KB(b *testing.B) {
	for _, fl := range []Flavour{SDBM, GDBM} {
		b.Run(fl.String(), func(b *testing.B) {
			db, err := Open(filepath.Join(b.TempDir(), "b.db"), fl)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := bytes.Repeat([]byte{'x'}, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key-%d", i)), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGet1KB(b *testing.B) {
	for _, fl := range []Flavour{SDBM, GDBM} {
		b.Run(fl.String(), func(b *testing.B) {
			db, err := Open(filepath.Join(b.TempDir(), "b.db"), fl)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := bytes.Repeat([]byte{'x'}, 1024)
			const n = 512
			for i := 0; i < n; i++ {
				db.Put([]byte(fmt.Sprintf("key-%d", i)), val)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := db.Get([]byte(fmt.Sprintf("key-%d", i%n))); err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		})
	}
}
