// Package dbm implements a small on-disk hash-table database in the
// style of the classic SDBM and GDBM libraries that Apache mod_dav used
// for WebDAV dead-property storage.
//
// The design mirrors the two properties of those libraries that the
// HPDC 2001 Ecce paper measures:
//
//   - each database preallocates a minimum file size (8 KB for the SDBM
//     flavour, 25 KB for GDBM), so a store holding many small databases
//     pays a fixed per-resource disk overhead; and
//   - deleting or replacing a value only tombstones the old record —
//     dead space is reclaimed exclusively by an explicit Compact call
//     ("manual garbage collection utilities" in the paper).
//
// The SDBM flavour additionally enforces the historical 1 KB limit on
// an individual value; GDBM imposes no limit.
//
// On-disk layout:
//
//	header   : magic "GODBM1\n\x00", flavour byte, 3 pad bytes,
//	           bucketCount uint32, liveBytes uint64, deadBytes uint64
//	buckets  : bucketCount × uint64 — file offset of newest record in
//	           the bucket's chain (0 = empty)
//	records  : appended sequentially; each record is
//	           prev uint64 (older record in same bucket, 0 = none)
//	           flags byte (bit 0: tombstone)
//	           keyLen uint32, valLen uint32, key, value
//
// Lookups hash the key to a bucket and walk the chain newest-first, so
// an overwritten value is shadowed by its replacement. Put appends a
// record and repoints the bucket head; Delete tombstones in place.
package dbm

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// fsyncErrors counts fsync failures demoted to best-effort (the
// post-compaction directory sync). Surfaced as dav_fsync_errors_total.
var fsyncErrors atomic.Int64

// FsyncErrors reports how many fsync failures the dbm layer has
// swallowed (logged and counted rather than failing the operation).
func FsyncErrors() int64 { return fsyncErrors.Load() }

// syncDirEntry fsyncs a directory so a just-renamed entry survives a
// crash, returning the failure instead of dropping it.
func syncDirEntry(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Flavour selects the emulated DBM variant.
type Flavour byte

const (
	// GDBM: unlimited values, 25 KB initial file size, 512 buckets.
	// It is the zero value because it is the paper's primary
	// configuration and imposes no value-size limit.
	GDBM Flavour = iota
	// SDBM: 1 KB value limit, 8 KB initial file size, 128 buckets.
	SDBM
)

// String returns the conventional library name for the flavour.
func (f Flavour) String() string {
	switch f {
	case SDBM:
		return "SDBM"
	case GDBM:
		return "GDBM"
	default:
		return fmt.Sprintf("Flavour(%d)", byte(f))
	}
}

// params returns the tuning constants for the flavour.
func (f Flavour) params() (maxValue int, initialSize int64, buckets uint32) {
	switch f {
	case SDBM:
		return 1024, 8 * 1024, 128
	default:
		return 0, 25 * 1024, 512
	}
}

const (
	magic      = "GODBM1\n\x00"
	headerSize = int64(len(magic)) + 1 + 3 + 4 + 8 + 8
	recHdrSize = 8 + 1 + 4 + 4

	flagDeleted = 0x01
)

// Errors reported by the package.
var (
	// ErrValueTooLarge is returned by Put when the value exceeds the
	// flavour's per-value limit (SDBM: 1 KB).
	ErrValueTooLarge = errors.New("dbm: value exceeds flavour limit")
	// ErrClosed is returned by operations on a closed database.
	ErrClosed = errors.New("dbm: database is closed")
	// ErrCorrupt is returned when the file fails validation.
	ErrCorrupt = errors.New("dbm: corrupt database file")
)

// Stats describes the storage accounting of a database.
type Stats struct {
	Keys      int   // live key count
	LiveBytes int64 // bytes held by live records (incl. headers)
	DeadBytes int64 // bytes held by tombstoned/shadowed records
	FileSize  int64 // size of the backing file
}

// DB is an open database. It is safe for concurrent use.
type DB struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	flavour Flavour
	ctx     context.Context // trace binding from OpenContext; nil = untraced

	buckets []int64 // in-memory copy of the bucket table
	nkeys   int
	live    int64
	dead    int64
	end     int64 // append offset
	closed  bool

	maxValue    int
	initialSize int64
}

// Open opens or creates the database at path with the given flavour.
// Opening an existing database with a different flavour than it was
// created with is an error.
func Open(path string, flavour Flavour) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	db := &DB{f: f, path: path, flavour: flavour}
	db.maxValue, db.initialSize, _ = flavour.params()

	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() == 0 {
		if err := db.initialize(); err != nil {
			f.Close()
			return nil, err
		}
		return db, nil
	}
	if err := db.load(); err != nil {
		f.Close()
		return nil, err
	}
	return db, nil
}

// initialize writes a fresh header and bucket table and preallocates
// the flavour's minimum file size.
func (db *DB) initialize() error {
	_, _, nb := db.flavour.params()
	db.buckets = make([]int64, nb)
	db.end = headerSize + int64(nb)*8
	if err := db.writeHeader(); err != nil {
		return err
	}
	zero := make([]byte, int64(nb)*8)
	if _, err := db.f.WriteAt(zero, headerSize); err != nil {
		return err
	}
	if db.end < db.initialSize {
		if err := db.f.Truncate(db.initialSize); err != nil {
			return err
		}
	}
	return db.f.Sync()
}

// load reads the header and bucket table and computes the append
// offset by scanning the record area.
func (db *DB) load() error {
	hdr := make([]byte, headerSize)
	if _, err := db.f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if Flavour(hdr[len(magic)]) != db.flavour {
		return fmt.Errorf("dbm: %s opened as %s but created as %s",
			db.path, db.flavour, Flavour(hdr[len(magic)]))
	}
	off := len(magic) + 4
	nb := binary.LittleEndian.Uint32(hdr[off:])
	db.live = int64(binary.LittleEndian.Uint64(hdr[off+4:]))
	db.dead = int64(binary.LittleEndian.Uint64(hdr[off+12:]))
	if nb == 0 || nb > 1<<20 {
		return fmt.Errorf("%w: implausible bucket count %d", ErrCorrupt, nb)
	}
	db.buckets = make([]int64, nb)
	tbl := make([]byte, int64(nb)*8)
	if _, err := db.f.ReadAt(tbl, headerSize); err != nil {
		return fmt.Errorf("%w: short bucket table: %v", ErrCorrupt, err)
	}
	for i := range db.buckets {
		db.buckets[i] = int64(binary.LittleEndian.Uint64(tbl[i*8:]))
	}
	// Recover the append offset and key count by walking every chain.
	db.end = headerSize + int64(nb)*8
	db.nkeys = 0
	for _, head := range db.buckets {
		seen := map[string]bool{}
		for at := head; at != 0; {
			rec, err := db.readRecord(at)
			if err != nil {
				return err
			}
			if rend := at + recHdrSize + int64(len(rec.key)) + int64(rec.valLen); rend > db.end {
				db.end = rend
			}
			// Only the newest record per key determines liveness;
			// older shadowed versions are dead space.
			if !seen[string(rec.key)] {
				seen[string(rec.key)] = true
				if rec.flags&flagDeleted == 0 {
					db.nkeys++
				}
			}
			at = rec.prev
		}
	}
	return nil
}

func (db *DB) writeHeader() error {
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	hdr[len(magic)] = byte(db.flavour)
	off := len(magic) + 4
	binary.LittleEndian.PutUint32(hdr[off:], uint32(len(db.buckets)))
	binary.LittleEndian.PutUint64(hdr[off+4:], uint64(db.live))
	binary.LittleEndian.PutUint64(hdr[off+12:], uint64(db.dead))
	_, err := db.f.WriteAt(hdr, 0)
	return err
}

// fnv1a hashes a key to a bucket index.
func (db *DB) bucketOf(key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(len(db.buckets)))
}

type record struct {
	prev   int64
	flags  byte
	valLen uint32
	key    []byte
}

// readRecord reads the header and key (not the value) at offset at.
func (db *DB) readRecord(at int64) (record, error) {
	hdr := make([]byte, recHdrSize)
	if _, err := db.f.ReadAt(hdr, at); err != nil {
		return record{}, fmt.Errorf("%w: record header at %d: %v", ErrCorrupt, at, err)
	}
	var r record
	r.prev = int64(binary.LittleEndian.Uint64(hdr))
	r.flags = hdr[8]
	keyLen := binary.LittleEndian.Uint32(hdr[9:])
	r.valLen = binary.LittleEndian.Uint32(hdr[13:])
	if keyLen > 1<<24 || r.valLen > 1<<31 {
		return record{}, fmt.Errorf("%w: implausible lengths at %d", ErrCorrupt, at)
	}
	r.key = make([]byte, keyLen)
	if _, err := db.f.ReadAt(r.key, at+recHdrSize); err != nil {
		return record{}, fmt.Errorf("%w: record key at %d: %v", ErrCorrupt, at, err)
	}
	return r, nil
}

// findLocked returns the offset and record of the newest live record
// for key, or 0 if absent. Caller holds db.mu.
func (db *DB) findLocked(key []byte) (int64, record, error) {
	for at := db.buckets[db.bucketOf(key)]; at != 0; {
		rec, err := db.readRecord(at)
		if err != nil {
			return 0, record{}, err
		}
		if string(rec.key) == string(key) {
			if rec.flags&flagDeleted != 0 {
				return 0, record{}, nil // tombstone shadows older versions
			}
			return at, rec, nil
		}
		at = rec.prev
	}
	return 0, record{}, nil
}

// Get returns the value stored for key, and whether it was present.
// The returned slice is a fresh copy owned by the caller.
func (db *DB) Get(key []byte) (val []byte, found bool, err error) {
	defer db.opSpan("dbm.get")(&err)
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	at, rec, err := db.findLocked(key)
	if err != nil || at == 0 {
		return nil, false, err
	}
	val = make([]byte, rec.valLen)
	if _, err := db.f.ReadAt(val, at+recHdrSize+int64(len(rec.key))); err != nil {
		return nil, false, fmt.Errorf("%w: record value: %v", ErrCorrupt, err)
	}
	return val, true, nil
}

// Has reports whether key is present.
func (db *DB) Has(key []byte) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return false, ErrClosed
	}
	at, _, err := db.findLocked(key)
	return at != 0, err
}

// Put stores value under key, replacing any existing value. The old
// record, if any, becomes dead space until Compact is called.
func (db *DB) Put(key, value []byte) (err error) {
	defer db.opSpan("dbm.put")(&err)
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if len(key) == 0 {
		return errors.New("dbm: empty key")
	}
	if db.maxValue > 0 && len(value) > db.maxValue {
		return fmt.Errorf("%w: %d > %d (%s)", ErrValueTooLarge, len(value), db.maxValue, db.flavour)
	}
	// Shadow any existing record: chains are walked newest-first, so
	// simply appending a new head suffices, but we must move the old
	// record's bytes from the live to the dead account.
	oldAt, oldRec, err := db.findLocked(key)
	if err != nil {
		return err
	}
	b := db.bucketOf(key)
	rec := make([]byte, recHdrSize+len(key)+len(value))
	binary.LittleEndian.PutUint64(rec, uint64(db.buckets[b]))
	rec[8] = 0
	binary.LittleEndian.PutUint32(rec[9:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[13:], uint32(len(value)))
	copy(rec[recHdrSize:], key)
	copy(rec[recHdrSize+len(key):], value)
	at := db.end
	if _, err := db.f.WriteAt(rec, at); err != nil {
		return err
	}
	db.end = at + int64(len(rec))
	if err := db.setBucketHead(b, at); err != nil {
		return err
	}
	db.live += int64(len(rec))
	if oldAt != 0 {
		sz := recHdrSize + int64(len(oldRec.key)) + int64(oldRec.valLen)
		db.live -= sz
		db.dead += sz
	} else {
		db.nkeys++
	}
	return nil
}

// setBucketHead updates a bucket head both in memory and on disk.
func (db *DB) setBucketHead(b int, at int64) error {
	db.buckets[b] = at
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(at))
	_, err := db.f.WriteAt(buf[:], headerSize+int64(b)*8)
	return err
}

// Delete removes key, reporting whether it was present. The record is
// tombstoned in place; its space is reclaimed only by Compact.
func (db *DB) Delete(key []byte) (found bool, err error) {
	defer db.opSpan("dbm.delete")(&err)
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return false, ErrClosed
	}
	at, rec, err := db.findLocked(key)
	if err != nil || at == 0 {
		return false, err
	}
	if _, err := db.f.WriteAt([]byte{rec.flags | flagDeleted}, at+8); err != nil {
		return false, err
	}
	sz := recHdrSize + int64(len(rec.key)) + int64(rec.valLen)
	db.live -= sz
	db.dead += sz
	db.nkeys--
	return true, nil
}

// ForEach calls fn for every live key/value pair. Iteration order is
// unspecified. If fn returns a non-nil error, iteration stops and the
// error is returned. fn must not call back into the database.
func (db *DB) ForEach(fn func(key, value []byte) error) error {
	return db.ForEachContext(context.Background(), fn)
}

// ForEachContext is ForEach with a cancellation checkpoint between
// records: a large property database (the paper's Berkeley-DB-scale
// scans) stops promptly when the requesting client goes away, instead
// of holding the database mutex for the full walk. Iteration is
// read-only, so stopping early leaves nothing to undo.
func (db *DB) ForEachContext(ctx context.Context, fn func(key, value []byte) error) (err error) {
	defer db.opSpan("dbm.foreach")(&err)
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.forEachLocked(ctx, fn)
}

// ctxCheckInterval is how many records a long scan processes between
// context checks — frequent enough that a cancelled walk of even a
// huge chain stops within microseconds, rare enough that ctx.Err()'s
// atomic load never shows up in a profile.
const ctxCheckInterval = 64

func (db *DB) forEachLocked(ctx context.Context, fn func(key, value []byte) error) error {
	n := 0
	for _, head := range db.buckets {
		seen := map[string]bool{}
		for at := head; at != 0; {
			if n++; n%ctxCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			rec, err := db.readRecord(at)
			if err != nil {
				return err
			}
			if !seen[string(rec.key)] {
				seen[string(rec.key)] = true
				if rec.flags&flagDeleted == 0 {
					val := make([]byte, rec.valLen)
					if _, err := db.f.ReadAt(val, at+recHdrSize+int64(len(rec.key))); err != nil {
						return fmt.Errorf("%w: record value: %v", ErrCorrupt, err)
					}
					if err := fn(append([]byte(nil), rec.key...), val); err != nil {
						return err
					}
				}
			}
			at = rec.prev
		}
	}
	return nil
}

// Keys returns every live key. The order is unspecified.
func (db *DB) Keys() ([]string, error) {
	var keys []string
	err := db.ForEach(func(k, _ []byte) error {
		keys = append(keys, string(k))
		return nil
	})
	return keys, err
}

// Len returns the number of live keys.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.nkeys
}

// Stats returns the storage accounting for the database.
func (db *DB) Stats() (Stats, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return Stats{}, ErrClosed
	}
	fi, err := db.f.Stat()
	if err != nil {
		return Stats{}, err
	}
	return Stats{Keys: db.nkeys, LiveBytes: db.live, DeadBytes: db.dead, FileSize: fi.Size()}, nil
}

// Compact rewrites the database, dropping tombstones and shadowed
// records — the manual garbage-collection step the paper describes for
// SDBM/GDBM. The file shrinks to the live data (never below the
// flavour's initial size).
func (db *DB) Compact() error {
	return db.CompactContext(context.Background())
}

// CompactContext is Compact with cancellation checkpoints while the
// live records are being copied into the replacement file. Aborting
// there is free — the half-built temporary is removed and the original
// database is untouched. Once the copy is complete the swap itself runs
// to completion regardless of ctx: rename-then-reopen is quick, and a
// torn swap would be worse than a momentarily over-budget request.
func (db *DB) CompactContext(ctx context.Context) (err error) {
	defer db.opSpan("dbm.compact")(&err)
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	tmpPath := db.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)

	ndb := &DB{f: tmp, path: tmpPath, flavour: db.flavour}
	ndb.maxValue, ndb.initialSize, _ = db.flavour.params()
	if err := ndb.initialize(); err != nil {
		tmp.Close()
		return err
	}
	err = db.forEachLocked(ctx, func(k, v []byte) error {
		return ndb.putUnlocked(k, v)
	})
	if err != nil {
		tmp.Close()
		return err
	}
	if err := ndb.writeHeader(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, db.path); err != nil {
		return err
	}
	// Make the rename durable: fsync the directory entry. The
	// compaction already succeeded, so a failure here is demoted to a
	// WARN log and the dav_fsync_errors_total counter rather than
	// failing the call — but it is no longer silently dropped (some
	// filesystems refuse to sync directories).
	if err := syncDirEntry(filepath.Dir(db.path)); err != nil {
		fsyncErrors.Add(1)
		slog.Warn("dbm: directory fsync failed after compaction rename; entry may not survive power loss",
			"db", db.path, "err", err)
	}
	old := db.f
	f, err := os.OpenFile(db.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	db.f = f
	db.buckets = ndb.buckets
	db.nkeys = ndb.nkeys
	db.live = ndb.live
	db.dead = 0
	db.end = ndb.end
	return nil
}

// putUnlocked is Put without locking, for use while building a fresh
// database that no other goroutine can see.
func (db *DB) putUnlocked(key, value []byte) error {
	b := db.bucketOf(key)
	rec := make([]byte, recHdrSize+len(key)+len(value))
	binary.LittleEndian.PutUint64(rec, uint64(db.buckets[b]))
	binary.LittleEndian.PutUint32(rec[9:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[13:], uint32(len(value)))
	copy(rec[recHdrSize:], key)
	copy(rec[recHdrSize+len(key):], value)
	at := db.end
	if _, err := db.f.WriteAt(rec, at); err != nil {
		return err
	}
	db.end = at + int64(len(rec))
	if err := db.setBucketHead(b, at); err != nil {
		return err
	}
	db.live += int64(len(rec))
	db.nkeys++
	return nil
}

// Sync flushes the header accounting and file contents to stable
// storage.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.writeHeader(); err != nil {
		return err
	}
	return db.f.Sync()
}

// Close syncs and closes the database. Further operations return
// ErrClosed.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	err1 := db.writeHeader()
	err2 := db.f.Sync()
	err3 := db.f.Close()
	if err1 != nil {
		return err1
	}
	if err2 != nil {
		return err2
	}
	return err3
}

// Path returns the backing file path.
func (db *DB) Path() string { return db.path }

// FlavourOf reads the flavour byte from an existing database file
// without opening it fully.
func FlavourOf(path string) (Flavour, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	return Flavour(hdr[len(magic)]), nil
}
