package dbm

import (
	"container/list"
	"context"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs/trace"
)

// This file is the shared handle cache: a bounded, refcounted LRU of
// open DB handles keyed by file path, with single-flight opens. It
// replaces the open-read-close-per-operation pattern mod_dav used
// (and this repo reproduced through PR 3): a Depth:1 PROPFIND over N
// members used to pay N full open cycles; through the cache, a hot
// property database is opened once and then shared by every request
// that touches it until eviction or invalidation.
//
// Lifecycle rules:
//
//   - Acquire returns a Handle pinning the entry; the DB is never
//     closed while pinned. Handles are cheap and per-request.
//   - Eviction (LRU, beyond the capacity) and Invalidate close the DB
//     once the last pin is released.
//   - Invalidate must be called when the backing file is deleted or
//     renamed (the store's Delete and Rename paths do this). Compact
//     needs no invalidation: DB.Compact swaps the file under the same
//     *DB, so cached handles stay valid.
//
// A capacity <= 0 disables caching: Acquire opens a fresh DB and the
// Handle's Close closes it — the PR 3 behaviour, kept for the
// benchmark baseline and as an operational escape hatch.

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	Hits          int64 // Acquire calls served by an open handle
	Misses        int64 // Acquire calls that had to open the database
	Evictions     int64 // entries closed by LRU pressure
	Invalidations int64 // entries closed by Invalidate/InvalidatePrefix
	Open          int   // entries currently in the cache
	Pinned        int   // entries with at least one outstanding Handle
}

// Cache is a bounded, refcounted LRU of open databases. Safe for
// concurrent use.
type Cache struct {
	capacity int
	flavour  Flavour

	mu      sync.Mutex
	entries map[string]*cacheEntry
	idle    *list.List // refs==0 entries, most recently used at front

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

type cacheEntry struct {
	path  string
	db    *DB
	err   error
	ready chan struct{} // closed once the single-flight open finishes
	refs  int
	// doomed entries have been evicted or invalidated while pinned;
	// the last release closes them.
	doomed bool
	elem   *list.Element // position in idle, nil while pinned
}

// NewCache returns a cache of open databases of one flavour, holding at
// most capacity handles open (capacity <= 0 disables caching; see the
// file comment).
func NewCache(capacity int, flavour Flavour) *Cache {
	return &Cache{
		capacity: capacity,
		flavour:  flavour,
		entries:  map[string]*cacheEntry{},
		idle:     list.New(),
	}
}

// Capacity returns the configured capacity (<= 0 when caching is
// disabled).
func (c *Cache) Capacity() int { return c.capacity }

// Handle is a pinned reference to an open database. Operations on the
// handle are attributed to the Acquire context's trace (the "dbm.*"
// spans). Close releases the pin; it must be called exactly once.
type Handle struct {
	db    *DB
	ctx   context.Context
	cache *Cache      // nil for uncached (capacity<=0) handles
	entry *cacheEntry // nil for uncached handles
}

// Acquire returns a pinned handle on the database at path, opening it
// if no cached handle exists. Concurrent Acquires of one path share a
// single open (single-flight); all callers see the same result. The
// open, when it happens, is recorded as a "dbm.open" span on ctx.
func (c *Cache) Acquire(ctx context.Context, path string) (*Handle, error) {
	if c.capacity <= 0 {
		c.misses.Add(1)
		db, err := OpenContext(ctx, path, c.flavour)
		if err != nil {
			return nil, err
		}
		// OpenContext binds ctx to the DB for per-op spans; an uncached
		// handle is single-owner, so the binding is exact.
		return &Handle{db: db, ctx: ctx}, nil
	}

	c.mu.Lock()
	if e, ok := c.entries[path]; ok {
		e.pinLocked(c)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The single-flight open failed; unpin and report it.
			c.release(e)
			return nil, e.err
		}
		c.hits.Add(1)
		return &Handle{db: e.db, ctx: ctx, cache: c, entry: e}, nil
	}

	// Miss: insert the placeholder, then open outside the lock so a
	// slow open never blocks hits on other paths.
	e := &cacheEntry{path: path, ready: make(chan struct{}), refs: 1}
	c.entries[path] = e
	c.mu.Unlock()

	c.misses.Add(1)
	_, end := trace.Region(ctx, "dbm.open",
		trace.Str("file", filepath.Base(path)), trace.Str("flavour", c.flavour.String()))
	db, err := Open(path, c.flavour)
	end(err)

	c.mu.Lock()
	e.db, e.err = db, err
	close(e.ready)
	if err != nil {
		// Failed entries are not cached; remove so the next Acquire
		// retries the open. Waiters pinned before removal observe err
		// via ready and unpin through release.
		if c.entries[path] == e {
			delete(c.entries, path)
		}
		e.doomed = true
		e.refs--
		c.mu.Unlock()
		return nil, err
	}
	toClose := c.trimLocked()
	c.mu.Unlock()
	for _, evicted := range toClose {
		evicted.Close()
	}
	return &Handle{db: db, ctx: ctx, cache: c, entry: e}, nil
}

// pinLocked takes a reference, removing the entry from the idle list if
// this is the first pin. Caller holds c.mu.
func (e *cacheEntry) pinLocked(c *Cache) {
	e.refs++
	if e.elem != nil {
		c.idle.Remove(e.elem)
		e.elem = nil
	}
}

// release drops one reference and disposes of the entry if it became
// doomed while pinned.
func (c *Cache) release(e *cacheEntry) {
	c.mu.Lock()
	var toClose []*DB
	e.refs--
	if e.refs == 0 {
		if e.doomed {
			toClose = append(toClose, e.db)
		} else {
			e.elem = c.idle.PushFront(e)
			toClose = c.trimLocked()
		}
	}
	c.mu.Unlock()
	for _, db := range toClose {
		db.Close()
	}
}

// trimLocked unlinks idle entries beyond the capacity, oldest first,
// and returns their databases for the caller to close after dropping
// c.mu — a slow Close must never stall unrelated Acquires. Pinned
// entries are not evictable, so the cache may transiently exceed its
// capacity under heavy pinning. Caller holds c.mu.
func (c *Cache) trimLocked() []*DB {
	var toClose []*DB
	for len(c.entries) > c.capacity {
		back := c.idle.Back()
		if back == nil {
			break // everything over capacity is pinned
		}
		e := back.Value.(*cacheEntry)
		c.idle.Remove(back)
		e.elem = nil
		delete(c.entries, e.path)
		c.evictions.Add(1)
		// refs==0 (it was idle): safe to close once the lock is gone.
		toClose = append(toClose, e.db)
	}
	return toClose
}

// Invalidate removes the entry for path, closing the database once (and
// if) its last pin is released. Call it after deleting or renaming the
// backing file. Invalidating an uncached path is a no-op.
func (c *Cache) Invalidate(path string) {
	c.mu.Lock()
	e, ok := c.entries[path]
	var toClose *DB
	if ok {
		delete(c.entries, path)
		c.invalidations.Add(1)
		e.doomed = true
		if e.elem != nil {
			c.idle.Remove(e.elem)
			e.elem = nil
		}
		if e.refs == 0 {
			toClose = e.db
		}
	}
	c.mu.Unlock()
	if toClose != nil {
		toClose.Close()
	}
}

// InvalidatePrefix invalidates every cached path under dir (inclusive).
// The store's subtree Delete and Rename use it: one directory removal
// can orphan many cached member databases.
func (c *Cache) InvalidatePrefix(dir string) {
	prefix := dir
	if sep := string(filepath.Separator); !strings.HasSuffix(prefix, sep) {
		prefix += sep
	}
	c.mu.Lock()
	var toClose []*DB
	for p, e := range c.entries {
		if p != dir && !strings.HasPrefix(p, prefix) {
			continue
		}
		delete(c.entries, p)
		c.invalidations.Add(1)
		e.doomed = true
		if e.elem != nil {
			c.idle.Remove(e.elem)
			e.elem = nil
		}
		if e.refs == 0 {
			toClose = append(toClose, e.db)
		}
	}
	c.mu.Unlock()
	for _, db := range toClose {
		db.Close()
	}
}

// Close closes every unpinned database and dooms the pinned ones (their
// last release closes them). The cache remains usable, but a store
// shutting down should not Acquire afterwards.
func (c *Cache) Close() error {
	c.mu.Lock()
	var toClose []*DB
	for p, e := range c.entries {
		delete(c.entries, p)
		e.doomed = true
		if e.elem != nil {
			c.idle.Remove(e.elem)
			e.elem = nil
		}
		if e.refs == 0 {
			toClose = append(toClose, e.db)
		}
	}
	c.mu.Unlock()
	var first error
	for _, db := range toClose {
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	open := len(c.entries)
	pinned := 0
	for _, e := range c.entries {
		if e.refs > 0 {
			pinned++
		}
	}
	c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Open:          open,
		Pinned:        pinned,
	}
}

// Close releases the handle's pin. For uncached handles it closes the
// database itself.
func (h *Handle) Close() error {
	if h.cache == nil {
		return h.db.Close()
	}
	h.cache.release(h.entry)
	return nil
}

// DB exposes the underlying database. The caller must not Close it;
// lifetime belongs to the cache.
func (h *Handle) DB() *DB { return h.db }

// span opens a per-operation span on the handle's context. Cached
// databases carry no context of their own (they outlive any single
// request), so the handle supplies the attribution the plain DB methods
// would otherwise take from OpenContext's binding.
func (h *Handle) span(op string) func(*error) {
	if h.cache == nil {
		// Uncached handles were opened via OpenContext: the DB's own
		// opSpan fires inside each method; avoid double spans.
		return func(*error) {}
	}
	_, end := trace.Region(h.ctx, op, trace.Str("file", filepath.Base(h.db.path)))
	return func(errp *error) { end(*errp) }
}

// Get reads a key through the handle (span: "dbm.get").
func (h *Handle) Get(key []byte) (val []byte, found bool, err error) {
	defer h.span("dbm.get")(&err)
	return h.db.Get(key)
}

// Put writes a key through the handle (span: "dbm.put").
func (h *Handle) Put(key, value []byte) (err error) {
	defer h.span("dbm.put")(&err)
	return h.db.Put(key, value)
}

// Delete removes a key through the handle (span: "dbm.delete").
func (h *Handle) Delete(key []byte) (found bool, err error) {
	defer h.span("dbm.delete")(&err)
	return h.db.Delete(key)
}

// ForEach iterates live pairs through the handle (span: "dbm.foreach").
// The walk checks the handle's request context between records, so a
// scan on behalf of a disconnected client stops instead of finishing a
// pointless iteration while holding the database mutex.
func (h *Handle) ForEach(fn func(key, value []byte) error) (err error) {
	defer h.span("dbm.foreach")(&err)
	ctx := h.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return h.db.ForEachContext(ctx, fn)
}
