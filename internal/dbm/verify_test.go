package dbm

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestVerifyCleanDatabase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.props")
	db, err := Open(path, GDBM)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		if err := db.Put([]byte(kv[0]), []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Delete([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Verify(path); err != nil {
		t.Fatalf("Verify on clean database: %v", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	build := func(name string) (string, *DB) {
		t.Helper()
		path := filepath.Join(dir, name)
		db, err := Open(path, SDBM)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Put([]byte("key"), []byte("value")); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		return path, db
	}

	t.Run("bad magic", func(t *testing.T) {
		path, _ := build("magic.props")
		data, _ := os.ReadFile(path)
		data[0] ^= 0xff
		os.WriteFile(path, data, 0o644)
		if err := Verify(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Verify = %v, want ErrCorrupt", err)
		}
	})

	t.Run("truncated mid-record", func(t *testing.T) {
		path, _ := build("trunc.props")
		// Cut the file inside the record body (the flavour preallocates
		// past it) so the key/value run past end of file.
		db, err := Open(path, SDBM)
		if err != nil {
			t.Fatal(err)
		}
		at := db.buckets[db.bucketOf([]byte("key"))]
		db.Close()
		if err := os.Truncate(path, at+recHdrSize); err != nil {
			t.Fatal(err)
		}
		if err := Verify(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Verify = %v, want ErrCorrupt", err)
		}
	})

	t.Run("forward-pointing chain", func(t *testing.T) {
		path, _ := build("cycle.props")
		db, err := Open(path, SDBM)
		if err != nil {
			t.Fatal(err)
		}
		// Find the record offset via the bucket table, then overwrite
		// its prev pointer with its own offset — a self-loop.
		b := db.bucketOf([]byte("key"))
		at := db.buckets[b]
		db.Close()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(at))
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(buf[:], at); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := Verify(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Verify = %v, want ErrCorrupt", err)
		}
	})
}
