// Trace integration: a database opened with OpenContext attributes its
// open and every subsequent operation to the trace carried by the
// context, producing "dbm.*" spans nested under the store-layer spans.
// Databases opened with plain Open record nothing and pay nothing.
package dbm

import (
	"context"
	"path/filepath"

	"repro/internal/obs/trace"
)

// OpenContext opens the database like Open and binds ctx to it. When
// ctx carries an active trace span, the open itself becomes a
// "dbm.open" child span and each operation on the returned DB becomes
// a "dbm.get"/"dbm.put"/... child span. The binding is read-only after
// Open, so the DB remains safe for concurrent use.
func OpenContext(ctx context.Context, path string, flavour Flavour) (*DB, error) {
	_, end := trace.Region(ctx, "dbm.open",
		trace.Str("file", filepath.Base(path)), trace.Str("flavour", flavour.String()))
	db, err := Open(path, flavour)
	end(err)
	if db != nil {
		db.ctx = ctx
	}
	return db, err
}

// opSpan starts the per-operation span and returns the finisher to
// defer. The error pointer indirection lets one deferred call close
// the span with whichever error the operation ultimately returned.
func (db *DB) opSpan(op string) func(*error) {
	if db.ctx == nil {
		return nopSpanEnd
	}
	_, end := trace.Region(db.ctx, op, trace.Str("file", filepath.Base(db.path)))
	return func(errp *error) { end(*errp) }
}

func nopSpanEnd(*error) {}
