package dbm

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
)

// Verify checks the structural integrity of the database file at path
// without opening it for use: header magic and flavour byte, a
// plausible bucket table, and every bucket chain — each record must
// lie inside the file, carry plausible lengths, and point strictly
// backwards (records are append-only, so a chain that points forward
// or at itself is corrupt and would loop a reader forever). Returns
// nil for a structurally sound file and an error wrapping ErrCorrupt
// otherwise.
//
// Verify is read-only and safe to run on a database another process
// has open, though a concurrent writer can yield spurious findings;
// fsck runs it on quiescent stores.
func Verify(path string) error {
	return VerifyContext(context.Background(), path)
}

// VerifyContext is Verify with a cancellation checkpoint between bucket
// chains, so an fsck pass over thousands of sidecar databases can be
// abandoned promptly. Verification is read-only; stopping early leaves
// nothing behind.
func VerifyContext(ctx context.Context, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	if size < headerSize {
		return fmt.Errorf("%w: %s: file shorter than header", ErrCorrupt, path)
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("%w: %s: short header: %v", ErrCorrupt, path, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	switch Flavour(hdr[len(magic)]) {
	case GDBM, SDBM:
	default:
		return fmt.Errorf("%w: %s: unknown flavour byte %d", ErrCorrupt, path, hdr[len(magic)])
	}
	off := len(magic) + 4
	nb := binary.LittleEndian.Uint32(hdr[off:])
	if nb == 0 || nb > 1<<20 {
		return fmt.Errorf("%w: %s: implausible bucket count %d", ErrCorrupt, path, nb)
	}
	tableEnd := headerSize + int64(nb)*8
	if size < tableEnd {
		return fmt.Errorf("%w: %s: file shorter than bucket table", ErrCorrupt, path)
	}
	tbl := make([]byte, int64(nb)*8)
	if _, err := f.ReadAt(tbl, headerSize); err != nil {
		return fmt.Errorf("%w: %s: short bucket table: %v", ErrCorrupt, path, err)
	}
	rec := make([]byte, recHdrSize)
	for b := uint32(0); b < nb; b++ {
		if b%256 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		at := int64(binary.LittleEndian.Uint64(tbl[b*8:]))
		// Chains run newest-to-oldest and records are append-only, so
		// each hop must strictly decrease; the chain length is bounded
		// by that alone, no visited-set needed.
		for at != 0 {
			if at < tableEnd || at+recHdrSize > size {
				return fmt.Errorf("%w: %s: bucket %d: record offset %d outside file",
					ErrCorrupt, path, b, at)
			}
			if _, err := f.ReadAt(rec, at); err != nil {
				return fmt.Errorf("%w: %s: bucket %d: record header at %d: %v",
					ErrCorrupt, path, b, at, err)
			}
			prev := int64(binary.LittleEndian.Uint64(rec))
			keyLen := binary.LittleEndian.Uint32(rec[9:])
			valLen := binary.LittleEndian.Uint32(rec[13:])
			if keyLen > 1<<24 || valLen > 1<<31 {
				return fmt.Errorf("%w: %s: bucket %d: implausible lengths at %d",
					ErrCorrupt, path, b, at)
			}
			if end := at + recHdrSize + int64(keyLen) + int64(valLen); end > size {
				return fmt.Errorf("%w: %s: bucket %d: record at %d runs past end of file",
					ErrCorrupt, path, b, at)
			}
			if prev != 0 && prev >= at {
				return fmt.Errorf("%w: %s: bucket %d: chain at %d points forward to %d (cycle)",
					ErrCorrupt, path, b, at, prev)
			}
			at = prev
		}
	}
	return nil
}
