package core

import (
	"encoding/xml"
	"path"

	"repro/internal/davproto"
)

// Schema translation (Discussion section): a third-party application
// built against its own vocabulary (say, CML names) reads and writes
// the repository through a TranslatedView, driven by a mapping
// document that lives in the repository itself — "encode the mapping
// between their object schemas external to their applications in a
// dynamically evolvable form". Updating the stored mapping changes the
// integration without touching either application.

// MappingsCollection is the conventional location for mapping
// documents.
const MappingsCollection = "/mappings"

// SaveMapping stores a mapping document at path (creating the
// conventional collection if the path is inside it).
func (s *DAVStorage) SaveMapping(p string, m *davproto.Mapping) error {
	if path.Dir(p) == MappingsCollection {
		if err := s.c.MkcolAll(MappingsCollection); err != nil {
			return mapErr(err)
		}
	}
	if _, err := s.c.PutBytes(p, m.Marshal(), "text/xml"); err != nil {
		return mapErr(err)
	}
	return mapErr(s.c.SetProps(p, textProp(PropObjectType, "schemamapping")))
}

// LoadMapping fetches and parses a stored mapping document.
func (s *DAVStorage) LoadMapping(p string) (*davproto.Mapping, error) {
	body, err := s.c.Get(p)
	if err != nil {
		return nil, mapErr(err)
	}
	return davproto.ParseMappingBytes(body)
}

// TranslatedView presents a DAV repository under a foreign schema.
// Queries are posed with foreign names; results and annotations are
// translated through the mapping in both directions.
type TranslatedView struct {
	s *DAVStorage
	m *davproto.Mapping
}

var (
	_ Finder    = (*TranslatedView)(nil)
	_ Annotator = (*TranslatedView)(nil)
)

// NewTranslatedView builds a view of s under mapping m.
func NewTranslatedView(s *DAVStorage, m *davproto.Mapping) *TranslatedView {
	return &TranslatedView{s: s, m: m}
}

// OpenTranslatedView loads the mapping document at mappingPath and
// returns the view — the "install a mapping, get interoperability"
// workflow.
func OpenTranslatedView(s *DAVStorage, mappingPath string) (*TranslatedView, error) {
	m, err := s.LoadMapping(mappingPath)
	if err != nil {
		return nil, err
	}
	return NewTranslatedView(s, m), nil
}

// translate maps a foreign name to the stored name (identity when
// unmapped).
func (v *TranslatedView) translate(name xml.Name) xml.Name {
	if to, ok := v.m.Lookup(name); ok {
		return to
	}
	return name
}

// FindByMetadata implements Finder in the foreign schema.
func (v *TranslatedView) FindByMetadata(root string, name xml.Name, pred func(string) bool) ([]string, error) {
	return v.s.FindByMetadata(root, v.translate(name), pred)
}

// FindWhere runs a foreign-schema DASL expression by rewriting the
// property names it references.
func (v *TranslatedView) FindWhere(root string, where davproto.SearchExpr, selectName xml.Name) ([]string, error) {
	return v.s.FindWhere(root, v.translateExpr(where), v.translate(selectName))
}

func (v *TranslatedView) translateExpr(e davproto.SearchExpr) davproto.SearchExpr {
	switch t := e.(type) {
	case davproto.AndExpr:
		out := davproto.AndExpr{}
		for _, c := range t.Children {
			out.Children = append(out.Children, v.translateExpr(c))
		}
		return out
	case davproto.OrExpr:
		out := davproto.OrExpr{}
		for _, c := range t.Children {
			out.Children = append(out.Children, v.translateExpr(c))
		}
		return out
	case davproto.NotExpr:
		return davproto.NotExpr{Child: v.translateExpr(t.Child)}
	case davproto.CompareExpr:
		t.Prop = v.translate(t.Prop)
		return t
	case davproto.IsDefinedExpr:
		t.Prop = v.translate(t.Prop)
		return t
	default:
		return e
	}
}

// ReadAnnotation implements Annotator in the foreign schema.
func (v *TranslatedView) ReadAnnotation(p string, name xml.Name) (string, bool, error) {
	return v.s.ReadAnnotation(p, v.translate(name))
}

// Annotate implements Annotator: a write under a foreign name lands
// under the mapped stored name, so both applications see one value.
func (v *TranslatedView) Annotate(p string, name xml.Name, value string) error {
	return v.s.Annotate(p, v.translate(name), value)
}
