package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/model"
)

// Output-property document codec. Each n-dimensional property becomes
// its own DAV document (the paper's lowest-granularity mapping) with a
// compact binary body — the values — while name, units and shape are
// duplicated into metadata so agents can discover them without
// fetching the body.
//
// Layout (little endian):
//
//	magic   "EPRP1\n"
//	nameLen uint16, name bytes
//	unitLen uint16, unit bytes
//	ndims   uint16, dims []uint32
//	count   uint64, values []float64

const propMagic = "EPRP1\n"

// EncodeProperty renders a property document body.
func EncodeProperty(p *model.Property) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Name) > math.MaxUint16 || len(p.Units) > math.MaxUint16 || len(p.Dims) > math.MaxUint16 {
		return nil, fmt.Errorf("core: property %q header fields too large", p.Name)
	}
	size := len(propMagic) + 2 + len(p.Name) + 2 + len(p.Units) + 2 + 4*len(p.Dims) + 8 + 8*len(p.Values)
	buf := make([]byte, 0, size)
	buf = append(buf, propMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Name)))
	buf = append(buf, p.Name...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Units)))
	buf = append(buf, p.Units...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Dims)))
	for _, d := range p.Dims {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(p.Values)))
	for _, v := range p.Values {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf, nil
}

// DecodeProperty parses a property document body.
func DecodeProperty(data []byte) (model.Property, error) {
	var p model.Property
	if len(data) < len(propMagic) || string(data[:len(propMagic)]) != propMagic {
		return p, fmt.Errorf("core: not a property document")
	}
	rest := data[len(propMagic):]
	readBytes := func(n int) ([]byte, error) {
		if len(rest) < n {
			return nil, fmt.Errorf("core: truncated property document")
		}
		out := rest[:n]
		rest = rest[n:]
		return out, nil
	}
	readU16 := func() (int, error) {
		b, err := readBytes(2)
		if err != nil {
			return 0, err
		}
		return int(binary.LittleEndian.Uint16(b)), nil
	}

	n, err := readU16()
	if err != nil {
		return p, err
	}
	name, err := readBytes(n)
	if err != nil {
		return p, err
	}
	p.Name = string(name)

	n, err = readU16()
	if err != nil {
		return p, err
	}
	units, err := readBytes(n)
	if err != nil {
		return p, err
	}
	p.Units = string(units)

	ndims, err := readU16()
	if err != nil {
		return p, err
	}
	for i := 0; i < ndims; i++ {
		b, err := readBytes(4)
		if err != nil {
			return p, err
		}
		p.Dims = append(p.Dims, int(binary.LittleEndian.Uint32(b)))
	}

	cb, err := readBytes(8)
	if err != nil {
		return p, err
	}
	count := binary.LittleEndian.Uint64(cb)
	if count > uint64(len(rest)/8) {
		return p, fmt.Errorf("core: property document claims %d values, body holds %d", count, len(rest)/8)
	}
	p.Values = make([]float64, count)
	for i := range p.Values {
		b, _ := readBytes(8)
		p.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	if err := p.Validate(); err != nil {
		return p, fmt.Errorf("core: decoded property inconsistent: %w", err)
	}
	return p, nil
}
