package core

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"

	"repro/internal/chem"
	"repro/internal/model"
)

// Federation: the paper's introduction motivates "federated access to
// multiple data stores at multiple locations ... to provide
// multi-scale and/or cross-disciplinary capabilities", which it calls
// "difficult and costly" with closed architectures. With the open
// architecture it is a routing table: FederatedStorage mounts any
// number of DataStorage backends under path prefixes and presents them
// as one repository. Because the interface is protocol-neutral, a
// federation can mix DAV servers at different sites with a legacy OODB
// during a gradual migration.
//
// Cross-store operations (Copy between mounts) are routed through the
// generic interface, so they work — at copy-over-the-wire cost —
// between any pair of backends.

// Mount binds a path prefix to a backend.
type Mount struct {
	// Prefix is the federation-visible root, e.g. "/pnnl" or "/ornl".
	Prefix string
	// Storage serves every path under Prefix.
	Storage DataStorage
}

// FederatedStorage is a DataStorage routing to mounted backends. It
// also implements Finder and Annotator: discovery fans out across
// every mount that supports it, and annotation routes to the owning
// mount.
type FederatedStorage struct {
	mounts []Mount // sorted by descending prefix length (longest match wins)
}

var _ DataStorage = (*FederatedStorage)(nil)
var _ Finder = (*FederatedStorage)(nil)
var _ Annotator = (*FederatedStorage)(nil)

// NewFederation builds a federation from mounts. Prefixes must be
// clean ("/name"), unique, and non-nested.
func NewFederation(mounts ...Mount) (*FederatedStorage, error) {
	if len(mounts) == 0 {
		return nil, fmt.Errorf("core: federation needs at least one mount")
	}
	seen := map[string]bool{}
	for i, m := range mounts {
		if !strings.HasPrefix(m.Prefix, "/") || strings.HasSuffix(m.Prefix, "/") || m.Prefix == "/" {
			return nil, fmt.Errorf("core: bad mount prefix %q", m.Prefix)
		}
		if m.Storage == nil {
			return nil, fmt.Errorf("core: mount %q has no storage", m.Prefix)
		}
		if seen[m.Prefix] {
			return nil, fmt.Errorf("core: duplicate mount %q", m.Prefix)
		}
		seen[m.Prefix] = true
		for j, other := range mounts {
			if i != j && strings.HasPrefix(m.Prefix+"/", other.Prefix+"/") {
				return nil, fmt.Errorf("core: nested mounts %q and %q", m.Prefix, other.Prefix)
			}
		}
	}
	fs := &FederatedStorage{mounts: append([]Mount(nil), mounts...)}
	sort.Slice(fs.mounts, func(i, j int) bool {
		return len(fs.mounts[i].Prefix) > len(fs.mounts[j].Prefix)
	})
	return fs, nil
}

// Mounts returns the mount table, sorted by prefix.
func (f *FederatedStorage) Mounts() []Mount {
	out := append([]Mount(nil), f.mounts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out
}

// route resolves a federation path to (backend, backend-local path).
func (f *FederatedStorage) route(p string) (DataStorage, string, error) {
	for _, m := range f.mounts {
		if p == m.Prefix {
			return m.Storage, "/", nil
		}
		if strings.HasPrefix(p, m.Prefix+"/") {
			return m.Storage, p[len(m.Prefix):], nil
		}
	}
	return nil, "", fmt.Errorf("%w: no mount serves %s", ErrNotFound, p)
}

// rebase maps a backend-local path back into federation space.
func rebase(prefix, local string) string {
	if local == "/" {
		return prefix
	}
	return prefix + local
}

// List implements DataStorage. Listing "/" enumerates the mounts
// themselves; anything else routes.
func (f *FederatedStorage) List(p string) ([]Entry, error) {
	if p == "/" || p == "" {
		entries := make([]Entry, 0, len(f.mounts))
		for _, m := range f.Mounts() {
			entries = append(entries, Entry{
				Name: strings.TrimPrefix(m.Prefix, "/"),
				Path: m.Prefix,
				Type: TypeProject, // mounts present as top-level containers
			})
		}
		return entries, nil
	}
	s, local, err := f.route(p)
	if err != nil {
		return nil, err
	}
	entries, err := s.List(local)
	if err != nil {
		return nil, err
	}
	prefix := p[:len(p)-len(local)]
	if local == "/" {
		prefix = p
	}
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = Entry{Name: e.Name, Path: rebase(prefix, e.Path), Type: e.Type}
	}
	return out, nil
}

// The remaining methods route 1:1.

// CreateProject implements DataStorage.
func (f *FederatedStorage) CreateProject(p string, proj model.Project) error {
	s, local, err := f.route(p)
	if err != nil {
		return err
	}
	return s.CreateProject(local, proj)
}

// LoadProject implements DataStorage.
func (f *FederatedStorage) LoadProject(p string) (model.Project, error) {
	s, local, err := f.route(p)
	if err != nil {
		return model.Project{}, err
	}
	return s.LoadProject(local)
}

// CreateCalculation implements DataStorage.
func (f *FederatedStorage) CreateCalculation(p string, c model.Calculation) error {
	s, local, err := f.route(p)
	if err != nil {
		return err
	}
	return s.CreateCalculation(local, c)
}

// SaveCalculation implements DataStorage.
func (f *FederatedStorage) SaveCalculation(p string, c model.Calculation) error {
	s, local, err := f.route(p)
	if err != nil {
		return err
	}
	return s.SaveCalculation(local, c)
}

// LoadCalculation implements DataStorage.
func (f *FederatedStorage) LoadCalculation(p string) (model.Calculation, error) {
	s, local, err := f.route(p)
	if err != nil {
		return model.Calculation{}, err
	}
	return s.LoadCalculation(local)
}

// SaveMolecule implements DataStorage.
func (f *FederatedStorage) SaveMolecule(p string, mol *chem.Molecule, format string) error {
	s, local, err := f.route(p)
	if err != nil {
		return err
	}
	return s.SaveMolecule(local, mol, format)
}

// LoadMolecule implements DataStorage.
func (f *FederatedStorage) LoadMolecule(p string) (*chem.Molecule, error) {
	s, local, err := f.route(p)
	if err != nil {
		return nil, err
	}
	return s.LoadMolecule(local)
}

// SaveBasis implements DataStorage.
func (f *FederatedStorage) SaveBasis(p string, bs *chem.BasisSet) error {
	s, local, err := f.route(p)
	if err != nil {
		return err
	}
	return s.SaveBasis(local, bs)
}

// LoadBasis implements DataStorage.
func (f *FederatedStorage) LoadBasis(p string) (*chem.BasisSet, error) {
	s, local, err := f.route(p)
	if err != nil {
		return nil, err
	}
	return s.LoadBasis(local)
}

// SaveTask implements DataStorage.
func (f *FederatedStorage) SaveTask(p string, t model.Task) error {
	s, local, err := f.route(p)
	if err != nil {
		return err
	}
	return s.SaveTask(local, t)
}

// LoadTasks implements DataStorage.
func (f *FederatedStorage) LoadTasks(p string) ([]model.Task, error) {
	s, local, err := f.route(p)
	if err != nil {
		return nil, err
	}
	return s.LoadTasks(local)
}

// SaveJob implements DataStorage.
func (f *FederatedStorage) SaveJob(p string, j model.Job) error {
	s, local, err := f.route(p)
	if err != nil {
		return err
	}
	return s.SaveJob(local, j)
}

// LoadJob implements DataStorage.
func (f *FederatedStorage) LoadJob(p string) (model.Job, error) {
	s, local, err := f.route(p)
	if err != nil {
		return model.Job{}, err
	}
	return s.LoadJob(local)
}

// SaveProperty implements DataStorage.
func (f *FederatedStorage) SaveProperty(p string, prop model.Property) error {
	s, local, err := f.route(p)
	if err != nil {
		return err
	}
	return s.SaveProperty(local, prop)
}

// LoadProperty implements DataStorage.
func (f *FederatedStorage) LoadProperty(p, name string) (model.Property, error) {
	s, local, err := f.route(p)
	if err != nil {
		return model.Property{}, err
	}
	return s.LoadProperty(local, name)
}

// LoadProperties implements DataStorage.
func (f *FederatedStorage) LoadProperties(p string) ([]model.Property, error) {
	s, local, err := f.route(p)
	if err != nil {
		return nil, err
	}
	return s.LoadProperties(local)
}

// SaveRawFile implements DataStorage.
func (f *FederatedStorage) SaveRawFile(p, name string, data []byte, contentType string) error {
	s, local, err := f.route(p)
	if err != nil {
		return err
	}
	return s.SaveRawFile(local, name, data, contentType)
}

// LoadRawFile implements DataStorage.
func (f *FederatedStorage) LoadRawFile(p, name string) ([]byte, error) {
	s, local, err := f.route(p)
	if err != nil {
		return nil, err
	}
	return s.LoadRawFile(local, name)
}

// Copy implements DataStorage. Same-mount copies stay server-side;
// cross-mount copies are materialized through the generic interface —
// the cross-site capability the paper's federation scenario wants.
func (f *FederatedStorage) Copy(src, dst string) error {
	ss, slocal, err := f.route(src)
	if err != nil {
		return err
	}
	ds, dlocal, err := f.route(dst)
	if err != nil {
		return err
	}
	if ss == ds {
		return ss.Copy(slocal, dlocal)
	}
	return crossCopy(ss, slocal, ds, dlocal)
}

// crossCopy replicates one object subtree between backends using only
// the DataStorage interface.
func crossCopy(src DataStorage, srcPath string, dst DataStorage, dstPath string) error {
	// Try each typed object in turn; the first loader that succeeds
	// determines the type.
	if proj, err := src.LoadProject(srcPath); err == nil {
		if err := dst.CreateProject(dstPath, proj); err != nil {
			return err
		}
		entries, err := src.List(srcPath)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := crossCopy(src, e.Path, dst, dstPath+"/"+e.Name); err != nil {
				return err
			}
		}
		return nil
	}
	if calc, err := src.LoadCalculation(srcPath); err == nil {
		if err := dst.CreateCalculation(dstPath, calc); err != nil {
			return err
		}
		if mol, err := src.LoadMolecule(srcPath); err == nil {
			if err := dst.SaveMolecule(dstPath, mol, chem.FormatXYZ); err != nil {
				return err
			}
		}
		if bs, err := src.LoadBasis(srcPath); err == nil {
			if err := dst.SaveBasis(dstPath, bs); err != nil {
				return err
			}
		}
		tasks, _ := src.LoadTasks(srcPath)
		for _, t := range tasks {
			if err := dst.SaveTask(dstPath, t); err != nil {
				return err
			}
		}
		if job, err := src.LoadJob(srcPath); err == nil {
			if err := dst.SaveJob(dstPath, job); err != nil {
				return err
			}
		}
		props, _ := src.LoadProperties(srcPath)
		for _, p := range props {
			if err := dst.SaveProperty(dstPath, p); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("%w: cannot cross-copy %s (not a project or calculation)", ErrUnsupported, srcPath)
}

// Delete implements DataStorage.
func (f *FederatedStorage) Delete(p string) error {
	s, local, err := f.route(p)
	if err != nil {
		return err
	}
	if local == "/" {
		return fmt.Errorf("%w: cannot delete a mount root", ErrUnsupported)
	}
	return s.Delete(local)
}

// Close implements DataStorage, closing every backend.
func (f *FederatedStorage) Close() error {
	var first error
	for _, m := range f.mounts {
		if err := m.Storage.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FindByMetadata implements Finder by fanning out to every mount that
// supports discovery; mounts that do not (the OODB) are skipped — they
// are opaque to federation-wide queries, which is the paper's point.
func (f *FederatedStorage) FindByMetadata(root string, name xml.Name, pred func(string) bool) ([]string, error) {
	if root == "/" || root == "" {
		var all []string
		for _, m := range f.Mounts() {
			finder, ok := m.Storage.(Finder)
			if !ok {
				continue
			}
			hits, err := finder.FindByMetadata("/", name, pred)
			if err != nil {
				return nil, fmt.Errorf("core: mount %s: %w", m.Prefix, err)
			}
			for _, h := range hits {
				all = append(all, rebase(m.Prefix, h))
			}
		}
		sort.Strings(all)
		return all, nil
	}
	s, local, err := f.route(root)
	if err != nil {
		return nil, err
	}
	finder, ok := s.(Finder)
	if !ok {
		return nil, fmt.Errorf("%w: mount serving %s does not support discovery", ErrUnsupported, root)
	}
	hits, err := finder.FindByMetadata(local, name, pred)
	if err != nil {
		return nil, err
	}
	prefix := root[:len(root)-len(local)]
	if local == "/" {
		prefix = root
	}
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = rebase(prefix, h)
	}
	return out, nil
}

// Annotate implements Annotator by routing.
func (f *FederatedStorage) Annotate(p string, name xml.Name, value string) error {
	s, local, err := f.route(p)
	if err != nil {
		return err
	}
	ann, ok := s.(Annotator)
	if !ok {
		return fmt.Errorf("%w: mount serving %s does not support annotation", ErrUnsupported, p)
	}
	return ann.Annotate(local, name, value)
}

// ReadAnnotation implements Annotator by routing.
func (f *FederatedStorage) ReadAnnotation(p string, name xml.Name) (string, bool, error) {
	s, local, err := f.route(p)
	if err != nil {
		return "", false, err
	}
	ann, ok := s.(Annotator)
	if !ok {
		return "", false, fmt.Errorf("%w: mount serving %s does not support annotation", ErrUnsupported, p)
	}
	return ann.ReadAnnotation(local, name)
}
