package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chem"
	"repro/internal/davclient"
	"repro/internal/davserver"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/store"
)

// newDAVStorage spins up an in-memory DAV server and returns storage
// over it.
func newDAVStorage(t *testing.T) *DAVStorage {
	t.Helper()
	h := davserver.NewHandler(store.NewMemStore(), nil)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	c, err := davclient.New(davclient.Config{BaseURL: srv.URL, Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	s := NewDAVStorage(c)
	t.Cleanup(func() { s.Close() })
	return s
}

// newOODBStorage spins up an OODB server and returns storage over it.
func newOODBStorage(t *testing.T) *OODBStorage {
	t.Helper()
	db, err := oodb.OpenDB(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := oodb.NewServer(db, SchemaFingerprint())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	c, err := oodb.Dial(addr, SchemaFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewOODBStorage(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// eachStorage runs a conformance test against both architectures —
// the Figure 2 claim that the tools are backend-independent.
func eachStorage(t *testing.T, fn func(t *testing.T, s DataStorage)) {
	t.Helper()
	t.Run("DAV", func(t *testing.T) { fn(t, newDAVStorage(t)) })
	t.Run("OODB", func(t *testing.T) { fn(t, newOODBStorage(t)) })
}

func TestProjectLifecycle(t *testing.T) {
	eachStorage(t, func(t *testing.T, s DataStorage) {
		proj := model.Project{Name: "Aqueous Chemistry", Description: "uranyl hydration",
			Created: time.Date(2001, 7, 1, 12, 0, 0, 0, time.UTC)}
		if err := s.CreateProject("/aqueous", proj); err != nil {
			t.Fatal(err)
		}
		got, err := s.LoadProject("/aqueous")
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != proj.Name || got.Description != proj.Description || !got.Created.Equal(proj.Created) {
			t.Fatalf("LoadProject = %+v", got)
		}
		if err := s.CreateProject("/aqueous", proj); !errors.Is(err, ErrExists) {
			t.Fatalf("duplicate project = %v", err)
		}
		if _, err := s.LoadProject("/missing"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing project = %v", err)
		}
	})
}

func TestCalculationLifecycle(t *testing.T) {
	eachStorage(t, func(t *testing.T, s DataStorage) {
		s.CreateProject("/p", model.Project{Name: "p"})
		calc := model.Calculation{Name: "uranyl-scf", Theory: "SCF",
			Annotation: "first attempt", Created: time.Date(2001, 7, 2, 0, 0, 0, 0, time.UTC)}
		if err := s.CreateCalculation("/p/uranyl-scf", calc); err != nil {
			t.Fatal(err)
		}
		got, err := s.LoadCalculation("/p/uranyl-scf")
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != calc.Name || got.Theory != "SCF" || got.State != model.StateCreated {
			t.Fatalf("LoadCalculation = %+v", got)
		}
		// State advance via SaveCalculation.
		got.State = model.StateReady
		if err := s.SaveCalculation("/p/uranyl-scf", got); err != nil {
			t.Fatal(err)
		}
		re, _ := s.LoadCalculation("/p/uranyl-scf")
		if re.State != model.StateReady {
			t.Fatalf("state = %v", re.State)
		}
	})
}

func TestMoleculeRoundTrip(t *testing.T) {
	eachStorage(t, func(t *testing.T, s DataStorage) {
		s.CreateProject("/p", model.Project{Name: "p"})
		s.CreateCalculation("/p/c", model.Calculation{Name: "c"})
		mol := chem.MakeUO2nH2O(15)
		if err := s.SaveMolecule("/p/c", mol, chem.FormatXYZ); err != nil {
			t.Fatal(err)
		}
		got, err := s.LoadMolecule("/p/c")
		if err != nil {
			t.Fatal(err)
		}
		if got.Formula() != mol.Formula() || got.Charge != 2 || got.AtomCount() != mol.AtomCount() {
			t.Fatalf("molecule = %q charge %d atoms %d", got.Formula(), got.Charge, got.AtomCount())
		}
		for i := range mol.Atoms {
			if math.Abs(got.Atoms[i].X-mol.Atoms[i].X) > 1e-6 {
				t.Fatalf("atom %d drifted", i)
			}
		}
		if _, err := s.LoadMolecule("/p/nope"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing molecule = %v", err)
		}
	})
}

func TestBasisRoundTrip(t *testing.T) {
	eachStorage(t, func(t *testing.T, s DataStorage) {
		s.CreateProject("/p", model.Project{Name: "p"})
		s.CreateCalculation("/p/c", model.Calculation{Name: "c"})
		if err := s.SaveBasis("/p/c", chem.STO3G()); err != nil {
			t.Fatal(err)
		}
		got, err := s.LoadBasis("/p/c")
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != "STO-3G" || len(got.Elements) != len(chem.STO3G().Elements) {
			t.Fatalf("basis = %+v", got)
		}
	})
}

func TestTasksOrderedBySequence(t *testing.T) {
	eachStorage(t, func(t *testing.T, s DataStorage) {
		s.CreateProject("/p", model.Project{Name: "p"})
		s.CreateCalculation("/p/c", model.Calculation{Name: "c"})
		// Save out of order.
		for _, seq := range []int{3, 1, 2} {
			task := model.Task{
				Name: fmt.Sprintf("step%d", seq), Kind: model.TaskEnergy,
				Sequence: seq, InputDeck: fmt.Sprintf("deck %d", seq),
			}
			if err := s.SaveTask("/p/c", task); err != nil {
				t.Fatal(err)
			}
		}
		tasks, err := s.LoadTasks("/p/c")
		if err != nil {
			t.Fatal(err)
		}
		if len(tasks) != 3 {
			t.Fatalf("tasks = %d", len(tasks))
		}
		for i, task := range tasks {
			if task.Sequence != i+1 {
				t.Fatalf("task %d sequence = %d", i, task.Sequence)
			}
			if task.InputDeck != fmt.Sprintf("deck %d", i+1) {
				t.Fatalf("task %d deck = %q", i, task.InputDeck)
			}
		}
		// No tasks yet on a fresh calculation.
		s.CreateCalculation("/p/empty", model.Calculation{Name: "empty"})
		tasks, err = s.LoadTasks("/p/empty")
		if err != nil || len(tasks) != 0 {
			t.Fatalf("empty tasks = (%v, %v)", tasks, err)
		}
	})
}

func TestJobRoundTrip(t *testing.T) {
	eachStorage(t, func(t *testing.T, s DataStorage) {
		s.CreateProject("/p", model.Project{Name: "p"})
		s.CreateCalculation("/p/c", model.Calculation{Name: "c"})
		job := model.Job{
			Host: "mpp2.emsl.pnl.gov", Queue: "large", BatchID: "12345",
			NodeCount: 128, Status: model.JobRunning,
			SubmitTime: time.Date(2001, 7, 2, 8, 0, 0, 0, time.UTC),
			StartTime:  time.Date(2001, 7, 2, 9, 30, 0, 0, time.UTC),
		}
		if err := s.SaveJob("/p/c", job); err != nil {
			t.Fatal(err)
		}
		got, err := s.LoadJob("/p/c")
		if err != nil {
			t.Fatal(err)
		}
		if got.Host != job.Host || got.NodeCount != 128 || got.Status != model.JobRunning {
			t.Fatalf("job = %+v", got)
		}
		if !got.SubmitTime.Equal(job.SubmitTime) || !got.StartTime.Equal(job.StartTime) {
			t.Fatalf("job times = %+v", got)
		}
		if !got.EndTime.IsZero() {
			t.Fatalf("zero end time round trip = %v", got.EndTime)
		}
	})
}

func TestPropertiesRoundTrip(t *testing.T) {
	eachStorage(t, func(t *testing.T, s DataStorage) {
		s.CreateProject("/p", model.Project{Name: "p"})
		s.CreateCalculation("/p/c", model.Calculation{Name: "c"})
		props := []model.Property{
			{Name: "total energy", Units: "hartree", Values: []float64{-76.026}},
			{Name: "dipole moment", Units: "debye", Dims: []int{3}, Values: []float64{0, 0, 2.1}},
			{Name: "electron density", Units: "e/bohr^3", Dims: []int{4, 4, 4},
				Values: make([]float64, 64)},
		}
		for i := range props[2].Values {
			props[2].Values[i] = float64(i) * 0.25
		}
		for _, p := range props {
			if err := s.SaveProperty("/p/c", p); err != nil {
				t.Fatal(err)
			}
		}
		// Load one by name.
		got, err := s.LoadProperty("/p/c", "dipole moment")
		if err != nil {
			t.Fatal(err)
		}
		if got.Units != "debye" || !reflect.DeepEqual(got.Values, []float64{0, 0, 2.1}) {
			t.Fatalf("dipole = %+v", got)
		}
		// Load all (sorted by name).
		all, err := s.LoadProperties("/p/c")
		if err != nil || len(all) != 3 {
			t.Fatalf("LoadProperties = (%d, %v)", len(all), err)
		}
		if all[0].Name != "dipole moment" || all[1].Name != "electron density" || all[2].Name != "total energy" {
			t.Fatalf("order = %v %v %v", all[0].Name, all[1].Name, all[2].Name)
		}
		if _, err := s.LoadProperty("/p/c", "nope"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing property = %v", err)
		}
	})
}

func TestRawFiles(t *testing.T) {
	eachStorage(t, func(t *testing.T, s DataStorage) {
		s.CreateProject("/p", model.Project{Name: "p"})
		s.CreateCalculation("/p/c", model.Calculation{Name: "c"})
		data := []byte("nwchem output ... converged")
		if err := s.SaveRawFile("/p/c", "run.out", data, "text/plain"); err != nil {
			t.Fatal(err)
		}
		got, err := s.LoadRawFile("/p/c", "run.out")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("raw file = (%q, %v)", got, err)
		}
		if _, err := s.LoadRawFile("/p/c", "nope.out"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing raw file = %v", err)
		}
	})
}

func TestListEntries(t *testing.T) {
	eachStorage(t, func(t *testing.T, s DataStorage) {
		s.CreateProject("/p", model.Project{Name: "p"})
		s.CreateCalculation("/p/calc-a", model.Calculation{Name: "a"})
		s.CreateCalculation("/p/calc-b", model.Calculation{Name: "b"})
		entries, err := s.List("/p")
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 2 {
			t.Fatalf("entries = %+v", entries)
		}
		for _, e := range entries {
			if e.Type != TypeCalculation {
				t.Fatalf("entry %s type = %s", e.Name, e.Type)
			}
		}
		if entries[0].Name != "calc-a" || entries[0].Path != "/p/calc-a" {
			t.Fatalf("entry 0 = %+v", entries[0])
		}
		// Calculation internals are typed too.
		s.SaveMolecule("/p/calc-a", chem.MakeWater(), chem.FormatXYZ)
		inner, err := s.List("/p/calc-a")
		if err != nil || len(inner) != 1 || inner[0].Type != TypeMolecule {
			t.Fatalf("inner = (%+v, %v)", inner, err)
		}
	})
}

func TestCopyAndDeleteHierarchy(t *testing.T) {
	eachStorage(t, func(t *testing.T, s DataStorage) {
		s.CreateProject("/p", model.Project{Name: "p"})
		s.CreateCalculation("/p/c", model.Calculation{Name: "c", Theory: "DFT"})
		s.SaveMolecule("/p/c", chem.MakeWater(), chem.FormatXYZ)
		s.SaveProperty("/p/c", model.Property{Name: "total energy", Values: []float64{-76.4}})

		// The paper's "copy entire task sequences" scenario.
		if err := s.Copy("/p/c", "/p/c-variant"); err != nil {
			t.Fatal(err)
		}
		calc, err := s.LoadCalculation("/p/c-variant")
		if err != nil || calc.Theory != "DFT" {
			t.Fatalf("copied calc = (%+v, %v)", calc, err)
		}
		mol, err := s.LoadMolecule("/p/c-variant")
		if err != nil || mol.Formula() != "H2O" {
			t.Fatalf("copied molecule = (%v, %v)", mol, err)
		}
		p, err := s.LoadProperty("/p/c-variant", "total energy")
		if err != nil || p.Values[0] != -76.4 {
			t.Fatalf("copied property = (%+v, %v)", p, err)
		}
		// Copying over an existing target fails.
		if err := s.Copy("/p/c", "/p/c-variant"); !errors.Is(err, ErrExists) {
			t.Fatalf("copy over existing = %v", err)
		}
		// Delete removes the whole subtree.
		if err := s.Delete("/p/c"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadCalculation("/p/c"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted calc = %v", err)
		}
		// Variant untouched.
		if _, err := s.LoadCalculation("/p/c-variant"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLoadBundleAssemblesEverything(t *testing.T) {
	eachStorage(t, func(t *testing.T, s DataStorage) {
		s.CreateProject("/p", model.Project{Name: "p"})
		s.CreateCalculation("/p/c", model.Calculation{Name: "c", Theory: "SCF"})
		mol := chem.MakeUO2nH2O(2)
		s.SaveMolecule("/p/c", mol, chem.FormatXYZ)
		s.SaveBasis("/p/c", chem.STO3G())
		s.SaveTask("/p/c", model.Task{Name: "energy", Kind: model.TaskEnergy, Sequence: 1, InputDeck: "deck"})
		s.SaveJob("/p/c", model.Job{Host: "h", Status: model.JobDone})
		s.SaveProperty("/p/c", model.Property{Name: "total energy", Values: []float64{-1}})

		b, err := LoadBundle(s, "/p/c")
		if err != nil {
			t.Fatal(err)
		}
		if b.Molecule == nil || b.Basis == nil || b.Job == nil ||
			len(b.Tasks) != 1 || len(b.Properties) != 1 {
			t.Fatalf("bundle = %+v", b)
		}
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		// Bundle on a bare calculation: optional parts absent, no error.
		s.CreateCalculation("/p/bare", model.Calculation{Name: "bare"})
		bare, err := LoadBundle(s, "/p/bare")
		if err != nil {
			t.Fatal(err)
		}
		if bare.Molecule != nil || bare.Job != nil || len(bare.Properties) != 0 {
			t.Fatalf("bare bundle = %+v", bare)
		}
	})
}

func TestAnnotateAndFindOnlyOnDAV(t *testing.T) {
	// The open-architecture capabilities are DAV-only: the interfaces
	// are simply not satisfied by the OODB baseline.
	var davAny DataStorage = newDAVStorage(t)
	if _, ok := davAny.(Annotator); !ok {
		t.Fatal("DAVStorage must implement Annotator")
	}
	if _, ok := davAny.(Finder); !ok {
		t.Fatal("DAVStorage must implement Finder")
	}
	var oodbAny DataStorage = newOODBStorage(t)
	if _, ok := oodbAny.(Annotator); ok {
		t.Fatal("OODBStorage must not implement Annotator")
	}
	if _, ok := oodbAny.(Finder); ok {
		t.Fatal("OODBStorage must not implement Finder")
	}
}

func TestAgentScenario(t *testing.T) {
	// The Discussion-section scenario: an agent discovers molecules by
	// formula metadata and attaches thermodynamic estimates as new
	// metadata — without Ecce's schema changing at all.
	s := newDAVStorage(t)
	s.CreateProject("/p", model.Project{Name: "p"})
	for i, mol := range []*chem.Molecule{chem.MakeWater(), chem.MakeUO2nH2O(2)} {
		calcPath := fmt.Sprintf("/p/calc%d", i)
		s.CreateCalculation(calcPath, model.Calculation{Name: fmt.Sprintf("c%d", i)})
		s.SaveMolecule(calcPath, mol, chem.FormatXYZ)
	}

	// Discover by formula.
	hits, err := s.FindByMetadata("/p", PropFormula, func(v string) bool { return v == "H2O" })
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || !strings.HasSuffix(hits[0], "/calc0/molecule") {
		t.Fatalf("hits = %v", hits)
	}
	// Any-value predicate finds both molecules.
	all, err := s.FindByMetadata("/p", PropFormula, nil)
	if err != nil || len(all) != 2 {
		t.Fatalf("all = (%v, %v)", all, err)
	}

	// Annotate with third-party metadata under a foreign namespace.
	thermoName := EcceName("")
	thermoName.Space = "thermo:"
	thermoName.Local = "enthalpy"
	if err := s.Annotate(hits[0], thermoName, "-285.8 kJ/mol"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.ReadAnnotation(hits[0], thermoName)
	if err != nil || !ok || v != "-285.8 kJ/mol" {
		t.Fatalf("annotation = (%q, %v, %v)", v, ok, err)
	}
	// Ecce still loads the molecule untouched.
	mol, err := s.LoadMolecule("/p/calc0")
	if err != nil || mol.Formula() != "H2O" {
		t.Fatalf("molecule after annotation = (%v, %v)", mol, err)
	}
}

func TestOODBSchemaCouplingBreaksOldClients(t *testing.T) {
	// Start a server with an evolved schema; a current-model client
	// must be refused — the coupling failure the paper describes.
	db, err := oodb.OpenDB(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	evolved := oodb.SchemaHash(append(model.ClassDescriptors(), "MDTrajectory(frames:[]Frame)"))
	srv := oodb.NewServer(db, evolved)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := oodb.Dial(addr, SchemaFingerprint()); !errors.Is(err, oodb.ErrSchemaMismatch) {
		t.Fatalf("old client against evolved schema = %v", err)
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	cases := []model.Property{
		{Name: "energy", Units: "hartree", Values: []float64{-76.026}},
		{Name: "dipole", Units: "debye", Dims: []int{3}, Values: []float64{1, 2, 3}},
		{Name: "grid", Units: "", Dims: []int{2, 3, 4}, Values: make([]float64, 24)},
		{Name: "", Units: "", Values: []float64{math.Inf(1)}},
		{Name: "nan", Values: []float64{math.NaN()}},
	}
	for _, p := range cases {
		data, err := EncodeProperty(&p)
		if err != nil {
			t.Fatalf("%q: %v", p.Name, err)
		}
		got, err := DecodeProperty(data)
		if err != nil {
			t.Fatalf("%q: %v", p.Name, err)
		}
		if got.Name != p.Name || got.Units != p.Units || !reflect.DeepEqual(got.Dims, p.Dims) {
			t.Fatalf("%q header = %+v", p.Name, got)
		}
		for i := range p.Values {
			a, b := p.Values[i], got.Values[i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("%q value %d = %v, want %v", p.Name, i, b, a)
			}
		}
	}
}

func TestPropertyCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a property"),
		[]byte(propMagic),              // truncated after magic
		[]byte(propMagic + "\xff\xff"), // name length with no body
	}
	for _, c := range cases {
		if _, err := DecodeProperty(c); err == nil {
			t.Errorf("DecodeProperty(%q) succeeded", c)
		}
	}
	// Inconsistent shape is rejected at encode time.
	bad := model.Property{Name: "x", Dims: []int{5}, Values: []float64{1}}
	if _, err := EncodeProperty(&bad); err == nil {
		t.Error("inconsistent property encoded")
	}
	// Claimed count larger than body.
	p := model.Property{Name: "y", Values: []float64{1}}
	data, _ := EncodeProperty(&p)
	data = data[:len(data)-4] // chop into the value area
	if _, err := DecodeProperty(data); err == nil {
		t.Error("truncated values accepted")
	}
}

// TestQuickPropertyCodec: codec round trip on random properties.
func TestQuickPropertyCodec(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := model.Property{
			Name:  fmt.Sprintf("prop-%d", rng.Intn(100)),
			Units: []string{"", "hartree", "debye", "cm-1"}[rng.Intn(4)],
		}
		n := 1
		for d := rng.Intn(3); d > 0; d-- {
			dim := rng.Intn(5) + 1
			p.Dims = append(p.Dims, dim)
			n *= dim
		}
		p.Values = make([]float64, n)
		for i := range p.Values {
			p.Values[i] = rng.NormFloat64() * 1000
		}
		data, err := EncodeProperty(&p)
		if err != nil {
			return false
		}
		got, err := DecodeProperty(data)
		if err != nil {
			return false
		}
		return got.Name == p.Name && got.Units == p.Units &&
			reflect.DeepEqual(got.Dims, p.Dims) && reflect.DeepEqual(got.Values, p.Values)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSlugAndPropDocNames(t *testing.T) {
	if slugify("Total Energy (SCF)") != "total-energy-scf" {
		t.Fatalf("slugify = %q", slugify("Total Energy (SCF)"))
	}
	// Distinct names never collide even with identical slugs.
	a := propDocName("total energy")
	b := propDocName("total_energy")
	if a == b {
		t.Fatalf("doc names collide: %q", a)
	}
	// Stable.
	if a != propDocName("total energy") {
		t.Fatal("doc name unstable")
	}
}

func TestPathsWithSpacesEndToEnd(t *testing.T) {
	// Object paths with spaces must survive URL escaping through the
	// whole stack (client escapes, server unescapes, hrefs round-trip).
	s := newDAVStorage(t)
	if err := s.CreateProject("/My Thesis Work", model.Project{Name: "thesis"}); err != nil {
		t.Fatal(err)
	}
	calcPath := "/My Thesis Work/uranyl run 1"
	if err := s.CreateCalculation(calcPath, model.Calculation{Name: "run 1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveMolecule(calcPath, chem.MakeWater(), chem.FormatXYZ); err != nil {
		t.Fatal(err)
	}
	mol, err := s.LoadMolecule(calcPath)
	if err != nil || mol.Formula() != "H2O" {
		t.Fatalf("molecule = (%v, %v)", mol, err)
	}
	entries, err := s.List("/My Thesis Work")
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = (%v, %v)", entries, err)
	}
	// Discovery returns usable paths.
	hits, err := s.FindByMetadata("/My Thesis Work", PropFormula, nil)
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits = (%v, %v)", hits, err)
	}
	if _, ok, err := s.ReadAnnotation(hits[0], PropFormula); err != nil || !ok {
		t.Fatalf("annotation via discovered path: ok=%v err=%v", ok, err)
	}
	// Copy and delete with spaces.
	if err := s.Copy(calcPath, "/My Thesis Work/uranyl run 2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(calcPath); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadCalculation("/My Thesis Work/uranyl run 2"); err != nil {
		t.Fatal(err)
	}
}
