package core

import (
	"encoding/xml"
	"fmt"
	"hash/fnv"
	"net/http"
	"path"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/chem"
	"repro/internal/davclient"
	"repro/internal/davproto"
	"repro/internal/model"
)

// Well-known member names within a calculation collection (Figure 4:
// "objects recognizable by domain scientists were mapped to separate
// DAV documents").
const (
	memberMolecule   = "molecule"
	memberBasis      = "basis"
	memberTasks      = "tasks"
	memberJob        = "job"
	memberProperties = "properties"
)

// Additional job time properties.
var (
	propJobSubmit = EcceName("jobsubmit")
	propJobStart  = EcceName("jobstart")
	propJobEnd    = EcceName("jobend")
)

// DAVStorage implements DataStorage over a WebDAV repository — the
// Ecce 2.0 architecture. Object paths map 1:1 to resource paths, so
// every object is independently addressable, carries its own metadata,
// and remains visible to non-Ecce DAV clients.
type DAVStorage struct {
	c *davclient.Client
}

var (
	_ DataStorage = (*DAVStorage)(nil)
	_ Annotator   = (*DAVStorage)(nil)
	_ Finder      = (*DAVStorage)(nil)
)

// NewDAVStorage wraps a DAV client whose base URL is the repository
// root.
func NewDAVStorage(c *davclient.Client) *DAVStorage { return &DAVStorage{c: c} }

// Client exposes the underlying DAV client (benchmarks, tooling).
func (s *DAVStorage) Client() *davclient.Client { return s.c }

// Close implements DataStorage.
func (s *DAVStorage) Close() error {
	s.c.Close()
	return nil
}

// mapErr converts transport errors to core errors.
func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case davclient.IsStatus(err, http.StatusNotFound):
		return fmt.Errorf("%w: %v", ErrNotFound, err)
	case davclient.IsStatus(err, http.StatusMethodNotAllowed),
		davclient.IsStatus(err, http.StatusPreconditionFailed):
		return fmt.Errorf("%w: %v", ErrExists, err)
	default:
		return err
	}
}

// textProp builds an ecce text property.
func textProp(name xml.Name, value string) davproto.Property {
	return davproto.NewTextProperty(name.Space, name.Local, value)
}

// CreateProject implements DataStorage.
func (s *DAVStorage) CreateProject(p string, proj model.Project) error {
	if err := mapErr(s.c.Mkcol(p)); err != nil {
		return err
	}
	created := proj.Created
	if created.IsZero() {
		created = time.Now()
	}
	return mapErr(s.c.SetProps(p,
		textProp(PropObjectType, string(TypeProject)),
		textProp(PropDescription, proj.Description),
		textProp(EcceName("name"), proj.Name),
		textProp(PropCreatedAt, created.UTC().Format(time.RFC3339Nano)),
	))
}

// LoadProject implements DataStorage.
func (s *DAVStorage) LoadProject(p string) (model.Project, error) {
	props, err := s.propsOf(p, PropObjectType, PropDescription, EcceName("name"), PropCreatedAt)
	if err != nil {
		return model.Project{}, err
	}
	if props[PropObjectType] != string(TypeProject) {
		return model.Project{}, fmt.Errorf("%w: %s is not a project", ErrNotFound, p)
	}
	proj := model.Project{Name: props[EcceName("name")], Description: props[PropDescription]}
	if t, err := time.Parse(time.RFC3339Nano, props[PropCreatedAt]); err == nil {
		proj.Created = t
	}
	return proj, nil
}

// propsOf fetches selected properties of one resource as text.
func (s *DAVStorage) propsOf(p string, names ...xml.Name) (map[xml.Name]string, error) {
	ms, err := s.c.PropFindSelected(p, davproto.Depth0, names...)
	if err != nil {
		return nil, mapErr(err)
	}
	if len(ms.Responses) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	out := map[xml.Name]string{}
	for name, prop := range davproto.PropsByName(ms.Responses[0].Propstats) {
		out[name] = prop.Text()
	}
	return out, nil
}

// List implements DataStorage.
func (s *DAVStorage) List(p string) ([]Entry, error) {
	ms, err := s.c.PropFindSelected(p, davproto.Depth1, PropObjectType, davproto.PropResourceType)
	if err != nil {
		return nil, mapErr(err)
	}
	base := strings.TrimSuffix(p, "/")
	var entries []Entry
	for _, r := range ms.Responses {
		href := strings.TrimSuffix(r.Href, "/")
		if href == base || href == "" {
			continue // the container itself
		}
		props := davproto.PropsByName(r.Propstats)
		typ := TypeDocument
		if ot, ok := props[PropObjectType]; ok && ot.Text() != "" {
			typ = ObjectType(ot.Text())
		}
		entries = append(entries, Entry{Name: path.Base(href), Path: href, Type: typ})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Path < entries[j].Path })
	return entries, nil
}

// CreateCalculation implements DataStorage.
func (s *DAVStorage) CreateCalculation(p string, c model.Calculation) error {
	if err := mapErr(s.c.Mkcol(p)); err != nil {
		return err
	}
	return s.SaveCalculation(p, c)
}

// SaveCalculation implements DataStorage.
func (s *DAVStorage) SaveCalculation(p string, c model.Calculation) error {
	created := c.Created
	if created.IsZero() {
		created = time.Now()
	}
	return mapErr(s.c.SetProps(p,
		textProp(PropObjectType, string(TypeCalculation)),
		textProp(EcceName("name"), c.Name),
		textProp(PropState, c.State.String()),
		textProp(PropTheory, c.Theory),
		textProp(PropAnnotation, c.Annotation),
		textProp(PropCreatedAt, created.UTC().Format(time.RFC3339Nano)),
	))
}

// LoadCalculation implements DataStorage.
func (s *DAVStorage) LoadCalculation(p string) (model.Calculation, error) {
	props, err := s.propsOf(p, PropObjectType, EcceName("name"), PropState,
		PropTheory, PropAnnotation, PropCreatedAt)
	if err != nil {
		return model.Calculation{}, err
	}
	if props[PropObjectType] != string(TypeCalculation) {
		return model.Calculation{}, fmt.Errorf("%w: %s is not a calculation", ErrNotFound, p)
	}
	c := model.Calculation{
		Name:       props[EcceName("name")],
		Theory:     props[PropTheory],
		Annotation: props[PropAnnotation],
	}
	if st, err := model.ParseState(props[PropState]); err == nil {
		c.State = st
	}
	if t, err := time.Parse(time.RFC3339Nano, props[PropCreatedAt]); err == nil {
		c.Created = t
	}
	return c, nil
}

// SaveMolecule implements DataStorage: the molecule document holds the
// open-format geometry while formula/symmetry/charge/format become
// metadata so other applications can discover it "without
// understanding the rest of the Ecce schema".
func (s *DAVStorage) SaveMolecule(calcPath string, mol *chem.Molecule, format string) error {
	body, err := chem.Encode(mol, format)
	if err != nil {
		return err
	}
	docPath := path.Join(calcPath, memberMolecule)
	ctype := "chemical/x-xyz"
	if format == chem.FormatPDB {
		ctype = "chemical/x-pdb"
	}
	if _, err := s.c.PutBytes(docPath, body, ctype); err != nil {
		return mapErr(err)
	}
	return mapErr(s.c.SetProps(docPath,
		textProp(PropObjectType, string(TypeMolecule)),
		textProp(PropFormat, format),
		textProp(PropFormula, mol.Formula()),
		textProp(PropSymmetry, mol.Symmetry),
		textProp(PropCharge, strconv.Itoa(mol.Charge)),
		textProp(EcceName("name"), mol.Name),
	))
}

// LoadMolecule implements DataStorage.
func (s *DAVStorage) LoadMolecule(calcPath string) (*chem.Molecule, error) {
	docPath := path.Join(calcPath, memberMolecule)
	props, err := s.propsOf(docPath, PropFormat, PropSymmetry, PropCharge, EcceName("name"))
	if err != nil {
		return nil, err
	}
	body, err := s.c.Get(docPath)
	if err != nil {
		return nil, mapErr(err)
	}
	format := props[PropFormat]
	if format == "" {
		format = chem.FormatXYZ
	}
	mol, err := chem.Decode(body, format)
	if err != nil {
		return nil, err
	}
	// Metadata is authoritative for the attributes it carries.
	if props[EcceName("name")] != "" {
		mol.Name = props[EcceName("name")]
	}
	mol.Symmetry = props[PropSymmetry]
	if c, err := strconv.Atoi(props[PropCharge]); err == nil {
		mol.Charge = c
	}
	return mol, nil
}

// SaveBasis implements DataStorage.
func (s *DAVStorage) SaveBasis(calcPath string, bs *chem.BasisSet) error {
	docPath := path.Join(calcPath, memberBasis)
	if _, err := s.c.PutBytes(docPath, bs.Encode(), "text/plain"); err != nil {
		return mapErr(err)
	}
	return mapErr(s.c.SetProps(docPath,
		textProp(PropObjectType, string(TypeBasisSet)),
		textProp(PropBasisName, bs.Name),
	))
}

// LoadBasis implements DataStorage.
func (s *DAVStorage) LoadBasis(calcPath string) (*chem.BasisSet, error) {
	body, err := s.c.Get(path.Join(calcPath, memberBasis))
	if err != nil {
		return nil, mapErr(err)
	}
	return chem.ParseBasisBytes(body)
}

// taskDocName renders the sequence-ordered document name for a task.
func taskDocName(t model.Task) string {
	name := slugify(t.Name)
	if name == "" {
		name = string(t.Kind)
	}
	return fmt.Sprintf("%02d-%s", t.Sequence, name)
}

// SaveTask implements DataStorage. Tasks live in a tasks collection;
// the paper locates the task list "through the collection mechanism".
func (s *DAVStorage) SaveTask(calcPath string, t model.Task) error {
	tasksPath := path.Join(calcPath, memberTasks)
	if err := s.c.Mkcol(tasksPath); err != nil && !davclient.IsStatus(err, http.StatusMethodNotAllowed) {
		return mapErr(err)
	}
	docPath := path.Join(tasksPath, taskDocName(t))
	if _, err := s.c.PutBytes(docPath, []byte(t.InputDeck), "text/plain"); err != nil {
		return mapErr(err)
	}
	return mapErr(s.c.SetProps(docPath,
		textProp(PropObjectType, string(TypeTask)),
		textProp(EcceName("name"), t.Name),
		textProp(PropTaskKind, string(t.Kind)),
		textProp(PropSequence, strconv.Itoa(t.Sequence)),
	))
}

// LoadTasks implements DataStorage, returning tasks ordered by
// sequence.
func (s *DAVStorage) LoadTasks(calcPath string) ([]model.Task, error) {
	tasksPath := path.Join(calcPath, memberTasks)
	ms, err := s.c.PropFindSelected(tasksPath, davproto.Depth1,
		PropObjectType, EcceName("name"), PropTaskKind, PropSequence)
	if err != nil {
		if davclient.IsStatus(err, http.StatusNotFound) {
			return nil, nil // no tasks yet
		}
		return nil, mapErr(err)
	}
	var tasks []model.Task
	for _, r := range ms.Responses {
		props := davproto.PropsByName(r.Propstats)
		if ot, ok := props[PropObjectType]; !ok || ot.Text() != string(TypeTask) {
			continue
		}
		t := model.Task{
			Name: props[EcceName("name")].Text(),
			Kind: model.TaskKind(props[PropTaskKind].Text()),
		}
		if seq, err := strconv.Atoi(props[PropSequence].Text()); err == nil {
			t.Sequence = seq
		}
		deck, err := s.c.Get(strings.TrimSuffix(r.Href, "/"))
		if err != nil {
			return nil, mapErr(err)
		}
		t.InputDeck = string(deck)
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Sequence < tasks[j].Sequence })
	return tasks, nil
}

// SaveJob implements DataStorage: the job is a pure-metadata document.
func (s *DAVStorage) SaveJob(calcPath string, j model.Job) error {
	docPath := path.Join(calcPath, memberJob)
	if _, err := s.c.PutBytes(docPath, nil, "text/plain"); err != nil {
		return mapErr(err)
	}
	fmtTime := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	return mapErr(s.c.SetProps(docPath,
		textProp(PropObjectType, string(TypeJob)),
		textProp(PropJobHost, j.Host),
		textProp(PropJobQueue, j.Queue),
		textProp(PropJobBatchID, j.BatchID),
		textProp(PropJobNodes, strconv.Itoa(j.NodeCount)),
		textProp(PropJobStatus, string(j.Status)),
		textProp(propJobSubmit, fmtTime(j.SubmitTime)),
		textProp(propJobStart, fmtTime(j.StartTime)),
		textProp(propJobEnd, fmtTime(j.EndTime)),
	))
}

// LoadJob implements DataStorage.
func (s *DAVStorage) LoadJob(calcPath string) (model.Job, error) {
	docPath := path.Join(calcPath, memberJob)
	props, err := s.propsOf(docPath, PropObjectType, PropJobHost, PropJobQueue,
		PropJobBatchID, PropJobNodes, PropJobStatus, propJobSubmit, propJobStart, propJobEnd)
	if err != nil {
		return model.Job{}, err
	}
	if props[PropObjectType] != string(TypeJob) {
		return model.Job{}, fmt.Errorf("%w: %s is not a job", ErrNotFound, docPath)
	}
	j := model.Job{
		Host:    props[PropJobHost],
		Queue:   props[PropJobQueue],
		BatchID: props[PropJobBatchID],
		Status:  model.JobStatus(props[PropJobStatus]),
	}
	if n, err := strconv.Atoi(props[PropJobNodes]); err == nil {
		j.NodeCount = n
	}
	parse := func(s string) time.Time {
		t, _ := time.Parse(time.RFC3339Nano, s)
		return t
	}
	j.SubmitTime = parse(props[propJobSubmit])
	j.StartTime = parse(props[propJobStart])
	j.EndTime = parse(props[propJobEnd])
	return j, nil
}

// slugify renders a path-safe lowercase token.
func slugify(s string) string {
	var sb strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				sb.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimRight(sb.String(), "-")
}

// propDocName derives a stable, collision-resistant document name for
// an output property.
func propDocName(name string) string {
	h := fnv.New32a()
	h.Write([]byte(name))
	slug := slugify(name)
	if slug == "" {
		slug = "prop"
	}
	return fmt.Sprintf("%s-%08x", slug, h.Sum32())
}

// SaveProperty implements DataStorage: one document per property with
// discoverable metadata.
func (s *DAVStorage) SaveProperty(calcPath string, p model.Property) error {
	propsPath := path.Join(calcPath, memberProperties)
	if err := s.c.Mkcol(propsPath); err != nil && !davclient.IsStatus(err, http.StatusMethodNotAllowed) {
		return mapErr(err)
	}
	body, err := EncodeProperty(&p)
	if err != nil {
		return err
	}
	docPath := path.Join(propsPath, propDocName(p.Name))
	if _, err := s.c.PutBytes(docPath, body, "application/octet-stream"); err != nil {
		return mapErr(err)
	}
	dims := make([]string, len(p.Dims))
	for i, d := range p.Dims {
		dims[i] = strconv.Itoa(d)
	}
	return mapErr(s.c.SetProps(docPath,
		textProp(PropObjectType, string(TypeProperty)),
		textProp(PropPropName, p.Name),
		textProp(PropUnits, p.Units),
		textProp(PropDims, strings.Join(dims, " ")),
	))
}

// LoadProperty implements DataStorage.
func (s *DAVStorage) LoadProperty(calcPath, name string) (model.Property, error) {
	docPath := path.Join(calcPath, memberProperties, propDocName(name))
	body, err := s.c.Get(docPath)
	if err != nil {
		return model.Property{}, mapErr(err)
	}
	return DecodeProperty(body)
}

// LoadProperties implements DataStorage.
func (s *DAVStorage) LoadProperties(calcPath string) ([]model.Property, error) {
	propsPath := path.Join(calcPath, memberProperties)
	ms, err := s.c.PropFindSelected(propsPath, davproto.Depth1, PropObjectType)
	if err != nil {
		if davclient.IsStatus(err, http.StatusNotFound) {
			return nil, nil
		}
		return nil, mapErr(err)
	}
	var out []model.Property
	for _, r := range ms.Responses {
		props := davproto.PropsByName(r.Propstats)
		if ot, ok := props[PropObjectType]; !ok || ot.Text() != string(TypeProperty) {
			continue
		}
		body, err := s.c.Get(strings.TrimSuffix(r.Href, "/"))
		if err != nil {
			return nil, mapErr(err)
		}
		p, err := DecodeProperty(body)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// SaveRawFile implements DataStorage.
func (s *DAVStorage) SaveRawFile(calcPath, name string, data []byte, contentType string) error {
	docPath := path.Join(calcPath, name)
	if _, err := s.c.PutBytes(docPath, data, contentType); err != nil {
		return mapErr(err)
	}
	return mapErr(s.c.SetProps(docPath, textProp(PropObjectType, string(TypeDocument))))
}

// LoadRawFile implements DataStorage.
func (s *DAVStorage) LoadRawFile(calcPath, name string) ([]byte, error) {
	body, err := s.c.Get(path.Join(calcPath, name))
	return body, mapErr(err)
}

// Copy implements DataStorage via server-side COPY (Table 1's "copy
// hierarchy" runs entirely on the server).
func (s *DAVStorage) Copy(src, dst string) error {
	return mapErr(s.c.Copy(src, dst, davproto.DepthInfinity, false))
}

// Delete implements DataStorage.
func (s *DAVStorage) Delete(p string) error {
	return mapErr(s.c.Delete(p))
}

// Annotate implements Annotator: any application can attach new
// metadata without Ecce's involvement.
func (s *DAVStorage) Annotate(p string, name xml.Name, value string) error {
	return mapErr(s.c.SetProps(p, davproto.NewTextProperty(name.Space, name.Local, value)))
}

// ReadAnnotation implements Annotator.
func (s *DAVStorage) ReadAnnotation(p string, name xml.Name) (string, bool, error) {
	prop, ok, err := s.c.GetProp(p, name)
	if err != nil {
		return "", false, mapErr(err)
	}
	if !ok {
		return "", false, nil
	}
	return prop.Text(), true, nil
}

// FindByMetadata implements Finder. It prefers a server-side DASL
// SEARCH (the paper's anticipated optimization, which returns only
// resources carrying the property) and falls back to a depth-infinity
// PROPFIND walk against servers without SEARCH support.
func (s *DAVStorage) FindByMetadata(root string, name xml.Name, pred func(string) bool) ([]string, error) {
	ms, err := s.c.Search(davproto.BasicSearch{
		Select: []xml.Name{name},
		Scope:  root,
		Depth:  davproto.DepthInfinity,
		Where:  davproto.IsDefinedExpr{Prop: name},
	})
	if err != nil {
		if !davclient.IsStatus(err, http.StatusMethodNotAllowed) &&
			!davclient.IsStatus(err, http.StatusNotImplemented) &&
			!davclient.IsStatus(err, http.StatusBadRequest) {
			return nil, mapErr(err)
		}
		// No SEARCH support: walk with PROPFIND instead.
		if ms, err = s.c.PropFindSelected(root, davproto.DepthInfinity, name); err != nil {
			return nil, mapErr(err)
		}
	}
	return filterHits(ms, name, pred), nil
}

// FindWhere runs an arbitrary DASL expression server-side, returning
// matching paths (no PROPFIND fallback: rich expressions cannot be
// evaluated client-side without fetching everything).
func (s *DAVStorage) FindWhere(root string, where davproto.SearchExpr, selectName xml.Name) ([]string, error) {
	ms, err := s.c.Search(davproto.BasicSearch{
		Select: []xml.Name{selectName},
		Scope:  root,
		Depth:  davproto.DepthInfinity,
		Where:  where,
	})
	if err != nil {
		return nil, mapErr(err)
	}
	var hits []string
	for _, r := range ms.Responses {
		hits = append(hits, strings.TrimSuffix(r.Href, "/"))
	}
	sort.Strings(hits)
	return hits, nil
}

// filterHits keeps responses whose property satisfies pred.
func filterHits(ms davproto.Multistatus, name xml.Name, pred func(string) bool) []string {
	var hits []string
	for _, r := range ms.Responses {
		props := davproto.PropsByName(r.Propstats)
		prop, ok := props[name]
		if !ok {
			continue
		}
		if pred == nil || pred(prop.Text()) {
			hits = append(hits, strings.TrimSuffix(r.Href, "/"))
		}
	}
	sort.Strings(hits)
	return hits
}
