// Package core is the paper's primary contribution: the open,
// metadata-driven data access architecture of Figure 2. It defines the
// protocol-independent Data Storage Interface that the object/factory
// layer programs against, and two implementations — DAVStorage (the
// new Ecce 2.0 architecture, mapping the Figure 3 object model onto
// DAV collections, documents and properties per Figure 4) and
// OODBStorage (the Ecce 1.5 baseline over the object database).
//
// Because the Ecce tools in internal/tools depend only on the
// interface, swapping the persistence architecture requires no tool
// changes — the decoupling claim the paper's design section makes.
// The DAV implementation additionally supports the open-architecture
// scenarios of the Discussion section (third-party annotation,
// metadata discovery) which the OODB baseline structurally cannot;
// those methods live on the separate Annotator and Finder interfaces
// that only DAVStorage satisfies.
package core

import (
	"encoding/xml"
	"errors"

	"repro/internal/chem"
	"repro/internal/model"
)

// EcceNS is the single metadata namespace the paper defines ("a single
// 'ecce' namespace was defined").
const EcceNS = "ecce:"

// EcceName qualifies a local name in the ecce namespace.
func EcceName(local string) xml.Name { return xml.Name{Space: EcceNS, Local: local} }

// Metadata vocabulary. Each name is a dead property in the ecce
// namespace.
var (
	PropObjectType  = EcceName("objecttype")
	PropDescription = EcceName("description")
	PropState       = EcceName("state")
	PropTheory      = EcceName("theory")
	PropAnnotation  = EcceName("annotation")
	PropCreatedAt   = EcceName("created")
	PropFormat      = EcceName("format")   // molecule encoding: xyz | pdb
	PropFormula     = EcceName("formula")  // empirical formula, Hill order
	PropSymmetry    = EcceName("symmetry") // point group
	PropCharge      = EcceName("charge")
	PropBasisName   = EcceName("basisname")
	PropTaskKind    = EcceName("taskkind")
	PropSequence    = EcceName("sequence")
	PropPropName    = EcceName("propertyname") // output property's real name
	PropUnits       = EcceName("units")
	PropDims        = EcceName("dims") // space-separated shape
	PropJobHost     = EcceName("jobhost")
	PropJobQueue    = EcceName("jobqueue")
	PropJobBatchID  = EcceName("jobbatchid")
	PropJobNodes    = EcceName("jobnodes")
	PropJobStatus   = EcceName("jobstatus")
)

// ObjectType tags what an entry in the store represents.
type ObjectType string

// Object types in the ecce:objecttype property.
const (
	TypeProject     ObjectType = "project"
	TypeCalculation ObjectType = "calculation"
	TypeMolecule    ObjectType = "molecule"
	TypeBasisSet    ObjectType = "basisset"
	TypeTask        ObjectType = "task"
	TypeProperty    ObjectType = "property"
	TypeJob         ObjectType = "job"
	TypeDocument    ObjectType = "document" // raw file without Ecce semantics
)

// Entry describes one object in a listing.
type Entry struct {
	Name string
	Path string
	Type ObjectType
}

// Errors returned by storage implementations.
var (
	// ErrNotFound reports a missing object.
	ErrNotFound = errors.New("core: object not found")
	// ErrExists reports a name collision.
	ErrExists = errors.New("core: object already exists")
	// ErrUnsupported marks operations an architecture cannot express —
	// returned by the OODB baseline for the open-data scenarios that
	// motivated the DAV redesign.
	ErrUnsupported = errors.New("core: operation not supported by this storage architecture")
)

// DataStorage is the Data Storage Interface of Figure 2: everything
// the Ecce object/factory layer needs, with no protocol types leaking
// through. Paths are abstract object paths ("/Aqueous/uranyl-scf");
// the DAV implementation maps them 1:1 onto resource URLs, the OODB
// implementation onto an object graph.
type DataStorage interface {
	// CreateProject makes a project container at path.
	CreateProject(path string, p model.Project) error
	// LoadProject reads a project's metadata.
	LoadProject(path string) (model.Project, error)
	// List returns the Ecce objects directly inside a container.
	List(path string) ([]Entry, error)

	// CreateCalculation makes a calculation under a project.
	CreateCalculation(path string, c model.Calculation) error
	// SaveCalculation updates calculation metadata (state, annotation).
	SaveCalculation(path string, c model.Calculation) error
	// LoadCalculation reads calculation metadata.
	LoadCalculation(path string) (model.Calculation, error)

	// SaveMolecule stores the calculation's study subject in the given
	// chem format ("xyz" or "pdb").
	SaveMolecule(calcPath string, mol *chem.Molecule, format string) error
	// LoadMolecule reads the study subject back.
	LoadMolecule(calcPath string) (*chem.Molecule, error)

	// SaveBasis / LoadBasis manage the basis-set document.
	SaveBasis(calcPath string, bs *chem.BasisSet) error
	LoadBasis(calcPath string) (*chem.BasisSet, error)

	// SaveTask stores one task (with its input deck) in the
	// calculation's task sequence; LoadTasks returns them ordered.
	SaveTask(calcPath string, t model.Task) error
	LoadTasks(calcPath string) ([]model.Task, error)

	// SaveJob / LoadJob manage the execution record.
	SaveJob(calcPath string, j model.Job) error
	LoadJob(calcPath string) (model.Job, error)

	// SaveProperty stores one n-dimensional output property;
	// LoadProperties returns all of them; LoadProperty fetches one by
	// its real name.
	SaveProperty(calcPath string, p model.Property) error
	LoadProperty(calcPath, name string) (model.Property, error)
	LoadProperties(calcPath string) ([]model.Property, error)

	// SaveRawFile / LoadRawFile manage opaque files (input decks,
	// program output) attached to a calculation.
	SaveRawFile(calcPath, name string, data []byte, contentType string) error
	LoadRawFile(calcPath, name string) ([]byte, error)

	// Copy duplicates an entire object subtree (the Table 1 "copy
	// hierarchy" operation); Delete removes one.
	Copy(src, dst string) error
	Delete(path string) error

	// Close releases the storage connection.
	Close() error
}

// LoadBundle assembles a calculation's full state — the object/factory
// layer operation the Ecce tools use. Missing optional parts (basis,
// job, properties) are left nil/empty.
func LoadBundle(s DataStorage, calcPath string) (*model.CalculationBundle, error) {
	calc, err := s.LoadCalculation(calcPath)
	if err != nil {
		return nil, err
	}
	b := &model.CalculationBundle{Calc: calc}
	if b.Molecule, err = s.LoadMolecule(calcPath); err != nil && !errors.Is(err, ErrNotFound) {
		return nil, err
	}
	if b.Basis, err = s.LoadBasis(calcPath); err != nil && !errors.Is(err, ErrNotFound) {
		return nil, err
	}
	if b.Tasks, err = s.LoadTasks(calcPath); err != nil && !errors.Is(err, ErrNotFound) {
		return nil, err
	}
	if job, err := s.LoadJob(calcPath); err == nil {
		b.Job = &job
	} else if !errors.Is(err, ErrNotFound) {
		return nil, err
	}
	if b.Properties, err = s.LoadProperties(calcPath); err != nil && !errors.Is(err, ErrNotFound) {
		return nil, err
	}
	return b, nil
}

// Annotator is the third-party annotation capability of the
// Discussion section: attach arbitrary metadata to any object without
// schema agreement. Only the open (DAV) architecture provides it.
type Annotator interface {
	// Annotate sets one metadata value (an XML-encodable string) under
	// the given qualified name on the object at path.
	Annotate(path string, name xml.Name, value string) error
	// ReadAnnotation reads one metadata value by qualified name.
	ReadAnnotation(path string, name xml.Name) (string, bool, error)
}

// Finder is the metadata-discovery capability ("applications could
// search the data store for DAV documents matching the formula
// metadata"). Only the open architecture provides it.
type Finder interface {
	// FindByMetadata walks the subtree at root and returns the paths
	// of objects whose property name satisfies pred. A nil pred
	// matches any present value.
	FindByMetadata(root string, name xml.Name, pred func(value string) bool) ([]string, error)
}
