package core

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/chem"
	"repro/internal/davproto"
	"repro/internal/model"
)

// cmlNS is a stand-in for the Chemical Markup Language vocabulary the
// paper cites.
const cmlNS = "http://www.xml-cml.org/schema"

func cmlMapping() *davproto.Mapping {
	return &davproto.Mapping{Rules: []davproto.MappingRule{
		{From: xml.Name{Space: cmlNS, Local: "formula"}, To: PropFormula},
		{From: xml.Name{Space: cmlNS, Local: "formalCharge"}, To: PropCharge},
		{From: xml.Name{Space: cmlNS, Local: "comment"}, To: EcceName("annotation")},
	}}
}

func TestMappingDocumentRoundTrip(t *testing.T) {
	m := cmlMapping()
	back, err := davproto.ParseMappingBytes(m.Marshal())
	if err != nil {
		t.Fatalf("%v\n%s", err, m.Marshal())
	}
	if len(back.Rules) != 3 {
		t.Fatalf("rules = %d", len(back.Rules))
	}
	for i, r := range m.Rules {
		if back.Rules[i] != r {
			t.Fatalf("rule %d = %+v, want %+v", i, back.Rules[i], r)
		}
	}
}

func TestMappingValidation(t *testing.T) {
	cases := []string{
		`<x/>`,
		`<m:mapping xmlns:m="urn:repro-dav:mapping"/>`,                                                                     // no rules
		`<m:mapping xmlns:m="urn:repro-dav:mapping"><m:rule><m:from ns="a" local="x"/></m:rule></m:mapping>`,               // no to
		`<m:mapping xmlns:m="urn:repro-dav:mapping"><m:rule><m:from ns="a"/><m:to ns="b" local="y"/></m:rule></m:mapping>`, // from missing local
	}
	for i, c := range cases {
		if _, err := davproto.ParseMappingBytes([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Duplicate sources/targets are ambiguous.
	dupFrom := &davproto.Mapping{Rules: []davproto.MappingRule{
		{From: xml.Name{Space: "a", Local: "x"}, To: xml.Name{Space: "b", Local: "y"}},
		{From: xml.Name{Space: "a", Local: "x"}, To: xml.Name{Space: "b", Local: "z"}},
	}}
	if _, err := davproto.ParseMappingBytes(dupFrom.Marshal()); err == nil {
		t.Error("duplicate From accepted")
	}
}

func TestMappingTranslateMultistatus(t *testing.T) {
	m := cmlMapping()
	ms := davproto.Multistatus{Responses: []davproto.Response{{
		Href: "/x",
		Propstats: []davproto.Propstat{{Status: 200, Props: []davproto.Property{
			davproto.NewTextProperty(PropFormula.Space, PropFormula.Local, "H2O"),
			davproto.NewTextProperty("other:", "untouched", "v"),
		}}},
	}}}
	out := m.TranslateMultistatus(ms)
	props := davproto.PropsByName(out.Responses[0].Propstats)
	if p, ok := props[xml.Name{Space: cmlNS, Local: "formula"}]; !ok || p.Text() != "H2O" {
		t.Fatalf("translated prop = %+v ok=%v", p, ok)
	}
	if _, ok := props[xml.Name{Space: "other:", Local: "untouched"}]; !ok {
		t.Fatal("unmapped property dropped")
	}
	// The original is untouched (deep copy).
	orig := davproto.PropsByName(ms.Responses[0].Propstats)
	if _, ok := orig[PropFormula]; !ok {
		t.Fatal("translation mutated the original")
	}
}

// TestCMLApplicationScenario is the Discussion-section workflow: the
// mapping lives IN the repository; a CML-speaking application installs
// a view over it and reads/writes Ecce data in its own vocabulary.
func TestCMLApplicationScenario(t *testing.T) {
	s := newDAVStorage(t)
	// Ecce writes its data as usual.
	s.CreateProject("/chem", model.Project{Name: "chem"})
	s.CreateCalculation("/chem/c", model.Calculation{Name: "c"})
	s.SaveMolecule("/chem/c", chem.MakeUO2nH2O(2), chem.FormatXYZ)

	// Someone installs the CML mapping into the store.
	if err := s.SaveMapping("/mappings/cml.xml", cmlMapping()); err != nil {
		t.Fatal(err)
	}

	// The CML application opens a translated view from the stored
	// mapping and works entirely in its own names.
	view, err := OpenTranslatedView(s, "/mappings/cml.xml")
	if err != nil {
		t.Fatal(err)
	}
	cmlFormula := xml.Name{Space: cmlNS, Local: "formula"}
	hits, err := view.FindByMetadata("/chem", cmlFormula, nil)
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits = (%v, %v)", hits, err)
	}
	formula, ok, err := view.ReadAnnotation(hits[0], cmlFormula)
	if err != nil || !ok || formula != "H4O4U" {
		t.Fatalf("formula = (%q, %v, %v)", formula, ok, err)
	}
	charge, ok, err := view.ReadAnnotation(hits[0],
		xml.Name{Space: cmlNS, Local: "formalCharge"})
	if err != nil || !ok || charge != "2" {
		t.Fatalf("charge = (%q, %v, %v)", charge, ok, err)
	}

	// A CML-side write lands under the Ecce name.
	if err := view.Annotate(hits[0], xml.Name{Space: cmlNS, Local: "comment"},
		"verified geometry"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.ReadAnnotation(hits[0], EcceName("annotation"))
	if err != nil || !ok || v != "verified geometry" {
		t.Fatalf("stored annotation = (%q, %v, %v)", v, ok, err)
	}

	// Rich queries translate too.
	found, err := view.FindWhere("/chem", davproto.CompareExpr{
		Op: davproto.OpGte, Prop: xml.Name{Space: cmlNS, Local: "formalCharge"}, Literal: "2",
	}, cmlFormula)
	if err != nil || len(found) != 1 {
		t.Fatalf("FindWhere = (%v, %v)", found, err)
	}

	// Updating the stored mapping re-routes the integration without
	// code changes: comment now maps to a different Ecce property.
	m2 := cmlMapping()
	m2.Rules[2].To = EcceName("description")
	if err := s.SaveMapping("/mappings/cml.xml", m2); err != nil {
		t.Fatal(err)
	}
	view2, err := OpenTranslatedView(s, "/mappings/cml.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := view2.Annotate(hits[0], xml.Name{Space: cmlNS, Local: "comment"}, "re-routed"); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = s.ReadAnnotation(hits[0], EcceName("description"))
	if !ok || v != "re-routed" {
		t.Fatalf("re-routed annotation = (%q, %v)", v, ok)
	}
}

func TestTranslatedExprComposite(t *testing.T) {
	view := NewTranslatedView(nil, cmlMapping())
	expr := davproto.AndExpr{Children: []davproto.SearchExpr{
		davproto.OrExpr{Children: []davproto.SearchExpr{
			davproto.CompareExpr{Op: davproto.OpEq,
				Prop: xml.Name{Space: cmlNS, Local: "formula"}, Literal: "H2O"},
			davproto.IsDefinedExpr{Prop: xml.Name{Space: cmlNS, Local: "formalCharge"}},
		}},
		davproto.NotExpr{Child: davproto.CompareExpr{Op: davproto.OpLike,
			Prop: xml.Name{Space: "other:", Local: "x"}, Literal: "%"}},
	}}
	got := view.translateExpr(expr)
	var rendered bytes.Buffer
	rendered.Write(davproto.MarshalSearch(davproto.BasicSearch{
		Scope: "/", Where: got}))
	out := rendered.String()
	if !strings.Contains(out, "ecce:") {
		t.Fatalf("translated expression lost target namespace:\n%s", out)
	}
	if strings.Contains(out, cmlNS) {
		t.Fatalf("translated expression kept foreign namespace:\n%s", out)
	}
	if !strings.Contains(out, "other:") {
		t.Fatalf("unmapped name should pass through:\n%s", out)
	}
}
