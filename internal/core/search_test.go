package core

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/davclient"
	"repro/internal/davproto"
	"repro/internal/davserver"
	"repro/internal/model"
	"repro/internal/store"
)

func TestFindByMetadataUsesSearch(t *testing.T) {
	s := newDAVStorage(t)
	s.CreateProject("/p", model.Project{Name: "p"})
	for i := 0; i < 5; i++ {
		calcPath := fmt.Sprintf("/p/c%d", i)
		s.CreateCalculation(calcPath, model.Calculation{Name: calcPath})
	}
	// Annotate only some calculations.
	s.Annotate("/p/c1", EcceName("tag"), "keep")
	s.Annotate("/p/c3", EcceName("tag"), "drop")

	reqBefore := s.Client().RequestCount()
	hits, err := s.FindByMetadata("/p", EcceName("tag"), func(v string) bool { return v == "keep" })
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || !strings.HasSuffix(hits[0], "/p/c1") {
		t.Fatalf("hits = %v", hits)
	}
	// One SEARCH request, not a walk.
	if got := s.Client().RequestCount() - reqBefore; got != 1 {
		t.Fatalf("requests = %d, want 1 (server-side search)", got)
	}
}

func TestFindByMetadataFallsBackWithoutSearch(t *testing.T) {
	// A server that rejects SEARCH forces the PROPFIND-walk fallback.
	inner := davserver.NewHandler(store.NewMemStore(), nil)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == "SEARCH" {
			http.Error(w, "SEARCH disabled", http.StatusMethodNotAllowed)
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	c, err := davclient.New(davclient.Config{BaseURL: srv.URL, Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	s := NewDAVStorage(c)
	t.Cleanup(func() { s.Close() })

	s.CreateProject("/p", model.Project{Name: "p"})
	s.CreateCalculation("/p/c", model.Calculation{Name: "c"})
	s.Annotate("/p/c", EcceName("tag"), "v")

	hits, err := s.FindByMetadata("/p", EcceName("tag"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || !strings.HasSuffix(hits[0], "/p/c") {
		t.Fatalf("fallback hits = %v", hits)
	}
}

func TestFindWhere(t *testing.T) {
	s := newDAVStorage(t)
	s.CreateProject("/p", model.Project{Name: "p"})
	for i, charge := range []string{"0", "2", "3"} {
		calcPath := fmt.Sprintf("/p/c%d", i)
		s.CreateCalculation(calcPath, model.Calculation{Name: calcPath})
		s.Annotate(calcPath, PropCharge, charge)
	}
	hits, err := s.FindWhere("/p", davproto.CompareExpr{
		Op: davproto.OpGte, Prop: PropCharge, Literal: "2"}, PropCharge)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
}

// TestQuickSearchMatchesWalk: for random metadata assignments, the
// SEARCH-based finder and a raw PROPFIND walk agree.
func TestQuickSearchMatchesWalk(t *testing.T) {
	s := newDAVStorage(t)
	s.CreateProject("/p", model.Project{Name: "p"})
	const n = 10
	for i := 0; i < n; i++ {
		s.CreateCalculation(fmt.Sprintf("/p/c%d", i), model.Calculation{Name: "c"})
	}
	tag := EcceName("quicktag")
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		want := map[string]bool{}
		for i := 0; i < n; i++ {
			p := fmt.Sprintf("/p/c%d", i)
			if rng.Intn(2) == 0 {
				if err := s.Annotate(p, tag, fmt.Sprintf("v%d", rng.Intn(3))); err != nil {
					return false
				}
				want[p] = true
			} else {
				// Clear any previous value.
				s.Client().RemoveProps(p, tag)
				delete(want, p)
			}
		}
		// SEARCH path.
		hits, err := s.FindByMetadata("/p", tag, nil)
		if err != nil {
			t.Logf("find: %v", err)
			return false
		}
		// Walk path.
		ms, err := s.Client().PropFindSelected("/p", davproto.DepthInfinity, tag)
		if err != nil {
			return false
		}
		walk := filterHits(ms, tag, nil)
		if len(hits) != len(walk) || len(hits) != len(want) {
			t.Logf("search=%v walk=%v want=%v", hits, walk, want)
			return false
		}
		for i := range hits {
			if hits[i] != walk[i] || !want[hits[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
