package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/chem"
	"repro/internal/model"
)

// newFederation builds a two-site federation: a DAV mount per site,
// plus optionally a legacy OODB mount.
func newFederation(t *testing.T, withLegacy bool) *FederatedStorage {
	t.Helper()
	mounts := []Mount{
		{Prefix: "/pnnl", Storage: newDAVStorage(t)},
		{Prefix: "/ornl", Storage: newDAVStorage(t)},
	}
	if withLegacy {
		mounts = append(mounts, Mount{Prefix: "/legacy", Storage: newOODBStorage(t)})
	}
	f, err := NewFederation(mounts...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFederationValidation(t *testing.T) {
	dav := newDAVStorage(t)
	cases := [][]Mount{
		{},                              // empty
		{{Prefix: "bad", Storage: dav}}, // no leading slash
		{{Prefix: "/", Storage: dav}},   // root prefix
		{{Prefix: "/a/", Storage: dav}}, // trailing slash
		{{Prefix: "/a", Storage: nil}},  // nil storage
		{{Prefix: "/a", Storage: dav}, {Prefix: "/a", Storage: dav}},   // duplicate
		{{Prefix: "/a", Storage: dav}, {Prefix: "/a/b", Storage: dav}}, // nested
	}
	for i, m := range cases {
		if _, err := NewFederation(m...); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFederationRoutingAndListing(t *testing.T) {
	f := newFederation(t, false)
	// Work lands on the right site.
	if err := f.CreateProject("/pnnl/aqueous", model.Project{Name: "aqueous"}); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateProject("/ornl/solids", model.Project{Name: "solids"}); err != nil {
		t.Fatal(err)
	}
	// Root listing shows the mounts.
	entries, err := f.List("/")
	if err != nil || len(entries) != 2 {
		t.Fatalf("root list = (%v, %v)", entries, err)
	}
	if entries[0].Path != "/ornl" || entries[1].Path != "/pnnl" {
		t.Fatalf("mounts = %v", entries)
	}
	// Mount listing rebases paths into federation space.
	entries, err = f.List("/pnnl")
	if err != nil || len(entries) != 1 || entries[0].Path != "/pnnl/aqueous" {
		t.Fatalf("/pnnl list = (%v, %v)", entries, err)
	}
	// And deeper.
	if err := f.CreateCalculation("/pnnl/aqueous/c1", model.Calculation{Name: "c1"}); err != nil {
		t.Fatal(err)
	}
	entries, err = f.List("/pnnl/aqueous")
	if err != nil || len(entries) != 1 || entries[0].Path != "/pnnl/aqueous/c1" {
		t.Fatalf("project list = (%v, %v)", entries, err)
	}
	// The sites are isolated.
	if _, err := f.LoadProject("/ornl/aqueous"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-site read = %v", err)
	}
	// Unmounted paths rejected.
	if _, err := f.LoadProject("/lanl/x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unmounted path = %v", err)
	}
}

func TestFederationFullObjectModel(t *testing.T) {
	f := newFederation(t, false)
	f.CreateProject("/pnnl/p", model.Project{Name: "p"})
	calcPath := "/pnnl/p/c"
	if err := f.CreateCalculation(calcPath, model.Calculation{Name: "c", Theory: "SCF"}); err != nil {
		t.Fatal(err)
	}
	mol := chem.MakeUO2nH2O(2)
	if err := f.SaveMolecule(calcPath, mol, chem.FormatXYZ); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveBasis(calcPath, chem.STO3G()); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveTask(calcPath, model.Task{Name: "e", Kind: model.TaskEnergy, Sequence: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveJob(calcPath, model.Job{Host: "h", Status: model.JobDone}); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveProperty(calcPath, model.Property{Name: "e", Values: []float64{-1}}); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveRawFile(calcPath, "run.out", []byte("ok"), ""); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(f, calcPath)
	if err != nil {
		t.Fatal(err)
	}
	if b.Molecule == nil || b.Basis == nil || b.Job == nil || len(b.Tasks) != 1 || len(b.Properties) != 1 {
		t.Fatalf("bundle = %+v", b)
	}
	if raw, err := f.LoadRawFile(calcPath, "run.out"); err != nil || string(raw) != "ok" {
		t.Fatalf("raw = (%q, %v)", raw, err)
	}
	if _, err := f.LoadProperty(calcPath, "e"); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(calcPath); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadCalculation(calcPath); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted calc = %v", err)
	}
	if err := f.Delete("/pnnl"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("mount-root delete = %v", err)
	}
}

func TestFederationCrossSiteCopy(t *testing.T) {
	f := newFederation(t, false)
	f.CreateProject("/pnnl/p", model.Project{Name: "p", Description: "origin"})
	calcPath := "/pnnl/p/c"
	f.CreateCalculation(calcPath, model.Calculation{Name: "c", Theory: "DFT"})
	f.SaveMolecule(calcPath, chem.MakeWater(), chem.FormatXYZ)
	f.SaveTask(calcPath, model.Task{Name: "e", Kind: model.TaskEnergy, Sequence: 1, InputDeck: "deck"})
	f.SaveProperty(calcPath, model.Property{Name: "energy", Values: []float64{-76}})

	// Same-site copy stays native.
	if err := f.Copy(calcPath, "/pnnl/p/c2"); err != nil {
		t.Fatal(err)
	}
	// Cross-site copy replicates the whole project through the
	// interface.
	if err := f.Copy("/pnnl/p", "/ornl/p-replica"); err != nil {
		t.Fatal(err)
	}
	proj, err := f.LoadProject("/ornl/p-replica")
	if err != nil || proj.Description != "origin" {
		t.Fatalf("replica project = (%+v, %v)", proj, err)
	}
	mol, err := f.LoadMolecule("/ornl/p-replica/c")
	if err != nil || mol.Formula() != "H2O" {
		t.Fatalf("replica molecule = (%v, %v)", mol, err)
	}
	tasks, err := f.LoadTasks("/ornl/p-replica/c")
	if err != nil || len(tasks) != 1 || tasks[0].InputDeck != "deck" {
		t.Fatalf("replica tasks = (%v, %v)", tasks, err)
	}
	p, err := f.LoadProperty("/ornl/p-replica/c", "energy")
	if err != nil || p.Values[0] != -76 {
		t.Fatalf("replica property = (%+v, %v)", p, err)
	}
	// The copied nested calculation came along too.
	if _, err := f.LoadCalculation("/ornl/p-replica/c2"); err != nil {
		t.Fatal(err)
	}
}

func TestFederationDiscoveryFansOut(t *testing.T) {
	f := newFederation(t, true)
	for _, site := range []string{"/pnnl", "/ornl"} {
		f.CreateProject(site+"/chem", model.Project{Name: "chem"})
		f.CreateCalculation(site+"/chem/c", model.Calculation{Name: "c"})
		f.SaveMolecule(site+"/chem/c", chem.MakeWater(), chem.FormatXYZ)
	}
	// The legacy OODB mount holds a molecule too — invisible to
	// discovery.
	f.CreateProject("/legacy/old", model.Project{Name: "old"})
	f.CreateCalculation("/legacy/old/c", model.Calculation{Name: "c"})
	f.SaveMolecule("/legacy/old/c", chem.MakeWater(), chem.FormatXYZ)

	hits, err := f.FindByMetadata("/", PropFormula, func(v string) bool { return v == "H2O" })
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %v (legacy mount must be opaque)", hits)
	}
	for _, h := range hits {
		if !strings.HasPrefix(h, "/pnnl/") && !strings.HasPrefix(h, "/ornl/") {
			t.Fatalf("hit outside DAV mounts: %s", h)
		}
		// The discovered path is usable through the federation.
		if _, ok, err := f.ReadAnnotation(h, PropFormula); err != nil || !ok {
			t.Fatalf("annotation via %s: ok=%v err=%v", h, ok, err)
		}
	}
	// Scoped discovery inside one mount.
	hits, err = f.FindByMetadata("/pnnl", PropFormula, nil)
	if err != nil || len(hits) != 1 || !strings.HasPrefix(hits[0], "/pnnl/") {
		t.Fatalf("scoped hits = (%v, %v)", hits, err)
	}
	// Discovery scoped to the opaque mount is refused.
	if _, err := f.FindByMetadata("/legacy", PropFormula, nil); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("legacy discovery = %v", err)
	}
	// Annotation routes to the owning (open) mount and is refused on
	// the opaque one.
	if err := f.Annotate(hits[0], EcceName("note"), "checked"); err != nil {
		t.Fatal(err)
	}
	if err := f.Annotate("/legacy/old/c", EcceName("note"), "x"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("legacy annotate = %v", err)
	}
}

func TestFederationMigrationScenario(t *testing.T) {
	// The gradual-migration story: a federation over the legacy OODB
	// and a new DAV site lets the same tool code read both while data
	// moves across.
	f := newFederation(t, true)
	f.CreateProject("/legacy/old", model.Project{Name: "old"})
	f.CreateCalculation("/legacy/old/c", model.Calculation{Name: "c", Theory: "SCF"})
	f.SaveMolecule("/legacy/old/c", chem.MakeUO2nH2O(1), chem.FormatXYZ)

	// Cross-mount copy = migration of one project.
	if err := f.Copy("/legacy/old", "/pnnl/old"); err != nil {
		t.Fatal(err)
	}
	mol, err := f.LoadMolecule("/pnnl/old/c")
	if err != nil || mol.CountOf("U") != 1 {
		t.Fatalf("migrated molecule = (%v, %v)", mol, err)
	}
	// After migration the data participates in discovery.
	hits, err := f.FindByMetadata("/pnnl", PropFormula, nil)
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits = (%v, %v)", hits, err)
	}
}
