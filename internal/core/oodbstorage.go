package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/chem"
	"repro/internal/model"
	"repro/internal/oodb"
)

// oodbNode is the persistent object the OODB schema is built from: a
// typed node with gob-encoded payload and named children, forming the
// object graph the Ecce 1.5 tools navigated. The payload format is the
// database's proprietary binary encoding — opaque to any other
// application, which is precisely the paper's complaint.
type oodbNode struct {
	Type     string
	Meta     map[string]string
	Blob     []byte
	Children map[string]oodb.OID
}

// treeRoot is the named root the whole Ecce tree hangs from.
const treeRoot = "ecce-tree"

// OODBStorage implements DataStorage over the object database — the
// Ecce 1.5 baseline. It deliberately does NOT implement Annotator or
// Finder: third parties cannot reach into the proprietary object
// format, which is the motivating limitation for the DAV redesign.
type OODBStorage struct {
	c *oodb.Client
}

var _ DataStorage = (*OODBStorage)(nil)

// SchemaFingerprint is the schema hash Ecce-model clients must present
// to the OODB server.
func SchemaFingerprint() string {
	return oodb.SchemaHash(model.ClassDescriptors())
}

// NewOODBStorage wraps a connected OODB client and ensures the tree
// root exists.
func NewOODBStorage(c *oodb.Client) (*OODBStorage, error) {
	s := &OODBStorage{c: c}
	if _, err := c.GetRoot(treeRoot); err != nil {
		if !errors.Is(err, oodb.ErrNotFound) {
			return nil, err
		}
		oid, err := s.putNode(0, &oodbNode{Type: "root", Children: map[string]oodb.OID{}})
		if err != nil {
			return nil, err
		}
		if err := c.SetRoot(treeRoot, oid); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Client exposes the underlying OODB client.
func (s *OODBStorage) Client() *oodb.Client { return s.c }

// Close implements DataStorage.
func (s *OODBStorage) Close() error { return s.c.Close() }

func encodeNode(n *oodbNode) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(n); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (s *OODBStorage) putNode(oid oodb.OID, n *oodbNode) (oodb.OID, error) {
	data, err := encodeNode(n)
	if err != nil {
		return 0, err
	}
	return s.c.Store(oid, data)
}

func (s *OODBStorage) getNode(oid oodb.OID) (*oodbNode, error) {
	data, err := s.c.Fetch(oid)
	if err != nil {
		return nil, err
	}
	var n oodbNode
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&n); err != nil {
		return nil, fmt.Errorf("core: corrupt OODB node %s: %w", oid, err)
	}
	if n.Children == nil {
		n.Children = map[string]oodb.OID{}
	}
	if n.Meta == nil {
		n.Meta = map[string]string{}
	}
	return &n, nil
}

// splitPath breaks an object path into segments.
func splitPath(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// resolve walks from the tree root to the node at path.
func (s *OODBStorage) resolve(p string) (oodb.OID, *oodbNode, error) {
	oid, err := s.c.GetRoot(treeRoot)
	if err != nil {
		return 0, nil, err
	}
	node, err := s.getNode(oid)
	if err != nil {
		return 0, nil, err
	}
	for _, seg := range splitPath(p) {
		child, ok := node.Children[seg]
		if !ok {
			return 0, nil, fmt.Errorf("%w: %s", ErrNotFound, p)
		}
		oid = child
		if node, err = s.getNode(oid); err != nil {
			return 0, nil, err
		}
	}
	return oid, node, nil
}

// createChild inserts a new node under the parent of path, failing if
// the name is taken.
func (s *OODBStorage) createChild(p string, n *oodbNode) error {
	segs := splitPath(p)
	if len(segs) == 0 {
		return fmt.Errorf("%w: empty path", ErrExists)
	}
	parentPath := "/" + strings.Join(segs[:len(segs)-1], "/")
	name := segs[len(segs)-1]
	parentOID, parent, err := s.resolve(parentPath)
	if err != nil {
		return err
	}
	if _, taken := parent.Children[name]; taken {
		return fmt.Errorf("%w: %s", ErrExists, p)
	}
	oid, err := s.putNode(0, n)
	if err != nil {
		return err
	}
	parent.Children[name] = oid
	_, err = s.putNode(parentOID, parent)
	return err
}

// upsertChild creates or replaces the child node at path, preserving
// an existing node's children map when replacing.
func (s *OODBStorage) upsertChild(p string, n *oodbNode) error {
	if oid, existing, err := s.resolve(p); err == nil {
		if n.Children == nil || len(n.Children) == 0 {
			n.Children = existing.Children
		}
		_, err = s.putNode(oid, n)
		return err
	}
	return s.createChild(p, n)
}

// CreateProject implements DataStorage.
func (s *OODBStorage) CreateProject(p string, proj model.Project) error {
	created := proj.Created
	if created.IsZero() {
		created = time.Now()
	}
	return s.createChild(p, &oodbNode{
		Type: string(TypeProject),
		Meta: map[string]string{
			"name":        proj.Name,
			"description": proj.Description,
			"created":     created.UTC().Format(time.RFC3339Nano),
		},
		Children: map[string]oodb.OID{},
	})
}

// LoadProject implements DataStorage.
func (s *OODBStorage) LoadProject(p string) (model.Project, error) {
	_, node, err := s.resolve(p)
	if err != nil {
		return model.Project{}, err
	}
	if node.Type != string(TypeProject) {
		return model.Project{}, fmt.Errorf("%w: %s is not a project", ErrNotFound, p)
	}
	proj := model.Project{Name: node.Meta["name"], Description: node.Meta["description"]}
	if t, err := time.Parse(time.RFC3339Nano, node.Meta["created"]); err == nil {
		proj.Created = t
	}
	return proj, nil
}

// List implements DataStorage.
func (s *OODBStorage) List(p string) ([]Entry, error) {
	_, node, err := s.resolve(p)
	if err != nil {
		return nil, err
	}
	base := "/" + strings.Join(splitPath(p), "/")
	if base == "/" {
		base = ""
	}
	entries := make([]Entry, 0, len(node.Children))
	for name, oid := range node.Children {
		child, err := s.getNode(oid)
		if err != nil {
			return nil, err
		}
		entries = append(entries, Entry{Name: name, Path: base + "/" + name, Type: ObjectType(child.Type)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Path < entries[j].Path })
	return entries, nil
}

// CreateCalculation implements DataStorage.
func (s *OODBStorage) CreateCalculation(p string, c model.Calculation) error {
	if err := s.createChild(p, &oodbNode{Type: string(TypeCalculation),
		Children: map[string]oodb.OID{}}); err != nil {
		return err
	}
	return s.SaveCalculation(p, c)
}

// SaveCalculation implements DataStorage.
func (s *OODBStorage) SaveCalculation(p string, c model.Calculation) error {
	oid, node, err := s.resolve(p)
	if err != nil {
		return err
	}
	if node.Type != string(TypeCalculation) {
		return fmt.Errorf("%w: %s is not a calculation", ErrNotFound, p)
	}
	created := c.Created
	if created.IsZero() {
		created = time.Now()
	}
	node.Meta = map[string]string{
		"name":       c.Name,
		"state":      c.State.String(),
		"theory":     c.Theory,
		"annotation": c.Annotation,
		"created":    created.UTC().Format(time.RFC3339Nano),
	}
	_, err = s.putNode(oid, node)
	return err
}

// LoadCalculation implements DataStorage.
func (s *OODBStorage) LoadCalculation(p string) (model.Calculation, error) {
	_, node, err := s.resolve(p)
	if err != nil {
		return model.Calculation{}, err
	}
	if node.Type != string(TypeCalculation) {
		return model.Calculation{}, fmt.Errorf("%w: %s is not a calculation", ErrNotFound, p)
	}
	c := model.Calculation{
		Name:       node.Meta["name"],
		Theory:     node.Meta["theory"],
		Annotation: node.Meta["annotation"],
	}
	if st, err := model.ParseState(node.Meta["state"]); err == nil {
		c.State = st
	}
	if t, err := time.Parse(time.RFC3339Nano, node.Meta["created"]); err == nil {
		c.Created = t
	}
	return c, nil
}

// gobBlob encodes any value in the proprietary format.
func gobBlob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SaveMolecule implements DataStorage. The format argument is ignored:
// the OODB stores the object in its binary encoding, inaccessible to
// other tools (the paper's point).
func (s *OODBStorage) SaveMolecule(calcPath string, mol *chem.Molecule, _ string) error {
	blob, err := gobBlob(mol)
	if err != nil {
		return err
	}
	return s.upsertChild(calcPath+"/"+memberMolecule, &oodbNode{
		Type: string(TypeMolecule), Blob: blob,
	})
}

// LoadMolecule implements DataStorage.
func (s *OODBStorage) LoadMolecule(calcPath string) (*chem.Molecule, error) {
	_, node, err := s.resolve(calcPath + "/" + memberMolecule)
	if err != nil {
		return nil, err
	}
	var mol chem.Molecule
	if err := gob.NewDecoder(bytes.NewReader(node.Blob)).Decode(&mol); err != nil {
		return nil, fmt.Errorf("core: corrupt molecule blob: %w", err)
	}
	return &mol, nil
}

// SaveBasis implements DataStorage.
func (s *OODBStorage) SaveBasis(calcPath string, bs *chem.BasisSet) error {
	blob, err := gobBlob(bs)
	if err != nil {
		return err
	}
	return s.upsertChild(calcPath+"/"+memberBasis, &oodbNode{
		Type: string(TypeBasisSet), Blob: blob,
	})
}

// LoadBasis implements DataStorage.
func (s *OODBStorage) LoadBasis(calcPath string) (*chem.BasisSet, error) {
	_, node, err := s.resolve(calcPath + "/" + memberBasis)
	if err != nil {
		return nil, err
	}
	var bs chem.BasisSet
	if err := gob.NewDecoder(bytes.NewReader(node.Blob)).Decode(&bs); err != nil {
		return nil, fmt.Errorf("core: corrupt basis blob: %w", err)
	}
	return &bs, nil
}

// SaveTask implements DataStorage.
func (s *OODBStorage) SaveTask(calcPath string, t model.Task) error {
	if _, _, err := s.resolve(calcPath + "/" + memberTasks); err != nil {
		if !errors.Is(err, ErrNotFound) {
			return err
		}
		if err := s.createChild(calcPath+"/"+memberTasks, &oodbNode{
			Type: "container", Children: map[string]oodb.OID{}}); err != nil {
			return err
		}
	}
	blob, err := gobBlob(&t)
	if err != nil {
		return err
	}
	return s.upsertChild(calcPath+"/"+memberTasks+"/"+taskDocName(t), &oodbNode{
		Type: string(TypeTask), Blob: blob,
	})
}

// LoadTasks implements DataStorage.
func (s *OODBStorage) LoadTasks(calcPath string) ([]model.Task, error) {
	_, node, err := s.resolve(calcPath + "/" + memberTasks)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, nil
		}
		return nil, err
	}
	var tasks []model.Task
	for _, oid := range node.Children {
		child, err := s.getNode(oid)
		if err != nil {
			return nil, err
		}
		var t model.Task
		if err := gob.NewDecoder(bytes.NewReader(child.Blob)).Decode(&t); err != nil {
			return nil, fmt.Errorf("core: corrupt task blob: %w", err)
		}
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Sequence < tasks[j].Sequence })
	return tasks, nil
}

// SaveJob implements DataStorage.
func (s *OODBStorage) SaveJob(calcPath string, j model.Job) error {
	blob, err := gobBlob(&j)
	if err != nil {
		return err
	}
	return s.upsertChild(calcPath+"/"+memberJob, &oodbNode{Type: string(TypeJob), Blob: blob})
}

// LoadJob implements DataStorage.
func (s *OODBStorage) LoadJob(calcPath string) (model.Job, error) {
	_, node, err := s.resolve(calcPath + "/" + memberJob)
	if err != nil {
		return model.Job{}, err
	}
	var j model.Job
	if err := gob.NewDecoder(bytes.NewReader(node.Blob)).Decode(&j); err != nil {
		return model.Job{}, fmt.Errorf("core: corrupt job blob: %w", err)
	}
	return j, nil
}

// SaveProperty implements DataStorage.
func (s *OODBStorage) SaveProperty(calcPath string, p model.Property) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, _, err := s.resolve(calcPath + "/" + memberProperties); err != nil {
		if !errors.Is(err, ErrNotFound) {
			return err
		}
		if err := s.createChild(calcPath+"/"+memberProperties, &oodbNode{
			Type: "container", Children: map[string]oodb.OID{}}); err != nil {
			return err
		}
	}
	blob, err := gobBlob(&p)
	if err != nil {
		return err
	}
	return s.upsertChild(calcPath+"/"+memberProperties+"/"+propDocName(p.Name), &oodbNode{
		Type: string(TypeProperty), Blob: blob,
	})
}

// LoadProperty implements DataStorage.
func (s *OODBStorage) LoadProperty(calcPath, name string) (model.Property, error) {
	_, node, err := s.resolve(calcPath + "/" + memberProperties + "/" + propDocName(name))
	if err != nil {
		return model.Property{}, err
	}
	var p model.Property
	if err := gob.NewDecoder(bytes.NewReader(node.Blob)).Decode(&p); err != nil {
		return model.Property{}, fmt.Errorf("core: corrupt property blob: %w", err)
	}
	return p, nil
}

// LoadProperties implements DataStorage.
func (s *OODBStorage) LoadProperties(calcPath string) ([]model.Property, error) {
	_, node, err := s.resolve(calcPath + "/" + memberProperties)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, nil
		}
		return nil, err
	}
	var out []model.Property
	for _, oid := range node.Children {
		child, err := s.getNode(oid)
		if err != nil {
			return nil, err
		}
		var p model.Property
		if err := gob.NewDecoder(bytes.NewReader(child.Blob)).Decode(&p); err != nil {
			return nil, fmt.Errorf("core: corrupt property blob: %w", err)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// SaveRawFile implements DataStorage. Note: the paper records that
// Ecce 1.5 kept raw files on local disk with only path references in
// the OODB; storing the bytes here is a generous baseline.
func (s *OODBStorage) SaveRawFile(calcPath, name string, data []byte, _ string) error {
	return s.upsertChild(calcPath+"/"+name, &oodbNode{
		Type: string(TypeDocument), Blob: append([]byte(nil), data...),
	})
}

// LoadRawFile implements DataStorage.
func (s *OODBStorage) LoadRawFile(calcPath, name string) ([]byte, error) {
	_, node, err := s.resolve(calcPath + "/" + name)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), node.Blob...), nil
}

// Copy implements DataStorage with a recursive client-side clone — the
// OODB has no server-side tree copy, so every object crosses the wire
// twice (fetch + store).
func (s *OODBStorage) Copy(src, dst string) error {
	srcOID, _, err := s.resolve(src)
	if err != nil {
		return err
	}
	if _, _, err := s.resolve(dst); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, dst)
	}
	newOID, err := s.cloneSubtree(srcOID)
	if err != nil {
		return err
	}
	segs := splitPath(dst)
	parentPath := "/" + strings.Join(segs[:len(segs)-1], "/")
	name := segs[len(segs)-1]
	parentOID, parent, err := s.resolve(parentPath)
	if err != nil {
		return err
	}
	parent.Children[name] = newOID
	_, err = s.putNode(parentOID, parent)
	return err
}

func (s *OODBStorage) cloneSubtree(oid oodb.OID) (oodb.OID, error) {
	node, err := s.getNode(oid)
	if err != nil {
		return 0, err
	}
	clone := &oodbNode{
		Type:     node.Type,
		Blob:     append([]byte(nil), node.Blob...),
		Meta:     map[string]string{},
		Children: map[string]oodb.OID{},
	}
	for k, v := range node.Meta {
		clone.Meta[k] = v
	}
	for name, child := range node.Children {
		cc, err := s.cloneSubtree(child)
		if err != nil {
			return 0, err
		}
		clone.Children[name] = cc
	}
	return s.putNode(0, clone)
}

// Delete implements DataStorage, removing the subtree object by
// object.
func (s *OODBStorage) Delete(p string) error {
	segs := splitPath(p)
	if len(segs) == 0 {
		return fmt.Errorf("%w: cannot delete the root", ErrNotFound)
	}
	parentPath := "/" + strings.Join(segs[:len(segs)-1], "/")
	name := segs[len(segs)-1]
	parentOID, parent, err := s.resolve(parentPath)
	if err != nil {
		return err
	}
	oid, ok := parent.Children[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	if err := s.deleteSubtree(oid); err != nil {
		return err
	}
	delete(parent.Children, name)
	_, err = s.putNode(parentOID, parent)
	return err
}

func (s *OODBStorage) deleteSubtree(oid oodb.OID) error {
	node, err := s.getNode(oid)
	if err != nil {
		return err
	}
	for _, child := range node.Children {
		if err := s.deleteSubtree(child); err != nil {
			return err
		}
	}
	return s.c.Delete(oid)
}
