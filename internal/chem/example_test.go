package chem_test

import (
	"fmt"

	"repro/internal/chem"
)

func ExampleMolecule_Formula() {
	water := chem.MakeWater()
	fmt.Println(water.Formula())

	uranyl := chem.MakeUO2nH2O(15)
	fmt.Println(uranyl.Formula())
	// Output:
	// H2O
	// H30O17U
}

func ExampleMakeUO2nH2O() {
	mol := chem.MakeUO2nH2O(15)
	fmt.Printf("%s: %d atoms, charge %+d, %d fragments\n",
		mol.Name, mol.AtomCount(), mol.Charge, len(mol.ConnectedFragments(1.2)))
	// Output:
	// UO2-15H2O: 48 atoms, charge +2, 16 fragments
}

func ExampleParseXYZBytes() {
	xyz := []byte(`3
water charge=0
O   0.00000000  0.00000000  0.00000000
H   0.75716000  0.00000000  0.58626000
H  -0.75716000  0.00000000  0.58626000
`)
	mol, err := chem.ParseXYZBytes(xyz)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s with %d bonds\n", mol.Formula(), len(mol.PerceiveBonds(1.2)))
	// Output:
	// H2O with 2 bonds
}

func ExampleBasisSet_Covers() {
	bs := chem.STO3G()
	fmt.Println(bs.Covers(chem.MakeWater()))
	iron := &chem.Molecule{Atoms: []chem.Atom{{Symbol: "Fe"}}}
	fmt.Println(bs.Covers(iron))
	// Output:
	// true
	// false
}
