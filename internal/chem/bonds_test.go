package chem

import "testing"

func TestPerceiveBondsWater(t *testing.T) {
	w := MakeWater()
	bonds := w.PerceiveBonds(1.2)
	if len(bonds) != 2 {
		t.Fatalf("water bonds = %d, want 2 (O-H, O-H)", len(bonds))
	}
	for _, b := range bonds {
		if b.A != 0 && b.B != 0 {
			t.Fatalf("bond %v does not involve oxygen", b)
		}
	}
}

func TestPerceiveBondsNoFalsePositives(t *testing.T) {
	far := &Molecule{Atoms: []Atom{
		{Symbol: "H"}, {Symbol: "H", X: 10},
	}}
	if bonds := far.PerceiveBonds(1.2); len(bonds) != 0 {
		t.Fatalf("distant atoms bonded: %v", bonds)
	}
}

func TestConnectedFragments(t *testing.T) {
	// UO2 + n waters: 1 uranyl fragment + n water fragments (the
	// waters are placed well away from each other and the core).
	m := MakeUO2nH2O(5)
	frags := m.ConnectedFragments(1.2)
	if len(frags) != 6 {
		t.Fatalf("fragments = %d, want 6", len(frags))
	}
	// First fragment is the 3-atom uranyl; the rest are 3-atom waters.
	total := 0
	for _, f := range frags {
		if len(f) != 3 {
			t.Fatalf("fragment size = %d, want 3", len(f))
		}
		total += len(f)
	}
	if total != m.AtomCount() {
		t.Fatalf("fragments cover %d atoms of %d", total, m.AtomCount())
	}
}

func TestCovalentRadiusFallback(t *testing.T) {
	if CovalentRadius("U") == 1.5 {
		t.Fatal("U radius should be tabulated")
	}
	if CovalentRadius("Zz") != 1.5 {
		t.Fatal("unknown element should fall back to 1.5")
	}
}
