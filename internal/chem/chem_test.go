package chem

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestLookupElement(t *testing.T) {
	for _, sym := range []string{"H", "h", " U ", "fe"} {
		if _, ok := LookupElement(sym); !ok {
			t.Errorf("LookupElement(%q) missed", sym)
		}
	}
	if _, ok := LookupElement("Xx"); ok {
		t.Error("unknown element accepted")
	}
	u, _ := LookupElement("U")
	if u.Number != 92 || u.Mass < 238 || u.Mass > 239 {
		t.Errorf("U = %+v", u)
	}
}

func TestHillOrder(t *testing.T) {
	cases := []struct {
		in, want []string
	}{
		{[]string{"O", "H", "C"}, []string{"C", "H", "O"}},
		{[]string{"U", "H", "O"}, []string{"H", "O", "U"}}, // no carbon: alphabetical
		{[]string{"N", "C", "Cl", "H"}, []string{"C", "H", "Cl", "N"}},
	}
	for _, c := range cases {
		if got := HillOrder(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("HillOrder(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFormulas(t *testing.T) {
	water := MakeWater()
	if f := water.Formula(); f != "H2O" {
		t.Errorf("water formula = %q", f)
	}
	methane := &Molecule{Atoms: []Atom{
		{Symbol: "C"}, {Symbol: "H"}, {Symbol: "H"}, {Symbol: "H"}, {Symbol: "H"},
	}}
	if f := methane.Formula(); f != "CH4" {
		t.Errorf("methane formula = %q", f)
	}
}

func TestUO215H2OMatchesPaper(t *testing.T) {
	// The paper describes "a molecule of Uranium Oxide surrounded by
	// 15 water molecules (UO2-15H2O) for a total of 50 atoms". Note
	// that UO2 + 15 x H2O is arithmetically 48 atoms; we keep the
	// chemically faithful count ("a total of 50" appears to be the
	// paper rounding or a slightly different coordination sphere).
	m := MakeUO2nH2O(15)
	if m.AtomCount() != 48 {
		t.Fatalf("atoms = %d, want 48 (3 + 15*3)", m.AtomCount())
	}
	if m.CountOf("U") != 1 || m.CountOf("O") != 17 || m.CountOf("H") != 30 {
		t.Fatalf("composition U=%d O=%d H=%d", m.CountOf("U"), m.CountOf("O"), m.CountOf("H"))
	}
	if f := m.Formula(); f != "H30O17U" {
		t.Fatalf("formula = %q", f)
	}
	if m.Charge != 2 {
		t.Fatalf("charge = %d", m.Charge)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Waters must not sit on top of the uranyl: all O-U distances of
	// water oxygens > 2 Å.
	for i := 3; i < len(m.Atoms); i++ {
		if d := m.Distance(0, i); d < 2.0 {
			t.Fatalf("atom %d only %.2f Å from U", i, d)
		}
	}
}

func TestMassAndElectrons(t *testing.T) {
	w := MakeWater()
	if m := w.Mass(); math.Abs(m-18.015) > 0.01 {
		t.Errorf("water mass = %f", m)
	}
	if e := w.Electrons(); e != 10 {
		t.Errorf("water electrons = %d", e)
	}
	uo2 := &Molecule{Charge: 2, Atoms: []Atom{{Symbol: "U"}, {Symbol: "O"}, {Symbol: "O"}}}
	if e := uo2.Electrons(); e != 92+16-2 {
		t.Errorf("uranyl electrons = %d", e)
	}
}

func TestGeometryHelpers(t *testing.T) {
	w := MakeWater()
	// O-H bond length as constructed.
	if d := w.Distance(0, 1); math.Abs(d-0.9572) > 1e-9 {
		t.Errorf("O-H distance = %f", d)
	}
	before := w.Atoms[0]
	w.Translate(1, 2, 3)
	after := w.Atoms[0]
	if after.X-before.X != 1 || after.Y-before.Y != 2 || after.Z-before.Z != 3 {
		t.Error("Translate failed")
	}
	c := w.Clone()
	c.Atoms[0].X = 99
	if w.Atoms[0].X == 99 {
		t.Error("Clone is shallow")
	}
}

func TestXYZRoundTrip(t *testing.T) {
	m := MakeUO2nH2O(3)
	data := EncodeXYZ(m)
	back, err := ParseXYZBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.AtomCount() != m.AtomCount() || back.Formula() != m.Formula() || back.Charge != m.Charge {
		t.Fatalf("round trip: %d atoms %q charge %d", back.AtomCount(), back.Formula(), back.Charge)
	}
	for i := range m.Atoms {
		if math.Abs(back.Atoms[i].X-m.Atoms[i].X) > 1e-6 {
			t.Fatalf("atom %d x drifted", i)
		}
	}
}

func TestXYZErrors(t *testing.T) {
	cases := []string{
		"",
		"notanumber\ncomment\n",
		"2\ncomment\nH 0 0 0\n", // truncated
		"1\ncomment\nH zero 0 0\n",
		"1\ncomment\nH\n",
	}
	for _, c := range cases {
		if _, err := ParseXYZBytes([]byte(c)); err == nil {
			t.Errorf("ParseXYZ(%q) succeeded", c)
		}
	}
}

func TestPDBRoundTrip(t *testing.T) {
	m := MakeUO2nH2O(2)
	data := EncodePDB(m)
	back, err := ParsePDBBytes(data)
	if err != nil {
		t.Fatalf("%v\n%s", err, data)
	}
	if back.AtomCount() != m.AtomCount() || back.Formula() != m.Formula() || back.Charge != 2 {
		t.Fatalf("round trip: %d atoms %q charge %d", back.AtomCount(), back.Formula(), back.Charge)
	}
	// PDB fixed columns keep 3 decimals.
	for i := range m.Atoms {
		if math.Abs(back.Atoms[i].X-m.Atoms[i].X) > 1e-3+1e-9 {
			t.Fatalf("atom %d x drifted: %f vs %f", i, back.Atoms[i].X, m.Atoms[i].X)
		}
	}
}

func TestParsePDBRealWorldStyle(t *testing.T) {
	pdb := `HEADER    test molecule
HETATM    1  O   HOH     1       0.000   0.000   0.000  1.00  0.00           O
HETATM    2  H1  HOH     1       0.957   0.000   0.000  1.00  0.00           H
HETATM    3  H2  HOH     1      -0.240   0.927   0.000  1.00  0.00           H
END
`
	m, err := ParsePDB(strings.NewReader(pdb))
	if err != nil {
		t.Fatal(err)
	}
	if m.Formula() != "H2O" {
		t.Fatalf("formula = %q", m.Formula())
	}
	if m.Atoms[1].X != 0.957 {
		t.Fatalf("x = %f", m.Atoms[1].X)
	}
}

func TestParsePDBNoAtoms(t *testing.T) {
	if _, err := ParsePDB(strings.NewReader("HEADER x\n")); err == nil {
		t.Fatal("empty PDB accepted")
	}
}

func TestEncodeDecodeDispatch(t *testing.T) {
	m := MakeWater()
	for _, format := range []string{FormatXYZ, FormatPDB} {
		data, err := Encode(m, format)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(data, format)
		if err != nil || back.Formula() != "H2O" {
			t.Fatalf("%s: %v %q", format, err, back.Formula())
		}
	}
	if _, err := Encode(m, "cml"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := Decode(nil, "cml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestBasisRoundTrip(t *testing.T) {
	bs := STO3G()
	data := bs.Encode()
	back, err := ParseBasisBytes(data)
	if err != nil {
		t.Fatalf("%v\n%s", err, data)
	}
	if back.Name != "STO-3G" || len(back.Elements) != len(bs.Elements) {
		t.Fatalf("basis = %q with %d elements", back.Name, len(back.Elements))
	}
	for i, e := range bs.Elements {
		be := back.Elements[i]
		if be.Symbol != e.Symbol || len(be.Shells) != len(e.Shells) {
			t.Fatalf("element %d = %+v", i, be)
		}
		for j, sh := range e.Shells {
			bsh := be.Shells[j]
			if bsh.Type != sh.Type || len(bsh.Primitives) != len(sh.Primitives) {
				t.Fatalf("shell %d/%d mismatch", i, j)
			}
			for k, p := range sh.Primitives {
				if math.Abs(bsh.Primitives[k].Exponent-p.Exponent) > 1e-7 {
					t.Fatalf("primitive %d/%d/%d exponent drifted", i, j, k)
				}
			}
		}
	}
}

func TestBasisCoverage(t *testing.T) {
	bs := STO3G()
	if !bs.Covers(MakeWater()) {
		t.Fatal("STO-3G should cover water")
	}
	if !bs.Covers(MakeUO2nH2O(15)) {
		t.Fatal("STO-3G stand-in should cover the uranyl system")
	}
	iron := &Molecule{Atoms: []Atom{{Symbol: "Fe"}}}
	if bs.Covers(iron) {
		t.Fatal("STO-3G should not cover Fe")
	}
	if n := bs.FunctionCount(MakeWater()); n != 2+2*1 {
		t.Fatalf("function count = %d", n)
	}
}

func TestBasisParseErrors(t *testing.T) {
	cases := []string{
		"basis \"x\"\n1.0 2.0\nend\n",         // primitive outside shell
		"basis \"x\"\nH S\n",                  // missing end
		"basis \"x\"\nH S extra\nendticket\n", // unparseable
	}
	for _, c := range cases {
		if _, err := ParseBasisBytes([]byte(c)); err == nil {
			t.Errorf("ParseBasis(%q) succeeded", c)
		}
	}
}

// TestQuickXYZRoundTrip: arbitrary generated molecules survive XYZ
// encode/parse.
func TestQuickXYZRoundTrip(t *testing.T) {
	syms := KnownSymbols()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Molecule{Name: "q", Charge: rng.Intn(7) - 3, Multiplicity: 1}
		for i := rng.Intn(30) + 1; i > 0; i-- {
			m.Atoms = append(m.Atoms, Atom{
				Symbol: syms[rng.Intn(len(syms))],
				X:      (rng.Float64() - 0.5) * 100,
				Y:      (rng.Float64() - 0.5) * 100,
				Z:      (rng.Float64() - 0.5) * 100,
			})
		}
		back, err := ParseXYZBytes(EncodeXYZ(m))
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		if back.AtomCount() != m.AtomCount() || back.Formula() != m.Formula() || back.Charge != m.Charge {
			return false
		}
		for i := range m.Atoms {
			if back.Atoms[i].Symbol != m.Atoms[i].Symbol ||
				math.Abs(back.Atoms[i].X-m.Atoms[i].X) > 1e-6 ||
				math.Abs(back.Atoms[i].Y-m.Atoms[i].Y) > 1e-6 ||
				math.Abs(back.Atoms[i].Z-m.Atoms[i].Z) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFormulaInvariants: formulas are permutation-invariant and
// atom counts always match.
func TestQuickFormulaInvariants(t *testing.T) {
	syms := []string{"C", "H", "O", "N", "U"}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var atoms []Atom
		for i := rng.Intn(20) + 1; i > 0; i-- {
			atoms = append(atoms, Atom{Symbol: syms[rng.Intn(len(syms))]})
		}
		m1 := &Molecule{Atoms: atoms}
		shuffled := append([]Atom(nil), atoms...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		m2 := &Molecule{Atoms: shuffled}
		return m1.Formula() == m2.Formula()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteToBuffers(t *testing.T) {
	var xyz, pdb bytes.Buffer
	m := MakeWater()
	if err := WriteXYZ(&xyz, m); err != nil {
		t.Fatal(err)
	}
	if err := WritePDB(&pdb, m); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(xyz.String(), "3\n") {
		t.Fatalf("xyz header: %q", xyz.String()[:10])
	}
	if !strings.HasPrefix(pdb.String(), "HEADER") {
		t.Fatalf("pdb header: %q", pdb.String()[:10])
	}
}
