package chem

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Format names used in the ecce:format metadata property (the paper
// maps the Molecule object to "a Protein Data Bank (PDB), simple XYZ,
// or custom encoded molecular geometry with metadata encoding the
// format of the raw data").
const (
	FormatXYZ = "xyz"
	FormatPDB = "pdb"
)

// WriteXYZ renders the standard XYZ interchange format: atom count,
// comment line, then "symbol x y z" rows.
func WriteXYZ(w io.Writer, m *Molecule) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", len(m.Atoms))
	comment := m.Name
	if comment == "" {
		comment = m.Formula()
	}
	fmt.Fprintf(bw, "%s charge=%d\n", comment, m.Charge)
	for _, a := range m.Atoms {
		fmt.Fprintf(bw, "%-2s %14.8f %14.8f %14.8f\n", a.Symbol, a.X, a.Y, a.Z)
	}
	return bw.Flush()
}

// EncodeXYZ renders a molecule to an XYZ byte slice.
func EncodeXYZ(m *Molecule) []byte {
	var sb strings.Builder
	WriteXYZ(&sb, m)
	return []byte(sb.String())
}

// ParseXYZ reads the XYZ format. The comment line's "charge=N" token,
// if present, populates Charge.
func ParseXYZ(r io.Reader) (*Molecule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("chem: empty XYZ input")
	}
	count, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil || count < 0 {
		return nil, fmt.Errorf("chem: bad XYZ atom count %q", sc.Text())
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("chem: XYZ missing comment line")
	}
	mol := &Molecule{Multiplicity: 1}
	comment := sc.Text()
	for _, tok := range strings.Fields(comment) {
		if v, ok := strings.CutPrefix(tok, "charge="); ok {
			if c, err := strconv.Atoi(v); err == nil {
				mol.Charge = c
			}
		} else if mol.Name == "" {
			mol.Name = tok
		}
	}
	for i := 0; i < count; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("chem: XYZ truncated at atom %d of %d", i, count)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			return nil, fmt.Errorf("chem: bad XYZ atom line %q", sc.Text())
		}
		x, err1 := strconv.ParseFloat(fields[1], 64)
		y, err2 := strconv.ParseFloat(fields[2], 64)
		z, err3 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("chem: bad XYZ coordinates %q", sc.Text())
		}
		mol.Atoms = append(mol.Atoms, Atom{Symbol: NormalizeSymbol(fields[0]), X: x, Y: y, Z: z})
	}
	return mol, sc.Err()
}

// ParseXYZBytes parses XYZ data held in memory.
func ParseXYZBytes(b []byte) (*Molecule, error) {
	return ParseXYZ(strings.NewReader(string(b)))
}

// WritePDB renders HETATM records per the PDB format the paper cites
// (columns per the 2.2 guide: serial 7-11, name 13-16, resName 18-20,
// x 31-38, y 39-46, z 47-54, element 77-78).
func WritePDB(w io.Writer, m *Molecule) error {
	bw := bufio.NewWriter(w)
	name := m.Name
	if name == "" {
		name = m.Formula()
	}
	fmt.Fprintf(bw, "HEADER    %s\n", name)
	fmt.Fprintf(bw, "REMARK   1 CHARGE %d\n", m.Charge)
	for i, a := range m.Atoms {
		sym := NormalizeSymbol(a.Symbol)
		fmt.Fprintf(bw, "HETATM%5d %-4s MOL     1    %8.3f%8.3f%8.3f  1.00  0.00          %2s\n",
			i+1, sym, a.X, a.Y, a.Z, strings.ToUpper(sym))
	}
	fmt.Fprintf(bw, "END\n")
	return bw.Flush()
}

// EncodePDB renders a molecule to a PDB byte slice.
func EncodePDB(m *Molecule) []byte {
	var sb strings.Builder
	WritePDB(&sb, m)
	return []byte(sb.String())
}

// ParsePDB reads ATOM/HETATM records, tolerating the column drift of
// real-world files by using fixed columns when the line is long enough
// and whitespace fields otherwise.
func ParsePDB(r io.Reader) (*Molecule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	mol := &Molecule{Multiplicity: 1}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "HEADER"):
			mol.Name = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "REMARK") && strings.Contains(line, "CHARGE"):
			fields := strings.Fields(line)
			if c, err := strconv.Atoi(fields[len(fields)-1]); err == nil {
				mol.Charge = c
			}
		case strings.HasPrefix(line, "ATOM") || strings.HasPrefix(line, "HETATM"):
			atom, err := parsePDBAtom(line)
			if err != nil {
				return nil, fmt.Errorf("chem: PDB line %d: %w", lineNo, err)
			}
			mol.Atoms = append(mol.Atoms, atom)
		case strings.HasPrefix(line, "END"):
			return mol, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(mol.Atoms) == 0 {
		return nil, fmt.Errorf("chem: PDB input contains no atoms")
	}
	return mol, nil
}

func parsePDBAtom(line string) (Atom, error) {
	if len(line) >= 54 {
		x, err1 := strconv.ParseFloat(strings.TrimSpace(line[30:38]), 64)
		y, err2 := strconv.ParseFloat(strings.TrimSpace(line[38:46]), 64)
		z, err3 := strconv.ParseFloat(strings.TrimSpace(line[46:54]), 64)
		if err1 == nil && err2 == nil && err3 == nil {
			sym := ""
			if len(line) >= 78 {
				sym = strings.TrimSpace(line[76:78])
			}
			if sym == "" {
				sym = strings.TrimSpace(line[12:16])
				sym = strings.TrimRight(sym, "0123456789")
			}
			if sym == "" {
				return Atom{}, fmt.Errorf("no element symbol")
			}
			return Atom{Symbol: NormalizeSymbol(sym), X: x, Y: y, Z: z}, nil
		}
	}
	// Fall back to whitespace splitting for non-conforming writers.
	fields := strings.Fields(line)
	if len(fields) < 7 {
		return Atom{}, fmt.Errorf("unparseable atom record %q", line)
	}
	x, err1 := strconv.ParseFloat(fields[len(fields)-5], 64)
	y, err2 := strconv.ParseFloat(fields[len(fields)-4], 64)
	z, err3 := strconv.ParseFloat(fields[len(fields)-3], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return Atom{}, fmt.Errorf("unparseable coordinates %q", line)
	}
	return Atom{Symbol: NormalizeSymbol(fields[2]), X: x, Y: y, Z: z}, nil
}

// ParsePDBBytes parses PDB data held in memory.
func ParsePDBBytes(b []byte) (*Molecule, error) {
	return ParsePDB(strings.NewReader(string(b)))
}

// Encode renders a molecule in the named format.
func Encode(m *Molecule, format string) ([]byte, error) {
	switch format {
	case FormatXYZ:
		return EncodeXYZ(m), nil
	case FormatPDB:
		return EncodePDB(m), nil
	default:
		return nil, fmt.Errorf("chem: unknown format %q", format)
	}
}

// Decode parses a molecule in the named format.
func Decode(b []byte, format string) (*Molecule, error) {
	switch format {
	case FormatXYZ:
		return ParseXYZBytes(b)
	case FormatPDB:
		return ParsePDBBytes(b)
	default:
		return nil, fmt.Errorf("chem: unknown format %q", format)
	}
}
