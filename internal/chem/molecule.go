package chem

import (
	"fmt"
	"math"
)

// Atom is one atom with Cartesian coordinates in Ångström.
type Atom struct {
	Symbol  string
	X, Y, Z float64
}

// Molecule is a 3D molecular structure — the study subject of the Ecce
// calculation model.
type Molecule struct {
	Name         string
	Atoms        []Atom
	Charge       int
	Multiplicity int    // spin multiplicity, 1 = singlet
	Symmetry     string // point group label, e.g. "C1", "D4h"
}

// AtomCount returns the number of atoms.
func (m *Molecule) AtomCount() int { return len(m.Atoms) }

// CountOf returns how many atoms of the given element are present.
func (m *Molecule) CountOf(symbol string) int {
	symbol = NormalizeSymbol(symbol)
	n := 0
	for _, a := range m.Atoms {
		if NormalizeSymbol(a.Symbol) == symbol {
			n++
		}
	}
	return n
}

// ElementCounts tallies atoms per element.
func (m *Molecule) ElementCounts() map[string]int {
	counts := map[string]int{}
	for _, a := range m.Atoms {
		counts[NormalizeSymbol(a.Symbol)]++
	}
	return counts
}

// Formula returns the empirical formula in Hill order.
func (m *Molecule) Formula() string { return FormatFormula(m.ElementCounts()) }

// Mass returns the molecular mass in u; unknown elements contribute 0.
func (m *Molecule) Mass() float64 {
	var total float64
	for _, a := range m.Atoms {
		if e, ok := LookupElement(a.Symbol); ok {
			total += e.Mass
		}
	}
	return total
}

// Electrons returns the total electron count given the charge; atoms
// of unknown elements contribute 0 protons.
func (m *Molecule) Electrons() int {
	z := 0
	for _, a := range m.Atoms {
		if e, ok := LookupElement(a.Symbol); ok {
			z += e.Number
		}
	}
	return z - m.Charge
}

// Translate shifts every atom by (dx, dy, dz).
func (m *Molecule) Translate(dx, dy, dz float64) {
	for i := range m.Atoms {
		m.Atoms[i].X += dx
		m.Atoms[i].Y += dy
		m.Atoms[i].Z += dz
	}
}

// Centroid returns the unweighted geometric center.
func (m *Molecule) Centroid() (x, y, z float64) {
	if len(m.Atoms) == 0 {
		return 0, 0, 0
	}
	for _, a := range m.Atoms {
		x += a.X
		y += a.Y
		z += a.Z
	}
	n := float64(len(m.Atoms))
	return x / n, y / n, z / n
}

// Distance returns the distance between atoms i and j in Ångström.
func (m *Molecule) Distance(i, j int) float64 {
	a, b := m.Atoms[i], m.Atoms[j]
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Merge appends a copy of other's atoms to m.
func (m *Molecule) Merge(other *Molecule) {
	m.Atoms = append(m.Atoms, other.Atoms...)
}

// Clone returns a deep copy.
func (m *Molecule) Clone() *Molecule {
	c := *m
	c.Atoms = append([]Atom(nil), m.Atoms...)
	return &c
}

// Validate checks that every atom uses a known element symbol.
func (m *Molecule) Validate() error {
	for i, a := range m.Atoms {
		if _, ok := LookupElement(a.Symbol); !ok {
			return fmt.Errorf("chem: atom %d has unknown element %q", i, a.Symbol)
		}
	}
	return nil
}

// MakeWater returns a water molecule in its experimental geometry
// (O-H 0.9572 Å, H-O-H 104.52°), centered on the oxygen.
func MakeWater() *Molecule {
	const (
		rOH   = 0.9572
		angle = 104.52 * math.Pi / 180
	)
	half := angle / 2
	return &Molecule{
		Name:         "water",
		Multiplicity: 1,
		Symmetry:     "C2v",
		Atoms: []Atom{
			{Symbol: "O"},
			{Symbol: "H", X: rOH * math.Sin(half), Z: rOH * math.Cos(half)},
			{Symbol: "H", X: -rOH * math.Sin(half), Z: rOH * math.Cos(half)},
		},
	}
}

// MakeUO2nH2O builds the paper's benchmark system: a linear uranyl
// (UO2, +2 charge) surrounded by n water molecules placed on spherical
// shells. MakeUO2nH2O(15) yields the UO2·15H2O system of Table 3
// (48 atoms; the paper's prose says "a total of 50 atoms", but
// UO2 + 15 x H2O is 48 — we keep the faithful count).
func MakeUO2nH2O(n int) *Molecule {
	mol := &Molecule{
		Name:         fmt.Sprintf("UO2-%dH2O", n),
		Charge:       2,
		Multiplicity: 1,
		Symmetry:     "C1",
		Atoms: []Atom{
			// Linear uranyl, U=O 1.76 Å.
			{Symbol: "U"},
			{Symbol: "O", Z: 1.76},
			{Symbol: "O", Z: -1.76},
		},
	}
	// Place waters on shells of increasing radius using a golden-angle
	// spiral so geometries are deterministic and non-overlapping: the
	// 3 Å shell gap keeps every water beyond bonding distance of its
	// neighbours, so bond perception sees 1 uranyl + n water fragments.
	const golden = 2.39996322972865332 // radians
	for i := 0; i < n; i++ {
		shell := 4.0 + 3.0*float64(i/8) // 8 waters per shell
		theta := golden * float64(i)
		phi := math.Acos(1 - 2*(float64(i%8)+0.5)/8)
		x := shell * math.Sin(phi) * math.Cos(theta)
		y := shell * math.Sin(phi) * math.Sin(theta)
		z := shell * math.Cos(phi)
		w := MakeWater()
		w.Translate(x, y, z)
		mol.Merge(w)
	}
	return mol
}
