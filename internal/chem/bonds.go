package chem

// Covalent radii in Ångström (Cordero et al. 2008 values for the
// common elements, single-bond radii), used for distance-based bond
// perception — what Ecce's Builder does to draw a molecule.
var covalentRadii = map[string]float64{
	"H": 0.31, "He": 0.28,
	"Li": 1.28, "Be": 0.96, "B": 0.84, "C": 0.76, "N": 0.71, "O": 0.66,
	"F": 0.57, "Ne": 0.58,
	"Na": 1.66, "Mg": 1.41, "Al": 1.21, "Si": 1.11, "P": 1.07, "S": 1.05,
	"Cl": 1.02, "Ar": 1.06,
	"K": 2.03, "Ca": 1.76, "Ti": 1.60, "Cr": 1.39, "Mn": 1.39, "Fe": 1.32,
	"Co": 1.26, "Ni": 1.24, "Cu": 1.32, "Zn": 1.22, "Br": 1.20,
	"Mo": 1.54, "Ru": 1.46, "Pd": 1.39, "Ag": 1.45, "I": 1.39, "Xe": 1.40,
	"Pt": 1.36, "Au": 1.36, "Hg": 1.32, "Pb": 1.46,
	"Th": 2.06, "U": 1.96, "Pu": 1.87,
}

// CovalentRadius returns the covalent radius for a symbol; unknown
// elements default to 1.5 Å.
func CovalentRadius(symbol string) float64 {
	if r, ok := covalentRadii[NormalizeSymbol(symbol)]; ok {
		return r
	}
	return 1.5
}

// Bond is an edge between two atom indices.
type Bond struct {
	A, B int
}

// PerceiveBonds infers bonds by the standard distance criterion: two
// atoms are bonded when their separation is below tolerance times the
// sum of their covalent radii. A tolerance of 1.2 is conventional.
func (m *Molecule) PerceiveBonds(tolerance float64) []Bond {
	if tolerance <= 0 {
		tolerance = 1.2
	}
	var bonds []Bond
	for i := 0; i < len(m.Atoms); i++ {
		ri := CovalentRadius(m.Atoms[i].Symbol)
		for j := i + 1; j < len(m.Atoms); j++ {
			cutoff := tolerance * (ri + CovalentRadius(m.Atoms[j].Symbol))
			if m.Distance(i, j) <= cutoff {
				bonds = append(bonds, Bond{A: i, B: j})
			}
		}
	}
	return bonds
}

// ConnectedFragments partitions atoms into bonded fragments and
// returns the atom indices of each fragment.
func (m *Molecule) ConnectedFragments(tolerance float64) [][]int {
	n := len(m.Atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, b := range m.PerceiveBonds(tolerance) {
		union(b.A, b.B)
	}
	groups := map[int][]int{}
	var order []int
	for i := 0; i < n; i++ {
		root := find(i)
		if _, seen := groups[root]; !seen {
			order = append(order, root)
		}
		groups[root] = append(groups[root], i)
	}
	out := make([][]int, 0, len(order))
	for _, root := range order {
		out = append(out, groups[root])
	}
	return out
}
