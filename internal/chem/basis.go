package chem

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Primitive is one Gaussian primitive in a contracted shell.
type Primitive struct {
	Exponent    float64
	Coefficient float64
}

// Shell is a contracted Gaussian shell of a given angular momentum.
type Shell struct {
	Type       string // "S", "P", "SP", "D", "F"
	Primitives []Primitive
}

// ElementBasis is the basis for one element.
type ElementBasis struct {
	Symbol string
	Shells []Shell
}

// BasisSet is a named Gaussian basis — the content of the paper's
// Molecular Basisset document ("where standards do not currently
// exist, plain text ... is applied to the data, as is done for the
// Molecular Basisset document").
type BasisSet struct {
	Name     string
	Elements []ElementBasis
}

// ForElement returns the element block for a symbol, if present.
func (b *BasisSet) ForElement(symbol string) (ElementBasis, bool) {
	symbol = NormalizeSymbol(symbol)
	for _, e := range b.Elements {
		if e.Symbol == symbol {
			return e, true
		}
	}
	return ElementBasis{}, false
}

// Covers reports whether the basis defines every element in mol.
func (b *BasisSet) Covers(mol *Molecule) bool {
	for sym := range mol.ElementCounts() {
		if _, ok := b.ForElement(sym); !ok {
			return false
		}
	}
	return true
}

// FunctionCount returns the number of contracted shells the basis
// assigns to mol (a rough size measure used by the tools).
func (b *BasisSet) FunctionCount(mol *Molecule) int {
	total := 0
	for sym, n := range mol.ElementCounts() {
		if eb, ok := b.ForElement(sym); ok {
			total += n * len(eb.Shells)
		}
	}
	return total
}

// Encode renders the basis in an NWChem-like plain-text block format:
//
//	basis "STO-3G"
//	H S
//	  3.42525091  0.15432897
//	  ...
//	end
func (b *BasisSet) Encode() []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "basis %q\n", b.Name)
	for _, e := range b.Elements {
		for _, sh := range e.Shells {
			fmt.Fprintf(&sb, "%s %s\n", e.Symbol, sh.Type)
			for _, p := range sh.Primitives {
				fmt.Fprintf(&sb, "  %16.8f %16.8f\n", p.Exponent, p.Coefficient)
			}
		}
	}
	sb.WriteString("end\n")
	return []byte(sb.String())
}

// ParseBasis reads the format written by Encode.
func ParseBasis(r io.Reader) (*BasisSet, error) {
	sc := bufio.NewScanner(r)
	bs := &BasisSet{}
	var curElem *ElementBasis
	var curShell *Shell
	flushShell := func() {
		if curElem != nil && curShell != nil {
			curElem.Shells = append(curElem.Shells, *curShell)
			curShell = nil
		}
	}
	flushElem := func() {
		flushShell()
		if curElem != nil {
			bs.Elements = append(bs.Elements, *curElem)
			curElem = nil
		}
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "basis"):
			name := strings.TrimSpace(strings.TrimPrefix(line, "basis"))
			bs.Name = strings.Trim(name, `"`)
		case line == "end":
			flushElem()
			return bs, nil
		default:
			fields := strings.Fields(line)
			if len(fields) == 2 {
				if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
					// "Symbol ShellType" header line.
					sym := NormalizeSymbol(fields[0])
					if curElem == nil || curElem.Symbol != sym {
						flushElem()
						curElem = &ElementBasis{Symbol: sym}
					} else {
						flushShell()
					}
					curShell = &Shell{Type: strings.ToUpper(fields[1])}
					continue
				}
				// Primitive line.
				if curShell == nil {
					return nil, fmt.Errorf("chem: basis line %d: primitive outside a shell", lineNo)
				}
				exp, err1 := strconv.ParseFloat(fields[0], 64)
				coef, err2 := strconv.ParseFloat(fields[1], 64)
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("chem: basis line %d: bad primitive %q", lineNo, line)
				}
				curShell.Primitives = append(curShell.Primitives, Primitive{Exponent: exp, Coefficient: coef})
				continue
			}
			return nil, fmt.Errorf("chem: basis line %d: unparseable %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("chem: basis input missing end marker")
}

// ParseBasisBytes parses an encoded basis held in memory.
func ParseBasisBytes(b []byte) (*BasisSet, error) {
	return ParseBasis(strings.NewReader(string(b)))
}

// STO3G returns the minimal STO-3G basis for the light elements the
// examples use, with published exponents/coefficients for H and O, and
// a documented synthetic effective-core block for U (real uranium
// basis sets are proprietary-sized; the stand-in preserves the data
// shapes the storage layer must handle).
func STO3G() *BasisSet {
	return &BasisSet{
		Name: "STO-3G",
		Elements: []ElementBasis{
			{Symbol: "H", Shells: []Shell{
				{Type: "S", Primitives: []Primitive{
					{3.42525091, 0.15432897},
					{0.62391373, 0.53532814},
					{0.16885540, 0.44463454},
				}},
			}},
			{Symbol: "O", Shells: []Shell{
				{Type: "S", Primitives: []Primitive{
					{130.70932000, 0.15432897},
					{23.80886100, 0.53532814},
					{6.44360830, 0.44463454},
				}},
				{Type: "SP", Primitives: []Primitive{
					{5.03315130, -0.09996723},
					{1.16959610, 0.39951283},
					{0.38038900, 0.70011547},
				}},
			}},
			{Symbol: "U", Shells: []Shell{
				// Synthetic ECP-like valence block (see DESIGN.md
				// substitutions): preserves record shape, not physics.
				{Type: "S", Primitives: []Primitive{
					{12.5, 0.21}, {3.9, 0.54}, {1.1, 0.37},
				}},
				{Type: "P", Primitives: []Primitive{
					{8.2, 0.18}, {2.4, 0.51}, {0.7, 0.41},
				}},
				{Type: "D", Primitives: []Primitive{
					{4.6, 0.25}, {1.3, 0.58},
				}},
				{Type: "F", Primitives: []Primitive{
					{2.9, 0.33}, {0.8, 0.61},
				}},
			}},
		},
	}
}
