// Package chem provides the computational-chemistry data types the
// Ecce model is built from: molecules with 3D geometries, the XYZ and
// PDB interchange formats the paper maps molecule documents onto,
// empirical formulas (Hill convention), and Gaussian basis sets. The
// UO2·nH2O generator reproduces the paper's benchmark chemical system
// (a uranium oxide molecule surrounded by 15 water molecules, 50 atoms
// in total).
package chem

import (
	"fmt"
	"sort"
	"strings"
)

// Element describes one chemical element.
type Element struct {
	Symbol string
	Number int     // atomic number
	Mass   float64 // standard atomic weight, u
}

// elements covers the species Ecce workloads touch plus the common
// main-group set.
var elements = map[string]Element{
	"H":  {"H", 1, 1.008},
	"He": {"He", 2, 4.0026},
	"Li": {"Li", 3, 6.94},
	"Be": {"Be", 4, 9.0122},
	"B":  {"B", 5, 10.81},
	"C":  {"C", 6, 12.011},
	"N":  {"N", 7, 14.007},
	"O":  {"O", 8, 15.999},
	"F":  {"F", 9, 18.998},
	"Ne": {"Ne", 10, 20.180},
	"Na": {"Na", 11, 22.990},
	"Mg": {"Mg", 12, 24.305},
	"Al": {"Al", 13, 26.982},
	"Si": {"Si", 14, 28.085},
	"P":  {"P", 15, 30.974},
	"S":  {"S", 16, 32.06},
	"Cl": {"Cl", 17, 35.45},
	"Ar": {"Ar", 18, 39.948},
	"K":  {"K", 19, 39.098},
	"Ca": {"Ca", 20, 40.078},
	"Ti": {"Ti", 22, 47.867},
	"Cr": {"Cr", 24, 51.996},
	"Mn": {"Mn", 25, 54.938},
	"Fe": {"Fe", 26, 55.845},
	"Co": {"Co", 27, 58.933},
	"Ni": {"Ni", 28, 58.693},
	"Cu": {"Cu", 29, 63.546},
	"Zn": {"Zn", 30, 65.38},
	"Br": {"Br", 35, 79.904},
	"Mo": {"Mo", 42, 95.95},
	"Ru": {"Ru", 44, 101.07},
	"Pd": {"Pd", 46, 106.42},
	"Ag": {"Ag", 47, 107.87},
	"I":  {"I", 53, 126.90},
	"Xe": {"Xe", 54, 131.29},
	"Pt": {"Pt", 78, 195.08},
	"Au": {"Au", 79, 196.97},
	"Hg": {"Hg", 80, 200.59},
	"Pb": {"Pb", 82, 207.2},
	"Th": {"Th", 90, 232.04},
	"U":  {"U", 92, 238.03},
	"Pu": {"Pu", 94, 244.0},
}

// LookupElement returns the element for a symbol (case-normalized).
func LookupElement(symbol string) (Element, bool) {
	e, ok := elements[NormalizeSymbol(symbol)]
	return e, ok
}

// NormalizeSymbol canonicalizes an element symbol's case ("FE" → "Fe").
func NormalizeSymbol(symbol string) string {
	s := strings.TrimSpace(symbol)
	if s == "" {
		return s
	}
	s = strings.ToUpper(s[:1]) + strings.ToLower(s[1:])
	return s
}

// KnownSymbols returns the supported element symbols, sorted.
func KnownSymbols() []string {
	out := make([]string, 0, len(elements))
	for s := range elements {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// HillOrder sorts element symbols by the Hill convention: carbon
// first, hydrogen second, then everything alphabetically; without
// carbon, strictly alphabetical.
func HillOrder(symbols []string) []string {
	out := append([]string(nil), symbols...)
	hasC := false
	for _, s := range out {
		if s == "C" {
			hasC = true
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		rank := func(s string) int {
			if hasC {
				switch s {
				case "C":
					return 0
				case "H":
					return 1
				}
				return 2
			}
			return 2
		}
		ri, rj := rank(out[i]), rank(out[j])
		if ri != rj {
			return ri < rj
		}
		return out[i] < out[j]
	})
	return out
}

// FormatFormula renders counts as an empirical formula in Hill order
// ("CH4", "H30O17U").
func FormatFormula(counts map[string]int) string {
	symbols := make([]string, 0, len(counts))
	for s, n := range counts {
		if n > 0 {
			symbols = append(symbols, s)
		}
	}
	var sb strings.Builder
	for _, s := range HillOrder(symbols) {
		sb.WriteString(s)
		if counts[s] > 1 {
			fmt.Fprintf(&sb, "%d", counts[s])
		}
	}
	return sb.String()
}
