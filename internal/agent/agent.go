// Package agent implements the feature-analysis agent scenario from
// the paper's Discussion section: an application that "can
// independently discover objects in the data store (3D structures, for
// example), apply feature analysis algorithms, and attach their
// discoveries to the objects as new metadata" — all without Ecce's
// schema changing or Ecce even knowing the agent exists.
//
// The ThermoAgent discovers molecule documents by their ecce:formula
// metadata, estimates thermodynamic quantities from the stored
// geometry, and appends the estimates as metadata under its own
// namespace.
package agent

import (
	"encoding/xml"
	"fmt"
	"math"
	"path"
	"strconv"

	"repro/internal/chem"
	"repro/internal/core"
)

// NS is the agent's own metadata namespace — deliberately not the ecce
// namespace, demonstrating that no naming agreement is needed.
const NS = "urn:thermo-agent"

// Metadata the agent attaches.
var (
	PropEnthalpy = xml.Name{Space: NS, Local: "enthalpy-kj-mol"}
	PropEntropy  = xml.Name{Space: NS, Local: "entropy-j-mol-k"}
	PropCp       = xml.Name{Space: NS, Local: "heat-capacity-j-mol-k"}
	PropVersion  = xml.Name{Space: NS, Local: "agent-version"}
)

// Version is written with every annotation so re-sweeps can skip
// already-processed molecules.
const Version = "thermo-agent/1.0"

// OpenStorage is what the agent needs: discovery, annotation, and
// ordinary reads. Only the DAV architecture satisfies it.
type OpenStorage interface {
	core.DataStorage
	core.Annotator
	core.Finder
}

// ThermoAgent estimates thermodynamic properties of stored molecules.
type ThermoAgent struct {
	S OpenStorage
	// Force re-annotates molecules that already carry this agent
	// version's metadata.
	Force bool
}

// Result describes one sweep.
type Result struct {
	Discovered int // molecule documents found
	Annotated  int // newly annotated this sweep
	Skipped    int // already annotated
}

// Sweep discovers every molecule under root and annotates it.
func (a *ThermoAgent) Sweep(root string) (Result, error) {
	var res Result
	hits, err := a.S.FindByMetadata(root, core.PropFormula, nil)
	if err != nil {
		return res, err
	}
	res.Discovered = len(hits)
	for _, molPath := range hits {
		if !a.Force {
			if v, ok, err := a.S.ReadAnnotation(molPath, PropVersion); err != nil {
				return res, err
			} else if ok && v == Version {
				res.Skipped++
				continue
			}
		}
		// The molecule document lives inside its calculation; the
		// typed loader takes the calculation path.
		mol, err := a.S.LoadMolecule(path.Dir(molPath))
		if err != nil {
			return res, fmt.Errorf("agent: %s: %w", molPath, err)
		}
		h, s, cp := Estimate(mol)
		for _, ann := range []struct {
			name  xml.Name
			value string
		}{
			{PropEnthalpy, strconv.FormatFloat(h, 'f', 2, 64)},
			{PropEntropy, strconv.FormatFloat(s, 'f', 2, 64)},
			{PropCp, strconv.FormatFloat(cp, 'f', 2, 64)},
			{PropVersion, Version},
		} {
			if err := a.S.Annotate(molPath, ann.name, ann.value); err != nil {
				return res, fmt.Errorf("agent: annotate %s: %w", molPath, err)
			}
		}
		res.Annotated++
	}
	return res, nil
}

// Estimate produces synthetic but deterministic thermodynamic
// estimates (kJ/mol, J/mol·K, J/mol·K) from a geometry: a bond-energy
// sum for the enthalpy and degree-of-freedom counting for entropy and
// heat capacity. Like the synthetic runner, this preserves the data
// flow of the paper's scenario without real quantum chemistry.
func Estimate(mol *chem.Molecule) (enthalpy, entropy, cp float64) {
	bonds := mol.PerceiveBonds(1.2)
	// Bond-energy-like sum weighted by the bonded elements.
	for _, b := range bonds {
		za, zb := atomicNumber(mol.Atoms[b.A].Symbol), atomicNumber(mol.Atoms[b.B].Symbol)
		d := mol.Distance(b.A, b.B)
		enthalpy -= 40 * math.Sqrt(float64(za*zb)) / math.Max(d, 0.3)
	}
	n := float64(mol.AtomCount())
	// Translational + rotational + per-mode vibrational contributions.
	entropy = 108 + 30*math.Log(1+mol.Mass()/18) + 3*n
	cp = 20 + 8*n
	return enthalpy, entropy, cp
}

func atomicNumber(sym string) int {
	if e, ok := chem.LookupElement(sym); ok {
		return e.Number
	}
	return 0
}
