package agent

import (
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/davclient"
	"repro/internal/davserver"
	"repro/internal/model"
	"repro/internal/store"
)

func newStorage(t *testing.T) *core.DAVStorage {
	t.Helper()
	srv := httptest.NewServer(davserver.NewHandler(store.NewMemStore(), nil))
	t.Cleanup(srv.Close)
	c, err := davclient.New(davclient.Config{BaseURL: srv.URL, Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewDAVStorage(c)
	t.Cleanup(func() { s.Close() })
	return s
}

func seedMolecules(t *testing.T, s *core.DAVStorage, n int) {
	t.Helper()
	if err := s.CreateProject("/p", model.Project{Name: "p"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		calcPath := "/p/calc" + strconv.Itoa(i)
		if err := s.CreateCalculation(calcPath, model.Calculation{Name: calcPath}); err != nil {
			t.Fatal(err)
		}
		if err := s.SaveMolecule(calcPath, chem.MakeUO2nH2O(i+1), chem.FormatXYZ); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSweepAnnotatesAllMolecules(t *testing.T) {
	s := newStorage(t)
	seedMolecules(t, s, 4)
	a := &ThermoAgent{S: s}
	res, err := a.Sweep("/p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Discovered != 4 || res.Annotated != 4 || res.Skipped != 0 {
		t.Fatalf("sweep = %+v", res)
	}
	// Annotations are readable and plausible.
	v, ok, err := s.ReadAnnotation("/p/calc0/molecule", PropEnthalpy)
	if err != nil || !ok {
		t.Fatalf("enthalpy = (%q, %v, %v)", v, ok, err)
	}
	h, err := strconv.ParseFloat(v, 64)
	if err != nil || h >= 0 {
		t.Fatalf("enthalpy %q should be a negative number", v)
	}
	ver, ok, _ := s.ReadAnnotation("/p/calc0/molecule", PropVersion)
	if !ok || ver != Version {
		t.Fatalf("version = (%q, %v)", ver, ok)
	}
	// Ecce's own view of the molecule is unchanged.
	mol, err := s.LoadMolecule("/p/calc0")
	if err != nil || mol.Formula() != chem.MakeUO2nH2O(1).Formula() {
		t.Fatalf("molecule after sweep = (%v, %v)", mol, err)
	}
}

func TestSweepIsIdempotent(t *testing.T) {
	s := newStorage(t)
	seedMolecules(t, s, 3)
	a := &ThermoAgent{S: s}
	if _, err := a.Sweep("/p"); err != nil {
		t.Fatal(err)
	}
	res, err := a.Sweep("/p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Annotated != 0 || res.Skipped != 3 {
		t.Fatalf("second sweep = %+v", res)
	}
	// Force re-annotates.
	a.Force = true
	res, err = a.Sweep("/p")
	if err != nil || res.Annotated != 3 {
		t.Fatalf("forced sweep = (%+v, %v)", res, err)
	}
}

func TestSweepPicksUpNewMolecules(t *testing.T) {
	s := newStorage(t)
	seedMolecules(t, s, 1)
	a := &ThermoAgent{S: s}
	a.Sweep("/p")
	// A new calculation appears (e.g. another scientist's work).
	s.CreateCalculation("/p/late", model.Calculation{Name: "late"})
	s.SaveMolecule("/p/late", chem.MakeWater(), chem.FormatXYZ)
	res, err := a.Sweep("/p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Annotated != 1 || res.Skipped != 1 {
		t.Fatalf("incremental sweep = %+v", res)
	}
}

func TestEstimatesScaleWithSize(t *testing.T) {
	hSmall, sSmall, cpSmall := Estimate(chem.MakeWater())
	hBig, sBig, cpBig := Estimate(chem.MakeUO2nH2O(15))
	if hBig >= hSmall {
		t.Fatalf("larger system should have lower (more negative) enthalpy: %f vs %f", hBig, hSmall)
	}
	if sBig <= sSmall || cpBig <= cpSmall {
		t.Fatalf("entropy/cp should grow with size: s %f vs %f, cp %f vs %f",
			sBig, sSmall, cpBig, cpSmall)
	}
	// Deterministic.
	h2, s2, cp2 := Estimate(chem.MakeWater())
	if h2 != hSmall || s2 != sSmall || cp2 != cpSmall {
		t.Fatal("estimates nondeterministic")
	}
}
