// Package migrate converts an existing Ecce repository between
// storage architectures — the OODB → DAV conversion of Section 3.2.4.
// The migration runs in the paper's two stages: first the object data
// (projects, calculations, molecules, basis sets, tasks, jobs,
// properties), then the raw calculation files that Ecce 1.5 kept
// outside the OODB. A verification pass and disk-usage accounting
// support the disk-overhead experiment.
//
// Migrate is written against core.DataStorage, so it can convert in
// either direction (and between two DAV servers), but the paper's
// scenario is OODB source → DAV destination.
package migrate

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/model"
)

// Report tallies one migration.
type Report struct {
	Projects     int
	Calculations int
	Molecules    int
	BasisSets    int
	Tasks        int
	Jobs         int
	Properties   int
	RawFiles     int
	RawBytes     int64
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%d projects, %d calculations (%d molecules, %d bases, %d tasks, %d jobs, %d properties), %d raw files (%d bytes)",
		r.Projects, r.Calculations, r.Molecules, r.BasisSets, r.Tasks, r.Jobs,
		r.Properties, r.RawFiles, r.RawBytes)
}

// calcMembers are the typed member names handled by the object stage;
// anything else inside a calculation is a raw file.
var calcMembers = map[string]bool{
	"molecule": true, "basis": true, "tasks": true, "job": true, "properties": true,
}

// Migrate copies the entire tree under root (use "/") from src to dst.
func Migrate(src, dst core.DataStorage, root string) (Report, error) {
	var r Report
	if err := migrateContainer(src, dst, root, &r); err != nil {
		return r, err
	}
	return r, nil
}

// migrateContainer recurses over projects.
func migrateContainer(src, dst core.DataStorage, p string, r *Report) error {
	entries, err := src.List(p)
	if err != nil {
		return err
	}
	for _, e := range entries {
		switch e.Type {
		case core.TypeProject:
			proj, err := src.LoadProject(e.Path)
			if err != nil {
				return err
			}
			if err := dst.CreateProject(e.Path, proj); err != nil {
				return err
			}
			r.Projects++
			if err := migrateContainer(src, dst, e.Path, r); err != nil {
				return err
			}
		case core.TypeCalculation:
			if err := migrateCalculation(src, dst, e.Path, r); err != nil {
				return err
			}
		case core.TypeDocument:
			data, err := src.LoadRawFile(p, e.Name)
			if err != nil {
				return err
			}
			if err := dst.SaveRawFile(p, e.Name, data, ""); err != nil {
				return err
			}
			r.RawFiles++
			r.RawBytes += int64(len(data))
		default:
			// Unknown container types are ignored; the open schema
			// tolerates objects this tool does not understand.
		}
	}
	return nil
}

// migrateCalculation performs both stages for one calculation.
func migrateCalculation(src, dst core.DataStorage, calcPath string, r *Report) error {
	calc, err := src.LoadCalculation(calcPath)
	if err != nil {
		return err
	}
	if err := dst.CreateCalculation(calcPath, calc); err != nil {
		return err
	}
	r.Calculations++

	// Stage 1: object data.
	if mol, err := src.LoadMolecule(calcPath); err == nil {
		if err := dst.SaveMolecule(calcPath, mol, chem.FormatXYZ); err != nil {
			return err
		}
		r.Molecules++
	} else if !isNotFound(err) {
		return err
	}
	if bs, err := src.LoadBasis(calcPath); err == nil {
		if err := dst.SaveBasis(calcPath, bs); err != nil {
			return err
		}
		r.BasisSets++
	} else if !isNotFound(err) {
		return err
	}
	tasks, err := src.LoadTasks(calcPath)
	if err != nil && !isNotFound(err) {
		return err
	}
	for _, t := range tasks {
		if err := dst.SaveTask(calcPath, t); err != nil {
			return err
		}
		r.Tasks++
	}
	if job, err := src.LoadJob(calcPath); err == nil {
		if err := dst.SaveJob(calcPath, job); err != nil {
			return err
		}
		r.Jobs++
	} else if !isNotFound(err) {
		return err
	}
	props, err := src.LoadProperties(calcPath)
	if err != nil && !isNotFound(err) {
		return err
	}
	for _, p := range props {
		if err := dst.SaveProperty(calcPath, p); err != nil {
			return err
		}
		r.Properties++
	}

	// Stage 2: raw files (the input/output decks Ecce 1.5 referenced
	// from users' local disks).
	entries, err := src.List(calcPath)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if calcMembers[e.Name] || e.Type != core.TypeDocument {
			continue
		}
		data, err := src.LoadRawFile(calcPath, e.Name)
		if err != nil {
			return err
		}
		if err := dst.SaveRawFile(calcPath, e.Name, data, ""); err != nil {
			return err
		}
		r.RawFiles++
		r.RawBytes += int64(len(data))
	}
	return nil
}

func isNotFound(err error) bool {
	return errors.Is(err, core.ErrNotFound)
}

// Verify compares the trees under root in src and dst, returning the
// first discrepancy.
func Verify(src, dst core.DataStorage, root string) error {
	entries, err := src.List(root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		switch e.Type {
		case core.TypeProject:
			sp, err := src.LoadProject(e.Path)
			if err != nil {
				return err
			}
			dp, err := dst.LoadProject(e.Path)
			if err != nil {
				return fmt.Errorf("migrate: project %s missing in destination: %w", e.Path, err)
			}
			if sp.Name != dp.Name || sp.Description != dp.Description {
				return fmt.Errorf("migrate: project %s metadata differs", e.Path)
			}
			if err := Verify(src, dst, e.Path); err != nil {
				return err
			}
		case core.TypeCalculation:
			if err := verifyCalculation(src, dst, e.Path); err != nil {
				return err
			}
		case core.TypeDocument:
			if err := verifyRaw(src, dst, root, e.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

func verifyCalculation(src, dst core.DataStorage, calcPath string) error {
	sb, err := core.LoadBundle(src, calcPath)
	if err != nil {
		return err
	}
	db, err := core.LoadBundle(dst, calcPath)
	if err != nil {
		return fmt.Errorf("migrate: calculation %s missing in destination: %w", calcPath, err)
	}
	if sb.Calc.Name != db.Calc.Name || sb.Calc.Theory != db.Calc.Theory || sb.Calc.State != db.Calc.State {
		return fmt.Errorf("migrate: %s calculation metadata differs", calcPath)
	}
	switch {
	case (sb.Molecule == nil) != (db.Molecule == nil):
		return fmt.Errorf("migrate: %s molecule presence differs", calcPath)
	case sb.Molecule != nil:
		if sb.Molecule.Formula() != db.Molecule.Formula() ||
			sb.Molecule.AtomCount() != db.Molecule.AtomCount() ||
			sb.Molecule.Charge != db.Molecule.Charge {
			return fmt.Errorf("migrate: %s molecule differs", calcPath)
		}
		for i := range sb.Molecule.Atoms {
			if dist(sb.Molecule.Atoms[i], db.Molecule.Atoms[i]) > 1e-6 {
				return fmt.Errorf("migrate: %s atom %d moved", calcPath, i)
			}
		}
	}
	if (sb.Basis == nil) != (db.Basis == nil) ||
		(sb.Basis != nil && sb.Basis.Name != db.Basis.Name) {
		return fmt.Errorf("migrate: %s basis differs", calcPath)
	}
	if len(sb.Tasks) != len(db.Tasks) {
		return fmt.Errorf("migrate: %s task count differs (%d vs %d)", calcPath, len(sb.Tasks), len(db.Tasks))
	}
	for i := range sb.Tasks {
		if sb.Tasks[i].InputDeck != db.Tasks[i].InputDeck || sb.Tasks[i].Kind != db.Tasks[i].Kind {
			return fmt.Errorf("migrate: %s task %d differs", calcPath, i)
		}
	}
	if (sb.Job == nil) != (db.Job == nil) ||
		(sb.Job != nil && (sb.Job.Host != db.Job.Host || sb.Job.Status != db.Job.Status)) {
		return fmt.Errorf("migrate: %s job differs", calcPath)
	}
	if len(sb.Properties) != len(db.Properties) {
		return fmt.Errorf("migrate: %s property count differs", calcPath)
	}
	for i := range sb.Properties {
		if err := compareProps(&sb.Properties[i], &db.Properties[i]); err != nil {
			return fmt.Errorf("migrate: %s: %w", calcPath, err)
		}
	}
	// Raw files.
	entries, err := src.List(calcPath)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if calcMembers[e.Name] || e.Type != core.TypeDocument {
			continue
		}
		if err := verifyRaw(src, dst, calcPath, e.Name); err != nil {
			return err
		}
	}
	return nil
}

func verifyRaw(src, dst core.DataStorage, parent, name string) error {
	sd, err := src.LoadRawFile(parent, name)
	if err != nil {
		return err
	}
	dd, err := dst.LoadRawFile(parent, name)
	if err != nil {
		return fmt.Errorf("migrate: raw file %s/%s missing in destination: %w", parent, name, err)
	}
	if !bytes.Equal(sd, dd) {
		return fmt.Errorf("migrate: raw file %s/%s contents differ", parent, name)
	}
	return nil
}

func compareProps(a, b *model.Property) error {
	if a.Name != b.Name || a.Units != b.Units || len(a.Values) != len(b.Values) {
		return fmt.Errorf("property %q header differs", a.Name)
	}
	for i := range a.Values {
		x, y := a.Values[i], b.Values[i]
		if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
			return fmt.Errorf("property %q value %d differs", a.Name, i)
		}
	}
	return nil
}

func dist(a, b chem.Atom) float64 {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}
