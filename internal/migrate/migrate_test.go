package migrate

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/davclient"
	"repro/internal/davserver"
	"repro/internal/dbm"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/store"
)

func newOODB(t *testing.T) core.DataStorage {
	t.Helper()
	db, err := oodb.OpenDB(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := oodb.NewServer(db, core.SchemaFingerprint())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	c, err := oodb.Dial(addr, core.SchemaFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewOODBStorage(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func newDAV(t *testing.T, flavour dbm.Flavour) (core.DataStorage, string) {
	t.Helper()
	dir := t.TempDir()
	fs, err := store.NewFSStore(dir, flavour)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(davserver.NewHandler(fs, nil))
	t.Cleanup(func() { srv.Close(); fs.Close() })
	c, err := davclient.New(davclient.Config{BaseURL: srv.URL, Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewDAVStorage(c)
	t.Cleanup(func() { s.Close() })
	return s, dir
}

// populate fills a storage with nCalcs calculations across two
// projects, including raw files.
func populate(t *testing.T, s core.DataStorage, nCalcs int) {
	t.Helper()
	runner := model.SyntheticRunner{GridPoints: 6}
	for pi := 0; pi < 2; pi++ {
		projPath := fmt.Sprintf("/proj%d", pi)
		if err := s.CreateProject(projPath, model.Project{
			Name: fmt.Sprintf("project %d", pi), Description: "migration source"}); err != nil {
			t.Fatal(err)
		}
		for ci := 0; ci < nCalcs/2; ci++ {
			calcPath := fmt.Sprintf("%s/calc%d", projPath, ci)
			if err := s.CreateCalculation(calcPath, model.Calculation{
				Name: fmt.Sprintf("calc %d.%d", pi, ci), Theory: "SCF",
				State: model.StateComplete}); err != nil {
				t.Fatal(err)
			}
			mol := chem.MakeUO2nH2O(1 + ci%4)
			if err := s.SaveMolecule(calcPath, mol, chem.FormatXYZ); err != nil {
				t.Fatal(err)
			}
			if err := s.SaveBasis(calcPath, chem.STO3G()); err != nil {
				t.Fatal(err)
			}
			deck, _ := model.GenerateInputDeck(&model.Calculation{Theory: "SCF"}, mol,
				chem.STO3G(), &model.Task{Kind: model.TaskEnergy})
			if err := s.SaveTask(calcPath, model.Task{Name: "energy", Kind: model.TaskEnergy,
				Sequence: 1, InputDeck: deck}); err != nil {
				t.Fatal(err)
			}
			if err := s.SaveJob(calcPath, model.Job{Host: "mpp2", Status: model.JobDone}); err != nil {
				t.Fatal(err)
			}
			for _, p := range runner.Run(mol, model.TaskEnergy) {
				if err := s.SaveProperty(calcPath, p); err != nil {
					t.Fatal(err)
				}
			}
			// Raw output file (stage 2 material).
			if err := s.SaveRawFile(calcPath, "run.out",
				[]byte(strings.Repeat("output line\n", 50)), "text/plain"); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestMigrateOODBToDAV(t *testing.T) {
	src := newOODB(t)
	dst, _ := newDAV(t, dbm.GDBM)
	populate(t, src, 6)

	rep, err := Migrate(src, dst, "/")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Projects != 2 || rep.Calculations != 6 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Molecules != 6 || rep.BasisSets != 6 || rep.Tasks != 6 || rep.Jobs != 6 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Properties != 6*3 { // energy, dipole, density per calc
		t.Fatalf("properties = %d", rep.Properties)
	}
	if rep.RawFiles != 6 || rep.RawBytes == 0 {
		t.Fatalf("raw = %d files %d bytes", rep.RawFiles, rep.RawBytes)
	}
	if err := Verify(src, dst, "/"); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestMigrateReverseDirection(t *testing.T) {
	// The migration is architecture-neutral: DAV → OODB also works.
	src, _ := newDAV(t, dbm.GDBM)
	dst := newOODB(t)
	populate(t, src, 2)
	if _, err := Migrate(src, dst, "/"); err != nil {
		t.Fatal(err)
	}
	if err := Verify(src, dst, "/"); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsDrift(t *testing.T) {
	src := newOODB(t)
	dst, _ := newDAV(t, dbm.GDBM)
	populate(t, src, 2)
	if _, err := Migrate(src, dst, "/"); err != nil {
		t.Fatal(err)
	}
	// Corrupt one destination molecule.
	other := chem.MakeWater()
	if err := dst.SaveMolecule("/proj0/calc0", other, chem.FormatXYZ); err != nil {
		t.Fatal(err)
	}
	if err := Verify(src, dst, "/"); err == nil {
		t.Fatal("verify missed a molecule substitution")
	}
}

func TestDiskOverheadDirection(t *testing.T) {
	// The §3.2.4 disk experiment shape: DAV+SDBM overhead < DAV+GDBM
	// overhead (per-resource database minimum sizes 8 KB vs 25 KB).
	src := newOODB(t)
	populate(t, src, 4)

	sdbmDst, sdbmDir := newDAV(t, dbm.SDBM)
	gdbmDst, gdbmDir := newDAV(t, dbm.GDBM)
	if _, err := Migrate(src, sdbmDst, "/"); err != nil {
		t.Fatal(err)
	}
	if _, err := Migrate(src, gdbmDst, "/"); err != nil {
		t.Fatal(err)
	}
	sdbmBytes, err := store.DiskUsage(sdbmDir)
	if err != nil {
		t.Fatal(err)
	}
	gdbmBytes, err := store.DiskUsage(gdbmDir)
	if err != nil {
		t.Fatal(err)
	}
	if sdbmBytes >= gdbmBytes {
		t.Fatalf("SDBM store (%d) should be smaller than GDBM store (%d)", sdbmBytes, gdbmBytes)
	}
}

func TestMigrateEmptyTree(t *testing.T) {
	src := newOODB(t)
	dst, _ := newDAV(t, dbm.GDBM)
	rep, err := Migrate(src, dst, "/")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Projects != 0 || rep.Calculations != 0 {
		t.Fatalf("empty migration report = %+v", rep)
	}
	if err := Verify(src, dst, "/"); err != nil {
		t.Fatal(err)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Projects: 1, Calculations: 2, RawFiles: 3, RawBytes: 400}
	s := r.String()
	for _, want := range []string{"1 projects", "2 calculations", "3 raw files", "400 bytes"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report string %q missing %q", s, want)
		}
	}
}

func TestVerifyDetectsEachKindOfDrift(t *testing.T) {
	mk := func() (core.DataStorage, core.DataStorage) {
		src := newOODB(t)
		dst, _ := newDAV(t, dbm.GDBM)
		populate(t, src, 2)
		if _, err := Migrate(src, dst, "/"); err != nil {
			t.Fatal(err)
		}
		return src, dst
	}

	t.Run("calc-metadata", func(t *testing.T) {
		src, dst := mk()
		calc, _ := dst.LoadCalculation("/proj0/calc0")
		calc.Theory = "MP2"
		dst.SaveCalculation("/proj0/calc0", calc)
		if err := Verify(src, dst, "/"); err == nil {
			t.Fatal("theory drift missed")
		}
	})
	t.Run("missing-calc", func(t *testing.T) {
		src, dst := mk()
		dst.Delete("/proj0/calc0")
		if err := Verify(src, dst, "/"); err == nil {
			t.Fatal("missing calculation missed")
		}
	})
	t.Run("task-drift", func(t *testing.T) {
		src, dst := mk()
		dst.SaveTask("/proj0/calc0", model.Task{Name: "energy", Kind: model.TaskEnergy,
			Sequence: 1, InputDeck: "tampered"})
		if err := Verify(src, dst, "/"); err == nil {
			t.Fatal("task drift missed")
		}
	})
	t.Run("property-drift", func(t *testing.T) {
		src, dst := mk()
		props, _ := dst.LoadProperties("/proj0/calc0")
		p := props[0]
		p.Values[0] += 1
		dst.SaveProperty("/proj0/calc0", p)
		if err := Verify(src, dst, "/"); err == nil {
			t.Fatal("property drift missed")
		}
	})
	t.Run("raw-drift", func(t *testing.T) {
		src, dst := mk()
		dst.SaveRawFile("/proj0/calc0", "run.out", []byte("tampered"), "")
		if err := Verify(src, dst, "/"); err == nil {
			t.Fatal("raw drift missed")
		}
	})
	t.Run("job-drift", func(t *testing.T) {
		src, dst := mk()
		dst.SaveJob("/proj0/calc0", model.Job{Host: "other", Status: model.JobFailed})
		if err := Verify(src, dst, "/"); err == nil {
			t.Fatal("job drift missed")
		}
	})
	t.Run("project-metadata", func(t *testing.T) {
		src, dst := mk()
		// Rewrite the project description on the destination only.
		davDst := dst.(*core.DAVStorage)
		if err := davDst.Annotate("/proj0", core.PropDescription, "edited"); err != nil {
			t.Fatal(err)
		}
		if err := Verify(src, dst, "/"); err == nil {
			t.Fatal("project drift missed")
		}
	})
}

func TestMigrateIntoNonEmptyDestinationFails(t *testing.T) {
	src := newOODB(t)
	dst, _ := newDAV(t, dbm.GDBM)
	populate(t, src, 2)
	if _, err := Migrate(src, dst, "/"); err != nil {
		t.Fatal(err)
	}
	// A second migration collides with the existing projects.
	if _, err := Migrate(src, dst, "/"); err == nil {
		t.Fatal("re-migration into a populated destination should fail")
	}
}
