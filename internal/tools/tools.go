// Package tools implements headless analogues of the six Ecce tools
// that Table 3 measures — Builder, Basis Tool, Calculation Editor,
// Calculation Viewer, Calculation Manager and Job Launcher. Each tool
// has the two phases the paper times: Startup (loading the tool's own
// resources) and Load (pulling one calculation's data from storage).
//
// Crucially, every tool depends only on core.DataStorage: the same
// tool code runs against the OODB baseline (Ecce 1.5) and the DAV
// architecture (Ecce 2.0), which is how the Table 3 comparison is able
// to isolate the storage layer.
package tools

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/model"
)

// Tool is one Ecce application.
type Tool interface {
	// Name is the Table 3 row label.
	Name() string
	// Startup performs the tool's own initialization (the "Cold/Warm
	// Start" column).
	Startup() error
	// Load pulls one calculation's data (the "UO2-15H2O" column). The
	// returned summary is what the tool would render.
	Load(calcPath string) (string, error)
}

// All returns the six tools of Table 3, in the paper's column order.
func All(s core.DataStorage) []Tool {
	return []Tool{
		NewBuilder(s),
		NewBasisTool(s),
		NewCalcEditor(s),
		NewCalcViewer(s),
		NewCalcManager(s),
		NewJobLauncher(s),
	}
}

// Builder is the molecule construction tool: on load it fetches the
// study subject and rebuilds the rendering model (bonds, fragments).
type Builder struct {
	s         core.DataStorage
	fragments map[string]*chem.Molecule
}

// NewBuilder returns a Builder over s.
func NewBuilder(s core.DataStorage) *Builder { return &Builder{s: s} }

// Name implements Tool.
func (b *Builder) Name() string { return "Builder" }

// Startup loads the fragment library the Builder's palette offers.
func (b *Builder) Startup() error {
	b.fragments = map[string]*chem.Molecule{
		"water":  chem.MakeWater(),
		"uranyl": {Name: "uranyl", Charge: 2, Atoms: []chem.Atom{{Symbol: "U"}, {Symbol: "O", Z: 1.76}, {Symbol: "O", Z: -1.76}}},
	}
	for n := 1; n <= 8; n++ {
		b.fragments[fmt.Sprintf("uo2-%dh2o", n)] = chem.MakeUO2nH2O(n)
	}
	// Touch the element table so it is resident, as the real Builder
	// would have its periodic table loaded.
	for _, sym := range chem.KnownSymbols() {
		if _, ok := chem.LookupElement(sym); !ok {
			return fmt.Errorf("builder: element table inconsistent at %s", sym)
		}
	}
	return nil
}

// Load implements Tool.
func (b *Builder) Load(calcPath string) (string, error) {
	mol, err := b.s.LoadMolecule(calcPath)
	if err != nil {
		return "", err
	}
	bonds := mol.PerceiveBonds(1.2)
	frags := mol.ConnectedFragments(1.2)
	return fmt.Sprintf("%s: %d atoms, %d bonds, %d fragments, mass %.2f",
		mol.Formula(), mol.AtomCount(), len(bonds), len(frags), mol.Mass()), nil
}

// BasisTool manages Gaussian basis sets.
type BasisTool struct {
	s       core.DataStorage
	library map[string]*chem.BasisSet
}

// NewBasisTool returns a BasisTool over s.
func NewBasisTool(s core.DataStorage) *BasisTool { return &BasisTool{s: s} }

// Name implements Tool.
func (b *BasisTool) Name() string { return "BasisTool" }

// Startup loads the basis library. The real tool reads hundreds of
// sets; we synthesize scaled variants of STO-3G to model that cost.
func (b *BasisTool) Startup() error {
	b.library = map[string]*chem.BasisSet{"STO-3G": chem.STO3G()}
	for i := 2; i <= 40; i++ {
		v := chem.STO3G()
		v.Name = fmt.Sprintf("SYN-%d", i)
		for e := range v.Elements {
			for sh := range v.Elements[e].Shells {
				for p := range v.Elements[e].Shells[sh].Primitives {
					v.Elements[e].Shells[sh].Primitives[p].Exponent *= 1 + 0.01*float64(i)
				}
			}
		}
		// Round-trip through the text codec, as the real tool parses
		// its library files at startup.
		parsed, err := chem.ParseBasisBytes(v.Encode())
		if err != nil {
			return fmt.Errorf("basistool: library entry %d: %w", i, err)
		}
		b.library[parsed.Name] = parsed
	}
	return nil
}

// Load implements Tool.
func (b *BasisTool) Load(calcPath string) (string, error) {
	mol, err := b.s.LoadMolecule(calcPath)
	if err != nil {
		return "", err
	}
	bs, err := b.s.LoadBasis(calcPath)
	if err != nil {
		return "", err
	}
	if !bs.Covers(mol) {
		return "", fmt.Errorf("basistool: %s does not cover %s", bs.Name, mol.Formula())
	}
	return fmt.Sprintf("%s on %s: %d contracted shells",
		bs.Name, mol.Formula(), bs.FunctionCount(mol)), nil
}

// CalcEditor edits calculation setup: theory, tasks, input decks.
type CalcEditor struct {
	s         core.DataStorage
	templates map[string]string
}

// NewCalcEditor returns a CalcEditor over s.
func NewCalcEditor(s core.DataStorage) *CalcEditor { return &CalcEditor{s: s} }

// Name implements Tool.
func (e *CalcEditor) Name() string { return "Calc Editor" }

// Startup loads the theory templates the editor offers.
func (e *CalcEditor) Startup() error {
	e.templates = map[string]string{}
	for _, theory := range []string{"SCF", "DFT", "MP2", "CCSD", "CCSD(T)"} {
		for _, kind := range []model.TaskKind{model.TaskEnergy, model.TaskOptimize, model.TaskFrequency} {
			deck, err := model.GenerateInputDeck(
				&model.Calculation{Name: "template", Theory: theory},
				chem.MakeWater(), chem.STO3G(), &model.Task{Kind: kind})
			if err != nil {
				return fmt.Errorf("calceditor: template %s/%s: %w", theory, kind, err)
			}
			e.templates[theory+"/"+string(kind)] = deck
		}
	}
	return nil
}

// Load implements Tool: it fetches the calculation, its molecule and
// tasks, and regenerates the deck preview.
func (e *CalcEditor) Load(calcPath string) (string, error) {
	calc, err := e.s.LoadCalculation(calcPath)
	if err != nil {
		return "", err
	}
	mol, err := e.s.LoadMolecule(calcPath)
	if err != nil {
		return "", err
	}
	tasks, err := e.s.LoadTasks(calcPath)
	if err != nil {
		return "", err
	}
	deckLines := 0
	for _, t := range tasks {
		deckLines += strings.Count(t.InputDeck, "\n")
	}
	return fmt.Sprintf("%s [%s] %s: %d tasks, %d deck lines",
		calc.Name, calc.State, mol.Formula(), len(tasks), deckLines), nil
}

// CalcViewer is the post-run analysis tool: it loads everything,
// including the large output properties.
type CalcViewer struct {
	s core.DataStorage
}

// NewCalcViewer returns a CalcViewer over s.
func NewCalcViewer(s core.DataStorage) *CalcViewer { return &CalcViewer{s: s} }

// Name implements Tool.
func (v *CalcViewer) Name() string { return "Calc Viewer" }

// Startup is light: the viewer's palettes are static.
func (v *CalcViewer) Startup() error { return nil }

// Load implements Tool: the full bundle plus per-property statistics
// (what the viewer's plots are built from).
func (v *CalcViewer) Load(calcPath string) (string, error) {
	b, err := core.LoadBundle(v.s, calcPath)
	if err != nil {
		return "", err
	}
	if b.Molecule == nil {
		return "", fmt.Errorf("calcviewer: %s has no molecule", calcPath)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s): %d properties", b.Calc.Name, b.Molecule.Formula(), len(b.Properties))
	var totalValues int
	for _, p := range b.Properties {
		minV, maxV := math.Inf(1), math.Inf(-1)
		for _, x := range p.Values {
			minV = math.Min(minV, x)
			maxV = math.Max(maxV, x)
		}
		totalValues += len(p.Values)
		fmt.Fprintf(&sb, "; %s[%d] %.3g..%.3g", p.Name, len(p.Values), minV, maxV)
	}
	fmt.Fprintf(&sb, "; %d values total", totalValues)
	return sb.String(), nil
}

// CalcManager browses the project tree (the paper's Table 3 marks its
// per-calculation load as not applicable; Load here summarizes the
// enclosing project instead).
type CalcManager struct {
	s core.DataStorage
}

// NewCalcManager returns a CalcManager over s.
func NewCalcManager(s core.DataStorage) *CalcManager { return &CalcManager{s: s} }

// Name implements Tool.
func (m *CalcManager) Name() string { return "Calc Manager" }

// Startup is light.
func (m *CalcManager) Startup() error { return nil }

// Load summarizes the project containing calcPath: entry counts by
// type and calculation states.
func (m *CalcManager) Load(calcPath string) (string, error) {
	projPath := parentPath(calcPath)
	entries, err := m.s.List(projPath)
	if err != nil {
		return "", err
	}
	states := map[model.State]int{}
	calcs := 0
	for _, e := range entries {
		if e.Type != core.TypeCalculation {
			continue
		}
		calcs++
		c, err := m.s.LoadCalculation(e.Path)
		if err != nil {
			return "", err
		}
		states[c.State]++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d calculations", projPath, calcs)
	for st := model.StateCreated; st <= model.StateFailed; st++ {
		if states[st] > 0 {
			fmt.Fprintf(&sb, ", %d %s", states[st], st)
		}
	}
	return sb.String(), nil
}

// JobLauncher validates and records job submissions.
type JobLauncher struct {
	s        core.DataStorage
	machines []Machine
}

// Machine is one compute-host registration, as Ecce's launcher
// configures.
type Machine struct {
	Host     string
	Queue    string
	MaxNodes int
}

// NewJobLauncher returns a JobLauncher over s.
func NewJobLauncher(s core.DataStorage) *JobLauncher { return &JobLauncher{s: s} }

// Name implements Tool.
func (j *JobLauncher) Name() string { return "Job Launcher" }

// Startup loads the machine registry.
func (j *JobLauncher) Startup() error {
	j.machines = []Machine{
		{Host: "mpp2.emsl.pnl.gov", Queue: "large", MaxNodes: 512},
		{Host: "mpp2.emsl.pnl.gov", Queue: "small", MaxNodes: 32},
		{Host: "colony.emsl.pnl.gov", Queue: "normal", MaxNodes: 128},
		{Host: "localhost", Queue: "interactive", MaxNodes: 1},
	}
	return nil
}

// Load implements Tool: fetch the calculation and its job record and
// check launch readiness.
func (j *JobLauncher) Load(calcPath string) (string, error) {
	calc, err := j.s.LoadCalculation(calcPath)
	if err != nil {
		return "", err
	}
	job, err := j.s.LoadJob(calcPath)
	if err != nil {
		// No job yet: report readiness from the calculation state.
		if calc.State == model.StateReady {
			return fmt.Sprintf("%s: ready to launch (%d machines)", calc.Name, len(j.machines)), nil
		}
		return fmt.Sprintf("%s: not launchable in state %s", calc.Name, calc.State), nil
	}
	return fmt.Sprintf("%s: job %s on %s/%s (%d nodes) %s",
		calc.Name, job.BatchID, job.Host, job.Queue, job.NodeCount, job.Status), nil
}

// Submit validates a submission against the machine registry, records
// the job, and advances the calculation state.
func (j *JobLauncher) Submit(calcPath, host, queue string, nodes int) error {
	var machine *Machine
	for i := range j.machines {
		if j.machines[i].Host == host && j.machines[i].Queue == queue {
			machine = &j.machines[i]
			break
		}
	}
	if machine == nil {
		return fmt.Errorf("joblauncher: no machine %s/%s", host, queue)
	}
	if nodes < 1 || nodes > machine.MaxNodes {
		return fmt.Errorf("joblauncher: %d nodes outside 1..%d for %s/%s",
			nodes, machine.MaxNodes, host, queue)
	}
	calc, err := j.s.LoadCalculation(calcPath)
	if err != nil {
		return err
	}
	if !model.CanTransition(calc.State, model.StateSubmitted) {
		return fmt.Errorf("joblauncher: cannot submit from state %s", calc.State)
	}
	calc.State = model.StateSubmitted
	if err := j.s.SaveCalculation(calcPath, calc); err != nil {
		return err
	}
	return j.s.SaveJob(calcPath, model.Job{
		Host: host, Queue: queue, NodeCount: nodes, Status: model.JobPending,
	})
}

// parentPath trims the last path segment.
func parentPath(p string) string {
	p = strings.TrimSuffix(p, "/")
	i := strings.LastIndex(p, "/")
	if i <= 0 {
		return "/"
	}
	return p[:i]
}
