package tools

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/davclient"
	"repro/internal/davserver"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/store"
)

// populate builds the standard UO2·15H2O workload in a storage.
func populate(t *testing.T, s core.DataStorage) string {
	t.Helper()
	if err := s.CreateProject("/aqueous", model.Project{Name: "aqueous"}); err != nil {
		t.Fatal(err)
	}
	calcPath := "/aqueous/uranyl"
	if err := s.CreateCalculation(calcPath, model.Calculation{
		Name: "uranyl", Theory: "DFT", State: model.StateReady}); err != nil {
		t.Fatal(err)
	}
	mol := chem.MakeUO2nH2O(15)
	if err := s.SaveMolecule(calcPath, mol, chem.FormatXYZ); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveBasis(calcPath, chem.STO3G()); err != nil {
		t.Fatal(err)
	}
	deck, err := model.GenerateInputDeck(&model.Calculation{Name: "uranyl", Theory: "DFT"},
		mol, chem.STO3G(), &model.Task{Kind: model.TaskEnergy})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveTask(calcPath, model.Task{
		Name: "energy", Kind: model.TaskEnergy, Sequence: 1, InputDeck: deck}); err != nil {
		t.Fatal(err)
	}
	for _, p := range (model.SyntheticRunner{GridPoints: 8}).Run(mol, model.TaskEnergy) {
		if err := s.SaveProperty(calcPath, p); err != nil {
			t.Fatal(err)
		}
	}
	return calcPath
}

func newDAV(t *testing.T) core.DataStorage {
	t.Helper()
	srv := httptest.NewServer(davserver.NewHandler(store.NewMemStore(), nil))
	t.Cleanup(srv.Close)
	c, err := davclient.New(davclient.Config{BaseURL: srv.URL, Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewDAVStorage(c)
	t.Cleanup(func() { s.Close() })
	return s
}

func newOODB(t *testing.T) core.DataStorage {
	t.Helper()
	db, err := oodb.OpenDB(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := oodb.NewServer(db, core.SchemaFingerprint())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	c, err := oodb.Dial(addr, core.SchemaFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewOODBStorage(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestAllToolsOnBothBackends is the Figure 2 integration test: the
// same tool code, unchanged, runs against both architectures.
func TestAllToolsOnBothBackends(t *testing.T) {
	backends := map[string]func(*testing.T) core.DataStorage{
		"DAV":  newDAV,
		"OODB": newOODB,
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			calcPath := populate(t, s)
			for _, tool := range All(s) {
				if err := tool.Startup(); err != nil {
					t.Fatalf("%s startup: %v", tool.Name(), err)
				}
				summary, err := tool.Load(calcPath)
				if err != nil {
					t.Fatalf("%s load: %v", tool.Name(), err)
				}
				if summary == "" {
					t.Fatalf("%s produced empty summary", tool.Name())
				}
				t.Logf("%s: %s", tool.Name(), truncate(summary, 100))
			}
		})
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func TestBuilderSummary(t *testing.T) {
	s := newDAV(t)
	calcPath := populate(t, s)
	b := NewBuilder(s)
	if err := b.Startup(); err != nil {
		t.Fatal(err)
	}
	got, err := b.Load(calcPath)
	if err != nil {
		t.Fatal(err)
	}
	// 48 atoms, 16 fragments (uranyl + 15 waters).
	for _, want := range []string{"H30O17U", "48 atoms", "16 fragments"} {
		if !strings.Contains(got, want) {
			t.Fatalf("builder summary %q missing %q", got, want)
		}
	}
}

func TestBasisToolChecksCoverage(t *testing.T) {
	s := newDAV(t)
	s.CreateProject("/p", model.Project{Name: "p"})
	s.CreateCalculation("/p/c", model.Calculation{Name: "c"})
	iron := &chem.Molecule{Name: "iron", Atoms: []chem.Atom{{Symbol: "Fe"}}}
	s.SaveMolecule("/p/c", iron, chem.FormatXYZ)
	s.SaveBasis("/p/c", chem.STO3G())
	bt := NewBasisTool(s)
	if err := bt.Startup(); err != nil {
		t.Fatal(err)
	}
	if _, err := bt.Load("/p/c"); err == nil {
		t.Fatal("uncovered molecule accepted")
	}
}

func TestCalcViewerReportsProperties(t *testing.T) {
	s := newDAV(t)
	calcPath := populate(t, s)
	v := NewCalcViewer(s)
	v.Startup()
	got, err := v.Load(calcPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"total energy", "dipole moment", "electron density"} {
		if !strings.Contains(got, want) {
			t.Fatalf("viewer summary missing %q: %s", want, got)
		}
	}
}

func TestCalcManagerCountsStates(t *testing.T) {
	s := newDAV(t)
	calcPath := populate(t, s)
	s.CreateCalculation("/aqueous/second", model.Calculation{Name: "second"})
	m := NewCalcManager(s)
	m.Startup()
	got, err := m.Load(calcPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 calculations", "1 ready", "1 created"} {
		if !strings.Contains(got, want) {
			t.Fatalf("manager summary missing %q: %s", want, got)
		}
	}
}

func TestJobLauncherSubmitWorkflow(t *testing.T) {
	s := newDAV(t)
	calcPath := populate(t, s)
	j := NewJobLauncher(s)
	if err := j.Startup(); err != nil {
		t.Fatal(err)
	}
	// Before submission the tool reports readiness.
	got, _ := j.Load(calcPath)
	if !strings.Contains(got, "ready to launch") {
		t.Fatalf("pre-submit summary: %s", got)
	}
	// Bad machine, bad node count.
	if err := j.Submit(calcPath, "nowhere", "none", 1); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if err := j.Submit(calcPath, "mpp2.emsl.pnl.gov", "small", 999); err == nil {
		t.Fatal("oversize request accepted")
	}
	// Good submission.
	if err := j.Submit(calcPath, "mpp2.emsl.pnl.gov", "large", 64); err != nil {
		t.Fatal(err)
	}
	calc, _ := s.LoadCalculation(calcPath)
	if calc.State != model.StateSubmitted {
		t.Fatalf("state after submit = %v", calc.State)
	}
	got, _ = j.Load(calcPath)
	if !strings.Contains(got, "mpp2.emsl.pnl.gov/large") || !strings.Contains(got, "64 nodes") {
		t.Fatalf("post-submit summary: %s", got)
	}
	// Double submission is rejected by the lifecycle.
	if err := j.Submit(calcPath, "mpp2.emsl.pnl.gov", "large", 64); err == nil {
		t.Fatal("double submit accepted")
	}
}

func TestCalcEditorRegeneratesDecks(t *testing.T) {
	s := newDAV(t)
	calcPath := populate(t, s)
	e := NewCalcEditor(s)
	if err := e.Startup(); err != nil {
		t.Fatal(err)
	}
	if len(e.templates) != 15 {
		t.Fatalf("templates = %d, want 15 (5 theories x 3 kinds)", len(e.templates))
	}
	got, err := e.Load(calcPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "1 tasks") || !strings.Contains(got, "H30O17U") {
		t.Fatalf("editor summary: %s", got)
	}
}

func TestLoadMissingCalculation(t *testing.T) {
	s := newDAV(t)
	populate(t, s)
	for _, tool := range All(s) {
		tool.Startup()
		if tool.Name() == "Calc Manager" {
			continue // manager summarizes the parent, which exists
		}
		if _, err := tool.Load("/aqueous/ghost"); err == nil {
			t.Fatalf("%s loaded a missing calculation", tool.Name())
		}
	}
}
