package obs

import (
	"net/http"
	"runtime"
	"time"
)

// ResponseRecorder wraps an http.ResponseWriter and records the status
// code and body byte count for access logging and metrics.
type ResponseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// NewResponseRecorder wraps w.
func NewResponseRecorder(w http.ResponseWriter) *ResponseRecorder {
	return &ResponseRecorder{ResponseWriter: w}
}

// WriteHeader records the status code.
func (rr *ResponseRecorder) WriteHeader(code int) {
	if rr.status == 0 {
		rr.status = code
	}
	rr.ResponseWriter.WriteHeader(code)
}

// Write counts body bytes (and implies a 200 if the handler never
// called WriteHeader, matching net/http).
func (rr *ResponseRecorder) Write(p []byte) (int, error) {
	if rr.status == 0 {
		rr.status = http.StatusOK
	}
	n, err := rr.ResponseWriter.Write(p)
	rr.bytes += int64(n)
	return n, err
}

// Status returns the response status (200 when the handler wrote a
// body without an explicit WriteHeader, 0 when nothing was written).
func (rr *ResponseRecorder) Status() int {
	if rr.status == 0 {
		return http.StatusOK
	}
	return rr.status
}

// Bytes returns the number of body bytes written.
func (rr *ResponseRecorder) Bytes() int64 { return rr.bytes }

// Flush passes through to the underlying writer when it supports it.
func (rr *ResponseRecorder) Flush() {
	if f, ok := rr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (rr *ResponseRecorder) Unwrap() http.ResponseWriter { return rr.ResponseWriter }

// StatusClass buckets an HTTP status code as "1xx".."5xx" for
// low-cardinality metric labels.
func StatusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}

// RegisterRuntime adds process-level gauges (goroutines, heap bytes,
// uptime) to the registry — the minimum a dashboard needs next to the
// request metrics.
func RegisterRuntime(r *Registry) {
	start := time.Now()
	r.GaugeFunc("process_uptime_seconds", "Seconds since the process registered its metrics.", nil,
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
}
