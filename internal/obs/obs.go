// Package obs is the observability layer for the reproduced
// architecture: a dependency-free metrics registry (counters, gauges,
// fixed-bucket histograms) with a Prometheus text-format exposition
// writer and an expvar bridge, request-scoped request-ID propagation,
// and log/slog helpers.
//
// The paper's central claims are quantitative — DAV is
// "performance-competitive" with the OODBMS and robust under
// pathological sizes — so a live server must be able to answer the
// same questions its Tables 1–3 did: how long does a PROPFIND take,
// how large are the bodies, where does the store spend its time. This
// package provides the counters and histograms those answers are read
// from, using only the standard library.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels names the dimensions of one metric series. A nil or empty map
// means an unlabelled series. Label values are escaped on exposition;
// label names must be valid Prometheus identifiers.
type Labels map[string]string

// Metric kind names, used in TYPE lines and kind-mismatch panics.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be non-negative; negative
// deltas are ignored to preserve monotonicity).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are cumulative on
// exposition, with Prometheus's inclusive upper-bound (le) semantics:
// an observation equal to a boundary lands in that boundary's bucket.
type Histogram struct {
	bounds []float64      // finite upper bounds, ascending
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	// exemplars holds the most recent traced observation per bucket
	// (same indexing as counts). Written by ObserveEx, read at
	// exposition when the registry has exemplars enabled.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one concrete observation to the trace that produced
// it, OpenMetrics-style: a slow bucket in the latency histogram links
// directly to a recorded trace in the flight recorder.
type Exemplar struct {
	TraceID string
	Value   float64
}

// DefBuckets are latency buckets in seconds, spanning sub-millisecond
// metadata operations (Table 1 reads ~1 ms/property) up to the
// multi-second 200 MB document transfers of Table 2.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// SizeBuckets are byte-size buckets spanning small property values up
// to the paper's 200 MB robustness documents.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		bounds:    bs,
		counts:    make([]atomic.Int64, len(bs)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound is >= v; past the end is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveEx records one value and, when traceID is non-empty, stamps
// the bucket the value lands in with a {trace_id, value} exemplar
// (last writer wins — the freshest traced request per bucket is the
// useful one for debugging). Exemplars only appear in the exposition
// when the registry has SetExemplars(true).
func (h *Histogram) ObserveEx(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// NumBuckets returns the number of buckets including +Inf.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// series is one labelled instance within a family.
type series struct {
	labels  Labels
	key     string // rendered label set
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family is every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   string
	series map[string]*series
	keys   []string // insertion order; sorted at exposition
}

// Registry holds metric families and renders them. The zero value is
// not usable; call NewRegistry. All methods are safe for concurrent
// use; metric handles returned from the getters are lock-free on the
// hot path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	// seriesLimit caps the labelled series per family; 0 = unbounded.
	// See SetSeriesLimit.
	seriesLimit int
	overflow    *Counter
	// exemplars switches the exposition to OpenMetrics-style exemplar
	// suffixes on histogram buckets. Off by default so the plain 0.0.4
	// text format (and its golden test) is unchanged.
	exemplars bool
}

// OverflowMetric counts label-value combinations rejected by the
// cardinality guard (see SetSeriesLimit).
const OverflowMetric = "dav_metric_label_overflow_total"

// overflowKey is the label set absorbing rejected combinations.
var overflowKey = Labels{"overflow": "true"}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// SetSeriesLimit installs the cardinality guard: once a family holds n
// labelled series, further new label-value combinations collapse into
// one {overflow="true"} series per family instead of allocating, and
// each rejection increments dav_metric_label_overflow_total. This
// bounds the exposition no matter what a caller uses as a label value
// — a misbehaving client cannot OOM the registry by minting paths.
// n <= 0 removes the limit. Existing series are never evicted.
func (r *Registry) SetSeriesLimit(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesLimit = n
	if n > 0 && r.overflow == nil {
		s := r.lookup(OverflowMetric,
			"Label-value combinations rejected by the registry's cardinality guard (cumulative).",
			kindCounter, nil)
		if s.counter == nil {
			s.counter = &Counter{}
		}
		r.overflow = s.counter
	}
}

// SetExemplars enables (or disables) exemplar emission: histogram
// bucket lines gain an OpenMetrics-style ` # {trace_id="..."} value`
// suffix for buckets that have seen a traced observation via
// ObserveEx. Scrapers that speak only the plain 0.0.4 text format
// should leave this off.
func (r *Registry) SetExemplars(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.exemplars = on
}

// SeriesLimit reports the configured per-family series cap (0 =
// unbounded).
func (r *Registry) SeriesLimit() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seriesLimit
}

// lookup finds or creates the series for name+labels, enforcing kind
// consistency across calls and the cardinality guard. Caller holds
// r.mu.
func (r *Registry) lookup(name, help, kind string, labels Labels) *series {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	key := renderLabels(labels, "", 0)
	s, ok := f.series[key]
	if ok {
		return s
	}
	// Cardinality guard: a new labelled combination past the cap lands
	// in the family's single overflow series. Unlabelled series are
	// exempt (one per family by construction), as is the overflow
	// counter itself.
	if r.seriesLimit > 0 && len(labels) > 0 && len(f.series) >= r.seriesLimit &&
		name != OverflowMetric {
		if r.overflow != nil {
			r.overflow.Inc()
		}
		okey := renderLabels(overflowKey, "", 0)
		s, ok = f.series[okey]
		if !ok {
			s = &series{labels: cloneLabels(overflowKey), key: okey}
			f.series[okey] = s
			f.keys = append(f.keys, okey)
		}
		return s
	}
	s = &series{labels: cloneLabels(labels), key: key}
	f.series[key] = s
	f.keys = append(f.keys, key)
	return s
}

// Counter returns the counter for name+labels, creating it on first
// use. help is recorded on first registration of the family.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers (or replaces) a callback-backed gauge: fn is
// evaluated at exposition time. Useful for values owned elsewhere,
// like a lock-table size or a listener's drop count. fn runs with the
// registry lock held and must not call back into the registry.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindGauge, labels)
	s.gaugeFn = fn
}

// Histogram returns the histogram for name+labels, creating it with
// the given bucket upper bounds on first use (later calls reuse the
// original buckets). Bounds must be non-empty; +Inf is implicit.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindHistogram, labels)
	if s.hist == nil {
		s.hist = newHistogram(bounds)
	}
	return s.hist
}

// value reads a series's current scalar (counters and gauges).
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gaugeFn != nil:
		return s.gaugeFn()
	case s.gauge != nil:
		return s.gauge.Value()
	}
	return 0
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), families and series in sorted
// order so output is stable for golden tests and diffing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		f := r.families[n]
		sort.Strings(f.keys)
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range f.keys {
			s := f.series[key]
			switch f.kind {
			case kindHistogram:
				writeHistogram(&b, f.name, s, r.exemplars)
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.key, formatValue(s.value()))
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders the _bucket/_sum/_count triplet for one
// series, with cumulative bucket counts. With exemplars on, bucket
// lines whose bucket saw a traced observation carry an
// OpenMetrics-style exemplar suffix (no timestamp, so output stays
// deterministic for golden tests).
func writeHistogram(b *strings.Builder, name string, s *series, exemplars bool) {
	h := s.hist
	if h == nil {
		return
	}
	suffix := func(i int) string {
		if !exemplars {
			return ""
		}
		e := h.exemplars[i].Load()
		if e == nil {
			return ""
		}
		return fmt.Sprintf(" # {trace_id=\"%s\"} %s", escapeLabel(e.TraceID), formatValue(e.Value))
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d%s\n", name,
			renderLabels(s.labels, formatValue(bound), 1), cum, suffix(i))
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d%s\n", name,
		renderLabels(s.labels, "+Inf", 1), cum, suffix(len(h.bounds)))
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.key, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.key, h.Count())
}

// Handler returns an http.Handler serving the exposition (mount at
// /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// PublishExpvar exposes the registry as one expvar variable (visible
// at /debug/vars), evaluated per request. Publishing the same name
// twice is a no-op, so daemons can call it unconditionally.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Snapshot returns the registry's current values as a plain map:
// "name{labels}" -> number for counters and gauges, or a
// {count, sum, buckets} map for histograms. It backs the expvar bridge
// and structured dumps.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]any{}
	for _, f := range r.families {
		for _, s := range f.series {
			key := f.name + s.key
			if f.kind == kindHistogram {
				h := s.hist
				if h == nil {
					continue
				}
				buckets := make(map[string]int64, len(h.counts))
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					buckets[formatValue(bound)] = cum
				}
				buckets["+Inf"] = h.Count()
				out[key] = map[string]any{"count": h.Count(), "sum": h.Sum(), "buckets": buckets}
				continue
			}
			out[key] = s.value()
		}
	}
	return out
}

// cloneLabels copies labels so callers cannot mutate registered series.
func cloneLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// renderLabels serializes a label set as {k="v",...} in sorted key
// order. leMode 1 appends an le label (histogram buckets); an empty
// result set renders as "".
func renderLabels(l Labels, le string, leMode int) string {
	if len(l) == 0 && leMode == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	if leMode == 1 {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a float sample value ("+Inf"-free; infinities do
// not occur in stored values).
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
