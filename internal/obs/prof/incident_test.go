package prof

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// testCapturer builds a capturer with every evidence source stubbed and
// a tiny CPU slice. clock may be nil for the real clock.
func testCapturer(t *testing.T, cfg CaptureConfig) *Capturer {
	t.Helper()
	if cfg.CPUSlice == 0 {
		cfg.CPUSlice = 10 * time.Millisecond
	}
	if cfg.WriteTraces == nil {
		cfg.WriteTraces = func(w io.Writer) error {
			_, err := io.WriteString(w, `{"trace_id":"abc","name":"dav.server GET"}`+"\n")
			return err
		}
	}
	if cfg.WriteMetrics == nil {
		reg := obs.NewRegistry()
		reg.Counter("dav_requests_total", "requests", nil).Inc()
		cfg.WriteMetrics = reg.WritePrometheus
	}
	if cfg.StatusJSON == nil {
		cfg.StatusJSON = func() ([]byte, error) {
			return json.Marshal(map[string]any{"schema": "dav_status/v1", "service": "test"})
		}
	}
	if cfg.LogTail == nil {
		cfg.LogTail = func() []byte { return []byte("level=INFO msg=hello\n") }
	}
	return NewCapturer(cfg)
}

// untar expands a bundle into name -> content.
func untar(t *testing.T, data []byte) map[string][]byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(zr)
	out := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tar: %v", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("tar read %s: %v", hdr.Name, err)
		}
		out[hdr.Name] = body
	}
	return out
}

// TestTriggerMatrix drives each trigger source once (dedup windows
// live, rate limit off) and asserts exactly one bundle per reason, then
// a repeat of each reason suppressed by its dedup window.
func TestTriggerMatrix(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	c := testCapturer(t, CaptureConfig{
		MinInterval: -1,
		DedupWindow: 5 * time.Minute,
		Clock:       func() time.Time { return now },
	})
	reasons := []string{TriggerDegraded, TriggerSlow, TriggerPanic, TriggerManual}
	for _, reason := range reasons {
		now = now.Add(time.Second)
		b, ok := c.Trigger(reason, "matrix "+reason)
		if !ok || b == nil {
			t.Fatalf("trigger %s: suppressed, want a bundle", reason)
		}
		if b.Reason != reason {
			t.Errorf("bundle reason = %q, want %q", b.Reason, reason)
		}
		if c.Built(reason) != 1 {
			t.Errorf("built[%s] = %d, want 1", reason, c.Built(reason))
		}
	}
	if c.Len() != len(reasons) {
		t.Fatalf("retained = %d, want %d", c.Len(), len(reasons))
	}
	// Second trip of each reason inside the window: suppressed.
	for _, reason := range reasons {
		now = now.Add(time.Second)
		if _, ok := c.Trigger(reason, "repeat"); ok {
			t.Errorf("trigger %s: repeat inside dedup window built a bundle", reason)
		}
		if c.Built(reason) != 1 || c.Suppressed(reason) != 1 {
			t.Errorf("%s: built=%d suppressed=%d, want 1/1",
				reason, c.Built(reason), c.Suppressed(reason))
		}
	}
	// Past the window the same reason fires again.
	now = now.Add(6 * time.Minute)
	if _, ok := c.Trigger(TriggerDegraded, "new window"); !ok {
		t.Error("trigger past the dedup window was suppressed")
	}
}

// TestRateLimit verifies MinInterval suppresses across reasons.
func TestRateLimit(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	c := testCapturer(t, CaptureConfig{
		MinInterval: 30 * time.Second,
		DedupWindow: -1,
		Clock:       func() time.Time { return now },
	})
	if _, ok := c.Trigger(TriggerSlow, ""); !ok {
		t.Fatal("first trigger suppressed")
	}
	now = now.Add(10 * time.Second)
	if _, ok := c.Trigger(TriggerPanic, ""); ok {
		t.Fatal("trigger inside MinInterval built a bundle")
	}
	now = now.Add(30 * time.Second)
	if _, ok := c.Trigger(TriggerPanic, ""); !ok {
		t.Fatal("trigger past MinInterval suppressed")
	}
}

// TestBundleContents unpacks a bundle and asserts every entry is
// present and parseable: manifest, gzipped profiles, JSONL traces,
// CheckExposition-clean metrics, JSON status, non-empty log tail.
func TestBundleContents(t *testing.T) {
	s := quickSampler(2)
	s.CaptureNow()
	c := testCapturer(t, CaptureConfig{Sampler: s, MinInterval: -1, DedupWindow: -1})
	b, ok := c.Trigger(TriggerDegraded, "burn past threshold")
	if !ok {
		t.Fatal("trigger suppressed")
	}
	files := untar(t, b.Data)

	man, ok := files["incident.json"]
	if !ok {
		t.Fatal("incident.json missing")
	}
	var m manifest
	if err := json.Unmarshal(man, &m); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if m.Schema != BundleSchema || m.Reason != TriggerDegraded || m.ID != b.ID {
		t.Errorf("manifest = %+v", m)
	}
	if len(m.Errors) != 0 {
		t.Errorf("manifest reports source errors: %v", m.Errors)
	}

	for _, kind := range Kinds {
		name := "profiles/" + kind + ".pb.gz"
		data, ok := files[name]
		if !ok {
			t.Errorf("%s missing", name)
			continue
		}
		if raw := gunzipAll(t, data); len(raw) == 0 {
			t.Errorf("%s: empty profile", name)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(string(files["traces.jsonl"])), "\n") {
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Errorf("traces.jsonl line %q: %v", line, err)
		}
	}
	if err := obs.CheckExposition(files["metrics.prom"]); err != nil {
		t.Errorf("metrics.prom: %v", err)
	}
	var status map[string]any
	if err := json.Unmarshal(files["status.json"], &status); err != nil {
		t.Errorf("status.json: %v", err)
	}
	if len(files["logs.txt"]) == 0 {
		t.Error("logs.txt empty")
	}
	if len(b.Entries) != len(files) {
		t.Errorf("manifest lists %d entries, tar holds %d", len(b.Entries), len(files))
	}
}

// TestBundleWithoutSampler verifies a capturer with no sampler still
// produces every profile kind by capturing on demand.
func TestBundleWithoutSampler(t *testing.T) {
	c := testCapturer(t, CaptureConfig{MinInterval: -1, DedupWindow: -1})
	b, ok := c.Trigger(TriggerManual, "")
	if !ok {
		t.Fatal("trigger suppressed")
	}
	files := untar(t, b.Data)
	for _, kind := range Kinds {
		if _, ok := files["profiles/"+kind+".pb.gz"]; !ok {
			t.Errorf("profiles/%s.pb.gz missing without a sampler", kind)
		}
	}
}

// TestBundleRingEviction verifies MaxBundles bounds retention while the
// built counters keep counting.
func TestBundleRingEviction(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	c := testCapturer(t, CaptureConfig{
		MaxBundles:  2,
		MinInterval: -1,
		DedupWindow: -1,
		Clock:       func() time.Time { return now },
	})
	var ids []string
	for i := 0; i < 4; i++ {
		now = now.Add(time.Second)
		b, ok := c.Trigger(TriggerManual, fmt.Sprint(i))
		if !ok {
			t.Fatalf("trigger %d suppressed", i)
		}
		ids = append(ids, b.ID)
	}
	if c.Len() != 2 {
		t.Fatalf("retained = %d, want 2", c.Len())
	}
	if c.Find(ids[0]) != nil || c.Find(ids[1]) != nil {
		t.Error("evicted bundle still findable")
	}
	if c.Find(ids[3]) == nil {
		t.Error("newest bundle missing")
	}
	if c.Built(TriggerManual) != 4 {
		t.Errorf("built = %d, want 4", c.Built(TriggerManual))
	}
	bundles := c.Bundles()
	if len(bundles) != 2 || bundles[0].ID != ids[3] {
		t.Errorf("Bundles() not newest-first: %v", bundles)
	}
}

// TestWriteBundles verifies the graceful-drain flush writes every
// retained bundle as a valid tar.gz.
func TestWriteBundles(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	c := testCapturer(t, CaptureConfig{
		MinInterval: -1, DedupWindow: -1,
		Clock: func() time.Time { return now },
	})
	for i := 0; i < 2; i++ {
		now = now.Add(time.Second)
		if _, ok := c.Trigger(TriggerManual, fmt.Sprint(i)); !ok {
			t.Fatalf("trigger %d suppressed", i)
		}
	}
	dir := filepath.Join(t.TempDir(), "incidents")
	n, err := c.WriteBundles(dir)
	if err != nil || n != 2 {
		t.Fatalf("WriteBundles = %d, %v; want 2, nil", n, err)
	}
	for _, b := range c.Bundles() {
		data, err := os.ReadFile(filepath.Join(dir, b.ID+".tar.gz"))
		if err != nil {
			t.Fatalf("read %s: %v", b.ID, err)
		}
		if files := untar(t, data); len(files) != len(b.Entries) {
			t.Errorf("%s: %d entries on disk, want %d", b.ID, len(files), len(b.Entries))
		}
	}
	// Empty capturer writes nothing and creates nothing.
	empty := testCapturer(t, CaptureConfig{})
	ghost := filepath.Join(t.TempDir(), "ghost")
	if n, err := empty.WriteBundles(ghost); n != 0 || err != nil {
		t.Errorf("empty WriteBundles = %d, %v", n, err)
	}
	if _, err := os.Stat(ghost); !os.IsNotExist(err) {
		t.Error("empty flush created the directory")
	}
}

// TestIncidentHandlers exercises /debug/incidents and the manual
// trigger endpoint.
func TestIncidentHandlers(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	c := testCapturer(t, CaptureConfig{
		MinInterval: 30 * time.Second,
		DedupWindow: -1,
		Clock:       func() time.Time { return now },
	})

	trig := c.TriggerHandler()
	rec := httptest.NewRecorder()
	trig.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/incident", nil))
	if rec.Code != 405 {
		t.Fatalf("GET trigger = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	trig.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/incident?detail=ops+page", nil))
	if rec.Code != 202 {
		t.Fatalf("POST trigger = %d, want 202; body %s", rec.Code, rec.Body.String())
	}
	var b Bundle
	if err := json.Unmarshal(rec.Body.Bytes(), &b); err != nil || b.ID == "" {
		t.Fatalf("trigger response: %v (%s)", err, rec.Body.String())
	}
	if b.Detail != "ops page" {
		t.Errorf("detail = %q", b.Detail)
	}

	// Inside MinInterval: 429.
	rec = httptest.NewRecorder()
	trig.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/incident", nil))
	if rec.Code != 429 {
		t.Fatalf("rate-limited POST = %d, want 429", rec.Code)
	}

	h := c.Handler()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/incidents", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), b.ID) {
		t.Errorf("index = %d, body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/incidents?format=json", nil))
	var listed []Bundle
	if err := json.Unmarshal(rec.Body.Bytes(), &listed); err != nil || len(listed) != 1 {
		t.Errorf("json index: %v (%s)", err, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/incidents?id="+b.ID, nil))
	if rec.Code != 200 {
		t.Fatalf("download = %d", rec.Code)
	}
	if files := untar(t, rec.Body.Bytes()); len(files) == 0 {
		t.Error("downloaded bundle empty")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/incidents?id=nope", nil))
	if rec.Code != 404 {
		t.Errorf("missing id = %d, want 404", rec.Code)
	}
}

// TestIncidentRegister checks the dav_incident_* exposition.
func TestIncidentRegister(t *testing.T) {
	c := testCapturer(t, CaptureConfig{MinInterval: -1, DedupWindow: 5 * time.Minute})
	if _, ok := c.Trigger(TriggerDegraded, ""); !ok {
		t.Fatal("trigger suppressed")
	}
	c.Trigger(TriggerDegraded, "") // suppressed by dedup
	r := obs.NewRegistry()
	c.Register(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dav_incident_bundles_total{trigger="degraded"} 1`,
		`dav_incident_suppressed_total{trigger="degraded"} 1`,
		`dav_incident_retained 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
	if err := obs.CheckExposition([]byte(sb.String())); err != nil {
		t.Errorf("CheckExposition: %v", err)
	}
}
