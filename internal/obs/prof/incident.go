package prof

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// Trigger reasons the capturer understands. Anything else is counted
// under TriggerManual so the metric label set stays bounded.
const (
	TriggerDegraded = "degraded"
	TriggerSlow     = "slow"
	TriggerPanic    = "panic"
	TriggerManual   = "manual"
)

// triggerKinds is the bounded label set for the incident counters.
var triggerKinds = []string{TriggerDegraded, TriggerSlow, TriggerPanic, TriggerManual}

// triggerLabel clamps an arbitrary reason onto the bounded set.
func triggerLabel(reason string) string {
	switch reason {
	case TriggerDegraded, TriggerSlow, TriggerPanic:
		return reason
	}
	return TriggerManual
}

// BundleSchema identifies the incident.json manifest shape inside a
// bundle.
const BundleSchema = "dav_incident/v1"

// CaptureConfig wires a Capturer to its evidence sources and bounds its
// output. Every source is optional; missing ones drop their bundle
// entry.
type CaptureConfig struct {
	// Sampler supplies the freshest ring profiles; when nil (or when the
	// ring lacks a kind) the point-in-time kinds are captured on demand
	// at bundle time.
	Sampler *Sampler
	// CPUSlice is the on-demand CPU profile length recorded at bundle
	// time (default 1s; negative disables, falling back to the ring's
	// freshest CPU profile).
	CPUSlice time.Duration
	// WriteTraces streams the trace flight-recorder tail as JSONL
	// (typically (*trace.Recorder).WriteJSONL).
	WriteTraces func(io.Writer) error
	// WriteMetrics streams a full metrics exposition snapshot (typically
	// (*obs.Registry).WritePrometheus).
	WriteMetrics func(io.Writer) error
	// StatusJSON returns the /debug/status document (typically a
	// json.Marshal of (*ops.Status).Doc()).
	StatusJSON func() ([]byte, error)
	// LogTail returns the in-memory log tail (typically
	// (*obs.LogRing).Bytes()).
	LogTail func() []byte
	// MaxBundles bounds the retained-bundle ring (default 8).
	MaxBundles int
	// DedupWindow suppresses repeat bundles for the same trigger reason
	// inside the window (default 5m; negative disables).
	DedupWindow time.Duration
	// MinInterval rate-limits bundle assembly across all reasons
	// (default 30s; negative disables).
	MinInterval time.Duration
	// Clock overrides the clock (tests).
	Clock func() time.Time
}

// Bundle is one assembled incident: a tar.gz holding the freshest
// profiles, the trace tail, a metrics snapshot, the status document,
// and the log tail, plus an incident.json manifest.
type Bundle struct {
	ID      string    `json:"id"`
	Reason  string    `json:"reason"`
	Detail  string    `json:"detail,omitempty"`
	Time    time.Time `json:"time"`
	Entries []string  `json:"entries"`
	Bytes   int       `json:"bytes"`
	Data    []byte    `json:"-"`
}

// manifest is the incident.json entry written first in every bundle.
type manifest struct {
	Schema  string            `json:"schema"`
	ID      string            `json:"id"`
	Reason  string            `json:"reason"`
	Detail  string            `json:"detail,omitempty"`
	Time    time.Time         `json:"time"`
	Entries []string          `json:"entries"`
	Errors  map[string]string `json:"errors,omitempty"`
}

// Capturer assembles incident bundles on trigger. Bundles are
// rate-limited globally, deduplicated per trigger reason, and retained
// in a bounded ring; a second trigger arriving while a bundle is being
// assembled is suppressed rather than queued (the evidence it would
// capture is the same). All methods are safe for concurrent use.
type Capturer struct {
	cfg CaptureConfig

	mu           sync.Mutex
	bundles      []*Bundle // oldest first
	seq          int64
	capturing    bool
	lastAny      time.Time
	lastByReason map[string]time.Time
	built        map[string]int64
	suppressed   map[string]int64
	lastBytes    int
}

// NewCapturer builds a capturer from cfg.
func NewCapturer(cfg CaptureConfig) *Capturer {
	if cfg.CPUSlice == 0 {
		cfg.CPUSlice = time.Second
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.DedupWindow == 0 {
		cfg.DedupWindow = 5 * time.Minute
	}
	if cfg.MinInterval == 0 {
		cfg.MinInterval = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Capturer{
		cfg:          cfg,
		lastByReason: map[string]time.Time{},
		built:        map[string]int64{},
		suppressed:   map[string]int64{},
	}
}

// Config returns the capturer's effective configuration.
func (c *Capturer) Config() CaptureConfig { return c.cfg }

// Trigger assembles one incident bundle for the given reason, blocking
// for the on-demand CPU slice. It returns (nil, false) when the
// trigger was suppressed — deduplicated inside the reason's window,
// rate-limited globally, or arriving while another bundle is being
// assembled. Hot paths (panic recovery, the slow-trip hook) should use
// TriggerAsync instead.
func (c *Capturer) Trigger(reason, detail string) (*Bundle, bool) {
	now := c.cfg.Clock()
	c.mu.Lock()
	label := triggerLabel(reason)
	switch {
	case c.capturing:
		c.suppressed[label]++
		c.mu.Unlock()
		return nil, false
	case c.cfg.MinInterval > 0 && !c.lastAny.IsZero() && now.Sub(c.lastAny) < c.cfg.MinInterval:
		c.suppressed[label]++
		c.mu.Unlock()
		return nil, false
	case c.cfg.DedupWindow > 0 && !c.lastByReason[label].IsZero() &&
		now.Sub(c.lastByReason[label]) < c.cfg.DedupWindow:
		c.suppressed[label]++
		c.mu.Unlock()
		return nil, false
	}
	// Reserve the windows before assembling so a concurrent trigger
	// during the (slow) CPU slice is suppressed, not queued.
	c.capturing = true
	c.lastAny = now
	c.lastByReason[label] = now
	c.seq++
	seq := c.seq
	c.mu.Unlock()

	b := c.assemble(seq, reason, detail, now)

	c.mu.Lock()
	c.capturing = false
	c.built[label]++
	c.lastBytes = b.Bytes
	c.bundles = append(c.bundles, b)
	if over := len(c.bundles) - c.cfg.MaxBundles; over > 0 {
		c.bundles = append([]*Bundle(nil), c.bundles[over:]...)
	}
	c.mu.Unlock()
	return b, true
}

// TriggerAsync runs Trigger on its own goroutine and returns
// immediately — the form the panic-recovery and slow-trip hooks use so
// bundle assembly (a ~1s CPU profile) never blocks a request.
func (c *Capturer) TriggerAsync(reason, detail string) {
	go c.Trigger(reason, detail)
}

// assemble builds the tar.gz for one incident.
func (c *Capturer) assemble(seq int64, reason, detail string, now time.Time) *Bundle {
	id := fmt.Sprintf("inc-%03d-%s", seq, now.UTC().Format("20060102T150405Z"))
	type entry struct {
		name string
		data []byte
	}
	var entries []entry
	errs := map[string]string{}
	add := func(name string, data []byte, err error) {
		if err != nil {
			errs[name] = err.Error()
			return
		}
		entries = append(entries, entry{name, data})
	}

	// Profiles: a fresh CPU slice recorded now (queueing behind the
	// periodic sampler if needed), then the freshest ring snapshot of
	// each point-in-time kind — captured on demand when the ring has
	// none, so a bundle is complete even with the sampler disabled.
	cpuDone := false
	if c.cfg.CPUSlice > 0 {
		data, err := captureCPU(c.cfg.CPUSlice, true, nil)
		add("profiles/cpu.pb.gz", data, err)
		cpuDone = err == nil
	}
	if !cpuDone {
		if a, ok := c.latest(KindCPU); ok {
			add("profiles/cpu.pb.gz", a.Data, nil)
		}
	}
	for _, kind := range []string{KindHeap, KindGoroutine, KindMutex, KindBlock} {
		name := "profiles/" + kind + ".pb.gz"
		if a, ok := c.latest(kind); ok {
			add(name, a.Data, nil)
			continue
		}
		data, err := captureLookup(kind)
		add(name, data, err)
	}

	if c.cfg.WriteTraces != nil {
		var buf bytes.Buffer
		err := c.cfg.WriteTraces(&buf)
		add("traces.jsonl", buf.Bytes(), err)
	}
	if c.cfg.WriteMetrics != nil {
		var buf bytes.Buffer
		err := c.cfg.WriteMetrics(&buf)
		add("metrics.prom", buf.Bytes(), err)
	}
	if c.cfg.StatusJSON != nil {
		data, err := c.cfg.StatusJSON()
		add("status.json", data, err)
	}
	if c.cfg.LogTail != nil {
		add("logs.txt", c.cfg.LogTail(), nil)
	}

	names := make([]string, 0, len(entries)+1)
	names = append(names, "incident.json")
	for _, e := range entries {
		names = append(names, e.name)
	}
	man, _ := json.MarshalIndent(manifest{
		Schema: BundleSchema, ID: id, Reason: reason, Detail: detail,
		Time: now, Entries: names, Errors: errs,
	}, "", "  ")
	man = append(man, '\n')

	var out bytes.Buffer
	gz := gzip.NewWriter(&out)
	tw := tar.NewWriter(gz)
	write := func(name string, data []byte) {
		tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(data)), ModTime: now,
		})
		tw.Write(data)
	}
	write("incident.json", man)
	for _, e := range entries {
		write(e.name, e.data)
	}
	tw.Close()
	gz.Close()

	return &Bundle{
		ID: id, Reason: reason, Detail: detail, Time: now,
		Entries: names, Bytes: out.Len(), Data: out.Bytes(),
	}
}

// latest reads the sampler ring (nil-safe).
func (c *Capturer) latest(kind string) (Artifact, bool) {
	if c.cfg.Sampler == nil {
		return Artifact{}, false
	}
	return c.cfg.Sampler.Latest(kind)
}

// Bundles returns the retained bundles, newest first.
func (c *Capturer) Bundles() []*Bundle {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Bundle, len(c.bundles))
	for i, b := range c.bundles {
		out[len(out)-1-i] = b
	}
	return out
}

// Find returns the retained bundle with the given ID, or nil.
func (c *Capturer) Find(id string) *Bundle {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range c.bundles {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// Len returns the number of retained bundles.
func (c *Capturer) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bundles)
}

// Built reports how many bundles have been assembled for a trigger
// label (cumulative, unaffected by ring eviction).
func (c *Capturer) Built(label string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.built[triggerLabel(label)]
}

// Suppressed reports how many triggers were suppressed for a label.
func (c *Capturer) Suppressed(label string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.suppressed[triggerLabel(label)]
}

// WriteBundles writes every retained bundle to dir as <id>.tar.gz —
// the graceful-drain flush, so evidence captured in memory survives
// the process. Returns how many files were written.
func (c *Capturer) WriteBundles(dir string) (int, error) {
	bundles := c.Bundles()
	if len(bundles) == 0 {
		return 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	for _, b := range bundles {
		if err := os.WriteFile(filepath.Join(dir, b.ID+".tar.gz"), b.Data, 0o644); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Register exposes the capturer as dav_incident_* metrics, read at
// scrape time: per-trigger built/suppressed counts, the retained ring
// occupancy, and the freshest bundle's size and timestamp.
func (c *Capturer) Register(r *obs.Registry) {
	for _, trig := range triggerKinds {
		trig := trig
		l := obs.Labels{"trigger": trig}
		r.GaugeFunc("dav_incident_bundles_total",
			"Incident bundles assembled, by trigger (cumulative).", l,
			func() float64 { return float64(c.Built(trig)) })
		r.GaugeFunc("dav_incident_suppressed_total",
			"Incident triggers suppressed by dedup, rate limiting, or in-flight assembly, by trigger (cumulative).", l,
			func() float64 { return float64(c.Suppressed(trig)) })
	}
	r.GaugeFunc("dav_incident_retained",
		"Incident bundles currently retained in the in-memory ring.", nil,
		func() float64 { return float64(c.Len()) })
	r.GaugeFunc("dav_incident_last_bytes",
		"Compressed size of the most recently assembled bundle.", nil,
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.lastBytes) })
	r.GaugeFunc("dav_incident_last_unixtime",
		"Assembly time of the most recent bundle as a Unix timestamp (0 before the first).", nil,
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if len(c.bundles) == 0 {
				return 0
			}
			return float64(c.bundles[len(c.bundles)-1].Time.Unix())
		})
}
