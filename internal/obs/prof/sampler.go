// Package prof is the continuous-profiling and incident-capture
// subsystem. The PR 7 ops layer can say *that* the server degraded
// (SLO burn, runtime gauges); this package captures *what the server
// was doing* at that moment, automatically: a background sampler keeps
// a bounded ring of recent pprof snapshots (CPU, heap, goroutine,
// mutex, block), and an incident capturer assembles a single
// downloadable tar.gz bundle — profiles, trace tail, metrics snapshot,
// status document, log tail — when a trigger fires (SLO degraded
// transition, slow-request trip, recovered panic, or a manual POST).
// Everything is stdlib-only, in-memory, and bounded.
package prof

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// Profile kinds the sampler captures each tick. CPU is a short timed
// slice; the rest are point-in-time runtime/pprof lookups. All
// artifacts are gzipped protobuf (the pprof wire format).
const (
	KindCPU       = "cpu"
	KindHeap      = "heap"
	KindGoroutine = "goroutine"
	KindMutex     = "mutex"
	KindBlock     = "block"
)

// Kinds lists every profile kind a tick can produce, in capture order.
var Kinds = []string{KindCPU, KindHeap, KindGoroutine, KindMutex, KindBlock}

// cpuMu serializes CPU profiling process-wide: the runtime allows only
// one CPU profile at a time, so the periodic sampler and the incident
// capturer must take turns (and both must tolerate an operator running
// /debug/pprof/profile by hand, which surfaces as a capture error).
var cpuMu sync.Mutex

// errCPUBusy reports that another capture holds the CPU profiler.
var errCPUBusy = fmt.Errorf("prof: cpu profiler busy")

// captureCPU records a CPU profile of roughly d and returns the gzipped
// protobuf. With wait=false it gives up immediately when another
// in-process capture holds the profiler (the sampler's policy: skip a
// tick rather than queue); with wait=true it queues (the incident
// capturer's policy: evidence beats punctuality). cancel, when non-nil,
// cuts the slice short.
func captureCPU(d time.Duration, wait bool, cancel <-chan struct{}) ([]byte, error) {
	if wait {
		cpuMu.Lock()
	} else if !cpuMu.TryLock() {
		return nil, errCPUBusy
	}
	defer cpuMu.Unlock()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, err
	}
	t := time.NewTimer(d)
	select {
	case <-t.C:
	case <-cancel:
		t.Stop()
	}
	pprof.StopCPUProfile()
	return buf.Bytes(), nil
}

// captureLookup snapshots one runtime/pprof named profile as gzipped
// protobuf (WriteTo debug=0).
func captureLookup(kind string) ([]byte, error) {
	p := pprof.Lookup(kind)
	if p == nil {
		return nil, fmt.Errorf("prof: unknown profile %q", kind)
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Artifact is one captured profile. Data is the gzipped pprof protobuf;
// the exported metadata (everything but Data) is what the ring index
// and /debug/profiles list.
type Artifact struct {
	Kind      string            `json:"kind"`
	Seq       int64             `json:"seq"`
	Time      time.Time         `json:"time"`
	Bytes     int               `json:"bytes"`
	CaptureMS float64           `json:"capture_ms"`
	Meta      map[string]string `json:"meta,omitempty"`
	Data      []byte            `json:"-"`
}

// SamplerConfig sizes a Sampler. Zero values select the documented
// defaults.
type SamplerConfig struct {
	// Interval between capture ticks (default 60s).
	Interval time.Duration
	// Ring is how many ticks of artifacts the ring retains (default 8;
	// the ring holds up to Ring*len(Kinds) artifacts).
	Ring int
	// CPUSlice is the timed CPU-profile length per tick (default 1s,
	// capped at Interval/2; negative disables CPU capture).
	CPUSlice time.Duration
	// MutexFraction is passed to runtime.SetMutexProfileFraction on
	// Start (default 5; negative leaves the process setting untouched).
	MutexFraction int
	// BlockRate is passed to runtime.SetBlockProfileRate on Start, in
	// nanoseconds per sampled blocking event (default 100µs; negative
	// leaves the process setting untouched).
	BlockRate int
}

// Sampler periodically captures compressed pprof snapshots into a
// bounded in-memory ring, so the moment an anomaly is noticed the
// recent past is already profiled. Overhead is measured, not guessed:
// cumulative capture work is tracked against wall time and exposed as
// dav_prof_overhead_ratio (the CPU-slice portion costs sampling
// interrupts, not sampler CPU, and is reported separately as duty
// cycle). All methods are safe for concurrent use.
type Sampler struct {
	cfg SamplerConfig

	mu        sync.Mutex
	ring      []Artifact // oldest first
	seq       int64
	captures  map[string]int64
	errors    map[string]int64
	lastBytes map[string]int
	busy      time.Duration // cumulative non-slice capture work
	started   time.Time     // overhead denominator epoch
	prevAlloc uint64        // TotalAlloc at the previous heap capture

	stop chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler; call Start for the periodic loop, or
// drive CaptureNow directly (tests, benchmarks).
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = 60 * time.Second
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 8
	}
	if cfg.CPUSlice == 0 {
		cfg.CPUSlice = time.Second
	}
	if cfg.CPUSlice > cfg.Interval/2 {
		cfg.CPUSlice = cfg.Interval / 2
	}
	if cfg.MutexFraction == 0 {
		cfg.MutexFraction = 5
	}
	if cfg.BlockRate == 0 {
		cfg.BlockRate = 100_000 // sample blocking events >= ~100µs
	}
	return &Sampler{
		cfg:       cfg,
		captures:  map[string]int64{},
		errors:    map[string]int64{},
		lastBytes: map[string]int{},
		started:   time.Now(),
	}
}

// Config returns the sampler's effective configuration.
func (s *Sampler) Config() SamplerConfig { return s.cfg }

// Start enables the mutex/block runtime fractions, takes an immediate
// capture, and begins the periodic loop. Starting an already-started
// sampler is a no-op.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.started = time.Now()
	s.mu.Unlock()

	if s.cfg.MutexFraction >= 0 {
		runtime.SetMutexProfileFraction(s.cfg.MutexFraction)
	}
	if s.cfg.BlockRate >= 0 {
		runtime.SetBlockProfileRate(s.cfg.BlockRate)
	}
	go func() {
		defer close(done)
		s.capture(stop)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.capture(stop)
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the loop, waits for any in-flight capture, and restores
// the mutex/block fractions to off. The ring keeps its contents. Safe
// on a never-started sampler.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	if s.cfg.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(0)
	}
	if s.cfg.BlockRate > 0 {
		runtime.SetBlockProfileRate(0)
	}
}

// CaptureNow takes one full capture tick synchronously and returns the
// artifacts appended to the ring (the CPU slice is skipped when another
// capture holds the profiler). The periodic loop calls this; tests and
// benchmarks can too.
func (s *Sampler) CaptureNow() []Artifact {
	return s.capture(nil)
}

// capture runs one tick: the timed CPU slice first (skipped rather
// than queued when contended), then the point-in-time lookups.
func (s *Sampler) capture(cancel <-chan struct{}) []Artifact {
	var out []Artifact
	if s.cfg.CPUSlice > 0 {
		start := time.Now()
		data, err := captureCPU(s.cfg.CPUSlice, false, cancel)
		if err != nil {
			s.noteError(KindCPU)
		} else {
			out = append(out, s.finish(KindCPU, data, time.Since(start), nil))
		}
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.mu.Lock()
	prev := s.prevAlloc
	s.prevAlloc = m.TotalAlloc
	s.mu.Unlock()
	heapMeta := map[string]string{
		"heap_alloc_bytes":  fmt.Sprint(m.HeapAlloc),
		"alloc_bytes_delta": fmt.Sprint(m.TotalAlloc - prev),
	}
	for _, kind := range []string{KindHeap, KindGoroutine, KindMutex, KindBlock} {
		start := time.Now()
		data, err := captureLookup(kind)
		if err != nil {
			s.noteError(kind)
			continue
		}
		var meta map[string]string
		if kind == KindHeap {
			meta = heapMeta
		}
		out = append(out, s.finish(kind, data, time.Since(start), meta))
	}
	return out
}

// finish records one successful capture into the ring and counters.
func (s *Sampler) finish(kind string, data []byte, d time.Duration, meta map[string]string) Artifact {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	a := Artifact{
		Kind:      kind,
		Seq:       s.seq,
		Time:      time.Now(),
		Bytes:     len(data),
		CaptureMS: float64(d) / float64(time.Millisecond),
		Meta:      meta,
		Data:      data,
	}
	s.ring = append(s.ring, a)
	if max := s.cfg.Ring * len(Kinds); len(s.ring) > max {
		s.ring = append([]Artifact(nil), s.ring[len(s.ring)-max:]...)
	}
	s.captures[kind]++
	s.lastBytes[kind] = len(data)
	// The CPU slice is mostly waiting for the profiler's sampling
	// interrupts, not sampler work; count only the non-slice remainder
	// as busy time so the overhead ratio reflects actual cost.
	busy := d
	if kind == KindCPU && busy > s.cfg.CPUSlice {
		busy -= s.cfg.CPUSlice
	} else if kind == KindCPU {
		busy = 0
	}
	s.busy += busy
	return a
}

// noteError counts one failed capture.
func (s *Sampler) noteError(kind string) {
	s.mu.Lock()
	s.errors[kind]++
	s.mu.Unlock()
}

// Artifacts returns the retained artifacts, oldest first.
func (s *Sampler) Artifacts() []Artifact {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Artifact(nil), s.ring...)
}

// Latest returns the freshest retained artifact of the given kind.
func (s *Sampler) Latest(kind string) (Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.ring) - 1; i >= 0; i-- {
		if s.ring[i].Kind == kind {
			return s.ring[i], true
		}
	}
	return Artifact{}, false
}

// Find returns the retained artifact with the given sequence number.
func (s *Sampler) Find(seq int64) (Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.ring) - 1; i >= 0; i-- {
		if s.ring[i].Seq == seq {
			return s.ring[i], true
		}
	}
	return Artifact{}, false
}

// Stats is a point-in-time summary of the sampler's counters.
type Stats struct {
	Captures      map[string]int64 `json:"captures"`
	Errors        map[string]int64 `json:"errors,omitempty"`
	RingArtifacts int              `json:"ring_artifacts"`
	RingBytes     int              `json:"ring_bytes"`
	// OverheadRatio is cumulative capture work over wall time since
	// Start — the measured cost of continuous profiling, excluding the
	// CPU slice's sampling-interrupt duty cycle (see CPUDutyCycle).
	OverheadRatio float64 `json:"overhead_ratio"`
	// CPUDutyCycle is CPUSlice/Interval: the fraction of wall time the
	// CPU profiler's ~100 Hz sampling interrupts are enabled.
	CPUDutyCycle float64 `json:"cpu_duty_cycle"`
}

// Stats returns the sampler's counters.
func (s *Sampler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Captures:      map[string]int64{},
		Errors:        map[string]int64{},
		RingArtifacts: len(s.ring),
	}
	for k, v := range s.captures {
		st.Captures[k] = v
	}
	for k, v := range s.errors {
		st.Errors[k] = v
	}
	for _, a := range s.ring {
		st.RingBytes += a.Bytes
	}
	if wall := time.Since(s.started); wall > 0 {
		st.OverheadRatio = float64(s.busy) / float64(wall)
	}
	if s.cfg.CPUSlice > 0 {
		st.CPUDutyCycle = float64(s.cfg.CPUSlice) / float64(s.cfg.Interval)
	}
	return st
}

// Register exposes the sampler as dav_prof_* metrics, read at scrape
// time: per-kind capture/error counts and freshest artifact sizes, the
// ring occupancy, and the measured overhead ratio.
func (s *Sampler) Register(r *obs.Registry) {
	for _, kind := range Kinds {
		kind := kind
		l := obs.Labels{"kind": kind}
		r.GaugeFunc("dav_prof_captures_total",
			"Profile captures completed, by kind (cumulative).", l,
			func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.captures[kind]) })
		r.GaugeFunc("dav_prof_capture_errors_total",
			"Profile captures that failed or were skipped under contention, by kind (cumulative).", l,
			func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.errors[kind]) })
		r.GaugeFunc("dav_prof_last_bytes",
			"Compressed size of the freshest captured profile, by kind.", l,
			func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.lastBytes[kind]) })
	}
	r.GaugeFunc("dav_prof_ring_artifacts",
		"Profiles currently retained in the in-memory ring.", nil,
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.ring)) })
	r.GaugeFunc("dav_prof_ring_bytes",
		"Total compressed bytes retained in the profile ring.", nil,
		func() float64 { return float64(s.Stats().RingBytes) })
	r.GaugeFunc("dav_prof_overhead_ratio",
		"Measured continuous-profiling overhead: cumulative capture work over wall time.", nil,
		func() float64 { return s.Stats().OverheadRatio })
	r.GaugeFunc("dav_prof_interval_seconds",
		"Configured interval between profile capture ticks.", nil,
		func() float64 { return s.cfg.Interval.Seconds() })
}
