package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// quickSampler returns a sampler sized for tests: tiny CPU slice so a
// capture tick is fast.
func quickSampler(ring int) *Sampler {
	return NewSampler(SamplerConfig{
		Interval: time.Second,
		Ring:     ring,
		CPUSlice: 20 * time.Millisecond,
	})
}

// gunzipAll decompresses a gzipped pprof artifact; every profile the
// sampler stores must round-trip.
func gunzipAll(t *testing.T, data []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("gzip.NewReader: %v", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	return out
}

func TestCaptureNowProducesAllKinds(t *testing.T) {
	s := quickSampler(4)
	arts := s.CaptureNow()
	byKind := map[string]Artifact{}
	for _, a := range arts {
		byKind[a.Kind] = a
	}
	for _, kind := range Kinds {
		a, ok := byKind[kind]
		if !ok {
			t.Errorf("kind %s missing from capture", kind)
			continue
		}
		if len(a.Data) == 0 {
			t.Errorf("kind %s: empty artifact", kind)
			continue
		}
		if raw := gunzipAll(t, a.Data); len(raw) == 0 {
			t.Errorf("kind %s: empty decompressed profile", kind)
		}
	}
	if a, ok := s.Latest(KindHeap); !ok {
		t.Error("Latest(heap) empty after capture")
	} else if a.Meta["heap_alloc_bytes"] == "" || a.Meta["alloc_bytes_delta"] == "" {
		t.Errorf("heap meta missing: %v", a.Meta)
	}
}

func TestRingEviction(t *testing.T) {
	s := quickSampler(2) // retains 2 ticks = 2*len(Kinds) artifacts
	for i := 0; i < 4; i++ {
		s.CaptureNow()
	}
	arts := s.Artifacts()
	if max := 2 * len(Kinds); len(arts) > max {
		t.Fatalf("ring holds %d artifacts, cap is %d", len(arts), max)
	}
	// Oldest retained sequence must be from the later ticks.
	if arts[0].Seq <= int64(len(Kinds)) {
		t.Errorf("oldest retained seq %d; first tick should be evicted", arts[0].Seq)
	}
	// Find resolves retained sequences and misses evicted ones.
	if _, ok := s.Find(arts[0].Seq); !ok {
		t.Error("Find missed a retained artifact")
	}
	if _, ok := s.Find(1); ok {
		t.Error("Find returned an evicted artifact")
	}
	st := s.Stats()
	if st.Captures[KindHeap] != 4 {
		t.Errorf("heap captures = %d, want 4 (eviction must not reset counters)", st.Captures[KindHeap])
	}
	if st.RingBytes <= 0 {
		t.Errorf("RingBytes = %d", st.RingBytes)
	}
}

func TestCPUContentionSkips(t *testing.T) {
	// Hold the CPU profiler the way a concurrent capture would; the
	// sampler must skip its CPU slice (counted as an error) but still
	// deliver the point-in-time kinds.
	cpuMu.Lock()
	s := quickSampler(2)
	arts := s.CaptureNow()
	cpuMu.Unlock()
	for _, a := range arts {
		if a.Kind == KindCPU {
			t.Fatal("CPU artifact captured while the profiler was held")
		}
	}
	if len(arts) != len(Kinds)-1 {
		t.Errorf("got %d artifacts, want %d", len(arts), len(Kinds)-1)
	}
	if s.Stats().Errors[KindCPU] != 1 {
		t.Errorf("cpu errors = %d, want 1", s.Stats().Errors[KindCPU])
	}
}

func TestSamplerStartStop(t *testing.T) {
	s := NewSampler(SamplerConfig{
		Interval: 50 * time.Millisecond,
		Ring:     2,
		CPUSlice: 5 * time.Millisecond,
	})
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Captures[KindGoroutine] < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	if got := s.Stats().Captures[KindGoroutine]; got < 2 {
		t.Fatalf("goroutine captures = %d, want >= 2", got)
	}
	if len(s.Artifacts()) == 0 {
		t.Fatal("ring empty after Stop")
	}
}

// TestSamplerConcurrent drives overlapping captures and readers for the
// -race pass.
func TestSamplerConcurrent(t *testing.T) {
	s := quickSampler(2)
	s.Start()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				s.CaptureNow()
				s.Artifacts()
				s.Latest(KindHeap)
				s.Stats()
			}
		}()
	}
	wg.Wait()
	s.Stop()
}

func TestSamplerRegister(t *testing.T) {
	s := quickSampler(2)
	s.CaptureNow()
	r := obs.NewRegistry()
	s.Register(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dav_prof_captures_total{kind="heap"} 1`,
		"dav_prof_ring_artifacts",
		"dav_prof_ring_bytes",
		"dav_prof_overhead_ratio",
		"dav_prof_interval_seconds 1",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
	if err := obs.CheckExposition([]byte(sb.String())); err != nil {
		t.Errorf("CheckExposition: %v", err)
	}
}

func TestProfilesHandler(t *testing.T) {
	s := quickSampler(2)
	arts := s.CaptureNow()
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("index = %d, body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles?format=json", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ring_artifacts"`) {
		t.Errorf("json index = %d, body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles?seq=1", nil))
	if rec.Code != 200 || !bytes.Equal(rec.Body.Bytes(), arts[0].Data) {
		t.Errorf("download = %d, %d bytes (want %d)", rec.Code, rec.Body.Len(), len(arts[0].Data))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles?seq=999", nil))
	if rec.Code != 404 {
		t.Errorf("missing seq = %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles?seq=abc", nil))
	if rec.Code != 400 {
		t.Errorf("bad seq = %d, want 400", rec.Code)
	}
}
