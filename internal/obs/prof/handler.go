package prof

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Handler serves the profile ring on the admin listener (mount at
// /debug/profiles):
//
//	GET /debug/profiles               HTML index of retained profiles
//	GET /debug/profiles?seq=<n>       one artifact as raw .pb.gz
//	GET /debug/profiles?format=json   the ring index plus sampler stats
func (s *Sampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch {
		case req.URL.Query().Get("seq") != "":
			seq, err := strconv.ParseInt(req.URL.Query().Get("seq"), 10, 64)
			if err != nil {
				http.Error(w, "bad seq", http.StatusBadRequest)
				return
			}
			a, ok := s.Find(seq)
			if !ok {
				http.Error(w, "profile not found (evicted or never captured)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%s-%03d.pb.gz", a.Kind, a.Seq))
			w.Write(a.Data)
		case req.URL.Query().Get("format") == "json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Stats     Stats      `json:"stats"`
				Artifacts []Artifact `json:"artifacts"`
			}{s.Stats(), s.Artifacts()})
		default:
			s.serveIndex(w)
		}
	})
}

// serveIndex renders the profile-ring table, newest first.
func (s *Sampler) serveIndex(w http.ResponseWriter) {
	arts := s.Artifacts()
	st := s.Stats()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<html><head><title>profiles</title></head><body>\n<h1>Continuous profiling</h1>\n")
	fmt.Fprintf(&b, "<p>%d retained (%d bytes), overhead %.4f%%, cpu duty cycle %.2f%% "+
		"(<a href=\"?format=json\">json</a>)</p>\n",
		st.RingArtifacts, st.RingBytes, 100*st.OverheadRatio, 100*st.CPUDutyCycle)
	b.WriteString("<table border=1 cellpadding=4>\n" +
		"<tr><th>seq</th><th>kind</th><th>time</th><th>bytes</th><th>capture ms</th><th>meta</th></tr>\n")
	for i := len(arts) - 1; i >= 0; i-- {
		a := arts[i]
		meta := ""
		for k, v := range a.Meta {
			meta += k + "=" + v + " "
		}
		fmt.Fprintf(&b, "<tr><td><a href=\"?seq=%d\">%d</a></td><td>%s</td>"+
			"<td>%s</td><td>%d</td><td>%.2f</td><td>%s</td></tr>\n",
			a.Seq, a.Seq, a.Kind, a.Time.UTC().Format("2006-01-02T15:04:05Z"),
			a.Bytes, a.CaptureMS, html.EscapeString(strings.TrimSpace(meta)))
	}
	b.WriteString("</table></body></html>\n")
	io.WriteString(w, b.String())
}

// Handler serves the incident-bundle ring (mount at /debug/incidents):
//
//	GET /debug/incidents               HTML index of retained bundles
//	GET /debug/incidents?id=<id>       one bundle as tar.gz
//	GET /debug/incidents?format=json   the bundle index as JSON
func (c *Capturer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch {
		case req.URL.Query().Get("id") != "":
			b := c.Find(req.URL.Query().Get("id"))
			if b == nil {
				http.Error(w, "incident not found (evicted or never captured)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/gzip")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%s.tar.gz", b.ID))
			w.Write(b.Data)
		case req.URL.Query().Get("format") == "json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(c.Bundles())
		default:
			c.serveIndex(w)
		}
	})
}

// serveIndex renders the bundle table, newest first.
func (c *Capturer) serveIndex(w http.ResponseWriter) {
	bundles := c.Bundles()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<html><head><title>incidents</title></head><body>\n<h1>Incident bundles</h1>\n")
	fmt.Fprintf(&b, "<p>%d retained (<a href=\"?format=json\">json</a>); "+
		"POST /debug/incident triggers a manual capture</p>\n", len(bundles))
	b.WriteString("<table border=1 cellpadding=4>\n" +
		"<tr><th>id</th><th>reason</th><th>detail</th><th>time</th><th>bytes</th><th>entries</th></tr>\n")
	for _, bd := range bundles {
		fmt.Fprintf(&b, "<tr><td><a href=\"?id=%s\"><code>%s</code></a></td>"+
			"<td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td></tr>\n",
			bd.ID, bd.ID, bd.Reason, html.EscapeString(bd.Detail),
			bd.Time.UTC().Format("2006-01-02T15:04:05Z"), bd.Bytes, len(bd.Entries))
	}
	b.WriteString("</table></body></html>\n")
	io.WriteString(w, b.String())
}

// TriggerHandler serves the manual trigger (mount at /debug/incident):
// POST assembles a bundle with reason "manual" (an optional ?detail= or
// small text body becomes the manifest detail) and answers 202 with the
// bundle's JSON, or 429 when the trigger was suppressed by the rate
// limiter or dedup window. Non-POST methods get 405 so a stray crawler
// cannot burn capture budget.
func (c *Capturer) TriggerHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		detail := req.URL.Query().Get("detail")
		if detail == "" && req.Body != nil {
			body, _ := io.ReadAll(io.LimitReader(req.Body, 1024))
			detail = strings.TrimSpace(string(body))
		}
		b, ok := c.Trigger(TriggerManual, detail)
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"suppressed": true})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(b)
	})
}
