package obs

import (
	"context"
	"log"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNewRequestIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestEnsureRequestIDPrecedence(t *testing.T) {
	// Inbound header wins.
	r := httptest.NewRequest("GET", "/x", nil)
	r.Header.Set(RequestIDHeader, "abc")
	r2, id := EnsureRequestID(r)
	if id != "abc" || RequestIDFrom(r2.Context()) != "abc" {
		t.Fatalf("header id = %q (ctx %q), want abc", id, RequestIDFrom(r2.Context()))
	}

	// Context is next: a client that stamped its operation's ID into
	// the context keeps it across the hop.
	r = httptest.NewRequest("GET", "/x", nil)
	r = r.WithContext(WithRequestID(r.Context(), "ctxid"))
	_, id = EnsureRequestID(r)
	if id != "ctxid" {
		t.Fatalf("ctx id = %q, want ctxid", id)
	}

	// Nothing present: generated.
	r = httptest.NewRequest("GET", "/x", nil)
	_, id = EnsureRequestID(r)
	if id == "" {
		t.Fatal("no id generated")
	}
}

func TestEnsureRequestIDSanitizes(t *testing.T) {
	r := httptest.NewRequest("GET", "/x", nil)
	r.Header.Set(RequestIDHeader, "ok\x07"+strings.Repeat("z", 200))
	_, id := EnsureRequestID(r)
	if strings.ContainsRune(id, 0x07) {
		t.Fatalf("control byte survived in %q", id)
	}
	if len(id) > maxRequestIDLen {
		t.Fatalf("id length %d exceeds cap %d", len(id), maxRequestIDLen)
	}
	if !strings.HasPrefix(id, "ok") {
		t.Fatalf("id %q lost its legitimate prefix", id)
	}
}

func TestSlogifyShim(t *testing.T) {
	var buf strings.Builder
	std := log.New(&buf, "davd: ", 0)
	logger := Slogify(std)
	logger.With(slog.String("id", "abc")).WithGroup("req").
		Error("panic recovered", slog.String("method", "PUT"), slog.Int("status", 500))
	got := buf.String()
	for _, want := range []string{"davd: ", "ERROR", "panic recovered", "id=abc", "req.method=PUT", "req.status=500"} {
		if !strings.Contains(got, want) {
			t.Errorf("log line %q missing %q", got, want)
		}
	}
	if Slogify(nil) != nil {
		t.Error("Slogify(nil) should be nil")
	}
	// The shim must satisfy slog's contract end to end.
	logger.Log(context.Background(), slog.LevelInfo, "plain")
	if !strings.Contains(buf.String(), "INFO plain") {
		t.Errorf("plain record missing: %q", buf.String())
	}
}
