package obs

import (
	"context"
	"log"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNewRequestIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestEnsureRequestIDPrecedence(t *testing.T) {
	// Inbound header wins.
	r := httptest.NewRequest("GET", "/x", nil)
	r.Header.Set(RequestIDHeader, "abc")
	r2, id := EnsureRequestID(r)
	if id != "abc" || RequestIDFrom(r2.Context()) != "abc" {
		t.Fatalf("header id = %q (ctx %q), want abc", id, RequestIDFrom(r2.Context()))
	}

	// Context is next: a client that stamped its operation's ID into
	// the context keeps it across the hop.
	r = httptest.NewRequest("GET", "/x", nil)
	r = r.WithContext(WithRequestID(r.Context(), "ctxid"))
	_, id = EnsureRequestID(r)
	if id != "ctxid" {
		t.Fatalf("ctx id = %q, want ctxid", id)
	}

	// Nothing present: generated.
	r = httptest.NewRequest("GET", "/x", nil)
	_, id = EnsureRequestID(r)
	if id == "" {
		t.Fatal("no id generated")
	}
}

func TestEnsureRequestIDSanitizes(t *testing.T) {
	// Malformed inbound IDs are rejected outright and a fresh ID is
	// minted — no attacker-controlled bytes are echoed, not even a
	// "clean" prefix of them.
	for _, bad := range []string{
		"ok\x07evil",                 // control byte
		strings.Repeat("z", 200),     // oversized
		"with space",                 // forbidden charset
		"semi;colon",                 // header-injection material
		"new\nline",                  // CRLF injection
		"\"quoted\"",                 // log-forgery material
		"ünïcode",                    // non-ASCII
		"0af7651916cd43dd8448eb211c", // fine, see below
	} {
		r := httptest.NewRequest("GET", "/x", nil)
		r.Header.Set(RequestIDHeader, bad)
		_, id := EnsureRequestID(r)
		if bad == "0af7651916cd43dd8448eb211c" {
			if id != bad {
				t.Fatalf("well-formed id %q rejected (got %q)", bad, id)
			}
			continue
		}
		if len(id) != 16 {
			t.Fatalf("replacement for %q is %q, want a fresh 16-hex id", bad, id)
		}
		if strings.Contains(bad, id) {
			t.Fatalf("replacement %q echoes part of malformed input %q", id, bad)
		}
	}
}

func TestCleanRequestIDPolicy(t *testing.T) {
	for in, want := range map[string]string{
		"abc123":                "abc123",
		"A-b_c.9":               "A-b_c.9",
		"  padded  ":            "padded", // surrounding whitespace is not identity
		"":                      "",
		"has space":             "",
		"a\x00b":                "",
		"trailing\r":            "trailing", // outer whitespace trimmed, like padded
		"inner\rcr":             "",
		strings.Repeat("x", 64): strings.Repeat("x", 64),
		strings.Repeat("x", 65): "",
	} {
		if got := CleanRequestID(in); got != want {
			t.Errorf("CleanRequestID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSlogifyShim(t *testing.T) {
	var buf strings.Builder
	std := log.New(&buf, "davd: ", 0)
	logger := Slogify(std)
	logger.With(slog.String("id", "abc")).WithGroup("req").
		Error("panic recovered", slog.String("method", "PUT"), slog.Int("status", 500))
	got := buf.String()
	for _, want := range []string{"davd: ", "ERROR", "panic recovered", "id=abc", "req.method=PUT", "req.status=500"} {
		if !strings.Contains(got, want) {
			t.Errorf("log line %q missing %q", got, want)
		}
	}
	if Slogify(nil) != nil {
		t.Error("Slogify(nil) should be nil")
	}
	// The shim must satisfy slog's contract end to end.
	logger.Log(context.Background(), slog.LevelInfo, "plain")
	if !strings.Contains(buf.String(), "INFO plain") {
		t.Errorf("plain record missing: %q", buf.String())
	}
}
