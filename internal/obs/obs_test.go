package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the inclusive-le semantics: an
// observation equal to a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	cases := []struct {
		v      float64
		bucket int // index into counts
	}{
		{0.5, 0}, // below first bound
		{1, 0},   // exactly on a bound is inside it
		{1.001, 1},
		{2, 1},
		{4.999, 2},
		{5, 2},
		{5.001, 3}, // +Inf overflow bucket
		{1e9, 3},
	}
	for _, c := range cases {
		before := h.counts[c.bucket].Load()
		h.Observe(c.v)
		if got := h.counts[c.bucket].Load(); got != before+1 {
			t.Errorf("Observe(%v): bucket %d count = %d, want %d", c.v, c.bucket, got, before+1)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}
	wantSum := 0.0
	for _, c := range cases {
		wantSum += c.v
	}
	if h.Sum() != wantSum {
		t.Errorf("Sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestConcurrentRecording exercises every metric kind from many
// goroutines while a scraper renders, for the race detector.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			method := fmt.Sprintf("M%d", w%3)
			for i := 0; i < iters; i++ {
				r.Counter("reqs_total", "", Labels{"method": method}).Inc()
				r.Gauge("inflight", "", nil).Add(1)
				r.Histogram("latency_seconds", "", Labels{"method": method}, DefBuckets).
					Observe(float64(i) / 1000)
				r.Gauge("inflight", "", nil).Add(-1)
			}
		}(w)
	}
	// Concurrent scrapes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			r.Snapshot()
		}
	}()
	wg.Wait()

	total := int64(0)
	for _, m := range []string{"M0", "M1", "M2"} {
		total += r.Counter("reqs_total", "", Labels{"method": m}).Value()
	}
	if total != workers*iters {
		t.Errorf("counter total = %d, want %d", total, workers*iters)
	}
	if g := r.Gauge("inflight", "", nil).Value(); g != 0 {
		t.Errorf("inflight after quiesce = %v, want 0", g)
	}
}

// TestPrometheusGolden pins the exact exposition rendering.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dav_requests_total", "DAV requests served.", Labels{"method": "GET", "class": "2xx"}).Add(3)
	r.Counter("dav_requests_total", "DAV requests served.", Labels{"method": "PUT", "class": "5xx"}).Inc()
	r.Gauge("dav_inflight_requests", "In-flight requests.", nil).Set(2)
	r.GaugeFunc("dav_locks_active", "Lock table size.", nil, func() float64 { return 4 })
	h := r.Histogram("dav_request_duration_seconds", "Request latency.", Labels{"method": "GET"}, []float64{0.1, 0.5, 2.5})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP dav_inflight_requests In-flight requests.`,
		`# TYPE dav_inflight_requests gauge`,
		`dav_inflight_requests 2`,
		`# HELP dav_locks_active Lock table size.`,
		`# TYPE dav_locks_active gauge`,
		`dav_locks_active 4`,
		`# HELP dav_request_duration_seconds Request latency.`,
		`# TYPE dav_request_duration_seconds histogram`,
		`dav_request_duration_seconds_bucket{method="GET",le="0.1"} 1`,
		`dav_request_duration_seconds_bucket{method="GET",le="0.5"} 2`,
		`dav_request_duration_seconds_bucket{method="GET",le="2.5"} 2`,
		`dav_request_duration_seconds_bucket{method="GET",le="+Inf"} 3`,
		`dav_request_duration_seconds_sum{method="GET"} 3.55`,
		`dav_request_duration_seconds_count{method="GET"} 3`,
		`# HELP dav_requests_total DAV requests served.`,
		`# TYPE dav_requests_total counter`,
		`dav_requests_total{class="2xx",method="GET"} 3`,
		`dav_requests_total{class="5xx",method="PUT"} 1`,
		``,
	}, "\n")
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
	if err := CheckExposition([]byte(sb.String())); err != nil {
		t.Errorf("golden exposition fails CheckExposition: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", Labels{"path": "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `c_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped label missing; got:\n%s", sb.String())
	}
	if err := CheckExposition([]byte(sb.String())); err != nil {
		t.Errorf("CheckExposition: %v", err)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "", nil)
}

func TestDefBucketsHaveAtLeastEight(t *testing.T) {
	// The acceptance criteria require latency histograms with >= 8
	// buckets; the defaults must satisfy that with room to spare.
	if len(DefBuckets) < 8 {
		t.Fatalf("DefBuckets has %d buckets, want >= 8", len(DefBuckets))
	}
	if len(SizeBuckets) < 8 {
		t.Fatalf("SizeBuckets has %d buckets, want >= 8", len(SizeBuckets))
	}
}

func TestCheckExposition(t *testing.T) {
	bad := []string{
		"",
		"   \n\n",
		"# TYPE x counter\n",                     // no samples
		"x_total 1\n",                            // no TYPE
		"# TYPE x counter\nx_total notanumber\n", // bad value
		"# TYPE x counter\n1bad{a=\"b\"} 1\n",    // bad name
		"# TYPE x counter\nx_total{a=\"b\" 1\n",  // unterminated labels
		"# TYPE x wat\nx_total 1\n",              // unknown kind
	}
	for _, c := range bad {
		if err := CheckExposition([]byte(c)); err == nil {
			t.Errorf("CheckExposition(%q) = nil, want error", c)
		}
	}
	good := "# HELP x_total things\n# TYPE x counter\nx_total{a=\"b\"} 1\nx_sum 2.5\n"
	if err := CheckExposition([]byte(good)); err != nil {
		t.Errorf("CheckExposition(good) = %v", err)
	}
}
