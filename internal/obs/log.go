package obs

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"strings"
)

// NewLogger builds a text-format slog.Logger writing to w at the given
// minimum level — the daemon's standard logger shape.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Slogify adapts a legacy *log.Logger into a *slog.Logger — the
// compatibility shim for call sites that still construct std loggers.
// Records render as "LEVEL msg key=value ...", one Print per record,
// so existing prefixes and flags keep applying. A nil input yields nil
// (callers treat a nil logger as "discard").
func Slogify(l *log.Logger) *slog.Logger {
	if l == nil {
		return nil
	}
	return slog.New(&stdHandler{l: l})
}

// stdHandler formats slog records onto a *log.Logger.
type stdHandler struct {
	l      *log.Logger
	attrs  string // preformatted WithAttrs pairs
	prefix string // dotted WithGroup prefix
}

// Enabled reports whether the level is logged (everything at or above
// Debug; the std logger has no level concept to defer to).
func (h *stdHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelDebug
}

// Handle renders one record.
func (h *stdHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	b.WriteString(rec.Level.String())
	b.WriteByte(' ')
	b.WriteString(rec.Message)
	b.WriteString(h.attrs)
	rec.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, h.prefix, a)
		return true
	})
	h.l.Print(b.String())
	return nil
}

// WithAttrs returns a handler with the attrs preformatted.
func (h *stdHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	b.WriteString(h.attrs)
	for _, a := range attrs {
		appendAttr(&b, h.prefix, a)
	}
	return &stdHandler{l: h.l, attrs: b.String(), prefix: h.prefix}
}

// WithGroup returns a handler qualifying subsequent keys with name.
func (h *stdHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	return &stdHandler{l: h.l, attrs: h.attrs, prefix: h.prefix + name + "."}
}

// appendAttr renders one attribute as " key=value", quoting values
// containing spaces.
func appendAttr(b *strings.Builder, prefix string, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		for _, ga := range v.Group() {
			appendAttr(b, prefix+a.Key+".", ga)
		}
		return
	}
	s := v.String()
	if strings.ContainsAny(s, " \t\n\"") {
		s = fmt.Sprintf("%q", s)
	}
	fmt.Fprintf(b, " %s%s=%s", prefix, a.Key, s)
}
