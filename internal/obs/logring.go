package obs

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
)

// LogRing keeps the last N formatted log lines in memory so the tail
// is available without shell access to the host: served at /debug/logs
// on the admin listener and embedded into incident bundles. Lines are
// whatever the teed slog handler renders, so the ring matches stderr
// byte for byte.
type LogRing struct {
	mu    sync.Mutex
	lines []string
	next  int   // ring write position
	full  bool  // wrapped at least once
	total int64 // lines ever appended
}

// NewLogRing returns a ring holding up to n lines (default 256 when
// n <= 0).
func NewLogRing(n int) *LogRing {
	if n <= 0 {
		n = 256
	}
	return &LogRing{lines: make([]string, n)}
}

// Write appends p (one formatted log record per call, as slog's
// TextHandler emits) as a line. Implements io.Writer so the ring sits
// behind a standard handler.
func (r *LogRing) Write(p []byte) (int, error) {
	line := string(bytes.TrimRight(p, "\n"))
	r.mu.Lock()
	r.lines[r.next] = line
	r.next++
	if r.next == len(r.lines) {
		r.next, r.full = 0, true
	}
	r.total++
	r.mu.Unlock()
	return len(p), nil
}

// Tail returns up to n of the most recent lines, oldest first. n <= 0
// means all retained lines.
func (r *LogRing) Tail(n int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	if r.full {
		out = append(out, r.lines[r.next:]...)
		out = append(out, r.lines[:r.next]...)
	} else {
		out = append(out, r.lines[:r.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Bytes returns the retained tail as newline-terminated text (the
// incident-bundle logs.txt payload).
func (r *LogRing) Bytes() []byte {
	var b bytes.Buffer
	for _, l := range r.Tail(0) {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// Total reports how many lines have ever been appended (retained or
// evicted).
func (r *LogRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Handler serves the tail as plain text (mount at /debug/logs);
// ?n=<count> limits to the last count lines.
func (r *LogRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, l := range r.Tail(n) {
			io.WriteString(w, l)
			io.WriteString(w, "\n")
		}
	})
}

// teeHandler fans one slog record out to two handlers.
type teeHandler struct{ a, b slog.Handler }

func (t teeHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return t.a.Enabled(ctx, l) || t.b.Enabled(ctx, l)
}

func (t teeHandler) Handle(ctx context.Context, rec slog.Record) error {
	var err error
	if t.a.Enabled(ctx, rec.Level) {
		err = t.a.Handle(ctx, rec.Clone())
	}
	if t.b.Enabled(ctx, rec.Level) {
		if e := t.b.Handle(ctx, rec.Clone()); err == nil {
			err = e
		}
	}
	return err
}

func (t teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return teeHandler{t.a.WithAttrs(attrs), t.b.WithAttrs(attrs)}
}

func (t teeHandler) WithGroup(name string) slog.Handler {
	return teeHandler{t.a.WithGroup(name), t.b.WithGroup(name)}
}

// Tee wraps inner so every record it would emit is also rendered into
// the ring (as text, at Debug level and up so the ring retains more
// context than a quieter primary handler shows).
func (r *LogRing) Tee(inner slog.Handler) slog.Handler {
	ringSide := slog.NewTextHandler(r, &slog.HandlerOptions{Level: slog.LevelDebug})
	return teeHandler{inner, ringSide}
}
