package obs

import (
	"strings"
	"testing"
)

// TestExemplarGolden pins the exemplar-enabled exposition rendering:
// buckets that saw a traced observation carry the OpenMetrics-style
// suffix, the rest (and _sum/_count) are unchanged.
func TestExemplarGolden(t *testing.T) {
	r := NewRegistry()
	r.SetExemplars(true)
	h := r.Histogram("dav_request_duration_seconds", "Request latency.",
		Labels{"method": "GET"}, []float64{0.1, 0.5, 2.5})
	h.ObserveEx(0.05, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.Observe(0.5) // untraced: no exemplar on the 0.5 bucket
	h.ObserveEx(3, "00f067aa0ba902b7aa0ba902b7000001")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP dav_request_duration_seconds Request latency.`,
		`# TYPE dav_request_duration_seconds histogram`,
		`dav_request_duration_seconds_bucket{method="GET",le="0.1"} 1 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.05`,
		`dav_request_duration_seconds_bucket{method="GET",le="0.5"} 2`,
		`dav_request_duration_seconds_bucket{method="GET",le="2.5"} 2`,
		`dav_request_duration_seconds_bucket{method="GET",le="+Inf"} 3 # {trace_id="00f067aa0ba902b7aa0ba902b7000001"} 3`,
		`dav_request_duration_seconds_sum{method="GET"} 3.55`,
		`dav_request_duration_seconds_count{method="GET"} 3`,
		``,
	}, "\n")
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
	if err := CheckExposition([]byte(sb.String())); err != nil {
		t.Errorf("exemplar exposition fails CheckExposition: %v", err)
	}
}

// TestExemplarsOffByDefault verifies ObserveEx records observations but
// emits no exemplar suffix unless the registry opts in, so the PR 2
// golden rendering is untouched.
func TestExemplarsOffByDefault(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "", Labels{"m": "GET"}, []float64{1})
	h.ObserveEx(0.5, "4bf92f3577b34da6a3ce929d0e0e4736")
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if strings.Contains(sb.String(), "trace_id") {
		t.Errorf("exemplar emitted with SetExemplars off:\n%s", sb.String())
	}
	if h.Count() != 1 {
		t.Errorf("Count = %d, want 1", h.Count())
	}
	// Flipping the option on exposes the already-recorded exemplar.
	r.SetExemplars(true)
	sb.Reset()
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.5`) {
		t.Errorf("exemplar missing after SetExemplars(true):\n%s", sb.String())
	}
}

// TestObserveExLastWriterWins verifies the freshest traced observation
// per bucket is the one retained.
func TestObserveExLastWriterWins(t *testing.T) {
	r := NewRegistry()
	r.SetExemplars(true)
	h := r.Histogram("d_seconds", "", nil, []float64{1})
	h.ObserveEx(0.3, "older")
	h.ObserveEx(0.7, "newer")
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `# {trace_id="newer"} 0.7`) {
		t.Errorf("freshest exemplar missing:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "older") {
		t.Errorf("stale exemplar survived:\n%s", sb.String())
	}
}

// TestCheckExemplarRejects verifies CheckExposition still catches
// malformed exemplar suffixes.
func TestCheckExemplarRejects(t *testing.T) {
	for _, bad := range []string{
		"# TYPE x histogram\nx_bucket{le=\"1\"} 2 # trace_id no braces\n",
		"# TYPE x histogram\nx_bucket{le=\"1\"} 2 # {trace_id=\"a\"\n",
		"# TYPE x histogram\nx_bucket{le=\"1\"} 2 # {trace_id=\"a\"} notanumber\n",
		"# TYPE x histogram\nx_bucket{le=\"1\"} 2 # {trace_id=\"a\"}\n",
	} {
		if err := CheckExposition([]byte(bad)); err == nil {
			t.Errorf("CheckExposition accepted malformed exemplar %q", bad)
		}
	}
}
