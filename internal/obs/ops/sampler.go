package ops

import (
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// Sample is one point-in-time snapshot of process health. The sampler
// keeps a ring of them so /debug/status can render a trend, and the
// latest one backs the dav_runtime_* gauges.
type Sample struct {
	Time                time.Time `json:"time"`
	Goroutines          int       `json:"goroutines"`
	HeapAllocBytes      uint64    `json:"heap_alloc_bytes"`
	HeapSysBytes        uint64    `json:"heap_sys_bytes"`
	HeapObjects         uint64    `json:"heap_objects"`
	GCPauseTotalSeconds float64   `json:"gc_pause_total_seconds"`
	GCCPUFraction       float64   `json:"gc_cpu_fraction"`
	GCRuns              uint32    `json:"gc_runs"`
	OpenFDs             int       `json:"open_fds"` // -1 when the platform offers no cheap count
	SchedLatencySeconds float64   `json:"sched_latency_seconds"`
}

// SamplerConfig sizes a Sampler.
type SamplerConfig struct {
	// Interval between samples (default 10s).
	Interval time.Duration
	// Ring is how many samples the trend buffer retains (default 120 —
	// twenty minutes at the default interval).
	Ring int
}

// Sampler periodically snapshots runtime health into a ring buffer and
// exposes the latest snapshot as gauges. The cost per tick is one
// runtime.ReadMemStats (a brief stop-the-world on large heaps — keep
// the interval in seconds, not milliseconds, on production daemons),
// one /proc read, and a ~1ms scheduler-latency probe that blocks only
// the sampler's own goroutine.
type Sampler struct {
	interval time.Duration
	probe    time.Duration // scheduler-latency probe sleep

	mu    sync.Mutex
	ring  []Sample
	next  int
	count int64 // samples taken, cumulative

	stop chan struct{}
	done chan struct{}
}

// schedProbe is the nominal sleep whose overshoot proxies scheduler
// latency: a loaded scheduler (or a CPU-starved cgroup) wakes the
// sampler late, and the overshoot is what every other goroutine's
// timers are experiencing too.
const schedProbe = time.Millisecond

// NewSampler builds a sampler; call Start to begin ticking.
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 120
	}
	return &Sampler{
		interval: cfg.Interval,
		probe:    schedProbe,
		ring:     make([]Sample, 0, cfg.Ring),
	}
}

// Interval returns the configured sampling interval.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start takes an immediate sample and begins the periodic loop.
// Starting an already-started sampler is a no-op.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()

	s.SampleNow()
	go func() {
		defer close(done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.SampleNow()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit. The ring and gauges
// keep their last values. Safe to call on a never-started sampler.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// SampleNow takes one sample synchronously, appends it to the ring, and
// returns it. The periodic loop calls this; tests and benchmarks can
// too.
func (s *Sampler) SampleNow() Sample {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)

	// Scheduler-latency probe: how late does a 1ms timer fire?
	start := time.Now()
	time.Sleep(s.probe)
	over := time.Since(start) - s.probe
	if over < 0 {
		over = 0
	}

	sm := Sample{
		Time:                time.Now(),
		Goroutines:          runtime.NumGoroutine(),
		HeapAllocBytes:      m.HeapAlloc,
		HeapSysBytes:        m.HeapSys,
		HeapObjects:         m.HeapObjects,
		GCPauseTotalSeconds: float64(m.PauseTotalNs) / 1e9,
		GCCPUFraction:       m.GCCPUFraction,
		GCRuns:              m.NumGC,
		OpenFDs:             countOpenFDs(),
		SchedLatencySeconds: over.Seconds(),
	}

	s.mu.Lock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, sm)
	} else {
		s.ring[s.next] = sm
		s.next = (s.next + 1) % cap(s.ring)
	}
	s.count++
	s.mu.Unlock()
	return sm
}

// Latest returns the most recent sample, or ok=false before the first
// one.
func (s *Sampler) Latest() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return Sample{}, false
	}
	i := s.next - 1
	if i < 0 {
		i = len(s.ring) - 1
	}
	if len(s.ring) < cap(s.ring) {
		i = len(s.ring) - 1
	}
	return s.ring[i], true
}

// Trend returns the retained samples oldest-first.
func (s *Sampler) Trend() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.ring))
	if len(s.ring) < cap(s.ring) {
		out = append(out, s.ring...)
		return out
	}
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// Samples reports how many samples have been taken since construction
// (the ring retains only the most recent SamplerConfig.Ring of them).
func (s *Sampler) Samples() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Register exposes the latest sample as dav_runtime_* gauges, read at
// scrape time. Gauges report zero until the first sample.
func (s *Sampler) Register(r *obs.Registry) {
	latest := func(f func(Sample) float64) func() float64 {
		return func() float64 {
			sm, ok := s.Latest()
			if !ok {
				return 0
			}
			return f(sm)
		}
	}
	r.GaugeFunc("dav_runtime_goroutines",
		"Live goroutines at the last runtime sample.", nil,
		latest(func(sm Sample) float64 { return float64(sm.Goroutines) }))
	r.GaugeFunc("dav_runtime_heap_alloc_bytes",
		"Allocated heap bytes at the last runtime sample.", nil,
		latest(func(sm Sample) float64 { return float64(sm.HeapAllocBytes) }))
	r.GaugeFunc("dav_runtime_heap_sys_bytes",
		"Heap bytes obtained from the OS at the last runtime sample.", nil,
		latest(func(sm Sample) float64 { return float64(sm.HeapSysBytes) }))
	r.GaugeFunc("dav_runtime_heap_objects",
		"Live heap objects at the last runtime sample.", nil,
		latest(func(sm Sample) float64 { return float64(sm.HeapObjects) }))
	r.GaugeFunc("dav_runtime_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.", nil,
		latest(func(sm Sample) float64 { return sm.GCPauseTotalSeconds }))
	r.GaugeFunc("dav_runtime_gc_cpu_fraction",
		"Fraction of available CPU consumed by the GC since process start.", nil,
		latest(func(sm Sample) float64 { return sm.GCCPUFraction }))
	r.GaugeFunc("dav_runtime_gc_runs_total",
		"Completed GC cycles.", nil,
		latest(func(sm Sample) float64 { return float64(sm.GCRuns) }))
	r.GaugeFunc("dav_runtime_open_fds",
		"Open file descriptors (-1 when the platform offers no cheap count).", nil,
		latest(func(sm Sample) float64 { return float64(sm.OpenFDs) }))
	r.GaugeFunc("dav_runtime_sched_latency_seconds",
		"Overshoot of a 1ms timer at the last sample — a scheduler-pressure proxy.", nil,
		latest(func(sm Sample) float64 { return sm.SchedLatencySeconds }))
	r.GaugeFunc("dav_runtime_samples_total",
		"Runtime samples taken since process start.", nil,
		func() float64 { return float64(s.Samples()) })
	r.GaugeFunc("dav_runtime_sample_interval_seconds",
		"Configured interval between runtime samples.", nil,
		func() float64 { return s.interval.Seconds() })
}

// countOpenFDs counts entries in /proc/self/fd; -1 where that (or an
// equivalent) is unavailable.
func countOpenFDs() int {
	f, err := os.Open("/proc/self/fd")
	if err != nil {
		return -1
	}
	defer f.Close()
	names, err := f.Readdirnames(-1)
	if err != nil {
		return -1
	}
	// The open directory handle itself is one of the entries.
	return len(names) - 1
}
