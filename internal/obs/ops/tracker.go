package ops

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// TrackerConfig sizes a Tracker.
type TrackerConfig struct {
	// K is the heavy-hitter table capacity (default 20).
	K int
	// SLO, when set, scores every observed request against its
	// objectives.
	SLO *SLO
}

// Tracker is the per-request analytics sink the Instrument middleware
// feeds: two Space-Saving tables — hottest resource paths and hottest
// (method, depth) operation shapes — plus optional SLO accounting. All
// methods are safe for concurrent use and O(K) per observation.
type Tracker struct {
	paths *TopK
	ops   *TopK
	slo   *SLO
	seen  atomic.Int64
}

// NewTracker builds a tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	if cfg.K <= 0 {
		cfg.K = 20
	}
	return &Tracker{
		paths: NewTopK(cfg.K),
		ops:   NewTopK(cfg.K),
		slo:   cfg.SLO,
	}
}

// ObserveRequest records one completed request: the resource path and
// the (method, depth) shape go into the heavy-hitter tables, and the
// latency is scored against the SLO objectives when one is configured.
func (t *Tracker) ObserveRequest(method, path, depth string, status int, d time.Duration) {
	if t == nil {
		return
	}
	if depth == "" {
		depth = "-"
	}
	t.paths.Observe(path)
	t.ops.Observe(method + " depth=" + depth)
	t.seen.Add(1)
	t.slo.Observe(method, status, d)
}

// SLO returns the tracker's SLO engine (nil when none is configured).
func (t *Tracker) SLO() *SLO { return t.slo }

// HotPaths returns the top n resource paths by request count.
func (t *Tracker) HotPaths(n int) []TopEntry { return t.paths.Top(n) }

// HotOps returns the top n (method, depth) shapes by request count.
func (t *Tracker) HotOps(n int) []TopEntry { return t.ops.Top(n) }

// Observations reports how many requests the tracker has seen.
func (t *Tracker) Observations() int64 { return t.seen.Load() }

// Register exposes the heavy-hitter tables as rank-labelled gauges:
// dav_hot_path_requests{rank="01"} is the hottest path's count, and so
// on down the table. Ranks — not path labels — keep the exposition's
// cardinality fixed at 2K series no matter how many distinct paths the
// workload touches; the key names live on /debug/status, whose JSON
// carries the full table. Also registers table-level distinct/seen
// gauges, and the SLO gauges when an engine is attached.
func (t *Tracker) Register(r *obs.Registry) {
	rankGauges := r.GaugeFunc
	for i := 0; i < t.paths.K(); i++ {
		i := i
		rankGauges("dav_hot_path_requests",
			"Request count of the rank-th hottest resource path (Space-Saving upper bound).",
			obs.Labels{"rank": fmt.Sprintf("%02d", i+1)},
			func() float64 {
				top := t.paths.Top(i + 1)
				if i >= len(top) {
					return 0
				}
				return float64(top[i].Count)
			})
		rankGauges("dav_hot_op_requests",
			"Request count of the rank-th hottest (method, depth) shape (Space-Saving upper bound).",
			obs.Labels{"rank": fmt.Sprintf("%02d", i+1)},
			func() float64 {
				top := t.ops.Top(i + 1)
				if i >= len(top) {
					return 0
				}
				return float64(top[i].Count)
			})
	}
	r.GaugeFunc("dav_hot_path_distinct",
		"Distinct resource paths currently tracked (at most the table capacity).", nil,
		func() float64 { return float64(t.paths.Len()) })
	r.GaugeFunc("dav_hot_path_observations_total",
		"Requests observed by the workload analytics tracker.", nil,
		func() float64 { return float64(t.Observations()) })
	if t.slo != nil {
		t.slo.Register(r)
	}
}
