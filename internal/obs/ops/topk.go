// Package ops is the operational-intelligence layer over the raw
// telemetry of internal/obs: a runtime sampler (process health trends),
// Space-Saving top-K heavy-hitter tables (which resources are hot), an
// SLO engine (are we meeting the latency objective, and how fast is the
// error budget burning), and a unified /debug/status console that
// renders all of it — plus the store's concurrency and recovery gauges
// — as one HTML+JSON page on the admin listener.
//
// The paper's server is shared infrastructure for many concurrent
// scientists; raw counters answer "how many requests", but an operator
// needs "which calculation tree is hot, is the process itself healthy,
// and are we inside our objective". This package turns the PR 2/3
// pillars (metrics, logs, traces) into those answers, using only the
// standard library.
package ops

import (
	"sort"
	"sync"
)

// TopEntry is one heavy hitter reported by a TopK table. Count is an
// upper bound on the key's true frequency; Count-ErrBound is a lower
// bound (Space-Saving's guarantee: any key whose true count exceeds the
// table's minimum counter is present).
type TopEntry struct {
	Key      string `json:"key"`
	Count    int64  `json:"count"`
	ErrBound int64  `json:"err_bound"`
}

// TopK maintains the k most frequent keys of a stream in O(k) memory
// with the Space-Saving algorithm (Metwally, Agrawal, El Abbadi 2005):
// a full table evicts its minimum-count entry and the newcomer inherits
// that count as its error bound. The table is mergeable, so per-worker
// tables can be combined into one report. Safe for concurrent use.
type TopK struct {
	mu      sync.Mutex
	k       int
	entries map[string]*TopEntry
	total   int64
}

// NewTopK returns a table tracking up to k keys (k < 1 is treated
// as 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, entries: make(map[string]*TopEntry, k)}
}

// K returns the table's capacity.
func (t *TopK) K() int { return t.k }

// Observe counts one occurrence of key.
func (t *TopK) Observe(key string) { t.Add(key, 1) }

// Add counts n occurrences of key (n < 1 is ignored).
func (t *TopK) Add(key string, n int64) {
	if n < 1 {
		return
	}
	t.mu.Lock()
	t.addLocked(key, n, 0)
	t.total += n
	t.mu.Unlock()
}

// addLocked is the Space-Saving insert: existing keys accumulate; a new
// key either fills a free slot or replaces the minimum entry,
// inheriting its count as the error bound.
func (t *TopK) addLocked(key string, n, errBound int64) {
	if e, ok := t.entries[key]; ok {
		e.Count += n
		if errBound > e.ErrBound {
			e.ErrBound = errBound
		}
		return
	}
	if len(t.entries) < t.k {
		t.entries[key] = &TopEntry{Key: key, Count: n, ErrBound: errBound}
		return
	}
	var min *TopEntry
	for _, e := range t.entries {
		if min == nil || e.Count < min.Count {
			min = e
		}
	}
	delete(t.entries, min.Key)
	eb := min.Count
	if errBound > eb {
		eb = errBound
	}
	t.entries[key] = &TopEntry{Key: key, Count: min.Count + n, ErrBound: eb}
}

// Top returns up to n entries sorted by descending count (ties broken
// by key for stable output). n <= 0 returns every tracked entry.
func (t *TopK) Top(n int) []TopEntry {
	t.mu.Lock()
	out := make([]TopEntry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Len reports how many keys the table currently tracks (at most k).
func (t *TopK) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Observations reports the total stream length seen by Add/Observe
// (merges included).
func (t *TopK) Observations() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Merge folds the other table's entries into t, preserving Space-Saving's
// bound semantics: shared keys sum counts and error bounds; new keys go
// through the usual replacement path carrying their source error bound.
func (t *TopK) Merge(o *TopK) {
	if o == nil || o == t {
		return
	}
	entries := o.Top(0)
	total := o.Observations()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total += total
	for _, e := range entries {
		t.addLocked(e.Key, e.Count, e.ErrBound)
	}
}
