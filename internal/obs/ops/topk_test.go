package ops

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestTopKExact: with fewer distinct keys than capacity the counts are
// exact and ordering is by frequency.
func TestTopKExact(t *testing.T) {
	tk := NewTopK(8)
	for i := 0; i < 30; i++ {
		tk.Observe("/a")
	}
	for i := 0; i < 20; i++ {
		tk.Observe("/b")
	}
	tk.Observe("/c")
	top := tk.Top(0)
	if len(top) != 3 {
		t.Fatalf("Top(0) len = %d, want 3", len(top))
	}
	want := []TopEntry{{"/a", 30, 0}, {"/b", 20, 0}, {"/c", 1, 0}}
	for i, w := range want {
		if top[i] != w {
			t.Errorf("top[%d] = %+v, want %+v", i, top[i], w)
		}
	}
	if tk.Observations() != 51 {
		t.Errorf("Observations = %d, want 51", tk.Observations())
	}
}

// TestTopKHeavyHitterSurvivesEviction: the Space-Saving guarantee — a
// key with more occurrences than the table's minimum counter is always
// present, no matter how many cold keys churn through.
func TestTopKHeavyHitterSurvivesEviction(t *testing.T) {
	tk := NewTopK(10)
	rng := rand.New(rand.NewSource(1))
	hot := "/hot"
	for i := 0; i < 5000; i++ {
		if i%3 == 0 {
			tk.Observe(hot)
		} else {
			tk.Observe(fmt.Sprintf("/cold/%d", rng.Intn(2000)))
		}
	}
	top := tk.Top(1)
	if len(top) == 0 || top[0].Key != hot {
		t.Fatalf("hottest key = %+v, want %s on top", top, hot)
	}
	// Upper bound must cover the true count; lower bound must be
	// positive for a key this hot.
	const trueCount = 1667 // ceil(5000/3)
	if top[0].Count < trueCount {
		t.Errorf("upper bound %d below true count %d", top[0].Count, trueCount)
	}
	if top[0].Count-top[0].ErrBound <= 0 {
		t.Errorf("lower bound %d not positive", top[0].Count-top[0].ErrBound)
	}
	if got := tk.Len(); got != 10 {
		t.Errorf("Len = %d, want capacity 10", got)
	}
}

// TestTopKMerge: merged tables agree with a single table fed the union
// stream on the heavy hitter, and totals add up.
func TestTopKMerge(t *testing.T) {
	a, b := NewTopK(6), NewTopK(6)
	for i := 0; i < 40; i++ {
		a.Observe("/shared")
	}
	for i := 0; i < 25; i++ {
		b.Observe("/shared")
	}
	for i := 0; i < 10; i++ {
		a.Observe("/only-a")
		b.Observe("/only-b")
	}
	a.Merge(b)
	top := a.Top(1)
	if top[0].Key != "/shared" || top[0].Count != 65 {
		t.Fatalf("merged top = %+v, want /shared with 65", top[0])
	}
	if a.Observations() != 85 {
		t.Errorf("merged Observations = %d, want 85", a.Observations())
	}
	a.Merge(a) // self-merge must be a no-op
	if a.Observations() != 85 {
		t.Errorf("self-merge changed Observations to %d", a.Observations())
	}
	a.Merge(nil) // nil-merge must be a no-op
}

// TestTopKConcurrent hammers Observe/Top/Merge from many goroutines for
// the race detector.
func TestTopKConcurrent(t *testing.T) {
	tk := NewTopK(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			other := NewTopK(16)
			for i := 0; i < 400; i++ {
				tk.Observe(fmt.Sprintf("/p%d", i%40))
				other.Observe("/merged")
				if i%100 == 99 {
					tk.Top(5)
					tk.Merge(other)
					other = NewTopK(16)
				}
			}
		}(w)
	}
	wg.Wait()
	if tk.Observations() == 0 {
		t.Fatal("no observations recorded")
	}
}
