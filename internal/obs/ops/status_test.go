package ops

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// populatedStatus builds a console with every section live, backed by a
// small synthetic workload.
func populatedStatus(t *testing.T) *Status {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Gauge("dav_pathlock_held", "", nil).Set(2)
	reg.Gauge("dav_dbm_cache_open", "", nil).Set(7)
	reg.Gauge("unrelated_gauge", "", nil).Set(1)

	objs, err := ParseObjectives("GET:50ms:0.99")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(TrackerConfig{K: 8, SLO: NewSLO(SLOConfig{Objectives: objs})})
	for i := 0; i < 5; i++ {
		tr.ObserveRequest("GET", "/calc/h2o.out", "", 200, time.Millisecond)
	}
	tr.ObserveRequest("PROPFIND", "/calc", "1", 207, 2*time.Millisecond)

	sp := NewSampler(SamplerConfig{Interval: time.Hour, Ring: 8})
	sp.SampleNow()
	sp.SampleNow()

	return NewStatus(StatusConfig{
		Service:  "davd-test",
		Registry: reg,
		Sampler:  sp,
		Tracker:  tr,
		Ready:    func() any { return map[string]any{"status": "ready"} },
		Links:    []Link{{Name: "traces", Href: "/debug/traces"}},
	})
}

// goldenKeys pins the JSON document's key structure. Values are
// dynamic; the shape is the contract scrapers depend on.
var goldenKeys = map[string][]string{
	"":        {"build", "degraded", "go", "gauges", "hot_ops", "hot_paths", "links", "observations", "pid", "ready", "runtime", "schema", "service", "slo", "start_time", "uptime_seconds"},
	"runtime": {"latest", "trend"},
	"runtime.latest": {"gc_cpu_fraction", "gc_pause_total_seconds", "gc_runs", "goroutines",
		"heap_alloc_bytes", "heap_objects", "heap_sys_bytes", "open_fds", "sched_latency_seconds", "time"},
	"slo[0]":            {"bad_total", "degraded", "good_total", "name", "target", "threshold_ms", "windows"},
	"slo[0].windows[0]": {"bad", "bad_fraction", "burn_rate", "good", "window"},
	"hot_paths[0]":      {"count", "err_bound", "key"},
	"links[0]":          {"href", "name"},
}

func sortedKeys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestStatusJSONGolden pins the /debug/status?format=json shape: the
// schema tag and the key sets of the document and its sections.
func TestStatusJSONGolden(t *testing.T) {
	st := populatedStatus(t)
	data, err := json.Marshal(st.Doc())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != StatusSchema {
		t.Fatalf("schema = %v, want %s", doc["schema"], StatusSchema)
	}

	section := func(path string) map[string]any {
		cur := any(doc)
		if path == "" {
			return doc
		}
		for _, part := range strings.Split(path, ".") {
			name, idx := part, -1
			if i := strings.IndexByte(part, '['); i >= 0 {
				name = part[:i]
				idx = int(part[i+1] - '0')
			}
			m, ok := cur.(map[string]any)
			if !ok {
				t.Fatalf("section %s: %T is not an object", path, cur)
			}
			cur = m[name]
			if idx >= 0 {
				arr, ok := cur.([]any)
				if !ok || len(arr) <= idx {
					t.Fatalf("section %s: %v has no index %d", path, name, idx)
				}
				cur = arr[idx]
			}
		}
		m, ok := cur.(map[string]any)
		if !ok {
			t.Fatalf("section %s: %T is not an object", path, cur)
		}
		return m
	}

	for path, want := range goldenKeys {
		got := sortedKeys(section(path))
		wantSorted := append([]string(nil), want...)
		sort.Strings(wantSorted)
		if !reflect.DeepEqual(got, wantSorted) {
			t.Errorf("section %q keys = %v, want %v", path, got, wantSorted)
		}
	}

	// Gauge filtering: storage-stack families in, unrelated ones out.
	gauges := section("gauges")
	if _, ok := gauges["dav_pathlock_held"]; !ok {
		t.Error("gauges missing dav_pathlock_held")
	}
	if _, ok := gauges["unrelated_gauge"]; ok {
		t.Error("gauges leaked unrelated_gauge past the prefix filter")
	}

	// The hottest path leads the table.
	hot := section("hot_paths[0]")
	if hot["key"] != "/calc/h2o.out" {
		t.Errorf("hottest path = %v, want /calc/h2o.out", hot["key"])
	}
}

// TestStatusServeHTTP: format negotiation and a well-formed HTML page.
func TestStatusServeHTTP(t *testing.T) {
	st := populatedStatus(t)

	rec := httptest.NewRecorder()
	st.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/status?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json Content-Type = %q", ct)
	}
	var doc StatusDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("json response unparseable: %v", err)
	}
	if doc.Schema != StatusSchema || doc.Service != "davd-test" {
		t.Fatalf("doc = %+v", doc)
	}

	rec = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/debug/status", nil)
	req.Header.Set("Accept", "application/json")
	st.ServeHTTP(rec, req)
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("Accept negotiation: %v", err)
	}

	rec = httptest.NewRecorder()
	st.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/status", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("html Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"davd-test", "/calc/h2o.out", "hot paths", "slo",
		"dav_pathlock_held", "/debug/traces", "GET depth=-",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("html missing %q", want)
		}
	}
}

func TestSpark(t *testing.T) {
	if got := spark(nil); got != "" {
		t.Errorf("spark(nil) = %q", got)
	}
	if got := spark([]float64{1, 1, 1}); got != "▁▁▁" {
		t.Errorf("flat spark = %q", got)
	}
	got := spark([]float64{0, 5, 10})
	if []rune(got)[0] != '▁' || []rune(got)[2] != '█' {
		t.Errorf("ramp spark = %q", got)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[uint64]string{
		512:     "512 B",
		2048:    "2.0 KB",
		3 << 20: "3.0 MB",
		5 << 30: "5.0 GB",
	}
	for n, want := range cases {
		if got := humanBytes(n); got != want {
			t.Errorf("humanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
