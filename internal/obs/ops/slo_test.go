package ops

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("GET,PROPFIND:50ms:0.99;*:1s:0.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objs))
	}
	o := objs[0]
	if !o.Methods["GET"] || !o.Methods["PROPFIND"] || o.Methods["PUT"] {
		t.Errorf("methods = %v, want GET+PROPFIND only", o.Methods)
	}
	if o.Threshold != 50*time.Millisecond || o.Target != 0.99 {
		t.Errorf("threshold/target = %v/%v", o.Threshold, o.Target)
	}
	if objs[1].Methods != nil {
		t.Errorf("wildcard objective has method filter %v", objs[1].Methods)
	}

	for _, bad := range []string{"", "GET:50ms", "GET:xx:0.9", "GET:50ms:1.5", "GET:50ms:0", "GET:-1s:0.9"} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted", bad)
		}
	}
}

// fakeClock steps time manually for window arithmetic tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestSLO(t *testing.T, windows ...time.Duration) (*SLO, *fakeClock) {
	t.Helper()
	objs, err := ParseObjectives("GET:50ms:0.9")
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	return NewSLO(SLOConfig{Objectives: objs, Windows: windows, Now: clk.now}), clk
}

// TestSLOGoodBadScoring: under-threshold non-5xx requests are good;
// slow or 5xx are bad; non-matching methods are ignored.
func TestSLOGoodBadScoring(t *testing.T) {
	e, _ := newTestSLO(t)
	e.Observe("GET", 200, 10*time.Millisecond)  // good
	e.Observe("GET", 200, 50*time.Millisecond)  // good: inclusive bound
	e.Observe("GET", 200, 100*time.Millisecond) // bad: slow
	e.Observe("GET", 503, 10*time.Millisecond)  // bad: server error
	e.Observe("PUT", 200, time.Second)          // ignored: method filter
	s := e.Snapshot()
	if len(s) != 1 {
		t.Fatalf("snapshot has %d objectives, want 1", len(s))
	}
	if s[0].Good != 2 || s[0].Bad != 2 {
		t.Fatalf("good/bad = %d/%d, want 2/2", s[0].Good, s[0].Bad)
	}
}

// TestSLOBurnRateWindows: burn = badFraction/(1-target); events age out
// of the short window but stay in the long one.
func TestSLOBurnRateWindows(t *testing.T) {
	e, clk := newTestSLO(t, 5*time.Minute, time.Hour)
	// 10 requests, 5 bad: bad fraction 0.5, budget 0.1 → burn 5.
	for i := 0; i < 5; i++ {
		e.Observe("GET", 200, time.Millisecond)
		e.Observe("GET", 200, time.Second)
	}
	s := e.Snapshot()[0]
	if got := s.Windows[0].BurnRate; got < 4.9 || got > 5.1 {
		t.Fatalf("5m burn = %v, want ~5", got)
	}
	if got := s.Windows[1].BurnRate; got < 4.9 || got > 5.1 {
		t.Fatalf("1h burn = %v, want ~5", got)
	}
	if !s.Degraded || !e.Degraded() {
		t.Fatal("burn 5 in both windows should be degraded")
	}

	// Ten minutes later the bad burst left the 5m window but not the
	// 1h one: short burn recovers, degraded clears.
	clk.advance(10 * time.Minute)
	e.Observe("GET", 200, time.Millisecond)
	s = e.Snapshot()[0]
	if got := s.Windows[0].BurnRate; got != 0 {
		t.Errorf("5m burn after recovery = %v, want 0", got)
	}
	if got := s.Windows[1].BurnRate; got < 4 {
		t.Errorf("1h burn = %v, want still elevated", got)
	}
	if s.Degraded || e.Degraded() {
		t.Error("recovered short window must clear the degraded bit")
	}

	// Two hours later everything aged out.
	clk.advance(2 * time.Hour)
	s = e.Snapshot()[0]
	if s.Windows[1].BurnRate != 0 {
		t.Errorf("1h burn after 2h idle = %v, want 0", s.Windows[1].BurnRate)
	}
	if s.Good != 6 || s.Bad != 5 {
		t.Errorf("cumulative good/bad = %d/%d, want 6/5 (totals never age out)", s.Good, s.Bad)
	}
}

// TestSLOGauges: the registered dav_slo_* families expose the same
// numbers the snapshot reports.
func TestSLOGauges(t *testing.T) {
	e, _ := newTestSLO(t)
	r := obs.NewRegistry()
	e.Register(r)
	for i := 0; i < 9; i++ {
		e.Observe("GET", 200, time.Millisecond)
	}
	e.Observe("GET", 200, time.Second)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"dav_slo_target", "dav_slo_threshold_seconds", "dav_slo_good_total",
		"dav_slo_bad_total", `window="5m"`, `window="1h"`, "dav_slo_degraded 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if err := obs.CheckExposition([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	// 1 bad in 10 with a 0.1 budget: burn exactly 1 — not degraded.
	snap := e.Snapshot()[0]
	if got := snap.Windows[0].BurnRate; got < 0.99 || got > 1.01 {
		t.Errorf("burn = %v, want ~1", got)
	}
}

func TestFmtWindow(t *testing.T) {
	cases := map[time.Duration]string{
		5 * time.Minute:         "5m",
		time.Hour:               "1h",
		90 * time.Second:        "90s",
		1500 * time.Millisecond: "1.5s",
	}
	for d, want := range cases {
		if got := fmtWindow(d); got != want {
			t.Errorf("fmtWindow(%v) = %q, want %q", d, got, want)
		}
	}
}

// TestSLONilSafety: a nil engine ignores observations and reports
// healthy, so call sites need no guards.
func TestSLONilSafety(t *testing.T) {
	var e *SLO
	e.Observe("GET", 200, time.Second)
	if e.Degraded() {
		t.Fatal("nil SLO reports degraded")
	}
	if s := e.Snapshot(); s != nil {
		t.Fatalf("nil SLO snapshot = %v", s)
	}
}
