package ops

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// StatusSchema identifies the /debug/status?format=json document shape.
const StatusSchema = "dav_status/v1"

// Link is one navigation entry on the console (deeper admin surfaces:
// traces, pprof, metrics).
type Link struct {
	Name string `json:"name"`
	Href string `json:"href"`
}

// StatusConfig wires the console to the subsystems it consolidates.
// Every field except Service is optional; missing ones drop their
// section.
type StatusConfig struct {
	// Service names the process ("davd").
	Service string
	// Registry supplies the gauge section (path locks, DBM cache,
	// limiter, recovery, journal — whatever matches GaugePrefixes).
	Registry *obs.Registry
	// GaugePrefixes filters Registry families into the gauges section.
	// Empty uses DefaultGaugePrefixes.
	GaugePrefixes []string
	// Sampler supplies the runtime section.
	Sampler *Sampler
	// Tracker supplies the hot-path, hot-op, and SLO sections.
	Tracker *Tracker
	// Ready, when set, embeds the /readyz document (any
	// JSON-marshallable value) so one page answers "would a load
	// balancer route to me".
	Ready func() any
	// Links point into the other admin endpoints.
	Links []Link
	// TopN bounds the rendered heavy-hitter tables (default 10).
	TopN int
}

// DefaultGaugePrefixes selects the storage-stack and lifecycle gauge
// families the console shows by default.
var DefaultGaugePrefixes = []string{
	"dav_pathlock_", "dav_dbm_cache_", "dav_limiter_", "dav_locks_",
	"dav_recovery_", "dav_recovering", "dav_journal_", "dav_fsck_",
	"dav_fsync_", "dav_inflight_", "dav_panics_", "dav_metric_label_overflow",
	"dav_admit_", "dav_brownout_",
}

// StatusDoc is the JSON document served by /debug/status?format=json.
type StatusDoc struct {
	Schema        string             `json:"schema"`
	Service       string             `json:"service"`
	Go            string             `json:"go"`
	PID           int                `json:"pid"`
	StartTime     time.Time          `json:"start_time"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	Build         map[string]string  `json:"build,omitempty"`
	Runtime       *RuntimeSection    `json:"runtime,omitempty"`
	SLO           []ObjectiveStatus  `json:"slo,omitempty"`
	Degraded      bool               `json:"degraded"`
	HotPaths      []TopEntry         `json:"hot_paths,omitempty"`
	HotOps        []TopEntry         `json:"hot_ops,omitempty"`
	Observations  int64              `json:"observations"`
	Gauges        map[string]float64 `json:"gauges,omitempty"`
	Ready         any                `json:"ready,omitempty"`
	Links         []Link             `json:"links,omitempty"`
}

// RuntimeSection is the sampler's contribution: the latest sample plus
// the retained trend.
type RuntimeSection struct {
	Latest *Sample  `json:"latest,omitempty"`
	Trend  []Sample `json:"trend,omitempty"`
}

// Status is the unified operational console. Mount it on the admin
// listener at /debug/status; it serves HTML by default and the
// StatusDoc JSON with ?format=json (or an Accept: application/json
// header).
type Status struct {
	cfg   StatusConfig
	start time.Time
	build map[string]string
}

// NewStatus builds the console.
func NewStatus(cfg StatusConfig) *Status {
	if cfg.Service == "" {
		cfg.Service = "dav"
	}
	if cfg.TopN <= 0 {
		cfg.TopN = 10
	}
	if len(cfg.GaugePrefixes) == 0 {
		cfg.GaugePrefixes = DefaultGaugePrefixes
	}
	return &Status{cfg: cfg, start: time.Now(), build: buildInfo()}
}

// buildInfo extracts module path/version and VCS stamps from the
// binary's embedded build info.
func buildInfo() map[string]string {
	out := map[string]string{}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out["module"] = bi.Main.Path
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		out["version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision", "vcs.time", "vcs.modified":
			out[strings.TrimPrefix(s.Key, "vcs.")] = s.Value
		}
	}
	return out
}

// Doc assembles the current StatusDoc. Exported so benchmarks and the
// golden test can validate the shape without an HTTP round trip.
func (s *Status) Doc() StatusDoc {
	doc := StatusDoc{
		Schema:        StatusSchema,
		Service:       s.cfg.Service,
		Go:            runtime.Version(),
		PID:           os.Getpid(),
		StartTime:     s.start,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Build:         s.build,
	}
	if sp := s.cfg.Sampler; sp != nil {
		rs := &RuntimeSection{Trend: sp.Trend()}
		if latest, ok := sp.Latest(); ok {
			rs.Latest = &latest
		}
		doc.Runtime = rs
	}
	if tr := s.cfg.Tracker; tr != nil {
		doc.HotPaths = tr.HotPaths(s.cfg.TopN)
		doc.HotOps = tr.HotOps(s.cfg.TopN)
		doc.Observations = tr.Observations()
		if slo := tr.SLO(); slo != nil {
			doc.SLO = slo.Snapshot()
			doc.Degraded = slo.Degraded()
		}
	}
	if r := s.cfg.Registry; r != nil {
		doc.Gauges = filterGauges(r.Snapshot(), s.cfg.GaugePrefixes)
	}
	if s.cfg.Ready != nil {
		doc.Ready = s.cfg.Ready()
	}
	doc.Links = s.cfg.Links
	return doc
}

// filterGauges keeps scalar snapshot entries whose metric name matches
// one of the prefixes.
func filterGauges(snap map[string]any, prefixes []string) map[string]float64 {
	out := map[string]float64{}
	for key, v := range snap {
		f, ok := v.(float64)
		if !ok {
			continue
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				out[key] = f
				break
			}
		}
	}
	return out
}

// ServeHTTP renders the console: JSON for ?format=json or an Accept
// header preferring application/json, HTML otherwise.
func (s *Status) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Doc())
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	s.renderHTML(w)
}

// sparkRunes draw a unicode sparkline for the trend columns.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders vs as a sparkline scaled to its own min..max.
func spark(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vs {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// statusTmpl is the HTML console. Deliberately dependency-free and
// render-only: every number comes from Doc, so the JSON and the page
// can never disagree.
var statusTmpl = template.Must(template.New("status").Funcs(template.FuncMap{
	"bytes": humanBytes,
	"pct":   func(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) },
	"f3":    func(v float64) string { return fmt.Sprintf("%.3f", v) },
}).Parse(`<!doctype html>
<html><head><title>{{.Doc.Service}} status</title><style>
body{font-family:monospace;margin:2em;background:#fafafa;color:#222}
h1{font-size:1.3em} h2{font-size:1.05em;border-bottom:1px solid #ccc;margin-top:1.6em}
table{border-collapse:collapse} td,th{padding:2px 12px 2px 0;text-align:left}
th{color:#666;font-weight:normal} .num{text-align:right}
.bad{color:#b00;font-weight:bold} .ok{color:#070}
.spark{color:#36c;letter-spacing:1px}
</style></head><body>
<h1>{{.Doc.Service}} — operational status
{{if .Doc.Degraded}}<span class="bad">[SLO DEGRADED]</span>{{else}}<span class="ok">[healthy]</span>{{end}}</h1>
<p>go {{.Doc.Go}} · pid {{.Doc.PID}} · up {{printf "%.0fs" .Doc.UptimeSeconds}}
{{range $k, $v := .Doc.Build}} · {{$k}}={{$v}}{{end}}
· <a href="?format=json">json</a></p>

{{if .Doc.Runtime}}{{if .Doc.Runtime.Latest}}
<h2>runtime</h2>
<table>
<tr><th>goroutines</th><td class="num">{{.Doc.Runtime.Latest.Goroutines}}</td>
    <td class="spark">{{.GoroutineSpark}}</td></tr>
<tr><th>heap alloc</th><td class="num">{{bytes .Doc.Runtime.Latest.HeapAllocBytes}}</td>
    <td class="spark">{{.HeapSpark}}</td></tr>
<tr><th>heap sys</th><td class="num">{{bytes .Doc.Runtime.Latest.HeapSysBytes}}</td></tr>
<tr><th>gc cpu</th><td class="num">{{pct .Doc.Runtime.Latest.GCCPUFraction}}</td></tr>
<tr><th>gc pause total</th><td class="num">{{f3 .Doc.Runtime.Latest.GCPauseTotalSeconds}}s</td></tr>
<tr><th>open fds</th><td class="num">{{.Doc.Runtime.Latest.OpenFDs}}</td></tr>
<tr><th>sched latency</th><td class="num">{{f3 .Doc.Runtime.Latest.SchedLatencySeconds}}s</td></tr>
</table>
{{end}}{{end}}

{{if .Doc.SLO}}
<h2>slo</h2>
<table><tr><th>objective</th><th>target</th><th class="num">good</th><th class="num">bad</th>
{{range (index .Doc.SLO 0).Windows}}<th class="num">burn {{.Window}}</th>{{end}}<th></th></tr>
{{range .Doc.SLO}}<tr><td>{{.Name}}</td><td>{{.Target}}</td>
<td class="num">{{.Good}}</td><td class="num">{{.Bad}}</td>
{{range .Windows}}<td class="num">{{f3 .BurnRate}}</td>{{end}}
<td>{{if .Degraded}}<span class="bad">degraded</span>{{else}}<span class="ok">ok</span>{{end}}</td>
</tr>{{end}}</table>
{{end}}

{{if .Doc.HotPaths}}
<h2>hot paths ({{.Doc.Observations}} requests observed)</h2>
<table><tr><th>#</th><th>path</th><th class="num">requests ≤</th><th class="num">err</th></tr>
{{range $i, $e := .Doc.HotPaths}}<tr><td>{{$i}}</td><td>{{$e.Key}}</td>
<td class="num">{{$e.Count}}</td><td class="num">{{$e.ErrBound}}</td></tr>{{end}}</table>
{{end}}

{{if .Doc.HotOps}}
<h2>hot operations (method, depth)</h2>
<table><tr><th>#</th><th>op</th><th class="num">requests ≤</th><th class="num">err</th></tr>
{{range $i, $e := .Doc.HotOps}}<tr><td>{{$i}}</td><td>{{$e.Key}}</td>
<td class="num">{{$e.Count}}</td><td class="num">{{$e.ErrBound}}</td></tr>{{end}}</table>
{{end}}

{{if .GaugeRows}}
<h2>storage &amp; lifecycle gauges</h2>
<table>{{range .GaugeRows}}<tr><th>{{.Name}}</th><td class="num">{{.Value}}</td></tr>{{end}}</table>
{{end}}

{{if .ReadyJSON}}
<h2>readiness</h2>
<pre>{{.ReadyJSON}}</pre>
{{end}}

{{if .Doc.Links}}
<h2>links</h2>
<p>{{range .Doc.Links}}<a href="{{.Href}}">{{.Name}}</a> · {{end}}</p>
{{end}}
</body></html>
`))

// gaugeRow is one rendered gauge line.
type gaugeRow struct {
	Name  string
	Value string
}

// renderHTML renders the console page from a fresh Doc.
func (s *Status) renderHTML(w http.ResponseWriter) {
	doc := s.Doc()
	data := struct {
		Doc            StatusDoc
		GoroutineSpark string
		HeapSpark      string
		GaugeRows      []gaugeRow
		ReadyJSON      string
	}{Doc: doc}
	if doc.Runtime != nil {
		var gs, hs []float64
		for _, sm := range doc.Runtime.Trend {
			gs = append(gs, float64(sm.Goroutines))
			hs = append(hs, float64(sm.HeapAllocBytes))
		}
		data.GoroutineSpark = spark(gs)
		data.HeapSpark = spark(hs)
	}
	names := make([]string, 0, len(doc.Gauges))
	for n := range doc.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		data.GaugeRows = append(data.GaugeRows, gaugeRow{
			Name:  n,
			Value: fmt.Sprintf("%g", doc.Gauges[n]),
		})
	}
	if doc.Ready != nil {
		if b, err := json.MarshalIndent(doc.Ready, "", "  "); err == nil {
			data.ReadyJSON = string(b)
		}
	}
	if err := statusTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// humanBytes renders a byte count with a binary unit.
func humanBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := uint64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %cB", float64(n)/float64(div), "KMGTPE"[exp])
}
