package ops

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchDegradedRisingEdge verifies the watcher fires once per
// false→true transition, not continuously while degraded.
func TestWatchDegradedRisingEdge(t *testing.T) {
	var degraded atomic.Bool
	var fired atomic.Int64
	w := WatchDegraded(degraded.Load, time.Millisecond, func() { fired.Add(1) })
	defer w.Stop()

	waitFor := func(want int64) {
		deadline := time.Now().Add(2 * time.Second)
		for fired.Load() != want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := fired.Load(); got != want {
			t.Fatalf("fired = %d, want %d", got, want)
		}
	}

	time.Sleep(20 * time.Millisecond) // healthy: no edges
	waitFor(0)

	degraded.Store(true)
	waitFor(1)
	time.Sleep(20 * time.Millisecond) // still degraded: no repeat fire
	waitFor(1)

	degraded.Store(false)
	time.Sleep(20 * time.Millisecond) // recovery is not an edge
	waitFor(1)

	degraded.Store(true)
	waitFor(2)
	if w.Fired() != 2 {
		t.Errorf("Fired = %d, want 2", w.Fired())
	}
}

// TestWatchDegradedAlreadyDegraded verifies a watcher started while the
// probe is already true does not fire until a fresh transition.
func TestWatchDegradedAlreadyDegraded(t *testing.T) {
	var degraded atomic.Bool
	degraded.Store(true)
	var fired atomic.Int64
	w := WatchDegraded(degraded.Load, time.Millisecond, func() { fired.Add(1) })
	defer w.Stop()

	time.Sleep(20 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatalf("fired on pre-existing degradation")
	}
	degraded.Store(false)
	time.Sleep(20 * time.Millisecond)
	degraded.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for fired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fired.Load() != 1 {
		t.Fatalf("fired = %d after fresh transition, want 1", fired.Load())
	}
}

// TestWatchDegradedStop verifies Stop is idempotent and nil-safe.
func TestWatchDegradedStop(t *testing.T) {
	w := WatchDegraded(func() bool { return false }, time.Millisecond, func() {})
	w.Stop()
	w.Stop()
	var nilW *DegradedWatcher
	nilW.Stop()
	if nilW.Fired() != 0 {
		t.Errorf("nil watcher Fired != 0")
	}
}
