package ops

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Objective is one latency service-level objective: Target fraction of
// matching requests must complete under Threshold (and without a 5xx).
type Objective struct {
	// Name labels the objective in metrics and the status console.
	Name string
	// Methods is the DAV method set the objective covers; empty covers
	// every method.
	Methods map[string]bool
	// Threshold is the latency bound a request must beat to be "good".
	Threshold time.Duration
	// Target is the required good fraction in (0, 1), e.g. 0.99.
	Target float64
}

// ParseObjectives parses the davd -slo flag syntax: semicolon-separated
// objectives, each "METHOD[,METHOD...]:THRESHOLD:TARGET", with "*" (or
// an empty method list) covering all methods.
//
//	GET,PROPFIND:50ms:0.99;PUT:250ms:0.95
func ParseObjectives(spec string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("ops: objective %q: want METHODS:THRESHOLD:TARGET", part)
		}
		o := Objective{Name: part}
		methods := strings.TrimSpace(fields[0])
		if methods != "" && methods != "*" {
			o.Methods = map[string]bool{}
			var names []string
			for _, m := range strings.Split(methods, ",") {
				m = strings.ToUpper(strings.TrimSpace(m))
				if m == "" {
					continue
				}
				o.Methods[m] = true
				names = append(names, m)
			}
			o.Name = strings.Join(names, ",")
		} else {
			o.Name = "*"
		}
		d, err := time.ParseDuration(strings.TrimSpace(fields[1]))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("ops: objective %q: bad threshold %q", part, fields[1])
		}
		o.Threshold = d
		t, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil || t <= 0 || t >= 1 {
			return nil, fmt.Errorf("ops: objective %q: target %q not in (0, 1)", part, fields[2])
		}
		o.Target = t
		o.Name = fmt.Sprintf("%s<%s@%s", o.Name, d, trimFloat(t))
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ops: no objectives in %q", spec)
	}
	return out, nil
}

func trimFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sloBucket is one time slice of good/bad counts. Epoch stamps which
// slice the slot currently holds so stale ring slots are skipped.
type sloBucket struct {
	epoch     int64
	good, bad int64
}

// objectiveState is one objective's rolling accounting: a bucket ring
// wide enough for the longest window, plus cumulative totals.
type objectiveState struct {
	Objective
	mu      sync.Mutex
	width   time.Duration
	buckets []sloBucket
	good    int64 // cumulative
	bad     int64
}

// window sums the buckets covering the trailing window w as of now.
func (st *objectiveState) window(now time.Time, w time.Duration) (good, bad int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := now.UnixNano() / int64(st.width)
	n := int64(w / st.width)
	for i := range st.buckets {
		b := &st.buckets[i]
		if b.epoch > cur-n && b.epoch <= cur {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

func (st *objectiveState) observe(now time.Time, good bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	epoch := now.UnixNano() / int64(st.width)
	b := &st.buckets[epoch%int64(len(st.buckets))]
	if b.epoch != epoch {
		b.epoch, b.good, b.bad = epoch, 0, 0
	}
	if good {
		b.good++
		st.good++
	} else {
		b.bad++
		st.bad++
	}
}

// SLOConfig configures the engine.
type SLOConfig struct {
	// Objectives to track (required).
	Objectives []Objective
	// Windows are the trailing burn-rate windows, shortest first
	// (default 5m and 1h). The shortest window also sets the bucket
	// granularity (window/30).
	Windows []time.Duration
	// DegradedBurn is the burn-rate both windows must reach before the
	// engine reports degraded (default 2: the error budget is burning
	// at twice the sustainable rate, and the short window confirms it
	// is still happening now).
	DegradedBurn float64
	// Now overrides the clock (tests).
	Now func() time.Time
}

// SLO tracks rolling good/bad counts per objective and computes
// multi-window burn rates: burn = (bad fraction) / (1 - target). Burn 1
// means the error budget is being consumed exactly as fast as the
// objective allows; sustained burn above 1 eventually violates it. The
// degraded bit goes up only when every window burns past
// DegradedBurn — the long window proving real budget loss, the short
// window proving it is still happening — which is the standard
// multi-window burn-rate alert shape.
type SLO struct {
	states  []*objectiveState
	windows []time.Duration
	burn    float64
	now     func() time.Time
}

// NewSLO builds the engine.
func NewSLO(cfg SLOConfig) *SLO {
	if len(cfg.Windows) == 0 {
		cfg.Windows = []time.Duration{5 * time.Minute, time.Hour}
	}
	sort.Slice(cfg.Windows, func(i, j int) bool { return cfg.Windows[i] < cfg.Windows[j] })
	if cfg.DegradedBurn <= 0 {
		cfg.DegradedBurn = 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	width := cfg.Windows[0] / 30
	if width <= 0 {
		width = time.Second
	}
	longest := cfg.Windows[len(cfg.Windows)-1]
	n := int(longest/width) + 2 // +1 partial head bucket, +1 ring slack
	e := &SLO{windows: cfg.Windows, burn: cfg.DegradedBurn, now: cfg.Now}
	for _, o := range cfg.Objectives {
		e.states = append(e.states, &objectiveState{
			Objective: o,
			width:     width,
			buckets:   make([]sloBucket, n),
		})
	}
	return e
}

// Observe scores one completed request against every matching
// objective: good means under the threshold and not a server error.
func (e *SLO) Observe(method string, status int, d time.Duration) {
	if e == nil {
		return
	}
	now := e.now()
	for _, st := range e.states {
		if st.Methods != nil && !st.Methods[method] {
			continue
		}
		st.observe(now, d <= st.Threshold && status < 500)
	}
}

// WindowStatus is one window's burn accounting for an objective.
type WindowStatus struct {
	Window      string  `json:"window"`
	Good        int64   `json:"good"`
	Bad         int64   `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	BurnRate    float64 `json:"burn_rate"`
}

// ObjectiveStatus is one objective's full state for the status console.
type ObjectiveStatus struct {
	Name        string         `json:"name"`
	ThresholdMS float64        `json:"threshold_ms"`
	Target      float64        `json:"target"`
	Good        int64          `json:"good_total"`
	Bad         int64          `json:"bad_total"`
	Windows     []WindowStatus `json:"windows"`
	Degraded    bool           `json:"degraded"`
}

// Snapshot reports every objective's cumulative counts and per-window
// burn rates as of now.
func (e *SLO) Snapshot() []ObjectiveStatus {
	if e == nil {
		return nil
	}
	now := e.now()
	out := make([]ObjectiveStatus, 0, len(e.states))
	for _, st := range e.states {
		os := ObjectiveStatus{
			Name:        st.Name,
			ThresholdMS: float64(st.Threshold) / float64(time.Millisecond),
			Target:      st.Target,
			Degraded:    true,
		}
		st.mu.Lock()
		os.Good, os.Bad = st.good, st.bad
		st.mu.Unlock()
		for _, w := range e.windows {
			good, bad := st.window(now, w)
			ws := WindowStatus{Window: fmtWindow(w), Good: good, Bad: bad}
			if total := good + bad; total > 0 {
				ws.BadFraction = float64(bad) / float64(total)
				ws.BurnRate = ws.BadFraction / (1 - st.Target)
			}
			if ws.BurnRate < e.burn {
				os.Degraded = false
			}
			os.Windows = append(os.Windows, ws)
		}
		if os.Good+os.Bad == 0 {
			os.Degraded = false
		}
		out = append(out, os)
	}
	return out
}

// Degraded reports whether any objective's burn rate exceeds the
// configured threshold in every window.
func (e *SLO) Degraded() bool {
	if e == nil {
		return false
	}
	for _, os := range e.Snapshot() {
		if os.Degraded {
			return true
		}
	}
	return false
}

// Register exposes the engine as dav_slo_* gauges, evaluated at scrape
// time: per-objective target/threshold and cumulative good/bad counts,
// per-(objective, window) burn rates, and the overall degraded bit.
func (e *SLO) Register(r *obs.Registry) {
	for _, st := range e.states {
		st := st
		l := obs.Labels{"slo": st.Name}
		r.GaugeFunc("dav_slo_target",
			"Configured good-fraction target of the objective.", l,
			func() float64 { return st.Target })
		r.GaugeFunc("dav_slo_threshold_seconds",
			"Latency bound a request must beat to count as good.", l,
			func() float64 { return st.Threshold.Seconds() })
		r.GaugeFunc("dav_slo_good_total",
			"Requests that met the objective (cumulative).", l,
			func() float64 { st.mu.Lock(); defer st.mu.Unlock(); return float64(st.good) })
		r.GaugeFunc("dav_slo_bad_total",
			"Requests that missed the objective (cumulative).", l,
			func() float64 { st.mu.Lock(); defer st.mu.Unlock(); return float64(st.bad) })
		for _, w := range e.windows {
			w := w
			wl := obs.Labels{"slo": st.Name, "window": fmtWindow(w)}
			r.GaugeFunc("dav_slo_burn_rate",
				"Error-budget burn rate over the trailing window (1 = budget consumed exactly at the sustainable rate).", wl,
				func() float64 {
					good, bad := st.window(e.now(), w)
					if good+bad == 0 {
						return 0
					}
					return (float64(bad) / float64(good+bad)) / (1 - st.Target)
				})
		}
	}
	r.GaugeFunc("dav_slo_degraded",
		"1 when some objective burns past the alert rate in every window, else 0.", nil,
		func() float64 {
			if e.Degraded() {
				return 1
			}
			return 0
		})
}

// fmtWindow renders a window duration compactly ("5m", "1h", "90s").
func fmtWindow(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	case d >= time.Second && d%time.Second == 0:
		return fmt.Sprintf("%ds", d/time.Second)
	default:
		return d.String()
	}
}
