package ops

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSamplerRing: the ring retains the most recent samples
// oldest-first and Latest tracks the newest.
func TestSamplerRing(t *testing.T) {
	s := NewSampler(SamplerConfig{Interval: time.Hour, Ring: 3})
	if _, ok := s.Latest(); ok {
		t.Fatal("Latest before any sample")
	}
	var last Sample
	for i := 0; i < 5; i++ {
		last = s.SampleNow()
	}
	if got := s.Samples(); got != 5 {
		t.Fatalf("Samples = %d, want 5", got)
	}
	trend := s.Trend()
	if len(trend) != 3 {
		t.Fatalf("Trend len = %d, want ring size 3", len(trend))
	}
	for i := 1; i < len(trend); i++ {
		if trend[i].Time.Before(trend[i-1].Time) {
			t.Fatalf("trend not oldest-first: %v then %v", trend[i-1].Time, trend[i].Time)
		}
	}
	latest, ok := s.Latest()
	if !ok || !latest.Time.Equal(last.Time) {
		t.Fatalf("Latest = %v ok=%v, want the final sample %v", latest.Time, ok, last.Time)
	}
	if latest.Goroutines <= 0 || latest.HeapAllocBytes == 0 {
		t.Errorf("implausible sample: %+v", latest)
	}
}

// TestSamplerStartStop: the loop produces samples and Stop halts it.
func TestSamplerStartStop(t *testing.T) {
	s := NewSampler(SamplerConfig{Interval: 5 * time.Millisecond, Ring: 64})
	s.Start()
	s.Start() // double-start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for s.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s.Stop()
	if got := s.Samples(); got < 3 {
		t.Fatalf("only %d samples after start", got)
	}
	n := s.Samples()
	time.Sleep(30 * time.Millisecond)
	if got := s.Samples(); got != n {
		t.Fatalf("sampler still ticking after Stop: %d -> %d", n, got)
	}
	s.Stop() // double-stop is a no-op
}

// TestSamplerGauges: registered dav_runtime_* gauges expose the latest
// sample's values.
func TestSamplerGauges(t *testing.T) {
	s := NewSampler(SamplerConfig{Interval: time.Hour, Ring: 4})
	r := obs.NewRegistry()
	s.Register(r)
	s.SampleNow()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"dav_runtime_goroutines", "dav_runtime_heap_alloc_bytes",
		"dav_runtime_heap_sys_bytes", "dav_runtime_gc_cpu_fraction",
		"dav_runtime_gc_pause_seconds_total", "dav_runtime_open_fds",
		"dav_runtime_sched_latency_seconds", "dav_runtime_samples_total 1",
		"dav_runtime_sample_interval_seconds 3600",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if err := obs.CheckExposition([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if strings.Contains(out, "dav_runtime_goroutines 0\n") {
		t.Error("goroutine gauge still zero after a sample")
	}
}
