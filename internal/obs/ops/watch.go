package ops

import (
	"sync"
	"sync/atomic"
	"time"
)

// DegradedWatcher polls a boolean probe (typically SLO.Degraded) and
// fires a callback on each rising edge — the moment the probe flips
// from false to true. The SLO engine exposes state, not events, so a
// poll is the subscription mechanism; a 1s interval detects a burn
// flip well within the shortest burn window while costing one mutex
// acquisition per tick.
type DegradedWatcher struct {
	probe    func() bool
	onRise   func()
	interval time.Duration

	fired atomic.Int64

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// WatchDegraded starts a watcher goroutine. probe and onRise must be
// non-nil; interval defaults to 1s when non-positive. onRise is called
// synchronously from the watcher goroutine, so long-running reactions
// should hand off (e.g. prof.Capturer.TriggerAsync already does).
func WatchDegraded(probe func() bool, interval time.Duration, onRise func()) *DegradedWatcher {
	if interval <= 0 {
		interval = time.Second
	}
	w := &DegradedWatcher{
		probe:    probe,
		onRise:   onRise,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *DegradedWatcher) loop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	prev := w.probe() // no edge for "already degraded at start"
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			cur := w.probe()
			if cur && !prev {
				w.fired.Add(1)
				w.onRise()
			}
			prev = cur
		}
	}
}

// Fired reports how many rising edges have been observed.
func (w *DegradedWatcher) Fired() int64 {
	if w == nil {
		return 0
	}
	return w.fired.Load()
}

// Stop halts the watcher and waits for the goroutine to exit. Safe to
// call more than once and on a nil receiver.
func (w *DegradedWatcher) Stop() {
	if w == nil {
		return
	}
	w.mu.Lock()
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	w.mu.Unlock()
	<-w.done
}
