package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestSeriesLimitCapsFamilies: past the cap, new label combinations
// collapse into one {overflow="true"} series and the overflow counter
// counts every rejection; existing series keep working.
func TestSeriesLimitCapsFamilies(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit(3)
	if got := r.SeriesLimit(); got != 3 {
		t.Fatalf("SeriesLimit = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		r.Counter("hits_total", "", Labels{"path": fmt.Sprintf("/p%d", i)}).Inc()
	}
	// Two rejected combinations share the overflow series.
	r.Counter("hits_total", "", Labels{"path": "/p3"}).Inc()
	r.Counter("hits_total", "", Labels{"path": "/p4"}).Add(2)
	// An existing combination is still its own series.
	r.Counter("hits_total", "", Labels{"path": "/p0"}).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `hits_total{overflow="true"} 3`) {
		t.Errorf("overflow series wrong:\n%s", out)
	}
	if !strings.Contains(out, `hits_total{path="/p0"} 2`) {
		t.Errorf("pre-cap series lost an increment:\n%s", out)
	}
	if strings.Contains(out, "/p3") || strings.Contains(out, "/p4") {
		t.Errorf("rejected label values leaked into the exposition:\n%s", out)
	}
	if !strings.Contains(out, OverflowMetric+" 2") {
		t.Errorf("overflow counter != 2:\n%s", out)
	}
	if err := CheckExposition([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestSeriesLimitExemptions: unlabelled series never overflow (one per
// family by construction), other families get their own budget, and
// histograms overflow like counters.
func TestSeriesLimitExemptions(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit(2)
	for i := 0; i < 5; i++ {
		r.Histogram("lat_seconds", "", Labels{"m": fmt.Sprintf("M%d", i)}, DefBuckets).Observe(0.01)
	}
	r.Gauge("plain_gauge", "", nil).Set(1) // unlabelled: always admitted
	r.Counter("other_total", "", Labels{"k": "v"}).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `lat_seconds_count{overflow="true"} 3`) {
		t.Errorf("histogram overflow series wrong:\n%s", out)
	}
	if !strings.Contains(out, "plain_gauge 1") {
		t.Errorf("unlabelled gauge rejected:\n%s", out)
	}
	if !strings.Contains(out, `other_total{k="v"} 1`) {
		t.Errorf("fresh family rejected under its own budget:\n%s", out)
	}
}

// TestSeriesLimitDisabled: limit 0 keeps the original unbounded
// behavior and registers no overflow counter.
func TestSeriesLimitDisabled(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 50; i++ {
		r.Counter("hits_total", "", Labels{"path": fmt.Sprintf("/p%d", i)}).Inc()
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "overflow") {
		t.Fatalf("unlimited registry produced overflow artifacts:\n%s", b.String())
	}
}

// TestConcurrentRegistrationAndScrape hammers metric creation with
// unbounded fresh label values from many goroutines while scrapers
// render and snapshot concurrently — the -race guard for the registry's
// registration path and the cardinality cap.
func TestConcurrentRegistrationAndScrape(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit(16)
	const workers, iters = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l := Labels{"path": fmt.Sprintf("/w%d/i%d", w, i)}
				r.Counter("req_total", "", l).Inc()
				r.Gauge("inflight", "", l).Add(1)
				r.Histogram("lat_seconds", "", l, DefBuckets).Observe(0.001)
				if i%64 == 0 {
					r.GaugeFunc("cb_gauge", "", Labels{"w": fmt.Sprintf("%d", w)},
						func() float64 { return float64(i) })
				}
			}
		}(w)
	}
	// Two concurrent scrapers: text exposition and snapshot.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
			}
		}()
	}
	wg.Wait()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := CheckExposition([]byte(out)); err != nil {
		t.Fatalf("exposition invalid after hammer: %v", err)
	}
	// The cap held: at most limit+1 series per family (the +1 is the
	// overflow series itself).
	for _, fam := range []string{"req_total", "inflight"} {
		n := 0
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, fam+"{") {
				n++
			}
		}
		if n > 17 {
			t.Errorf("family %s has %d series, cap was 16+overflow", fam, n)
		}
	}
	// Every observation landed somewhere: total counted requests ==
	// workers*iters.
	var total int64
	for key, v := range r.Snapshot() {
		if strings.HasPrefix(key, "req_total") {
			total += int64(v.(float64))
		}
	}
	if want := int64(workers * iters); total != want {
		t.Errorf("req_total sum = %d, want %d (observations lost)", total, want)
	}
}
