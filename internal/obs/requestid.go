package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
)

// RequestIDHeader is the header carrying a request's trace ID. Clients
// send it, servers echo it, and access logs record it, so one client
// operation is traceable end-to-end through server logs.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen caps accepted inbound IDs so a hostile client cannot
// bloat logs.
const maxRequestIDLen = 64

type requestIDKey struct{}

// NewRequestID mints a random 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; an ID of
		// zeros still traces a single request within one log window.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request ID from ctx ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// sanitizeRequestID strips header injection material (control bytes)
// and truncates oversized IDs; an empty result means "generate one".
func sanitizeRequestID(id string) string {
	id = strings.TrimSpace(id)
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	clean := strings.Map(func(r rune) rune {
		if r < 0x20 || r == 0x7f {
			return -1
		}
		return r
	}, id)
	return clean
}

// EnsureRequestID resolves the request's trace ID — the inbound
// X-Request-ID header, the request context, or a freshly generated one,
// in that order — and returns the request with the ID installed in its
// context.
func EnsureRequestID(r *http.Request) (*http.Request, string) {
	id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
	if id == "" {
		id = RequestIDFrom(r.Context())
	}
	if id == "" {
		id = NewRequestID()
	}
	return r.WithContext(WithRequestID(r.Context(), id)), id
}
