package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
)

// RequestIDHeader is the header carrying a request's trace ID. Clients
// send it, servers echo it, and access logs record it, so one client
// operation is traceable end-to-end through server logs.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen caps accepted inbound IDs so a hostile client cannot
// bloat logs.
const maxRequestIDLen = 64

type requestIDKey struct{}

// NewRequestID mints a random 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; an ID of
		// zeros still traces a single request within one log window.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request ID from ctx ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// CleanRequestID validates an inbound request ID before it is echoed
// into logs and responses. The value is attacker-controlled, so the
// policy is strict: 1 to 64 characters drawn from [A-Za-z0-9._-], or
// the whole value is rejected ("" — the caller mints a fresh ID rather
// than propagating any part of a malformed header). Truncating or
// stripping would still echo attacker-chosen bytes, so malformed input
// is discarded outright.
func CleanRequestID(id string) string {
	id = strings.TrimSpace(id)
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// EnsureRequestID resolves the request's trace ID — the validated
// inbound X-Request-ID header, the request context, or a freshly
// generated one, in that order — and returns the request with the ID
// installed in its context.
func EnsureRequestID(r *http.Request) (*http.Request, string) {
	id := CleanRequestID(r.Header.Get(RequestIDHeader))
	if id == "" {
		id = RequestIDFrom(r.Context())
	}
	if id == "" {
		id = NewRequestID()
	}
	return r.WithContext(WithRequestID(r.Context(), id)), id
}
