package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestLogRingEviction(t *testing.T) {
	r := NewLogRing(4)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(r, "line %d\n", i)
	}
	got := r.Tail(0)
	want := []string{"line 6", "line 7", "line 8", "line 9"}
	if len(got) != len(want) {
		t.Fatalf("Tail = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Tail[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	if got := r.Tail(2); len(got) != 2 || got[1] != "line 9" {
		t.Errorf("Tail(2) = %v, want last two lines", got)
	}
}

func TestLogRingTee(t *testing.T) {
	ring := NewLogRing(16)
	var primary bytes.Buffer
	inner := slog.NewTextHandler(&primary, &slog.HandlerOptions{Level: slog.LevelInfo})
	logger := slog.New(ring.Tee(inner))

	logger.Info("hello", "k", "v")
	logger.Debug("quiet") // below the primary's level, still ringed

	if !strings.Contains(primary.String(), "hello") {
		t.Errorf("primary handler missed the record: %q", primary.String())
	}
	if strings.Contains(primary.String(), "quiet") {
		t.Errorf("primary handler should have filtered the debug record")
	}
	tail := strings.Join(ring.Tail(0), "\n")
	if !strings.Contains(tail, "hello") || !strings.Contains(tail, "k=v") {
		t.Errorf("ring missed the info record: %q", tail)
	}
	if !strings.Contains(tail, "quiet") {
		t.Errorf("ring should retain debug records: %q", tail)
	}
}

func TestLogRingHandler(t *testing.T) {
	r := NewLogRing(8)
	fmt.Fprintf(r, "alpha\n")
	fmt.Fprintf(r, "beta\n")

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/logs", nil))
	if rec.Code != 200 || rec.Body.String() != "alpha\nbeta\n" {
		t.Errorf("GET = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/logs?n=1", nil))
	if rec.Body.String() != "beta\n" {
		t.Errorf("GET ?n=1 = %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/logs?n=x", nil))
	if rec.Code != 400 {
		t.Errorf("GET ?n=x = %d, want 400", rec.Code)
	}
}

func TestLogRingConcurrent(t *testing.T) {
	r := NewLogRing(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fmt.Fprintf(r, "g%d line %d\n", g, i)
				r.Tail(4)
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 400 {
		t.Errorf("Total = %d, want 400", r.Total())
	}
	if got := len(r.Tail(0)); got != 32 {
		t.Errorf("retained = %d, want 32", got)
	}
}
