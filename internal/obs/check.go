package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text-format payload: it must
// be non-empty, every sample line must parse as `name[{labels}] value`,
// and at least one TYPE comment and one sample must be present. The CI
// smoke job uses this to fail a build whose /metrics output regresses
// to empty or malformed.
func CheckExposition(data []byte) error {
	if len(bytes.TrimSpace(data)) == 0 {
		return fmt.Errorf("obs: exposition is empty")
	}
	sawType, samples := false, 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, "# TYPE "):
			rest := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(rest) != 2 {
				return fmt.Errorf("obs: line %d: malformed TYPE comment %q", line, text)
			}
			switch rest[1] {
			case kindCounter, kindGauge, kindHistogram, "summary", "untyped":
			default:
				return fmt.Errorf("obs: line %d: unknown metric type %q", line, rest[1])
			}
			sawType = true
		case strings.HasPrefix(text, "#"):
			continue
		default:
			if err := checkSample(text); err != nil {
				return fmt.Errorf("obs: line %d: %w", line, err)
			}
			samples++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: reading exposition: %w", err)
	}
	if !sawType {
		return fmt.Errorf("obs: exposition has no TYPE comments")
	}
	if samples == 0 {
		return fmt.Errorf("obs: exposition has no samples")
	}
	return nil
}

// checkSample validates one `name[{labels}] value` line, optionally
// followed by an OpenMetrics exemplar suffix ` # {labels} value`.
func checkSample(text string) error {
	if j := strings.Index(text, " # "); j >= 0 {
		if err := checkExemplar(strings.TrimSpace(text[j+3:])); err != nil {
			return fmt.Errorf("sample %q: %w", text, err)
		}
		text = strings.TrimSpace(text[:j])
	}
	i := strings.LastIndexByte(text, ' ')
	if i < 0 {
		return fmt.Errorf("sample %q has no value", text)
	}
	name, val := strings.TrimSpace(text[:i]), text[i+1:]
	if val != "+Inf" && val != "-Inf" && val != "NaN" {
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("sample %q: bad value %q", text, val)
		}
	}
	if j := strings.IndexByte(name, '{'); j >= 0 {
		if !strings.HasSuffix(name, "}") {
			return fmt.Errorf("sample %q: unterminated label set", text)
		}
		name = name[:j]
	}
	if !validMetricName(name) {
		return fmt.Errorf("sample %q: bad metric name %q", text, name)
	}
	return nil
}

// checkExemplar validates the `{labels} value` part of an exemplar
// suffix.
func checkExemplar(text string) error {
	if !strings.HasPrefix(text, "{") {
		return fmt.Errorf("exemplar %q: missing label set", text)
	}
	end := strings.IndexByte(text, '}')
	if end < 0 {
		return fmt.Errorf("exemplar %q: unterminated label set", text)
	}
	rest := strings.Fields(text[end+1:])
	if len(rest) == 0 {
		return fmt.Errorf("exemplar %q: missing value", text)
	}
	if _, err := strconv.ParseFloat(rest[0], 64); err != nil {
		return fmt.Errorf("exemplar %q: bad value %q", text, rest[0])
	}
	return nil
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
