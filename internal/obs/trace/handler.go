package trace

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
	"time"
)

// Handler serves the flight recorder on the admin listener (mount at
// /debug/traces):
//
//	GET /debug/traces               HTML index of retained traces
//	GET /debug/traces?id=<hex>      one trace as an indented span tree
//	GET /debug/traces?format=jsonl  the full JSONL export
//	GET /debug/traces?format=stats  recorder counters as JSON
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch {
		case req.URL.Query().Get("format") == "jsonl":
			w.Header().Set("Content-Type", "application/jsonl")
			r.WriteJSONL(w)
		case req.URL.Query().Get("format") == "stats":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(r.Stats())
		case req.URL.Query().Get("id") != "":
			r.serveOne(w, req.URL.Query().Get("id"))
		default:
			r.serveIndex(w)
		}
	})
}

// serveIndex renders the retained-trace table, newest first.
func (r *Recorder) serveIndex(w http.ResponseWriter) {
	traces := r.Traces()
	st := r.Stats()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<html><head><title>traces</title></head><body>\n<h1>Flight recorder</h1>\n")
	fmt.Fprintf(&b, "<p>%d retained, %d active, %d decided, %d kept, %d dropped "+
		"(<a href=\"?format=jsonl\">jsonl</a>, <a href=\"?format=stats\">stats</a>)</p>\n",
		st.Retained, st.Active, st.Decided, st.Kept, st.Dropped)
	b.WriteString("<table border=1 cellpadding=4>\n<tr><th>trace</th><th>root</th>" +
		"<th>duration</th><th>spans</th><th>reason</th><th>start</th><th>error</th></tr>\n")
	for _, t := range traces {
		errText := ""
		for _, s := range t.Spans {
			if s.Err != "" {
				errText = s.Err
				break
			}
		}
		fmt.Fprintf(&b, "<tr><td><a href=\"?id=%s\"><code>%s</code></a></td>"+
			"<td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			t.ID, t.ID, html.EscapeString(t.Root.Name), t.Root.Duration.Round(time.Microsecond),
			len(t.Spans), t.Reason, t.Root.Start.UTC().Format(time.RFC3339Nano),
			html.EscapeString(errText))
	}
	b.WriteString("</table></body></html>\n")
	w.Write([]byte(b.String()))
}

// serveOne renders a single trace as an indented plain-text span tree.
func (r *Recorder) serveOne(w http.ResponseWriter, id string) {
	t := r.Find(id)
	if t == nil {
		http.Error(w, "trace not found (evicted or never sampled)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "trace %s  root=%s  duration=%s  reason=%s  spans=%d\n\n",
		t.ID, t.Root.Name, t.Root.Duration.Round(time.Microsecond), t.Reason, len(t.Spans))
	var render func(depth int, spans []jsonSpan)
	render = func(depth int, spans []jsonSpan) {
		for _, s := range spans {
			line := fmt.Sprintf("%s%-30s %9dus  +%dus", strings.Repeat("  ", depth),
				s.Name, s.DurUS, s.StartUS)
			if len(s.Attrs) > 0 {
				attrs, _ := json.Marshal(s.Attrs)
				line += "  " + string(attrs)
			}
			if s.Err != "" {
				line += "  ERROR: " + s.Err
			}
			fmt.Fprintln(w, line)
			render(depth+1, s.Children)
		}
	}
	render(0, t.Tree())
}
