package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Recorder is the bounded in-memory flight recorder. Finished spans
// accumulate per trace; when a trace's last local root span ends the
// recorder makes its tail-sampling decision: keep every trace whose
// root exceeded SlowThreshold, every trace containing an errored span,
// and a SampleRate-sized random sample of the rest. Kept traces live
// in a fixed-capacity ring (oldest evicted); dropped traces free their
// memory immediately. All methods are safe for concurrent use.
type Recorder struct {
	cfg RecorderConfig

	mu       sync.Mutex
	active   map[TraceID]*activeTrace
	order    []TraceID // active-trace FIFO, for stale eviction
	retained []*Trace  // decision ring, oldest first
	rnd      *rand.Rand

	// Counters for the admin surface and tests.
	decided   int64
	kept      int64
	dropped   int64
	evicted   int64 // active traces evicted before a decision
	lateSpans int64 // spans arriving after their trace was decided
}

// RecorderConfig bounds and tunes a Recorder. Zero values select the
// documented defaults.
type RecorderConfig struct {
	// Capacity is the maximum number of retained traces (default 256).
	Capacity int
	// MaxSpansPerTrace caps spans buffered per trace; further spans in
	// the same trace are counted but not stored (default 512).
	MaxSpansPerTrace int
	// MaxActive caps concurrently buffering (undecided) traces; the
	// oldest is evicted undecided when exceeded (default 1024).
	MaxActive int
	// SlowThreshold is the root-span latency at or above which a trace
	// is always kept (default 500ms; negative disables the slow rule).
	SlowThreshold time.Duration
	// SampleRate is the probability of keeping a trace that is neither
	// slow nor errored, in [0,1] (default 0: tail rules only).
	SampleRate float64
	// Seed seeds the sampling RNG; 0 derives a seed from the clock.
	Seed int64
}

// Retention reasons recorded on kept traces.
const (
	ReasonSlow   = "slow"
	ReasonError  = "error"
	ReasonSample = "sample"
)

// activeTrace buffers one undecided trace.
type activeTrace struct {
	spans     []SpanData
	openRoots int
	sawRoot   bool
	truncated int // spans dropped by MaxSpansPerTrace
}

// Trace is one retained span tree.
type Trace struct {
	ID        TraceID
	Root      SpanData // the decision root (earliest local root)
	Spans     []SpanData
	Reason    string
	Truncated int // spans not stored due to the per-trace cap
}

// NewRecorder builds a Recorder from cfg.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.MaxSpansPerTrace <= 0 {
		cfg.MaxSpansPerTrace = 512
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 1024
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 500 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Recorder{
		cfg:    cfg,
		active: map[TraceID]*activeTrace{},
		rnd:    rand.New(rand.NewSource(seed)),
	}
}

// Config returns the recorder's effective configuration.
func (r *Recorder) Config() RecorderConfig { return r.cfg }

// rootStarted notes a local root opening so the decision waits until
// every local root in the trace has finished (in-process benchmarks
// run client and server on one tracer; the client root must win).
func (r *Recorder) rootStarted(id TraceID, _ time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	at := r.activeLocked(id)
	at.openRoots++
	at.sawRoot = true
}

// spanEnded buffers one finished span and, when it closes the trace's
// last local root, decides the trace. Only roots create buffers (every
// trace opens with a root), so a span arriving after its trace was
// decided or evicted is counted late rather than resurrecting a buffer
// that would never be decided.
func (r *Recorder) spanEnded(d SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	at, ok := r.active[d.TraceID]
	if !ok {
		r.lateSpans++
		return
	}
	if len(at.spans) < r.cfg.MaxSpansPerTrace {
		at.spans = append(at.spans, d)
	} else {
		at.truncated++
	}
	if d.Root {
		if at.openRoots > 0 {
			at.openRoots--
		}
		if at.openRoots == 0 {
			r.decideLocked(d.TraceID, at)
		}
	}
}

// activeLocked finds or creates the buffer for a trace, enforcing the
// active-trace cap by evicting the oldest undecided trace.
func (r *Recorder) activeLocked(id TraceID) *activeTrace {
	if at, ok := r.active[id]; ok {
		return at
	}
	for len(r.active) >= r.cfg.MaxActive && len(r.order) > 0 {
		victim := r.order[0]
		r.order = r.order[1:]
		if _, ok := r.active[victim]; ok {
			delete(r.active, victim)
			r.evicted++
		}
	}
	at := &activeTrace{}
	r.active[id] = at
	r.order = append(r.order, id)
	return at
}

// decideLocked applies the tail-sampling policy to a finished trace.
func (r *Recorder) decideLocked(id TraceID, at *activeTrace) {
	delete(r.active, id)
	for i, oid := range r.order {
		if oid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.decided++

	root, ok := decisionRoot(at.spans)
	if !ok {
		r.dropped++
		return
	}
	reason := ""
	switch {
	case r.cfg.SlowThreshold >= 0 && root.Duration >= r.cfg.SlowThreshold:
		reason = ReasonSlow
	case anyErrored(at.spans):
		reason = ReasonError
	case r.cfg.SampleRate > 0 && r.rnd.Float64() < r.cfg.SampleRate:
		reason = ReasonSample
	default:
		r.dropped++
		return
	}
	r.kept++
	spans := at.spans
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	r.retained = append(r.retained, &Trace{
		ID: id, Root: root, Spans: spans, Reason: reason, Truncated: at.truncated,
	})
	if over := len(r.retained) - r.cfg.Capacity; over > 0 {
		r.retained = append([]*Trace(nil), r.retained[over:]...)
	}
}

// decisionRoot picks the span whose duration gates the slow rule: the
// earliest-started local root (preferring a true root with no parent
// at all — in shared-process runs that is the client operation span).
func decisionRoot(spans []SpanData) (SpanData, bool) {
	var root SpanData
	found := false
	better := func(c SpanData) bool {
		if !found {
			return true
		}
		// A parentless root outranks a remote-continued one; earlier
		// start breaks ties.
		if !c.HasParent() != !root.HasParent() {
			return !c.HasParent()
		}
		return c.Start.Before(root.Start)
	}
	for _, s := range spans {
		if s.Root && better(s) {
			root, found = s, true
		}
	}
	if !found && len(spans) > 0 {
		root, found = spans[0], true
		for _, s := range spans[1:] {
			if s.Start.Before(root.Start) {
				root = s
			}
		}
	}
	return root, found
}

// anyErrored reports whether any span recorded an error.
func anyErrored(spans []SpanData) bool {
	for _, s := range spans {
		if s.Err != "" {
			return true
		}
	}
	return false
}

// Traces returns the retained traces, newest first.
func (r *Recorder) Traces() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, len(r.retained))
	for i, t := range r.retained {
		out[len(out)-1-i] = t
	}
	return out
}

// Find returns the retained trace with the given hex ID, or nil.
func (r *Recorder) Find(hexID string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.retained {
		if t.ID.String() == hexID {
			return t
		}
	}
	return nil
}

// Len returns the number of retained traces.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.retained)
}

// Stats reports the recorder's counters.
type RecorderStats struct {
	Retained  int   `json:"retained"`
	Active    int   `json:"active"`
	Decided   int64 `json:"decided"`
	Kept      int64 `json:"kept"`
	Dropped   int64 `json:"dropped"`
	Evicted   int64 `json:"evicted"`
	LateSpans int64 `json:"late_spans"`
}

// Stats returns a snapshot of the recorder's counters.
func (r *Recorder) Stats() RecorderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RecorderStats{
		Retained: len(r.retained), Active: len(r.active), Decided: r.decided,
		Kept: r.kept, Dropped: r.dropped, Evicted: r.evicted, LateSpans: r.lateSpans,
	}
}

// jsonSpan is the export shape of one span-tree node.
type jsonSpan struct {
	Name     string         `json:"name"`
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_id,omitempty"`
	Remote   bool           `json:"remote_parent,omitempty"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"duration_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Err      string         `json:"error,omitempty"`
	Children []jsonSpan     `json:"children,omitempty"`
}

// jsonTrace is the export shape of one trace: one JSONL line.
type jsonTrace struct {
	TraceID   string     `json:"trace_id"`
	Root      string     `json:"root"`
	Start     string     `json:"start"`
	DurUS     int64      `json:"duration_us"`
	Reason    string     `json:"reason"`
	SpanCount int        `json:"span_count"`
	Truncated int        `json:"truncated,omitempty"`
	Spans     []jsonSpan `json:"spans"`
}

// Tree assembles the trace's spans into parent/child order: top-level
// spans (no stored parent) sorted by start, children nested under
// their parents sorted by start.
func (t *Trace) Tree() []jsonSpan {
	base := t.Root.Start
	byID := map[SpanID]bool{}
	for _, s := range t.Spans {
		byID[s.SpanID] = true
	}
	children := map[SpanID][]SpanData{}
	var tops []SpanData
	for _, s := range t.Spans {
		if s.HasParent() && !s.Remote && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			tops = append(tops, s)
		}
	}
	var build func(s SpanData) jsonSpan
	build = func(s SpanData) jsonSpan {
		js := jsonSpan{
			Name:    s.Name,
			SpanID:  s.SpanID.String(),
			StartUS: s.Start.Sub(base).Microseconds(),
			DurUS:   s.Duration.Microseconds(),
			Attrs:   s.attrMap(),
			Err:     s.Err,
		}
		if s.HasParent() {
			js.ParentID = s.Parent.String()
			js.Remote = s.Remote
		}
		for _, c := range children[s.SpanID] {
			js.Children = append(js.Children, build(c))
		}
		return js
	}
	out := make([]jsonSpan, 0, len(tops))
	for _, s := range tops {
		out = append(out, build(s))
	}
	return out
}

// export renders the trace as its JSONL object.
func (t *Trace) export() jsonTrace {
	return jsonTrace{
		TraceID:   t.ID.String(),
		Root:      t.Root.Name,
		Start:     t.Root.Start.UTC().Format(time.RFC3339Nano),
		DurUS:     t.Root.Duration.Microseconds(),
		Reason:    t.Reason,
		SpanCount: len(t.Spans),
		Truncated: t.Truncated,
		Spans:     t.Tree(),
	}
}

// MarshalJSON renders the trace's export shape.
func (t *Trace) MarshalJSON() ([]byte, error) { return json.Marshal(t.export()) }

// WriteJSONL writes every retained trace as one JSON object per line,
// oldest first — the -trace-out export format.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	r.mu.Lock()
	traces := append([]*Trace(nil), r.retained...)
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, t := range traces {
		if err := enc.Encode(t.export()); err != nil {
			return fmt.Errorf("trace: export %s: %w", t.ID, err)
		}
	}
	return nil
}
