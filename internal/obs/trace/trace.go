// Package trace is an in-process, stdlib-only span tracer for the
// reproduced architecture. The paper's evaluation (Tables 1-3) reports
// only end-to-end wall-clock numbers and has to argue that the network
// — not mod_dav or the DBM layer — is the bottleneck; spans let this
// reproduction show where the time goes instead: one trace per logical
// client operation, propagated over W3C traceparent into the server
// middleware, the store decorator, and the DBM property layer.
//
// The model is deliberately small: a Span has a trace ID, a span ID, a
// parent link, a name, a monotonic duration, key/value attributes, and
// an error status. Spans are delivered to an optional Recorder as they
// finish; the Recorder applies tail-based sampling (keep every trace
// whose root exceeded a latency threshold, every errored trace, and a
// small random sample of the rest) into a bounded in-memory flight
// recorder that can be exported as JSONL or browsed at /debug/traces.
//
// A nil *Tracer and a nil *Span are both valid and inert, so call
// sites need no conditionals on whether tracing is enabled.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"sync"
	"time"
)

// TraceID identifies one trace (one logical operation end to end).
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zeros value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zeros value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Attr is one key/value annotation on a span. Values are kept as
// rendered strings or integers so exports are deterministic.
type Attr struct {
	Key   string
	Value any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Config configures a Tracer.
type Config struct {
	// Clock supplies timestamps for span start and end; nil means
	// time.Now. Every duration the tracer reports is measured on this
	// one clock, and the instrumentation layers reuse the span's
	// measurement for their histograms, so a span and the metric
	// observation for the same operation cannot disagree.
	Clock func() time.Time
	// IDSource supplies trace/span ID entropy; nil means crypto/rand.
	// Tests inject a deterministic reader for golden exports.
	IDSource io.Reader
	// Recorder receives finished spans for tail sampling; nil discards
	// them (spans still propagate, e.g. for log stamping).
	Recorder *Recorder
}

// Tracer mints spans. The zero value is not usable; call New. A nil
// *Tracer is valid and produces no spans.
type Tracer struct {
	clock func() time.Time
	rec   *Recorder

	idMu sync.Mutex
	ids  io.Reader
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	t := &Tracer{clock: cfg.Clock, ids: cfg.IDSource, rec: cfg.Recorder}
	if t.clock == nil {
		t.clock = time.Now
	}
	if t.ids == nil {
		t.ids = rand.Reader
	}
	return t
}

// Now returns the tracer's clock reading (time.Now for a nil tracer),
// so callers timing fallback paths stay on the same clock as spans.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Now()
	}
	return t.clock()
}

// Recorder returns the attached flight recorder (nil when absent).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// newIDs mints a fresh trace and span ID pair from the ID source.
func (t *Tracer) newIDs() (TraceID, SpanID) {
	var buf [24]byte
	t.idMu.Lock()
	_, err := io.ReadFull(t.ids, buf[:])
	t.idMu.Unlock()
	if err != nil {
		// The platform's entropy failing should not take tracing down;
		// a constant non-zero ID still groups one request's spans.
		buf = [24]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24}
	}
	var tid TraceID
	var sid SpanID
	copy(tid[:], buf[:16])
	copy(sid[:], buf[16:])
	return tid, sid
}

// newSpanID mints a span ID within an existing trace.
func (t *Tracer) newSpanID() SpanID {
	var buf [8]byte
	t.idMu.Lock()
	_, err := io.ReadFull(t.ids, buf[:])
	t.idMu.Unlock()
	if err != nil {
		buf = [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	}
	return SpanID(buf)
}

// Span is one timed operation inside a trace. All methods are safe on
// a nil receiver (no-ops), and End is safe to call at most once per
// span from one goroutine; distinct spans may be manipulated from
// distinct goroutines concurrently.
type Span struct {
	tracer  *Tracer
	traceID TraceID
	spanID  SpanID
	parent  SpanID
	remote  bool // parent arrived over the wire (traceparent)
	root    bool // no in-process parent: a local root
	name    string
	start   time.Time

	mu    sync.Mutex
	attrs []Attr
	err   error
	ended bool
}

// spanKey carries the active span in a context.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the active span in ctx (nil when absent).
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Start begins a span under ctx and returns the derived context
// carrying it. Parentage resolves in order: an in-process parent span
// in ctx, a remote span context installed by ContextWithRemote
// (traceparent), or a fresh root trace. A nil tracer returns ctx
// unchanged and a nil span.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := &Span{tracer: t, name: name, start: t.clock(), attrs: attrs}
	switch {
	case SpanFromContext(ctx) != nil:
		parent := SpanFromContext(ctx)
		sp.traceID = parent.traceID
		sp.parent = parent.spanID
		sp.spanID = t.newSpanID()
	case !RemoteFromContext(ctx).TraceID.IsZero():
		rc := RemoteFromContext(ctx)
		sp.traceID = rc.TraceID
		sp.parent = rc.SpanID
		sp.remote = true
		sp.root = true
		sp.spanID = t.newSpanID()
	default:
		sp.traceID, sp.spanID = t.newIDs()
		sp.root = true
	}
	if t.rec != nil && sp.root {
		t.rec.rootStarted(sp.traceID, sp.start)
	}
	return ContextWithSpan(ctx, sp), sp
}

// Child begins a span under the span already carried by ctx, using
// that span's tracer. When ctx carries no span the returned span is
// nil (inert) and ctx is returned unchanged — this is how the store
// and DBM layers participate in tracing without holding a Tracer.
func Child(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.tracer.Start(ctx, name, attrs...)
}

// Region begins a child span (as Child) and returns a finish function
// reporting the operation's duration, measured once on the tracer's
// clock when a trace is active and on the wall clock otherwise. Both
// the span and the caller's metrics then see the same number.
func Region(ctx context.Context, name string, attrs ...Attr) (context.Context, func(err error) time.Duration) {
	ctx, sp := Child(ctx, name, attrs...)
	if sp == nil {
		start := time.Now()
		return ctx, func(error) time.Duration { return time.Since(start) }
	}
	return ctx, sp.EndErr
}

// TraceID returns the span's trace ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// SpanID returns the span's ID (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr annotates the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// SetError records err as the span's status (nil is ignored).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

// End finishes the span and returns its duration on the tracer's
// clock. Ending twice is a no-op returning the zero duration; ending a
// nil span returns zero.
func (s *Span) End() time.Duration { return s.EndErr(nil) }

// EndErr finishes the span with err as its status (nil for success)
// and returns its duration.
func (s *Span) EndErr(err error) time.Duration {
	if s == nil {
		return 0
	}
	end := s.tracer.clock()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return 0
	}
	s.ended = true
	if err != nil {
		s.err = err
	}
	d := end.Sub(s.start)
	if d < 0 {
		d = 0
	}
	data := SpanData{
		TraceID:  s.traceID,
		SpanID:   s.spanID,
		Parent:   s.parent,
		Remote:   s.remote,
		Root:     s.root,
		Name:     s.name,
		Start:    s.start,
		Duration: d,
		Attrs:    append([]Attr(nil), s.attrs...),
	}
	if s.err != nil {
		data.Err = s.err.Error()
	}
	s.mu.Unlock()
	if s.tracer.rec != nil {
		s.tracer.rec.spanEnded(data)
	}
	return d
}

// SpanData is the immutable record of a finished span.
type SpanData struct {
	TraceID  TraceID
	SpanID   SpanID
	Parent   SpanID // zero = no parent
	Remote   bool   // parent was propagated over the wire
	Root     bool   // local root: no in-process parent
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
	Err      string // non-empty = errored
}

// HasParent reports whether the span has any parent, local or remote.
func (d SpanData) HasParent() bool { return !d.Parent.IsZero() }

// attrMap renders attributes as a map for JSON export; duplicate keys
// keep the last value.
func (d SpanData) attrMap() map[string]any {
	if len(d.Attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(d.Attrs))
	for _, a := range d.Attrs {
		m[a.Key] = a.Value
	}
	return m
}
