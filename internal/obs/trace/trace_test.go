package trace

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// stepClock returns a deterministic clock advancing by step per call.
func stepClock(start time.Time, step time.Duration) func() time.Time {
	var mu sync.Mutex
	n := 0
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t := start.Add(step * time.Duration(n))
		n++
		return t
	}
}

// seqReader yields a deterministic byte sequence for golden IDs.
type seqReader struct {
	mu sync.Mutex
	b  byte
}

func (r *seqReader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range p {
		r.b++
		p[i] = r.b
	}
	return len(p), nil
}

var epoch = time.Date(2001, 7, 1, 12, 0, 0, 0, time.UTC)

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "op")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil tracer installed a span in the context")
	}
	// Every span method must be a no-op on nil.
	sp.SetAttr(Str("k", "v"))
	sp.SetError(errors.New("x"))
	if d := sp.EndErr(errors.New("x")); d != 0 {
		t.Fatalf("nil span duration = %v, want 0", d)
	}
	if !sp.TraceID().IsZero() || !sp.SpanID().IsZero() || sp.Name() != "" {
		t.Fatal("nil span leaked identity")
	}
	if tr.Now().IsZero() {
		t.Fatal("nil tracer clock returned zero time")
	}
	if tr.Recorder() != nil {
		t.Fatal("nil tracer has a recorder")
	}
}

func TestSpanParentage(t *testing.T) {
	tr := New(Config{Clock: stepClock(epoch, time.Millisecond), IDSource: &seqReader{}})
	ctx, root := tr.Start(context.Background(), "root")
	if root.TraceID().IsZero() || root.SpanID().IsZero() {
		t.Fatal("root IDs not minted")
	}
	ctx2, child := Child(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %s != root trace %s", child.TraceID(), root.TraceID())
	}
	if child.SpanID() == root.SpanID() {
		t.Fatal("child reused the root span ID")
	}
	_, grand := Child(ctx2, "grandchild")
	if grand.TraceID() != root.TraceID() {
		t.Fatal("grandchild left the trace")
	}
	// Child of a bare context is inert.
	if _, orphan := Child(context.Background(), "orphan"); orphan != nil {
		t.Fatal("Child without a parent span should be nil")
	}
}

func TestEndDurationOnTracerClock(t *testing.T) {
	tr := New(Config{Clock: stepClock(epoch, 10*time.Millisecond), IDSource: &seqReader{}})
	_, sp := tr.Start(context.Background(), "op") // clock: start=0ms
	if d := sp.End(); d != 10*time.Millisecond {  // clock: end=10ms
		t.Fatalf("duration = %v, want 10ms", d)
	}
	if d := sp.End(); d != 0 {
		t.Fatalf("second End = %v, want 0 (no double delivery)", d)
	}
}

func TestRegionFallsBackWithoutTrace(t *testing.T) {
	_, end := Region(context.Background(), "untraced")
	if d := end(nil); d < 0 {
		t.Fatalf("fallback duration negative: %v", d)
	}
}

func TestRegionSharesMeasurement(t *testing.T) {
	rec := NewRecorder(RecorderConfig{SampleRate: 1, Seed: 1})
	tr := New(Config{Clock: stepClock(epoch, 5*time.Millisecond), IDSource: &seqReader{}, Recorder: rec})
	ctx, root := tr.Start(context.Background(), "root") // t=0
	_, end := Region(ctx, "store.get")                  // t=5
	got := end(nil)                                     // t=10
	if got != 5*time.Millisecond {
		t.Fatalf("region duration = %v, want 5ms", got)
	}
	root.End() // t=15 -> trace decided
	tr2 := rec.Traces()
	if len(tr2) != 1 {
		t.Fatalf("retained %d traces, want 1", len(tr2))
	}
	for _, s := range tr2[0].Spans {
		if s.Name == "store.get" && s.Duration != got {
			t.Fatalf("span recorded %v but caller saw %v", s.Duration, got)
		}
	}
}

func TestConcurrentSpans(t *testing.T) {
	// Exercised under -race in CI: many goroutines starting, annotating
	// and finishing spans against one tracer and recorder.
	rec := NewRecorder(RecorderConfig{SampleRate: 1, Seed: 42, Capacity: 4096})
	tr := New(Config{Recorder: rec})
	const workers = 16
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, root := tr.Start(context.Background(), "root", Int("worker", int64(w)))
				_, child := Child(ctx, "child")
				child.SetAttr(Int("i", int64(i)))
				if i%5 == 0 {
					child.SetError(errors.New("synthetic"))
				}
				child.End()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	st := rec.Stats()
	if st.Decided != workers*perWorker {
		t.Fatalf("decided %d traces, want %d", st.Decided, workers*perWorker)
	}
	if st.Kept != workers*perWorker {
		t.Fatalf("kept %d traces, want %d (SampleRate 1)", st.Kept, workers*perWorker)
	}
	if st.Active != 0 {
		t.Fatalf("%d traces still active after all roots ended", st.Active)
	}
}

func TestSharedTracerClientServerRoots(t *testing.T) {
	// In-process benchmarks run client and server on one tracer: the
	// client root and the server's remote-continued root both count as
	// local roots, and the decision must wait for the last of them.
	rec := NewRecorder(RecorderConfig{SampleRate: 1, Seed: 1})
	tr := New(Config{Clock: stepClock(epoch, time.Millisecond), IDSource: &seqReader{}, Recorder: rec})

	ctx, clientRoot := tr.Start(context.Background(), "dav.client PUT")
	// Simulate the wire hop: the server sees only the remote span context.
	serverCtx := ContextWithRemote(context.Background(), SpanContext{
		TraceID: clientRoot.TraceID(), SpanID: clientRoot.SpanID(), Sampled: true,
	})
	serverCtx, serverSpan := tr.Start(serverCtx, "dav.server PUT")
	_, storeSpan := Child(serverCtx, "store.put")
	storeSpan.End()
	serverSpan.End()
	if rec.Len() != 0 {
		t.Fatal("trace decided before the client root ended")
	}
	_ = ctx
	clientRoot.End()
	if rec.Len() != 1 {
		t.Fatalf("retained %d traces, want 1", rec.Len())
	}
	got := rec.Traces()[0]
	if got.Root.Name != "dav.client PUT" {
		t.Fatalf("decision root = %q, want the parentless client root", got.Root.Name)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(got.Spans))
	}
}
