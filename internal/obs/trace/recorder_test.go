package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTailDecisionRules(t *testing.T) {
	// Slow traces are always kept; errored traces are kept; fast clean
	// traces are dropped when SampleRate is 0.
	rec := NewRecorder(RecorderConfig{SlowThreshold: 40 * time.Millisecond})
	tr := New(Config{Clock: stepClock(epoch, 10*time.Millisecond), IDSource: &seqReader{}, Recorder: rec})

	_, fast := tr.Start(context.Background(), "fast") // dur 10ms < 40ms
	fast.End()
	_, slow := tr.Start(context.Background(), "slow")
	tr.Now() // burn clock ticks: start .. +3 ticks
	tr.Now()
	tr.Now()
	slow.End() // dur 40ms >= threshold
	_, errd := tr.Start(context.Background(), "errored")
	errd.EndErr(errors.New("boom")) // dur 10ms but errored

	if rec.Len() != 2 {
		t.Fatalf("retained %d, want 2 (slow + errored)", rec.Len())
	}
	reasons := map[string]string{}
	for _, tc := range rec.Traces() {
		reasons[tc.Root.Name] = tc.Reason
	}
	if reasons["slow"] != ReasonSlow {
		t.Fatalf("slow trace reason = %q", reasons["slow"])
	}
	if reasons["errored"] != ReasonError {
		t.Fatalf("errored trace reason = %q", reasons["errored"])
	}
	st := rec.Stats()
	if st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (the fast trace)", st.Dropped)
	}
}

func TestNegativeSlowThresholdDisablesSlowRule(t *testing.T) {
	rec := NewRecorder(RecorderConfig{SlowThreshold: -1})
	tr := New(Config{Clock: stepClock(epoch, time.Hour), IDSource: &seqReader{}, Recorder: rec})
	_, sp := tr.Start(context.Background(), "glacial")
	sp.End() // one hour long, but the slow rule is off and SampleRate is 0
	if rec.Len() != 0 {
		t.Fatal("slow rule fired despite negative threshold")
	}
}

func TestRecorderEvictionAtCapacity(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 2, SampleRate: 1, Seed: 7})
	tr := New(Config{Clock: stepClock(epoch, time.Millisecond), IDSource: &seqReader{}, Recorder: rec})
	var ids []string
	for i := 0; i < 5; i++ {
		_, sp := tr.Start(context.Background(), fmt.Sprintf("op%d", i))
		ids = append(ids, sp.TraceID().String())
		sp.End()
	}
	if rec.Len() != 2 {
		t.Fatalf("retained %d, want capacity 2", rec.Len())
	}
	// Only the two newest survive the ring.
	for _, old := range ids[:3] {
		if rec.Find(old) != nil {
			t.Fatalf("evicted trace %s still retained", old)
		}
	}
	for _, fresh := range ids[3:] {
		if rec.Find(fresh) == nil {
			t.Fatalf("fresh trace %s missing", fresh)
		}
	}
	if got := rec.Traces()[0].Root.Name; got != "op4" {
		t.Fatalf("newest retained trace is %q, want op4", got)
	}
}

func TestActiveTraceCapEvictsUndecided(t *testing.T) {
	rec := NewRecorder(RecorderConfig{MaxActive: 2, SampleRate: 1, Seed: 1})
	tr := New(Config{Clock: stepClock(epoch, time.Millisecond), IDSource: &seqReader{}, Recorder: rec})
	// Three roots open concurrently: the first must be evicted undecided.
	_, a := tr.Start(context.Background(), "a")
	_, b := tr.Start(context.Background(), "b")
	_, c := tr.Start(context.Background(), "c")
	a.End() // its buffer is gone; this span arrives late
	b.End()
	c.End()
	st := rec.Stats()
	if st.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", st.Evicted)
	}
	if st.LateSpans != 1 {
		t.Fatalf("late spans = %d, want 1 (root a ended after eviction)", st.LateSpans)
	}
	if rec.Len() != 2 {
		t.Fatalf("retained %d, want 2 (b and c)", rec.Len())
	}
}

func TestMaxSpansPerTraceTruncates(t *testing.T) {
	rec := NewRecorder(RecorderConfig{MaxSpansPerTrace: 3, SampleRate: 1, Seed: 1})
	tr := New(Config{Clock: stepClock(epoch, time.Millisecond), IDSource: &seqReader{}, Recorder: rec})
	ctx, root := tr.Start(context.Background(), "root")
	for i := 0; i < 5; i++ {
		_, sp := Child(ctx, fmt.Sprintf("child%d", i))
		sp.End()
	}
	root.End()
	got := rec.Traces()[0]
	if len(got.Spans) != 3 {
		t.Fatalf("stored %d spans, want 3", len(got.Spans))
	}
	if got.Truncated != 3 {
		// 5 children + 1 root = 6 finished spans; 3 stored, 3 dropped.
		t.Fatalf("truncated = %d, want 3", got.Truncated)
	}
}

// TestGoldenJSONLExport locks the JSONL span-tree format: deterministic
// clock and ID source, one trace, exact expected output.
func TestGoldenJSONLExport(t *testing.T) {
	rec := NewRecorder(RecorderConfig{SampleRate: 1, Seed: 1})
	tr := New(Config{Clock: stepClock(epoch, 10*time.Millisecond), IDSource: &seqReader{}, Recorder: rec})

	ctx, root := tr.Start(context.Background(), "dav.client PUT", Str("path", "/d/x")) // t=0
	cctx, child := Child(ctx, "store.put")                                             // t=10ms
	_, grand := Child(cctx, "dbm.put")                                                 // t=20ms
	grand.End()                                                                        // t=30ms, dur 10ms
	child.EndErr(errors.New("disk full"))                                              // t=40ms, dur 30ms
	root.End()                                                                         // t=50ms, dur 50ms

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	const want = `{"trace_id":"0102030405060708090a0b0c0d0e0f10","root":"dav.client PUT","start":"2001-07-01T12:00:00Z","duration_us":50000,"reason":"error","span_count":3,"spans":[{"name":"dav.client PUT","span_id":"1112131415161718","start_us":0,"duration_us":50000,"attrs":{"path":"/d/x"},"children":[{"name":"store.put","span_id":"191a1b1c1d1e1f20","parent_id":"1112131415161718","start_us":10000,"duration_us":30000,"error":"disk full","children":[{"name":"dbm.put","span_id":"2122232425262728","parent_id":"191a1b1c1d1e1f20","start_us":20000,"duration_us":10000}]}]}]}` + "\n"
	if got != want {
		t.Fatalf("JSONL mismatch:\n got: %s\nwant: %s", got, want)
	}
	// The export must stay parseable line by line.
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		var decoded map[string]any
		if err := json.Unmarshal([]byte(line), &decoded); err != nil {
			t.Fatalf("line not valid JSON: %v\n%s", err, line)
		}
	}
}
