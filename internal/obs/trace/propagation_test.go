package trace

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	sc := SpanContext{
		TraceID: TraceID{0x0a, 0xf7, 0x65, 0x19, 0x16, 0xcd, 0x43, 0xdd, 0x84, 0x48, 0xeb, 0x21, 0x1c, 0x80, 0x31, 0x9c},
		SpanID:  SpanID{0xb7, 0xad, 0x6b, 0x71, 0x69, 0x20, 0x33, 0x31},
		Sampled: true,
	}
	h := FormatTraceParent(sc)
	if h != "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01" {
		t.Fatalf("formatted %q", h)
	}
	got, err := ParseTraceParent(h)
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("round trip changed the context: %+v", got)
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	for _, bad := range []string{
		"",
		"garbage",
		valid + "0",                         // too long
		valid[:len(valid)-1],                // too short
		"01" + valid[2:],                    // unknown version
		strings.ToUpper(valid),              // uppercase hex is invalid per W3C
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace ID
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span ID
		"00-0af7651916cd43dd8448eb211cg0319c-b7ad6b7169203331-01", // non-hex byte
	} {
		if _, err := ParseTraceParent(bad); err == nil {
			t.Errorf("ParseTraceParent(%q) accepted malformed input", bad)
		}
	}
}

func TestExtractDiscardsMalformedHeader(t *testing.T) {
	r := httptest.NewRequest("GET", "/x", nil)
	r.Header.Set(TraceParentHeader, "00-INVALID-HEADER-01")
	ctx, ok := Extract(context.Background(), r)
	if ok {
		t.Fatal("Extract accepted a malformed traceparent")
	}
	if !RemoteFromContext(ctx).TraceID.IsZero() {
		t.Fatal("malformed header leaked a remote span context")
	}

	// Absent header: same, no remote context.
	r2 := httptest.NewRequest("GET", "/x", nil)
	if _, ok := Extract(context.Background(), r2); ok {
		t.Fatal("Extract reported success with no header")
	}
}

func TestInjectExtractAcrossHop(t *testing.T) {
	tr := New(Config{Clock: stepClock(epoch, time.Millisecond), IDSource: &seqReader{}})
	ctx, sp := tr.Start(context.Background(), "client op")
	r := httptest.NewRequest("PUT", "/doc", nil)
	Inject(ctx, r.Header)
	h := r.Header.Get(TraceParentHeader)
	if h == "" {
		t.Fatal("Inject wrote no header")
	}
	serverCtx, ok := Extract(context.Background(), r)
	if !ok {
		t.Fatalf("Extract rejected injected header %q", h)
	}
	rc := RemoteFromContext(serverCtx)
	if rc.TraceID != sp.TraceID() || rc.SpanID != sp.SpanID() {
		t.Fatalf("hop changed identity: got %s/%s want %s/%s",
			rc.TraceID, rc.SpanID, sp.TraceID(), sp.SpanID())
	}
	if !rc.Sampled {
		t.Fatal("active span must propagate as sampled")
	}
	// A nil-span context injects nothing.
	r2 := httptest.NewRequest("PUT", "/doc", nil)
	Inject(context.Background(), r2.Header)
	if r2.Header.Get(TraceParentHeader) != "" {
		t.Fatal("Inject stamped a header without an active span")
	}
}
