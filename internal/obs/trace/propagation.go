package trace

import (
	"context"
	"encoding/hex"
	"fmt"
	"net/http"
)

// TraceParentHeader is the W3C Trace Context header carrying trace
// continuation across the client/server hop.
const TraceParentHeader = "traceparent"

// traceparent wire format: version "00", 32 lowercase hex trace ID, 16
// lowercase hex parent span ID, 2 hex flags, dash separated.
const traceParentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// flagSampled is the only defined trace-flags bit.
const flagSampled = 0x01

// SpanContext is the wire-visible identity of a span: what traceparent
// carries between processes.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// IsValid reports whether both IDs are non-zero, per the W3C spec.
func (sc SpanContext) IsValid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// FormatTraceParent renders sc in the W3C traceparent format.
func FormatTraceParent(sc SpanContext) string {
	flags := byte(0)
	if sc.Sampled {
		flags = flagSampled
	}
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceID, sc.SpanID, flags)
}

// ParseTraceParent validates and parses a traceparent header value.
// Validation is strict — exact length, lowercase hex only, non-zero
// IDs, known version — because the value is attacker-controlled: a
// malformed header must be rejected (and a fresh trace minted) rather
// than echoed into logs, responses, or the flight recorder.
func ParseTraceParent(v string) (SpanContext, error) {
	if len(v) != traceParentLen {
		return SpanContext{}, fmt.Errorf("trace: traceparent length %d, want %d", len(v), traceParentLen)
	}
	if v[0] != '0' || v[1] != '0' {
		return SpanContext{}, fmt.Errorf("trace: unsupported traceparent version %q", v[:2])
	}
	if v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, fmt.Errorf("trace: malformed traceparent separators")
	}
	if !isLowerHex(v[3:35]) || !isLowerHex(v[36:52]) || !isLowerHex(v[53:55]) {
		return SpanContext{}, fmt.Errorf("trace: traceparent contains non-hex characters")
	}
	var sc SpanContext
	hex.Decode(sc.TraceID[:], []byte(v[3:35]))
	hex.Decode(sc.SpanID[:], []byte(v[36:52]))
	if !sc.IsValid() {
		return SpanContext{}, fmt.Errorf("trace: traceparent has all-zero IDs")
	}
	var flags [1]byte
	hex.Decode(flags[:], []byte(v[53:55]))
	sc.Sampled = flags[0]&flagSampled != 0
	return sc, nil
}

// isLowerHex reports whether s is entirely lowercase hexadecimal.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// remoteKey carries a remote (wire-propagated) parent span context.
type remoteKey struct{}

// ContextWithRemote installs a remote parent: the next Tracer.Start
// under ctx continues sc's trace instead of minting a new one.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteKey{}, sc)
}

// RemoteFromContext returns the remote parent installed by
// ContextWithRemote (zero when absent).
func RemoteFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(remoteKey{}).(SpanContext)
	return sc
}

// Inject stamps the active span in ctx into h as a traceparent header.
// Without an active span the header is left untouched.
func Inject(ctx context.Context, h http.Header) {
	sp := SpanFromContext(ctx)
	if sp == nil {
		return
	}
	h.Set(TraceParentHeader, FormatTraceParent(SpanContext{
		TraceID: sp.traceID, SpanID: sp.spanID, Sampled: true,
	}))
}

// Extract validates the inbound traceparent header on r and, when
// well formed, returns a context with the remote parent installed plus
// true. Malformed or absent headers return ctx unchanged and false —
// the caller then starts a fresh root rather than propagating
// attacker-controlled bytes.
func Extract(ctx context.Context, r *http.Request) (context.Context, bool) {
	v := r.Header.Get(TraceParentHeader)
	if v == "" {
		return ctx, false
	}
	sc, err := ParseTraceParent(v)
	if err != nil {
		return ctx, false
	}
	return ContextWithRemote(ctx, sc), true
}
