package ftp

import (
	"bytes"
	"crypto/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/auth"
)

// startServer returns a connected, logged-in client over a fresh root.
func startServer(t *testing.T, users *auth.Users) (*Client, string) {
	t.Helper()
	root := t.TempDir()
	srv := NewServer(root)
	srv.Users = users
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Quit() })
	return c, root
}

func TestStorRetrRoundTrip(t *testing.T) {
	c, root := startServer(t, nil)
	if err := c.Login("", ""); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	rand.Read(payload)
	if err := c.Stor("/data.bin", bytes.NewReader(payload)); err != nil {
		t.Fatalf("Stor: %v", err)
	}
	// File landed on disk.
	onDisk, err := os.ReadFile(filepath.Join(root, "data.bin"))
	if err != nil || !bytes.Equal(onDisk, payload) {
		t.Fatalf("disk contents mismatch: %d bytes, %v", len(onDisk), err)
	}
	// SIZE agrees.
	sz, err := c.Size("/data.bin")
	if err != nil || sz != int64(len(payload)) {
		t.Fatalf("Size = (%d, %v)", sz, err)
	}
	// RETR returns identical bytes.
	var buf bytes.Buffer
	n, err := c.Retr("/data.bin", &buf)
	if err != nil || n != int64(len(payload)) || !bytes.Equal(buf.Bytes(), payload) {
		t.Fatalf("Retr = (%d, %v)", n, err)
	}
}

func TestOverwrite(t *testing.T) {
	c, _ := startServer(t, nil)
	c.Login("", "")
	c.Stor("/f", bytes.NewReader([]byte("first version")))
	c.Stor("/f", bytes.NewReader([]byte("second")))
	var buf bytes.Buffer
	c.Retr("/f", &buf)
	if buf.String() != "second" {
		t.Fatalf("overwritten contents = %q", buf.String())
	}
}

func TestMkdirCwdAndRelativePaths(t *testing.T) {
	c, root := startServer(t, nil)
	c.Login("", "")
	if err := c.Mkdir("/sub/deep"); err != nil {
		t.Fatal(err)
	}
	if err := c.Stor("/sub/deep/f.bin", bytes.NewReader([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "sub", "deep", "f.bin")); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	c, _ := startServer(t, nil)
	c.Login("", "")
	c.Stor("/gone", bytes.NewReader([]byte("x")))
	if err := c.Delete("/gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Size("/gone"); err == nil {
		t.Fatal("deleted file still has a size")
	}
	if err := c.Delete("/gone"); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestAuthRequired(t *testing.T) {
	users := auth.NewUsers()
	users.Set("eric", "pw")
	c, _ := startServer(t, users)
	// Wrong password.
	if err := c.Login("eric", "wrong"); err == nil {
		t.Fatal("bad login accepted")
	}
	// Commands refused before login.
	if err := c.Stor("/x", bytes.NewReader([]byte("x"))); err == nil {
		t.Fatal("STOR without login accepted")
	}
	if err := c.Login("eric", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := c.Stor("/x", bytes.NewReader([]byte("x"))); err != nil {
		t.Fatalf("STOR after login: %v", err)
	}
}

func TestPathEscapeRejected(t *testing.T) {
	c, _ := startServer(t, nil)
	c.Login("", "")
	if err := c.Stor("/../../etc/evil", bytes.NewReader([]byte("x"))); err == nil {
		t.Fatal("path escape accepted")
	}
	if _, err := c.Size("../secret"); err == nil {
		t.Fatal("relative escape accepted")
	}
}

func TestRetrMissingFile(t *testing.T) {
	c, _ := startServer(t, nil)
	c.Login("", "")
	var buf bytes.Buffer
	if _, err := c.Retr("/nope", &buf); err == nil {
		t.Fatal("RETR of missing file succeeded")
	}
	// The control connection stays usable afterwards.
	if err := c.Stor("/ok", bytes.NewReader([]byte("x"))); err != nil {
		t.Fatalf("connection dead after failed RETR: %v", err)
	}
}

func TestMultipleTransfersOneSession(t *testing.T) {
	c, _ := startServer(t, nil)
	c.Login("", "")
	for i := 0; i < 5; i++ {
		body := bytes.Repeat([]byte{byte('a' + i)}, 1000*(i+1))
		name := string(rune('a'+i)) + ".bin"
		if err := c.Stor("/"+name, bytes.NewReader(body)); err != nil {
			t.Fatalf("Stor %d: %v", i, err)
		}
		var buf bytes.Buffer
		if _, err := c.Retr("/"+name, &buf); err != nil || !bytes.Equal(buf.Bytes(), body) {
			t.Fatalf("Retr %d mismatch: %v", i, err)
		}
	}
}

func TestControlCommands(t *testing.T) {
	c, _ := startServer(t, nil)
	if err := c.Login("", ""); err != nil {
		t.Fatal(err)
	}
	// SYST / NOOP / PWD keep the session healthy.
	for _, cmdline := range []string{"SYST", "NOOP", "PWD"} {
		code, _, err := c.cmd(cmdline)
		if err != nil || code >= 400 {
			t.Fatalf("%s = (%d, %v)", cmdline, code, err)
		}
	}
	// TYPE A is accepted (treated as binary), junk types refused.
	if code, _, _ := c.cmd("TYPE A"); code != 200 {
		t.Fatalf("TYPE A = %d", code)
	}
	if code, _, _ := c.cmd("TYPE X"); code != 504 {
		t.Fatalf("TYPE X = %d", code)
	}
	// Unknown command.
	if code, _, _ := c.cmd("FROBNICATE"); code != 502 {
		t.Fatalf("unknown command = %d", code)
	}
}

func TestCwdAndRelativeTransfers(t *testing.T) {
	c, root := startServer(t, nil)
	c.Login("", "")
	if err := c.Mkdir("/results"); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := c.cmd("CWD /results"); code != 250 {
		t.Fatalf("CWD = %d", code)
	}
	if code, msg, _ := c.cmd("PWD"); code != 257 || !strings.Contains(msg, "/results") {
		t.Fatalf("PWD = (%d, %q)", code, msg)
	}
	// A relative STOR lands inside the new working directory.
	if err := c.Stor("rel.bin", bytes.NewReader([]byte("relative"))); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "results", "rel.bin")); err != nil {
		t.Fatal(err)
	}
	// CWD to a missing directory fails and leaves the cwd unchanged.
	if code, _, _ := c.cmd("CWD /nowhere"); code != 550 {
		t.Fatalf("CWD missing = %d", code)
	}
	if code, msg, _ := c.cmd("PWD"); code != 257 || !strings.Contains(msg, "/results") {
		t.Fatalf("PWD after failed CWD = (%d, %q)", code, msg)
	}
}

func TestStorWithoutPasv(t *testing.T) {
	c, _ := startServer(t, nil)
	c.Login("", "")
	// Bypass the client's automatic PASV to exercise the server check.
	code, _, err := c.cmd("STOR /x")
	if err != nil || code != 425 {
		t.Fatalf("STOR without PASV = (%d, %v)", code, err)
	}
}

func TestEPSV(t *testing.T) {
	c, _ := startServer(t, nil)
	c.Login("", "")
	code, msg, err := c.cmd("EPSV")
	if err != nil || code != 229 || !strings.Contains(msg, "|||") {
		t.Fatalf("EPSV = (%d, %q, %v)", code, msg, err)
	}
}

func TestServerCloseDropsSessions(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(root)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Login("", "")
	srv.Close()
	// The control connection is dead now.
	if _, _, err := c.cmd("NOOP"); err == nil {
		t.Fatal("command succeeded after server close")
	}
	c.Quit()
}
