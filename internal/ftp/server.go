// Package ftp implements the minimal binary-mode FTP subset (RFC 959)
// that Table 2 of the paper uses as the baseline for HTTP PUT
// performance: USER/PASS login, passive-mode data connections, STOR,
// RETR and SIZE. Active (PORT) mode and ASCII translation are out of
// scope — the paper's comparison is explicitly against a binary-mode
// FTP client.
package ftp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/auth"
)

// Server is a minimal FTP server rooted at a directory.
type Server struct {
	// Root is the directory served. All paths are confined to it.
	Root string
	// Users authenticates logins; nil accepts any user (including
	// anonymous).
	Users *auth.Users

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer returns a server rooted at dir.
func NewServer(dir string) *Server {
	return &Server{Root: dir, conns: map[net.Conn]struct{}{}}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0")
// and returns the bound address. Serving happens on background
// goroutines; call Close to stop.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops the server and drops open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	return err
}

// session is one control-connection's state.
type session struct {
	srv      *Server
	conn     net.Conn
	r        *bufio.Reader
	user     string
	authed   bool
	cwd      string // virtual path, "/"-rooted
	dataList net.Listener
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sess := &session{srv: s, conn: conn, r: bufio.NewReader(conn), cwd: "/"}
	defer sess.closeData()
	sess.reply(220, "repro FTP service ready")
	for {
		line, err := sess.r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		cmd, arg, _ := strings.Cut(line, " ")
		if quit := sess.dispatch(strings.ToUpper(cmd), arg); quit {
			return
		}
	}
}

func (ss *session) reply(code int, msg string) {
	fmt.Fprintf(ss.conn, "%d %s\r\n", code, msg)
}

func (ss *session) closeData() {
	if ss.dataList != nil {
		ss.dataList.Close()
		ss.dataList = nil
	}
}

// resolve maps a client path to a filesystem path under Root.
func (ss *session) resolve(p string) (string, error) {
	if !strings.HasPrefix(p, "/") {
		p = path.Join(ss.cwd, p)
	}
	clean := path.Clean(p)
	if strings.Contains(clean, "..") {
		return "", errors.New("path escapes root")
	}
	return filepath.Join(ss.srv.Root, filepath.FromSlash(clean)), nil
}

// needAuth guards commands that require a completed login.
func (ss *session) needAuth() bool {
	if ss.authed {
		return false
	}
	ss.reply(530, "please login with USER and PASS")
	return true
}

func (ss *session) dispatch(cmd, arg string) (quit bool) {
	switch cmd {
	case "USER":
		ss.user = arg
		if ss.srv.Users == nil {
			ss.authed = true
			ss.reply(230, "login ok")
		} else {
			ss.reply(331, "password required")
		}
	case "PASS":
		if ss.srv.Users == nil || ss.srv.Users.Check(ss.user, arg) {
			ss.authed = true
			ss.reply(230, "login ok")
		} else {
			ss.authed = false
			ss.reply(530, "login incorrect")
		}
	case "SYST":
		ss.reply(215, "UNIX Type: L8")
	case "NOOP":
		ss.reply(200, "ok")
	case "TYPE":
		switch strings.ToUpper(arg) {
		case "I", "L 8":
			ss.reply(200, "type set to I")
		case "A":
			ss.reply(200, "type set to A (treated as binary)")
		default:
			ss.reply(504, "unsupported type")
		}
	case "PWD":
		ss.reply(257, fmt.Sprintf("%q is the current directory", ss.cwd))
	case "CWD":
		if ss.needAuth() {
			return false
		}
		dst, err := ss.resolve(arg)
		if err != nil {
			ss.reply(550, err.Error())
			return false
		}
		fi, err := os.Stat(dst)
		if err != nil || !fi.IsDir() {
			ss.reply(550, "no such directory")
			return false
		}
		if strings.HasPrefix(arg, "/") {
			ss.cwd = path.Clean(arg)
		} else {
			ss.cwd = path.Join(ss.cwd, arg)
		}
		ss.reply(250, "directory changed")
	case "MKD":
		if ss.needAuth() {
			return false
		}
		dst, err := ss.resolve(arg)
		if err != nil {
			ss.reply(550, err.Error())
			return false
		}
		if err := os.MkdirAll(dst, 0o755); err != nil {
			ss.reply(550, err.Error())
			return false
		}
		ss.reply(257, "created")
	case "PASV", "EPSV":
		if ss.needAuth() {
			return false
		}
		ss.closeData()
		host := ss.conn.LocalAddr().(*net.TCPAddr).IP
		l, err := net.Listen("tcp", net.JoinHostPort(host.String(), "0"))
		if err != nil {
			ss.reply(425, "cannot open data port")
			return false
		}
		ss.dataList = l
		port := l.Addr().(*net.TCPAddr).Port
		if cmd == "EPSV" {
			ss.reply(229, fmt.Sprintf("entering extended passive mode (|||%d|)", port))
		} else {
			ip4 := host.To4()
			if ip4 == nil {
				ip4 = net.IPv4(127, 0, 0, 1).To4()
			}
			ss.reply(227, fmt.Sprintf("entering passive mode (%d,%d,%d,%d,%d,%d)",
				ip4[0], ip4[1], ip4[2], ip4[3], port>>8, port&0xFF))
		}
	case "SIZE":
		if ss.needAuth() {
			return false
		}
		dst, err := ss.resolve(arg)
		if err != nil {
			ss.reply(550, err.Error())
			return false
		}
		fi, err := os.Stat(dst)
		if err != nil || fi.IsDir() {
			ss.reply(550, "no such file")
			return false
		}
		ss.reply(213, fmt.Sprint(fi.Size()))
	case "STOR":
		ss.transfer(arg, true)
	case "RETR":
		ss.transfer(arg, false)
	case "DELE":
		if ss.needAuth() {
			return false
		}
		dst, err := ss.resolve(arg)
		if err != nil {
			ss.reply(550, err.Error())
			return false
		}
		if err := os.Remove(dst); err != nil {
			ss.reply(550, "delete failed")
			return false
		}
		ss.reply(250, "deleted")
	case "QUIT":
		ss.reply(221, "goodbye")
		return true
	default:
		ss.reply(502, "command not implemented")
	}
	return false
}

// transfer performs a STOR (upload) or RETR (download) over the
// pending passive data connection.
func (ss *session) transfer(arg string, upload bool) {
	if ss.needAuth() {
		return
	}
	if ss.dataList == nil {
		ss.reply(425, "use PASV first")
		return
	}
	dst, err := ss.resolve(arg)
	if err != nil {
		ss.reply(550, err.Error())
		return
	}
	var file *os.File
	if upload {
		file, err = os.Create(dst)
	} else {
		file, err = os.Open(dst)
	}
	if err != nil {
		ss.reply(550, err.Error())
		return
	}
	defer file.Close()

	ss.reply(150, "opening binary mode data connection")
	data, err := ss.dataList.Accept()
	ss.closeData()
	if err != nil {
		ss.reply(425, "data connection failed")
		return
	}
	defer data.Close()
	if upload {
		_, err = io.Copy(file, data)
	} else {
		_, err = io.Copy(data, file)
	}
	if err != nil {
		ss.reply(451, "transfer aborted: "+err.Error())
		return
	}
	if upload {
		if err := file.Sync(); err != nil {
			ss.reply(451, "sync failed")
			return
		}
	}
	data.Close()
	ss.reply(226, "transfer complete")
}
