package ftp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// Client is a binary-mode, passive-only FTP client matching the server
// subset.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	host string
}

// Dial connects to an FTP server and consumes the greeting.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn)}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = "127.0.0.1"
	}
	c.host = host
	if _, _, err := c.expect(220); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// cmd sends one command line and reads the reply.
func (c *Client) cmd(format string, args ...any) (int, string, error) {
	if _, err := fmt.Fprintf(c.conn, format+"\r\n", args...); err != nil {
		return 0, "", err
	}
	return c.readReply()
}

func (c *Client) readReply() (int, string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if len(line) < 4 {
		return 0, "", fmt.Errorf("ftp: short reply %q", line)
	}
	code, err := strconv.Atoi(line[:3])
	if err != nil {
		return 0, "", fmt.Errorf("ftp: bad reply %q", line)
	}
	return code, line[4:], nil
}

func (c *Client) expect(want int) (int, string, error) {
	code, msg, err := c.readReply()
	if err != nil {
		return 0, "", err
	}
	if code != want {
		return code, msg, fmt.Errorf("ftp: expected %d, got %d %s", want, code, msg)
	}
	return code, msg, nil
}

// Login authenticates; pass empty strings for servers without auth.
func (c *Client) Login(user, pass string) error {
	if user == "" {
		user = "anonymous"
	}
	code, msg, err := c.cmd("USER %s", user)
	if err != nil {
		return err
	}
	if code == 331 {
		code, msg, err = c.cmd("PASS %s", pass)
		if err != nil {
			return err
		}
	}
	if code != 230 {
		return fmt.Errorf("ftp: login failed: %d %s", code, msg)
	}
	// Binary mode, as in the paper's comparison.
	if code, msg, err = c.cmd("TYPE I"); err != nil || code != 200 {
		return fmt.Errorf("ftp: TYPE I failed: %d %s %v", code, msg, err)
	}
	return nil
}

// pasv opens a passive data connection.
func (c *Client) pasv() (net.Conn, error) {
	code, msg, err := c.cmd("PASV")
	if err != nil {
		return nil, err
	}
	if code != 227 {
		return nil, fmt.Errorf("ftp: PASV failed: %d %s", code, msg)
	}
	open := strings.Index(msg, "(")
	close := strings.Index(msg, ")")
	if open < 0 || close < open {
		return nil, fmt.Errorf("ftp: bad PASV reply %q", msg)
	}
	parts := strings.Split(msg[open+1:close], ",")
	if len(parts) != 6 {
		return nil, fmt.Errorf("ftp: bad PASV reply %q", msg)
	}
	nums := make([]int, 6)
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("ftp: bad PASV reply %q", msg)
		}
		nums[i] = n
	}
	addr := fmt.Sprintf("%d.%d.%d.%d:%d", nums[0], nums[1], nums[2], nums[3], nums[4]<<8|nums[5])
	return net.Dial("tcp", addr)
}

// Stor uploads r to the remote path (binary mode).
func (c *Client) Stor(remote string, r io.Reader) error {
	data, err := c.pasv()
	if err != nil {
		return err
	}
	code, msg, err := c.cmd("STOR %s", remote)
	if err != nil {
		data.Close()
		return err
	}
	if code != 150 {
		data.Close()
		return fmt.Errorf("ftp: STOR refused: %d %s", code, msg)
	}
	if _, err := io.Copy(data, r); err != nil {
		data.Close()
		return err
	}
	if err := data.Close(); err != nil {
		return err
	}
	if _, _, err := c.expect(226); err != nil {
		return err
	}
	return nil
}

// Retr downloads the remote path into w, returning the byte count.
func (c *Client) Retr(remote string, w io.Writer) (int64, error) {
	data, err := c.pasv()
	if err != nil {
		return 0, err
	}
	code, msg, err := c.cmd("RETR %s", remote)
	if err != nil {
		data.Close()
		return 0, err
	}
	if code != 150 {
		data.Close()
		return 0, fmt.Errorf("ftp: RETR refused: %d %s", code, msg)
	}
	n, err := io.Copy(w, data)
	data.Close()
	if err != nil {
		return n, err
	}
	if _, _, err := c.expect(226); err != nil {
		return n, err
	}
	return n, nil
}

// Size returns the remote file's size.
func (c *Client) Size(remote string) (int64, error) {
	code, msg, err := c.cmd("SIZE %s", remote)
	if err != nil {
		return 0, err
	}
	if code != 213 {
		return 0, fmt.Errorf("ftp: SIZE failed: %d %s", code, msg)
	}
	return strconv.ParseInt(strings.TrimSpace(msg), 10, 64)
}

// Delete removes a remote file.
func (c *Client) Delete(remote string) error {
	code, msg, err := c.cmd("DELE %s", remote)
	if err != nil {
		return err
	}
	if code != 250 {
		return fmt.Errorf("ftp: DELE failed: %d %s", code, msg)
	}
	return nil
}

// Mkdir creates a remote directory.
func (c *Client) Mkdir(remote string) error {
	code, msg, err := c.cmd("MKD %s", remote)
	if err != nil {
		return err
	}
	if code != 257 {
		return fmt.Errorf("ftp: MKD failed: %d %s", code, msg)
	}
	return nil
}

// Quit logs out and closes the control connection.
func (c *Client) Quit() error {
	c.cmd("QUIT")
	return c.conn.Close()
}
