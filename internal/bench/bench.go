// Package bench is the experiment harness: wall-clock plus CPU-time
// measurement (the paper's Table 1 reports both, attributing
// elapsed−CPU to the server side), and a fixed-width table renderer
// that prints each experiment next to the paper's published numbers.
package bench

import (
	"fmt"
	"io"
	"strings"
	"syscall"
	"time"
)

// Timing is one measured operation.
type Timing struct {
	Elapsed time.Duration
	CPU     time.Duration // process CPU (user+system) consumed, client side
}

// cpuNow returns this process's cumulative user+system CPU time.
func cpuNow() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	toDur := func(tv syscall.Timeval) time.Duration {
		return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
	}
	return toDur(ru.Utime) + toDur(ru.Stime)
}

// Measure runs fn once and reports its elapsed and CPU time.
//
// Note the caveat for in-process harnesses: when client and server
// share the process (loopback goroutines), CPU includes both sides;
// the paper's client/server split only holds when the server runs in
// a separate process (cmd/davd).
func Measure(fn func() error) (Timing, error) {
	cpu0 := cpuNow()
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	cpu := cpuNow() - cpu0
	return Timing{Elapsed: elapsed, CPU: cpu}, err
}

// Seconds formats a duration the way the paper's tables do ("0.068 s").
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f s", d.Seconds())
}

// Table renders experiment results aligned with paper-reference rows.
type Table struct {
	Title   string
	Note    string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	fmt.Fprintf(w, "\n%s\n%s\n", t.Title, strings.Repeat("=", max(len(t.Title), total)))
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		_ = i
	}
	fmt.Fprintln(w)
	for i := range t.Columns {
		fmt.Fprintf(w, "%-*s", widths[i]+2, strings.Repeat("-", widths[i]))
	}
	fmt.Fprintln(w)
	for _, row := range t.rows {
		for i, cell := range row {
			fmt.Fprintf(w, "%-*s", widths[i]+2, cell)
		}
		fmt.Fprintln(w)
	}
}

// Repeat runs fn n times and returns the fastest timing (the paper's
// single-shot numbers are best approximated by min-of-n, excluding
// warm-up noise). Use n=1 for strict single-shot.
func Repeat(n int, fn func() error) (Timing, error) {
	best := Timing{Elapsed: time.Duration(1<<63 - 1)}
	for i := 0; i < n; i++ {
		t, err := Measure(fn)
		if err != nil {
			return t, err
		}
		if t.Elapsed < best.Elapsed {
			best = t
		}
	}
	return best, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
