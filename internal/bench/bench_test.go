package bench

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestMeasureElapsed(t *testing.T) {
	timing, err := Measure(func() error {
		time.Sleep(20 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if timing.Elapsed < 15*time.Millisecond {
		t.Fatalf("elapsed = %v, want >= 15ms", timing.Elapsed)
	}
	// Sleeping burns almost no CPU.
	if timing.CPU > timing.Elapsed {
		t.Fatalf("cpu %v > elapsed %v for a sleep", timing.CPU, timing.Elapsed)
	}
}

func TestMeasureCPU(t *testing.T) {
	timing, err := Measure(func() error {
		x := 0.0
		for i := 0; i < 20_000_000; i++ {
			x += float64(i) * 1.0000001
		}
		if x == 0 {
			return errors.New("impossible")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if timing.CPU <= 0 {
		t.Fatalf("cpu = %v, want > 0 for a busy loop", timing.CPU)
	}
}

func TestMeasurePropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Measure(func() error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRepeatReturnsFastest(t *testing.T) {
	n := 0
	timing, err := Repeat(3, func() error {
		n++
		if n == 2 {
			time.Sleep(30 * time.Millisecond)
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if timing.Elapsed > 20*time.Millisecond {
		t.Fatalf("Repeat did not pick the fast run: %v", timing.Elapsed)
	}
	// Errors abort.
	sentinel := errors.New("x")
	if _, err := Repeat(5, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestSecondsFormat(t *testing.T) {
	if s := Seconds(68 * time.Millisecond); s != "0.068 s" {
		t.Fatalf("Seconds = %q", s)
	}
	if s := Seconds(3 * time.Second); s != "3.000 s" {
		t.Fatalf("Seconds = %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Table 1. Performance results", "op", "elapsed", "paper")
	tbl.Note = "elapsed and CPU time"
	tbl.AddRow("get all metadata", "0.010 s", "0.068 s")
	tbl.AddRow("copy hierarchy", "1.234 s", "3.482 s")
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"Table 1", "elapsed and CPU time", "get all metadata",
		"0.068 s", "copy hierarchy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: every data row has the op column padded to the
	// same width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "copy hierarchy    ") {
		t.Fatalf("row not padded: %q", last)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c")
	tbl.AddRow("only-one")
	var sb strings.Builder
	tbl.Fprint(&sb)
	if !strings.Contains(sb.String(), "only-one") {
		t.Fatal("short row dropped")
	}
}
