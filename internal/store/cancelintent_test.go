package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dbm"
	"repro/internal/store/journal"
)

// cancelAt opens a store whose step hook cancels the given context the
// first time the named point is reached — the cancellation analogue of
// crashAt: instead of dying between two journal steps, the operation's
// caller gives up there, and the operation must roll itself back inline.
func cancelAt(t *testing.T, dir, point string, cancel context.CancelFunc) *FSStore {
	t.Helper()
	fired := false
	s, err := NewFSStoreWith(dir, dbm.GDBM, FSOptions{
		StepHook: func(p string) {
			if p == point && !fired {
				fired = true
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// assertNoDebris fails if the tree under dir still holds a .put-* temp
// file or a pending journal intent — the two artifacts a cancelled
// multi-step operation could leak.
func assertNoDebris(t *testing.T, dir string) {
	t.Helper()
	filepath.Walk(dir, func(p string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() && strings.HasPrefix(fi.Name(), ".put-") {
			t.Errorf("temp file leaked by cancelled operation: %s", p)
		}
		return nil
	})
	pending, err := journal.ReadPending(filepath.Join(dir, propDirName, journalFileName))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	if len(pending) != 0 {
		t.Fatalf("journal still holds %d pending intents after inline rollback: %v", len(pending), pending)
	}
}

// TestPutCancelledMidIntent cancels an overwriting PUT at the
// put.intent boundary — the intent record is durable, the rename has
// not happened. The operation must return ctx.Err(), leave the pre-op
// body visible, remove its temp, and resolve the intent so a subsequent
// recovery (or davfsck) finds nothing to do.
func TestPutCancelledMidIntent(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	s := cancelAt(t, dir, "put.intent", cancel)

	mustMkcol(t, s, "/proj")
	mustPut(t, s, "/proj/doc.txt", "v1")

	_, err := s.Put(ctx, "/proj/doc.txt", strings.NewReader("v2"), "")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Put returned %v, want context.Canceled", err)
	}
	if got := readBody(t, s, "/proj/doc.txt"); got != "v1" {
		t.Fatalf("document body = %q after cancelled overwrite, want pre-op %q", got, "v1")
	}
	assertNoDebris(t, dir)

	// A reopen must not find anything to recover: the inline rollback
	// already did what crash recovery would have done.
	s2 := reopen(t, dir)
	if got := readBody(t, s2, "/proj/doc.txt"); got != "v1" {
		t.Fatalf("after reopen: body = %q, want %q", got, "v1")
	}
}

// TestPutCancelledMidIntentCreate is the creating variant: the
// cancelled PUT must leave no document at all.
func TestPutCancelledMidIntentCreate(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	s := cancelAt(t, dir, "put.intent", cancel)

	mustMkcol(t, s, "/proj")
	_, err := s.Put(ctx, "/proj/new.txt", strings.NewReader("never"), "")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Put returned %v, want context.Canceled", err)
	}
	if _, err := s.Stat(context.Background(), "/proj/new.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat after cancelled creating Put: %v, want ErrNotFound", err)
	}
	assertNoDebris(t, dir)
}

// TestPutCancelledAfterStaging cancels one step earlier, after the body
// is staged but before the intent: only the temp file exists, and it
// must be removed.
func TestPutCancelledAfterStaging(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	s := cancelAt(t, dir, "put.staged", cancel)

	mustMkcol(t, s, "/proj")
	_, err := s.Put(ctx, "/proj/doc.txt", strings.NewReader("x"), "")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Put returned %v, want context.Canceled", err)
	}
	assertNoDebris(t, dir)
}

// TestCancelledBeforeDecisiveStepIsExact sweeps every checkpoint the
// non-journaled single-step operations expose: a context cancelled
// before the call must reject the mutation outright with no side
// effects.
func TestCancelledBeforeDecisiveStepIsExact(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustMkcol(t, s, "/proj")
	mustPut(t, s, "/proj/doc.txt", "v1")

	done, cancel := context.WithCancel(context.Background())
	cancel()

	if err := s.Mkcol(done, "/proj/sub"); !errors.Is(err, context.Canceled) {
		t.Errorf("Mkcol with done ctx: %v", err)
	}
	if err := s.Delete(done, "/proj/doc.txt"); !errors.Is(err, context.Canceled) {
		t.Errorf("Delete with done ctx: %v", err)
	}
	if err := s.Rename(done, "/proj/doc.txt", "/proj/moved.txt"); !errors.Is(err, context.Canceled) {
		t.Errorf("Rename with done ctx: %v", err)
	}
	if got := readBody(t, s, "/proj/doc.txt"); got != "v1" {
		t.Fatalf("document disturbed by rejected operations: %q", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "proj", "sub")); !os.IsNotExist(err) {
		t.Fatal("rejected Mkcol created the directory anyway")
	}
}
