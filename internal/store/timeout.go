package store

import (
	"context"
	"encoding/xml"
	"io"
	"time"
)

// OpTimeout wraps s so that every store operation runs under its own
// deadline of d, layered on top of whatever deadline the caller's
// context already carries. This is the davd -store-op-timeout knob: a
// per-operation bound that keeps one pathological request (a lock
// convoy on a hot collection, a scan of a huge property database) from
// holding server resources indefinitely, independent of the
// whole-request timeout, which must stay generous enough for 200 MB
// document transfers.
//
// The deadline applies per store call, not per request: a PROPFIND
// that makes many store calls gets a fresh budget for each. When the
// deadline fires the operation returns an error wrapping
// context.DeadlineExceeded, which the DAV layer maps to 503 with a
// Retry-After.
//
// A d of zero (or negative) disables the wrapper: OpTimeout returns s
// unchanged.
func OpTimeout(s Store, d time.Duration) Store {
	if d <= 0 {
		return s
	}
	return &timeoutStore{s: s, d: d}
}

type timeoutStore struct {
	s Store
	d time.Duration
}

// Unwrap exposes the underlying store so health probes and stats
// collectors can walk the wrapper chain.
func (t *timeoutStore) Unwrap() Store { return t.s }

// op returns ctx bounded by the per-op deadline and its cancel.
func (t *timeoutStore) op(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, t.d)
}

func (t *timeoutStore) Stat(ctx context.Context, p string) (ResourceInfo, error) {
	ctx, cancel := t.op(ctx)
	defer cancel()
	return t.s.Stat(ctx, p)
}

func (t *timeoutStore) List(ctx context.Context, p string) ([]ResourceInfo, error) {
	ctx, cancel := t.op(ctx)
	defer cancel()
	return t.s.List(ctx, p)
}

func (t *timeoutStore) Mkcol(ctx context.Context, p string) error {
	ctx, cancel := t.op(ctx)
	defer cancel()
	return t.s.Mkcol(ctx, p)
}

func (t *timeoutStore) Put(ctx context.Context, p string, r io.Reader, contentType string) (bool, error) {
	ctx, cancel := t.op(ctx)
	defer cancel()
	return t.s.Put(ctx, p, r, contentType)
}

// Get does not bound the returned reader's lifetime — the deadline
// covers opening the document, and the cancel is deliberately tied to
// the reader's Close so a slow client streaming a large body is not cut
// off at the op deadline.
func (t *timeoutStore) Get(ctx context.Context, p string) (io.ReadCloser, ResourceInfo, error) {
	ctx, cancel := t.op(ctx)
	rc, ri, err := t.s.Get(ctx, p)
	if err != nil {
		cancel()
		return nil, ri, err
	}
	return &cancelReadCloser{ReadCloser: rc, cancel: cancel}, ri, nil
}

type cancelReadCloser struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelReadCloser) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

func (t *timeoutStore) Delete(ctx context.Context, p string) error {
	ctx, cancel := t.op(ctx)
	defer cancel()
	return t.s.Delete(ctx, p)
}

func (t *timeoutStore) PropPut(ctx context.Context, p string, name xml.Name, value []byte) error {
	ctx, cancel := t.op(ctx)
	defer cancel()
	return t.s.PropPut(ctx, p, name, value)
}

func (t *timeoutStore) PropGet(ctx context.Context, p string, name xml.Name) ([]byte, bool, error) {
	ctx, cancel := t.op(ctx)
	defer cancel()
	return t.s.PropGet(ctx, p, name)
}

func (t *timeoutStore) PropDelete(ctx context.Context, p string, name xml.Name) error {
	ctx, cancel := t.op(ctx)
	defer cancel()
	return t.s.PropDelete(ctx, p, name)
}

func (t *timeoutStore) PropNames(ctx context.Context, p string) ([]xml.Name, error) {
	ctx, cancel := t.op(ctx)
	defer cancel()
	return t.s.PropNames(ctx, p)
}

func (t *timeoutStore) PropAll(ctx context.Context, p string) (map[xml.Name][]byte, error) {
	ctx, cancel := t.op(ctx)
	defer cancel()
	return t.s.PropAll(ctx, p)
}

func (t *timeoutStore) Close() error { return t.s.Close() }

// CopyTreeAtomic forwards the capability, bounding the whole atomic
// copy with one deadline (it is one store operation).
func (t *timeoutStore) CopyTreeAtomic(ctx context.Context, src, dst string, opts CopyOptions) error {
	tc, ok := t.s.(TreeCopier)
	if !ok {
		return ErrAtomicCopyUnsupported
	}
	ctx, cancel := t.op(ctx)
	defer cancel()
	return tc.CopyTreeAtomic(ctx, src, dst, opts)
}

// Rename forwards the capability under the per-op deadline.
func (t *timeoutStore) Rename(ctx context.Context, src, dst string) error {
	r, ok := t.s.(Renamer)
	if !ok {
		return ErrRenameUnsupported
	}
	ctx, cancel := t.op(ctx)
	defer cancel()
	return r.Rename(ctx, src, dst)
}

// StatWithProps forwards the batched read under the per-op deadline.
func (t *timeoutStore) StatWithProps(ctx context.Context, p string) (ResourceInfo, map[xml.Name][]byte, error) {
	ctx, cancel := t.op(ctx)
	defer cancel()
	if br, ok := t.s.(BatchReader); ok {
		return br.StatWithProps(ctx, p)
	}
	return StatWithProps(ctx, t.s, p)
}

// ListWithProps forwards the batched read under the per-op deadline.
func (t *timeoutStore) ListWithProps(ctx context.Context, p string) ([]MemberProps, error) {
	ctx, cancel := t.op(ctx)
	defer cancel()
	if br, ok := t.s.(BatchReader); ok {
		return br.ListWithProps(ctx, p)
	}
	return ListWithProps(ctx, t.s, p)
}
