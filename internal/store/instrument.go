package store

import (
	"context"
	"encoding/xml"
	"io"
	"time"

	"repro/internal/obs/trace"
)

// OpObserver receives one store operation's name, wall-clock duration,
// and error (nil on success). Implementations must be safe for
// concurrent use; the telemetry layer supplies one that records
// latency histograms and error counters.
type OpObserver func(op string, d time.Duration, err error)

// NopObserver discards observations. Pass it to Instrument when only
// tracing (not metrics) is wanted: the wrapper still creates spans.
var NopObserver OpObserver = func(string, time.Duration, error) {}

// Instrument wraps s so every Store operation is timed and reported to
// obs, and — when the operation's context carries an active trace span
// — recorded as a child span named "store.<op>". The span's context is
// what flows down into the wrapped store, so deeper layers (lock
// waits, DBM calls) nest under it. The span and the observer see the
// same duration, measured once on the tracer's clock, so a trace and
// the latency histogram can never disagree about one operation.
//
// Get timings cover opening the document, not streaming its body (the
// HTTP layer's response-size histograms cover transfer). The wrapper
// preserves the Renamer fast path when the underlying store has one.
// A nil observer returns s unchanged.
func Instrument(s Store, obs OpObserver) Store {
	if obs == nil {
		return s
	}
	return &instrumentedStore{s: s, obs: obs}
}

type instrumentedStore struct {
	s   Store
	obs OpObserver
}

// begin opens the "store.<op>" span on ctx and returns the context to
// run the operation under — the span's context, so deeper layers nest
// under it — plus the finish function reporting one shared duration to
// span and observer alike.
func (is *instrumentedStore) begin(ctx context.Context, op string, attrs ...trace.Attr) (context.Context, func(err error)) {
	ctx, end := trace.Region(ctx, "store."+op, attrs...)
	return ctx, func(err error) { is.obs(op, end(err), err) }
}

func (is *instrumentedStore) Stat(ctx context.Context, p string) (ResourceInfo, error) {
	ctx, done := is.begin(ctx, "stat", trace.Str("path", p))
	ri, err := is.s.Stat(ctx, p)
	done(err)
	return ri, err
}

func (is *instrumentedStore) List(ctx context.Context, p string) ([]ResourceInfo, error) {
	ctx, done := is.begin(ctx, "list", trace.Str("path", p))
	members, err := is.s.List(ctx, p)
	done(err)
	return members, err
}

func (is *instrumentedStore) Mkcol(ctx context.Context, p string) error {
	ctx, done := is.begin(ctx, "mkcol", trace.Str("path", p))
	err := is.s.Mkcol(ctx, p)
	done(err)
	return err
}

func (is *instrumentedStore) Put(ctx context.Context, p string, r io.Reader, contentType string) (bool, error) {
	ctx, done := is.begin(ctx, "put", trace.Str("path", p))
	created, err := is.s.Put(ctx, p, r, contentType)
	done(err)
	return created, err
}

func (is *instrumentedStore) Get(ctx context.Context, p string) (io.ReadCloser, ResourceInfo, error) {
	ctx, done := is.begin(ctx, "get", trace.Str("path", p))
	rc, ri, err := is.s.Get(ctx, p)
	done(err)
	return rc, ri, err
}

func (is *instrumentedStore) Delete(ctx context.Context, p string) error {
	ctx, done := is.begin(ctx, "delete", trace.Str("path", p))
	err := is.s.Delete(ctx, p)
	done(err)
	return err
}

func (is *instrumentedStore) PropPut(ctx context.Context, p string, name xml.Name, value []byte) error {
	ctx, done := is.begin(ctx, "prop_put", trace.Str("path", p), trace.Int("bytes", int64(len(value))))
	err := is.s.PropPut(ctx, p, name, value)
	done(err)
	return err
}

func (is *instrumentedStore) PropGet(ctx context.Context, p string, name xml.Name) ([]byte, bool, error) {
	ctx, done := is.begin(ctx, "prop_get", trace.Str("path", p))
	v, ok, err := is.s.PropGet(ctx, p, name)
	done(err)
	return v, ok, err
}

func (is *instrumentedStore) PropDelete(ctx context.Context, p string, name xml.Name) error {
	ctx, done := is.begin(ctx, "prop_delete", trace.Str("path", p))
	err := is.s.PropDelete(ctx, p, name)
	done(err)
	return err
}

func (is *instrumentedStore) PropNames(ctx context.Context, p string) ([]xml.Name, error) {
	ctx, done := is.begin(ctx, "prop_names", trace.Str("path", p))
	names, err := is.s.PropNames(ctx, p)
	done(err)
	return names, err
}

func (is *instrumentedStore) PropAll(ctx context.Context, p string) (map[xml.Name][]byte, error) {
	ctx, done := is.begin(ctx, "prop_all", trace.Str("path", p))
	props, err := is.s.PropAll(ctx, p)
	done(err)
	return props, err
}

// StatWithProps implements BatchReader, delegating to the wrapped
// store's batched path when it has one and composing Stat+PropAll under
// one span otherwise (so the timing covers the same work either way).
func (is *instrumentedStore) StatWithProps(ctx context.Context, p string) (ResourceInfo, map[xml.Name][]byte, error) {
	ctx, done := is.begin(ctx, "stat_with_props", trace.Str("path", p))
	var ri ResourceInfo
	var props map[xml.Name][]byte
	var err error
	if br, ok := is.s.(BatchReader); ok {
		ri, props, err = br.StatWithProps(ctx, p)
	} else {
		ri, err = is.s.Stat(ctx, p)
		if err == nil {
			props, err = is.s.PropAll(ctx, p)
		}
	}
	done(err)
	if err != nil {
		return ResourceInfo{}, nil, err
	}
	return ri, props, nil
}

// ListWithProps implements BatchReader; see StatWithProps.
func (is *instrumentedStore) ListWithProps(ctx context.Context, p string) ([]MemberProps, error) {
	ctx, done := is.begin(ctx, "list_with_props", trace.Str("path", p))
	var out []MemberProps
	var err error
	if br, ok := is.s.(BatchReader); ok {
		out, err = br.ListWithProps(ctx, p)
	} else {
		var members []ResourceInfo
		members, err = is.s.List(ctx, p)
		for _, m := range members {
			if err != nil {
				break
			}
			var props map[xml.Name][]byte
			props, err = is.s.PropAll(ctx, m.Path)
			out = append(out, MemberProps{Info: m, Props: props})
		}
	}
	done(err)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (is *instrumentedStore) Close() error {
	start := time.Now()
	err := is.s.Close()
	is.obs("close", time.Since(start), err)
	return err
}

// CopyTreeAtomic implements the TreeCopier fast path by delegating to
// the wrapped store when it supports one; otherwise
// ErrAtomicCopyUnsupported tells CopyTree to take the generic
// per-resource walk.
func (is *instrumentedStore) CopyTreeAtomic(ctx context.Context, src, dst string, opts CopyOptions) error {
	tc, ok := is.s.(TreeCopier)
	if !ok {
		return ErrAtomicCopyUnsupported
	}
	ctx, done := is.begin(ctx, "copy_tree", trace.Str("src", src), trace.Str("dst", dst))
	err := tc.CopyTreeAtomic(ctx, src, dst, opts)
	done(err)
	return err
}

// Rename implements the Renamer fast path by delegating to the wrapped
// store when it supports one; otherwise ErrRenameUnsupported tells
// MoveTree to take the generic copy+delete path.
func (is *instrumentedStore) Rename(ctx context.Context, src, dst string) error {
	r, ok := is.s.(Renamer)
	if !ok {
		return ErrRenameUnsupported
	}
	ctx, done := is.begin(ctx, "rename", trace.Str("src", src), trace.Str("dst", dst))
	err := r.Rename(ctx, src, dst)
	done(err)
	return err
}

// Unwrap exposes the wrapped store (tests, tooling).
func (is *instrumentedStore) Unwrap() Store { return is.s }
