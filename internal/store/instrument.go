package store

import (
	"encoding/xml"
	"errors"
	"io"
	"time"
)

// OpObserver receives one store operation's name, wall-clock duration,
// and error (nil on success). Implementations must be safe for
// concurrent use; the telemetry layer supplies one that records
// latency histograms and error counters.
type OpObserver func(op string, d time.Duration, err error)

// Instrument wraps s so every Store operation is timed and reported to
// obs. Get timings cover opening the document, not streaming its body
// (the HTTP layer's response-size histograms cover transfer). The
// wrapper preserves the Renamer fast path when the underlying store
// has one. A nil observer returns s unchanged.
func Instrument(s Store, obs OpObserver) Store {
	if obs == nil {
		return s
	}
	return &instrumentedStore{s: s, obs: obs}
}

type instrumentedStore struct {
	s   Store
	obs OpObserver
}

// observe reports one finished operation.
func (is *instrumentedStore) observe(op string, start time.Time, err error) {
	is.obs(op, time.Since(start), err)
}

func (is *instrumentedStore) Stat(p string) (ResourceInfo, error) {
	start := time.Now()
	ri, err := is.s.Stat(p)
	is.observe("stat", start, err)
	return ri, err
}

func (is *instrumentedStore) List(p string) ([]ResourceInfo, error) {
	start := time.Now()
	members, err := is.s.List(p)
	is.observe("list", start, err)
	return members, err
}

func (is *instrumentedStore) Mkcol(p string) error {
	start := time.Now()
	err := is.s.Mkcol(p)
	is.observe("mkcol", start, err)
	return err
}

func (is *instrumentedStore) Put(p string, r io.Reader, contentType string) (bool, error) {
	start := time.Now()
	created, err := is.s.Put(p, r, contentType)
	is.observe("put", start, err)
	return created, err
}

func (is *instrumentedStore) Get(p string) (io.ReadCloser, ResourceInfo, error) {
	start := time.Now()
	rc, ri, err := is.s.Get(p)
	is.observe("get", start, err)
	return rc, ri, err
}

func (is *instrumentedStore) Delete(p string) error {
	start := time.Now()
	err := is.s.Delete(p)
	is.observe("delete", start, err)
	return err
}

func (is *instrumentedStore) PropPut(p string, name xml.Name, value []byte) error {
	start := time.Now()
	err := is.s.PropPut(p, name, value)
	is.observe("prop_put", start, err)
	return err
}

func (is *instrumentedStore) PropGet(p string, name xml.Name) ([]byte, bool, error) {
	start := time.Now()
	v, ok, err := is.s.PropGet(p, name)
	is.observe("prop_get", start, err)
	return v, ok, err
}

func (is *instrumentedStore) PropDelete(p string, name xml.Name) error {
	start := time.Now()
	err := is.s.PropDelete(p, name)
	is.observe("prop_delete", start, err)
	return err
}

func (is *instrumentedStore) PropNames(p string) ([]xml.Name, error) {
	start := time.Now()
	names, err := is.s.PropNames(p)
	is.observe("prop_names", start, err)
	return names, err
}

func (is *instrumentedStore) PropAll(p string) (map[xml.Name][]byte, error) {
	start := time.Now()
	props, err := is.s.PropAll(p)
	is.observe("prop_all", start, err)
	return props, err
}

func (is *instrumentedStore) Close() error {
	start := time.Now()
	err := is.s.Close()
	is.observe("close", start, err)
	return err
}

// errNoRename makes MoveTree fall back to copy+delete when the wrapped
// store has no native rename.
var errNoRename = errors.New("store: underlying store does not support rename")

// Rename implements the Renamer fast path by delegating to the wrapped
// store when it supports one.
func (is *instrumentedStore) Rename(src, dst string) error {
	r, ok := is.s.(Renamer)
	if !ok {
		return errNoRename
	}
	start := time.Now()
	err := r.Rename(src, dst)
	is.observe("rename", start, err)
	return err
}

// Unwrap exposes the wrapped store (tests, tooling).
func (is *instrumentedStore) Unwrap() Store { return is.s }
