package store

import (
	"context"
	"encoding/xml"
	"io"
	"time"

	"repro/internal/obs/trace"
)

// OpObserver receives one store operation's name, wall-clock duration,
// and error (nil on success). Implementations must be safe for
// concurrent use; the telemetry layer supplies one that records
// latency histograms and error counters.
type OpObserver func(op string, d time.Duration, err error)

// NopObserver discards observations. Pass it to Instrument when only
// tracing (not metrics) is wanted: the wrapper still creates spans.
var NopObserver OpObserver = func(string, time.Duration, error) {}

// Instrument wraps s so every Store operation is timed and reported to
// obs, and — when the wrapper has been bound to a request context
// carrying an active trace span (see ContextBinder) — recorded as a
// child span named "store.<op>". The span and the observer see the
// same duration, measured once on the tracer's clock, so a trace and
// the latency histogram can never disagree about one operation.
//
// Get timings cover opening the document, not streaming its body (the
// HTTP layer's response-size histograms cover transfer). The wrapper
// preserves the Renamer fast path when the underlying store has one.
// A nil observer returns s unchanged.
func Instrument(s Store, obs OpObserver) Store {
	if obs == nil {
		return s
	}
	return &instrumentedStore{s: s, obs: obs, ctx: context.Background()}
}

type instrumentedStore struct {
	s   Store
	obs OpObserver
	ctx context.Context // request binding; Background when unbound
}

// WithContext implements ContextBinder: the returned view attributes
// every operation (and its span) to ctx.
func (is *instrumentedStore) WithContext(ctx context.Context) Store {
	c := *is
	c.ctx = ctx
	return &c
}

// begin opens the "store.<op>" span and returns the store to run the
// operation against — the underlying store re-bound to the span's
// context, so deeper layers (FSStore's DBM calls) nest under it — plus
// the finish function reporting one shared duration to span and
// observer alike.
func (is *instrumentedStore) begin(op string, attrs ...trace.Attr) (Store, func(err error)) {
	ctx, end := trace.Region(is.ctx, "store."+op, attrs...)
	s := is.s
	if ctx != is.ctx {
		s = BindContext(s, ctx)
	}
	return s, func(err error) { is.obs(op, end(err), err) }
}

func (is *instrumentedStore) Stat(p string) (ResourceInfo, error) {
	s, done := is.begin("stat", trace.Str("path", p))
	ri, err := s.Stat(p)
	done(err)
	return ri, err
}

func (is *instrumentedStore) List(p string) ([]ResourceInfo, error) {
	s, done := is.begin("list", trace.Str("path", p))
	members, err := s.List(p)
	done(err)
	return members, err
}

func (is *instrumentedStore) Mkcol(p string) error {
	s, done := is.begin("mkcol", trace.Str("path", p))
	err := s.Mkcol(p)
	done(err)
	return err
}

func (is *instrumentedStore) Put(p string, r io.Reader, contentType string) (bool, error) {
	s, done := is.begin("put", trace.Str("path", p))
	created, err := s.Put(p, r, contentType)
	done(err)
	return created, err
}

func (is *instrumentedStore) Get(p string) (io.ReadCloser, ResourceInfo, error) {
	s, done := is.begin("get", trace.Str("path", p))
	rc, ri, err := s.Get(p)
	done(err)
	return rc, ri, err
}

func (is *instrumentedStore) Delete(p string) error {
	s, done := is.begin("delete", trace.Str("path", p))
	err := s.Delete(p)
	done(err)
	return err
}

func (is *instrumentedStore) PropPut(p string, name xml.Name, value []byte) error {
	s, done := is.begin("prop_put", trace.Str("path", p), trace.Int("bytes", int64(len(value))))
	err := s.PropPut(p, name, value)
	done(err)
	return err
}

func (is *instrumentedStore) PropGet(p string, name xml.Name) ([]byte, bool, error) {
	s, done := is.begin("prop_get", trace.Str("path", p))
	v, ok, err := s.PropGet(p, name)
	done(err)
	return v, ok, err
}

func (is *instrumentedStore) PropDelete(p string, name xml.Name) error {
	s, done := is.begin("prop_delete", trace.Str("path", p))
	err := s.PropDelete(p, name)
	done(err)
	return err
}

func (is *instrumentedStore) PropNames(p string) ([]xml.Name, error) {
	s, done := is.begin("prop_names", trace.Str("path", p))
	names, err := s.PropNames(p)
	done(err)
	return names, err
}

func (is *instrumentedStore) PropAll(p string) (map[xml.Name][]byte, error) {
	s, done := is.begin("prop_all", trace.Str("path", p))
	props, err := s.PropAll(p)
	done(err)
	return props, err
}

// StatWithProps implements BatchReader, delegating to the wrapped
// store's batched path when it has one and composing Stat+PropAll under
// one span otherwise (so the timing covers the same work either way).
func (is *instrumentedStore) StatWithProps(p string) (ResourceInfo, map[xml.Name][]byte, error) {
	s, done := is.begin("stat_with_props", trace.Str("path", p))
	var ri ResourceInfo
	var props map[xml.Name][]byte
	var err error
	if br, ok := is.s.(BatchReader); ok {
		// Re-dispatch through the rebound view so spans nest under ours.
		if sbr, ok := s.(BatchReader); ok {
			br = sbr
		}
		ri, props, err = br.StatWithProps(p)
	} else {
		ri, err = s.Stat(p)
		if err == nil {
			props, err = s.PropAll(p)
		}
	}
	done(err)
	if err != nil {
		return ResourceInfo{}, nil, err
	}
	return ri, props, nil
}

// ListWithProps implements BatchReader; see StatWithProps.
func (is *instrumentedStore) ListWithProps(p string) ([]MemberProps, error) {
	s, done := is.begin("list_with_props", trace.Str("path", p))
	var out []MemberProps
	var err error
	if br, ok := is.s.(BatchReader); ok {
		if sbr, ok := s.(BatchReader); ok {
			br = sbr
		}
		out, err = br.ListWithProps(p)
	} else {
		var members []ResourceInfo
		members, err = s.List(p)
		for _, m := range members {
			if err != nil {
				break
			}
			var props map[xml.Name][]byte
			props, err = s.PropAll(m.Path)
			out = append(out, MemberProps{Info: m, Props: props})
		}
	}
	done(err)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (is *instrumentedStore) Close() error {
	s, done := is.begin("close")
	err := s.Close()
	done(err)
	return err
}

// CopyTreeAtomic implements the TreeCopier fast path by delegating to
// the wrapped store when it supports one; otherwise
// ErrAtomicCopyUnsupported tells CopyTree to take the generic
// per-resource walk.
func (is *instrumentedStore) CopyTreeAtomic(src, dst string, opts CopyOptions) error {
	if _, ok := is.s.(TreeCopier); !ok {
		return ErrAtomicCopyUnsupported
	}
	s, done := is.begin("copy_tree", trace.Str("src", src), trace.Str("dst", dst))
	err := s.(TreeCopier).CopyTreeAtomic(src, dst, opts)
	done(err)
	return err
}

// Rename implements the Renamer fast path by delegating to the wrapped
// store when it supports one; otherwise ErrRenameUnsupported tells
// MoveTree to take the generic copy+delete path.
func (is *instrumentedStore) Rename(src, dst string) error {
	if _, ok := is.s.(Renamer); !ok {
		return ErrRenameUnsupported
	}
	s, done := is.begin("rename", trace.Str("src", src), trace.Str("dst", dst))
	err := s.(Renamer).Rename(src, dst)
	done(err)
	return err
}

// Unwrap exposes the wrapped store (tests, tooling).
func (is *instrumentedStore) Unwrap() Store { return is.s }
