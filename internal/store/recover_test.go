package store

import (
	"context"
	"encoding/xml"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dbm"
)

// stepCrash is the panic payload the test step hooks raise to simulate
// a crash between two steps of a multi-step operation.
type stepCrash struct{ point string }

// crashAt opens a store whose step hook panics the first time the
// named point is reached (an empty point never fires).
func crashAt(t *testing.T, dir, point string) *FSStore {
	t.Helper()
	fired := false
	s, err := NewFSStoreWith(dir, dbm.GDBM, FSOptions{
		StepHook: func(p string) {
			if p == point && !fired {
				fired = true
				panic(stepCrash{p})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustCrash runs f expecting it to panic with a stepCrash. The store
// is deliberately not closed afterwards — a crashed process would not
// have closed it either.
func mustCrash(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if _, ok := r.(stepCrash); !ok {
			t.Fatalf("expected a step-hook crash, got panic %v", r)
		}
	}()
	f()
	t.Fatal("operation completed without crashing")
}

// reopen opens a fresh store over dir, running startup recovery.
func reopen(t *testing.T, dir string) *FSStore {
	t.Helper()
	s, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestOpenSweepsStaleTmp(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	mustMkcol(t, s, "/proj")
	mustPut(t, s, "/proj/doc.txt", "data")
	s.Close()

	// Debris a crashed Put and a crashed dbm.Compact would leave.
	stale := []string{
		filepath.Join(dir, ".put-123456"),
		filepath.Join(dir, "proj", ".put-999"),
		filepath.Join(dir, "proj", propDirName, "doc.txt"+propsExt+".compact"),
	}
	for _, p := range stale {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := reopen(t, dir)
	for _, p := range stale {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stale temp %s survived reopen (err=%v)", p, err)
		}
	}
	if got := s2.RecoveryStats().SweptTmp; got != int64(len(stale)) {
		t.Errorf("SweptTmp = %d, want %d", got, len(stale))
	}
	// The live document is untouched.
	if _, err := s2.Stat(context.Background(), "/proj/doc.txt"); err != nil {
		t.Errorf("live document lost: %v", err)
	}
}

func TestRecoverRollsBackPutCrashedBeforeRename(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, seed, "/doc.txt", "v1")
	seed.Close()

	// Crash after the intent is durable but before the staged body is
	// renamed into place: the overwrite must roll back to v1.
	s := crashAt(t, dir, "put.intent")
	mustCrash(t, func() { s.Put(context.Background(), "/doc.txt", strings.NewReader("v2"), "") })

	s2 := reopen(t, dir)
	rc, _, err := s2.Get(context.Background(), "/doc.txt")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rc)
	rc.Close()
	if string(body) != "v1" {
		t.Fatalf("body after rollback = %q, want v1", body)
	}
	if n := s2.Journal().Len(); n != 0 {
		t.Fatalf("journal still has %d pending intents", n)
	}
	if st := s2.RecoveryStats(); st.RolledBack != 1 {
		t.Fatalf("RolledBack = %d, want 1", st.RolledBack)
	}
}

func TestRecoverRollsForwardPutCrashedAfterRename(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, seed, "/doc.bin", "v1")
	before, err := seed.Stat(context.Background(), "/doc.bin")
	if err != nil {
		t.Fatal(err)
	}
	seed.Close()

	// Crash right after the rename: content is the new version but the
	// content type and generation bump never ran. Recovery must finish
	// both — otherwise the overwrite reuses the replaced ETag and the
	// explicit content type is lost.
	s := crashAt(t, dir, "put.renamed")
	mustCrash(t, func() { s.Put(context.Background(), "/doc.bin", strings.NewReader("v2"), "chemical/x-nwchem") })

	s2 := reopen(t, dir)
	rc, ri, err := s2.Get(context.Background(), "/doc.bin")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rc)
	rc.Close()
	if string(body) != "v2" {
		t.Fatalf("body after roll-forward = %q, want v2", body)
	}
	if ri.ContentType != "chemical/x-nwchem" {
		t.Fatalf("content type = %q, want the explicit one", ri.ContentType)
	}
	if ri.ETag == before.ETag {
		t.Fatal("overwrite reused the replaced document's ETag")
	}
	if strings.Count(ri.ETag, "-") != 2 {
		t.Fatalf("ETag %s lacks the generation field", ri.ETag)
	}
	if st := s2.RecoveryStats(); st.RolledForward != 1 {
		t.Fatalf("RolledForward = %d, want 1", st.RolledForward)
	}
}

func TestRecoverCompletesDeleteCrashedMidway(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, seed, "/doc.txt", "data")
	if err := seed.PropPut(context.Background(), "/doc.txt", xml.Name{Space: "e:", Local: "k"}, []byte("v")); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	// Crash between the content remove and the sidecar remove: the
	// props database would be orphaned forever without recovery.
	s := crashAt(t, dir, "delete.content")
	mustCrash(t, func() { s.Delete(context.Background(), "/doc.txt") })

	pp := filepath.Join(dir, propDirName, "doc.txt"+propsExt)
	if _, err := os.Stat(pp); err != nil {
		t.Fatalf("test setup: sidecar should survive the crash, got %v", err)
	}

	s2 := reopen(t, dir)
	if _, err := s2.Stat(context.Background(), "/doc.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat after recovered delete = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(pp); !os.IsNotExist(err) {
		t.Fatalf("orphaned props database survived recovery (err=%v)", err)
	}
}

func TestRecoverCompletesRenameCrashedMidway(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	mustMkcol(t, seed, "/a")
	mustMkcol(t, seed, "/b")
	mustPut(t, seed, "/a/doc.txt", "data")
	name := xml.Name{Space: "e:", Local: "k"}
	if err := seed.PropPut(context.Background(), "/a/doc.txt", name, []byte("v")); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	// Crash between the content rename and the sidecar relocation: the
	// torn middle where the document moved but its properties did not.
	s := crashAt(t, dir, "rename.renamed")
	mustCrash(t, func() { s.Rename(context.Background(), "/a/doc.txt", "/b/doc.txt") })

	s2 := reopen(t, dir)
	if _, err := s2.Stat(context.Background(), "/a/doc.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("source still present after recovered rename: %v", err)
	}
	v, ok, err := s2.PropGet(context.Background(), "/b/doc.txt", name)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("property after recovered rename = (%q, %v, %v), want v", v, ok, err)
	}
}

func TestRecoverRollsBackRenameCrashedBeforeRename(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, seed, "/src.txt", "data")
	seed.Close()

	s := crashAt(t, dir, "rename.intent")
	mustCrash(t, func() { s.Rename(context.Background(), "/src.txt", "/dst.txt") })

	s2 := reopen(t, dir)
	if _, err := s2.Stat(context.Background(), "/src.txt"); err != nil {
		t.Fatalf("source lost by rolled-back rename: %v", err)
	}
	if _, err := s2.Stat(context.Background(), "/dst.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("destination exists after rolled-back rename: %v", err)
	}
	if st := s2.RecoveryStats(); st.RolledBack != 1 {
		t.Fatalf("RolledBack = %d, want 1", st.RolledBack)
	}
}

func TestRecoverRollsBackCopyCrashedMidway(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	mustMkcol(t, seed, "/src")
	mustPut(t, seed, "/src/a.txt", "a")
	mustPut(t, seed, "/src/b.txt", "b")
	seed.Close()

	// Crash after the first resource of the tree copy: the destination
	// holds a partial tree that recovery must remove entirely.
	fired := 0
	s, err := NewFSStoreWith(dir, dbm.GDBM, FSOptions{
		StepHook: func(p string) {
			if p == "copy.resource" {
				fired++
				if fired == 2 {
					panic(stepCrash{p})
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustCrash(t, func() {
		s.CopyTreeAtomic(context.Background(), "/src", "/dst", CopyOptions{Recurse: true})
	})

	s2 := reopen(t, dir)
	if _, err := s2.Stat(context.Background(), "/dst"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("partial copy destination survived recovery: %v", err)
	}
	for _, p := range []string{"/src/a.txt", "/src/b.txt"} {
		if _, err := s2.Stat(context.Background(), p); err != nil {
			t.Fatalf("copy source %s damaged: %v", p, err)
		}
	}
}

// TestDeleteSidecarFailureRollsForwardOnRecover exercises the
// partial-failure (not crash) path: the content remove succeeds but the
// sidecar remove fails, Delete returns the error, and the dangling
// intent is finished by the next recovery — full-op, never half-op.
func TestDeleteSidecarFailureRollsForwardOnRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "/doc.txt", "data")
	if err := s.PropPut(context.Background(), "/doc.txt", xml.Name{Space: "e:", Local: "k"}, []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Replace the sidecar with a non-empty directory so os.Remove fails
	// with ENOTEMPTY even when running as root.
	pp := filepath.Join(dir, propDirName, "doc.txt"+propsExt)
	if err := os.Remove(pp); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(pp, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pp, "blocker"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := s.Delete(context.Background(), "/doc.txt"); err == nil {
		t.Fatal("Delete succeeded despite the blocked sidecar remove")
	}
	if n := s.Journal().Len(); n != 1 {
		t.Fatalf("pending intents after partial delete = %d, want 1", n)
	}
	s.Close()

	// "Operator clears the obstruction and restarts": recovery finishes
	// the delete.
	if err := os.Remove(filepath.Join(pp, "blocker")); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, dir)
	if _, err := s2.Stat(context.Background(), "/doc.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat after recovered delete = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(pp); !os.IsNotExist(err) {
		t.Fatalf("sidecar survived recovery (err=%v)", err)
	}
}

// TestRenameSidecarFailureRollsForwardOnRecover is the rename twin:
// content moves, the sidecar relocation fails, and recovery finishes
// the move instead of leaving properties attached to the old path.
func TestRenameSidecarFailureRollsForwardOnRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	mustMkcol(t, s, "/a")
	mustMkcol(t, s, "/b")
	mustPut(t, s, "/a/doc.txt", "data")
	name := xml.Name{Space: "e:", Local: "k"}
	if err := s.PropPut(context.Background(), "/a/doc.txt", name, []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Block the destination sidecar slot with a non-empty directory so
	// the props rename fails after the content rename succeeded.
	tpp := filepath.Join(dir, "b", propDirName, "doc.txt"+propsExt)
	if err := os.MkdirAll(tpp, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tpp, "blocker"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := s.Rename(context.Background(), "/a/doc.txt", "/b/doc.txt"); err == nil {
		t.Fatal("Rename succeeded despite the blocked sidecar slot")
	}
	if n := s.Journal().Len(); n != 1 {
		t.Fatalf("pending intents after partial rename = %d, want 1", n)
	}
	s.Close()

	if err := os.RemoveAll(tpp); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, dir)
	if _, err := s2.Stat(context.Background(), "/a/doc.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("source still present after recovered rename: %v", err)
	}
	v, ok, err := s2.PropGet(context.Background(), "/b/doc.txt", name)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("property after recovered rename = (%q, %v, %v), want v", v, ok, err)
	}
}

func TestWriteGateDuringDeferredRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStoreWith(dir, dbm.GDBM, FSOptions{DeferRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Recovering() {
		t.Fatal("deferred store does not report recovering")
	}
	if _, err := s.Put(context.Background(), "/x.txt", strings.NewReader("x"), ""); !errors.Is(err, ErrRecovering) {
		t.Fatalf("Put during recovery = %v, want ErrRecovering", err)
	}
	if err := s.Mkcol(context.Background(), "/c"); !errors.Is(err, ErrRecovering) {
		t.Fatalf("Mkcol during recovery = %v, want ErrRecovering", err)
	}
	if err := s.PropPut(context.Background(), "/x.txt", xml.Name{Local: "k"}, nil); !errors.Is(err, ErrRecovering) {
		t.Fatalf("PropPut during recovery = %v, want ErrRecovering", err)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if s.Recovering() {
		t.Fatal("store still recovering after Recover")
	}
	if _, err := s.Put(context.Background(), "/x.txt", strings.NewReader("x"), ""); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
}
