// Package pathlock implements hierarchical (multiple-granularity)
// locking over canonical resource paths, replacing the store-wide
// RWMutex the storage stack started with.
//
// An operation locks its target path in Shared or Exclusive mode; the
// manager implicitly takes the matching intent mode (IS or IX) on every
// ancestor collection. The classic compatibility matrix then gives the
// semantics the DAV method set needs for free:
//
//   - two readers of one resource proceed together (S is
//     self-compatible);
//   - operations on disjoint subtrees never touch each other's nodes,
//     so they proceed fully in parallel;
//   - an Exclusive lock on a collection covers its whole subtree,
//     because any operation on a descendant must first take an intent
//     lock on that collection, and no mode is compatible with X. This
//     is what DELETE, MOVE and COPY Depth:infinity rely on.
//
// Deadlock safety comes from ordered acquisition: every Acquire
// expands its requests into one plan — ancestors' intents plus the
// target modes, merged per node — sorts the plan by path, and takes the
// node locks strictly in that order. All acquirers share the same total
// order, so no wait cycle can form. Lock state is bookkeeping only (the
// guarded I/O happens after Acquire returns), so a single manager mutex
// is enough.
//
// Grants are fair: each node queues its waiters FIFO, and a request
// that finds the queue non-empty joins it even when its mode is
// compatible with the current holders. A blocked writer therefore gates
// every later reader of the node — a sustained stream of Shared/IS
// traffic on a hot collection cannot starve a PUT/DELETE/MOVE. Each
// waiter carries its own grant channel, so a release wakes only the
// waiters it actually unblocks. FIFO queuing preserves deadlock
// freedom: a waiter only ever waits on the node's holders (who,
// acquiring in sorted order, block only at strictly later nodes) or on
// earlier waiters of the same node, so every wait chain still follows
// the total order.
//
// Waits are cancellable: a waiter whose context is done leaves the
// queue, rolls back the plan entries it already held, and Acquire
// returns ctx.Err(). Removing a waiter re-runs the grant scan, so a
// cancelled incompatible waiter cannot continue to gate compatible
// waiters queued behind it. The race where a grant and a cancellation
// collide is resolved under the manager mutex: if the waiter was
// granted first, the cancellation path releases that grant before
// returning, so no hold leaks.
package pathlock

import (
	"container/list"
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/trace"
)

// Mode is a lock mode on one node. Only Shared and Exclusive appear in
// the public API; intent modes are taken implicitly on ancestors, and
// SIX arises only when one plan needs both S and IX on the same node.
type Mode uint8

const (
	// IS — intent to take Shared locks somewhere below this node.
	IS Mode = iota
	// IX — intent to take Exclusive locks somewhere below this node.
	IX
	// Shared — read the node (and, transitively, its subtree: any
	// writer below needs IX here, which conflicts).
	Shared
	// SIX — Shared on the node plus intent-exclusive below (internal).
	SIX
	// Exclusive — write the node; covers the whole subtree.
	Exclusive

	numModes = 5
)

// String returns the conventional multi-granularity name.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case Shared:
		return "S"
	case SIX:
		return "SIX"
	case Exclusive:
		return "X"
	default:
		return "?"
	}
}

// compat is the standard multiple-granularity compatibility matrix:
// compat[held][requested].
var compat = [numModes][numModes]bool{
	IS:        {IS: true, IX: true, Shared: true, SIX: true},
	IX:        {IS: true, IX: true},
	Shared:    {IS: true, Shared: true},
	SIX:       {IS: true},
	Exclusive: {},
}

// join merges two modes one plan needs on the same node into the
// weakest single mode that implies both.
func join(a, b Mode) Mode {
	if a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	// a < b in declaration order IS < IX < S < SIX < X.
	if a == IX && b == Shared {
		return SIX
	}
	return b // the lattice is otherwise a chain
}

// intentFor maps a target mode to the intent its ancestors carry.
func intentFor(m Mode) Mode {
	if m == Shared {
		return IS
	}
	return IX
}

// waiter is one queued request on a node. The grant side (release or
// queue-front movement) marks it granted, records the hold, and closes
// ready — all under the manager mutex — so the waiting side can
// distinguish "granted" from "still queued" when its context fires.
type waiter struct {
	mode    Mode
	ready   chan struct{}
	granted bool
}

// node is the lock state of one path. Nodes exist only while referenced
// by at least one plan (held or waiting) and are garbage-collected on
// the last release.
type node struct {
	refs    int // plans referencing this node (held + waiting)
	holds   [numModes]int
	waiters *list.List // of *waiter, FIFO; only the front may be granted
}

// canHold reports whether mode is compatible with every current hold.
func (n *node) canHold(m Mode) bool {
	for held := Mode(0); held < numModes; held++ {
		if n.holds[held] > 0 && !compat[held][m] {
			return false
		}
	}
	return true
}

// grantLocked drains the front of the waiter queue: every leading
// waiter whose mode is compatible with the current holds is granted
// (hold recorded, ready closed) and dequeued. It stops at the first
// incompatible waiter, preserving FIFO fairness. Caller holds the
// manager mutex. Called after every hold release and waiter removal —
// the two events that can make the front grantable.
func grantLocked(n *node) {
	for {
		front := n.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*waiter)
		if !n.canHold(w.mode) {
			return
		}
		n.waiters.Remove(front)
		n.holds[w.mode]++
		w.granted = true
		close(w.ready)
	}
}

// Stats is a point-in-time snapshot of a manager's counters.
type Stats struct {
	// Acquisitions counts completed Acquire calls.
	Acquisitions int64
	// Contended counts Acquire calls that had to wait on at least one
	// node.
	Contended int64
	// Cancelled counts Acquire calls abandoned because the caller's
	// context was done before every lock was granted.
	Cancelled int64
	// WaitTotal is the cumulative time spent blocked across all
	// acquisitions.
	WaitTotal time.Duration
	// Held is the number of currently held guards.
	Held int64
	// Nodes is the current size of the node table.
	Nodes int
}

// Manager hands out hierarchical path locks. The zero value is not
// usable; call NewManager.
type Manager struct {
	mu    sync.Mutex
	nodes map[string]*node

	acquisitions atomic.Int64
	contended    atomic.Int64
	cancelled    atomic.Int64
	waitNanos    atomic.Int64
	held         atomic.Int64
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{nodes: map[string]*node{}}
}

// Req asks for mode on the resource at Path (canonical, "/"-rooted).
type Req struct {
	Path string
	Mode Mode
}

// planEntry is one node lock the plan will take, in sorted order.
type planEntry struct {
	path string
	mode Mode
}

// Guard holds the locks of one completed Acquire until Release.
type Guard struct {
	m       *Manager
	entries []planEntry
	once    sync.Once
}

// ancestors returns every strict ancestor of p, root first. p must be
// canonical ("/"-rooted, no trailing slash).
func ancestors(p string) []string {
	if p == "/" {
		return nil
	}
	out := []string{"/"}
	for i := 1; i < len(p); i++ {
		if p[i] == '/' {
			out = append(out, p[:i])
		}
	}
	return out
}

// plan expands reqs into the sorted per-node lock list.
func plan(reqs []Req) []planEntry {
	need := make(map[string]Mode, 2*len(reqs)+2)
	add := func(p string, m Mode) {
		if cur, ok := need[p]; ok {
			need[p] = join(cur, m)
		} else {
			need[p] = m
		}
	}
	for _, r := range reqs {
		for _, a := range ancestors(r.Path) {
			add(a, intentFor(r.Mode))
		}
		add(r.Path, r.Mode)
	}
	entries := make([]planEntry, 0, len(need))
	for p, m := range need {
		entries = append(entries, planEntry{path: p, mode: m})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].path < entries[j].path })
	return entries
}

// Acquire takes mode on each requested path (plus the implied intents
// on ancestors) and returns a Guard releasing all of it. Requests in
// one call are merged per node, so a caller may lock several targets —
// e.g. the source and destination of a MOVE — atomically and without
// deadlock risk against other multi-path acquirers.
//
// Acquire honours ctx: a waiter whose context is done before the full
// plan is granted leaves its queue, rolls back any locks it already
// held, and Acquire returns nil and ctx.Err(). When the acquisition
// has to wait and ctx carries an active span, the blocked time is
// recorded as a "pathlock.wait" child span.
func (m *Manager) Acquire(ctx context.Context, reqs ...Req) (*Guard, error) {
	if err := ctx.Err(); err != nil {
		m.cancelled.Add(1)
		return nil, err
	}
	entries := plan(reqs)
	g := &Guard{m: m, entries: entries}

	m.mu.Lock()
	// Reference every node up front so none is collected while this
	// plan waits further down the list.
	for _, e := range entries {
		n := m.nodes[e.path]
		if n == nil {
			n = &node{waiters: list.New()}
			m.nodes[e.path] = n
		}
		n.refs++
	}
	var waited time.Duration
	for i, e := range entries {
		n := m.nodes[e.path]
		// Immediate grant only when no one is queued: a compatible
		// late-comer must not barge past a blocked incompatible waiter
		// (FIFO fairness; see the package comment).
		if n.waiters.Len() == 0 && n.canHold(e.mode) {
			n.holds[e.mode]++
			continue
		}
		// Contended: queue up, then wait on the per-waiter grant channel
		// with the manager mutex dropped. This plan's nodes are pinned by
		// the refs taken above, and grants are recorded by the releaser
		// under the mutex, so the handoff is race-free.
		w := &waiter{mode: e.mode, ready: make(chan struct{})}
		n.waiters.PushBack(w)
		start := time.Now()
		m.mu.Unlock()
		_, end := trace.Region(ctx, "pathlock.wait",
			trace.Str("path", e.path), trace.Str("mode", e.mode.String()))
		select {
		case <-w.ready:
			end(nil)
			waited += time.Since(start)
			m.mu.Lock()
		case <-ctx.Done():
			err := ctx.Err()
			end(err)
			m.mu.Lock()
			if w.granted {
				// Cancellation and grant collided: the releaser recorded
				// the hold before this side observed ctx.Done(). Undo it
				// so the hold cannot leak, and let the next waiter in.
				n.holds[w.mode]--
				grantLocked(n)
			} else {
				// Still queued: remove, then re-scan — a compatible
				// waiter behind this one may now reach the front.
				for el := n.waiters.Front(); el != nil; el = el.Next() {
					if el.Value.(*waiter) == w {
						n.waiters.Remove(el)
						break
					}
				}
				grantLocked(n)
			}
			// Roll back the locks earlier plan entries already hold.
			for _, held := range entries[:i] {
				hn := m.nodes[held.path]
				hn.holds[held.mode]--
				grantLocked(hn)
			}
			// Drop the refs taken up front on every entry, collecting
			// nodes nothing references any more.
			for _, e := range entries {
				rn := m.nodes[e.path]
				rn.refs--
				if rn.refs == 0 {
					delete(m.nodes, e.path)
				}
			}
			m.mu.Unlock()
			m.cancelled.Add(1)
			if waited+time.Since(start) > 0 {
				m.contended.Add(1)
				m.waitNanos.Add(int64(waited + time.Since(start)))
			}
			return nil, err
		}
	}
	m.mu.Unlock()

	m.acquisitions.Add(1)
	m.held.Add(1)
	if waited > 0 {
		m.contended.Add(1)
		m.waitNanos.Add(int64(waited))
	}
	return g, nil
}

// RLock is shorthand for a single Shared acquisition.
func (m *Manager) RLock(ctx context.Context, p string) (*Guard, error) {
	return m.Acquire(ctx, Req{Path: p, Mode: Shared})
}

// Lock is shorthand for a single Exclusive acquisition. The lock covers
// the entire subtree rooted at p.
func (m *Manager) Lock(ctx context.Context, p string) (*Guard, error) {
	return m.Acquire(ctx, Req{Path: p, Mode: Exclusive})
}

// Release drops every lock the guard holds. Safe to call more than
// once; only the first call has effect — a double release can never
// free a lock some later acquirer has since been granted.
func (g *Guard) Release() {
	g.once.Do(func() {
		m := g.m
		m.mu.Lock()
		for _, e := range g.entries {
			n := m.nodes[e.path]
			n.holds[e.mode]--
			n.refs--
			if n.refs == 0 {
				// No holder and no waiter (waiters hold refs): collect.
				delete(m.nodes, e.path)
				continue
			}
			grantLocked(n)
		}
		m.mu.Unlock()
		m.held.Add(-1)
	})
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	nodes := len(m.nodes)
	m.mu.Unlock()
	return Stats{
		Acquisitions: m.acquisitions.Load(),
		Contended:    m.contended.Load(),
		Cancelled:    m.cancelled.Load(),
		WaitTotal:    time.Duration(m.waitNanos.Load()),
		Held:         m.held.Load(),
		Nodes:        nodes,
	}
}

// Covers reports whether a lock on root in the given mode would cover
// an operation on p — i.e. p is root or lies in root's subtree. Helper
// for callers reasoning about subtree exclusivity; not used by the
// manager itself.
func Covers(root, p string) bool {
	if root == p || root == "/" {
		return true
	}
	return strings.HasPrefix(p, root+"/")
}
