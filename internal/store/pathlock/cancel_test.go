package pathlock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// These tests pin the cancellation contract: a waiter whose context is
// done leaves the queue without breaking FIFO fairness, without gating
// compatible waiters queued behind it, and without leaking holds or
// node references — including when the cancellation collides with a
// concurrent grant.

// TestCancelWhileWaiting is the basic contract: a queued waiter whose
// context fires gets ctx.Err() back, is counted, and leaves no trace in
// the queue or the node table.
func TestCancelWhileWaiting(t *testing.T) {
	m := NewManager()
	hold := mustLock(m, "/a/b")

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		g, err := m.RLock(ctx, "/a/b")
		if g != nil {
			g.Release()
		}
		errc <- err
	}()
	waitQueued(t, m, "/a/b", 1)
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Acquire returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Acquire never returned")
	}
	if got := m.Stats().Cancelled; got != 1 {
		t.Fatalf("Cancelled = %d, want 1", got)
	}
	if q := m.queued("/a/b"); q != 0 {
		t.Fatalf("queue still has %d waiters after cancellation", q)
	}

	hold.Release()
	st := m.Stats()
	if st.Held != 0 || st.Nodes != 0 {
		t.Fatalf("after release: Held=%d Nodes=%d, want 0/0 (cancelled waiter leaked state)", st.Held, st.Nodes)
	}
}

// TestCancelledWaiterDoesNotGateCompatible: with a Shared holder, an
// Exclusive waiter gates a later Shared waiter (FIFO). Cancelling the
// Exclusive waiter must re-run the grant scan so the Shared waiter
// proceeds immediately instead of waiting for the holder.
func TestCancelledWaiterDoesNotGateCompatible(t *testing.T) {
	m := NewManager()
	hold := mustRLock(m, "/p")
	defer hold.Release()

	wctx, wcancel := context.WithCancel(context.Background())
	werr := make(chan error, 1)
	go func() {
		g, err := m.Lock(wctx, "/p")
		if g != nil {
			g.Release()
		}
		werr <- err
	}()
	waitQueued(t, m, "/p", 1)

	// The reader queues behind the blocked writer (fairness), so it
	// must NOT be granted yet.
	rdone := make(chan *Guard, 1)
	go func() {
		g, err := m.RLock(context.Background(), "/p")
		if err != nil {
			panic(err)
		}
		rdone <- g
	}()
	waitQueued(t, m, "/p", 2)
	select {
	case <-rdone:
		t.Fatal("reader barged past a queued writer")
	case <-time.After(20 * time.Millisecond):
	}

	// Cancelling the writer must unblock the reader without any release.
	wcancel()
	if err := <-werr; !errors.Is(err, context.Canceled) {
		t.Fatalf("writer returned %v, want context.Canceled", err)
	}
	select {
	case g := <-rdone:
		g.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("reader still blocked after the gating waiter cancelled")
	}
}

// TestDoubleReleaseDoesNotFreeLaterLock is the regression test for
// Guard.Release idempotence: a stale guard released twice must not
// decrement holds that now belong to a later acquirer.
func TestDoubleReleaseDoesNotFreeLaterLock(t *testing.T) {
	m := NewManager()
	g1 := mustLock(m, "/doc")
	g1.Release()

	g2 := mustLock(m, "/doc")
	g1.Release() // stale double release; must be a no-op

	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/doc", Mode: Exclusive}); ok {
		t.Fatal("third acquirer got the lock: stale double release freed g2's hold")
	}
	g2.Release()
	g3, ok := tryAcquire(m, time.Second, Req{Path: "/doc", Mode: Exclusive})
	if !ok {
		t.Fatal("lock not acquirable after the real holder released")
	}
	g3.Release()
	if st := m.Stats(); st.Held != 0 || st.Nodes != 0 {
		t.Fatalf("Held=%d Nodes=%d after all releases, want 0/0", st.Held, st.Nodes)
	}
}

// TestCancelGrantCollision drives the race the implementation resolves
// under the manager mutex: a holder releases (granting the waiter) at
// the same moment the waiter's context fires. Whichever side wins, no
// hold may leak — every iteration must end with an acquirable lock and
// an empty node table. Run with -race.
func TestCancelGrantCollision(t *testing.T) {
	m := NewManager()
	const iters = 500
	for i := 0; i < iters; i++ {
		hold := mustLock(m, "/race")
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			g, err := m.Lock(ctx, "/race")
			if err == nil {
				g.Release()
			} else if !errors.Is(err, context.Canceled) {
				panic(err)
			}
		}()
		waitQueued(t, m, "/race", 1)
		// Release and cancel concurrently to land in the collision
		// window as often as possible.
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); hold.Release() }()
		go func() { defer wg.Done(); cancel() }()
		wg.Wait()
		<-done

		// Regardless of which side won, the lock must be free now.
		g, err := m.Lock(context.Background(), "/race")
		if err != nil {
			t.Fatalf("iter %d: lock unacquirable after collision: %v", i, err)
		}
		g.Release()
	}
	if st := m.Stats(); st.Held != 0 || st.Nodes != 0 {
		t.Fatalf("after %d collision rounds: Held=%d Nodes=%d, want 0/0", iters, st.Held, st.Nodes)
	}
}

// TestCancelStress hammers one hot path with many goroutines whose
// contexts expire at staggered times, then checks the manager's
// bookkeeping balanced out exactly. Run with -race.
func TestCancelStress(t *testing.T) {
	m := NewManager()
	const workers = 16
	const rounds = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger timeouts so some acquisitions win and some
				// cancel mid-queue.
				d := time.Duration(w%4+1) * 500 * time.Microsecond
				ctx, cancel := context.WithTimeout(context.Background(), d)
				mode := Exclusive
				if w%2 == 0 {
					mode = Shared
				}
				g, err := m.Acquire(ctx, Req{Path: "/hot/doc", Mode: mode})
				if err == nil {
					time.Sleep(100 * time.Microsecond)
					g.Release()
				} else if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					panic(err)
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	st := m.Stats()
	if st.Held != 0 || st.Nodes != 0 {
		t.Fatalf("after stress: Held=%d Nodes=%d, want 0/0", st.Held, st.Nodes)
	}
	if st.Cancelled == 0 {
		t.Log("note: no acquisition cancelled this run; timings too generous to exercise the cancel path")
	}
}
