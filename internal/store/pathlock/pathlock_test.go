package pathlock

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

var bg = context.Background()

// mustAcquire and friends adapt the (guard, error) API for tests whose
// contexts never cancel; an error here is a test bug.
func mustAcquire(m *Manager, reqs ...Req) *Guard {
	g, err := m.Acquire(bg, reqs...)
	if err != nil {
		panic(err)
	}
	return g
}

func mustRLock(m *Manager, p string) *Guard {
	g, err := m.RLock(bg, p)
	if err != nil {
		panic(err)
	}
	return g
}

func mustLock(m *Manager, p string) *Guard {
	g, err := m.Lock(bg, p)
	if err != nil {
		panic(err)
	}
	return g
}

// tryAcquire runs Acquire in a goroutine and reports whether it
// completed within the window. On success the guard is sent on the
// returned channel for the caller to release.
func tryAcquire(m *Manager, window time.Duration, reqs ...Req) (*Guard, bool) {
	ch := make(chan *Guard, 1)
	go func() { ch <- mustAcquire(m, reqs...) }()
	select {
	case g := <-ch:
		return g, true
	case <-time.After(window):
		// Leak-safe: once the blocking lock is released the goroutine
		// finishes and the guard sits in the buffered channel.
		go func() {
			if g := <-ch; g != nil {
				g.Release()
			}
		}()
		return nil, false
	}
}

const blockWindow = 50 * time.Millisecond

func TestSharedSharedCompatible(t *testing.T) {
	m := NewManager()
	g1 := mustRLock(m, "/a/b")
	defer g1.Release()
	g2, ok := tryAcquire(m, blockWindow, Req{Path: "/a/b", Mode: Shared})
	if !ok {
		t.Fatal("second shared lock on the same path blocked")
	}
	g2.Release()
}

func TestExclusiveBlocksSamePath(t *testing.T) {
	m := NewManager()
	g1 := mustLock(m, "/a/b")
	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/a/b", Mode: Shared}); ok {
		t.Fatal("shared lock acquired under an exclusive holder")
	}
	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/a/b", Mode: Exclusive}); ok {
		t.Fatal("second exclusive lock acquired under an exclusive holder")
	}
	g1.Release()
	g2, ok := tryAcquire(m, time.Second, Req{Path: "/a/b", Mode: Exclusive})
	if !ok {
		t.Fatal("exclusive lock still blocked after release")
	}
	g2.Release()
}

func TestDisjointSubtreesProceedInParallel(t *testing.T) {
	m := NewManager()
	g1 := mustLock(m, "/a/b")
	defer g1.Release()
	g2, ok := tryAcquire(m, blockWindow, Req{Path: "/a/c", Mode: Exclusive})
	if !ok {
		t.Fatal("exclusive lock on a sibling subtree blocked")
	}
	defer g2.Release()
	g3, ok := tryAcquire(m, blockWindow, Req{Path: "/z", Mode: Exclusive})
	if !ok {
		t.Fatal("exclusive lock on an unrelated tree blocked")
	}
	g3.Release()
}

func TestSubtreeExclusivity(t *testing.T) {
	m := NewManager()
	// X on a collection must exclude every operation below it ...
	g := mustLock(m, "/a")
	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/a/b/c", Mode: Shared}); ok {
		t.Fatal("descendant read proceeded under a subtree-exclusive lock")
	}
	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/a/b", Mode: Exclusive}); ok {
		t.Fatal("descendant write proceeded under a subtree-exclusive lock")
	}
	g.Release()

	// ... and conversely any held descendant lock must block X on the
	// ancestor (the intent lock on /a conflicts with X).
	gd := mustRLock(m, "/a/b/c")
	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/a", Mode: Exclusive}); ok {
		t.Fatal("subtree-exclusive lock proceeded over a held descendant lock")
	}
	gd.Release()
}

func TestSharedSubtreeBlocksDescendantWrite(t *testing.T) {
	m := NewManager()
	// S on a collection is a consistent read of the subtree: descendant
	// reads may proceed (IS ~ S), descendant writes may not (IX vs S).
	g := mustRLock(m, "/a")
	defer g.Release()
	gr, ok := tryAcquire(m, blockWindow, Req{Path: "/a/b", Mode: Shared})
	if !ok {
		t.Fatal("descendant read blocked under a shared subtree lock")
	}
	gr.Release()
	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/a/b", Mode: Exclusive}); ok {
		t.Fatal("descendant write proceeded under a shared subtree lock")
	}
}

func TestIntentIntentCompatible(t *testing.T) {
	m := NewManager()
	// Writers under a common ancestor only hold IX there; they must not
	// serialize on it.
	g1 := mustLock(m, "/a/b")
	defer g1.Release()
	g2, ok := tryAcquire(m, blockWindow, Req{Path: "/a/c", Mode: Exclusive})
	if !ok {
		t.Fatal("sibling writers serialized on the parent intent lock")
	}
	g2.Release()
}

func TestMultiPathAcquireMergesAndLocksBoth(t *testing.T) {
	m := NewManager()
	g := mustAcquire(m, Req{Path: "/a/src", Mode: Exclusive}, Req{Path: "/a/dst", Mode: Exclusive})
	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/a/src", Mode: Shared}); ok {
		t.Fatal("src readable during a two-path exclusive acquisition")
	}
	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/a/dst", Mode: Shared}); ok {
		t.Fatal("dst readable during a two-path exclusive acquisition")
	}
	g.Release()
}

func TestJoinSIX(t *testing.T) {
	if got := join(IX, Shared); got != SIX {
		t.Fatalf("join(IX, S) = %v, want SIX", got)
	}
	if got := join(Shared, IX); got != SIX {
		t.Fatalf("join(S, IX) = %v, want SIX", got)
	}
	// SIX blocks other readers of the node but admits IS.
	if compat[SIX][Shared] || compat[SIX][IX] || compat[SIX][Exclusive] {
		t.Fatal("SIX must conflict with S, IX and X")
	}
	if !compat[SIX][IS] {
		t.Fatal("SIX must admit IS")
	}
}

func TestRootLockCoversEverything(t *testing.T) {
	m := NewManager()
	g := mustLock(m, "/")
	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/x", Mode: Shared}); ok {
		t.Fatal("operation proceeded under an exclusive root lock")
	}
	g.Release()
}

func TestNodeTableIsGarbageCollected(t *testing.T) {
	m := NewManager()
	g := mustLock(m, "/a/b/c")
	if s := m.Stats(); s.Nodes == 0 {
		t.Fatal("no nodes while a lock is held")
	}
	g.Release()
	g.Release() // idempotent
	if s := m.Stats(); s.Nodes != 0 {
		t.Fatalf("node table not collected: %d nodes remain", s.Nodes)
	}
}

func TestStatsCountContention(t *testing.T) {
	m := NewManager()
	g := mustLock(m, "/a")
	done := make(chan *Guard)
	go func() { done <- mustRLock(m, "/a") }()
	time.Sleep(20 * time.Millisecond)
	g.Release()
	(<-done).Release()
	s := m.Stats()
	if s.Acquisitions != 2 {
		t.Fatalf("acquisitions = %d, want 2", s.Acquisitions)
	}
	if s.Contended != 1 {
		t.Fatalf("contended = %d, want 1", s.Contended)
	}
	if s.WaitTotal <= 0 {
		t.Fatal("no wait time recorded for the contended acquisition")
	}
	if s.Held != 0 {
		t.Fatalf("held = %d after all releases", s.Held)
	}
}

// TestOrderedAcquisitionNoDeadlock hammers overlapping two-path
// acquisitions in both orders; ordered acquisition must prevent the
// classic AB/BA deadlock. Run with -race.
func TestOrderedAcquisitionNoDeadlock(t *testing.T) {
	m := NewManager()
	paths := []string{"/a/1", "/a/2", "/b/1", "/b/2"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := paths[(w+i)%len(paths)]
				q := paths[(w+i+1)%len(paths)]
				g := mustAcquire(m, Req{Path: p, Mode: Exclusive}, Req{Path: q, Mode: Exclusive})
				g.Release()
			}
		}(w)
	}
	ok := make(chan struct{})
	go func() { wg.Wait(); close(ok) }()
	select {
	case <-ok:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: overlapping two-path acquisitions did not finish")
	}
	if s := m.Stats(); s.Nodes != 0 || s.Held != 0 {
		t.Fatalf("leaked state after stress: %+v", s)
	}
}

// queued reports how many requests are waiting on p's FIFO queue
// (test-only; reaches under the manager mutex).
func (m *Manager) queued(p string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := m.nodes[p]; n != nil {
		return n.waiters.Len()
	}
	return 0
}

// waitQueued polls until exactly want requests are queued on p.
func waitQueued(t *testing.T, m *Manager, p string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.queued(p) != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue on %s never reached %d waiters (have %d)", p, want, m.queued(p))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWriterNotStarvedByReaders pins the FIFO grant policy: once a
// writer is queued behind the current readers, later readers must queue
// behind the writer instead of joining the compatible read holds — the
// starvation scenario a hot collection would otherwise produce.
func TestWriterNotStarvedByReaders(t *testing.T) {
	m := NewManager()
	g1 := mustRLock(m, "/hot")

	writerDone := make(chan *Guard, 1)
	go func() { writerDone <- mustLock(m, "/hot") }()
	waitQueued(t, m, "/hot", 1)

	// A new reader must not barge past the queued writer even though
	// Shared is compatible with the held Shared.
	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/hot", Mode: Shared}); ok {
		t.Fatal("reader barged past a queued writer")
	}
	waitQueued(t, m, "/hot", 2)

	// Releasing the original reader admits the writer (front of queue),
	// not the queued reader.
	g1.Release()
	gw := <-writerDone
	if m.queued("/hot") != 1 {
		t.Fatalf("queue = %d after writer granted, want the reader still waiting", m.queued("/hot"))
	}
	// And releasing the writer drains the reader.
	gw.Release()
	waitQueued(t, m, "/hot", 0)
}

// TestIntentBlockedBehindQueuedExclusive extends fairness to the intent
// modes: a descendant operation (IS on the ancestor) queues behind a
// waiting subtree-exclusive request instead of prolonging its wait.
func TestIntentBlockedBehindQueuedExclusive(t *testing.T) {
	m := NewManager()
	g1 := mustRLock(m, "/a/b") // holds IS on /a

	subtreeDone := make(chan *Guard, 1)
	go func() { subtreeDone <- mustLock(m, "/a") }() // X on /a: queued behind IS
	waitQueued(t, m, "/a", 1)

	// A second descendant read needs IS on /a; IS ~ IS, but the queued X
	// must gate it.
	if _, ok := tryAcquire(m, blockWindow, Req{Path: "/a/c", Mode: Shared}); ok {
		t.Fatal("descendant read barged past a queued subtree-exclusive request")
	}

	g1.Release()
	(<-subtreeDone).Release()
}

func TestAncestors(t *testing.T) {
	cases := []struct {
		p    string
		want []string
	}{
		{"/", nil},
		{"/a", []string{"/"}},
		{"/a/b/c", []string{"/", "/a", "/a/b"}},
	}
	for _, c := range cases {
		got := ancestors(c.p)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("ancestors(%q) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCovers(t *testing.T) {
	if !Covers("/a", "/a/b/c") || !Covers("/a", "/a") || !Covers("/", "/x") {
		t.Fatal("Covers false negatives")
	}
	if Covers("/a", "/ab") || Covers("/a/b", "/a") {
		t.Fatal("Covers false positives")
	}
}
