package store

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/dbm"
	"repro/internal/obs/trace"
	"repro/internal/store/journal"
	"repro/internal/store/pathlock"
)

// RecoverReport summarizes one recovery pass.
type RecoverReport struct {
	// Resolved is how many pending journal intents were examined.
	Resolved int
	// RolledForward counts intents completed to their post-state.
	RolledForward int
	// RolledBack counts intents undone to their pre-state.
	RolledBack int
	// SweptTmp counts stale staging temporaries removed.
	SweptTmp int
	// Duration is the wall-clock time of the pass.
	Duration time.Duration
}

// RecoveryStats is the cumulative recovery telemetry surfaced on
// /metrics as the dav_recovery_* family.
type RecoveryStats struct {
	Runs          int64
	RolledForward int64
	RolledBack    int64
	SweptTmp      int64
	LastDuration  time.Duration
	Recovering    bool
}

// RecoveryBacklog is the live progress of the current (or most recent)
// recovery pass: how many journal intents still await resolution, how
// many this pass has resolved so far, and how many stale temporaries
// the sweep has removed. /readyz embeds it while the store reports
// "recovering" so the drain is observable, not just the gate.
type RecoveryBacklog struct {
	PendingIntents  int `json:"pending_intents"`
	ResolvedIntents int `json:"resolved_intents"`
	SweptTmp        int `json:"swept_tmp"`
}

// RecoveryBacklog snapshots the in-flight recovery progress. Pending
// counts journal intents not yet resolved by the current pass (the
// journal itself only empties when the pass completes).
func (s *FSStore) RecoveryBacklog() RecoveryBacklog {
	sh := s.shared
	b := RecoveryBacklog{
		ResolvedIntents: int(sh.passResolved.Load()),
		SweptTmp:        int(sh.passSwept.Load()),
	}
	if j := sh.journal; j != nil {
		b.PendingIntents = j.Len() - b.ResolvedIntents
		if b.PendingIntents < 0 {
			b.PendingIntents = 0
		}
	}
	return b
}

// RecoveryStats snapshots the store's cumulative recovery counters.
func (s *FSStore) RecoveryStats() RecoveryStats {
	sh := s.shared
	return RecoveryStats{
		Runs:          sh.recoverRuns.Load(),
		RolledForward: sh.rolledForward.Load(),
		RolledBack:    sh.rolledBack.Load(),
		SweptTmp:      sh.sweptTmp.Load(),
		LastDuration:  time.Duration(sh.lastRecoverNano.Load()),
		Recovering:    sh.recovering.Load(),
	}
}

// Recover resolves every pending journal intent — rolling each
// operation forward to its post-state or back to its pre-state per the
// rules documented on the mutating methods — then sweeps stale staging
// temporaries and lifts the write gate. It is idempotent: replaying an
// already-resolved intent converges to the same state, which is why
// commit records need no fsync of their own.
//
// Safe to run while reads are being served (each intent is resolved
// under the same exclusive path locks its operation would take);
// mutations stay rejected with ErrRecovering until it returns.
//
// Recovery is not request-scoped — an interrupted pass would leave the
// write gate closed forever — so it runs under its own background
// context rather than any caller's.
func (s *FSStore) Recover() (RecoverReport, error) {
	s.shared.recoverMu.Lock()
	defer s.shared.recoverMu.Unlock()
	ctx := context.Background()

	_, end := trace.Region(ctx, "store.recover", trace.Str("root", s.root))
	start := time.Now()
	var rep RecoverReport
	var firstErr error
	s.shared.passResolved.Store(0)
	s.shared.passSwept.Store(0)

	if j := s.shared.journal; j != nil {
		pending := j.Pending()
		rep.Resolved = len(pending)
		for _, rec := range pending {
			fwd, err := s.resolveIntent(ctx, rec)
			if err != nil {
				slog.Warn("store: recovery could not resolve intent",
					"intent", rec.String(), "err", err)
				if firstErr == nil {
					firstErr = fmt.Errorf("resolving %s: %w", rec.String(), err)
				}
				continue
			}
			if fwd {
				rep.RolledForward++
			} else {
				rep.RolledBack++
			}
			s.shared.passResolved.Add(1)
			slog.Info("store: recovered unfinished operation",
				"intent", rec.String(), "rolled", direction(fwd))
		}
		if firstErr == nil {
			if err := j.Reset(); err != nil {
				firstErr = fmt.Errorf("resetting journal: %w", err)
			}
		}
	}

	swept, err := s.sweepTmp()
	rep.SweptTmp = swept
	if err != nil && firstErr == nil {
		firstErr = fmt.Errorf("sweeping temporaries: %w", err)
	}

	rep.Duration = time.Since(start)
	sh := s.shared
	sh.recoverRuns.Add(1)
	sh.rolledForward.Add(int64(rep.RolledForward))
	sh.rolledBack.Add(int64(rep.RolledBack))
	sh.sweptTmp.Add(int64(rep.SweptTmp))
	sh.lastRecoverNano.Store(int64(rep.Duration))
	if firstErr == nil {
		sh.recovering.Store(false)
	}
	end(firstErr)
	return rep, firstErr
}

func direction(forward bool) string {
	if forward {
		return "forward"
	}
	return "back"
}

// resolveIntent rolls one unfinished operation forward or back,
// reporting which way it went. Runs under the same exclusive path
// locks the original operation held.
func (s *FSStore) resolveIntent(ctx context.Context, rec journal.Record) (forward bool, err error) {
	switch rec.Op {
	case journal.OpPut:
		g, err := s.locks.Lock(ctx, rec.Path)
		if err != nil {
			return false, err
		}
		defer g.Release()
		return s.resolvePut(ctx, rec)
	case journal.OpDelete:
		g, err := s.locks.Lock(ctx, rec.Path)
		if err != nil {
			return false, err
		}
		defer g.Release()
		return true, s.resolveDelete(rec)
	case journal.OpRename:
		g, err := s.locks.Acquire(ctx,
			pathlock.Req{Path: rec.Path, Mode: pathlock.Exclusive},
			pathlock.Req{Path: rec.Dst, Mode: pathlock.Exclusive})
		if err != nil {
			return false, err
		}
		defer g.Release()
		return s.resolveRename(rec)
	case journal.OpCopy:
		g, err := s.locks.Lock(ctx, rec.Dst)
		if err != nil {
			return false, err
		}
		defer g.Release()
		s.removeCopyDebris(rec.Dst)
		return false, nil
	case journal.OpMkcol:
		// Both states are valid: a collection either exists (the mkdir
		// ran) or it does not (it never did). The intent only exists so
		// a half-created tree is attributable; nothing to repair.
		dp, err := s.diskPath(rec.Path)
		if err != nil {
			return false, err
		}
		_, serr := os.Stat(dp)
		return serr == nil, nil
	default:
		return false, fmt.Errorf("unknown journaled op %q", rec.Op)
	}
}

// resolvePut finishes or undoes an interrupted Put. The staged temp
// file is the pivot: still present means the rename never happened
// (roll back by discarding it); gone means the content is live and the
// metadata steps — content-type write, generation bump — must be
// completed. The generation bump is made idempotent by the recorded
// pre-op generation: it is re-applied only if the current value has
// not moved past it.
func (s *FSStore) resolvePut(ctx context.Context, rec journal.Record) (bool, error) {
	dp, err := s.diskPath(rec.Path)
	if err != nil {
		return false, err
	}
	if rec.Tmp != "" {
		tmp := filepath.Join(filepath.Dir(dp), rec.Tmp)
		if _, serr := os.Stat(tmp); serr == nil {
			return false, os.Remove(tmp)
		}
	}
	if _, serr := os.Stat(dp); serr != nil {
		// Neither temp nor final file: the rename failed and the temp
		// was already discarded (only the commit record was lost).
		return false, nil
	}
	if rec.CType != "" {
		if err := s.withProps(ctx, rec.Path, true, func(h *dbm.Handle) error {
			return h.Put(internalKey(ikeyContentType), []byte(rec.CType))
		}); err != nil {
			return true, err
		}
	}
	if !rec.Created {
		if err := s.withProps(ctx, rec.Path, true, func(h *dbm.Handle) error {
			var gen int64
			if v, ok, err := h.Get(internalKey(ikeyGeneration)); err != nil {
				return err
			} else if ok {
				gen, _ = strconv.ParseInt(string(v), 10, 64)
			}
			if gen > rec.Gen {
				return nil // bump already happened before the crash
			}
			return h.Put(internalKey(ikeyGeneration),
				[]byte(strconv.FormatInt(rec.Gen+1, 10)))
		}); err != nil {
			return true, err
		}
	}
	return true, nil
}

// resolveDelete completes an interrupted Delete: deletes always roll
// forward, so whatever remains of the resource — content, subtree,
// property sidecar — is removed.
func (s *FSStore) resolveDelete(rec journal.Record) error {
	dp, err := s.diskPath(rec.Path)
	if err != nil {
		return err
	}
	if rec.IsDir {
		if err := os.RemoveAll(dp); err != nil {
			return err
		}
		s.cache.InvalidatePrefix(dp)
		return nil
	}
	if err := os.Remove(dp); err != nil && !os.IsNotExist(err) {
		return err
	}
	pp := s.memberPropsPath(dp, rec.Path)
	if err := os.Remove(pp); err != nil && !os.IsNotExist(err) {
		s.cache.Invalidate(pp)
		return err
	}
	s.cache.Invalidate(pp)
	return nil
}

// resolveRename settles an interrupted Rename. The content rename is
// the decisive step: source still present means nothing happened (the
// intent resolves as a no-op roll-back); source gone means the rename
// landed and the document's property sidecar must finish moving
// alongside.
func (s *FSStore) resolveRename(rec journal.Record) (bool, error) {
	sp, err := s.diskPath(rec.Path)
	if err != nil {
		return false, err
	}
	tp, err := s.diskPath(rec.Dst)
	if err != nil {
		return false, err
	}
	if _, serr := os.Stat(sp); serr == nil {
		return false, nil
	}
	if rec.IsDir {
		s.cache.InvalidatePrefix(sp)
		return true, nil
	}
	spp := s.memberPropsPath(sp, rec.Path)
	if _, serr := os.Stat(spp); serr == nil {
		tpp := s.memberPropsPath(tp, rec.Dst)
		if err := os.MkdirAll(filepath.Dir(tpp), 0o755); err != nil {
			return true, err
		}
		if err := os.Rename(spp, tpp); err != nil {
			return true, err
		}
	}
	s.cache.Invalidate(spp)
	return true, nil
}

// sweepTmp walks the store removing stale staging temporaries — Put
// bodies that never got renamed (".put-*") and DBM compactions that
// never swapped in ("*.compact"). Safe by construction: live data
// never carries these names, and an in-flight operation's temp cannot
// be confused for a stale one because recovery runs behind the write
// gate.
func (s *FSStore) sweepTmp() (int, error) {
	swept := 0
	err := filepath.WalkDir(s.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !IsTmpName(d.Name()) {
			return nil
		}
		if rerr := os.Remove(p); rerr != nil {
			return rerr
		}
		slog.Info("store: swept stale temporary", "path", p)
		swept++
		s.shared.passSwept.Add(1)
		return nil
	})
	return swept, err
}
