package store

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// opRecorder collects observed operations.
type opRecorder struct {
	mu   sync.Mutex
	ops  []string
	errs map[string]int
}

func newOpRecorder() *opRecorder { return &opRecorder{errs: map[string]int{}} }

func (r *opRecorder) observe(op string, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d < 0 {
		panic("negative duration")
	}
	r.ops = append(r.ops, op)
	if err != nil {
		r.errs[op]++
	}
}

func (r *opRecorder) count(op string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, o := range r.ops {
		if o == op {
			n++
		}
	}
	return n
}

func TestInstrumentObservesOpsAndErrors(t *testing.T) {
	rec := newOpRecorder()
	s := Instrument(NewMemStore(), rec.observe)

	if _, err := s.Put(context.Background(), "/doc", strings.NewReader("hello"), "text/plain"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat(context.Background(), "/doc"); err != nil {
		t.Fatal(err)
	}
	rc, _, err := s.Get(context.Background(), "/doc")
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if err := s.Mkcol(context.Background(), "/col"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.List(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat(context.Background(), "/missing"); err == nil {
		t.Fatal("expected ErrNotFound")
	}

	for op, want := range map[string]int{"put": 1, "stat": 2, "get": 1, "mkcol": 1, "list": 1} {
		if got := rec.count(op); got != want {
			t.Errorf("op %q observed %d times, want %d", op, got, want)
		}
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.errs["stat"] != 1 {
		t.Errorf("stat errors = %d, want 1", rec.errs["stat"])
	}
}

func TestInstrumentNilObserverIsPassThrough(t *testing.T) {
	ms := NewMemStore()
	if got := Instrument(ms, nil); got != Store(ms) {
		t.Fatal("nil observer should return the store unchanged")
	}
}

func TestInstrumentRenameFallback(t *testing.T) {
	// MemStore has no Renamer; MoveTree through the wrapper must fall
	// back to copy+delete rather than fail.
	rec := newOpRecorder()
	s := Instrument(NewMemStore(), rec.observe)
	if _, err := s.Put(context.Background(), "/src", strings.NewReader("body"), ""); err != nil {
		t.Fatal(err)
	}
	if err := MoveTree(context.Background(), s, "/src", "/dst"); err != nil {
		t.Fatalf("MoveTree through instrumented store: %v", err)
	}
	if _, err := s.Stat(context.Background(), "/dst"); err != nil {
		t.Fatalf("dst missing after move: %v", err)
	}
	if _, err := s.Stat(context.Background(), "/src"); err == nil {
		t.Fatal("src still exists after move")
	}
}

func TestInstrumentRenameDelegates(t *testing.T) {
	// FSStore supports Rename; the wrapper must use and observe it.
	fs, err := NewFSStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	rec := newOpRecorder()
	s := Instrument(fs, rec.observe)
	if _, err := s.Put(context.Background(), "/src", strings.NewReader("body"), ""); err != nil {
		t.Fatal(err)
	}
	if err := MoveTree(context.Background(), s, "/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	if rec.count("rename") == 0 {
		t.Error("rename fast path not observed")
	}
}
