package store

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dbm"
)

// eachStore runs fn against every Store implementation.
func eachStore(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("Mem", func(t *testing.T) { fn(t, NewMemStore()) })
	t.Run("FS-GDBM", func(t *testing.T) {
		s, err := NewFSStore(t.TempDir(), dbm.GDBM)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fn(t, s)
	})
	t.Run("FS-SDBM", func(t *testing.T) {
		s, err := NewFSStore(t.TempDir(), dbm.SDBM)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fn(t, s)
	})
}

func mustPut(t *testing.T, s Store, p, body string) {
	t.Helper()
	if _, err := s.Put(context.Background(), p, strings.NewReader(body), ""); err != nil {
		t.Fatalf("Put %s: %v", p, err)
	}
}

func mustMkcol(t *testing.T, s Store, p string) {
	t.Helper()
	if err := s.Mkcol(context.Background(), p); err != nil {
		t.Fatalf("Mkcol %s: %v", p, err)
	}
}

func readBody(t *testing.T, s Store, p string) string {
	t.Helper()
	rc, _, err := s.Get(context.Background(), p)
	if err != nil {
		t.Fatalf("Get %s: %v", p, err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read %s: %v", p, err)
	}
	return string(b)
}

func TestCleanPath(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"", "/", true},
		{"/", "/", true},
		{"a/b", "/a/b", true},
		{"/a/b/", "/a/b", true},
		{"/a//b", "/a/b", true},
		{"/a/./b", "/a/b", true},
		{"/a/x/../b", "/a/b", true},
		{"/../a", "/a", true}, // cannot escape a rooted path
		{"/a\x00b", "", false},
	}
	for _, c := range cases {
		got, err := CleanPath(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("CleanPath(%q) = (%q, %v), want (%q, ok=%v)", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestParentAndAncestor(t *testing.T) {
	if ParentPath("/a/b") != "/a" || ParentPath("/a") != "/" || ParentPath("/") != "/" {
		t.Fatal("ParentPath mismatch")
	}
	if !IsAncestor("/", "/a") || !IsAncestor("/a", "/a/b/c") {
		t.Fatal("IsAncestor false negative")
	}
	if IsAncestor("/a", "/a") || IsAncestor("/a", "/ab") || IsAncestor("/a/b", "/a") {
		t.Fatal("IsAncestor false positive")
	}
}

func TestRootExists(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		ri, err := s.Stat(context.Background(), "/")
		if err != nil || !ri.IsCollection {
			t.Fatalf("Stat / = %+v, %v", ri, err)
		}
	})
}

func TestPutGetDocument(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		created, err := s.Put(context.Background(), "/doc.txt", strings.NewReader("hello"), "text/plain")
		if err != nil || !created {
			t.Fatalf("Put: created=%v err=%v", created, err)
		}
		if got := readBody(t, s, "/doc.txt"); got != "hello" {
			t.Fatalf("body = %q", got)
		}
		ri, err := s.Stat(context.Background(), "/doc.txt")
		if err != nil {
			t.Fatal(err)
		}
		if ri.IsCollection || ri.Size != 5 || ri.ContentType != "text/plain" {
			t.Fatalf("info = %+v", ri)
		}
		if ri.ETag == "" {
			t.Fatal("missing ETag")
		}
		// Replace is not a create.
		created, err = s.Put(context.Background(), "/doc.txt", strings.NewReader("bye!"), "")
		if err != nil || created {
			t.Fatalf("replace: created=%v err=%v", created, err)
		}
		if got := readBody(t, s, "/doc.txt"); got != "bye!" {
			t.Fatalf("replaced body = %q", got)
		}
		// Content type sticks from the first Put when not re-supplied.
		ri2, _ := s.Stat(context.Background(), "/doc.txt")
		if ri2.ContentType != "text/plain" {
			t.Fatalf("content type after replace = %q", ri2.ContentType)
		}
	})
}

func TestETagChangesOnWrite(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustPut(t, s, "/e.txt", "one one one")
		ri1, _ := s.Stat(context.Background(), "/e.txt")
		s.Put(context.Background(), "/e.txt", strings.NewReader("two two two two"), "")
		ri2, _ := s.Stat(context.Background(), "/e.txt")
		if ri1.ETag == ri2.ETag {
			t.Fatalf("ETag unchanged across write: %s", ri1.ETag)
		}
	})
}

func TestMkcolSemantics(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustMkcol(t, s, "/proj")
		ri, err := s.Stat(context.Background(), "/proj")
		if err != nil || !ri.IsCollection {
			t.Fatalf("Stat /proj = %+v, %v", ri, err)
		}
		if err := s.Mkcol(context.Background(), "/proj"); !errors.Is(err, ErrExists) {
			t.Fatalf("duplicate Mkcol = %v, want ErrExists", err)
		}
		if err := s.Mkcol(context.Background(), "/no/such/parent"); !errors.Is(err, ErrConflict) {
			t.Fatalf("orphan Mkcol = %v, want ErrConflict", err)
		}
		mustPut(t, s, "/doc", "x")
		if err := s.Mkcol(context.Background(), "/doc/sub"); !errors.Is(err, ErrConflict) {
			t.Fatalf("Mkcol under document = %v, want ErrConflict", err)
		}
	})
}

func TestPutRequiresParent(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if _, err := s.Put(context.Background(), "/a/b/c.txt", strings.NewReader("x"), ""); !errors.Is(err, ErrConflict) {
			t.Fatalf("Put without parent = %v, want ErrConflict", err)
		}
		if _, err := s.Put(context.Background(), "/", strings.NewReader("x"), ""); err == nil {
			t.Fatal("Put to / should fail")
		}
		mustMkcol(t, s, "/a")
		if _, err := s.Put(context.Background(), "/a", strings.NewReader("x"), ""); !errors.Is(err, ErrIsCollection) {
			t.Fatalf("Put over collection = %v, want ErrIsCollection", err)
		}
	})
}

func TestGetErrors(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if _, _, err := s.Get(context.Background(), "/missing"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get missing = %v, want ErrNotFound", err)
		}
		mustMkcol(t, s, "/col")
		if _, _, err := s.Get(context.Background(), "/col"); !errors.Is(err, ErrIsCollection) {
			t.Fatalf("Get collection = %v, want ErrIsCollection", err)
		}
	})
}

func TestListSortedAndScoped(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustMkcol(t, s, "/c")
		mustPut(t, s, "/c/zebra", "z")
		mustPut(t, s, "/c/apple", "a")
		mustMkcol(t, s, "/c/mid")
		mustPut(t, s, "/c/mid/nested", "n") // must not appear at depth 1
		mustPut(t, s, "/other", "o")

		members, err := s.List(context.Background(), "/c")
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, m := range members {
			names = append(names, m.Path)
		}
		want := []string{"/c/apple", "/c/mid", "/c/zebra"}
		if !reflect.DeepEqual(names, want) {
			t.Fatalf("List = %v, want %v", names, want)
		}
		if _, err := s.List(context.Background(), "/c/apple"); !errors.Is(err, ErrNotCollection) {
			t.Fatalf("List document = %v, want ErrNotCollection", err)
		}
		if _, err := s.List(context.Background(), "/nope"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("List missing = %v, want ErrNotFound", err)
		}
	})
}

func TestDeleteDocumentAndTree(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustMkcol(t, s, "/t")
		mustPut(t, s, "/t/a", "1")
		mustMkcol(t, s, "/t/sub")
		mustPut(t, s, "/t/sub/b", "2")
		s.PropPut(context.Background(), "/t/sub/b", xml.Name{Space: "ecce:", Local: "x"}, []byte("<x/>"))

		if err := s.Delete(context.Background(), "/t/a"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Stat(context.Background(), "/t/a"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted doc Stat = %v", err)
		}
		if err := s.Delete(context.Background(), "/t"); err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{"/t", "/t/sub", "/t/sub/b"} {
			if _, err := s.Stat(context.Background(), p); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Stat %s after tree delete = %v", p, err)
			}
		}
		if err := s.Delete(context.Background(), "/t"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("double delete = %v", err)
		}
		if err := s.Delete(context.Background(), "/"); err == nil {
			t.Fatal("deleting / should fail")
		}
	})
}

func TestPropLifecycle(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustPut(t, s, "/m.xyz", "geometry")
		name := xml.Name{Space: "ecce:", Local: "formula"}
		val := []byte(`<formula xmlns="ecce:">UO2H30O15</formula>`)

		// Absent property.
		if _, ok, err := s.PropGet(context.Background(), "/m.xyz", name); ok || err != nil {
			t.Fatalf("PropGet absent = ok=%v err=%v", ok, err)
		}
		// Removing an absent property succeeds (RFC 2518).
		if err := s.PropDelete(context.Background(), "/m.xyz", name); err != nil {
			t.Fatalf("PropDelete absent: %v", err)
		}
		if err := s.PropPut(context.Background(), "/m.xyz", name, val); err != nil {
			t.Fatal(err)
		}
		got, ok, err := s.PropGet(context.Background(), "/m.xyz", name)
		if err != nil || !ok || !bytes.Equal(got, val) {
			t.Fatalf("PropGet = (%q, %v, %v)", got, ok, err)
		}
		// Overwrite.
		val2 := []byte(`<formula xmlns="ecce:">H2O</formula>`)
		s.PropPut(context.Background(), "/m.xyz", name, val2)
		got, _, _ = s.PropGet(context.Background(), "/m.xyz", name)
		if !bytes.Equal(got, val2) {
			t.Fatalf("overwritten PropGet = %q", got)
		}
		// Names and All.
		name2 := xml.Name{Space: "ecce:", Local: "charge"}
		s.PropPut(context.Background(), "/m.xyz", name2, []byte("<c>2</c>"))
		names, err := s.PropNames(context.Background(), "/m.xyz")
		if err != nil || len(names) != 2 {
			t.Fatalf("PropNames = %v, %v", names, err)
		}
		all, err := s.PropAll(context.Background(), "/m.xyz")
		if err != nil || len(all) != 2 || !bytes.Equal(all[name], val2) {
			t.Fatalf("PropAll = %v, %v", all, err)
		}
		// Delete.
		if err := s.PropDelete(context.Background(), "/m.xyz", name); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := s.PropGet(context.Background(), "/m.xyz", name); ok {
			t.Fatal("property survived delete")
		}
	})
}

func TestPropsOnMissingResource(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		name := xml.Name{Space: "e:", Local: "x"}
		if err := s.PropPut(context.Background(), "/gone", name, []byte("v")); !errors.Is(err, ErrNotFound) {
			t.Fatalf("PropPut missing = %v", err)
		}
		if _, _, err := s.PropGet(context.Background(), "/gone", name); !errors.Is(err, ErrNotFound) {
			t.Fatalf("PropGet missing = %v", err)
		}
		if _, err := s.PropAll(context.Background(), "/gone"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("PropAll missing = %v", err)
		}
	})
}

func TestPropsOnCollections(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustMkcol(t, s, "/proj")
		name := xml.Name{Space: "ecce:", Local: "description"}
		if err := s.PropPut(context.Background(), "/proj", name, []byte("<d>study</d>")); err != nil {
			t.Fatal(err)
		}
		v, ok, err := s.PropGet(context.Background(), "/proj", name)
		if err != nil || !ok || string(v) != "<d>study</d>" {
			t.Fatalf("collection prop = (%q, %v, %v)", v, ok, err)
		}
	})
}

func TestCopyTreeDocumentWithProps(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustPut(t, s, "/src.txt", "body")
		name := xml.Name{Space: "e:", Local: "k"}
		s.PropPut(context.Background(), "/src.txt", name, []byte("v"))
		if err := CopyTree(context.Background(), s, "/src.txt", "/dst.txt", CopyOptions{}); err != nil {
			t.Fatal(err)
		}
		if got := readBody(t, s, "/dst.txt"); got != "body" {
			t.Fatalf("copied body = %q", got)
		}
		v, ok, _ := s.PropGet(context.Background(), "/dst.txt", name)
		if !ok || string(v) != "v" {
			t.Fatalf("copied prop = (%q, %v)", v, ok)
		}
		// Source intact.
		if got := readBody(t, s, "/src.txt"); got != "body" {
			t.Fatal("source mutated by copy")
		}
	})
}

func TestCopyTreeRecursive(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustMkcol(t, s, "/a")
		mustMkcol(t, s, "/a/sub")
		mustPut(t, s, "/a/doc", "d")
		mustPut(t, s, "/a/sub/deep", "x")
		s.PropPut(context.Background(), "/a", xml.Name{Space: "e:", Local: "p"}, []byte("cv"))

		if err := CopyTree(context.Background(), s, "/a", "/b", CopyOptions{Recurse: true}); err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{"/b", "/b/sub", "/b/doc", "/b/sub/deep"} {
			if _, err := s.Stat(context.Background(), p); err != nil {
				t.Fatalf("Stat %s after copy: %v", p, err)
			}
		}
		v, ok, _ := s.PropGet(context.Background(), "/b", xml.Name{Space: "e:", Local: "p"})
		if !ok || string(v) != "cv" {
			t.Fatal("collection property not copied")
		}
		// Depth 0: only the collection itself.
		if err := CopyTree(context.Background(), s, "/a", "/shallow", CopyOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Stat(context.Background(), "/shallow/doc"); !errors.Is(err, ErrNotFound) {
			t.Fatal("depth-0 copy copied members")
		}
	})
}

func TestCopyIntoSelfRejected(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustMkcol(t, s, "/a")
		if err := CopyTree(context.Background(), s, "/a", "/a/inside", CopyOptions{Recurse: true}); !errors.Is(err, ErrBadPath) {
			t.Fatalf("copy into self = %v, want ErrBadPath", err)
		}
		if err := CopyTree(context.Background(), s, "/a", "/a", CopyOptions{}); !errors.Is(err, ErrBadPath) {
			t.Fatalf("copy onto self = %v, want ErrBadPath", err)
		}
	})
}

func TestMoveTree(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustMkcol(t, s, "/m")
		mustPut(t, s, "/m/doc", "payload")
		s.PropPut(context.Background(), "/m/doc", xml.Name{Space: "e:", Local: "k"}, []byte("v"))
		if err := MoveTree(context.Background(), s, "/m", "/moved"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Stat(context.Background(), "/m"); !errors.Is(err, ErrNotFound) {
			t.Fatal("source survived move")
		}
		if got := readBody(t, s, "/moved/doc"); got != "payload" {
			t.Fatalf("moved body = %q", got)
		}
		v, ok, _ := s.PropGet(context.Background(), "/moved/doc", xml.Name{Space: "e:", Local: "k"})
		if !ok || string(v) != "v" {
			t.Fatal("moved property lost")
		}
	})
}

func TestMoveDocumentRenameKeepsProps(t *testing.T) {
	// Exercises FSStore's Rename fast path for a single document.
	s, err := NewFSStore(t.TempDir(), dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, "/one.txt", "1")
	s.PropPut(context.Background(), "/one.txt", xml.Name{Space: "e:", Local: "k"}, []byte("v"))
	if err := MoveTree(context.Background(), s, "/one.txt", "/two.txt"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.PropGet(context.Background(), "/two.txt", xml.Name{Space: "e:", Local: "k"})
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("prop after rename = (%q, %v, %v)", v, ok, err)
	}
}

func TestWalkPreOrder(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustMkcol(t, s, "/w")
		mustPut(t, s, "/w/a", "1")
		mustMkcol(t, s, "/w/d")
		mustPut(t, s, "/w/d/b", "2")
		var visited []string
		err := Walk(context.Background(), s, "/w", func(ri ResourceInfo) error {
			visited = append(visited, ri.Path)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"/w", "/w/a", "/w/d", "/w/d/b"}
		if !reflect.DeepEqual(visited, want) {
			t.Fatalf("walk = %v, want %v", visited, want)
		}
	})
}

func TestFSStoreHidesPropDir(t *testing.T) {
	s, err := NewFSStore(t.TempDir(), dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, "/d.txt", "x")
	s.PropPut(context.Background(), "/d.txt", xml.Name{Space: "e:", Local: "k"}, []byte("v"))
	members, err := s.List(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		if strings.Contains(m.Path, propDirName) {
			t.Fatalf("List leaked %s", m.Path)
		}
	}
	if len(members) != 1 {
		t.Fatalf("List = %v", members)
	}
	// The reserved name cannot be addressed.
	if _, err := s.Stat(context.Background(), "/"+propDirName); !errors.Is(err, ErrBadPath) {
		t.Fatalf("Stat .DAV = %v, want ErrBadPath", err)
	}
	if err := s.Mkcol(context.Background(), "/sub/"+propDirName); !errors.Is(err, ErrBadPath) {
		t.Fatalf("Mkcol .DAV = %v, want ErrBadPath", err)
	}
}

func TestFSStorePropsPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "/p.txt", "x")
	name := xml.Name{Space: "ecce:", Local: "formula"}
	s.PropPut(context.Background(), "/p.txt", name, []byte("<f>H2O</f>"))
	s.Close()

	s2, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok, err := s2.PropGet(context.Background(), "/p.txt", name)
	if err != nil || !ok || string(v) != "<f>H2O</f>" {
		t.Fatalf("prop after reopen = (%q, %v, %v)", v, ok, err)
	}
}

func TestFSStoreRawDataDirectlyVisible(t *testing.T) {
	// The paper's "direct access to raw data" requirement: documents
	// are plain files a user can read without going through DAV.
	dir := t.TempDir()
	s, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustMkcol(t, s, "/calc")
	mustPut(t, s, "/calc/input.nw", "geometry units angstrom")
	raw, err := os.ReadFile(filepath.Join(dir, "calc", "input.nw"))
	if err != nil || string(raw) != "geometry units angstrom" {
		t.Fatalf("raw file = (%q, %v)", raw, err)
	}
}

func TestFSStorePerResourcePropertyDatabases(t *testing.T) {
	// The disk-overhead experiment depends on one DBM file per
	// resource that has metadata.
	dir := t.TempDir()
	s, err := NewFSStore(dir, dbm.SDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		p := fmt.Sprintf("/doc%d", i)
		mustPut(t, s, p, "x")
		s.PropPut(context.Background(), p, xml.Name{Space: "e:", Local: "k"}, []byte("v"))
	}
	mustPut(t, s, "/bare", "no props")

	all, err := os.ReadDir(filepath.Join(dir, propDirName))
	if err != nil {
		t.Fatal(err)
	}
	// The root metadata directory also holds the intent journal — a
	// fixed O(1) file, not a per-resource database.
	var ents []os.DirEntry
	for _, e := range all {
		if strings.HasSuffix(e.Name(), propsExt) {
			ents = append(ents, e)
		}
	}
	if len(ents) != 3 {
		t.Fatalf("prop databases = %d, want 3 (no database for the bare document)", len(ents))
	}
	// Each database is at least SDBM's initial size.
	for _, e := range ents {
		fi, _ := e.Info()
		if fi.Size() < 8*1024 {
			t.Fatalf("props db %s = %d bytes, want >= 8192", e.Name(), fi.Size())
		}
	}
}

func TestContentHashAndDiskUsage(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, "/h", "hello world")
	h1, err := ContentHash(context.Background(), s, "/h")
	if err != nil || len(h1) != 40 {
		t.Fatalf("ContentHash = (%q, %v)", h1, err)
	}
	mustPut(t, s, "/h", "changed")
	h2, _ := ContentHash(context.Background(), s, "/h")
	if h1 == h2 {
		t.Fatal("hash unchanged after write")
	}
	du, err := DiskUsage(dir)
	if err != nil || du < int64(len("changed")) {
		t.Fatalf("DiskUsage = (%d, %v)", du, err)
	}
}

// TestQuickPropRoundTrip: for arbitrary names and values, PropPut
// followed by PropGet returns the value, on both stores.
func TestQuickPropRoundTrip(t *testing.T) {
	fsDir := t.TempDir()
	fsStore, err := NewFSStore(fsDir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer fsStore.Close()
	memStore := NewMemStore()
	for _, s := range []Store{memStore, fsStore} {
		if _, err := s.Put(context.Background(), "/target", strings.NewReader("x"), ""); err != nil {
			t.Fatal(err)
		}
	}
	locals := []string{"a", "formula", "charge", "long-local-name", "z9"}
	spaces := []string{"ecce:", "DAV:", "urn:x", "http://example.org/ns#"}
	check := func(seed int64, val []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		name := xml.Name{Space: spaces[rng.Intn(len(spaces))], Local: locals[rng.Intn(len(locals))]}
		for _, s := range []Store{memStore, fsStore} {
			if err := s.PropPut(context.Background(), "/target", name, val); err != nil {
				t.Logf("PropPut: %v", err)
				return false
			}
			got, ok, err := s.PropGet(context.Background(), "/target", name)
			if err != nil || !ok || !bytes.Equal(got, val) {
				t.Logf("PropGet = (%q, %v, %v), want %q", got, ok, err, val)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCopyPreservesTree: copying a randomly built tree yields an
// identical structure with identical bodies and properties.
func TestQuickCopyPreservesTree(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewMemStore()
		s.Mkcol(context.Background(), "/src")
		var paths []string
		for i := 0; i < 12; i++ {
			parent := "/src"
			if len(paths) > 0 && rng.Intn(2) == 0 {
				p := paths[rng.Intn(len(paths))]
				if ri, _ := s.Stat(context.Background(), p); ri.IsCollection {
					parent = p
				}
			}
			child := fmt.Sprintf("%s/n%d", parent, i)
			if rng.Intn(2) == 0 {
				if err := s.Mkcol(context.Background(), child); err != nil {
					continue
				}
			} else {
				if _, err := s.Put(context.Background(), child, strings.NewReader(fmt.Sprintf("body%d", i)), ""); err != nil {
					continue
				}
			}
			s.PropPut(context.Background(), child, xml.Name{Space: "e:", Local: "id"}, []byte(fmt.Sprintf("<id>%d</id>", i)))
			paths = append(paths, child)
		}
		if err := CopyTree(context.Background(), s, "/src", "/dst", CopyOptions{Recurse: true}); err != nil {
			t.Logf("copy: %v", err)
			return false
		}
		ok := true
		Walk(context.Background(), s, "/src", func(ri ResourceInfo) error {
			dstPath := "/dst" + strings.TrimPrefix(ri.Path, "/src")
			dri, err := s.Stat(context.Background(), dstPath)
			if err != nil || dri.IsCollection != ri.IsCollection {
				t.Logf("missing or mismatched %s: %v", dstPath, err)
				ok = false
				return nil
			}
			sp, _ := s.PropAll(context.Background(), ri.Path)
			dp, _ := s.PropAll(context.Background(), dstPath)
			if len(sp) != len(dp) {
				ok = false
			}
			for n, v := range sp {
				if !bytes.Equal(dp[n], v) {
					ok = false
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestContentTypeSurvivesCopy(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if _, err := s.Put(context.Background(), "/m.dat", strings.NewReader("geom"), "chemical/x-xyz"); err != nil {
			t.Fatal(err)
		}
		if err := CopyTree(context.Background(), s, "/m.dat", "/copy.dat", CopyOptions{}); err != nil {
			t.Fatal(err)
		}
		ri, err := s.Stat(context.Background(), "/copy.dat")
		if err != nil || ri.ContentType != "chemical/x-xyz" {
			t.Fatalf("copied content type = (%q, %v)", ri.ContentType, err)
		}
	})
}

// nonRenamer hides the FSStore Renamer fast path, forcing MoveTree's
// generic copy+delete fallback.
type nonRenamer struct{ Store }

func TestMoveTreeWithoutRenamer(t *testing.T) {
	fs, err := NewFSStore(t.TempDir(), dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	s := nonRenamer{fs}
	mustMkcol(t, s, "/m")
	mustPut(t, s, "/m/doc", "payload")
	s.PropPut(context.Background(), "/m/doc", xml.Name{Space: "e:", Local: "k"}, []byte("v"))
	if err := MoveTree(context.Background(), s, "/m", "/moved"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat(context.Background(), "/m"); !errors.Is(err, ErrNotFound) {
		t.Fatal("source survived generic move")
	}
	if got := readBody(t, s, "/moved/doc"); got != "payload" {
		t.Fatalf("moved body = %q", got)
	}
	v, ok, _ := s.PropGet(context.Background(), "/moved/doc", xml.Name{Space: "e:", Local: "k"})
	if !ok || string(v) != "v" {
		t.Fatal("moved property lost in fallback path")
	}
}

func TestRenameFastPathErrors(t *testing.T) {
	fs, err := NewFSStore(t.TempDir(), dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	mustPut(t, fs, "/a", "1")
	mustPut(t, fs, "/b", "2")
	// Rename onto an existing target must refuse (never clobber).
	if err := fs.Rename(context.Background(), "/a", "/b"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto existing = %v", err)
	}
	if err := fs.Rename(context.Background(), "/missing", "/c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rename of missing = %v", err)
	}
	if err := fs.Rename(context.Background(), "/a", "/no/parent/x"); !errors.Is(err, ErrConflict) {
		t.Fatalf("rename without parent = %v", err)
	}
	if err := fs.Rename(context.Background(), "/a", "/a"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("rename onto self = %v", err)
	}
}

// TestQuickCleanPathIdempotent: CleanPath is idempotent and always
// yields a rooted path without trailing slash.
func TestQuickCleanPathIdempotent(t *testing.T) {
	check := func(p string) bool {
		cp, err := CleanPath(p)
		if err != nil {
			return strings.ContainsRune(p, 0) // only NULs are rejected
		}
		if !strings.HasPrefix(cp, "/") {
			return false
		}
		if cp != "/" && strings.HasSuffix(cp, "/") {
			return false
		}
		again, err := CleanPath(cp)
		return err == nil && again == cp
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
