package store

import (
	"context"
	"crypto/sha1"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"io/fs"
	"mime"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dbm"
	"repro/internal/store/pathlock"
)

// propDirName is the per-directory metadata directory, mirroring
// mod_dav's ".DAV" working directory. It is invisible to DAV clients.
const propDirName = ".DAV"

// collectionPropsFile holds the properties of the directory itself.
const collectionPropsFile = ".dirprops"

// propsExt is the extension of per-member property databases.
const propsExt = ".props"

// Internal DBM keys.
const (
	ikeyContentType = "ctype"
	// ikeyGeneration is a per-resource counter bumped on every document
	// overwrite. It feeds the ETag so two overwrites that leave the
	// same size and the same (nanosecond) mtime still produce distinct
	// ETags — without it, If-Match could validate a stale ETag.
	ikeyGeneration = "gen"
)

// DefaultHandleCacheSize is the default bound on open property-database
// handles kept by the store's DBM cache.
const DefaultHandleCacheSize = 256

// FSOptions tunes NewFSStoreWith.
type FSOptions struct {
	// HandleCacheSize bounds the shared cache of open property-database
	// handles. Zero means DefaultHandleCacheSize; negative disables
	// caching entirely (every property touch opens and closes its
	// database, the historical mod_dav behaviour — kept as the
	// benchmark baseline and an operational escape hatch).
	HandleCacheSize int
}

// FSStore is the mod_dav-style store: documents are files, collections
// are directories, and each resource that has metadata owns a DBM
// database file under its parent's .DAV directory. Raw data therefore
// stays directly visible in the filesystem, as the paper requires.
//
// Concurrency: every operation takes a hierarchical path lock (shared
// for reads, exclusive for writes) instead of a store-wide mutex, so
// operations on disjoint subtrees proceed fully in parallel, and an
// exclusive lock on a collection covers its whole subtree — which is
// what Delete and Rename rely on. Property databases are reached
// through a shared refcounted handle cache rather than being opened per
// operation. Both structures are shared by WithContext views.
type FSStore struct {
	root    string
	flavour dbm.Flavour
	locks   *pathlock.Manager
	cache   *dbm.Cache
	ctx     context.Context // request binding; Background when unbound
}

var _ Store = (*FSStore)(nil)
var _ Renamer = (*FSStore)(nil)
var _ ContextBinder = (*FSStore)(nil)
var _ BatchReader = (*FSStore)(nil)
var _ TreeCopier = (*FSStore)(nil)

// NewFSStore opens (creating if needed) a store rooted at dir, using
// the given DBM flavour for property databases and default options.
func NewFSStore(dir string, flavour dbm.Flavour) (*FSStore, error) {
	return NewFSStoreWith(dir, flavour, FSOptions{})
}

// NewFSStoreWith is NewFSStore with explicit tuning.
func NewFSStoreWith(dir string, flavour dbm.Flavour, o FSOptions) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	size := o.HandleCacheSize
	if size == 0 {
		size = DefaultHandleCacheSize
	}
	return &FSStore{
		root:    abs,
		flavour: flavour,
		locks:   pathlock.NewManager(),
		cache:   dbm.NewCache(size, flavour),
		ctx:     context.Background(),
	}, nil
}

// WithContext implements ContextBinder: the returned view shares the
// store's locks, handle cache and data, but attributes lock waits and
// property-database operations (the "pathlock.wait" and "dbm.*" spans)
// to ctx.
func (s *FSStore) WithContext(ctx context.Context) Store {
	c := *s
	c.ctx = ctx
	return &c
}

// Root returns the store's root directory on disk.
func (s *FSStore) Root() string { return s.root }

// Flavour returns the DBM flavour used for property databases.
func (s *FSStore) Flavour() dbm.Flavour { return s.flavour }

// LockStats snapshots the hierarchical path-lock counters.
func (s *FSStore) LockStats() pathlock.Stats { return s.locks.Stats() }

// CacheStats snapshots the property-database handle-cache counters.
func (s *FSStore) CacheStats() dbm.CacheStats { return s.cache.Stats() }

// PathLocks exposes the lock manager (tests, metrics wiring).
func (s *FSStore) PathLocks() *pathlock.Manager { return s.locks }

// HandleCache exposes the DBM handle cache (tests, metrics wiring).
func (s *FSStore) HandleCache() *dbm.Cache { return s.cache }

// Close releases the store: every cached property database is closed
// (pinned handles close on their release).
func (s *FSStore) Close() error { return s.cache.Close() }

// diskPath maps a canonical resource path to a filesystem path,
// rejecting paths that use the reserved metadata directory name.
func (s *FSStore) diskPath(p string) (string, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return "", err
	}
	if cp != "/" {
		for _, seg := range strings.Split(cp[1:], "/") {
			if seg == propDirName {
				return "", fmt.Errorf("%w: %q is reserved", ErrBadPath, propDirName)
			}
		}
	}
	return filepath.Join(s.root, filepath.FromSlash(cp)), nil
}

// propsPath returns the property database path for resource p.
func (s *FSStore) propsPath(p string) (string, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return "", err
	}
	dp, err := s.diskPath(cp)
	if err != nil {
		return "", err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return "", mapFSErr(err, cp)
	}
	if fi.IsDir() {
		return filepath.Join(dp, propDirName, collectionPropsFile+propsExt), nil
	}
	return filepath.Join(filepath.Dir(dp), propDirName, path.Base(cp)+propsExt), nil
}

// memberPropsPath is propsPath for a known document, without the
// resource stat (used after the document has been removed).
func (s *FSStore) memberPropsPath(dp, cp string) string {
	return filepath.Join(filepath.Dir(dp), propDirName, path.Base(cp)+propsExt)
}

func mapFSErr(err error, p string) error {
	switch {
	case err == nil:
		return nil
	case os.IsNotExist(err):
		return fmt.Errorf("%w: %s", ErrNotFound, p)
	case os.IsExist(err):
		return fmt.Errorf("%w: %s", ErrExists, p)
	default:
		return err
	}
}

// withProps opens the resource's property database through the handle
// cache, creating it if create is true. When create is false and the
// database does not exist, fn is not called and the result is nil
// (empty database semantics). Caller holds the resource's path lock.
func (s *FSStore) withProps(cp string, create bool, fn func(*dbm.Handle) error) error {
	pp, err := s.propsPath(cp)
	if err != nil {
		return err
	}
	if _, err := os.Stat(pp); err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		if !create {
			return nil
		}
		if err := os.MkdirAll(filepath.Dir(pp), 0o755); err != nil {
			return err
		}
	}
	h, err := s.cache.Acquire(s.ctx, pp)
	if err != nil {
		return err
	}
	defer h.Close()
	return fn(h)
}

// internalMeta reads the internal bookkeeping keys (content type,
// generation) in one handle acquisition. Missing database or keys yield
// zero values. Caller holds the resource's path lock.
func (s *FSStore) internalMeta(cp string) (ctype string, gen int64) {
	s.withProps(cp, false, func(h *dbm.Handle) error {
		if v, ok, _ := h.Get(internalKey(ikeyContentType)); ok {
			ctype = string(v)
		}
		if v, ok, _ := h.Get(internalKey(ikeyGeneration)); ok {
			gen, _ = strconv.ParseInt(string(v), 10, 64)
		}
		return nil
	})
	return ctype, gen
}

// Stat implements Store.
func (s *FSStore) Stat(p string) (ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return ResourceInfo{}, err
	}
	g := s.locks.RLock(s.ctx, cp)
	defer g.Release()
	return s.stat(cp)
}

// stat resolves cp under an already-held lock.
func (s *FSStore) stat(cp string) (ResourceInfo, error) {
	dp, err := s.diskPath(cp)
	if err != nil {
		return ResourceInfo{}, err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return ResourceInfo{}, mapFSErr(err, cp)
	}
	return s.infoFor(cp, fi), nil
}

// infoFor builds a ResourceInfo, reading the internal metadata keys for
// documents. Caller holds a lock covering cp.
func (s *FSStore) infoFor(cp string, fi fs.FileInfo) ResourceInfo {
	ri := ResourceInfo{
		Path:         cp,
		IsCollection: fi.IsDir(),
		ModTime:      fi.ModTime(),
		CreateTime:   fi.ModTime(),
	}
	if !fi.IsDir() {
		ctype, gen := s.internalMeta(cp)
		s.fillDocInfo(&ri, fi, ctype, gen)
	}
	return ri
}

// fillDocInfo completes a document's ResourceInfo from its file info
// and internal metadata.
func (s *FSStore) fillDocInfo(ri *ResourceInfo, fi fs.FileInfo, ctype string, gen int64) {
	ri.Size = fi.Size()
	ri.ETag = etagFor(fi, gen)
	ri.ContentType = inferContentType(ri.Path)
	// An explicitly supplied content type overrides the inferred one;
	// like mod_dav, this is one of the pieces of system metadata kept
	// in the property database.
	if ctype != "" {
		ri.ContentType = ctype
	}
}

// etagFor derives a document ETag from size, mtime and the overwrite
// generation. Resources never overwritten keep the historical
// size-mtime shape; the generation suffix appears from the first
// overwrite on and makes same-size same-nanosecond rewrites
// distinguishable.
func etagFor(fi fs.FileInfo, gen int64) string {
	if gen > 0 {
		return fmt.Sprintf(`"%x-%x-%x"`, fi.Size(), fi.ModTime().UnixNano(), gen)
	}
	return fmt.Sprintf(`"%x-%x"`, fi.Size(), fi.ModTime().UnixNano())
}

// List implements Store.
func (s *FSStore) List(p string) ([]ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	g := s.locks.RLock(s.ctx, cp)
	defer g.Release()
	infos, _, err := s.list(cp, false)
	return infos, err
}

// list reads the members of cp under an already-held shared lock. When
// withProps is true each member's full property map is loaded in the
// same pass through its (cached) database handle.
func (s *FSStore) list(cp string, withProps bool) ([]ResourceInfo, []map[xml.Name][]byte, error) {
	dp, err := s.diskPath(cp)
	if err != nil {
		return nil, nil, err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return nil, nil, mapFSErr(err, cp)
	}
	if !fi.IsDir() {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotCollection, cp)
	}
	ents, err := os.ReadDir(dp)
	if err != nil {
		return nil, nil, err
	}
	infos := make([]ResourceInfo, 0, len(ents))
	var props []map[xml.Name][]byte
	if withProps {
		props = make([]map[xml.Name][]byte, 0, len(ents))
	}
	type memberEntry struct {
		info ResourceInfo
		prop map[xml.Name][]byte
	}
	members := make([]memberEntry, 0, len(ents))
	for _, e := range ents {
		if e.Name() == propDirName {
			continue
		}
		efi, err := e.Info()
		if err != nil {
			continue // raced with deletion
		}
		child := path.Join(cp, e.Name())
		var me memberEntry
		if withProps {
			me.info, me.prop = s.resolveWithProps(child, efi)
		} else {
			me.info = s.infoFor(child, efi)
		}
		members = append(members, me)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].info.Path < members[j].info.Path })
	for _, m := range members {
		infos = append(infos, m.info)
		if withProps {
			props = append(props, m.prop)
		}
	}
	return infos, props, nil
}

// resolveWithProps builds one resource's info and property map in a
// single pass over its property database: dead properties and internal
// metadata come out of the same iteration through one cached handle.
func (s *FSStore) resolveWithProps(cp string, fi fs.FileInfo) (ResourceInfo, map[xml.Name][]byte) {
	ri := ResourceInfo{
		Path:         cp,
		IsCollection: fi.IsDir(),
		ModTime:      fi.ModTime(),
		CreateTime:   fi.ModTime(),
	}
	props := map[xml.Name][]byte{}
	var ctype string
	var gen int64
	s.withProps(cp, false, func(h *dbm.Handle) error {
		return h.ForEach(func(k, v []byte) error {
			if name, ok := parsePropKey(k); ok {
				props[name] = v
				return nil
			}
			switch string(k) {
			case string(internalKey(ikeyContentType)):
				ctype = string(v)
			case string(internalKey(ikeyGeneration)):
				gen, _ = strconv.ParseInt(string(v), 10, 64)
			}
			return nil
		})
	})
	if !fi.IsDir() {
		s.fillDocInfo(&ri, fi, ctype, gen)
	}
	return ri, props
}

// StatWithProps implements BatchReader.
func (s *FSStore) StatWithProps(p string) (ResourceInfo, map[xml.Name][]byte, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return ResourceInfo{}, nil, err
	}
	g := s.locks.RLock(s.ctx, cp)
	defer g.Release()
	dp, err := s.diskPath(cp)
	if err != nil {
		return ResourceInfo{}, nil, err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return ResourceInfo{}, nil, mapFSErr(err, cp)
	}
	ri, props := s.resolveWithProps(cp, fi)
	return ri, props, nil
}

// ListWithProps implements BatchReader: one shared lock on the
// collection, one pass per member through cached database handles.
func (s *FSStore) ListWithProps(p string) ([]MemberProps, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	g := s.locks.RLock(s.ctx, cp)
	defer g.Release()
	infos, props, err := s.list(cp, true)
	if err != nil {
		return nil, err
	}
	out := make([]MemberProps, len(infos))
	for i := range infos {
		out[i] = MemberProps{Info: infos[i], Props: props[i]}
	}
	return out, nil
}

// Mkcol implements Store.
func (s *FSStore) Mkcol(p string) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("%w: /", ErrExists)
	}
	g := s.locks.Lock(s.ctx, cp)
	defer g.Release()
	return s.mkcolLocked(cp)
}

// mkcolLocked is Mkcol's body under an already-held exclusive lock
// covering cp.
func (s *FSStore) mkcolLocked(cp string) error {
	dp, err := s.diskPath(cp)
	if err != nil {
		return err
	}
	if _, err := os.Stat(dp); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, cp)
	}
	parent := filepath.Dir(dp)
	pfi, err := os.Stat(parent)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	if !pfi.IsDir() {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	if err := os.Mkdir(dp, 0o755); err != nil {
		return mapFSErr(err, cp)
	}
	return nil
}

// Put implements Store. The body is staged to a temporary file and
// renamed into place so concurrent readers never observe a torn
// document. The exclusive path lock serializes writers of one document;
// writers of different documents — even in the same collection —
// proceed in parallel.
func (s *FSStore) Put(p string, r io.Reader, contentType string) (bool, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return false, err
	}
	if cp == "/" {
		return false, fmt.Errorf("%w: cannot PUT to /", ErrIsCollection)
	}
	dp, err := s.diskPath(cp)
	if err != nil {
		return false, err
	}

	g := s.locks.Lock(s.ctx, cp)
	defer g.Release()
	return s.putLocked(cp, dp, r, contentType)
}

// putLocked is Put's body under an already-held exclusive lock covering
// cp (dp is cp's disk path).
func (s *FSStore) putLocked(cp, dp string, r io.Reader, contentType string) (bool, error) {
	parentFI, perr := os.Stat(filepath.Dir(dp))
	if perr != nil || !parentFI.IsDir() {
		return false, fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	fi, ferr := os.Stat(dp)
	var created bool
	switch {
	case ferr == nil:
		if fi.IsDir() {
			return false, fmt.Errorf("%w: %s", ErrIsCollection, cp)
		}
	case os.IsNotExist(ferr):
		created = true
	default:
		// A transient stat failure on an existing document must not be
		// mistaken for creation: reporting 201 would be wrong, and
		// skipping the generation bump would let the overwrite reuse the
		// replaced document's ETag.
		return false, ferr
	}

	tmp, err := os.CreateTemp(filepath.Dir(dp), ".put-*")
	if err != nil {
		return false, err
	}
	tmpName := tmp.Name()
	if _, err := io.Copy(tmp, r); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return false, err
	}
	// Flush the staged bytes before the rename: without it a crash
	// after the rename can leave the final name pointing at a file
	// whose contents never reached disk — torn data under the atomic
	// promise this function makes.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return false, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return false, err
	}
	if err := os.Rename(tmpName, dp); err != nil {
		os.Remove(tmpName)
		return false, err
	}
	// The rename itself is only durable once the parent directory's
	// entry is on disk.
	syncDir(filepath.Dir(dp))
	// mod_dav only materializes a property database for resources that
	// carry metadata (the disk-overhead experiment depends on this), so
	// the content type is persisted only when it cannot be re-derived
	// from the file extension — and the overwrite generation only from
	// the first overwrite on.
	if contentType != "" && contentType != inferContentType(cp) {
		if err := s.withProps(cp, true, func(h *dbm.Handle) error {
			return h.Put(internalKey(ikeyContentType), []byte(contentType))
		}); err != nil {
			return created, err
		}
	}
	if !created {
		if err := s.bumpGeneration(cp); err != nil {
			return created, err
		}
	}
	return created, nil
}

// bumpGeneration increments the resource's overwrite counter. Caller
// holds the exclusive path lock, which makes read-increment-write safe.
func (s *FSStore) bumpGeneration(cp string) error {
	return s.withProps(cp, true, func(h *dbm.Handle) error {
		var gen int64
		if v, ok, err := h.Get(internalKey(ikeyGeneration)); err != nil {
			return err
		} else if ok {
			gen, _ = strconv.ParseInt(string(v), 10, 64)
		}
		return h.Put(internalKey(ikeyGeneration),
			[]byte(strconv.FormatInt(gen+1, 10)))
	})
}

// syncDir fsyncs a directory so a just-renamed entry survives a
// crash. Best effort: some filesystems (and non-POSIX platforms)
// refuse to open or sync directories, and a failure there must not
// fail the write that already succeeded.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// inferContentType derives a document's content type from its
// extension, as mod_dav-era servers did.
func inferContentType(cp string) string {
	if ct := mime.TypeByExtension(path.Ext(cp)); ct != "" {
		return ct
	}
	return "application/octet-stream"
}

// Get implements Store.
func (s *FSStore) Get(p string) (io.ReadCloser, ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	g := s.locks.RLock(s.ctx, cp)
	defer g.Release()
	ri, err := s.stat(cp)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	if ri.IsCollection {
		return nil, ResourceInfo{}, fmt.Errorf("%w: %s", ErrIsCollection, ri.Path)
	}
	dp, err := s.diskPath(ri.Path)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	f, err := os.Open(dp)
	if err != nil {
		return nil, ResourceInfo{}, mapFSErr(err, ri.Path)
	}
	return f, ri, nil
}

// Delete implements Store. The exclusive lock on cp covers the whole
// subtree (descendant operations would need an intent lock on cp), so
// no per-descendant locking is necessary.
func (s *FSStore) Delete(p string) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("%w: cannot delete /", ErrBadPath)
	}
	g := s.locks.Lock(s.ctx, cp)
	defer g.Release()
	dp, err := s.diskPath(cp)
	if err != nil {
		return err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return mapFSErr(err, cp)
	}
	if fi.IsDir() {
		// Directory properties live inside the directory; one
		// RemoveAll covers body, members, and all metadata. Every
		// cached database under the subtree is orphaned by it.
		if err := os.RemoveAll(dp); err != nil {
			return err
		}
		s.cache.InvalidatePrefix(dp)
		return nil
	}
	if err := os.Remove(dp); err != nil {
		return mapFSErr(err, cp)
	}
	// Drop the member's property database, if any.
	pp := s.memberPropsPath(dp, cp)
	if err := os.Remove(pp); err != nil && !os.IsNotExist(err) {
		return err
	}
	s.cache.Invalidate(pp)
	return nil
}

// Rename implements the MOVE fast path: an atomic filesystem rename
// plus relocation of the member property database. Source and
// destination subtrees are locked exclusively in one ordered
// acquisition, so the move is atomic with respect to every other store
// operation and cannot deadlock against a crossing move.
func (s *FSStore) Rename(src, dst string) error {
	csrc, err := CleanPath(src)
	if err != nil {
		return err
	}
	cdst, err := CleanPath(dst)
	if err != nil {
		return err
	}
	if csrc == "/" || cdst == "/" || csrc == cdst ||
		IsAncestor(csrc, cdst) || IsAncestor(cdst, csrc) {
		return fmt.Errorf("%w: rename %q -> %q", ErrBadPath, src, dst)
	}
	g := s.locks.Acquire(s.ctx,
		pathlock.Req{Path: csrc, Mode: pathlock.Exclusive},
		pathlock.Req{Path: cdst, Mode: pathlock.Exclusive})
	defer g.Release()

	sp, err := s.diskPath(csrc)
	if err != nil {
		return err
	}
	tp, err := s.diskPath(cdst)
	if err != nil {
		return err
	}
	sfi, err := os.Stat(sp)
	if err != nil {
		return mapFSErr(err, csrc)
	}
	if _, err := os.Stat(tp); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, cdst)
	}
	if pfi, err := os.Stat(filepath.Dir(tp)); err != nil || !pfi.IsDir() {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cdst))
	}
	if err := os.Rename(sp, tp); err != nil {
		return err
	}
	if sfi.IsDir() {
		// Every cached database under the old directory now points at
		// a renamed-away file; drop them so the new paths reopen.
		s.cache.InvalidatePrefix(sp)
		return nil
	}
	// Move the member property database alongside.
	spp := s.memberPropsPath(sp, csrc)
	if _, err := os.Stat(spp); err == nil {
		tpp := s.memberPropsPath(tp, cdst)
		if err := os.MkdirAll(filepath.Dir(tpp), 0o755); err != nil {
			return err
		}
		if err := os.Rename(spp, tpp); err != nil {
			return err
		}
	}
	s.cache.Invalidate(spp)
	return nil
}

// CopyTreeAtomic implements TreeCopier: the whole copy runs under one
// multi-path acquisition — Shared on the source subtree, Exclusive on
// the destination — so writers cannot mutate the source mid-copy and no
// reader observes a partially built destination tree.
func (s *FSStore) CopyTreeAtomic(src, dst string, opts CopyOptions) error {
	csrc, err := CleanPath(src)
	if err != nil {
		return err
	}
	cdst, err := CleanPath(dst)
	if err != nil {
		return err
	}
	if csrc == cdst || IsAncestor(csrc, cdst) {
		return fmt.Errorf("%w: cannot copy %q into itself", ErrBadPath, csrc)
	}
	g := s.locks.Acquire(s.ctx,
		pathlock.Req{Path: csrc, Mode: pathlock.Shared},
		pathlock.Req{Path: cdst, Mode: pathlock.Exclusive})
	defer g.Release()
	return s.copyTreeLocked(csrc, cdst, opts.Recurse)
}

// copyTreeLocked recursively copies csrc to cdst under the already-held
// subtree locks.
func (s *FSStore) copyTreeLocked(csrc, cdst string, recurse bool) error {
	ri, err := s.stat(csrc)
	if err != nil {
		return err
	}
	if err := s.copyResourceLocked(ri, cdst); err != nil {
		return err
	}
	if !ri.IsCollection || !recurse {
		return nil
	}
	members, _, err := s.list(csrc, false)
	if err != nil {
		return err
	}
	for _, m := range members {
		rel := strings.TrimPrefix(m.Path, csrc)
		if err := s.copyTreeLocked(m.Path, cdst+rel, recurse); err != nil {
			return err
		}
	}
	return nil
}

// copyResourceLocked copies one resource (body + properties) under the
// already-held subtree locks, mirroring the generic copyResource.
func (s *FSStore) copyResourceLocked(src ResourceInfo, cdst string) error {
	if src.IsCollection {
		if err := s.mkcolLocked(cdst); err != nil {
			return err
		}
	} else {
		sp, err := s.diskPath(src.Path)
		if err != nil {
			return err
		}
		f, err := os.Open(sp)
		if err != nil {
			return mapFSErr(err, src.Path)
		}
		dp, err := s.diskPath(cdst)
		if err != nil {
			f.Close()
			return err
		}
		_, err = s.putLocked(cdst, dp, f, src.ContentType)
		f.Close()
		if err != nil {
			return err
		}
	}
	props, err := s.propAllLocked(src.Path)
	if err != nil {
		return err
	}
	if len(props) == 0 {
		return nil
	}
	names := sortedPropNames(props)
	return s.withProps(cdst, true, func(h *dbm.Handle) error {
		for _, n := range names {
			if err := h.Put(propKey(n), props[n]); err != nil {
				return err
			}
		}
		return nil
	})
}

// PropPut implements Store.
func (s *FSStore) PropPut(p string, name xml.Name, value []byte) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	g := s.locks.Lock(s.ctx, cp)
	defer g.Release()
	if _, err := s.stat(cp); err != nil {
		return err
	}
	return s.withProps(cp, true, func(h *dbm.Handle) error {
		return h.Put(propKey(name), value)
	})
}

// PropGet implements Store.
func (s *FSStore) PropGet(p string, name xml.Name) ([]byte, bool, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, false, err
	}
	g := s.locks.RLock(s.ctx, cp)
	defer g.Release()
	if _, err := s.stat(cp); err != nil {
		return nil, false, err
	}
	var val []byte
	var ok bool
	err = s.withProps(cp, false, func(h *dbm.Handle) error {
		var e error
		val, ok, e = h.Get(propKey(name))
		return e
	})
	return val, ok, err
}

// PropDelete implements Store.
func (s *FSStore) PropDelete(p string, name xml.Name) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	g := s.locks.Lock(s.ctx, cp)
	defer g.Release()
	if _, err := s.stat(cp); err != nil {
		return err
	}
	return s.withProps(cp, false, func(h *dbm.Handle) error {
		_, err := h.Delete(propKey(name))
		return err
	})
}

// PropNames implements Store.
func (s *FSStore) PropNames(p string) ([]xml.Name, error) {
	all, err := s.PropAll(p)
	if err != nil {
		return nil, err
	}
	return sortedPropNames(all), nil
}

// PropAll implements Store.
func (s *FSStore) PropAll(p string) (map[xml.Name][]byte, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	g := s.locks.RLock(s.ctx, cp)
	defer g.Release()
	if _, err := s.stat(cp); err != nil {
		return nil, err
	}
	return s.propAllLocked(cp)
}

// propAllLocked reads every dead property under an already-held lock
// covering cp.
func (s *FSStore) propAllLocked(cp string) (map[xml.Name][]byte, error) {
	out := map[xml.Name][]byte{}
	err := s.withProps(cp, false, func(h *dbm.Handle) error {
		return h.ForEach(func(k, v []byte) error {
			if name, ok := parsePropKey(k); ok {
				out[name] = v
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DiskUsage sums the sizes of all regular files under dir — used by
// the migration experiment to compare storage footprints.
func DiskUsage(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			fi, err := d.Info()
			if err != nil {
				return err
			}
			total += fi.Size()
		}
		return nil
	})
	return total, err
}

// ContentHash returns the SHA-1 of a document's body, used by tests
// and the migration verifier.
func ContentHash(s Store, p string) (string, error) {
	rc, _, err := s.Get(p)
	if err != nil {
		return "", err
	}
	defer rc.Close()
	h := sha1.New()
	if _, err := io.Copy(h, rc); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
