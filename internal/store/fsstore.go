package store

import (
	"context"
	"crypto/sha1"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"io/fs"
	"mime"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/dbm"
)

// propDirName is the per-directory metadata directory, mirroring
// mod_dav's ".DAV" working directory. It is invisible to DAV clients.
const propDirName = ".DAV"

// collectionPropsFile holds the properties of the directory itself.
const collectionPropsFile = ".dirprops"

// propsExt is the extension of per-member property databases.
const propsExt = ".props"

// Internal DBM keys.
const ikeyContentType = "ctype"

// FSStore is the mod_dav-style store: documents are files, collections
// are directories, and each resource that has metadata owns a DBM
// database file under its parent's .DAV directory. Raw data therefore
// stays directly visible in the filesystem, as the paper requires.
type FSStore struct {
	root    string
	flavour dbm.Flavour
	// mu is shared by pointer so WithContext views synchronize with
	// the original store.
	mu  *sync.RWMutex
	ctx context.Context // request binding; Background when unbound
}

var _ Store = (*FSStore)(nil)
var _ Renamer = (*FSStore)(nil)
var _ ContextBinder = (*FSStore)(nil)

// NewFSStore opens (creating if needed) a store rooted at dir, using
// the given DBM flavour for property databases.
func NewFSStore(dir string, flavour dbm.Flavour) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return &FSStore{root: abs, flavour: flavour, mu: new(sync.RWMutex), ctx: context.Background()}, nil
}

// WithContext implements ContextBinder: the returned view shares the
// store's lock and data but attributes property-database opens and
// operations (the "dbm.*" spans) to ctx.
func (s *FSStore) WithContext(ctx context.Context) Store {
	c := *s
	c.ctx = ctx
	return &c
}

// Root returns the store's root directory on disk.
func (s *FSStore) Root() string { return s.root }

// Flavour returns the DBM flavour used for property databases.
func (s *FSStore) Flavour() dbm.Flavour { return s.flavour }

// Close releases the store. Property databases are opened per
// operation (as mod_dav did), so there is nothing to flush.
func (s *FSStore) Close() error { return nil }

// diskPath maps a canonical resource path to a filesystem path,
// rejecting paths that use the reserved metadata directory name.
func (s *FSStore) diskPath(p string) (string, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return "", err
	}
	if cp != "/" {
		for _, seg := range strings.Split(cp[1:], "/") {
			if seg == propDirName {
				return "", fmt.Errorf("%w: %q is reserved", ErrBadPath, propDirName)
			}
		}
	}
	return filepath.Join(s.root, filepath.FromSlash(cp)), nil
}

// propsPath returns the property database path for resource p and
// whether its parent .DAV directory exists yet.
func (s *FSStore) propsPath(p string) (string, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return "", err
	}
	dp, err := s.diskPath(cp)
	if err != nil {
		return "", err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return "", mapFSErr(err, cp)
	}
	if fi.IsDir() {
		return filepath.Join(dp, propDirName, collectionPropsFile+propsExt), nil
	}
	return filepath.Join(filepath.Dir(dp), propDirName, path.Base(cp)+propsExt), nil
}

func mapFSErr(err error, p string) error {
	switch {
	case err == nil:
		return nil
	case os.IsNotExist(err):
		return fmt.Errorf("%w: %s", ErrNotFound, p)
	case os.IsExist(err):
		return fmt.Errorf("%w: %s", ErrExists, p)
	default:
		return err
	}
}

// Stat implements Store.
func (s *FSStore) Stat(p string) (ResourceInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.statLocked(p)
}

func (s *FSStore) statLocked(p string) (ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return ResourceInfo{}, err
	}
	dp, err := s.diskPath(cp)
	if err != nil {
		return ResourceInfo{}, err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return ResourceInfo{}, mapFSErr(err, cp)
	}
	return s.infoFor(cp, fi), nil
}

func (s *FSStore) infoFor(cp string, fi fs.FileInfo) ResourceInfo {
	ri := ResourceInfo{
		Path:         cp,
		IsCollection: fi.IsDir(),
		ModTime:      fi.ModTime(),
		CreateTime:   fi.ModTime(),
	}
	if !fi.IsDir() {
		ri.Size = fi.Size()
		ri.ETag = fmt.Sprintf(`"%x-%x"`, fi.Size(), fi.ModTime().UnixNano())
		ri.ContentType = inferContentType(cp)
		// An explicitly supplied content type overrides the inferred
		// one; like mod_dav, this is the one piece of system metadata
		// kept in the property database.
		if ct, ok := s.internalGet(cp, ikeyContentType); ok && len(ct) > 0 {
			ri.ContentType = string(ct)
		}
	}
	return ri
}

// internalGet reads an internal bookkeeping key; misses (including a
// missing database) are reported as ok=false.
func (s *FSStore) internalGet(cp, key string) ([]byte, bool) {
	pp, err := s.propsPath(cp)
	if err != nil {
		return nil, false
	}
	if _, err := os.Stat(pp); err != nil {
		return nil, false
	}
	db, err := dbm.OpenContext(s.ctx, pp, s.flavour)
	if err != nil {
		return nil, false
	}
	defer db.Close()
	v, ok, err := db.Get(internalKey(key))
	if err != nil {
		return nil, false
	}
	return v, ok
}

// internalPut writes an internal bookkeeping key, creating the
// property database if needed.
func (s *FSStore) internalPut(cp, key string, value []byte) error {
	return s.withPropsDB(cp, true, func(db *dbm.DB) error {
		return db.Put(internalKey(key), value)
	})
}

// withPropsDB opens the resource's property database, creating it if
// create is true. When create is false and the database does not
// exist, fn is not called and the result is nil (empty database
// semantics).
func (s *FSStore) withPropsDB(cp string, create bool, fn func(*dbm.DB) error) error {
	pp, err := s.propsPath(cp)
	if err != nil {
		return err
	}
	if _, err := os.Stat(pp); err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		if !create {
			return nil
		}
		if err := os.MkdirAll(filepath.Dir(pp), 0o755); err != nil {
			return err
		}
	}
	db, err := dbm.OpenContext(s.ctx, pp, s.flavour)
	if err != nil {
		return err
	}
	defer db.Close()
	return fn(db)
}

// List implements Store.
func (s *FSStore) List(p string) ([]ResourceInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	dp, err := s.diskPath(cp)
	if err != nil {
		return nil, err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return nil, mapFSErr(err, cp)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("%w: %s", ErrNotCollection, cp)
	}
	ents, err := os.ReadDir(dp)
	if err != nil {
		return nil, err
	}
	infos := make([]ResourceInfo, 0, len(ents))
	for _, e := range ents {
		if e.Name() == propDirName {
			continue
		}
		efi, err := e.Info()
		if err != nil {
			continue // raced with deletion
		}
		child := path.Join(cp, e.Name())
		infos = append(infos, s.infoFor(child, efi))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Path < infos[j].Path })
	return infos, nil
}

// Mkcol implements Store.
func (s *FSStore) Mkcol(p string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("%w: /", ErrExists)
	}
	dp, err := s.diskPath(cp)
	if err != nil {
		return err
	}
	if _, err := os.Stat(dp); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, cp)
	}
	parent := filepath.Dir(dp)
	pfi, err := os.Stat(parent)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	if !pfi.IsDir() {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	if err := os.Mkdir(dp, 0o755); err != nil {
		return mapFSErr(err, cp)
	}
	return nil
}

// Put implements Store. The body is staged to a temporary file and
// renamed into place so concurrent readers never observe a torn
// document.
func (s *FSStore) Put(p string, r io.Reader, contentType string) (bool, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return false, err
	}
	if cp == "/" {
		return false, fmt.Errorf("%w: cannot PUT to /", ErrIsCollection)
	}
	dp, err := s.diskPath(cp)
	if err != nil {
		return false, err
	}

	s.mu.RLock()
	parentFI, perr := os.Stat(filepath.Dir(dp))
	fi, ferr := os.Stat(dp)
	s.mu.RUnlock()
	if perr != nil || !parentFI.IsDir() {
		return false, fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	created := ferr != nil
	if ferr == nil && fi.IsDir() {
		return false, fmt.Errorf("%w: %s", ErrIsCollection, cp)
	}

	tmp, err := os.CreateTemp(filepath.Dir(dp), ".put-*")
	if err != nil {
		return false, err
	}
	tmpName := tmp.Name()
	if _, err := io.Copy(tmp, r); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return false, err
	}
	// Flush the staged bytes before the rename: without it a crash
	// after the rename can leave the final name pointing at a file
	// whose contents never reached disk — torn data under the atomic
	// promise this function makes.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return false, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmpName, dp); err != nil {
		os.Remove(tmpName)
		return false, err
	}
	// The rename itself is only durable once the parent directory's
	// entry is on disk.
	syncDir(filepath.Dir(dp))
	// mod_dav only materializes a property database for resources that
	// carry metadata (the disk-overhead experiment depends on this), so
	// the content type is persisted only when it cannot be re-derived
	// from the file extension.
	if contentType != "" && contentType != inferContentType(cp) {
		if err := s.internalPut(cp, ikeyContentType, []byte(contentType)); err != nil {
			return created, err
		}
	}
	return created, nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a
// crash. Best effort: some filesystems (and non-POSIX platforms)
// refuse to open or sync directories, and a failure there must not
// fail the write that already succeeded.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// inferContentType derives a document's content type from its
// extension, as mod_dav-era servers did.
func inferContentType(cp string) string {
	if ct := mime.TypeByExtension(path.Ext(cp)); ct != "" {
		return ct
	}
	return "application/octet-stream"
}

// Get implements Store.
func (s *FSStore) Get(p string) (io.ReadCloser, ResourceInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ri, err := s.statLocked(p)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	if ri.IsCollection {
		return nil, ResourceInfo{}, fmt.Errorf("%w: %s", ErrIsCollection, ri.Path)
	}
	dp, err := s.diskPath(ri.Path)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	f, err := os.Open(dp)
	if err != nil {
		return nil, ResourceInfo{}, mapFSErr(err, ri.Path)
	}
	return f, ri, nil
}

// Delete implements Store.
func (s *FSStore) Delete(p string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("%w: cannot delete /", ErrBadPath)
	}
	dp, err := s.diskPath(cp)
	if err != nil {
		return err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return mapFSErr(err, cp)
	}
	if fi.IsDir() {
		// Directory properties live inside the directory; one
		// RemoveAll covers body, members, and all metadata.
		return os.RemoveAll(dp)
	}
	if err := os.Remove(dp); err != nil {
		return mapFSErr(err, cp)
	}
	// Drop the member's property database, if any.
	pp := filepath.Join(filepath.Dir(dp), propDirName, path.Base(cp)+propsExt)
	if err := os.Remove(pp); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Rename implements the MOVE fast path: an atomic filesystem rename
// plus relocation of the member property database.
func (s *FSStore) Rename(src, dst string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	csrc, err := CleanPath(src)
	if err != nil {
		return err
	}
	cdst, err := CleanPath(dst)
	if err != nil {
		return err
	}
	if csrc == "/" || cdst == "/" || csrc == cdst || IsAncestor(csrc, cdst) {
		return fmt.Errorf("%w: rename %q -> %q", ErrBadPath, src, dst)
	}
	sp, err := s.diskPath(csrc)
	if err != nil {
		return err
	}
	tp, err := s.diskPath(cdst)
	if err != nil {
		return err
	}
	sfi, err := os.Stat(sp)
	if err != nil {
		return mapFSErr(err, csrc)
	}
	if _, err := os.Stat(tp); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, cdst)
	}
	if pfi, err := os.Stat(filepath.Dir(tp)); err != nil || !pfi.IsDir() {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cdst))
	}
	if err := os.Rename(sp, tp); err != nil {
		return err
	}
	if !sfi.IsDir() {
		// Move the member property database alongside.
		spp := filepath.Join(filepath.Dir(sp), propDirName, path.Base(csrc)+propsExt)
		if _, err := os.Stat(spp); err == nil {
			tpp := filepath.Join(filepath.Dir(tp), propDirName, path.Base(cdst)+propsExt)
			if err := os.MkdirAll(filepath.Dir(tpp), 0o755); err != nil {
				return err
			}
			if err := os.Rename(spp, tpp); err != nil {
				return err
			}
		}
	}
	return nil
}

// PropPut implements Store.
func (s *FSStore) PropPut(p string, name xml.Name, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if _, err := s.statLocked(cp); err != nil {
		return err
	}
	return s.withPropsDB(cp, true, func(db *dbm.DB) error {
		return db.Put(propKey(name), value)
	})
}

// PropGet implements Store.
func (s *FSStore) PropGet(p string, name xml.Name) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cp, err := CleanPath(p)
	if err != nil {
		return nil, false, err
	}
	if _, err := s.statLocked(cp); err != nil {
		return nil, false, err
	}
	var val []byte
	var ok bool
	err = s.withPropsDB(cp, false, func(db *dbm.DB) error {
		var e error
		val, ok, e = db.Get(propKey(name))
		return e
	})
	return val, ok, err
}

// PropDelete implements Store.
func (s *FSStore) PropDelete(p string, name xml.Name) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if _, err := s.statLocked(cp); err != nil {
		return err
	}
	return s.withPropsDB(cp, false, func(db *dbm.DB) error {
		_, err := db.Delete(propKey(name))
		return err
	})
}

// PropNames implements Store.
func (s *FSStore) PropNames(p string) ([]xml.Name, error) {
	all, err := s.PropAll(p)
	if err != nil {
		return nil, err
	}
	names := make([]xml.Name, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i].Space != names[j].Space {
			return names[i].Space < names[j].Space
		}
		return names[i].Local < names[j].Local
	})
	return names, nil
}

// PropAll implements Store.
func (s *FSStore) PropAll(p string) (map[xml.Name][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	if _, err := s.statLocked(cp); err != nil {
		return nil, err
	}
	out := map[xml.Name][]byte{}
	err = s.withPropsDB(cp, false, func(db *dbm.DB) error {
		return db.ForEach(func(k, v []byte) error {
			if name, ok := parsePropKey(k); ok {
				out[name] = v
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DiskUsage sums the sizes of all regular files under dir — used by
// the migration experiment to compare storage footprints.
func DiskUsage(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			fi, err := d.Info()
			if err != nil {
				return err
			}
			total += fi.Size()
		}
		return nil
	})
	return total, err
}

// ContentHash returns the SHA-1 of a document's body, used by tests
// and the migration verifier.
func ContentHash(s Store, p string) (string, error) {
	rc, _, err := s.Get(p)
	if err != nil {
		return "", err
	}
	defer rc.Close()
	h := sha1.New()
	if _, err := io.Copy(h, rc); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
