package store

import (
	"context"
	"crypto/sha1"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"mime"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dbm"
	"repro/internal/store/journal"
	"repro/internal/store/pathlock"
)

// propDirName is the per-directory metadata directory, mirroring
// mod_dav's ".DAV" working directory. It is invisible to DAV clients.
const propDirName = ".DAV"

// collectionPropsFile holds the properties of the directory itself.
const collectionPropsFile = ".dirprops"

// propsExt is the extension of per-member property databases.
const propsExt = ".props"

// journalFileName is the intent journal, kept in the root's metadata
// directory next to the root collection's property database.
const journalFileName = "journal"

// Exported layout knowledge for tooling that walks the store on disk
// (the fsck package above all). The values are part of the mod_dav
// layout contract and must not change for existing stores.
const (
	// MetaDirName is the per-directory metadata directory name.
	MetaDirName = propDirName
	// PropsExt is the property-database file extension.
	PropsExt = propsExt
	// CollectionPropsBase is the base name (without PropsExt) of a
	// collection's own property database inside its metadata directory.
	CollectionPropsBase = collectionPropsFile
	// JournalFileName is the intent journal's file name inside the
	// root's metadata directory.
	JournalFileName = journalFileName
)

// IsTmpName reports whether a directory entry name is a staging
// temporary — an unrenamed Put body (".put-*") or an unfinished DBM
// compaction ("*.compact"). Such files are crash debris: recovery and
// fsck sweep them.
func IsTmpName(name string) bool {
	return strings.HasPrefix(name, ".put-") || strings.HasSuffix(name, ".compact")
}

// GenerationKey is the DBM key holding a document's overwrite
// generation (fsck reads it to validate monotonicity).
func GenerationKey() []byte { return internalKey(ikeyGeneration) }

// Internal DBM keys.
const (
	ikeyContentType = "ctype"
	// ikeyGeneration is a per-resource counter bumped on every document
	// overwrite. It feeds the ETag so two overwrites that leave the
	// same size and the same (nanosecond) mtime still produce distinct
	// ETags — without it, If-Match could validate a stale ETag.
	ikeyGeneration = "gen"
)

// DefaultHandleCacheSize is the default bound on open property-database
// handles kept by the store's DBM cache.
const DefaultHandleCacheSize = 256

// FSOptions tunes NewFSStoreWith.
type FSOptions struct {
	// HandleCacheSize bounds the shared cache of open property-database
	// handles. Zero means DefaultHandleCacheSize; negative disables
	// caching entirely (every property touch opens and closes its
	// database, the historical mod_dav behaviour — kept as the
	// benchmark baseline and an operational escape hatch).
	HandleCacheSize int
	// DisableJournal turns off the write-ahead intent journal. Without
	// it, a crash mid-operation can leave a torn content/props/
	// generation combination that only fsck -repair notices. Stale
	// staging temporaries are still swept at open.
	DisableJournal bool
	// DeferRecovery opens the store without running startup recovery.
	// The store reports Recovering() == true and fails every mutation
	// with ErrRecovering until Recover is called — daemons use this to
	// start serving reads immediately and run recovery in the
	// background while /readyz reports "recovering".
	DeferRecovery bool
	// SkipRecovery opens the store without recovery AND without the
	// write gate — the store is served exactly as found on disk.
	// Intended for read-only inspection (davfsck): mutations while
	// intents are pending would compound the damage, so tools using it
	// must not write before calling Recover.
	SkipRecovery bool
	// StepHook, when set, is invoked at every named step boundary
	// inside multi-step mutations ("put.renamed", "delete.content",
	// ...). The crash-point fault injector (internal/chaos.CrashPoint)
	// panics from it to simulate a crash between two steps. Production
	// stores leave it nil.
	StepHook func(point string)
}

// FSStore is the mod_dav-style store: documents are files, collections
// are directories, and each resource that has metadata owns a DBM
// database file under its parent's .DAV directory. Raw data therefore
// stays directly visible in the filesystem, as the paper requires.
//
// Concurrency: every operation takes a hierarchical path lock (shared
// for reads, exclusive for writes) instead of a store-wide mutex, so
// operations on disjoint subtrees proceed fully in parallel, and an
// exclusive lock on a collection covers its whole subtree — which is
// what Delete and Rename rely on. Property databases are reached
// through a shared refcounted handle cache rather than being opened per
// operation.
//
// Cancellation: every operation takes the request context. Lock waits
// abort when it is done, and multi-step mutations checkpoint it at
// step boundaries where nothing user-visible has mutated yet — a
// cancelled PUT removes its staged temporary and resolves its intent
// as a no-op. Once the decisive visible step has run (the rename into
// place, the first removal), the operation finishes regardless of
// cancellation: completing is cheaper than the torn middle, and the
// journal's crash recovery covers a process death either way.
type FSStore struct {
	root    string
	flavour dbm.Flavour
	locks   *pathlock.Manager
	cache   *dbm.Cache
	shared  *fsShared
}

// fsShared is the store state kept behind one pointer so FSStore stays
// copy-friendly: the intent journal, the recovering write gate, the
// crash-point step hook, and the recovery counters.
type fsShared struct {
	journal    *journal.Journal // nil when journaling is disabled
	recovering atomic.Bool
	stepHook   func(string)
	// recoverMu serializes Recover passes (a background startup
	// recovery racing an explicit Recover call must not resolve the
	// same intent twice).
	recoverMu sync.Mutex

	recoverRuns     atomic.Int64
	rolledForward   atomic.Int64
	rolledBack      atomic.Int64
	sweptTmp        atomic.Int64
	lastRecoverNano atomic.Int64

	// Live progress of the current (or most recent) recovery pass,
	// surfaced in /readyz while the store is recovering so operators
	// can watch the backlog drain instead of staring at a flag.
	passResolved atomic.Int64
	passSwept    atomic.Int64
}

// fsyncErrors counts directory/file fsync failures that were demoted
// to best-effort (see syncDir). Surfaced as dav_fsync_errors_total.
var fsyncErrors atomic.Int64

// FsyncErrors reports how many fsync failures the store layer has
// swallowed (logged and counted rather than failing the write).
func FsyncErrors() int64 { return fsyncErrors.Load() }

var _ Store = (*FSStore)(nil)
var _ Renamer = (*FSStore)(nil)
var _ BatchReader = (*FSStore)(nil)
var _ TreeCopier = (*FSStore)(nil)

// NewFSStore opens (creating if needed) a store rooted at dir, using
// the given DBM flavour for property databases and default options.
func NewFSStore(dir string, flavour dbm.Flavour) (*FSStore, error) {
	return NewFSStoreWith(dir, flavour, FSOptions{})
}

// NewFSStoreWith is NewFSStore with explicit tuning.
//
// Unless opted out, opening also establishes crash consistency: the
// intent journal is opened (created on first use), and startup
// recovery resolves any intents a crash left unfinished and sweeps
// stale staging temporaries — so a store that crashed mid-PUT or
// mid-MOVE is consistent again before the first operation runs.
func NewFSStoreWith(dir string, flavour dbm.Flavour, o FSOptions) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	size := o.HandleCacheSize
	if size == 0 {
		size = DefaultHandleCacheSize
	}
	s := &FSStore{
		root:    abs,
		flavour: flavour,
		locks:   pathlock.NewManager(),
		cache:   dbm.NewCache(size, flavour),
		shared:  &fsShared{stepHook: o.StepHook},
	}
	if !o.DisableJournal {
		metaDir := filepath.Join(abs, propDirName)
		if err := os.MkdirAll(metaDir, 0o755); err != nil {
			s.cache.Close()
			return nil, err
		}
		j, err := journal.Open(filepath.Join(metaDir, journalFileName))
		if err != nil {
			s.cache.Close()
			return nil, err
		}
		s.shared.journal = j
	}
	switch {
	case o.SkipRecovery:
		// Inspection mode: serve the store as found. Writes stay gated
		// while intents are pending — mutating a store that still needs
		// recovery would compound the damage.
		s.shared.recovering.Store(s.shared.journal != nil && s.shared.journal.Len() > 0)
	case o.DeferRecovery:
		s.shared.recovering.Store(true)
	default:
		if _, err := s.Recover(); err != nil {
			s.Close()
			return nil, fmt.Errorf("store: startup recovery: %w", err)
		}
	}
	return s, nil
}

// Root returns the store's root directory on disk.
func (s *FSStore) Root() string { return s.root }

// Flavour returns the DBM flavour used for property databases.
func (s *FSStore) Flavour() dbm.Flavour { return s.flavour }

// LockStats snapshots the hierarchical path-lock counters.
func (s *FSStore) LockStats() pathlock.Stats { return s.locks.Stats() }

// CacheStats snapshots the property-database handle-cache counters.
func (s *FSStore) CacheStats() dbm.CacheStats { return s.cache.Stats() }

// PathLocks exposes the lock manager (tests, metrics wiring).
func (s *FSStore) PathLocks() *pathlock.Manager { return s.locks }

// HandleCache exposes the DBM handle cache (tests, metrics wiring).
func (s *FSStore) HandleCache() *dbm.Cache { return s.cache }

// Close releases the store: every cached property database is closed
// (pinned handles close on their release) and the intent journal is
// synced and closed.
func (s *FSStore) Close() error {
	err := s.cache.Close()
	if j := s.shared.journal; j != nil {
		if jerr := j.Close(); err == nil {
			err = jerr
		}
	}
	return err
}

// Recovering reports whether the store is still gated behind recovery
// (writes fail with ErrRecovering until Recover completes).
func (s *FSStore) Recovering() bool { return s.shared.recovering.Load() }

// Journal exposes the intent journal (nil when disabled) for fsck and
// tests.
func (s *FSStore) Journal() *journal.Journal { return s.shared.journal }

// step fires the crash-point hook at a named step boundary. A nil hook
// (every production store) costs one predictable branch.
func (s *FSStore) step(point string) {
	if h := s.shared.stepHook; h != nil {
		h(point)
	}
}

// writeGate rejects mutations while the store is recovering.
func (s *FSStore) writeGate() error {
	if s.shared.recovering.Load() {
		return fmt.Errorf("%w: %s", ErrRecovering, s.root)
	}
	return nil
}

// beginIntent appends a fsync'd intent record, or does nothing when
// journaling is disabled (id 0 commits as a no-op).
func (s *FSStore) beginIntent(rec journal.Record) (uint64, error) {
	if s.shared.journal == nil {
		return 0, nil
	}
	return s.shared.journal.Begin(rec)
}

// commitIntent appends the commit record for id. A failed commit write
// is logged, not returned: the operation itself succeeded, and an
// uncommitted intent only costs an idempotent roll-forward at the next
// recovery.
func (s *FSStore) commitIntent(id uint64) {
	if s.shared.journal == nil || id == 0 {
		return
	}
	if err := s.shared.journal.Commit(id); err != nil {
		slog.Warn("store: journal commit failed; next recovery will re-resolve",
			"seq", id, "err", err)
	}
}

// diskPath maps a canonical resource path to a filesystem path,
// rejecting paths that use the reserved metadata directory name.
func (s *FSStore) diskPath(p string) (string, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return "", err
	}
	if cp != "/" {
		for _, seg := range strings.Split(cp[1:], "/") {
			if seg == propDirName {
				return "", fmt.Errorf("%w: %q is reserved", ErrBadPath, propDirName)
			}
		}
	}
	return filepath.Join(s.root, filepath.FromSlash(cp)), nil
}

// propsPath returns the property database path for resource p.
func (s *FSStore) propsPath(p string) (string, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return "", err
	}
	dp, err := s.diskPath(cp)
	if err != nil {
		return "", err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return "", mapFSErr(err, cp)
	}
	if fi.IsDir() {
		return filepath.Join(dp, propDirName, collectionPropsFile+propsExt), nil
	}
	return filepath.Join(filepath.Dir(dp), propDirName, path.Base(cp)+propsExt), nil
}

// memberPropsPath is propsPath for a known document, without the
// resource stat (used after the document has been removed).
func (s *FSStore) memberPropsPath(dp, cp string) string {
	return filepath.Join(filepath.Dir(dp), propDirName, path.Base(cp)+propsExt)
}

func mapFSErr(err error, p string) error {
	switch {
	case err == nil:
		return nil
	case os.IsNotExist(err):
		return fmt.Errorf("%w: %s", ErrNotFound, p)
	case os.IsExist(err):
		return fmt.Errorf("%w: %s", ErrExists, p)
	default:
		return err
	}
}

// withProps opens the resource's property database through the handle
// cache, creating it if create is true. When create is false and the
// database does not exist, fn is not called and the result is nil
// (empty database semantics). Caller holds the resource's path lock.
func (s *FSStore) withProps(ctx context.Context, cp string, create bool, fn func(*dbm.Handle) error) error {
	pp, err := s.propsPath(cp)
	if err != nil {
		return err
	}
	if _, err := os.Stat(pp); err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		if !create {
			return nil
		}
		if err := os.MkdirAll(filepath.Dir(pp), 0o755); err != nil {
			return err
		}
	}
	h, err := s.cache.Acquire(ctx, pp)
	if err != nil {
		return err
	}
	defer h.Close()
	return fn(h)
}

// internalMeta reads the internal bookkeeping keys (content type,
// generation) in one handle acquisition. Missing database or keys yield
// zero values. Caller holds the resource's path lock.
func (s *FSStore) internalMeta(ctx context.Context, cp string) (ctype string, gen int64) {
	s.withProps(ctx, cp, false, func(h *dbm.Handle) error {
		if v, ok, _ := h.Get(internalKey(ikeyContentType)); ok {
			ctype = string(v)
		}
		if v, ok, _ := h.Get(internalKey(ikeyGeneration)); ok {
			gen, _ = strconv.ParseInt(string(v), 10, 64)
		}
		return nil
	})
	return ctype, gen
}

// Stat implements Store.
func (s *FSStore) Stat(ctx context.Context, p string) (ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return ResourceInfo{}, err
	}
	g, err := s.locks.RLock(ctx, cp)
	if err != nil {
		return ResourceInfo{}, err
	}
	defer g.Release()
	return s.stat(ctx, cp)
}

// stat resolves cp under an already-held lock.
func (s *FSStore) stat(ctx context.Context, cp string) (ResourceInfo, error) {
	dp, err := s.diskPath(cp)
	if err != nil {
		return ResourceInfo{}, err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return ResourceInfo{}, mapFSErr(err, cp)
	}
	return s.infoFor(ctx, cp, fi), nil
}

// infoFor builds a ResourceInfo, reading the internal metadata keys for
// documents. Caller holds a lock covering cp.
func (s *FSStore) infoFor(ctx context.Context, cp string, fi fs.FileInfo) ResourceInfo {
	ri := ResourceInfo{
		Path:         cp,
		IsCollection: fi.IsDir(),
		ModTime:      fi.ModTime(),
		CreateTime:   fi.ModTime(),
	}
	if !fi.IsDir() {
		ctype, gen := s.internalMeta(ctx, cp)
		s.fillDocInfo(&ri, fi, ctype, gen)
	}
	return ri
}

// fillDocInfo completes a document's ResourceInfo from its file info
// and internal metadata.
func (s *FSStore) fillDocInfo(ri *ResourceInfo, fi fs.FileInfo, ctype string, gen int64) {
	ri.Size = fi.Size()
	ri.ETag = etagFor(fi, gen)
	ri.ContentType = inferContentType(ri.Path)
	// An explicitly supplied content type overrides the inferred one;
	// like mod_dav, this is one of the pieces of system metadata kept
	// in the property database.
	if ctype != "" {
		ri.ContentType = ctype
	}
}

// etagFor derives a document ETag from size, mtime and the overwrite
// generation. Resources never overwritten keep the historical
// size-mtime shape; the generation suffix appears from the first
// overwrite on and makes same-size same-nanosecond rewrites
// distinguishable.
func etagFor(fi fs.FileInfo, gen int64) string {
	if gen > 0 {
		return fmt.Sprintf(`"%x-%x-%x"`, fi.Size(), fi.ModTime().UnixNano(), gen)
	}
	return fmt.Sprintf(`"%x-%x"`, fi.Size(), fi.ModTime().UnixNano())
}

// List implements Store.
func (s *FSStore) List(ctx context.Context, p string) ([]ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	g, err := s.locks.RLock(ctx, cp)
	if err != nil {
		return nil, err
	}
	defer g.Release()
	infos, _, err := s.list(ctx, cp, false)
	return infos, err
}

// list reads the members of cp under an already-held shared lock. When
// withProps is true each member's full property map is loaded in the
// same pass through its (cached) database handle.
func (s *FSStore) list(ctx context.Context, cp string, withProps bool) ([]ResourceInfo, []map[xml.Name][]byte, error) {
	dp, err := s.diskPath(cp)
	if err != nil {
		return nil, nil, err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return nil, nil, mapFSErr(err, cp)
	}
	if !fi.IsDir() {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotCollection, cp)
	}
	ents, err := os.ReadDir(dp)
	if err != nil {
		return nil, nil, err
	}
	infos := make([]ResourceInfo, 0, len(ents))
	var props []map[xml.Name][]byte
	if withProps {
		props = make([]map[xml.Name][]byte, 0, len(ents))
	}
	type memberEntry struct {
		info ResourceInfo
		prop map[xml.Name][]byte
	}
	members := make([]memberEntry, 0, len(ents))
	for _, e := range ents {
		if e.Name() == propDirName {
			continue
		}
		// A wide collection listing touches one property database per
		// member; stop resolving members once the request is abandoned.
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		efi, err := e.Info()
		if err != nil {
			continue // raced with deletion
		}
		child := path.Join(cp, e.Name())
		var me memberEntry
		if withProps {
			me.info, me.prop = s.resolveWithProps(ctx, child, efi)
		} else {
			me.info = s.infoFor(ctx, child, efi)
		}
		members = append(members, me)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].info.Path < members[j].info.Path })
	for _, m := range members {
		infos = append(infos, m.info)
		if withProps {
			props = append(props, m.prop)
		}
	}
	return infos, props, nil
}

// resolveWithProps builds one resource's info and property map in a
// single pass over its property database: dead properties and internal
// metadata come out of the same iteration through one cached handle.
func (s *FSStore) resolveWithProps(ctx context.Context, cp string, fi fs.FileInfo) (ResourceInfo, map[xml.Name][]byte) {
	ri := ResourceInfo{
		Path:         cp,
		IsCollection: fi.IsDir(),
		ModTime:      fi.ModTime(),
		CreateTime:   fi.ModTime(),
	}
	props := map[xml.Name][]byte{}
	var ctype string
	var gen int64
	s.withProps(ctx, cp, false, func(h *dbm.Handle) error {
		return h.ForEach(func(k, v []byte) error {
			if name, ok := parsePropKey(k); ok {
				props[name] = v
				return nil
			}
			switch string(k) {
			case string(internalKey(ikeyContentType)):
				ctype = string(v)
			case string(internalKey(ikeyGeneration)):
				gen, _ = strconv.ParseInt(string(v), 10, 64)
			}
			return nil
		})
	})
	if !fi.IsDir() {
		s.fillDocInfo(&ri, fi, ctype, gen)
	}
	return ri, props
}

// StatWithProps implements BatchReader.
func (s *FSStore) StatWithProps(ctx context.Context, p string) (ResourceInfo, map[xml.Name][]byte, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return ResourceInfo{}, nil, err
	}
	g, err := s.locks.RLock(ctx, cp)
	if err != nil {
		return ResourceInfo{}, nil, err
	}
	defer g.Release()
	dp, err := s.diskPath(cp)
	if err != nil {
		return ResourceInfo{}, nil, err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return ResourceInfo{}, nil, mapFSErr(err, cp)
	}
	ri, props := s.resolveWithProps(ctx, cp, fi)
	return ri, props, nil
}

// ListWithProps implements BatchReader: one shared lock on the
// collection, one pass per member through cached database handles.
func (s *FSStore) ListWithProps(ctx context.Context, p string) ([]MemberProps, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	g, err := s.locks.RLock(ctx, cp)
	if err != nil {
		return nil, err
	}
	defer g.Release()
	infos, props, err := s.list(ctx, cp, true)
	if err != nil {
		return nil, err
	}
	out := make([]MemberProps, len(infos))
	for i := range infos {
		out[i] = MemberProps{Info: infos[i], Props: props[i]}
	}
	return out, nil
}

// Mkcol implements Store. The mkdir itself is atomic; it is journaled
// anyway so the crash-point matrix exercises a single-step operation
// and fsck can attribute a half-created collection to its request.
func (s *FSStore) Mkcol(ctx context.Context, p string) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("%w: /", ErrExists)
	}
	if err := s.writeGate(); err != nil {
		return err
	}
	g, err := s.locks.Lock(ctx, cp)
	if err != nil {
		return err
	}
	defer g.Release()
	s.step("mkcol.start")
	id, err := s.beginIntent(journal.Record{Op: journal.OpMkcol, Path: cp})
	if err != nil {
		return err
	}
	s.step("mkcol.intent")
	if err := ctx.Err(); err != nil {
		// Nothing was mutated: resolve the intent as a no-op.
		s.commitIntent(id)
		return err
	}
	if err := s.mkcolLocked(cp); err != nil {
		s.commitIntent(id)
		return err
	}
	s.step("mkcol.made")
	s.commitIntent(id)
	return nil
}

// mkcolLocked is Mkcol's body under an already-held exclusive lock
// covering cp.
func (s *FSStore) mkcolLocked(cp string) error {
	dp, err := s.diskPath(cp)
	if err != nil {
		return err
	}
	if _, err := os.Stat(dp); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, cp)
	}
	parent := filepath.Dir(dp)
	pfi, err := os.Stat(parent)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	if !pfi.IsDir() {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	if err := os.Mkdir(dp, 0o755); err != nil {
		return mapFSErr(err, cp)
	}
	return nil
}

// Put implements Store. The body is staged to a temporary file and
// renamed into place so concurrent readers never observe a torn
// document. The exclusive path lock serializes writers of one document;
// writers of different documents — even in the same collection —
// proceed in parallel.
func (s *FSStore) Put(ctx context.Context, p string, r io.Reader, contentType string) (bool, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return false, err
	}
	if cp == "/" {
		return false, fmt.Errorf("%w: cannot PUT to /", ErrIsCollection)
	}
	dp, err := s.diskPath(cp)
	if err != nil {
		return false, err
	}
	if err := s.writeGate(); err != nil {
		return false, err
	}

	g, err := s.locks.Lock(ctx, cp)
	if err != nil {
		return false, err
	}
	defer g.Release()
	return s.putLocked(ctx, cp, dp, r, contentType, true)
}

// putLocked is Put's body under an already-held exclusive lock covering
// cp (dp is cp's disk path). journaled=false skips the intent record —
// used by the copy path, whose own intent already covers the whole
// destination subtree (rolling back a copy removes every nested write,
// so per-resource intents would only double the fsync cost).
//
// Crash-consistency shape: the body is staged and fsync'd first (a
// crash there leaves only a swept-at-recovery temp file), then the
// intent — carrying the temp name, the pre-op generation, and the
// content type to persist — is made durable, and only then do the
// visible steps run: rename into place, property write, generation
// bump. Recovery can therefore always classify the store as pre-op
// (temp still present → remove it) or post-op (renamed → finish the
// metadata steps), never in between.
//
// Cancellation checkpoints sit before the rename: a cancelled PUT
// removes its temp and resolves its intent as a no-op, leaving the
// pre-op document intact. After the rename the operation completes —
// the new body is already visible.
func (s *FSStore) putLocked(ctx context.Context, cp, dp string, r io.Reader, contentType string, journaled bool) (bool, error) {
	parentFI, perr := os.Stat(filepath.Dir(dp))
	if perr != nil || !parentFI.IsDir() {
		return false, fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	fi, ferr := os.Stat(dp)
	var created bool
	switch {
	case ferr == nil:
		if fi.IsDir() {
			return false, fmt.Errorf("%w: %s", ErrIsCollection, cp)
		}
	case os.IsNotExist(ferr):
		created = true
	default:
		// A transient stat failure on an existing document must not be
		// mistaken for creation: reporting 201 would be wrong, and
		// skipping the generation bump would let the overwrite reuse the
		// replaced document's ETag.
		return false, ferr
	}
	var prevGen int64
	if !created {
		_, prevGen = s.internalMeta(ctx, cp)
	}
	// Only a content type that cannot be re-derived from the extension
	// is persisted (mod_dav materializes property databases lazily; the
	// disk-overhead experiment depends on it).
	persistCType := ""
	if contentType != "" && contentType != inferContentType(cp) {
		persistCType = contentType
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	s.step("put.start")

	tmp, err := os.CreateTemp(filepath.Dir(dp), ".put-*")
	if err != nil {
		return false, err
	}
	tmpName := tmp.Name()
	if _, err := io.Copy(tmp, r); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return false, err
	}
	// Flush the staged bytes before the rename: without it a crash
	// after the rename can leave the final name pointing at a file
	// whose contents never reached disk — torn data under the atomic
	// promise this function makes.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return false, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return false, err
	}
	s.step("put.staged")
	if err := ctx.Err(); err != nil {
		// Abandoned after staging: only the temp exists; remove it.
		os.Remove(tmpName)
		return false, err
	}

	var id uint64
	if journaled {
		id, err = s.beginIntent(journal.Record{
			Op: journal.OpPut, Path: cp, Tmp: filepath.Base(tmpName),
			Created: created, Gen: prevGen, CType: persistCType,
		})
		if err != nil {
			os.Remove(tmpName)
			return false, err
		}
	}
	s.step("put.intent")
	if err := ctx.Err(); err != nil {
		// Abandoned between intent and rename: remove the temp and
		// resolve the intent — exactly the rollback recovery would
		// perform after a crash here, done inline.
		os.Remove(tmpName)
		s.commitIntent(id)
		return false, err
	}

	if err := os.Rename(tmpName, dp); err != nil {
		os.Remove(tmpName)
		s.commitIntent(id)
		return false, err
	}
	s.step("put.renamed")
	// The rename itself is only durable once the parent directory's
	// entry is on disk.
	if err := syncDir(filepath.Dir(dp)); err != nil {
		fsyncErrors.Add(1)
		slog.Warn("store: directory fsync failed after rename; entry may not survive power loss",
			"dir", filepath.Dir(dp), "err", err)
	}
	// From here on the new body is visible: finish the metadata steps
	// regardless of cancellation (context.Background keeps a done ctx
	// from failing the handle acquisition mid-metadata).
	if persistCType != "" {
		if err := s.withProps(context.Background(), cp, true, func(h *dbm.Handle) error {
			return h.Put(internalKey(ikeyContentType), []byte(persistCType))
		}); err != nil {
			return created, err
		}
	}
	s.step("put.props")
	if !created {
		if err := s.bumpGeneration(context.Background(), cp); err != nil {
			return created, err
		}
	}
	s.step("put.gen")
	s.commitIntent(id)
	return created, nil
}

// bumpGeneration increments the resource's overwrite counter. Caller
// holds the exclusive path lock, which makes read-increment-write safe.
func (s *FSStore) bumpGeneration(ctx context.Context, cp string) error {
	return s.withProps(ctx, cp, true, func(h *dbm.Handle) error {
		var gen int64
		if v, ok, err := h.Get(internalKey(ikeyGeneration)); err != nil {
			return err
		} else if ok {
			gen, _ = strconv.ParseInt(string(v), 10, 64)
		}
		return h.Put(internalKey(ikeyGeneration),
			[]byte(strconv.FormatInt(gen+1, 10)))
	})
}

// syncDir fsyncs a directory so a just-renamed entry survives a
// crash. The error is returned so callers can decide: the write
// itself already succeeded, so callers demote the failure to a WARN
// log plus the dav_fsync_errors_total counter rather than failing the
// operation — but they no longer silently drop it. (Some filesystems
// and non-POSIX platforms refuse to open or sync directories.)
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// inferContentType derives a document's content type from its
// extension, as mod_dav-era servers did.
func inferContentType(cp string) string {
	if ct := mime.TypeByExtension(path.Ext(cp)); ct != "" {
		return ct
	}
	return "application/octet-stream"
}

// Get implements Store.
func (s *FSStore) Get(ctx context.Context, p string) (io.ReadCloser, ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	g, err := s.locks.RLock(ctx, cp)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	defer g.Release()
	ri, err := s.stat(ctx, cp)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	if ri.IsCollection {
		return nil, ResourceInfo{}, fmt.Errorf("%w: %s", ErrIsCollection, ri.Path)
	}
	dp, err := s.diskPath(ri.Path)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	f, err := os.Open(dp)
	if err != nil {
		return nil, ResourceInfo{}, mapFSErr(err, ri.Path)
	}
	return f, ri, nil
}

// Delete implements Store. The exclusive lock on cp covers the whole
// subtree (descendant operations would need an intent lock on cp), so
// no per-descendant locking is necessary.
//
// Crash-consistency shape: deletes always roll forward. The intent is
// durable before the first byte is removed, so a crash between the
// content remove and the sidecar remove (or mid-RemoveAll) is finished
// by recovery — a delete can end half-done on disk but never half-done
// after Recover. The cancellation checkpoint sits before the first
// removal: once removal starts, the delete completes.
func (s *FSStore) Delete(ctx context.Context, p string) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("%w: cannot delete /", ErrBadPath)
	}
	if err := s.writeGate(); err != nil {
		return err
	}
	g, err := s.locks.Lock(ctx, cp)
	if err != nil {
		return err
	}
	defer g.Release()
	dp, err := s.diskPath(cp)
	if err != nil {
		return err
	}
	fi, err := os.Stat(dp)
	if err != nil {
		return mapFSErr(err, cp)
	}
	s.step("delete.start")
	id, err := s.beginIntent(journal.Record{
		Op: journal.OpDelete, Path: cp, IsDir: fi.IsDir(),
	})
	if err != nil {
		return err
	}
	s.step("delete.intent")
	if err := ctx.Err(); err != nil {
		// Nothing was mutated: resolve the intent as a no-op.
		s.commitIntent(id)
		return err
	}
	if fi.IsDir() {
		// Directory properties live inside the directory; one
		// RemoveAll covers body, members, and all metadata. Every
		// cached database under the subtree is orphaned by it. A
		// failure can leave a partially removed tree, so the intent
		// stays open for recovery to finish the job.
		if err := os.RemoveAll(dp); err != nil {
			return err
		}
		s.step("delete.content")
		s.cache.InvalidatePrefix(dp)
		s.commitIntent(id)
		return nil
	}
	if err := os.Remove(dp); err != nil {
		// Nothing was mutated: resolve the intent as a no-op.
		s.commitIntent(id)
		return mapFSErr(err, cp)
	}
	s.step("delete.content")
	// Drop the member's property database, if any. On failure the
	// intent stays open: the content is gone, so recovery must finish
	// removing the now-orphaned sidecar.
	pp := s.memberPropsPath(dp, cp)
	if err := os.Remove(pp); err != nil && !os.IsNotExist(err) {
		s.cache.Invalidate(pp)
		return err
	}
	s.step("delete.props")
	s.cache.Invalidate(pp)
	s.commitIntent(id)
	return nil
}

// Rename implements the MOVE fast path: an atomic filesystem rename
// plus relocation of the member property database. Source and
// destination subtrees are locked exclusively in one ordered
// acquisition, so the move is atomic with respect to every other store
// operation and cannot deadlock against a crossing move.
func (s *FSStore) Rename(ctx context.Context, src, dst string) error {
	csrc, err := CleanPath(src)
	if err != nil {
		return err
	}
	cdst, err := CleanPath(dst)
	if err != nil {
		return err
	}
	if csrc == "/" || cdst == "/" || csrc == cdst ||
		IsAncestor(csrc, cdst) || IsAncestor(cdst, csrc) {
		return fmt.Errorf("%w: rename %q -> %q", ErrBadPath, src, dst)
	}
	if err := s.writeGate(); err != nil {
		return err
	}
	g, err := s.locks.Acquire(ctx,
		pathlock.Req{Path: csrc, Mode: pathlock.Exclusive},
		pathlock.Req{Path: cdst, Mode: pathlock.Exclusive})
	if err != nil {
		return err
	}
	defer g.Release()

	sp, err := s.diskPath(csrc)
	if err != nil {
		return err
	}
	tp, err := s.diskPath(cdst)
	if err != nil {
		return err
	}
	sfi, err := os.Stat(sp)
	if err != nil {
		return mapFSErr(err, csrc)
	}
	if _, err := os.Stat(tp); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, cdst)
	}
	if pfi, err := os.Stat(filepath.Dir(tp)); err != nil || !pfi.IsDir() {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cdst))
	}
	// Crash-consistency shape: the decisive step is the content rename.
	// Recovery sees the source still present → nothing happened (roll
	// back to a no-op); source gone → roll forward by finishing the
	// sidecar relocation. The intent must be durable before the rename
	// so the torn middle (content moved, properties not) is always
	// attributable. The cancellation checkpoint sits between the two:
	// a cancelled MOVE that has not renamed yet is a no-op.
	s.step("rename.start")
	id, err := s.beginIntent(journal.Record{
		Op: journal.OpRename, Path: csrc, Dst: cdst, IsDir: sfi.IsDir(),
	})
	if err != nil {
		return err
	}
	s.step("rename.intent")
	if err := ctx.Err(); err != nil {
		// Nothing was mutated: resolve the intent as a no-op.
		s.commitIntent(id)
		return err
	}
	if err := os.Rename(sp, tp); err != nil {
		// Nothing was mutated: resolve the intent as a no-op.
		s.commitIntent(id)
		return err
	}
	s.step("rename.renamed")
	if sfi.IsDir() {
		// Every cached database under the old directory now points at
		// a renamed-away file; drop them so the new paths reopen.
		s.cache.InvalidatePrefix(sp)
		s.commitIntent(id)
		return nil
	}
	// Move the member property database alongside. On failure the
	// intent stays open: the content already moved, so recovery must
	// finish relocating the sidecar.
	spp := s.memberPropsPath(sp, csrc)
	if _, err := os.Stat(spp); err == nil {
		tpp := s.memberPropsPath(tp, cdst)
		if err := os.MkdirAll(filepath.Dir(tpp), 0o755); err != nil {
			return err
		}
		if err := os.Rename(spp, tpp); err != nil {
			return err
		}
	}
	s.step("rename.props")
	s.cache.Invalidate(spp)
	s.commitIntent(id)
	return nil
}

// CopyTreeAtomic implements TreeCopier: the whole copy runs under one
// multi-path acquisition — Shared on the source subtree, Exclusive on
// the destination — so writers cannot mutate the source mid-copy and no
// reader observes a partially built destination tree.
func (s *FSStore) CopyTreeAtomic(ctx context.Context, src, dst string, opts CopyOptions) error {
	csrc, err := CleanPath(src)
	if err != nil {
		return err
	}
	cdst, err := CleanPath(dst)
	if err != nil {
		return err
	}
	if csrc == cdst || IsAncestor(csrc, cdst) {
		return fmt.Errorf("%w: cannot copy %q into itself", ErrBadPath, csrc)
	}
	if err := s.writeGate(); err != nil {
		return err
	}
	g, err := s.locks.Acquire(ctx,
		pathlock.Req{Path: csrc, Mode: pathlock.Shared},
		pathlock.Req{Path: cdst, Mode: pathlock.Exclusive})
	if err != nil {
		return err
	}
	defer g.Release()
	// Crash-consistency shape: one intent covers the whole destination
	// subtree (the DAV handler clears an overwritten destination before
	// calling, so the destination never holds pre-existing data). A
	// crash or error mid-copy rolls back by removing whatever was built
	// — the nested puts are deliberately unjournaled for that reason.
	// Cancellation takes the same rollback: the per-resource walk
	// checkpoints ctx, and a mid-copy abort removes the partial
	// destination inline, leaving a no-op behind a resolved intent.
	s.step("copy.start")
	id, err := s.beginIntent(journal.Record{
		Op: journal.OpCopy, Path: csrc, Dst: cdst, Recurse: opts.Recurse,
	})
	if err != nil {
		return err
	}
	s.step("copy.intent")
	if err := s.copyTreeLocked(ctx, csrc, cdst, opts.Recurse); err != nil {
		// Roll back inline so a failed COPY is a no-op immediately
		// rather than at the next recovery.
		s.removeCopyDebris(cdst)
		s.commitIntent(id)
		return err
	}
	s.step("copy.done")
	s.commitIntent(id)
	return nil
}

// removeCopyDebris deletes a partially built copy destination — the
// resource tree and, for a document, its property sidecar — and drops
// any cached handles under it. Shared by the inline rollback above and
// crash recovery. Caller holds an exclusive lock covering cdst (or is
// single-threaded recovery).
func (s *FSStore) removeCopyDebris(cdst string) {
	dp, err := s.diskPath(cdst)
	if err != nil {
		return
	}
	os.RemoveAll(dp)
	pp := s.memberPropsPath(dp, cdst)
	os.Remove(pp)
	s.cache.Invalidate(pp)
	s.cache.InvalidatePrefix(dp)
}

// copyTreeLocked recursively copies csrc to cdst under the already-held
// subtree locks, checkpointing ctx before each resource.
func (s *FSStore) copyTreeLocked(ctx context.Context, csrc, cdst string, recurse bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ri, err := s.stat(ctx, csrc)
	if err != nil {
		return err
	}
	if err := s.copyResourceLocked(ctx, ri, cdst); err != nil {
		return err
	}
	if !ri.IsCollection || !recurse {
		return nil
	}
	members, _, err := s.list(ctx, csrc, false)
	if err != nil {
		return err
	}
	for _, m := range members {
		rel := strings.TrimPrefix(m.Path, csrc)
		if err := s.copyTreeLocked(ctx, m.Path, cdst+rel, recurse); err != nil {
			return err
		}
	}
	return nil
}

// copyResourceLocked copies one resource (body + properties) under the
// already-held subtree locks, mirroring the generic copyResource.
func (s *FSStore) copyResourceLocked(ctx context.Context, src ResourceInfo, cdst string) error {
	s.step("copy.resource")
	if src.IsCollection {
		if err := s.mkcolLocked(cdst); err != nil {
			return err
		}
	} else {
		sp, err := s.diskPath(src.Path)
		if err != nil {
			return err
		}
		f, err := os.Open(sp)
		if err != nil {
			return mapFSErr(err, src.Path)
		}
		dp, err := s.diskPath(cdst)
		if err != nil {
			f.Close()
			return err
		}
		_, err = s.putLocked(ctx, cdst, dp, f, src.ContentType, false)
		f.Close()
		if err != nil {
			return err
		}
	}
	props, err := s.propAllLocked(ctx, src.Path)
	if err != nil {
		return err
	}
	if len(props) == 0 {
		return nil
	}
	names := sortedPropNames(props)
	return s.withProps(ctx, cdst, true, func(h *dbm.Handle) error {
		for _, n := range names {
			if err := h.Put(propKey(n), props[n]); err != nil {
				return err
			}
		}
		return nil
	})
}

// PropPut implements Store.
func (s *FSStore) PropPut(ctx context.Context, p string, name xml.Name, value []byte) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if err := s.writeGate(); err != nil {
		return err
	}
	g, err := s.locks.Lock(ctx, cp)
	if err != nil {
		return err
	}
	defer g.Release()
	if _, err := s.stat(ctx, cp); err != nil {
		return err
	}
	return s.withProps(ctx, cp, true, func(h *dbm.Handle) error {
		return h.Put(propKey(name), value)
	})
}

// PropGet implements Store.
func (s *FSStore) PropGet(ctx context.Context, p string, name xml.Name) ([]byte, bool, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, false, err
	}
	g, err := s.locks.RLock(ctx, cp)
	if err != nil {
		return nil, false, err
	}
	defer g.Release()
	if _, err := s.stat(ctx, cp); err != nil {
		return nil, false, err
	}
	var val []byte
	var ok bool
	err = s.withProps(ctx, cp, false, func(h *dbm.Handle) error {
		var e error
		val, ok, e = h.Get(propKey(name))
		return e
	})
	return val, ok, err
}

// PropDelete implements Store.
func (s *FSStore) PropDelete(ctx context.Context, p string, name xml.Name) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if err := s.writeGate(); err != nil {
		return err
	}
	g, err := s.locks.Lock(ctx, cp)
	if err != nil {
		return err
	}
	defer g.Release()
	if _, err := s.stat(ctx, cp); err != nil {
		return err
	}
	return s.withProps(ctx, cp, false, func(h *dbm.Handle) error {
		_, err := h.Delete(propKey(name))
		return err
	})
}

// PropNames implements Store.
func (s *FSStore) PropNames(ctx context.Context, p string) ([]xml.Name, error) {
	all, err := s.PropAll(ctx, p)
	if err != nil {
		return nil, err
	}
	return sortedPropNames(all), nil
}

// PropAll implements Store.
func (s *FSStore) PropAll(ctx context.Context, p string) (map[xml.Name][]byte, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	g, err := s.locks.RLock(ctx, cp)
	if err != nil {
		return nil, err
	}
	defer g.Release()
	if _, err := s.stat(ctx, cp); err != nil {
		return nil, err
	}
	return s.propAllLocked(ctx, cp)
}

// propAllLocked reads every dead property under an already-held lock
// covering cp.
func (s *FSStore) propAllLocked(ctx context.Context, cp string) (map[xml.Name][]byte, error) {
	out := map[xml.Name][]byte{}
	err := s.withProps(ctx, cp, false, func(h *dbm.Handle) error {
		return h.ForEach(func(k, v []byte) error {
			if name, ok := parsePropKey(k); ok {
				out[name] = v
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DiskUsage sums the sizes of all regular files under dir — used by
// the migration experiment to compare storage footprints.
func DiskUsage(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			fi, err := d.Info()
			if err != nil {
				return err
			}
			total += fi.Size()
		}
		return nil
	})
	return total, err
}

// ContentHash returns the SHA-1 of a document's body, used by tests
// and the migration verifier.
func ContentHash(ctx context.Context, s Store, p string) (string, error) {
	rc, _, err := s.Get(ctx, p)
	if err != nil {
		return "", err
	}
	defer rc.Close()
	h := sha1.New()
	if _, err := io.Copy(h, rc); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
