package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestBeginCommitRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j := openT(t, path)

	seq1, err := j.Begin(Record{Op: OpPut, Path: "/a", Tmp: ".put-1", Gen: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := j.Begin(Record{Op: OpDelete, Path: "/b", IsDir: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq2 <= seq1 {
		t.Fatalf("sequence not increasing: %d then %d", seq1, seq2)
	}
	if err := j.Commit(seq1); err != nil {
		t.Fatal(err)
	}
	got := j.Pending()
	if len(got) != 1 || got[0].Seq != seq2 || got[0].Op != OpDelete || !got[0].IsDir {
		t.Fatalf("pending after commit = %+v", got)
	}
	j.Close()

	// Reopen: the uncommitted intent must survive, the committed one
	// must not.
	j2 := openT(t, path)
	got = j2.Pending()
	if len(got) != 1 || got[0].Path != "/b" {
		t.Fatalf("pending after reopen = %+v", got)
	}
	// New sequence numbers continue past the old ones.
	seq3, err := j2.Begin(Record{Op: OpMkcol, Path: "/c"})
	if err != nil {
		t.Fatal(err)
	}
	if seq3 <= seq2 {
		t.Fatalf("sequence regressed after reopen: %d then %d", seq2, seq3)
	}
}

func TestTornTailDiscardedAndTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j := openT(t, path)
	if _, err := j.Begin(Record{Op: OpPut, Path: "/keep"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-append: a partial line with no newline and a
	// broken CRC.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":9,"kind":"int`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openT(t, path)
	got := j2.Pending()
	if len(got) != 1 || got[0].Path != "/keep" {
		t.Fatalf("pending after torn tail = %+v", got)
	}
	// The tear must have been truncated away so later appends don't
	// concatenate onto garbage.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "deadbeef") {
		t.Fatalf("torn tail still present:\n%s", data)
	}
}

func TestCorruptMiddleLineStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j := openT(t, path)
	s1, _ := j.Begin(Record{Op: OpPut, Path: "/first"})
	_ = s1
	if _, err := j.Begin(Record{Op: OpPut, Path: "/second"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Flip a byte inside the first record's payload: replay must stop
	// there and drop everything after, never trusting records past a
	// corrupt one.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(string(data), "/first")
	data[idx+1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, path)
	if got := j2.Pending(); len(got) != 0 {
		t.Fatalf("pending after corrupt middle line = %+v", got)
	}
}

func TestRotationTruncatesIdleJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j := openT(t, path)
	for i := 0; i < rotateAfter; i++ {
		seq, err := j.Begin(Record{Op: OpMkcol, Path: "/x"})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Commit(seq); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("journal not rotated: %d bytes after %d committed ops", fi.Size(), rotateAfter)
	}
	// Sequence numbers keep rising across the rotation.
	seq, err := j.Begin(Record{Op: OpMkcol, Path: "/y"})
	if err != nil {
		t.Fatal(err)
	}
	if seq < rotateAfter {
		t.Fatalf("sequence reset by rotation: %d", seq)
	}
}

func TestRotationWaitsForPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j := openT(t, path)
	hold, err := j.Begin(Record{Op: OpPut, Path: "/held"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rotateAfter; i++ {
		seq, err := j.Begin(Record{Op: OpMkcol, Path: "/x"})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Commit(seq); err != nil {
			t.Fatal(err)
		}
	}
	if fi, _ := os.Stat(path); fi.Size() == 0 {
		t.Fatal("journal rotated away a pending intent")
	}
	if got := j.Pending(); len(got) != 1 || got[0].Seq != hold {
		t.Fatalf("pending = %+v, want the held intent", got)
	}
	if err := j.Commit(hold); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != 0 {
		t.Fatal("journal did not rotate once the held intent committed")
	}
}
