// Package journal implements the write-ahead intent journal behind
// FSStore's crash consistency. Before a multi-step mutation (PUT's
// stage-rename-props sequence, a tree DELETE, a MOVE's content+props
// rename pair, a COPY, a MKCOL) the store appends an intent record and
// fsyncs it; after the last step it appends a commit record. A crash
// therefore leaves at most one generation of unfinished work, and each
// unfinished intent carries enough context (operation, paths, staged
// temp-file name, pre-operation generation) for recovery to roll the
// operation forward to its post-state or back to its pre-state —
// never leaving a torn content/properties/generation combination.
//
// On-disk format: one record per line,
//
//	<crc32-hex8> <json>\n
//
// where the CRC covers the JSON bytes. The file is append-only between
// rotations. A torn tail — a partial last line from a crash mid-append
// — fails its CRC and is discarded (and truncated away on the next
// open); everything before it is trusted. Commit records are appended
// without an fsync of their own: recovery is idempotent, so replaying
// a completed-but-uncommitted intent converges to the same state, and
// the next intent's fsync makes earlier commits durable anyway.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Op names the journaled store operations.
type Op string

// The journaled multi-step operations.
const (
	OpPut    Op = "put"
	OpDelete Op = "delete"
	OpRename Op = "rename"
	OpCopy   Op = "copy"
	OpMkcol  Op = "mkcol"
)

// Record kinds.
const (
	kindIntent = "intent"
	kindCommit = "commit"
)

// Record is one journal entry. Intent records carry the operation
// context; commit records carry only the sequence number they resolve.
type Record struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	Op   Op     `json:"op,omitempty"`
	// Path is the canonical resource path the operation mutates (the
	// source for rename/copy).
	Path string `json:"path,omitempty"`
	// Dst is the destination path for rename/copy.
	Dst string `json:"dst,omitempty"`
	// Tmp is the base name of the staged temp file (put).
	Tmp string `json:"tmp,omitempty"`
	// IsDir records whether the resource is a collection (delete,
	// rename), fixing the recovery strategy.
	IsDir bool `json:"dir,omitempty"`
	// Created records that a put targets a path with no existing
	// document (no generation bump on roll-forward).
	Created bool `json:"created,omitempty"`
	// Gen is the pre-operation overwrite generation (put): after a
	// roll-forward the resource's generation must exceed it.
	Gen int64 `json:"gen,omitempty"`
	// CType is the explicit content type a put persists, if any.
	CType string `json:"ctype,omitempty"`
	// Recurse records a copy's depth (copy).
	Recurse bool `json:"recurse,omitempty"`
}

// ErrCorrupt is returned when a journal file fails validation beyond
// the tolerated torn tail.
var ErrCorrupt = errors.New("journal: corrupt journal file")

// rotateAfter is how many appended records a journal tolerates before
// an idle commit truncates the file back to empty.
const rotateAfter = 512

// Journal is an open intent journal. Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	lastSeq uint64
	pending map[uint64]Record
	order   []uint64 // pending seqs in append order
	appends int      // records since the last rotation
}

// Open opens (creating if needed) the journal at path and replays it:
// intents without a matching commit become the pending set. A torn
// final line is discarded and truncated away.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path, pending: map[uint64]Record{}}
	if err := j.load(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load replays the records, computing lastSeq and the pending set, and
// truncates a torn tail.
func (j *Journal) load() error {
	if _, err := j.f.Seek(0, 0); err != nil {
		return err
	}
	var good int64 // offset past the last fully valid line
	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		rec, ok := parseLine(line)
		if !ok {
			// Torn or corrupt line: trust nothing at or past it. A
			// tear can only be the in-flight append at crash time, so
			// at most one record is lost — and an intent is only acted
			// on once durable, so a lost record was never acted on.
			break
		}
		good += int64(len(line)) + 1
		j.appends++
		switch rec.Kind {
		case kindIntent:
			if _, dup := j.pending[rec.Seq]; !dup {
				j.pending[rec.Seq] = rec
				j.order = append(j.order, rec.Seq)
			}
		case kindCommit:
			if _, ok := j.pending[rec.Seq]; ok {
				delete(j.pending, rec.Seq)
				j.order = removeSeq(j.order, rec.Seq)
			}
		}
		if rec.Seq > j.lastSeq {
			j.lastSeq = rec.Seq
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return err
	}
	fi, err := j.f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() > good {
		if err := j.f.Truncate(good); err != nil {
			return fmt.Errorf("%w: truncating torn tail: %v", ErrCorrupt, err)
		}
	}
	_, err = j.f.Seek(0, 2)
	return err
}

func removeSeq(order []uint64, seq uint64) []uint64 {
	for i, s := range order {
		if s == seq {
			return append(order[:i], order[i+1:]...)
		}
	}
	return order
}

// parseLine decodes one "<crc8> <json>" line; ok=false marks a torn or
// corrupt record.
func parseLine(line string) (Record, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, false
	}
	want, err := strconv.ParseUint(line[:8], 16, 32)
	if err != nil {
		return Record{}, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE([]byte(payload)) != uint32(want) {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return Record{}, false
	}
	if rec.Kind != kindIntent && rec.Kind != kindCommit {
		return Record{}, false
	}
	return rec, true
}

// append writes one record line. Caller holds j.mu.
func (j *Journal) append(rec Record, sync bool) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	if _, err := j.f.WriteString(line); err != nil {
		return err
	}
	j.appends++
	if sync {
		return j.f.Sync()
	}
	return nil
}

// Begin appends rec as an intent and fsyncs it, returning the assigned
// sequence number. The caller must not start mutating until Begin
// returns: the intent has to be durable before the first step it
// describes.
func (j *Journal) Begin(rec Record) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lastSeq++
	rec.Seq = j.lastSeq
	rec.Kind = kindIntent
	if err := j.append(rec, true); err != nil {
		return 0, err
	}
	j.pending[rec.Seq] = rec
	j.order = append(j.order, rec.Seq)
	return rec.Seq, nil
}

// Commit appends the commit record for seq. When nothing is pending
// afterwards and the file has grown past the rotation threshold, the
// journal is truncated back to empty (sequence numbers keep rising).
func (j *Journal) Commit(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(Record{Seq: seq, Kind: kindCommit}, false); err != nil {
		return err
	}
	delete(j.pending, seq)
	j.order = removeSeq(j.order, seq)
	if len(j.pending) == 0 && j.appends >= rotateAfter {
		return j.resetLocked()
	}
	return nil
}

// Pending returns the unresolved intents in append order.
func (j *Journal) Pending() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, 0, len(j.order))
	for _, seq := range j.order {
		out = append(out, j.pending[seq])
	}
	return out
}

// Reset truncates the journal to empty, dropping every record. Call
// only after all pending intents are resolved (recovery does).
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.pending = map[uint64]Record{}
	j.order = nil
	return j.resetLocked()
}

// resetLocked truncates the backing file and fsyncs the truncation.
// Caller holds j.mu.
func (j *Journal) resetLocked() error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return err
	}
	j.appends = 0
	return j.f.Sync()
}

// Len reports how many intents are pending.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// Path returns the backing file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err1 := j.f.Sync()
	err2 := j.f.Close()
	j.f = nil
	if err1 != nil {
		return err1
	}
	return err2
}

// ReadPending parses the journal at path without opening it for
// writing and without truncating a torn tail — a pure read for
// inspection tools (fsck's check mode must not mutate the store). A
// missing journal yields no records. Torn or corrupt lines stop the
// replay exactly as Open would.
func ReadPending(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	pending := map[uint64]Record{}
	var order []uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		rec, ok := parseLine(sc.Text())
		if !ok {
			break
		}
		switch rec.Kind {
		case kindIntent:
			if _, dup := pending[rec.Seq]; !dup {
				pending[rec.Seq] = rec
				order = append(order, rec.Seq)
			}
		case kindCommit:
			if _, ok := pending[rec.Seq]; ok {
				delete(pending, rec.Seq)
				order = removeSeq(order, rec.Seq)
			}
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return nil, err
	}
	out := make([]Record, 0, len(order))
	for _, seq := range order {
		out = append(out, pending[seq])
	}
	return out, nil
}

// String renders a record compactly for logs and fsck reports.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %s %s", r.Seq, r.Kind, r.Op, r.Path)
	if r.Dst != "" {
		fmt.Fprintf(&b, " -> %s", r.Dst)
	}
	return b.String()
}
