// Package store defines the resource store behind the WebDAV server: a
// hierarchy of collections and documents, each of which may carry
// arbitrary dead properties.
//
// Two implementations are provided. FSStore reproduces the mod_dav
// layout the paper measured — documents are plain files, collections
// are directories, and each resource that has metadata gets its own
// DBM database file — so the raw data remains directly accessible to
// users, one of the paper's stated goals. MemStore keeps everything in
// memory for tests and micro-benchmarks.
//
// Every operation takes a context.Context as its first parameter, and
// the context means something at every layer: lock waits abort when it
// is done, long DBM scans checkpoint it, and multi-step filesystem
// operations stop between journal steps. A request that is abandoned
// (client disconnect, server deadline) therefore stops consuming the
// store instead of running to completion for nobody.
package store

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path"
	"sort"
	"strings"
	"time"
)

// Errors reported by store implementations.
var (
	ErrNotFound      = errors.New("store: resource not found")
	ErrExists        = errors.New("store: resource already exists")
	ErrNotCollection = errors.New("store: not a collection")
	ErrIsCollection  = errors.New("store: is a collection")
	ErrConflict      = errors.New("store: parent collection does not exist")
	ErrBadPath       = errors.New("store: invalid path")
	// ErrRecovering rejects mutations while crash recovery is still
	// resolving journal intents; the DAV layer maps it to 503 with a
	// Retry-After so clients back off and retry.
	ErrRecovering = errors.New("store: recovering after crash")
)

// ResourceInfo describes one resource.
type ResourceInfo struct {
	Path         string // canonical path, "/"-rooted
	IsCollection bool
	Size         int64
	ModTime      time.Time
	CreateTime   time.Time
	ContentType  string
	ETag         string
}

// Name returns the last path segment (the display name).
func (ri ResourceInfo) Name() string {
	if ri.Path == "/" {
		return "/"
	}
	return path.Base(ri.Path)
}

// Store is the persistence contract the DAV server runs against. All
// paths are canonical per CleanPath. Implementations must be safe for
// concurrent use.
//
// ctx carries the request scope: trace attribution, cancellation, and
// deadlines. Implementations abort early — without leaving partial
// state visible — when ctx is done; the error then wraps ctx.Err().
type Store interface {
	// Stat describes the resource at p.
	Stat(ctx context.Context, p string) (ResourceInfo, error)
	// List returns the members of the collection at p, sorted by path.
	List(ctx context.Context, p string) ([]ResourceInfo, error)
	// Mkcol creates a collection. The parent must exist (ErrConflict
	// otherwise); the path must be free (ErrExists otherwise).
	Mkcol(ctx context.Context, p string) error
	// Put creates or replaces the document at p with the contents of
	// r, recording contentType if non-empty. It reports whether the
	// document was newly created.
	Put(ctx context.Context, p string, r io.Reader, contentType string) (created bool, err error)
	// Get opens the document at p for reading.
	Get(ctx context.Context, p string) (io.ReadCloser, ResourceInfo, error)
	// Delete removes the resource at p and, if it is a collection, its
	// entire subtree, including all properties.
	Delete(ctx context.Context, p string) error

	// PropPut stores the encoded dead property value under name.
	PropPut(ctx context.Context, p string, name xml.Name, value []byte) error
	// PropGet retrieves a dead property value.
	PropGet(ctx context.Context, p string, name xml.Name) ([]byte, bool, error)
	// PropDelete removes a dead property; absent properties are not an
	// error (RFC 2518 treats removing a non-existent property as
	// success).
	PropDelete(ctx context.Context, p string, name xml.Name) error
	// PropNames lists the dead property names on the resource.
	PropNames(ctx context.Context, p string) ([]xml.Name, error)
	// PropAll returns every dead property on the resource.
	PropAll(ctx context.Context, p string) (map[xml.Name][]byte, error)

	// Close releases resources held by the store. Close is not
	// request-scoped and must run to completion; it takes no context.
	Close() error
}

// CleanPath canonicalizes a resource path: forces a leading slash,
// removes trailing slashes (except the root), resolves "." and "..",
// and rejects paths that escape the root or contain NUL bytes.
func CleanPath(p string) (string, error) {
	if strings.ContainsRune(p, 0) {
		return "", fmt.Errorf("%w: NUL in %q", ErrBadPath, p)
	}
	if p == "" {
		p = "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	cp := path.Clean(p)
	if cp != "/" && strings.HasSuffix(cp, "/") {
		cp = strings.TrimRight(cp, "/")
	}
	// path.Clean resolves "..", but a path like "/../x" cleans to
	// "/x"; that is acceptable (cannot escape). Reject any remaining
	// ".." (cannot occur after Clean on a rooted path, but keep the
	// guard for defense in depth).
	for _, seg := range strings.Split(cp, "/") {
		if seg == ".." {
			return "", fmt.Errorf("%w: %q escapes root", ErrBadPath, p)
		}
	}
	return cp, nil
}

// ParentPath returns the parent collection path of p ("/" for
// top-level resources and for the root itself).
func ParentPath(p string) string {
	if p == "/" {
		return "/"
	}
	dir := path.Dir(p)
	if dir == "." {
		return "/"
	}
	return dir
}

// IsAncestor reports whether a is a strict ancestor collection of p.
func IsAncestor(a, p string) bool {
	if a == p {
		return false
	}
	if a == "/" {
		return true
	}
	return strings.HasPrefix(p, a+"/")
}

// propKey encodes a property name as a DBM key. Keys are tagged with a
// leading 'P' to separate them from internal bookkeeping keys; XML
// names cannot contain NUL, so it is an unambiguous separator between
// namespace and local name.
func propKey(name xml.Name) []byte {
	return []byte("P" + name.Space + "\x00" + name.Local)
}

// internalKey names a store-internal DBM entry (content type,
// creation date, ...).
func internalKey(name string) []byte { return []byte("I" + name) }

// parsePropKey reverses propKey; non-property keys yield ok=false.
func parsePropKey(key []byte) (xml.Name, bool) {
	s := string(key)
	if !strings.HasPrefix(s, "P") {
		return xml.Name{}, false
	}
	s = s[1:]
	i := strings.IndexByte(s, 0)
	if i < 0 {
		return xml.Name{}, false
	}
	return xml.Name{Space: s[:i], Local: s[i+1:]}, true
}

// Walk visits p and, if it is a collection, every descendant.
// Collections are visited before their members (pre-order). If fn
// returns a non-nil error the walk stops and returns it. The walk
// checkpoints ctx between resources, so a deep traversal aborts
// promptly when the request is abandoned.
func Walk(ctx context.Context, s Store, p string, fn func(ResourceInfo) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ri, err := s.Stat(ctx, p)
	if err != nil {
		return err
	}
	if err := fn(ri); err != nil {
		return err
	}
	if !ri.IsCollection {
		return nil
	}
	members, err := s.List(ctx, p)
	if err != nil {
		return err
	}
	for _, m := range members {
		if err := Walk(ctx, s, m.Path, fn); err != nil {
			return err
		}
	}
	return nil
}

// CopyOptions controls CopyTree.
type CopyOptions struct {
	// Recurse copies collection members (Depth: infinity). When false
	// only the collection resource itself (and its properties) is
	// copied (Depth: 0).
	Recurse bool
}

// TreeCopier is an optional Store capability: perform CopyTree as one
// atomic operation — a single multi-path lock acquisition (shared on
// the source subtree, exclusive on the destination) held for the whole
// copy, so concurrent writers cannot mutate the source mid-copy and no
// reader observes a partially built destination. Both built-in stores
// implement it; CopyTree falls back to the non-atomic per-resource walk
// for stores that do not.
type TreeCopier interface {
	CopyTreeAtomic(ctx context.Context, src, dst string, opts CopyOptions) error
}

// ErrAtomicCopyUnsupported is returned by TreeCopier implementations
// (wrappers in particular) whose underlying store lacks the capability;
// CopyTree treats it as "use the generic path".
var ErrAtomicCopyUnsupported = errors.New("store: atomic copy not supported")

// CopyTree copies the resource at src to dst within one store,
// including dead properties, creating dst's resource type to match
// src. The destination must not already exist (the server resolves
// Overwrite by deleting first). Descendant failures abort the copy.
//
// Stores implementing TreeCopier make the copy atomic under one subtree
// lock. The generic fallback locks per store call, so on third-party
// stores a concurrent writer can interleave with the walk.
func CopyTree(ctx context.Context, s Store, src, dst string, opts CopyOptions) error {
	if src == dst || IsAncestor(src, dst) {
		return fmt.Errorf("%w: cannot copy %q into itself", ErrBadPath, src)
	}
	if tc, ok := s.(TreeCopier); ok {
		err := tc.CopyTreeAtomic(ctx, src, dst, opts)
		if !errors.Is(err, ErrAtomicCopyUnsupported) {
			return err
		}
	}
	return copyTreeGeneric(ctx, s, src, dst, opts)
}

// copyTreeGeneric is the per-resource fallback walk behind CopyTree.
// It checkpoints ctx before each resource so an abandoned COPY stops
// between resources instead of building the rest of the destination.
func copyTreeGeneric(ctx context.Context, s Store, src, dst string, opts CopyOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ri, err := s.Stat(ctx, src)
	if err != nil {
		return err
	}
	if err := copyResource(ctx, s, ri, dst); err != nil {
		return err
	}
	if !ri.IsCollection || !opts.Recurse {
		return nil
	}
	members, err := s.List(ctx, src)
	if err != nil {
		return err
	}
	for _, m := range members {
		rel := strings.TrimPrefix(m.Path, src)
		if err := copyTreeGeneric(ctx, s, m.Path, dst+rel, opts); err != nil {
			return err
		}
	}
	return nil
}

// copyResource copies a single resource (body + properties).
func copyResource(ctx context.Context, s Store, src ResourceInfo, dst string) error {
	if src.IsCollection {
		if err := s.Mkcol(ctx, dst); err != nil {
			return err
		}
	} else {
		rc, _, err := s.Get(ctx, src.Path)
		if err != nil {
			return err
		}
		_, err = s.Put(ctx, dst, rc, src.ContentType)
		rc.Close()
		if err != nil {
			return err
		}
	}
	props, err := s.PropAll(ctx, src.Path)
	if err != nil {
		return err
	}
	for _, n := range sortedPropNames(props) {
		if err := s.PropPut(ctx, dst, n, props[n]); err != nil {
			return err
		}
	}
	return nil
}

// sortedPropNames returns props' keys ordered by namespace then local
// name, so property iteration is deterministic.
func sortedPropNames(props map[xml.Name][]byte) []xml.Name {
	names := make([]xml.Name, 0, len(props))
	for n := range props {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i].Space != names[j].Space {
			return names[i].Space < names[j].Space
		}
		return names[i].Local < names[j].Local
	})
	return names
}

// ErrRenameUnsupported is returned by Renamer implementations (wrappers
// in particular) whose underlying store has no native rename; MoveTree
// treats it as "use the generic path" without logging.
var ErrRenameUnsupported = errors.New("store: rename not supported")

// MoveTree moves src to dst: a recursive copy followed by a recursive
// delete, which is the generic RFC 2518 semantics. Stores that can
// rename natively may implement the Renamer fast path.
//
// A native rename that fails with a store precondition error
// (ErrNotFound, ErrBadPath) propagates immediately — the copy+delete
// path would fail the same way, and retrying it would only bury the
// real error. Context errors also propagate: the caller abandoned the
// request, so falling back to an expensive copy+delete would be exactly
// the wasted work cancellation exists to avoid. Any other failure
// (cross-device rename, permissions, ...) is logged via slog and falls
// back to copy+delete, so a degraded MOVE is visible in the logs
// instead of silently slow.
func MoveTree(ctx context.Context, s Store, src, dst string) error {
	if r, ok := s.(Renamer); ok {
		err := r.Rename(ctx, src, dst)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrNotFound), errors.Is(err, ErrBadPath),
			errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return err
		case errors.Is(err, ErrRenameUnsupported):
			// No native rename behind the wrapper; nothing noteworthy.
		default:
			slog.Warn("store: native rename failed; falling back to copy+delete",
				"src", src, "dst", dst, "err", err)
		}
	}
	if err := CopyTree(ctx, s, src, dst, CopyOptions{Recurse: true}); err != nil {
		return err
	}
	return s.Delete(ctx, src)
}

// Renamer is an optional Store fast path for MOVE.
type Renamer interface {
	Rename(ctx context.Context, src, dst string) error
}

// MemberProps couples one resource's metadata with its dead properties,
// as returned by the batched read path.
type MemberProps struct {
	Info ResourceInfo
	// Props maps property names to their stored encodings; empty (or
	// nil) when the resource carries no dead properties.
	Props map[xml.Name][]byte
}

// BatchReader is an optional Store fast path: resolve a resource (or a
// collection's members) together with all dead properties in one locked
// pass. The PROPFIND handler uses it so a Depth:1 listing over N
// members costs one traversal through cached database handles instead
// of N+1 independent lookups, each reopening its database. Both
// built-in stores implement it; StatWithProps/ListWithProps fall back
// to the narrow interface for stores that do not.
type BatchReader interface {
	// StatWithProps is Stat plus PropAll under one resource lock.
	StatWithProps(ctx context.Context, p string) (ResourceInfo, map[xml.Name][]byte, error)
	// ListWithProps is List plus each member's PropAll under one
	// collection lock, sorted by path.
	ListWithProps(ctx context.Context, p string) ([]MemberProps, error)
}

// StatWithProps resolves p's metadata and dead properties, using the
// store's batched path when it has one.
func StatWithProps(ctx context.Context, s Store, p string) (ResourceInfo, map[xml.Name][]byte, error) {
	if br, ok := s.(BatchReader); ok {
		return br.StatWithProps(ctx, p)
	}
	ri, err := s.Stat(ctx, p)
	if err != nil {
		return ResourceInfo{}, nil, err
	}
	props, err := s.PropAll(ctx, p)
	if err != nil {
		return ResourceInfo{}, nil, err
	}
	return ri, props, nil
}

// ListWithProps resolves the members of the collection at p together
// with their dead properties, using the store's batched path when it
// has one.
func ListWithProps(ctx context.Context, s Store, p string) ([]MemberProps, error) {
	if br, ok := s.(BatchReader); ok {
		return br.ListWithProps(ctx, p)
	}
	members, err := s.List(ctx, p)
	if err != nil {
		return nil, err
	}
	out := make([]MemberProps, 0, len(members))
	for _, m := range members {
		props, err := s.PropAll(ctx, m.Path)
		if err != nil {
			return nil, err
		}
		out = append(out, MemberProps{Info: m, Props: props})
	}
	return out, nil
}

// WalkWithProps visits p and, if it is a collection, every descendant,
// pre-order, handing each visit the resource's dead properties as well.
// Collections are resolved through the batched list path, so a deep
// walk costs one pass per collection rather than one per resource. The
// walk checkpoints ctx between collections.
func WalkWithProps(ctx context.Context, s Store, p string, fn func(MemberProps) error) error {
	ri, props, err := StatWithProps(ctx, s, p)
	if err != nil {
		return err
	}
	return walkWithProps(ctx, s, MemberProps{Info: ri, Props: props}, fn)
}

func walkWithProps(ctx context.Context, s Store, mp MemberProps, fn func(MemberProps) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := fn(mp); err != nil {
		return err
	}
	if !mp.Info.IsCollection {
		return nil
	}
	members, err := ListWithProps(ctx, s, mp.Info.Path)
	if err != nil {
		return err
	}
	for _, m := range members {
		if err := walkWithProps(ctx, s, m, fn); err != nil {
			return err
		}
	}
	return nil
}
