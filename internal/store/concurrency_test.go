package store

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/dbm"
	"repro/internal/store/pathlock"
)

// seedTree builds a small hierarchy with dead properties on some
// resources.
func seedTree(t *testing.T, s Store) {
	t.Helper()
	mustMkcol(t, s, "/proj")
	mustMkcol(t, s, "/proj/calc")
	mustPut(t, s, "/proj/calc/input.dat", "coords")
	mustPut(t, s, "/proj/calc/output.log", "energy")
	mustPut(t, s, "/proj/readme.txt", "hello")
	for _, p := range []string{"/proj/calc/input.dat", "/proj/readme.txt", "/proj/calc"} {
		if err := s.PropPut(context.Background(), p, xml.Name{Space: "ecce:", Local: "state"}, []byte("<v>ok</v>")); err != nil {
			t.Fatalf("PropPut %s: %v", p, err)
		}
	}
}

// TestBatchReadsMatchNarrowReads checks that the batched BatchReader
// path returns exactly what the narrow Stat/List/PropAll composition
// would.
func TestBatchReadsMatchNarrowReads(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		seedTree(t, s)
		for _, p := range []string{"/", "/proj", "/proj/calc", "/proj/calc/input.dat"} {
			ri, props, err := StatWithProps(context.Background(), s, p)
			if err != nil {
				t.Fatalf("StatWithProps %s: %v", p, err)
			}
			wantRI, err := s.Stat(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ri, wantRI) {
				t.Fatalf("StatWithProps info mismatch at %s:\n got %+v\nwant %+v", p, ri, wantRI)
			}
			wantProps, err := s.PropAll(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if len(props) != len(wantProps) {
				t.Fatalf("StatWithProps props mismatch at %s: got %v want %v", p, props, wantProps)
			}
			for n, v := range wantProps {
				if string(props[n]) != string(v) {
					t.Fatalf("prop %v at %s: got %q want %q", n, p, props[n], v)
				}
			}
		}
		for _, p := range []string{"/", "/proj", "/proj/calc"} {
			members, err := ListWithProps(context.Background(), s, p)
			if err != nil {
				t.Fatalf("ListWithProps %s: %v", p, err)
			}
			want, err := s.List(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if len(members) != len(want) {
				t.Fatalf("ListWithProps %s: %d members, List says %d", p, len(members), len(want))
			}
			for i, m := range members {
				if !reflect.DeepEqual(m.Info, want[i]) {
					t.Fatalf("member %d info mismatch at %s:\n got %+v\nwant %+v", i, p, m.Info, want[i])
				}
				wantProps, err := s.PropAll(context.Background(), m.Info.Path)
				if err != nil {
					t.Fatal(err)
				}
				if len(m.Props) != len(wantProps) {
					t.Fatalf("member %s props: got %v want %v", m.Info.Path, m.Props, wantProps)
				}
			}
		}
		if _, err := ListWithProps(context.Background(), s, "/proj/readme.txt"); !errors.Is(err, ErrNotCollection) {
			t.Fatalf("ListWithProps on a document: err = %v, want ErrNotCollection", err)
		}
		if _, _, err := StatWithProps(context.Background(), s, "/nope"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("StatWithProps on missing: err = %v, want ErrNotFound", err)
		}
	})
}

// TestETagDistinguishesSameSizeOverwrite is the regression test for the
// strengthened document ETag: overwriting a document with same-size
// content must change the ETag even when the mtime granularity cannot
// tell the two writes apart.
func TestETagDistinguishesSameSizeOverwrite(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		mustPut(t, s, "/doc.txt", "aaaa")
		before, err := s.Stat(context.Background(), "/doc.txt")
		if err != nil {
			t.Fatal(err)
		}
		mustPut(t, s, "/doc.txt", "bbbb") // same size
		after, err := s.Stat(context.Background(), "/doc.txt")
		if err != nil {
			t.Fatal(err)
		}
		if before.ETag == after.ETag {
			t.Fatalf("same-size overwrite kept ETag %s", before.ETag)
		}
		mustPut(t, s, "/doc.txt", "cccc")
		third, err := s.Stat(context.Background(), "/doc.txt")
		if err != nil {
			t.Fatal(err)
		}
		if third.ETag == after.ETag || third.ETag == before.ETag {
			t.Fatalf("third write reused an earlier ETag: %s vs %s/%s",
				third.ETag, after.ETag, before.ETag)
		}
	})
}

// TestGenerationLazyMaterialization checks that the ETag generation
// counter does not materialize a property database on first PUT — the
// paper's disk-overhead experiment depends on databases existing only
// for resources that carry metadata.
func TestGenerationLazyMaterialization(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, "/plain.txt", "v1")
	// The root metadata directory exists for the intent journal, but a
	// first PUT must not materialize a property database.
	if _, err := os.Stat(filepath.Join(dir, propDirName, "plain.txt"+propsExt)); !os.IsNotExist(err) {
		t.Fatalf("first PUT materialized a property database (err=%v)", err)
	}
	mustPut(t, s, "/plain.txt", "v2")
	pp := filepath.Join(dir, propDirName, "plain.txt"+propsExt)
	if _, err := os.Stat(pp); err != nil {
		t.Fatalf("overwrite did not persist the generation: %v", err)
	}
	ri, err := s.Stat(context.Background(), "/plain.txt")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(ri.ETag, "-") != 2 {
		t.Fatalf("overwritten document ETag %s lacks the generation field", ri.ETag)
	}
}

// TestFSStoreListWithPropsOpensEachDBOnce is the acceptance check for
// the handle cache: resolving a Depth:1 listing must cost at most one
// database open per distinct property database, and a second resolution
// of the same listing must be served entirely from cache.
func TestFSStoreListWithPropsOpensEachDBOnce(t *testing.T) {
	s, err := NewFSStore(t.TempDir(), dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustMkcol(t, s, "/d")
	const n = 8
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/d/f%d.dat", i)
		mustPut(t, s, p, "body")
		if err := s.PropPut(context.Background(), p, xml.Name{Space: "ns:", Local: "k"}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Drop everything cached by the setup writes to isolate the reads.
	s.HandleCache().Close()
	base := s.CacheStats()

	if _, err := ListWithProps(context.Background(), s, "/d"); err != nil {
		t.Fatal(err)
	}
	after := s.CacheStats()
	if opens := after.Misses - base.Misses; opens != n {
		t.Fatalf("first listing opened %d databases, want %d (one per member)", opens, n)
	}

	if _, err := ListWithProps(context.Background(), s, "/d"); err != nil {
		t.Fatal(err)
	}
	final := s.CacheStats()
	if final.Misses != after.Misses {
		t.Fatalf("second listing reopened databases: misses %d -> %d", after.Misses, final.Misses)
	}
	if final.Hits <= after.Hits {
		t.Fatal("second listing recorded no cache hits")
	}
}

// TestFSStoreRenameInvalidatesCachedHandles ensures cached property
// databases follow a directory rename instead of pinning the old
// files.
func TestFSStoreRenameInvalidatesCachedHandles(t *testing.T) {
	s, err := NewFSStore(t.TempDir(), dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustMkcol(t, s, "/old")
	mustPut(t, s, "/old/f.dat", "body")
	name := xml.Name{Space: "ns:", Local: "k"}
	if err := s.PropPut(context.Background(), "/old/f.dat", name, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.PropGet(context.Background(), "/old/f.dat", name); err != nil {
		t.Fatal(err) // warm the cache
	}
	if err := s.Rename(context.Background(), "/old", "/new"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.PropGet(context.Background(), "/new/f.dat", name)
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("prop after rename: %q, %v, %v", v, ok, err)
	}
	if err := s.PropPut(context.Background(), "/new/f.dat", name, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat(context.Background(), "/old/f.dat"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("old path still visible: %v", err)
	}
}

// failingRenamer wraps MemStore with a Rename that always fails with a
// configurable error.
type failingRenamer struct {
	Store
	err   error
	calls int
}

func (f *failingRenamer) Rename(ctx context.Context, src, dst string) error {
	f.calls++
	return f.err
}

// TestMoveTreePropagatesPreconditionErrors locks in the Renamer
// fallback contract: precondition errors surface immediately, other
// failures degrade to copy+delete.
func TestMoveTreePropagatesPreconditionErrors(t *testing.T) {
	for _, sentinel := range []error{ErrNotFound, ErrBadPath} {
		s := &failingRenamer{Store: NewMemStore(), err: fmt.Errorf("wrap: %w", sentinel)}
		mustPut(t, s, "/a.txt", "x")
		if err := MoveTree(context.Background(), s, "/a.txt", "/b.txt"); !errors.Is(err, sentinel) {
			t.Fatalf("MoveTree with rename failing %v returned %v, want the sentinel", sentinel, err)
		}
		if _, err := s.Stat(context.Background(), "/a.txt"); err != nil {
			t.Fatalf("failed precondition move must not have fallen back: %v", err)
		}
	}
	// A non-precondition failure (e.g. EXDEV) falls back and succeeds.
	s := &failingRenamer{Store: NewMemStore(), err: errors.New("rename: cross-device link")}
	mustPut(t, s, "/a.txt", "x")
	if err := MoveTree(context.Background(), s, "/a.txt", "/b.txt"); err != nil {
		t.Fatalf("MoveTree fallback failed: %v", err)
	}
	if s.calls != 1 {
		t.Fatalf("rename attempted %d times, want 1", s.calls)
	}
	if got := readBody(t, s, "/b.txt"); got != "x" {
		t.Fatalf("fallback move lost the body: %q", got)
	}
	if _, err := s.Stat(context.Background(), "/a.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fallback move left the source: %v", err)
	}
}

// TestCopyTreeAtomicSnapshot checks that a Depth:infinity COPY through
// the TreeCopier fast path is a consistent snapshot: a Put racing with
// the copy must wait for the copy's subtree-shared lock, so the
// destination always reflects the pre-copy contents. The assertion
// holds in every legal interleaving (the writer either runs strictly
// before or strictly after the copy); only a per-resource-locking
// regression can make the new value leak into the destination.
func TestCopyTreeAtomicSnapshot(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		ls, ok := s.(interface{ LockStats() pathlock.Stats })
		if !ok {
			t.Fatalf("%T does not expose LockStats", s)
		}
		if _, ok := s.(TreeCopier); !ok {
			t.Fatalf("%T does not implement TreeCopier", s)
		}
		mustMkcol(t, s, "/src")
		mustMkcol(t, s, "/src/sub")
		// Enough members that the copy has real work to do before it
		// reaches the last-sorting document the writer targets.
		for i := 0; i < 40; i++ {
			mustPut(t, s, fmt.Sprintf("/src/f%02d.dat", i), "v1")
			mustPut(t, s, fmt.Sprintf("/src/sub/g%02d.dat", i), "v1")
		}
		mustPut(t, s, "/src/zz-last.dat", "v1")

		if held := ls.LockStats().Held; held != 0 {
			t.Fatalf("baseline held guards = %d, want 0", held)
		}
		done := make(chan error, 1)
		go func() {
			done <- CopyTree(context.Background(), s, "/src", "/dst", CopyOptions{Recurse: true})
		}()
		// Wait until the copy holds its guard (or has already finished)
		// so the racing write overlaps the copy as often as possible.
		for ls.LockStats().Held == 0 {
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("CopyTree: %v", err)
				}
				done <- nil // re-arm for the drain below
			default:
			}
			if len(done) == 1 {
				break
			}
		}
		// This Put must block until the copy releases the shared lock on
		// the /src subtree; it can never interleave mid-copy.
		mustPut(t, s, "/src/zz-last.dat", "v2")
		if err := <-done; err != nil {
			t.Fatalf("CopyTree: %v", err)
		}
		if got := readBody(t, s, "/dst/zz-last.dat"); got != "v1" {
			t.Fatalf("destination saw mid-copy write: %q, want pre-copy %q", got, "v1")
		}
		if got := readBody(t, s, "/src/zz-last.dat"); got != "v2" {
			t.Fatalf("source lost the racing write: %q", got)
		}
		if got := readBody(t, s, "/dst/sub/g07.dat"); got != "v1" {
			t.Fatalf("nested member not copied: %q", got)
		}
	})
}

// TestMixedOperationStress hammers both stores with a concurrent mix of
// reads, writes, property updates, moves and deletes across sibling and
// nested subtrees. Run with -race; correctness here is "no data race,
// no deadlock, no structural corruption".
func TestMixedOperationStress(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		const workers = 8
		const iters = 60
		for w := 0; w < workers; w++ {
			mustMkcol(t, s, fmt.Sprintf("/w%d", w))
			mustMkcol(t, s, fmt.Sprintf("/w%d/deep", w))
		}
		mustMkcol(t, s, "/shared")
		name := xml.Name{Space: "ns:", Local: "k"}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				home := fmt.Sprintf("/w%d", w)
				for i := 0; i < iters; i++ {
					doc := fmt.Sprintf("%s/deep/f%d.dat", home, i%4)
					if _, err := s.Put(context.Background(), doc, strings.NewReader("body"), ""); err != nil {
						t.Errorf("Put %s: %v", doc, err)
						return
					}
					if err := s.PropPut(context.Background(), doc, name, []byte(fmt.Sprintf("v%d", i))); err != nil {
						t.Errorf("PropPut %s: %v", doc, err)
						return
					}
					// Cross-tree reads: list a sibling worker's subtree
					// and the shared root while it is being mutated.
					other := fmt.Sprintf("/w%d/deep", (w+1)%workers)
					if _, err := ListWithProps(context.Background(), s, other); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("ListWithProps %s: %v", other, err)
						return
					}
					if _, err := s.List(context.Background(), "/"); err != nil {
						t.Errorf("List /: %v", err)
						return
					}
					// Shared collection churn: put, stat, delete.
					shared := fmt.Sprintf("/shared/w%d-%d.dat", w, i%2)
					if _, err := s.Put(context.Background(), shared, strings.NewReader("s"), ""); err != nil {
						t.Errorf("Put %s: %v", shared, err)
						return
					}
					if i%5 == 0 {
						if err := s.Delete(context.Background(), shared); err != nil && !errors.Is(err, ErrNotFound) {
							t.Errorf("Delete %s: %v", shared, err)
							return
						}
					}
					// Periodic subtree move within the worker's own tree
					// (always disjoint from other workers' moves).
					if i%10 == 9 {
						src, dst := home+"/deep", home+"/moved"
						if err := MoveTree(context.Background(), s, src, dst); err != nil {
							t.Errorf("MoveTree %s -> %s: %v", src, dst, err)
							return
						}
						if err := MoveTree(context.Background(), s, dst, src); err != nil {
							t.Errorf("MoveTree %s -> %s: %v", dst, src, err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		// Structural sanity after the storm.
		for w := 0; w < workers; w++ {
			deep := fmt.Sprintf("/w%d/deep", w)
			members, err := ListWithProps(context.Background(), s, deep)
			if err != nil {
				t.Fatalf("post-stress ListWithProps %s: %v", deep, err)
			}
			for _, m := range members {
				if got := readBody(t, s, m.Info.Path); got != "body" {
					t.Fatalf("corrupt body at %s: %q", m.Info.Path, got)
				}
				if v, ok := m.Props[name]; !ok || !strings.HasPrefix(string(v), "v") {
					t.Fatalf("lost property at %s: %q %v", m.Info.Path, v, ok)
				}
			}
		}
	})
}
