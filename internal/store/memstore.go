package store

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/store/pathlock"
)

// MemStore is an in-memory Store used by tests and micro-benchmarks
// that want to exclude filesystem noise.
//
// Concurrency mirrors FSStore: logical isolation comes from the shared
// hierarchical path-lock manager (readers of one resource proceed
// together, disjoint subtrees never interact, an exclusive collection
// lock covers its subtree), while a short internal mutex only guards
// the physical map structure during each already-locked operation.
// Cancellation is honoured at the lock layer: a caller whose context
// is done before its path lock is granted gets ctx.Err() and never
// touches the map.
type MemStore struct {
	state *memState
}

// memState is the shared backing of a MemStore.
type memState struct {
	locks *pathlock.Manager
	mu    sync.Mutex // guards res and resource contents
	res   map[string]*memResource
	now   func() time.Time
}

type memResource struct {
	isCollection bool
	data         []byte
	contentType  string
	props        map[xml.Name][]byte
	modTime      time.Time
	createTime   time.Time
	version      int64 // bumped on body change, feeds the ETag
}

var _ Store = (*MemStore)(nil)
var _ BatchReader = (*MemStore)(nil)
var _ TreeCopier = (*MemStore)(nil)

// NewMemStore returns an empty store containing only the root
// collection.
func NewMemStore() *MemStore {
	st := &memState{
		locks: pathlock.NewManager(),
		res:   map[string]*memResource{},
		now:   time.Now,
	}
	st.res["/"] = &memResource{isCollection: true, props: map[xml.Name][]byte{},
		modTime: st.now(), createTime: st.now()}
	return &MemStore{state: st}
}

// SetClock substitutes the time source (tests).
func (s *MemStore) SetClock(now func() time.Time) { s.state.now = now }

// LockStats snapshots the hierarchical path-lock counters.
func (s *MemStore) LockStats() pathlock.Stats { return s.state.locks.Stats() }

// PathLocks exposes the lock manager (tests, metrics wiring).
func (s *MemStore) PathLocks() *pathlock.Manager { return s.state.locks }

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// infoFor builds a ResourceInfo snapshot. Caller holds state.mu.
func (s *MemStore) infoFor(p string, r *memResource) ResourceInfo {
	ri := ResourceInfo{
		Path:         p,
		IsCollection: r.isCollection,
		ModTime:      r.modTime,
		CreateTime:   r.createTime,
	}
	if !r.isCollection {
		ri.Size = int64(len(r.data))
		ri.ContentType = r.contentType
		if ri.ContentType == "" {
			ri.ContentType = "application/octet-stream"
		}
		ri.ETag = fmt.Sprintf(`"%x-%x"`, len(r.data), r.version)
	}
	return ri
}

// Stat implements Store.
func (s *MemStore) Stat(ctx context.Context, p string) (ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return ResourceInfo{}, err
	}
	g, err := s.state.locks.RLock(ctx, cp)
	if err != nil {
		return ResourceInfo{}, err
	}
	defer g.Release()
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	r, ok := s.state.res[cp]
	if !ok {
		return ResourceInfo{}, fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	return s.infoFor(cp, r), nil
}

// list returns the sorted member snapshot of cp. Caller holds the path
// lock; list takes state.mu itself. With withProps set each member's
// property map is copied in the same pass.
func (s *MemStore) list(cp string, withProps bool) ([]MemberProps, error) {
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	r, ok := s.state.res[cp]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	if !r.isCollection {
		return nil, fmt.Errorf("%w: %s", ErrNotCollection, cp)
	}
	prefix := cp
	if prefix != "/" {
		prefix += "/"
	}
	var out []MemberProps
	for q, qr := range s.state.res {
		if q == cp || !strings.HasPrefix(q, prefix) {
			continue
		}
		if strings.Contains(q[len(prefix):], "/") {
			continue // grandchild
		}
		mp := MemberProps{Info: s.infoFor(q, qr)}
		if withProps {
			mp.Props = copyProps(qr.props)
		}
		out = append(out, mp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.Path < out[j].Info.Path })
	return out, nil
}

func copyProps(props map[xml.Name][]byte) map[xml.Name][]byte {
	out := make(map[xml.Name][]byte, len(props))
	for n, v := range props {
		out[n] = append([]byte(nil), v...)
	}
	return out
}

// List implements Store.
func (s *MemStore) List(ctx context.Context, p string) ([]ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	g, err := s.state.locks.RLock(ctx, cp)
	if err != nil {
		return nil, err
	}
	defer g.Release()
	members, err := s.list(cp, false)
	if err != nil {
		return nil, err
	}
	out := make([]ResourceInfo, len(members))
	for i, m := range members {
		out[i] = m.Info
	}
	return out, nil
}

// StatWithProps implements BatchReader.
func (s *MemStore) StatWithProps(ctx context.Context, p string) (ResourceInfo, map[xml.Name][]byte, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return ResourceInfo{}, nil, err
	}
	g, err := s.state.locks.RLock(ctx, cp)
	if err != nil {
		return ResourceInfo{}, nil, err
	}
	defer g.Release()
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	r, ok := s.state.res[cp]
	if !ok {
		return ResourceInfo{}, nil, fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	return s.infoFor(cp, r), copyProps(r.props), nil
}

// ListWithProps implements BatchReader.
func (s *MemStore) ListWithProps(ctx context.Context, p string) ([]MemberProps, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	g, err := s.state.locks.RLock(ctx, cp)
	if err != nil {
		return nil, err
	}
	defer g.Release()
	return s.list(cp, true)
}

// parentOK reports whether p's parent exists and is a collection.
// Caller holds state.mu.
func (s *MemStore) parentOK(p string) bool {
	parent, ok := s.state.res[ParentPath(p)]
	return ok && parent.isCollection
}

// Mkcol implements Store.
func (s *MemStore) Mkcol(ctx context.Context, p string) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("%w: /", ErrExists)
	}
	g, err := s.state.locks.Lock(ctx, cp)
	if err != nil {
		return err
	}
	defer g.Release()
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	if _, ok := s.state.res[cp]; ok {
		return fmt.Errorf("%w: %s", ErrExists, cp)
	}
	if !s.parentOK(cp) {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	now := s.state.now()
	s.state.res[cp] = &memResource{isCollection: true, props: map[xml.Name][]byte{},
		modTime: now, createTime: now}
	return nil
}

// Put implements Store.
func (s *MemStore) Put(ctx context.Context, p string, r io.Reader, contentType string) (bool, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return false, err
	}
	if cp == "/" {
		return false, fmt.Errorf("%w: cannot PUT to /", ErrIsCollection)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return false, err
	}
	g, err := s.state.locks.Lock(ctx, cp)
	if err != nil {
		return false, err
	}
	defer g.Release()
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	existing, ok := s.state.res[cp]
	if ok && existing.isCollection {
		return false, fmt.Errorf("%w: %s", ErrIsCollection, cp)
	}
	if !s.parentOK(cp) {
		return false, fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	now := s.state.now()
	if ok {
		existing.data = data
		existing.modTime = now
		existing.version++
		if contentType != "" {
			existing.contentType = contentType
		}
		return false, nil
	}
	s.state.res[cp] = &memResource{data: data, contentType: contentType,
		props: map[xml.Name][]byte{}, modTime: now, createTime: now}
	return true, nil
}

// Get implements Store.
func (s *MemStore) Get(ctx context.Context, p string) (io.ReadCloser, ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	g, err := s.state.locks.RLock(ctx, cp)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	defer g.Release()
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	r, ok := s.state.res[cp]
	if !ok {
		return nil, ResourceInfo{}, fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	if r.isCollection {
		return nil, ResourceInfo{}, fmt.Errorf("%w: %s", ErrIsCollection, cp)
	}
	return io.NopCloser(bytes.NewReader(r.data)), s.infoFor(cp, r), nil
}

// Delete implements Store. The exclusive path lock covers the subtree,
// so the prefix sweep below cannot race any descendant operation.
func (s *MemStore) Delete(ctx context.Context, p string) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("%w: cannot delete /", ErrBadPath)
	}
	g, err := s.state.locks.Lock(ctx, cp)
	if err != nil {
		return err
	}
	defer g.Release()
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	r, ok := s.state.res[cp]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	delete(s.state.res, cp)
	if r.isCollection {
		prefix := cp + "/"
		for q := range s.state.res {
			if strings.HasPrefix(q, prefix) {
				delete(s.state.res, q)
			}
		}
	}
	return nil
}

// CopyTreeAtomic implements TreeCopier: the whole copy runs under one
// multi-path acquisition — Shared on the source subtree, Exclusive on
// the destination — plus the map mutex, so it is a consistent snapshot
// of the source and appears at the destination all at once.
func (s *MemStore) CopyTreeAtomic(ctx context.Context, src, dst string, opts CopyOptions) error {
	csrc, err := CleanPath(src)
	if err != nil {
		return err
	}
	cdst, err := CleanPath(dst)
	if err != nil {
		return err
	}
	if csrc == cdst || IsAncestor(csrc, cdst) {
		return fmt.Errorf("%w: cannot copy %q into itself", ErrBadPath, csrc)
	}
	g, err := s.state.locks.Acquire(ctx,
		pathlock.Req{Path: csrc, Mode: pathlock.Shared},
		pathlock.Req{Path: cdst, Mode: pathlock.Exclusive})
	if err != nil {
		return err
	}
	defer g.Release()
	s.state.mu.Lock()
	defer s.state.mu.Unlock()

	r, ok := s.state.res[csrc]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, csrc)
	}
	now := s.state.now()
	if err := s.copyResLocked(r, cdst, now); err != nil {
		return err
	}
	if !r.isCollection || !opts.Recurse {
		return nil
	}
	// Snapshot the member paths before inserting destinations, sorted so
	// parents are created before their children.
	prefix := csrc + "/"
	var members []string
	for q := range s.state.res {
		if strings.HasPrefix(q, prefix) {
			members = append(members, q)
		}
	}
	sort.Strings(members)
	for _, q := range members {
		if err := s.copyResLocked(s.state.res[q], cdst+q[len(csrc):], now); err != nil {
			return err
		}
	}
	return nil
}

// copyResLocked clones one resource to cdst, mirroring the generic
// copyResource (Mkcol/Put plus property sets). Caller holds the path
// locks and state.mu.
func (s *MemStore) copyResLocked(r *memResource, cdst string, now time.Time) error {
	if !s.parentOK(cdst) {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cdst))
	}
	existing, ok := s.state.res[cdst]
	if r.isCollection {
		if ok {
			return fmt.Errorf("%w: %s", ErrExists, cdst)
		}
		s.state.res[cdst] = &memResource{isCollection: true, props: copyProps(r.props),
			modTime: now, createTime: now}
		return nil
	}
	if ok {
		if existing.isCollection {
			return fmt.Errorf("%w: %s", ErrIsCollection, cdst)
		}
		// Overwrite like Put would: new body, bumped version, merged
		// properties.
		existing.data = append([]byte(nil), r.data...)
		existing.modTime = now
		existing.version++
		if r.contentType != "" {
			existing.contentType = r.contentType
		}
		for n, v := range r.props {
			existing.props[n] = append([]byte(nil), v...)
		}
		return nil
	}
	s.state.res[cdst] = &memResource{data: append([]byte(nil), r.data...),
		contentType: r.contentType, props: copyProps(r.props),
		modTime: now, createTime: now}
	return nil
}

// withResource looks up a resource under the appropriate path lock plus
// the map mutex.
func (s *MemStore) withResource(ctx context.Context, p string, write bool, fn func(*memResource) error) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	var g *pathlock.Guard
	if write {
		g, err = s.state.locks.Lock(ctx, cp)
	} else {
		g, err = s.state.locks.RLock(ctx, cp)
	}
	if err != nil {
		return err
	}
	defer g.Release()
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	r, ok := s.state.res[cp]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	return fn(r)
}

// PropPut implements Store.
func (s *MemStore) PropPut(ctx context.Context, p string, name xml.Name, value []byte) error {
	return s.withResource(ctx, p, true, func(r *memResource) error {
		r.props[name] = append([]byte(nil), value...)
		return nil
	})
}

// PropGet implements Store.
func (s *MemStore) PropGet(ctx context.Context, p string, name xml.Name) ([]byte, bool, error) {
	var val []byte
	var ok bool
	err := s.withResource(ctx, p, false, func(r *memResource) error {
		v, present := r.props[name]
		if present {
			val = append([]byte(nil), v...)
			ok = true
		}
		return nil
	})
	return val, ok, err
}

// PropDelete implements Store.
func (s *MemStore) PropDelete(ctx context.Context, p string, name xml.Name) error {
	return s.withResource(ctx, p, true, func(r *memResource) error {
		delete(r.props, name)
		return nil
	})
}

// PropNames implements Store.
func (s *MemStore) PropNames(ctx context.Context, p string) ([]xml.Name, error) {
	var names []xml.Name
	err := s.withResource(ctx, p, false, func(r *memResource) error {
		names = sortedPropNames(r.props)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return names, nil
}

// PropAll implements Store.
func (s *MemStore) PropAll(ctx context.Context, p string) (map[xml.Name][]byte, error) {
	var out map[xml.Name][]byte
	err := s.withResource(ctx, p, false, func(r *memResource) error {
		out = copyProps(r.props)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Len returns the number of resources (root included), for tests.
func (s *MemStore) Len() int {
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	return len(s.state.res)
}
