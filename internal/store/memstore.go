package store

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// MemStore is an in-memory Store used by tests and micro-benchmarks
// that want to exclude filesystem noise.
type MemStore struct {
	mu  sync.RWMutex
	res map[string]*memResource
	now func() time.Time
}

type memResource struct {
	isCollection bool
	data         []byte
	contentType  string
	props        map[xml.Name][]byte
	modTime      time.Time
	createTime   time.Time
	version      int64 // bumped on body change, feeds the ETag
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty store containing only the root
// collection.
func NewMemStore() *MemStore {
	s := &MemStore{res: map[string]*memResource{}, now: time.Now}
	s.res["/"] = &memResource{isCollection: true, props: map[xml.Name][]byte{},
		modTime: s.now(), createTime: s.now()}
	return s
}

// SetClock substitutes the time source (tests).
func (s *MemStore) SetClock(now func() time.Time) { s.now = now }

// Close implements Store.
func (s *MemStore) Close() error { return nil }

func (s *MemStore) infoFor(p string, r *memResource) ResourceInfo {
	ri := ResourceInfo{
		Path:         p,
		IsCollection: r.isCollection,
		ModTime:      r.modTime,
		CreateTime:   r.createTime,
	}
	if !r.isCollection {
		ri.Size = int64(len(r.data))
		ri.ContentType = r.contentType
		if ri.ContentType == "" {
			ri.ContentType = "application/octet-stream"
		}
		ri.ETag = fmt.Sprintf(`"%x-%x"`, len(r.data), r.version)
	}
	return ri
}

// Stat implements Store.
func (s *MemStore) Stat(p string) (ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return ResourceInfo{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.res[cp]
	if !ok {
		return ResourceInfo{}, fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	return s.infoFor(cp, r), nil
}

// List implements Store.
func (s *MemStore) List(p string) ([]ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.res[cp]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	if !r.isCollection {
		return nil, fmt.Errorf("%w: %s", ErrNotCollection, cp)
	}
	prefix := cp
	if prefix != "/" {
		prefix += "/"
	}
	var out []ResourceInfo
	for q, qr := range s.res {
		if q == cp || !strings.HasPrefix(q, prefix) {
			continue
		}
		if strings.Contains(q[len(prefix):], "/") {
			continue // grandchild
		}
		out = append(out, s.infoFor(q, qr))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// parentOK reports whether p's parent exists and is a collection.
// Caller holds s.mu.
func (s *MemStore) parentOK(p string) bool {
	parent, ok := s.res[ParentPath(p)]
	return ok && parent.isCollection
}

// Mkcol implements Store.
func (s *MemStore) Mkcol(p string) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.res[cp]; ok {
		return fmt.Errorf("%w: %s", ErrExists, cp)
	}
	if !s.parentOK(cp) {
		return fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	now := s.now()
	s.res[cp] = &memResource{isCollection: true, props: map[xml.Name][]byte{},
		modTime: now, createTime: now}
	return nil
}

// Put implements Store.
func (s *MemStore) Put(p string, r io.Reader, contentType string) (bool, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return false, err
	}
	if cp == "/" {
		return false, fmt.Errorf("%w: cannot PUT to /", ErrIsCollection)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	existing, ok := s.res[cp]
	if ok && existing.isCollection {
		return false, fmt.Errorf("%w: %s", ErrIsCollection, cp)
	}
	if !s.parentOK(cp) {
		return false, fmt.Errorf("%w: %s", ErrConflict, ParentPath(cp))
	}
	now := s.now()
	if ok {
		existing.data = data
		existing.modTime = now
		existing.version++
		if contentType != "" {
			existing.contentType = contentType
		}
		return false, nil
	}
	s.res[cp] = &memResource{data: data, contentType: contentType,
		props: map[xml.Name][]byte{}, modTime: now, createTime: now}
	return true, nil
}

// Get implements Store.
func (s *MemStore) Get(p string) (io.ReadCloser, ResourceInfo, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, ResourceInfo{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.res[cp]
	if !ok {
		return nil, ResourceInfo{}, fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	if r.isCollection {
		return nil, ResourceInfo{}, fmt.Errorf("%w: %s", ErrIsCollection, cp)
	}
	return io.NopCloser(bytes.NewReader(r.data)), s.infoFor(cp, r), nil
}

// Delete implements Store.
func (s *MemStore) Delete(p string) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("%w: cannot delete /", ErrBadPath)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.res[cp]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	delete(s.res, cp)
	if r.isCollection {
		prefix := cp + "/"
		for q := range s.res {
			if strings.HasPrefix(q, prefix) {
				delete(s.res, q)
			}
		}
	}
	return nil
}

// withResource looks up a resource under the appropriate lock.
func (s *MemStore) withResource(p string, write bool, fn func(*memResource) error) error {
	cp, err := CleanPath(p)
	if err != nil {
		return err
	}
	if write {
		s.mu.Lock()
		defer s.mu.Unlock()
	} else {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	r, ok := s.res[cp]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	return fn(r)
}

// PropPut implements Store.
func (s *MemStore) PropPut(p string, name xml.Name, value []byte) error {
	return s.withResource(p, true, func(r *memResource) error {
		r.props[name] = append([]byte(nil), value...)
		return nil
	})
}

// PropGet implements Store.
func (s *MemStore) PropGet(p string, name xml.Name) ([]byte, bool, error) {
	var val []byte
	var ok bool
	err := s.withResource(p, false, func(r *memResource) error {
		v, present := r.props[name]
		if present {
			val = append([]byte(nil), v...)
			ok = true
		}
		return nil
	})
	return val, ok, err
}

// PropDelete implements Store.
func (s *MemStore) PropDelete(p string, name xml.Name) error {
	return s.withResource(p, true, func(r *memResource) error {
		delete(r.props, name)
		return nil
	})
}

// PropNames implements Store.
func (s *MemStore) PropNames(p string) ([]xml.Name, error) {
	var names []xml.Name
	err := s.withResource(p, false, func(r *memResource) error {
		for n := range r.props {
			names = append(names, n)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i].Space != names[j].Space {
			return names[i].Space < names[j].Space
		}
		return names[i].Local < names[j].Local
	})
	return names, nil
}

// PropAll implements Store.
func (s *MemStore) PropAll(p string) (map[xml.Name][]byte, error) {
	out := map[xml.Name][]byte{}
	err := s.withResource(p, false, func(r *memResource) error {
		for n, v := range r.props {
			out[n] = append([]byte(nil), v...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Len returns the number of resources (root included), for tests.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.res)
}
