// Package fsck verifies — and with Repair, restores — the on-disk
// invariants of an FSStore, the way a filesystem fsck does for a
// filesystem. The store's mod_dav layout keeps a document's state in
// three places (content file, property-database sidecar, generation
// counter), and the invariants tie them together:
//
//   - every property sidecar belongs to a live resource (no orphans);
//   - every property database is structurally sound (dbm.Verify) and
//     of the store's flavour;
//   - a persisted generation is a positive integer;
//   - no stranded staging temporaries (".put-*", "*.compact");
//   - no dangling journal intents (unfinished multi-step operations).
//
// Check reports violations without touching the store. Repair reuses
// the store's own crash-recovery code for the journal and temp-file
// findings, removes orphaned sidecars, quarantines corrupt or
// wrong-flavour databases as "<name>.corrupt" (the bytes stay for the
// operator; the invariant is restored), and deletes unparseable
// generation keys (the next overwrite re-seeds the counter; one ETag
// generation is lost, torn metadata is not).
package fsck

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/dbm"
	"repro/internal/obs/trace"
	"repro/internal/store"
	"repro/internal/store/journal"
)

// Finding kinds.
const (
	KindStrandedTmp     = "stranded-tmp"
	KindOrphanProps     = "orphan-props"
	KindCorruptDBM      = "corrupt-dbm"
	KindFlavourMismatch = "flavour-mismatch"
	KindBadGeneration   = "bad-generation"
	KindDanglingIntent  = "dangling-intent"
)

// Finding is one invariant violation.
type Finding struct {
	Kind   string // one of the Kind* constants
	Path   string // disk path of the offending file (or journal path)
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s %s: %s", f.Kind, f.Path, f.Detail)
}

// Report is the result of one Check or Repair pass.
type Report struct {
	Findings  []Finding
	Resources int // resources walked (documents + collections)
	Databases int // property databases examined
	Repaired  int // findings fixed (Repair only)
}

// Clean reports whether no violations remain.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// Cumulative fsck telemetry, surfaced as dav_fsck_* on /metrics when a
// server process runs fsck in-process.
var (
	runsTotal     atomic.Int64
	findingsTotal atomic.Int64
	repairedTotal atomic.Int64
)

// Stats is the cumulative fsck telemetry.
type Stats struct{ Runs, Findings, Repaired int64 }

// CumulativeStats snapshots the process-wide fsck counters.
func CumulativeStats() Stats {
	return Stats{
		Runs:     runsTotal.Load(),
		Findings: findingsTotal.Load(),
		Repaired: repairedTotal.Load(),
	}
}

// Check walks the store rooted at root and reports every invariant
// violation. It never mutates the store — safe on a quiescent store
// another process owns.
func Check(root string, flavour dbm.Flavour) (rep *Report, err error) {
	return CheckContext(context.Background(), root, flavour)
}

// CheckContext is Check bound to a trace context ("store.fsck" span).
func CheckContext(ctx context.Context, root string, flavour dbm.Flavour) (rep *Report, err error) {
	_, end := trace.Region(ctx, "store.fsck", trace.Str("root", root))
	defer func() { end(err) }()
	rep = &Report{}
	if err := checkTree(ctx, root, flavour, rep); err != nil {
		return nil, err
	}
	if err := checkJournal(root, rep); err != nil {
		return nil, err
	}
	runsTotal.Add(1)
	findingsTotal.Add(int64(len(rep.Findings)))
	return rep, nil
}

// checkTree walks the resource tree, descending into each metadata
// directory exactly once. The walk checks ctx between entries: a store
// holding thousands of sidecar databases takes a while to verify, and
// an abandoned check should stop burning I/O (checking is read-only,
// so stopping leaves nothing behind).
func checkTree(ctx context.Context, root string, flavour dbm.Flavour, rep *Report) error {
	return filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if d.IsDir() {
			if d.Name() == store.MetaDirName {
				checkMetaDir(ctx, root, p, flavour, rep)
				return filepath.SkipDir
			}
			rep.Resources++
			return nil
		}
		if store.IsTmpName(d.Name()) {
			rep.add(KindStrandedTmp, p, "staging temporary with no live operation")
			return nil
		}
		rep.Resources++
		return nil
	})
}

// checkMetaDir examines one ".DAV" directory: every member sidecar
// must have a live owner, and every database must be sound.
func checkMetaDir(ctx context.Context, root, metaDir string, flavour dbm.Flavour, rep *Report) {
	resourceDir := filepath.Dir(metaDir)
	ents, err := os.ReadDir(metaDir)
	if err != nil {
		rep.add(KindCorruptDBM, metaDir, fmt.Sprintf("unreadable metadata directory: %v", err))
		return
	}
	isRootMeta := resourceDir == root
	for _, e := range ents {
		p := filepath.Join(metaDir, e.Name())
		if store.IsTmpName(e.Name()) {
			rep.add(KindStrandedTmp, p, "staging temporary with no live operation")
			continue
		}
		if isRootMeta && e.Name() == store.JournalFileName {
			continue // checked separately
		}
		if !strings.HasSuffix(e.Name(), store.PropsExt) {
			continue // quarantined *.corrupt files and the like
		}
		base := strings.TrimSuffix(e.Name(), store.PropsExt)
		if base != store.CollectionPropsBase {
			// A member sidecar: its owner must be a live document.
			fi, err := os.Stat(filepath.Join(resourceDir, base))
			if err != nil || fi.IsDir() {
				rep.add(KindOrphanProps, p, "property database with no live document")
				continue
			}
		}
		checkDB(ctx, p, flavour, rep)
	}
}

// checkDB validates one property database: flavour, structure, and
// the generation key when present.
func checkDB(ctx context.Context, p string, flavour dbm.Flavour, rep *Report) {
	rep.Databases++
	got, err := dbm.FlavourOf(p)
	if err != nil {
		rep.add(KindCorruptDBM, p, err.Error())
		return
	}
	if got != flavour {
		rep.add(KindFlavourMismatch, p,
			fmt.Sprintf("database is %s, store is %s", got, flavour))
		return
	}
	if err := dbm.VerifyContext(ctx, p); err != nil {
		rep.add(KindCorruptDBM, p, err.Error())
		return
	}
	db, err := dbm.Open(p, flavour)
	if err != nil {
		rep.add(KindCorruptDBM, p, err.Error())
		return
	}
	defer db.Close()
	if v, ok, err := db.Get(store.GenerationKey()); err == nil && ok {
		gen, perr := strconv.ParseInt(string(v), 10, 64)
		if perr != nil || gen <= 0 {
			rep.add(KindBadGeneration, p,
				fmt.Sprintf("generation %q is not a positive integer", v))
		}
	}
}

// checkJournal reports every unresolved intent in the store's journal.
func checkJournal(root string, rep *Report) error {
	jp := filepath.Join(root, store.MetaDirName, store.JournalFileName)
	pending, err := journal.ReadPending(jp)
	if err != nil {
		return err
	}
	for _, rec := range pending {
		rep.add(KindDanglingIntent, jp, rec.String())
	}
	return nil
}

func (r *Report) add(kind, path, detail string) {
	r.Findings = append(r.Findings, Finding{Kind: kind, Path: path, Detail: detail})
}

// Repair fixes every finding Check would report: dangling intents and
// stranded temporaries go through the store's own crash recovery,
// orphaned sidecars are removed, corrupt or wrong-flavour databases
// are quarantined as "<name>.corrupt", and unparseable generations are
// deleted. Returns the final report — its Findings are whatever could
// not be fixed (empty on success), and Repaired counts the fixes.
func Repair(root string, flavour dbm.Flavour) (*Report, error) {
	return RepairContext(context.Background(), root, flavour)
}

// RepairContext is Repair bound to a trace context.
func RepairContext(ctx context.Context, root string, flavour dbm.Flavour) (rep *Report, err error) {
	_, end := trace.Region(ctx, "store.fsck.repair", trace.Str("root", root))
	defer func() { end(err) }()

	before, err := CheckContext(ctx, root, flavour)
	if err != nil {
		return nil, err
	}

	// Phase 1: the store's own recovery resolves dangling intents and
	// sweeps stranded temporaries — the exact code a crashed server
	// runs at startup, not a reimplementation.
	s, err := store.NewFSStoreWith(root, flavour, store.FSOptions{DeferRecovery: true})
	if err != nil {
		return nil, err
	}
	_, rerr := s.Recover()
	s.Close()
	if rerr != nil {
		return nil, fmt.Errorf("fsck: recovery phase: %w", rerr)
	}

	// Phase 2: findings recovery does not cover.
	repaired := 0
	for _, f := range before.Findings {
		switch f.Kind {
		case KindOrphanProps:
			if err := os.Remove(f.Path); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("fsck: removing orphan %s: %w", f.Path, err)
			}
		case KindCorruptDBM, KindFlavourMismatch:
			if err := os.Rename(f.Path, f.Path+".corrupt"); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("fsck: quarantining %s: %w", f.Path, err)
			}
		case KindBadGeneration:
			if err := dropGeneration(f.Path, flavour); err != nil {
				return nil, fmt.Errorf("fsck: clearing generation in %s: %w", f.Path, err)
			}
		}
	}

	// Re-check: anything still found genuinely resisted repair.
	rep, err = CheckContext(ctx, root, flavour)
	if err != nil {
		return nil, err
	}
	repaired = len(before.Findings) - len(rep.Findings)
	if repaired < 0 {
		repaired = 0
	}
	rep.Repaired = repaired
	repairedTotal.Add(int64(repaired))
	return rep, nil
}

func dropGeneration(path string, flavour dbm.Flavour) error {
	db, err := dbm.Open(path, flavour)
	if err != nil {
		return err
	}
	defer db.Close()
	if _, err := db.Delete(store.GenerationKey()); err != nil {
		return err
	}
	return db.Sync()
}
