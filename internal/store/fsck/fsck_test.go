package fsck

import (
	"context"
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dbm"
	"repro/internal/store"
	"repro/internal/store/journal"
)

// seedStore builds a small healthy store: a project tree with
// documents, properties, and an overwrite (so a generation exists).
func seedStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := store.NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Mkcol(context.Background(), "/proj"))
	_, err = s.Put(context.Background(), "/proj/input.nw", strings.NewReader("geometry"), "")
	must(err)
	_, err = s.Put(context.Background(), "/proj/input.nw", strings.NewReader("geometry v2"), "")
	must(err)
	_, err = s.Put(context.Background(), "/proj/out.log", strings.NewReader("ok"), "chemical/x-log")
	must(err)
	must(s.PropPut(context.Background(), "/proj", xml.Name{Space: "urn:ecce", Local: "owner"}, []byte("collection prop")))
	return dir
}

func TestCheckCleanStore(t *testing.T) {
	dir := seedStore(t)
	rep, err := Check(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("findings on a healthy store:\n%v", rep.Findings)
	}
	if rep.Databases == 0 || rep.Resources == 0 {
		t.Fatalf("report did not walk the store: %+v", rep)
	}
}

func TestCheckAndRepairCorruptedFixture(t *testing.T) {
	dir := seedStore(t)

	// 1. Orphan sidecar: a props database whose document is gone.
	orphan := filepath.Join(dir, "proj", store.MetaDirName, "ghost.txt"+store.PropsExt)
	db, err := dbm.Open(orphan, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("P:k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// 2. Stranded staging temporaries.
	tmp1 := filepath.Join(dir, "proj", ".put-555")
	if err := os.WriteFile(tmp1, []byte("debris"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp2 := filepath.Join(dir, "proj", store.MetaDirName, "out.log"+store.PropsExt+".compact")
	if err := os.WriteFile(tmp2, []byte("debris"), 0o644); err != nil {
		t.Fatal(err)
	}

	// 3. Dangling journal intent: a delete that never finished — its
	// content file is already gone, the sidecar survives.
	victim := filepath.Join(dir, "proj", "out.log")
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	jp := filepath.Join(dir, store.MetaDirName, store.JournalFileName)
	j, err := journal.Open(jp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Begin(journal.Record{Op: journal.OpDelete, Path: "/proj/out.log"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// 4. Corrupt database: flip the magic of the collection sidecar.
	corrupt := filepath.Join(dir, "proj", store.MetaDirName, store.CollectionPropsBase+store.PropsExt)
	data, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Check(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := map[string]int{
		KindOrphanProps:    1, // ghost.txt.props (out.log.props becomes orphaned too, but by the dangling delete)
		KindStrandedTmp:    2,
		KindDanglingIntent: 1,
		KindCorruptDBM:     1,
	}
	got := map[string]int{}
	for _, f := range rep.Findings {
		got[f.Kind]++
	}
	for kind, want := range wantKinds {
		if got[kind] < want {
			t.Errorf("findings[%s] = %d, want >= %d (all: %v)", kind, got[kind], want, rep.Findings)
		}
	}

	// Repair restores every invariant.
	rep, err = Repair(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("findings after repair:\n%v", rep.Findings)
	}
	if rep.Repaired == 0 {
		t.Fatal("repair fixed nothing")
	}
	// The quarantined database is kept for the operator.
	if _, err := os.Stat(corrupt + ".corrupt"); err != nil {
		t.Errorf("corrupt database was not quarantined: %v", err)
	}
	// The dangling delete rolled forward: sidecar gone with the doc.
	if _, err := os.Stat(filepath.Join(dir, "proj", store.MetaDirName, "out.log"+store.PropsExt)); !os.IsNotExist(err) {
		t.Errorf("recovered delete left its sidecar (err=%v)", err)
	}

	// The untouched document survived intact.
	s, err := store.NewFSStore(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Stat(context.Background(), "/proj/input.nw"); err != nil {
		t.Errorf("healthy document damaged by repair: %v", err)
	}
}

func TestCheckFlagsBadGeneration(t *testing.T) {
	dir := seedStore(t)
	pp := filepath.Join(dir, "proj", store.MetaDirName, "input.nw"+store.PropsExt)
	db, err := dbm.Open(pp, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(store.GenerationKey(), []byte("not-a-number")); err != nil {
		t.Fatal(err)
	}
	db.Close()

	rep, err := Check(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == KindBadGeneration {
			found = true
		}
	}
	if !found {
		t.Fatalf("bad generation not flagged: %v", rep.Findings)
	}

	rep, err = Repair(dir, dbm.GDBM)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("findings after repair:\n%v", rep.Findings)
	}
}
