package davclient

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/davproto"
	"repro/internal/xmldom"
)

// parseMultistatusSAX parses a 207 body in one streaming pass,
// building only the davproto structures (no intermediate document
// tree). This is the optimization the paper predicted when it
// attributed the client-side cost of bulk PROPFINDs to DOM parsing.
func parseMultistatusSAX(r io.Reader) (davproto.Multistatus, error) {
	var (
		ms davproto.Multistatus

		inResponse bool
		resp       davproto.Response
		inPropstat bool
		ps         davproto.Propstat
		inProp     bool

		// Property subtrees are reconstructed directly while
		// streaming.
		propRoot *xmldom.Node
		propCur  *xmldom.Node

		text bytes.Buffer
		path []xml.Name
	)
	isDAV := func(n xml.Name, local string) bool {
		return n.Space == davproto.NS && n.Local == local
	}

	h := xmldom.SAXHandler{
		StartElement: func(name xml.Name, attrs []xml.Attr) error {
			path = append(path, name)
			// Flush text accumulated before a child element so mixed
			// content inside property values is preserved.
			if propRoot != nil {
				propCur.Text += text.String()
			}
			text.Reset()
			switch {
			case propRoot != nil:
				// Inside a property value subtree.
				child := &xmldom.Node{Name: name, Attrs: attrs}
				propCur.AppendChild(child)
				propCur = child
			case inProp:
				// A new property element.
				propRoot = &xmldom.Node{Name: name, Attrs: attrs}
				propCur = propRoot
			case isDAV(name, "response"):
				inResponse = true
				resp = davproto.Response{}
			case inResponse && isDAV(name, "propstat"):
				inPropstat = true
				ps = davproto.Propstat{}
			case inPropstat && isDAV(name, "prop"):
				inProp = true
			}
			return nil
		},
		EndElement: func(name xml.Name) error {
			defer func() {
				path = path[:len(path)-1]
				text.Reset()
			}()
			switch {
			case propRoot != nil:
				propCur.Text += text.String()
				if propCur == propRoot {
					// Property complete.
					ps.Props = append(ps.Props, davproto.Property{XML: propRoot})
					propRoot, propCur = nil, nil
					return nil
				}
				propCur = propCur.Parent
			case inProp && isDAV(name, "prop"):
				inProp = false
			case inPropstat && isDAV(name, "status"):
				code, err := davproto.ParseStatusLine(text.String())
				if err != nil {
					return err
				}
				ps.Status = code
			case inPropstat && isDAV(name, "propstat"):
				inPropstat = false
				resp.Propstats = append(resp.Propstats, ps)
			case inResponse && isDAV(name, "href"):
				resp.Href = strings.TrimSpace(text.String())
			case inResponse && isDAV(name, "status"):
				// Response-level status (no propstats).
				code, err := davproto.ParseStatusLine(text.String())
				if err != nil {
					return err
				}
				resp.Status = code
			case isDAV(name, "response"):
				inResponse = false
				ms.Responses = append(ms.Responses, resp)
			}
			return nil
		},
		CharData: func(data []byte) error {
			text.Write(data)
			return nil
		},
	}
	if err := xmldom.ScanSAX(r, h); err != nil {
		return davproto.Multistatus{}, fmt.Errorf("davclient: sax multistatus: %w", err)
	}
	return ms, nil
}

// parseLockXML extracts the active lock from a LOCK response body
// (<D:prop><D:lockdiscovery><D:activelock>...).
func parseLockXML(body []byte) (davproto.ActiveLock, error) {
	root, err := xmldom.ParseBytes(body)
	if err != nil {
		return davproto.ActiveLock{}, fmt.Errorf("davclient: bad lock response: %w", err)
	}
	al := root.FindPath("DAV:|lockdiscovery", "DAV:|activelock")
	if al == nil {
		return davproto.ActiveLock{}, fmt.Errorf("davclient: lock response missing activelock")
	}
	return davproto.ActiveLockFromXML(al)
}
