// Package davclient is the client side of the Ecce data architecture:
// a WebDAV library mirroring the C++ HTTP/DAV classes the paper built
// at PNNL. It supports persistent or per-request connections (the
// paper found, anomalously, that reconnecting per request was faster
// in its environment — the connection-policy ablation measures this)
// and two 207-response parsers: a DOM parser (the measured Xerces
// configuration) and a streaming SAX parser (the paper's anticipated
// optimization).
package davclient

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/davproto"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/xmldom"
)

// ParserKind selects how multistatus bodies are parsed.
type ParserKind int

// Parser kinds.
const (
	// ParserDOM builds a full document tree first (the paper's
	// measured configuration).
	ParserDOM ParserKind = iota
	// ParserSAX streams the response without building a tree.
	ParserSAX
)

// Config configures a Client.
type Config struct {
	// BaseURL is the server root, e.g. "http://host:8080" or
	// "http://host:8080/dav".
	BaseURL string
	// Username/Password enable HTTP basic authentication when set.
	Username, Password string
	// Persistent enables HTTP/1.1 persistent connections. When false
	// every request opens a fresh connection, mirroring the paper's
	// reconnect-per-request configuration.
	Persistent bool
	// Parser selects the multistatus parser (default ParserDOM).
	Parser ParserKind
	// Timeout bounds each request; zero means no timeout.
	Timeout time.Duration
	// Retry enables automatic retries of idempotent requests on
	// transient failures; nil disables them (every request gets one
	// attempt, the pre-resilience behaviour).
	Retry *RetryPolicy
	// Transport overrides the underlying round tripper. When set,
	// Persistent is ignored; the chaos harness uses this to inject
	// transport faults between client and server.
	Transport http.RoundTripper
	// Metrics, when set, records client-side telemetry into the given
	// registry: requests issued, retries, backoff sleeps, and retry
	// budget exhaustion.
	Metrics *obs.Registry
	// Tracer, when set, opens one root span per logical operation
	// ("dav.client <METHOD>", spanning every retry attempt, each of
	// which gets a child span) and propagates the trace to the server
	// via the traceparent header.
	Tracer *trace.Tracer
}

// Client is a WebDAV client. It is safe for concurrent use.
type Client struct {
	base     *url.URL
	cfg      Config
	http     *http.Client
	requests *atomic.Int64
	retry    *retrier
	met      *clientMetrics
	ctx      context.Context // default per-request context; nil = Background
}

// StatusError reports an unexpected HTTP status.
type StatusError struct {
	Method string
	Path   string
	Code   int
	Body   string // first KB of the response body
	// RetryAfter is the parsed Retry-After delay from the response, if
	// any — the retry layer honors it for 429/503 rejections.
	RetryAfter time.Duration
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("davclient: %s %s: %d %s", e.Method, e.Path, e.Code, http.StatusText(e.Code))
}

// Is lets errors.Is match two StatusErrors by code alone, so callers
// can compare against &StatusError{Code: 404} without knowing the
// method or path.
func (e *StatusError) Is(target error) bool {
	t, ok := target.(*StatusError)
	return ok && t.Code == e.Code
}

// IsStatus reports whether err is, or wraps, a StatusError with the
// given code. It sees through fmt.Errorf("%w") wrapping — including
// the retry layer's attempt annotations — via errors.As.
func IsStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}

// New builds a client from cfg.
func New(cfg Config) (*Client, error) {
	base, err := url.Parse(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("davclient: bad base URL %q: %w", cfg.BaseURL, err)
	}
	if base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("davclient: base URL %q must be absolute", cfg.BaseURL)
	}
	base.Path = strings.TrimSuffix(base.Path, "/")
	var tr http.RoundTripper = &http.Transport{
		DisableKeepAlives:   !cfg.Persistent,
		MaxIdleConns:        8,
		MaxIdleConnsPerHost: 8,
		IdleConnTimeout:     15 * time.Second, // the paper's keepalive window
	}
	if cfg.Transport != nil {
		tr = cfg.Transport
	}
	return &Client{
		base:     base,
		cfg:      cfg,
		http:     &http.Client{Transport: tr, Timeout: cfg.Timeout},
		requests: &atomic.Int64{},
		retry:    newRetrier(cfg.Retry),
		met:      newClientMetrics(cfg.Metrics),
	}, nil
}

// Close releases idle connections.
func (c *Client) Close() {
	type idleCloser interface{ CloseIdleConnections() }
	if tr, ok := c.http.Transport.(idleCloser); ok {
		tr.CloseIdleConnections()
	}
}

// RequestCount returns the number of HTTP requests issued, including
// retries.
func (c *Client) RequestCount() int64 { return c.requests.Load() }

// RetryCount returns how many automatic retries this client has
// performed (zero when no RetryPolicy is configured).
func (c *Client) RetryCount() int64 {
	if c.retry == nil {
		return 0
	}
	return c.retry.retries.Load()
}

// WithContext returns a shallow copy of the client whose requests run
// under ctx: cancellation aborts in-flight requests and pending retry
// backoffs. The copy shares the transport, counters, and retry budget
// with its parent.
func (c *Client) WithContext(ctx context.Context) *Client {
	c2 := *c
	c2.ctx = ctx
	return &c2
}

// context resolves the per-request context.
func (c *Client) context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// urlFor resolves a resource path against the base URL.
func (c *Client) urlFor(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	u := *c.base
	u.Path = c.base.Path + p
	return u.String()
}

// do issues a request, enforcing the expected status codes. With a
// RetryPolicy configured, idempotent requests whose bodies can be
// rewound are retried on transient failures; the final error is
// annotated with the attempt count but still matches IsStatus /
// errors.As classification.
//
// Every attempt of one logical operation shares a single X-Request-ID
// — taken from the context when the caller stamped one with
// obs.WithRequestID, freshly generated otherwise — so the operation is
// traceable end-to-end through the server's access log.
//
// With a Tracer configured, the whole logical operation is one root
// span covering every retry attempt and backoff sleep; each attempt is
// a child span, and the traceparent header carries the trace to the
// server. When the caller supplied no request ID, it is minted from the
// trace ID, so access-log lines and traces join on one identifier.
func (c *Client) do(method, p string, headers map[string]string, body io.Reader, want ...int) (*http.Response, error) {
	ctx := c.context()
	var root *trace.Span
	if c.cfg.Tracer != nil {
		ctx, root = c.cfg.Tracer.Start(ctx, "dav.client "+method,
			trace.Str("method", method), trace.Str("path", p))
	}
	reqID := obs.RequestIDFrom(ctx)
	if reqID == "" && root != nil {
		reqID = root.TraceID().String()
	}
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	rw, rewindable := newRewinder(body)
	attempts := c.retry.attemptsFor(method, rewindable)
	var lastErr error
	finalAttempt := 1
	for attempt := 1; ; attempt++ {
		finalAttempt = attempt
		if attempt > 1 {
			if err := rw.rewind(); err != nil {
				lastErr = fmt.Errorf("davclient: %s %s: rewind for retry: %w", method, p, err)
				break
			}
		}
		attemptCtx := ctx
		var att *trace.Span
		if root != nil {
			attemptCtx, att = trace.Child(ctx, "dav.client.attempt",
				trace.Int("attempt", int64(attempt)))
		}
		resp, err := c.once(attemptCtx, method, p, reqID, attempt, headers, body, want)
		att.EndErr(err)
		if err == nil {
			root.SetAttr(trace.Int("attempts", int64(attempt)))
			root.End()
			return resp, nil
		}
		lastErr = err
		if attempt >= attempts || !c.retry.retryableErr(err) {
			break
		}
		if !c.retry.takeBudget() {
			c.met.countBudgetExhausted()
			break
		}
		c.met.countRetry()
		delay := c.retry.delay(attempt, lastErr)
		c.met.observeBackoff(delay)
		if err := c.retry.policy.Sleep(ctx, delay); err != nil {
			break // context cancelled while backing off
		}
	}
	root.SetAttr(trace.Int("attempts", int64(finalAttempt)))
	root.EndErr(lastErr)
	return nil, lastErr
}

// retryAttemptHeader matches admit.RetryAttemptHeader on the server:
// retries announce themselves so the server-side retry budget can shed
// a retry storm without touching fresh demand.
const retryAttemptHeader = "X-Retry-Attempt"

// once issues exactly one HTTP request.
func (c *Client) once(ctx context.Context, method, p, reqID string, attempt int, headers map[string]string, body io.Reader, want []int) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.urlFor(p), body)
	if err != nil {
		return nil, err
	}
	req.Header.Set(obs.RequestIDHeader, reqID)
	if attempt > 1 {
		req.Header.Set(retryAttemptHeader, strconv.Itoa(attempt))
	}
	trace.Inject(ctx, req.Header)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	if c.cfg.Username != "" {
		req.SetBasicAuth(c.cfg.Username, c.cfg.Password)
	}
	c.requests.Add(1)
	c.met.countRequest()
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("davclient: %s %s: %w", method, p, err)
	}
	for _, w := range want {
		if resp.StatusCode == w {
			return resp, nil
		}
	}
	excerpt, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	se := &StatusError{
		Method: method, Path: p, Code: resp.StatusCode, Body: string(excerpt),
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
	// Load shedding (429, or 503 carrying backoff guidance) is counted
	// apart from failure: the server is telling us to slow down, not
	// that it is broken.
	if se.Code == http.StatusTooManyRequests ||
		(se.Code == http.StatusServiceUnavailable && se.RetryAfter > 0) {
		c.met.countShed()
	}
	return nil, se
}

// parseRetryAfter reads a Retry-After header: delta-seconds or an HTTP
// date. Unparseable or absent values yield zero.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// discard drains and closes a response body so the connection can be
// reused.
func discard(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Options performs an OPTIONS request and returns the DAV compliance
// classes header.
func (c *Client) Options(p string) (string, error) {
	resp, err := c.do(http.MethodOptions, p, nil, nil, http.StatusOK)
	if err != nil {
		return "", err
	}
	defer discard(resp)
	return resp.Header.Get("DAV"), nil
}

// Put stores a document, reporting whether it was created (true) or
// replaced (false).
func (c *Client) Put(p string, body io.Reader, contentType string) (bool, error) {
	headers := map[string]string{}
	if contentType != "" {
		headers["Content-Type"] = contentType
	}
	resp, err := c.do(http.MethodPut, p, headers, body, http.StatusCreated, http.StatusNoContent)
	if err != nil {
		return false, err
	}
	defer discard(resp)
	return resp.StatusCode == http.StatusCreated, nil
}

// PutBytes stores a document from a byte slice.
func (c *Client) PutBytes(p string, body []byte, contentType string) (bool, error) {
	return c.Put(p, bytes.NewReader(body), contentType)
}

// Get retrieves a document body.
func (c *Client) Get(p string) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := c.GetTo(p, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GetTo streams a document body into w and returns the byte count.
func (c *Client) GetTo(p string, w io.Writer) (int64, error) {
	resp, err := c.do(http.MethodGet, p, nil, nil, http.StatusOK)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return io.Copy(w, resp.Body)
}

// Exists reports whether a resource exists.
func (c *Client) Exists(p string) (bool, error) {
	resp, err := c.do(http.MethodHead, p, nil, nil, http.StatusOK)
	if err != nil {
		if IsStatus(err, http.StatusNotFound) {
			return false, nil
		}
		return false, err
	}
	discard(resp)
	return true, nil
}

// Stat fetches a resource's live properties via a Depth: 0 PROPFIND.
func (c *Client) Stat(p string) (map[xml.Name]davproto.Property, error) {
	ms, err := c.PropFindAll(p, davproto.Depth0)
	if err != nil {
		return nil, err
	}
	if len(ms.Responses) == 0 {
		return nil, fmt.Errorf("davclient: empty multistatus for %s", p)
	}
	return davproto.PropsByName(ms.Responses[0].Propstats), nil
}

// Mkcol creates a collection.
func (c *Client) Mkcol(p string) error {
	resp, err := c.do("MKCOL", p, nil, nil, http.StatusCreated)
	if err != nil {
		return err
	}
	discard(resp)
	return nil
}

// MkcolAll creates a collection and any missing ancestors.
func (c *Client) MkcolAll(p string) error {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	prefix := ""
	for _, seg := range strings.Split(p, "/") {
		prefix += "/" + seg
		err := c.Mkcol(prefix)
		if err != nil && !IsStatus(err, http.StatusMethodNotAllowed) {
			return err
		}
	}
	return nil
}

// Delete removes a resource (recursively for collections).
func (c *Client) Delete(p string) error {
	resp, err := c.do(http.MethodDelete, p, nil, nil, http.StatusNoContent, http.StatusOK)
	if err != nil {
		return err
	}
	discard(resp)
	return nil
}

// copyMoveHeaders assembles Destination/Depth/Overwrite headers.
func (c *Client) copyMoveHeaders(dst string, depth davproto.Depth, overwrite bool) map[string]string {
	h := map[string]string{
		"Destination": c.urlFor(dst),
		"Depth":       depth.String(),
	}
	if overwrite {
		h["Overwrite"] = "T"
	} else {
		h["Overwrite"] = "F"
	}
	return h
}

// Copy duplicates src to dst on the server.
func (c *Client) Copy(src, dst string, depth davproto.Depth, overwrite bool) error {
	resp, err := c.do("COPY", src, c.copyMoveHeaders(dst, depth, overwrite), nil,
		http.StatusCreated, http.StatusNoContent)
	if err != nil {
		return err
	}
	discard(resp)
	return nil
}

// Move relocates src to dst on the server.
func (c *Client) Move(src, dst string, overwrite bool) error {
	resp, err := c.do("MOVE", src, c.copyMoveHeaders(dst, davproto.DepthInfinity, overwrite), nil,
		http.StatusCreated, http.StatusNoContent)
	if err != nil {
		return err
	}
	discard(resp)
	return nil
}

// PropFind issues a PROPFIND and parses the 207 response with the
// configured parser.
func (c *Client) PropFind(p string, depth davproto.Depth, pf davproto.Propfind) (davproto.Multistatus, error) {
	headers := map[string]string{
		"Depth":        depth.String(),
		"Content-Type": `text/xml; charset="utf-8"`,
	}
	resp, err := c.do("PROPFIND", p, headers, bytes.NewReader(davproto.MarshalPropfind(pf)),
		http.StatusMultiStatus)
	if err != nil {
		return davproto.Multistatus{}, err
	}
	defer resp.Body.Close()
	if c.cfg.Parser == ParserSAX {
		return parseMultistatusSAX(resp.Body)
	}
	return davproto.ParseMultistatus(resp.Body)
}

// PropFindAll fetches all properties (allprop).
func (c *Client) PropFindAll(p string, depth davproto.Depth) (davproto.Multistatus, error) {
	return c.PropFind(p, depth, davproto.Propfind{Kind: davproto.PropfindAllProp})
}

// PropFindNames fetches property names only.
func (c *Client) PropFindNames(p string, depth davproto.Depth) (davproto.Multistatus, error) {
	return c.PropFind(p, depth, davproto.Propfind{Kind: davproto.PropfindPropName})
}

// PropFindSelected fetches the named properties.
func (c *Client) PropFindSelected(p string, depth davproto.Depth, names ...xml.Name) (davproto.Multistatus, error) {
	return c.PropFind(p, depth, davproto.Propfind{Kind: davproto.PropfindProps, Props: names})
}

// Search issues a DASL SEARCH request (basicsearch subset) and parses
// the 207 result — the server-side query capability the paper
// anticipated. The request is addressed to the scope resource.
func (c *Client) Search(bs davproto.BasicSearch) (davproto.Multistatus, error) {
	headers := map[string]string{"Content-Type": `text/xml; charset="utf-8"`}
	resp, err := c.do("SEARCH", bs.Scope, headers, bytes.NewReader(davproto.MarshalSearch(bs)),
		http.StatusMultiStatus)
	if err != nil {
		return davproto.Multistatus{}, err
	}
	defer resp.Body.Close()
	if c.cfg.Parser == ParserSAX {
		return parseMultistatusSAX(resp.Body)
	}
	return davproto.ParseMultistatus(resp.Body)
}

// SupportsSearch probes the server's OPTIONS response for the DASL
// basicsearch capability.
func (c *Client) SupportsSearch(p string) (bool, error) {
	resp, err := c.do(http.MethodOptions, p, nil, nil, http.StatusOK)
	if err != nil {
		return false, err
	}
	defer discard(resp)
	return strings.Contains(resp.Header.Get("DASL"), "basicsearch"), nil
}

// VersionControl puts a document under version control (its current
// state becomes version 1); subsequent Puts create new versions
// automatically.
func (c *Client) VersionControl(p string) error {
	resp, err := c.do("VERSION-CONTROL", p, nil, nil, http.StatusOK)
	if err != nil {
		return err
	}
	discard(resp)
	return nil
}

// VersionInfo describes one entry of a version history.
type VersionInfo struct {
	Href string // GET this path to retrieve the old state
	Name string // version number as assigned by the server
	Size int64
}

// VersionTree fetches a document's version history via a
// DAV:version-tree REPORT, oldest first.
func (c *Client) VersionTree(p string) ([]VersionInfo, error) {
	body := xmldom.MarshalDocument(xmldom.NewElement(davproto.NS, "version-tree"))
	headers := map[string]string{"Content-Type": `text/xml; charset="utf-8"`}
	resp, err := c.do("REPORT", p, headers, bytes.NewReader(body), http.StatusMultiStatus)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	ms, err := davproto.ParseMultistatus(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make([]VersionInfo, 0, len(ms.Responses))
	for _, r := range ms.Responses {
		vi := VersionInfo{Href: r.Href}
		props := davproto.PropsByName(r.Propstats)
		if vn, ok := props[xml.Name{Space: davproto.NS, Local: "version-name"}]; ok {
			vi.Name = vn.Text()
		}
		if cl, ok := props[davproto.PropGetContentLength]; ok {
			vi.Size, _ = strconv.ParseInt(cl.Text(), 10, 64)
		}
		out = append(out, vi)
	}
	return out, nil
}

// PropPatch applies property operations and returns the per-property
// statuses.
func (c *Client) PropPatch(p string, ops []davproto.PatchOp) (davproto.Multistatus, error) {
	headers := map[string]string{"Content-Type": `text/xml; charset="utf-8"`}
	resp, err := c.do("PROPPATCH", p, headers, bytes.NewReader(davproto.MarshalProppatch(ops)),
		http.StatusMultiStatus)
	if err != nil {
		return davproto.Multistatus{}, err
	}
	defer resp.Body.Close()
	if c.cfg.Parser == ParserSAX {
		return parseMultistatusSAX(resp.Body)
	}
	return davproto.ParseMultistatus(resp.Body)
}

// SetProps sets properties and fails if any instruction is rejected.
func (c *Client) SetProps(p string, props ...davproto.Property) error {
	ops := make([]davproto.PatchOp, len(props))
	for i, prop := range props {
		ops[i] = davproto.PatchOp{Prop: prop}
	}
	return c.propPatchStrict(p, ops)
}

// RemoveProps removes properties and fails if any instruction is
// rejected.
func (c *Client) RemoveProps(p string, names ...xml.Name) error {
	ops := make([]davproto.PatchOp, len(names))
	for i, n := range names {
		ops[i] = davproto.PatchOp{Remove: true, Prop: davproto.NewTextProperty(n.Space, n.Local, "")}
	}
	return c.propPatchStrict(p, ops)
}

func (c *Client) propPatchStrict(p string, ops []davproto.PatchOp) error {
	ms, err := c.PropPatch(p, ops)
	if err != nil {
		return err
	}
	for _, r := range ms.Responses {
		for _, ps := range r.Propstats {
			if ps.Status != http.StatusOK {
				name := ""
				if len(ps.Props) > 0 {
					name = ps.Props[0].Name().Local
				}
				return fmt.Errorf("davclient: PROPPATCH %s: property %q rejected with %d", p, name, ps.Status)
			}
		}
	}
	return nil
}

// GetProp fetches one dead or live property value's text.
func (c *Client) GetProp(p string, name xml.Name) (davproto.Property, bool, error) {
	ms, err := c.PropFindSelected(p, davproto.Depth0, name)
	if err != nil {
		return davproto.Property{}, false, err
	}
	if len(ms.Responses) == 0 {
		return davproto.Property{}, false, fmt.Errorf("davclient: empty multistatus for %s", p)
	}
	prop, ok := davproto.PropsByName(ms.Responses[0].Propstats)[name]
	return prop, ok, nil
}

// Lock acquires a write lock.
func (c *Client) Lock(p string, scope davproto.LockScope, depth davproto.Depth, owner string, timeout time.Duration) (davproto.ActiveLock, error) {
	headers := map[string]string{
		"Depth":        depth.String(),
		"Timeout":      davproto.FormatTimeout(timeout),
		"Content-Type": `text/xml; charset="utf-8"`,
	}
	body := davproto.MarshalLockInfo(davproto.LockInfo{Scope: scope, Owner: owner})
	resp, err := c.do("LOCK", p, headers, bytes.NewReader(body), http.StatusOK, http.StatusCreated)
	if err != nil {
		return davproto.ActiveLock{}, err
	}
	defer resp.Body.Close()
	return parseLockResponse(resp)
}

// RefreshLock extends an existing lock.
func (c *Client) RefreshLock(p, token string, timeout time.Duration) (davproto.ActiveLock, error) {
	headers := map[string]string{
		"If":      "(<" + token + ">)",
		"Timeout": davproto.FormatTimeout(timeout),
	}
	resp, err := c.do("LOCK", p, headers, nil, http.StatusOK)
	if err != nil {
		return davproto.ActiveLock{}, err
	}
	defer resp.Body.Close()
	return parseLockResponse(resp)
}

// Unlock releases a lock.
func (c *Client) Unlock(p, token string) error {
	resp, err := c.do("UNLOCK", p, map[string]string{"Lock-Token": "<" + token + ">"}, nil,
		http.StatusNoContent)
	if err != nil {
		return err
	}
	discard(resp)
	return nil
}

// WithIf returns a derived client that attaches the given lock token
// to every request via the If header — convenient for write sequences
// under one lock.
func (c *Client) WithIf(token string) *LockedClient {
	return &LockedClient{c: c, token: token}
}

// LockedClient decorates write operations with a lock token.
type LockedClient struct {
	c     *Client
	token string
}

// Put stores a document under the lock.
func (lc *LockedClient) Put(p string, body io.Reader, contentType string) (bool, error) {
	headers := map[string]string{"If": "(<" + lc.token + ">)"}
	if contentType != "" {
		headers["Content-Type"] = contentType
	}
	resp, err := lc.c.do(http.MethodPut, p, headers, body, http.StatusCreated, http.StatusNoContent)
	if err != nil {
		return false, err
	}
	defer discard(resp)
	return resp.StatusCode == http.StatusCreated, nil
}

// Delete removes a resource under the lock.
func (lc *LockedClient) Delete(p string) error {
	resp, err := lc.c.do(http.MethodDelete, p, map[string]string{"If": "(<" + lc.token + ">)"}, nil,
		http.StatusNoContent, http.StatusOK)
	if err != nil {
		return err
	}
	discard(resp)
	return nil
}

// SetProps sets properties under the lock.
func (lc *LockedClient) SetProps(p string, props ...davproto.Property) error {
	ops := make([]davproto.PatchOp, len(props))
	for i, prop := range props {
		ops[i] = davproto.PatchOp{Prop: prop}
	}
	headers := map[string]string{
		"Content-Type": `text/xml; charset="utf-8"`,
		"If":           "(<" + lc.token + ">)",
	}
	resp, err := lc.c.do("PROPPATCH", p, headers,
		bytes.NewReader(davproto.MarshalProppatch(ops)), http.StatusMultiStatus)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	ms, err := davproto.ParseMultistatus(resp.Body)
	if err != nil {
		return err
	}
	for _, r := range ms.Responses {
		for _, ps := range r.Propstats {
			if ps.Status != http.StatusOK {
				return fmt.Errorf("davclient: locked PROPPATCH %s rejected with %d", p, ps.Status)
			}
		}
	}
	return nil
}

// parseLockResponse extracts the active lock from a LOCK response.
func parseLockResponse(resp *http.Response) (davproto.ActiveLock, error) {
	ms, err := io.ReadAll(resp.Body)
	if err != nil {
		return davproto.ActiveLock{}, err
	}
	root, err := parseLockXML(ms)
	if err != nil {
		return davproto.ActiveLock{}, err
	}
	if tok := strings.Trim(resp.Header.Get("Lock-Token"), "<>"); tok != "" {
		root.Token = tok
	}
	return root, nil
}
