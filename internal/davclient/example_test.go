package davclient_test

import (
	"fmt"
	"net/http/httptest"

	"repro/internal/davclient"
	"repro/internal/davproto"
	"repro/internal/davserver"
	"repro/internal/store"
)

// Example shows the core loop of the open data architecture: store a
// document, attach self-describing metadata, and query it back —
// nothing here knows anything about chemistry or any other schema.
func Example() {
	srv := httptest.NewServer(davserver.NewHandler(store.NewMemStore(), nil))
	defer srv.Close()

	c, err := davclient.New(davclient.Config{BaseURL: srv.URL, Persistent: true})
	if err != nil {
		panic(err)
	}
	defer c.Close()

	if err := c.Mkcol("/results"); err != nil {
		panic(err)
	}
	if _, err := c.PutBytes("/results/run1.out", []byte("converged"), "text/plain"); err != nil {
		panic(err)
	}
	if err := c.SetProps("/results/run1.out",
		davproto.NewTextProperty("ecce:", "status", "complete")); err != nil {
		panic(err)
	}

	prop, ok, err := c.GetProp("/results/run1.out",
		davproto.NewTextProperty("ecce:", "status", "").Name())
	if err != nil {
		panic(err)
	}
	fmt.Println(ok, prop.Text())

	body, err := c.Get("/results/run1.out")
	if err != nil {
		panic(err)
	}
	fmt.Println(string(body))
	// Output:
	// true complete
	// converged
}
