package davclient

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy makes a Client retry idempotent requests on transient
// failures: network errors and 429/502/503/504 responses. Backoff is
// exponential with full jitter; a Retry-After header on a rejected
// response overrides the computed delay (capped at MaxDelay). A
// client-wide retry budget bounds the extra load a misbehaving server
// can induce.
//
// Only idempotent DAV methods are retried (OPTIONS, GET, HEAD, PUT,
// DELETE, PROPFIND, PROPPATCH, MKCOL, SEARCH, REPORT). LOCK — in
// particular a lock refresh — is never replayed: a duplicated refresh
// arriving after a competing steal could resurrect a lock the caller
// no longer holds. Requests whose body cannot be rewound (a non-seeking
// io.Reader) get a single attempt regardless of policy.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4; values below 2 disable retrying).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50 ms).
	BaseDelay time.Duration
	// MaxDelay caps both backoff and honored Retry-After waits
	// (default 2 s).
	MaxDelay time.Duration
	// Budget caps the total number of retries (not first attempts)
	// this client may spend over its lifetime; 0 means unlimited.
	Budget int64
	// RetryOn lists the HTTP statuses treated as transient (default
	// 429, 502, 503, 504).
	RetryOn []int
	// Seed feeds the jitter RNG so tests can pin delays.
	Seed int64
	// Sleep waits between attempts; nil uses a context-aware timer
	// sleep. Tests substitute an instant recorder.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryPolicy returns the production defaults described above.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	}
}

// retryableMethods are the idempotent methods the policy may replay.
var retryableMethods = map[string]bool{
	http.MethodOptions: true,
	http.MethodGet:     true,
	http.MethodHead:    true,
	http.MethodPut:     true,
	http.MethodDelete:  true,
	"PROPFIND":         true,
	"PROPPATCH":        true,
	"MKCOL":            true,
	"SEARCH":           true,
	"REPORT":           true,
}

// retrier is the per-client runtime state behind a RetryPolicy.
type retrier struct {
	policy  RetryPolicy
	mu      sync.Mutex
	rng     *rand.Rand
	spent   atomic.Int64 // retries consumed against the budget
	retries atomic.Int64 // total retries performed (metrics)
}

func newRetrier(p *RetryPolicy) *retrier {
	if p == nil {
		return nil
	}
	pol := *p
	if pol.MaxAttempts == 0 {
		pol.MaxAttempts = 4
	}
	if pol.BaseDelay <= 0 {
		pol.BaseDelay = 50 * time.Millisecond
	}
	if pol.MaxDelay <= 0 {
		pol.MaxDelay = 2 * time.Second
	}
	if len(pol.RetryOn) == 0 {
		pol.RetryOn = []int{
			http.StatusTooManyRequests,
			http.StatusBadGateway,
			http.StatusServiceUnavailable,
			http.StatusGatewayTimeout,
		}
	}
	if pol.Sleep == nil {
		pol.Sleep = ctxSleep
	}
	return &retrier{policy: pol, rng: rand.New(rand.NewSource(pol.Seed))}
}

// ctxSleep waits for d or until ctx is done.
func ctxSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// attemptsFor reports how many attempts a request may make.
func (rt *retrier) attemptsFor(method string, rewindable bool) int {
	if rt == nil || !retryableMethods[method] || !rewindable || rt.policy.MaxAttempts < 2 {
		return 1
	}
	return rt.policy.MaxAttempts
}

// retryableErr reports whether err is transient: a retryable status or
// a network-level failure that is not a context cancellation.
func (rt *retrier) retryableErr(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		for _, code := range rt.policy.RetryOn {
			if se.Code == code {
				return true
			}
		}
		return false
	}
	// Anything else from http.Client.Do is a transport failure
	// (refused, reset, broken pipe, unexpected EOF, ...).
	return true
}

// takeBudget consumes one retry from the budget, reporting false when
// the budget is exhausted.
func (rt *retrier) takeBudget() bool {
	if rt.policy.Budget > 0 && rt.spent.Add(1) > rt.policy.Budget {
		return false
	}
	rt.retries.Add(1)
	return true
}

// delay computes the wait before the given retry (1-based). A server
// Retry-After hint wins over computed backoff; both are capped at
// MaxDelay.
func (rt *retrier) delay(retry int, err error) time.Duration {
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > 0 {
		if se.RetryAfter > rt.policy.MaxDelay {
			return rt.policy.MaxDelay
		}
		return se.RetryAfter
	}
	ceil := rt.policy.BaseDelay << (retry - 1)
	if ceil > rt.policy.MaxDelay || ceil <= 0 {
		ceil = rt.policy.MaxDelay
	}
	// Full jitter: uniform in [0, ceil).
	rt.mu.Lock()
	d := time.Duration(rt.rng.Int63n(int64(ceil)))
	rt.mu.Unlock()
	return d
}

// rewinder captures how to reset a request body between attempts.
type rewinder struct {
	seeker io.Seeker
	start  int64
}

// newRewinder inspects body; ok is false when body exists but cannot
// be replayed.
func newRewinder(body io.Reader) (rw rewinder, ok bool) {
	if body == nil {
		return rewinder{}, true
	}
	s, isSeeker := body.(io.Seeker)
	if !isSeeker {
		return rewinder{}, false
	}
	off, err := s.Seek(0, io.SeekCurrent)
	if err != nil {
		return rewinder{}, false
	}
	return rewinder{seeker: s, start: off}, true
}

// rewind resets the body to its first-attempt position.
func (rw rewinder) rewind() error {
	if rw.seeker == nil {
		return nil
	}
	_, err := rw.seeker.Seek(rw.start, io.SeekStart)
	return err
}
