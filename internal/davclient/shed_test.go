package davclient

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// shedServer answers the first n requests with status and a Retry-After
// before succeeding, recording each request's X-Retry-Attempt header.
type shedServer struct {
	mu       sync.Mutex
	sheds    int
	status   int
	retrySec string
	attempts []string
}

func (s *shedServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.attempts = append(s.attempts, r.Header.Get(retryAttemptHeader))
		shed := s.sheds > 0
		if shed {
			s.sheds--
		}
		s.mu.Unlock()
		if shed {
			w.Header().Set("Retry-After", s.retrySec)
			w.WriteHeader(s.status)
			return
		}
		if r.Method == http.MethodPut {
			io.Copy(io.Discard, r.Body)
			w.WriteHeader(http.StatusCreated)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
}

func newShedClient(t *testing.T, srv *httptest.Server, sleeper *instantSleep, reg *obs.Registry) *Client {
	t.Helper()
	pol := DefaultRetryPolicy()
	pol.MaxDelay = 10 * time.Second
	pol.Sleep = sleeper.sleep
	c, err := New(Config{BaseURL: srv.URL, Retry: pol, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestShed429HonorsRetryAfterAndCounts(t *testing.T) {
	ss := &shedServer{sheds: 1, status: http.StatusTooManyRequests, retrySec: "3"}
	srv := httptest.NewServer(ss.handler())
	defer srv.Close()
	sleeper := &instantSleep{}
	reg := obs.NewRegistry()
	c := newShedClient(t, srv, sleeper, reg)

	if _, err := c.Get("/doc"); err != nil {
		t.Fatalf("Get after one shed: %v", err)
	}
	// The 429's Retry-After is the backoff, exactly as for 503.
	sleeper.mu.Lock()
	if len(sleeper.delays) != 1 || sleeper.delays[0] != 3*time.Second {
		t.Fatalf("delays = %v, want the server's 3s Retry-After", sleeper.delays)
	}
	sleeper.mu.Unlock()
	// The shed is counted apart from failures, and the retry announced
	// itself to the server.
	if got := reg.Counter("dav_client_shed_total", "", nil).Value(); got != 1 {
		t.Fatalf("dav_client_shed_total = %d, want 1", got)
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if len(ss.attempts) != 2 || ss.attempts[0] != "" || ss.attempts[1] != "2" {
		t.Fatalf("%s values = %q, want [\"\" \"2\"]", retryAttemptHeader, ss.attempts)
	}
}

func TestShed429NeverRetriesNonRewindableBody(t *testing.T) {
	ss := &shedServer{sheds: 10, status: http.StatusTooManyRequests, retrySec: "1"}
	srv := httptest.NewServer(ss.handler())
	defer srv.Close()
	c := newShedClient(t, srv, &instantSleep{}, nil)

	// io.LimitReader cannot seek: the body would be half-consumed on a
	// replay, so the client must surface the 429 after one attempt.
	body := io.LimitReader(strings.NewReader("data"), 4)
	_, err := c.Put("/doc", body, "")
	if !IsStatus(err, http.StatusTooManyRequests) {
		t.Fatalf("err = %v, want 429 StatusError", err)
	}
	if got := c.RequestCount(); got != 1 {
		t.Fatalf("RequestCount = %d, want 1 (no retry of unrewindable body)", got)
	}
}

func TestShed503WithRetryAfterCounts(t *testing.T) {
	ss := &shedServer{sheds: 1, status: http.StatusServiceUnavailable, retrySec: "2"}
	srv := httptest.NewServer(ss.handler())
	defer srv.Close()
	reg := obs.NewRegistry()
	c := newShedClient(t, srv, &instantSleep{}, reg)

	if _, err := c.Get("/doc"); err != nil {
		t.Fatalf("Get after one shed: %v", err)
	}
	if got := reg.Counter("dav_client_shed_total", "", nil).Value(); got != 1 {
		t.Fatalf("dav_client_shed_total = %d, want 1 for 503+Retry-After", got)
	}
}
