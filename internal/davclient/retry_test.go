package davclient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/davproto"
	"repro/internal/davserver"
	"repro/internal/store"
)

// instantSleep records requested backoffs without waiting, keeping the
// retry tests deterministic and sleep-free.
type instantSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (s *instantSleep) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.delays = append(s.delays, d)
	s.mu.Unlock()
	return ctx.Err()
}

// newChaosPair starts a DAV server and a client whose transport is
// wrapped in the given chaos injector.
func newChaosPair(t *testing.T, in *chaos.Injector, retry *RetryPolicy) *Client {
	t.Helper()
	srv := httptest.NewServer(davserver.NewHandler(store.NewMemStore(), nil))
	t.Cleanup(srv.Close)
	base := &http.Transport{MaxIdleConnsPerHost: 8}
	t.Cleanup(base.CloseIdleConnections)
	c, err := New(Config{
		BaseURL:   srv.URL,
		Retry:     retry,
		Transport: &chaos.Transport{Base: base, Injector: in},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// chaosWorkload runs the acceptance workload: iterations rounds of PUT
// then PROPFIND, returning how many client-visible errors occurred.
func chaosWorkload(t *testing.T, c *Client, iterations int) int {
	t.Helper()
	errs := 0
	for i := 0; i < iterations; i++ {
		p := fmt.Sprintf("/doc%03d", i%20)
		if _, err := c.PutBytes(p, []byte(strings.Repeat("x", 512)), "text/plain"); err != nil {
			errs++
			continue
		}
		if _, err := c.PropFindAll(p, davproto.Depth0); err != nil {
			errs++
		}
	}
	return errs
}

// TestChaosWorkloadSurvivesWithRetries is the acceptance criterion: a
// 200-iteration PUT+PROPFIND workload against a transport injecting
// 10 % connection resets and 5 % 503s completes with zero
// client-visible errors under the default RetryPolicy, and with
// errors when retries are disabled. Faults are seeded and sleeps are
// stubbed, so the test is deterministic.
func TestChaosWorkloadSurvivesWithRetries(t *testing.T) {
	plan := chaos.Plan{
		Seed:        7,
		Rates:       map[chaos.Kind]float64{chaos.Reset: 0.10, chaos.Err5xx: 0.05},
		StatusCodes: []int{503},
	}
	const iterations = 200

	sleeper := &instantSleep{}
	pol := DefaultRetryPolicy()
	pol.Seed = 1
	pol.Sleep = sleeper.sleep
	withRetries := newChaosPair(t, chaos.NewInjector(plan), pol)
	if errs := chaosWorkload(t, withRetries, iterations); errs != 0 {
		t.Fatalf("with retries: %d client-visible errors, want 0", errs)
	}
	if withRetries.RetryCount() == 0 {
		t.Fatal("with retries: no retries performed despite injected faults")
	}

	noRetries := newChaosPair(t, chaos.NewInjector(plan), nil)
	if errs := chaosWorkload(t, noRetries, iterations); errs == 0 {
		t.Fatal("without retries: workload saw no errors despite injected faults")
	}
	if noRetries.RetryCount() != 0 {
		t.Fatal("retry count must stay zero without a policy")
	}
}

func TestPutRetryRewindsBody(t *testing.T) {
	// The first attempt dies on an injected reset; the retry must
	// resend the body from its original offset, not the leftovers.
	var mu sync.Mutex
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, string(b))
		mu.Unlock()
		w.WriteHeader(http.StatusCreated)
	}))
	defer srv.Close()

	in := chaos.NewInjector(chaos.Plan{Nth: map[chaos.Kind]int{chaos.Reset: 1}, MaxFaults: 1})
	pol := DefaultRetryPolicy()
	pol.Sleep = (&instantSleep{}).sleep
	c, err := New(Config{BaseURL: srv.URL, Retry: pol, Transport: &chaos.Transport{Injector: in}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Start mid-reader: the rewind must return to this offset, not 0.
	r := strings.NewReader("skip-this-part|the real payload")
	if _, err := io.CopyN(io.Discard, r, int64(len("skip-this-part|"))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("/doc", r, "text/plain"); err != nil {
		t.Fatalf("Put with retry: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 1 || bodies[0] != "the real payload" {
		t.Fatalf("server saw bodies %q, want exactly one full payload", bodies)
	}
	if c.RetryCount() != 1 {
		t.Fatalf("RetryCount = %d, want 1", c.RetryCount())
	}
}

func TestNonSeekableBodyIsNotRetried(t *testing.T) {
	in := chaos.NewInjector(chaos.Plan{Nth: map[chaos.Kind]int{chaos.Reset: 1}})
	pol := DefaultRetryPolicy()
	pol.Sleep = (&instantSleep{}).sleep
	c := newChaosPair(t, in, pol)

	// An io.Reader that cannot seek: one attempt only.
	body := io.LimitReader(strings.NewReader("data"), 4)
	if _, err := c.Put("/doc", body, ""); err == nil {
		t.Fatal("expected the injected reset to surface")
	}
	if got := c.RequestCount(); got != 1 {
		t.Fatalf("RequestCount = %d, want 1 (no retry of unrewindable body)", got)
	}
}

func TestLockRefreshIsNeverRetried(t *testing.T) {
	in := chaos.NewInjector(chaos.Plan{Nth: map[chaos.Kind]int{chaos.Reset: 1}})
	pol := DefaultRetryPolicy()
	pol.Sleep = (&instantSleep{}).sleep
	c := newChaosPair(t, in, pol)

	_, err := c.RefreshLock("/doc", "opaquelocktoken:abc", time.Minute)
	if err == nil {
		t.Fatal("expected the injected reset to surface")
	}
	if got := c.RequestCount(); got != 1 {
		t.Fatalf("RequestCount = %d, want 1 (LOCK must not be replayed)", got)
	}
	if c.RetryCount() != 0 {
		t.Fatalf("RetryCount = %d, want 0", c.RetryCount())
	}
}

func TestRetryAfterHonored(t *testing.T) {
	in := chaos.NewInjector(chaos.Plan{
		Nth:           map[chaos.Kind]int{chaos.Err5xx: 1},
		MaxFaults:     1,
		StatusCodes:   []int{503},
		RetryAfterSec: 7,
	})
	sleeper := &instantSleep{}
	pol := DefaultRetryPolicy()
	pol.MaxDelay = 10 * time.Second
	pol.Sleep = sleeper.sleep
	c := newChaosPair(t, in, pol)

	if _, err := c.PutBytes("/doc", []byte("x"), ""); err != nil {
		t.Fatalf("Put: %v", err)
	}
	sleeper.mu.Lock()
	defer sleeper.mu.Unlock()
	if len(sleeper.delays) != 1 || sleeper.delays[0] != 7*time.Second {
		t.Fatalf("delays = %v, want exactly the server's 7s Retry-After", sleeper.delays)
	}
}

func TestRetryAfterCappedAtMaxDelay(t *testing.T) {
	in := chaos.NewInjector(chaos.Plan{
		Nth:           map[chaos.Kind]int{chaos.Err5xx: 1},
		MaxFaults:     1,
		StatusCodes:   []int{503},
		RetryAfterSec: 3600,
	})
	sleeper := &instantSleep{}
	pol := DefaultRetryPolicy() // MaxDelay 2s
	pol.Sleep = sleeper.sleep
	c := newChaosPair(t, in, pol)
	if _, err := c.PutBytes("/doc", []byte("x"), ""); err != nil {
		t.Fatalf("Put: %v", err)
	}
	sleeper.mu.Lock()
	defer sleeper.mu.Unlock()
	if len(sleeper.delays) != 1 || sleeper.delays[0] != 2*time.Second {
		t.Fatalf("delays = %v, want the 2s MaxDelay cap", sleeper.delays)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	in := chaos.NewInjector(chaos.Plan{Rates: map[chaos.Kind]float64{chaos.Reset: 1}})
	pol := DefaultRetryPolicy()
	pol.Budget = 2
	pol.Sleep = (&instantSleep{}).sleep
	c := newChaosPair(t, in, pol)

	// Every call resets: the first request burns the whole budget
	// (1 try + 2 retries), the second gets a single attempt.
	if _, err := c.Get("/a"); err == nil {
		t.Fatal("expected failure")
	}
	if got := c.RequestCount(); got != 3 {
		t.Fatalf("RequestCount after first = %d, want 3", got)
	}
	if _, err := c.Get("/b"); err == nil {
		t.Fatal("expected failure")
	}
	if got := c.RequestCount(); got != 4 {
		t.Fatalf("RequestCount after second = %d, want 4 (budget spent)", got)
	}
}

func TestStatusErrorWrapping(t *testing.T) {
	base := &StatusError{Method: "GET", Path: "/x", Code: 404}
	wrapped := fmt.Errorf("giving up after 4 attempts: %w", base)
	if !IsStatus(wrapped, 404) {
		t.Fatal("IsStatus must see through wrapping")
	}
	if IsStatus(wrapped, 503) {
		t.Fatal("IsStatus matched the wrong code")
	}
	if !errors.Is(wrapped, &StatusError{Code: 404}) {
		t.Fatal("errors.Is must match StatusError by code")
	}
	var se *StatusError
	if !errors.As(wrapped, &se) || se.Path != "/x" {
		t.Fatalf("errors.As lost the original error: %+v", se)
	}
}

func TestWithContextCancelsRetries(t *testing.T) {
	in := chaos.NewInjector(chaos.Plan{Rates: map[chaos.Kind]float64{chaos.Reset: 1}})
	pol := DefaultRetryPolicy() // real ctx-aware sleep: must abort instantly
	c := newChaosPair(t, in, pol)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := c.WithContext(ctx).Get("/doc")
	if err == nil {
		t.Fatal("expected failure under cancelled context")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled request took %v; backoff ignored cancellation", elapsed)
	}
	// The parent client is unaffected by the child's context.
	if c.ctx != nil {
		t.Fatal("WithContext mutated the parent client")
	}
}

func TestTransientStatusRetriedToSuccess(t *testing.T) {
	// A two-503 burst followed by recovery: the default policy (4
	// attempts) absorbs it.
	in := chaos.NewInjector(chaos.Plan{
		Rates:       map[chaos.Kind]float64{chaos.Err5xx: 1},
		MaxFaults:   2,
		StatusCodes: []int{503, 502},
	})
	pol := DefaultRetryPolicy()
	pol.Sleep = (&instantSleep{}).sleep
	c := newChaosPair(t, in, pol)
	if _, err := c.PutBytes("/doc", []byte("x"), ""); err != nil {
		t.Fatalf("Put through 5xx burst: %v", err)
	}
	if got := c.RequestCount(); got != 3 {
		t.Fatalf("RequestCount = %d, want 3 (503, 502, success)", got)
	}
}
