package davclient

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/davproto"
)

func newCachingPair(t *testing.T, maxBytes int) *CachingClient {
	t.Helper()
	c := newPair(t, Config{Persistent: true})
	return NewCaching(c, maxBytes)
}

func TestCacheHitAfterRevalidation(t *testing.T) {
	cc := newCachingPair(t, 0)
	cc.PutBytes("/doc", []byte("version one"), "")

	// First read: miss, full fetch.
	b, err := cc.Get("/doc")
	if err != nil || string(b) != "version one" {
		t.Fatalf("Get = (%q, %v)", b, err)
	}
	// Second read: 304 revalidation, served from cache.
	b, err = cc.Get("/doc")
	if err != nil || string(b) != "version one" {
		t.Fatalf("cached Get = (%q, %v)", b, err)
	}
	hits, misses, _ := cc.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = hits %d misses %d", hits, misses)
	}
}

func TestCacheSeesForeignWrites(t *testing.T) {
	// Unlike the OODB's cache-forward staleness, ETag revalidation
	// notices writes made by OTHER clients.
	cc := newCachingPair(t, 0)
	cc.PutBytes("/shared", []byte("old"), "")
	if _, err := cc.Get("/shared"); err != nil {
		t.Fatal(err)
	}
	// Another client updates the document behind our back.
	other, err := New(Config{BaseURL: cc.Client.base.String(), Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, err := other.PutBytes("/shared", []byte("new contents"), ""); err != nil {
		t.Fatal(err)
	}
	b, err := cc.Get("/shared")
	if err != nil || string(b) != "new contents" {
		t.Fatalf("Get after foreign write = (%q, %v)", b, err)
	}
	hits, misses, _ := cc.CacheStats()
	if hits != 0 || misses != 2 {
		t.Fatalf("stats = hits %d misses %d (expected revalidation miss)", hits, misses)
	}
}

func TestCacheInvalidationOnLocalWrites(t *testing.T) {
	cc := newCachingPair(t, 0)
	cc.PutBytes("/w", []byte("v1"), "")
	cc.Get("/w")
	// A local Put invalidates; the next Get must fetch the new body.
	cc.PutBytes("/w", []byte("v2"), "")
	b, _ := cc.Get("/w")
	if string(b) != "v2" {
		t.Fatalf("Get after local write = %q", b)
	}
	_, _, inv := cc.CacheStats()
	if inv != 1 {
		t.Fatalf("invalidates = %d", inv)
	}
}

func TestCacheDeleteInvalidatesSubtree(t *testing.T) {
	cc := newCachingPair(t, 0)
	cc.Mkcol("/tree")
	cc.PutBytes("/tree/a", []byte("a"), "")
	cc.PutBytes("/tree/b", []byte("b"), "")
	cc.Get("/tree/a")
	cc.Get("/tree/b")
	if cc.CachedBytes() == 0 {
		t.Fatal("nothing cached")
	}
	if err := cc.Delete("/tree"); err != nil {
		t.Fatal(err)
	}
	if cc.CachedBytes() != 0 {
		t.Fatalf("cache not emptied after subtree delete: %d bytes", cc.CachedBytes())
	}
}

func TestCacheMoveAndCopyInvalidate(t *testing.T) {
	cc := newCachingPair(t, 0)
	cc.PutBytes("/src", []byte("payload"), "")
	cc.PutBytes("/dst", []byte("old dst"), "")
	cc.Get("/src")
	cc.Get("/dst")
	if err := cc.Copy("/src", "/dst", davproto.DepthInfinity, true); err != nil {
		t.Fatal(err)
	}
	b, _ := cc.Get("/dst")
	if string(b) != "payload" {
		t.Fatalf("dst after copy = %q", b)
	}
	if err := cc.Move("/dst", "/moved", false); err != nil {
		t.Fatal(err)
	}
	b, _ = cc.Get("/moved")
	if string(b) != "payload" {
		t.Fatalf("moved = %q", b)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	cc := newCachingPair(t, 3000)
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("/d%d", i)
		cc.PutBytes(p, bytes.Repeat([]byte{byte('a' + i)}, 1000), "")
		if _, err := cc.Get(p); err != nil {
			t.Fatal(err)
		}
	}
	if cc.CachedBytes() > 3000 {
		t.Fatalf("cache over budget: %d", cc.CachedBytes())
	}
	// The most recent entries are cached (hit); the oldest are not
	// (miss on re-read).
	_, missesBefore, _ := cc.CacheStats()
	cc.Get("/d4") // should revalidate from cache
	hits, _, _ := cc.CacheStats()
	if hits == 0 {
		t.Fatal("most recent entry evicted unexpectedly")
	}
	cc.Get("/d0") // long evicted
	_, missesAfter, _ := cc.CacheStats()
	if missesAfter != missesBefore+1 {
		t.Fatalf("expected a miss for evicted entry: %d -> %d", missesBefore, missesAfter)
	}
}

func TestCacheOversizeBodiesBypass(t *testing.T) {
	cc := newCachingPair(t, 100)
	big := bytes.Repeat([]byte{'x'}, 1000)
	cc.PutBytes("/big", big, "")
	cc.Get("/big")
	if cc.CachedBytes() != 0 {
		t.Fatalf("oversize body cached: %d", cc.CachedBytes())
	}
	// Still correct, just uncached.
	b, err := cc.Get("/big")
	if err != nil || !bytes.Equal(b, big) {
		t.Fatalf("oversize Get = (%d bytes, %v)", len(b), err)
	}
}

func TestCacheGetTo(t *testing.T) {
	cc := newCachingPair(t, 0)
	cc.PutBytes("/s", []byte("stream me"), "")
	var buf bytes.Buffer
	n, err := cc.GetTo("/s", &buf)
	if err != nil || n != 9 || buf.String() != "stream me" {
		t.Fatalf("GetTo = (%d, %v, %q)", n, err, buf.String())
	}
}
