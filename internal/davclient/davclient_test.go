package davclient

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/auth"
	"repro/internal/davproto"
	"repro/internal/davserver"
	"repro/internal/store"
)

// newPair spins up an in-memory DAV server and a client against it.
func newPair(t *testing.T, cfg Config) *Client {
	t.Helper()
	h := davserver.NewHandler(store.NewMemStore(), nil)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	cfg.BaseURL = srv.URL
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// eachParser runs the test under both multistatus parsers.
func eachParser(t *testing.T, fn func(t *testing.T, c *Client)) {
	t.Helper()
	t.Run("DOM", func(t *testing.T) { fn(t, newPair(t, Config{Parser: ParserDOM, Persistent: true})) })
	t.Run("SAX", func(t *testing.T) { fn(t, newPair(t, Config{Parser: ParserSAX, Persistent: true})) })
}

func eccName(local string) xml.Name { return xml.Name{Space: "ecce:", Local: local} }

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{BaseURL: "not a url ::"}); err == nil {
		t.Fatal("bad URL accepted")
	}
	if _, err := New(Config{BaseURL: "/relative"}); err == nil {
		t.Fatal("relative URL accepted")
	}
}

func TestOptions(t *testing.T) {
	c := newPair(t, Config{})
	dav, err := c.Options("/")
	if err != nil || !strings.HasPrefix(dav, "1,2") {
		t.Fatalf("Options = (%q, %v)", dav, err)
	}
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	c := newPair(t, Config{})
	created, err := c.PutBytes("/doc.txt", []byte("hello"), "text/plain")
	if err != nil || !created {
		t.Fatalf("Put = (%v, %v)", created, err)
	}
	created, err = c.PutBytes("/doc.txt", []byte("bye"), "")
	if err != nil || created {
		t.Fatalf("replace Put = (%v, %v)", created, err)
	}
	body, err := c.Get("/doc.txt")
	if err != nil || string(body) != "bye" {
		t.Fatalf("Get = (%q, %v)", body, err)
	}
	ok, err := c.Exists("/doc.txt")
	if err != nil || !ok {
		t.Fatalf("Exists = (%v, %v)", ok, err)
	}
	if err := c.Delete("/doc.txt"); err != nil {
		t.Fatal(err)
	}
	ok, err = c.Exists("/doc.txt")
	if err != nil || ok {
		t.Fatalf("Exists after delete = (%v, %v)", ok, err)
	}
	if _, err := c.Get("/doc.txt"); !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("Get deleted = %v", err)
	}
}

func TestMkcolAll(t *testing.T) {
	c := newPair(t, Config{})
	if err := c.MkcolAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a", "/a/b", "/a/b/c"} {
		if ok, _ := c.Exists(p); !ok {
			t.Fatalf("%s missing", p)
		}
	}
	// Idempotent.
	if err := c.MkcolAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
}

func TestSetGetProps(t *testing.T) {
	eachParser(t, func(t *testing.T, c *Client) {
		c.PutBytes("/m.xyz", []byte("geom"), "")
		err := c.SetProps("/m.xyz",
			davproto.NewTextProperty("ecce:", "formula", "UO2H30O15"),
			davproto.NewTextProperty("ecce:", "charge", "2"))
		if err != nil {
			t.Fatal(err)
		}
		p, ok, err := c.GetProp("/m.xyz", eccName("formula"))
		if err != nil || !ok || p.Text() != "UO2H30O15" {
			t.Fatalf("GetProp = (%v, %v, %v)", p, ok, err)
		}
		_, ok, err = c.GetProp("/m.xyz", eccName("nothere"))
		if err != nil || ok {
			t.Fatalf("missing prop = (%v, %v)", ok, err)
		}
		if err := c.RemoveProps("/m.xyz", eccName("charge")); err != nil {
			t.Fatal(err)
		}
		_, ok, _ = c.GetProp("/m.xyz", eccName("charge"))
		if ok {
			t.Fatal("removed prop still present")
		}
	})
}

func TestComplexPropertyValueRoundTrip(t *testing.T) {
	eachParser(t, func(t *testing.T, c *Client) {
		c.PutBytes("/mol", []byte("x"), "")
		// Build <ecce:geometry>center<ecce:atom sym="U"/><ecce:atom sym="O"/></ecce:geometry>
		prop := davproto.NewTextProperty("ecce:", "geometry", "")
		a1 := prop.XML.Add("ecce:", "atom")
		a1.SetAttr("", "sym", "U")
		prop.XML.Text = "center"
		a2 := prop.XML.Add("ecce:", "atom")
		a2.SetAttr("", "sym", "O")
		if err := c.SetProps("/mol", prop); err != nil {
			t.Fatal(err)
		}
		got, ok, err := c.GetProp("/mol", eccName("geometry"))
		if err != nil || !ok {
			t.Fatalf("GetProp: ok=%v err=%v", ok, err)
		}
		atoms := got.XML.FindAll("ecce:", "atom")
		if len(atoms) != 2 {
			t.Fatalf("atoms = %d", len(atoms))
		}
		if sym, _ := atoms[0].Attr("", "sym"); sym != "U" {
			t.Fatalf("atom[0] sym = %q", sym)
		}
		if !strings.Contains(got.XML.TextContent(), "center") {
			t.Fatalf("mixed text lost: %q", got.XML.TextContent())
		}
	})
}

func TestPropFindDepth1(t *testing.T) {
	eachParser(t, func(t *testing.T, c *Client) {
		c.Mkcol("/col")
		for i := 0; i < 5; i++ {
			p := fmt.Sprintf("/col/doc%d", i)
			c.PutBytes(p, []byte("x"), "")
			c.SetProps(p, davproto.NewTextProperty("ecce:", "idx", fmt.Sprint(i)))
		}
		ms, err := c.PropFindSelected("/col", davproto.Depth1, eccName("idx"))
		if err != nil {
			t.Fatal(err)
		}
		if len(ms.Responses) != 6 {
			t.Fatalf("responses = %d, want 6", len(ms.Responses))
		}
		found := 0
		for _, r := range ms.Responses {
			if p, ok := davproto.PropsByName(r.Propstats)[eccName("idx")]; ok {
				found++
				if p.Text() == "" {
					t.Fatalf("empty idx on %s", r.Href)
				}
			}
		}
		if found != 5 {
			t.Fatalf("found idx on %d resources, want 5", found)
		}
	})
}

func TestPropFindNames(t *testing.T) {
	eachParser(t, func(t *testing.T, c *Client) {
		c.PutBytes("/n", []byte("x"), "")
		c.SetProps("/n", davproto.NewTextProperty("ecce:", "alpha", "1"))
		ms, err := c.PropFindNames("/n", davproto.Depth0)
		if err != nil {
			t.Fatal(err)
		}
		props := davproto.PropsByName(ms.Responses[0].Propstats)
		if _, ok := props[eccName("alpha")]; !ok {
			t.Fatal("propname missing alpha")
		}
	})
}

func TestParserEquivalence(t *testing.T) {
	// DOM and SAX must produce identical structures for the same
	// server state.
	h := davserver.NewHandler(store.NewMemStore(), nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	dom, _ := New(Config{BaseURL: srv.URL, Parser: ParserDOM})
	sax, _ := New(Config{BaseURL: srv.URL, Parser: ParserSAX})
	defer dom.Close()
	defer sax.Close()

	dom.Mkcol("/eq")
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("/eq/d%d", i)
		dom.PutBytes(p, bytes.Repeat([]byte{'x'}, i*10), "")
		dom.SetProps(p,
			davproto.NewTextProperty("ecce:", "idx", fmt.Sprint(i)),
			davproto.NewTextProperty("ecce:", "sq", fmt.Sprint(i*i)))
	}
	msDOM, err := dom.PropFindSelected("/eq", davproto.Depth1, eccName("idx"), eccName("sq"), eccName("absent"))
	if err != nil {
		t.Fatal(err)
	}
	msSAX, err := sax.PropFindSelected("/eq", davproto.Depth1, eccName("idx"), eccName("sq"), eccName("absent"))
	if err != nil {
		t.Fatal(err)
	}
	if len(msDOM.Responses) != len(msSAX.Responses) {
		t.Fatalf("response counts differ: %d vs %d", len(msDOM.Responses), len(msSAX.Responses))
	}
	for i := range msDOM.Responses {
		d, s := msDOM.Responses[i], msSAX.Responses[i]
		if d.Href != s.Href || len(d.Propstats) != len(s.Propstats) {
			t.Fatalf("response %d differs: %+v vs %+v", i, d, s)
		}
		for j := range d.Propstats {
			dp, sp := d.Propstats[j], s.Propstats[j]
			if dp.Status != sp.Status || len(dp.Props) != len(sp.Props) {
				t.Fatalf("propstat %d/%d differs", i, j)
			}
			for k := range dp.Props {
				if dp.Props[k].Name() != sp.Props[k].Name() ||
					strings.TrimSpace(dp.Props[k].Text()) != strings.TrimSpace(sp.Props[k].Text()) {
					t.Fatalf("prop %v differs: %q vs %q",
						dp.Props[k].Name(), dp.Props[k].Text(), sp.Props[k].Text())
				}
			}
		}
	}
}

func TestCopyMove(t *testing.T) {
	c := newPair(t, Config{})
	c.Mkcol("/src")
	c.PutBytes("/src/a", []byte("1"), "")
	if err := c.Copy("/src", "/cp", davproto.DepthInfinity, false); err != nil {
		t.Fatal(err)
	}
	if b, _ := c.Get("/cp/a"); string(b) != "1" {
		t.Fatal("copy lost body")
	}
	// Copy without overwrite onto an existing target fails with 412.
	if err := c.Copy("/src", "/cp", davproto.DepthInfinity, false); !IsStatus(err, http.StatusPreconditionFailed) {
		t.Fatalf("copy no-overwrite = %v", err)
	}
	if err := c.Move("/src", "/mv", false); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Exists("/src"); ok {
		t.Fatal("move left source")
	}
	if b, _ := c.Get("/mv/a"); string(b) != "1" {
		t.Fatal("move lost body")
	}
}

func TestLockWorkflow(t *testing.T) {
	c := newPair(t, Config{})
	c.PutBytes("/locked", []byte("v1"), "")
	al, err := c.Lock("/locked", davproto.LockExclusive, davproto.Depth0, "tester", 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if al.Token == "" || al.Timeout != 60*time.Second {
		t.Fatalf("activelock = %+v", al)
	}
	// Unauthorized write fails.
	if _, err := c.PutBytes("/locked", []byte("v2"), ""); !IsStatus(err, http.StatusLocked) {
		t.Fatalf("unauthorized put = %v", err)
	}
	// Authorized via LockedClient.
	lc := c.WithIf(al.Token)
	if _, err := lc.Put("/locked", strings.NewReader("v2"), ""); err != nil {
		t.Fatal(err)
	}
	if err := lc.SetProps("/locked", davproto.NewTextProperty("ecce:", "k", "v")); err != nil {
		t.Fatal(err)
	}
	// Refresh.
	al2, err := c.RefreshLock("/locked", al.Token, 120*time.Second)
	if err != nil || al2.Timeout != 120*time.Second {
		t.Fatalf("refresh = (%+v, %v)", al2, err)
	}
	// Unlock.
	if err := c.Unlock("/locked", al.Token); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutBytes("/locked", []byte("v3"), ""); err != nil {
		t.Fatalf("put after unlock: %v", err)
	}
}

func TestStatLiveProps(t *testing.T) {
	c := newPair(t, Config{})
	c.PutBytes("/s.txt", []byte("12345"), "text/plain")
	props, err := c.Stat("/s.txt")
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := props[davproto.PropGetContentLength]; !ok || p.Text() != "5" {
		t.Fatalf("getcontentlength = %+v, ok=%v", p, ok)
	}
}

func TestBasicAuthClient(t *testing.T) {
	users := auth.NewUsers()
	users.Set("eric", "pw")
	h := auth.Basic(davserver.NewHandler(store.NewMemStore(), nil), "Ecce", users)
	srv := httptest.NewServer(h)
	defer srv.Close()

	good, _ := New(Config{BaseURL: srv.URL, Username: "eric", Password: "pw"})
	defer good.Close()
	if _, err := good.PutBytes("/ok", []byte("x"), ""); err != nil {
		t.Fatalf("authenticated put: %v", err)
	}
	bad, _ := New(Config{BaseURL: srv.URL, Username: "eric", Password: "nope"})
	defer bad.Close()
	if _, err := bad.PutBytes("/no", []byte("x"), ""); !IsStatus(err, http.StatusUnauthorized) {
		t.Fatalf("bad credentials = %v", err)
	}
}

func TestRequestCountAndConnectionPolicies(t *testing.T) {
	for _, persistent := range []bool{true, false} {
		c := newPair(t, Config{Persistent: persistent})
		c.PutBytes("/r1", []byte("x"), "")
		c.Get("/r1")
		c.Delete("/r1")
		if got := c.RequestCount(); got != 3 {
			t.Fatalf("persistent=%v RequestCount = %d, want 3", persistent, got)
		}
	}
}

func TestBaseURLWithPathPrefix(t *testing.T) {
	h := davserver.NewHandler(store.NewMemStore(), &davserver.Options{Prefix: "/dav"})
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, err := New(Config{BaseURL: srv.URL + "/dav/"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.PutBytes("/doc", []byte("x"), ""); err != nil {
		t.Fatal(err)
	}
	b, err := c.Get("/doc")
	if err != nil || string(b) != "x" {
		t.Fatalf("prefixed Get = (%q, %v)", b, err)
	}
}

// TestQuickSAXParserMatchesDOM feeds both parsers random multistatus
// documents and requires identical results.
func TestQuickSAXParserMatchesDOM(t *testing.T) {
	statuses := []int{200, 404, 423}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ms davproto.Multistatus
		for i := rng.Intn(4) + 1; i > 0; i-- {
			r := davproto.Response{Href: fmt.Sprintf("/r%d", rng.Intn(100))}
			for j := rng.Intn(3); j > 0; j-- {
				ps := davproto.Propstat{Status: statuses[rng.Intn(len(statuses))]}
				for k := rng.Intn(3) + 1; k > 0; k-- {
					p := davproto.NewTextProperty("ecce:", fmt.Sprintf("p%d", k), fmt.Sprintf("v%d", rng.Intn(50)))
					if rng.Intn(3) == 0 {
						p.XML.Add("ecce:", "child").Text = "nested"
					}
					ps.Props = append(ps.Props, p)
				}
				r.Propstats = append(r.Propstats, ps)
			}
			if len(r.Propstats) == 0 {
				r.Status = statuses[rng.Intn(len(statuses))]
			}
			ms.Responses = append(ms.Responses, r)
		}
		doc := ms.Marshal()
		gotDOM, err1 := davproto.ParseMultistatus(bytes.NewReader(doc))
		gotSAX, err2 := parseMultistatusSAX(bytes.NewReader(doc))
		if err1 != nil || err2 != nil {
			t.Logf("parse errors: %v / %v", err1, err2)
			return false
		}
		return multistatusEqual(gotDOM, gotSAX)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func multistatusEqual(a, b davproto.Multistatus) bool {
	if len(a.Responses) != len(b.Responses) {
		return false
	}
	for i := range a.Responses {
		ra, rb := a.Responses[i], b.Responses[i]
		if ra.Href != rb.Href || ra.Status != rb.Status || len(ra.Propstats) != len(rb.Propstats) {
			return false
		}
		for j := range ra.Propstats {
			pa, pb := ra.Propstats[j], rb.Propstats[j]
			if pa.Status != pb.Status || len(pa.Props) != len(pb.Props) {
				return false
			}
			for k := range pa.Props {
				if pa.Props[k].Name() != pb.Props[k].Name() {
					return false
				}
				if strings.TrimSpace(pa.Props[k].Text()) != strings.TrimSpace(pb.Props[k].Text()) {
					return false
				}
				if !reflect.DeepEqual(
					childNames(pa.Props[k]), childNames(pb.Props[k])) {
					return false
				}
			}
		}
	}
	return true
}

func childNames(p davproto.Property) []xml.Name {
	var names []xml.Name
	for _, c := range p.XML.Children {
		names = append(names, c.Name)
	}
	return names
}
