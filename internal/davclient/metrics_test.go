package davclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// instantPolicy retries immediately so tests don't sleep.
func instantPolicy() *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts: 4,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
}

func TestClientMetricsCountRetries(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	c, err := New(Config{BaseURL: srv.URL, Retry: instantPolicy(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Get("/x"); err != nil {
		t.Fatalf("Get after two 503s: %v", err)
	}

	if got := reg.Counter("davclient_requests_total", "", nil).Value(); got != 3 {
		t.Errorf("davclient_requests_total = %d, want 3 (two failures + success)", got)
	}
	if got := reg.Counter("davclient_retries_total", "", nil).Value(); got != 2 {
		t.Errorf("davclient_retries_total = %d, want 2", got)
	}
	if got := reg.Histogram("davclient_backoff_seconds", "", nil, obs.DefBuckets).Count(); got != 2 {
		t.Errorf("davclient_backoff_seconds count = %d, want 2 sleeps", got)
	}
	if got := reg.Counter("davclient_retry_budget_exhausted_total", "", nil).Value(); got != 0 {
		t.Errorf("budget exhausted = %d, want 0", got)
	}
}

func TestClientMetricsBudgetExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	pol := instantPolicy()
	pol.Budget = 1
	reg := obs.NewRegistry()
	c, err := New(Config{BaseURL: srv.URL, Retry: pol, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Get("/x"); err == nil {
		t.Fatal("expected failure against an always-503 server")
	}
	if got := reg.Counter("davclient_retry_budget_exhausted_total", "", nil).Value(); got != 1 {
		t.Errorf("davclient_retry_budget_exhausted_total = %d, want 1", got)
	}
	if got := reg.Counter("davclient_retries_total", "", nil).Value(); got != 1 {
		t.Errorf("davclient_retries_total = %d, want 1 (the budgeted retry)", got)
	}
}

func TestClientMetricsNilRegistryIsFree(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c, err := New(Config{BaseURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Get("/x"); err != nil {
		t.Fatalf("unmetered client broken: %v", err)
	}
}
