package davclient

import (
	"fmt"
	"testing"
)

func TestVersionControlWorkflow(t *testing.T) {
	c := newPair(t, Config{Persistent: true})
	c.PutBytes("/deck.nw", []byte("geometry v1"), "")
	if err := c.VersionControl("/deck.nw"); err != nil {
		t.Fatal(err)
	}
	// Three edits → versions 2..4.
	for i := 2; i <= 4; i++ {
		if _, err := c.PutBytes("/deck.nw", []byte(fmt.Sprintf("geometry v%d", i)), ""); err != nil {
			t.Fatal(err)
		}
	}
	versions, err := c.VersionTree("/deck.nw")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 4 {
		t.Fatalf("versions = %d, want 4", len(versions))
	}
	for i, v := range versions {
		if v.Name != fmt.Sprint(i+1) {
			t.Fatalf("version %d name = %q", i, v.Name)
		}
		body, err := c.Get(v.Href)
		if err != nil {
			t.Fatalf("GET %s: %v", v.Href, err)
		}
		want := fmt.Sprintf("geometry v%d", i+1)
		if string(body) != want {
			t.Fatalf("version %d body = %q, want %q", i+1, body, want)
		}
		if v.Size != int64(len(want)) {
			t.Fatalf("version %d size = %d", i+1, v.Size)
		}
	}
}

func TestVersionTreeOnUncontrolled(t *testing.T) {
	c := newPair(t, Config{})
	c.PutBytes("/plain", []byte("x"), "")
	if _, err := c.VersionTree("/plain"); err == nil {
		t.Fatal("VersionTree on uncontrolled resource should fail")
	}
	if err := c.VersionControl("/missing"); err == nil {
		t.Fatal("VersionControl on missing resource should fail")
	}
}

func TestVersionControlIdempotentClient(t *testing.T) {
	c := newPair(t, Config{})
	c.PutBytes("/v", []byte("x"), "")
	if err := c.VersionControl("/v"); err != nil {
		t.Fatal(err)
	}
	if err := c.VersionControl("/v"); err != nil {
		t.Fatal(err)
	}
	versions, err := c.VersionTree("/v")
	if err != nil || len(versions) != 1 {
		t.Fatalf("versions = (%v, %v)", versions, err)
	}
}
