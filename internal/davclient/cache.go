package davclient

import (
	"bytes"
	"container/list"
	"io"
	"net/http"
	"sync"

	"repro/internal/davproto"
)

// CachingClient adds the client-side cache the paper anticipated ("it
// would be relatively straightforward to add a cache to the layered
// client architecture of Figure 2"). Document bodies are cached by
// path and revalidated with ETags (If-None-Match), so a cache hit
// still costs one round trip but no body transfer or re-parse; local
// writes through this client invalidate their entries eagerly.
//
// The cache is bounded by total body bytes with LRU eviction.
type CachingClient struct {
	*Client

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
	bytes   int
	maxByte int

	hits        int64 // served after a 304 revalidation
	misses      int64 // full fetches
	invalidates int64
}

type cacheEntry struct {
	path string
	etag string
	body []byte
}

// DefaultCacheBytes bounds the cache at 64 MiB unless configured.
const DefaultCacheBytes = 64 << 20

// NewCaching wraps c with a body cache of at most maxBytes (0 uses
// DefaultCacheBytes).
func NewCaching(c *Client, maxBytes int) *CachingClient {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &CachingClient{
		Client:  c,
		entries: map[string]*list.Element{},
		lru:     list.New(),
		maxByte: maxBytes,
	}
}

// CacheStats reports hit/miss/invalidation counts.
func (cc *CachingClient) CacheStats() (hits, misses, invalidates int64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.hits, cc.misses, cc.invalidates
}

// CachedBytes reports the current cache footprint.
func (cc *CachingClient) CachedBytes() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.bytes
}

// lookup returns a copy of the cached entry for p, if any.
func (cc *CachingClient) lookup(p string) (etag string, body []byte, ok bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	el, ok := cc.entries[p]
	if !ok {
		return "", nil, false
	}
	cc.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.etag, e.body, true
}

// storeEntry caches a body, evicting LRU entries to stay within the
// byte budget. Bodies larger than the budget are not cached.
func (cc *CachingClient) storeEntry(p, etag string, body []byte) {
	if etag == "" || len(body) > cc.maxByte {
		return
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el, ok := cc.entries[p]; ok {
		old := el.Value.(*cacheEntry)
		cc.bytes -= len(old.body)
		cc.lru.Remove(el)
		delete(cc.entries, p)
	}
	for cc.bytes+len(body) > cc.maxByte && cc.lru.Len() > 0 {
		back := cc.lru.Back()
		old := back.Value.(*cacheEntry)
		cc.bytes -= len(old.body)
		cc.lru.Remove(back)
		delete(cc.entries, old.path)
	}
	e := &cacheEntry{path: p, etag: etag, body: append([]byte(nil), body...)}
	cc.entries[p] = cc.lru.PushFront(e)
	cc.bytes += len(body)
}

// invalidate drops the entry for p (and, for collection operations,
// every entry under p).
func (cc *CachingClient) invalidate(p string, subtree bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	drop := func(key string) {
		if el, ok := cc.entries[key]; ok {
			e := el.Value.(*cacheEntry)
			cc.bytes -= len(e.body)
			cc.lru.Remove(el)
			delete(cc.entries, key)
			cc.invalidates++
		}
	}
	drop(p)
	if subtree {
		prefix := p + "/"
		for key := range cc.entries {
			if len(key) > len(prefix) && key[:len(prefix)] == prefix {
				drop(key)
			}
		}
	}
}

// Get fetches a document body, revalidating any cached copy with
// If-None-Match.
func (cc *CachingClient) Get(p string) ([]byte, error) {
	etag, cached, ok := cc.lookup(p)
	headers := map[string]string{}
	if ok {
		headers["If-None-Match"] = etag
	}
	resp, err := cc.do(http.MethodGet, p, headers, nil, http.StatusOK, http.StatusNotModified)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		io.Copy(io.Discard, resp.Body)
		cc.mu.Lock()
		cc.hits++
		cc.mu.Unlock()
		return append([]byte(nil), cached...), nil
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	cc.misses++
	cc.mu.Unlock()
	cc.storeEntry(p, resp.Header.Get("ETag"), body)
	return body, nil
}

// GetTo streams through the cache.
func (cc *CachingClient) GetTo(p string, w io.Writer) (int64, error) {
	body, err := cc.Get(p)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(w, bytes.NewReader(body))
	return n, err
}

// Put writes through and invalidates the cached body.
func (cc *CachingClient) Put(p string, body io.Reader, contentType string) (bool, error) {
	created, err := cc.Client.Put(p, body, contentType)
	if err == nil {
		cc.invalidate(p, false)
	}
	return created, err
}

// PutBytes writes through and invalidates.
func (cc *CachingClient) PutBytes(p string, body []byte, contentType string) (bool, error) {
	return cc.Put(p, bytes.NewReader(body), contentType)
}

// Delete removes the resource and its cached subtree.
func (cc *CachingClient) Delete(p string) error {
	err := cc.Client.Delete(p)
	if err == nil {
		cc.invalidate(p, true)
	}
	return err
}

// Move invalidates both ends.
func (cc *CachingClient) Move(src, dst string, overwrite bool) error {
	err := cc.Client.Move(src, dst, overwrite)
	if err == nil {
		cc.invalidate(src, true)
		cc.invalidate(dst, true)
	}
	return err
}

// Copy invalidates the destination subtree.
func (cc *CachingClient) Copy(src, dst string, depth davproto.Depth, overwrite bool) error {
	err := cc.Client.Copy(src, dst, depth, overwrite)
	if err == nil {
		cc.invalidate(dst, true)
	}
	return err
}
