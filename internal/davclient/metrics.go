package davclient

import (
	"time"

	"repro/internal/obs"
)

// clientMetrics records client-side telemetry when Config.Metrics is
// set. A nil *clientMetrics is valid and discards everything, so the
// hot path needs no conditionals at call sites.
type clientMetrics struct {
	requests        *obs.Counter
	retries         *obs.Counter
	budgetExhausted *obs.Counter
	shed            *obs.Counter
	backoff         *obs.Histogram
}

// newClientMetrics registers the client metric families in reg (nil
// disables metrics).
func newClientMetrics(reg *obs.Registry) *clientMetrics {
	if reg == nil {
		return nil
	}
	return &clientMetrics{
		requests: reg.Counter("davclient_requests_total",
			"HTTP requests issued, including retry attempts.", nil),
		retries: reg.Counter("davclient_retries_total",
			"Automatic retries performed on transient failures.", nil),
		budgetExhausted: reg.Counter("davclient_retry_budget_exhausted_total",
			"Retries abandoned because the client-wide retry budget ran out.", nil),
		shed: reg.Counter("dav_client_shed_total",
			"Responses identifying server load shedding: 429, or 503 carrying Retry-After.", nil),
		backoff: reg.Histogram("davclient_backoff_seconds",
			"Backoff sleeps scheduled between retry attempts.", nil, obs.DefBuckets),
	}
}

func (m *clientMetrics) countRequest() {
	if m != nil {
		m.requests.Inc()
	}
}

func (m *clientMetrics) countRetry() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *clientMetrics) countBudgetExhausted() {
	if m != nil {
		m.budgetExhausted.Inc()
	}
}

func (m *clientMetrics) countShed() {
	if m != nil {
		m.shed.Inc()
	}
}

func (m *clientMetrics) observeBackoff(d time.Duration) {
	if m != nil {
		m.backoff.Observe(d.Seconds())
	}
}
