package xmldom

import (
	"encoding/xml"
	"fmt"
	"io"
)

// SAXHandler receives parse events from ScanSAX. Any nil callback is
// skipped. A non-nil error returned by a callback aborts the scan and
// is returned by ScanSAX.
//
// Unlike the DOM parser, the SAX scanner allocates no tree: element
// names arrive resolved, character data arrives as transient slices
// valid only for the duration of the callback. This is the "SAX
// parsers do not build an in-memory representation of the entire XML
// document" path the paper anticipated adopting.
type SAXHandler struct {
	StartElement func(name xml.Name, attrs []xml.Attr) error
	EndElement   func(name xml.Name) error
	CharData     func(data []byte) error
}

// ScanSAX streams the XML document from r through the handler.
func ScanSAX(r io.Reader, h SAXHandler) error {
	dec := xml.NewDecoder(r)
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			if depth != 0 {
				return fmt.Errorf("xmldom: unexpected EOF at depth %d", depth)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("xmldom: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if h.StartElement != nil {
				if err := h.StartElement(t.Name, stripNamespaceAttrs(t.Attr)); err != nil {
					return err
				}
			}
		case xml.EndElement:
			depth--
			if h.EndElement != nil {
				if err := h.EndElement(t.Name); err != nil {
					return err
				}
			}
		case xml.CharData:
			if h.CharData != nil {
				if err := h.CharData(t); err != nil {
					return err
				}
			}
		}
	}
}

// PathCollector is a SAXHandler helper that tracks the current element
// path and invokes On when entering elements, exposing the path depth
// and accumulated text of leaf elements via OnLeave.
type PathCollector struct {
	stack []xml.Name
	text  []byte

	// Enter, if non-nil, is called after an element is pushed; the
	// slice is the current path, root first. It must not be retained.
	Enter func(path []xml.Name, attrs []xml.Attr) error
	// Leave, if non-nil, is called before an element is popped, with
	// the character data that appeared directly inside it.
	Leave func(path []xml.Name, text []byte) error
}

// Handler adapts the collector to a SAXHandler.
func (p *PathCollector) Handler() SAXHandler {
	return SAXHandler{
		StartElement: func(name xml.Name, attrs []xml.Attr) error {
			p.stack = append(p.stack, name)
			p.text = p.text[:0]
			if p.Enter != nil {
				return p.Enter(p.stack, attrs)
			}
			return nil
		},
		EndElement: func(name xml.Name) error {
			var err error
			if p.Leave != nil {
				err = p.Leave(p.stack, p.text)
			}
			p.stack = p.stack[:len(p.stack)-1]
			p.text = p.text[:0]
			return err
		},
		CharData: func(data []byte) error {
			p.text = append(p.text, data...)
			return nil
		},
	}
}

// Depth returns the current element nesting depth.
func (p *PathCollector) Depth() int { return len(p.stack) }
