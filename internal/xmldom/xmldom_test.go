package xmldom

import (
	"encoding/xml"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const sample = `<?xml version="1.0"?>
<D:multistatus xmlns:D="DAV:" xmlns:e="ecce:">
  <D:response>
    <D:href>/calc/molecule</D:href>
    <D:propstat>
      <D:prop>
        <e:formula>UO2H30O15</e:formula>
        <e:charge>2</e:charge>
      </D:prop>
      <D:status>HTTP/1.1 200 OK</D:status>
    </D:propstat>
  </D:response>
</D:multistatus>`

func TestParseResolvesNamespaces(t *testing.T) {
	root, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name.Space != "DAV:" || root.Name.Local != "multistatus" {
		t.Fatalf("root = %v", root.Name)
	}
	f := root.FindPath("DAV:|response", "DAV:|propstat", "DAV:|prop", "ecce:|formula")
	if f == nil {
		t.Fatal("formula element not found")
	}
	if f.Text != "UO2H30O15" {
		t.Fatalf("formula text = %q", f.Text)
	}
}

func TestFindSemantics(t *testing.T) {
	root, _ := ParseString(`<a xmlns:x="X:"><b>1</b><x:b>2</x:b><c/></a>`)
	if n := root.Find("", "b"); n == nil || n.Text != "1" {
		t.Fatalf("Find any-namespace b = %v", n)
	}
	if n := root.Find("X:", "b"); n == nil || n.Text != "2" {
		t.Fatalf("Find X: b = %v", n)
	}
	if n := root.Find("Y:", "b"); n != nil {
		t.Fatalf("Find Y: b = %v, want nil", n)
	}
	if got := len(root.FindAll("", "b")); got != 2 {
		t.Fatalf("FindAll any b = %d, want 2", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	root, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	out := Marshal(root)
	root2, err := ParseBytes(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !treeEqual(root, root2) {
		t.Fatalf("round trip changed tree:\n%s\nvs\n%s", Marshal(root), Marshal(root2))
	}
}

// treeEqual compares names, trimmed text, attrs and recursive children.
func treeEqual(a, b *Node) bool {
	if a.Name != b.Name || strings.TrimSpace(a.Text) != strings.TrimSpace(b.Text) {
		return false
	}
	if len(a.Children) != len(b.Children) || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	if !reflect.DeepEqual(a.Attrs, b.Attrs) {
		return false
	}
	for i := range a.Children {
		if !treeEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestMarshalEscapes(t *testing.T) {
	n := NewTextElement("ecce:", "note", `a<b & "c" >d`)
	n.SetAttr("", "tag", `x<y&"z"`)
	out := Marshal(n)
	back, err := ParseBytes(out)
	if err != nil {
		t.Fatalf("reparse escaped: %v\n%s", err, out)
	}
	if back.Text != n.Text {
		t.Fatalf("text = %q, want %q", back.Text, n.Text)
	}
	if v, _ := back.Attr("", "tag"); v != `x<y&"z"` {
		t.Fatalf("attr = %q", v)
	}
}

func TestMarshalWellKnownPrefix(t *testing.T) {
	n := NewElement("DAV:", "propfind")
	n.Add("DAV:", "allprop")
	s := MarshalString(n)
	if !strings.Contains(s, `xmlns:D="DAV:"`) || !strings.HasPrefix(s, "<D:propfind") {
		t.Fatalf("DAV: should serialize with the conventional D prefix: %s", s)
	}
}

func TestEmptyAndSelfClosing(t *testing.T) {
	n := NewElement("DAV:", "allprop")
	if s := MarshalString(n); !strings.HasSuffix(s, "/>") {
		t.Fatalf("childless element should self-close: %s", s)
	}
	root, err := ParseString(`<a><b/><c></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(root.Children))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                 // empty
		`<a><b></a>`,       // mismatched
		`<a></a><b></b>`,   // multiple roots
		`<a>`,              // unterminated
		`not xml at all<>`, // junk
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", c)
		}
	}
}

func TestTextContentRecursive(t *testing.T) {
	root, _ := ParseString(`<a>one<b>two<c>three</c></b>four</a>`)
	got := root.TextContent()
	// Document order: direct text of a ("one...four" split), then b, c.
	for _, part := range []string{"one", "two", "three", "four"} {
		if !strings.Contains(got, part) {
			t.Fatalf("TextContent %q missing %q", got, part)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	root, _ := ParseString(`<a x="1"><b>t</b></a>`)
	c := root.Clone()
	c.Children[0].Text = "changed"
	c.SetAttr("", "x", "2")
	if root.Children[0].Text != "t" {
		t.Fatal("Clone shares child text")
	}
	if v, _ := root.Attr("", "x"); v != "1" {
		t.Fatal("Clone shares attrs")
	}
	if c.Parent != nil {
		t.Fatal("Clone should have nil parent")
	}
}

func TestWalkSkipsSubtree(t *testing.T) {
	root, _ := ParseString(`<a><skip><deep/></skip><keep/></a>`)
	var visited []string
	root.Walk(func(n *Node) bool {
		visited = append(visited, n.Name.Local)
		return n.Name.Local != "skip"
	})
	want := []string{"a", "skip", "keep"}
	if !reflect.DeepEqual(visited, want) {
		t.Fatalf("visited %v, want %v", visited, want)
	}
}

func TestSAXEventOrder(t *testing.T) {
	var events []string
	h := SAXHandler{
		StartElement: func(name xml.Name, attrs []xml.Attr) error {
			events = append(events, "S:"+name.Local)
			return nil
		},
		EndElement: func(name xml.Name) error {
			events = append(events, "E:"+name.Local)
			return nil
		},
		CharData: func(data []byte) error {
			if s := strings.TrimSpace(string(data)); s != "" {
				events = append(events, "T:"+s)
			}
			return nil
		},
	}
	if err := ScanSAX(strings.NewReader(`<a><b>x</b><c/></a>`), h); err != nil {
		t.Fatal(err)
	}
	want := []string{"S:a", "S:b", "T:x", "E:b", "S:c", "E:c", "E:a"}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events %v, want %v", events, want)
	}
}

func TestSAXAbort(t *testing.T) {
	stop := fmt.Errorf("stop")
	n := 0
	h := SAXHandler{StartElement: func(xml.Name, []xml.Attr) error {
		n++
		if n == 2 {
			return stop
		}
		return nil
	}}
	err := ScanSAX(strings.NewReader(`<a><b/><c/></a>`), h)
	if err != stop {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if n != 2 {
		t.Fatalf("started %d elements, want 2", n)
	}
}

func TestSAXUnbalanced(t *testing.T) {
	if err := ScanSAX(strings.NewReader(`<a><b>`), SAXHandler{}); err == nil {
		t.Fatal("unbalanced document should error")
	}
}

func TestPathCollector(t *testing.T) {
	var leaves []string
	pc := &PathCollector{
		Leave: func(path []xml.Name, text []byte) error {
			if s := strings.TrimSpace(string(text)); s != "" {
				parts := make([]string, len(path))
				for i, p := range path {
					parts[i] = p.Local
				}
				leaves = append(leaves, strings.Join(parts, "/")+"="+s)
			}
			return nil
		},
	}
	err := ScanSAX(strings.NewReader(`<a><b><c>1</c></b><d>2</d></a>`), pc.Handler())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a/b/c=1", "a/d=2"}
	if !reflect.DeepEqual(leaves, want) {
		t.Fatalf("leaves %v, want %v", leaves, want)
	}
	if pc.Depth() != 0 {
		t.Fatalf("final depth = %d", pc.Depth())
	}
}

// randomTree builds an arbitrary small tree for property testing.
func randomTree(rng *rand.Rand, depth int) *Node {
	names := []string{"alpha", "beta", "gamma", "delta"}
	spaces := []string{"", "DAV:", "ecce:", "urn:x"}
	n := NewElement(spaces[rng.Intn(len(spaces))], names[rng.Intn(len(names))])
	if rng.Intn(2) == 0 {
		n.Text = fmt.Sprintf("text-%d", rng.Intn(100))
	}
	if rng.Intn(3) == 0 {
		n.SetAttr("", "k", fmt.Sprintf("v%d", rng.Intn(10)))
	}
	if depth > 0 {
		for i := rng.Intn(3); i > 0; i-- {
			n.AppendChild(randomTree(rng, depth-1))
		}
	}
	return n
}

// TestQuickMarshalParseIdentity: Parse(Marshal(t)) == t for arbitrary
// trees.
func TestQuickMarshalParseIdentity(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(rng, 3)
		out := Marshal(tree)
		back, err := ParseBytes(out)
		if err != nil {
			t.Logf("reparse: %v\n%s", err, out)
			return false
		}
		if !treeEqual(tree, back) {
			t.Logf("tree mismatch:\n%s\nvs\n%s", out, Marshal(back))
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTextRoundTrip: arbitrary printable text survives marshal +
// parse.
func TestQuickTextRoundTrip(t *testing.T) {
	check := func(text string) bool {
		// encoding/xml cannot represent most control characters; the
		// DOM inherits that restriction, so restrict to sane runes.
		clean := strings.Map(func(r rune) rune {
			if r < 0x20 && r != '\t' && r != '\n' {
				return -1
			}
			if r == 0xFFFD || !isValidXMLRune(r) {
				return -1
			}
			return r
		}, text)
		n := NewTextElement("", "t", clean)
		back, err := ParseBytes(Marshal(n))
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		// \r\n normalization is permitted by XML; compare normalized.
		norm := strings.ReplaceAll(clean, "\r", "\n")
		got := strings.ReplaceAll(back.Text, "\r", "\n")
		if got != norm {
			t.Logf("text %q -> %q", clean, back.Text)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func isValidXMLRune(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}

func buildBigDoc(responses int) string {
	var sb strings.Builder
	sb.WriteString(`<D:multistatus xmlns:D="DAV:" xmlns:e="ecce:">`)
	for i := 0; i < responses; i++ {
		fmt.Fprintf(&sb, `<D:response><D:href>/calc/doc%d</D:href><D:propstat><D:prop>`, i)
		for j := 0; j < 5; j++ {
			fmt.Fprintf(&sb, `<e:prop%d>%s</e:prop%d>`, j, strings.Repeat("v", 64), j)
		}
		sb.WriteString(`</D:prop><D:status>HTTP/1.1 200 OK</D:status></D:propstat></D:response>`)
	}
	sb.WriteString(`</D:multistatus>`)
	return sb.String()
}

func BenchmarkParseDOM(b *testing.B) {
	doc := buildBigDoc(50)
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanSAX(b *testing.B) {
	doc := buildBigDoc(50)
	b.SetBytes(int64(len(doc)))
	h := SAXHandler{CharData: func([]byte) error { return nil }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ScanSAX(strings.NewReader(doc), h); err != nil {
			b.Fatal(err)
		}
	}
}
