// Package xmldom provides a small XML document object model (DOM) and
// a streaming SAX-style scanner, both built on encoding/xml.
//
// The HPDC 2001 Ecce paper used the Xerces 1.3 DOM parser on the client
// and attributed most of the client-side cost of bulk PROPFIND
// operations to building in-memory DOM trees; it predicted significant
// gains from switching to a SAX-style parser. This package supplies
// both so that prediction can be measured (see the DOM-vs-SAX ablation
// bench).
//
// The DOM is deliberately minimal: elements, attributes, and character
// data. Namespaces are resolved during parsing (every Node carries a
// fully resolved xml.Name); serialization re-introduces prefixes.
package xmldom

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is an XML element: a resolved name, attributes, character data
// that appeared directly inside the element, and child elements.
type Node struct {
	Name     xml.Name
	Attrs    []xml.Attr
	Text     string // concatenated character data directly under this element
	Children []*Node
	Parent   *Node `xml:"-"`
}

// NewElement returns a childless element with the given namespace and
// local name.
func NewElement(space, local string) *Node {
	return &Node{Name: xml.Name{Space: space, Local: local}}
}

// NewTextElement returns an element whose content is the given text.
func NewTextElement(space, local, text string) *Node {
	n := NewElement(space, local)
	n.Text = text
	return n
}

// AppendChild adds c as the last child of n and returns c.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return c
}

// Add creates an element with the given name under n and returns it.
func (n *Node) Add(space, local string) *Node {
	return n.AppendChild(NewElement(space, local))
}

// AddText creates a text element under n and returns it.
func (n *Node) AddText(space, local, text string) *Node {
	return n.AppendChild(NewTextElement(space, local, text))
}

// Find returns the first direct child with the given namespace and
// local name, or nil. An empty space matches any namespace.
func (n *Node) Find(space, local string) *Node {
	for _, c := range n.Children {
		if c.Name.Local == local && (space == "" || c.Name.Space == space) {
			return c
		}
	}
	return nil
}

// FindAll returns all direct children matching the namespace and local
// name. An empty space matches any namespace.
func (n *Node) FindAll(space, local string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name.Local == local && (space == "" || c.Name.Space == space) {
			out = append(out, c)
		}
	}
	return out
}

// FindPath descends through the tree following a sequence of
// (space, local) pairs expressed as "space|local" or plain "local"
// steps, returning the first match or nil.
func (n *Node) FindPath(steps ...string) *Node {
	cur := n
	for _, s := range steps {
		space, local := "", s
		if i := strings.LastIndex(s, "|"); i >= 0 {
			space, local = s[:i], s[i+1:]
		}
		cur = cur.Find(space, local)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// Walk calls fn for n and every descendant in document order. If fn
// returns false for a node, its subtree is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Attr returns the value of the named attribute, and whether it is
// present. An empty space matches any namespace.
func (n *Node) Attr(space, local string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name.Local == local && (space == "" || a.Name.Space == space) {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets (or replaces) an attribute.
func (n *Node) SetAttr(space, local, value string) {
	for i, a := range n.Attrs {
		if a.Name.Local == local && a.Name.Space == space {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, xml.Attr{Name: xml.Name{Space: space, Local: local}, Value: value})
}

// TextContent returns the concatenation of all character data in the
// subtree rooted at n, in document order.
func (n *Node) TextContent() string {
	var sb strings.Builder
	n.Walk(func(c *Node) bool {
		sb.WriteString(c.Text)
		return true
	})
	return sb.String()
}

// Clone returns a deep copy of the subtree rooted at n. The copy's
// Parent is nil.
func (n *Node) Clone() *Node {
	c := &Node{Name: n.Name, Text: n.Text}
	c.Attrs = append([]xml.Attr(nil), n.Attrs...)
	for _, child := range n.Children {
		c.AppendChild(child.Clone())
	}
	return c
}

// CountNodes returns the number of elements in the subtree (n
// included).
func (n *Node) CountNodes() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// Parse reads an XML document and returns its root element.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var cur *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldom: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: t.Name, Attrs: stripNamespaceAttrs(t.Attr)}
			if cur == nil {
				if root != nil {
					return nil, fmt.Errorf("xmldom: multiple root elements")
				}
				root = n
			} else {
				cur.AppendChild(n)
			}
			cur = n
		case xml.EndElement:
			if cur == nil {
				return nil, fmt.Errorf("xmldom: unbalanced end element %s", t.Name.Local)
			}
			cur = cur.Parent
		case xml.CharData:
			if cur != nil {
				cur.Text += string(t)
			}
		// Comments, directives and processing instructions are dropped.
		case xml.Comment, xml.Directive, xml.ProcInst:
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmldom: empty document")
	}
	if cur != nil {
		return nil, fmt.Errorf("xmldom: unexpected EOF inside <%s>", cur.Name.Local)
	}
	return root, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// ParseBytes parses an XML document held in a byte slice.
func ParseBytes(b []byte) (*Node, error) { return Parse(bytes.NewReader(b)) }

// stripNamespaceAttrs removes xmlns declarations, which the decoder
// has already consumed to resolve names.
func stripNamespaceAttrs(attrs []xml.Attr) []xml.Attr {
	out := attrs[:0]
	for _, a := range attrs {
		if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil
	}
	return append([]xml.Attr(nil), out...)
}

// wellKnownPrefixes maps namespaces to conventional prefixes used when
// serializing.
var wellKnownPrefixes = map[string]string{
	"DAV:": "D",
}

// Marshal serializes the subtree rooted at n as a self-contained XML
// fragment: every namespace used anywhere in the subtree is declared
// on the root element.
func Marshal(n *Node) []byte {
	var buf bytes.Buffer
	MarshalTo(&buf, n)
	return buf.Bytes()
}

// MarshalString is Marshal returning a string.
func MarshalString(n *Node) string { return string(Marshal(n)) }

// MarshalDocument serializes n preceded by an XML declaration.
func MarshalDocument(n *Node) []byte {
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	MarshalTo(&buf, n)
	return buf.Bytes()
}

// MarshalTo writes the serialized subtree to w.
func MarshalTo(w io.Writer, n *Node) {
	prefixes := assignPrefixes(n)
	var buf bytes.Buffer
	writeNode(&buf, n, prefixes, true)
	w.Write(buf.Bytes())
}

// assignPrefixes collects every namespace in the subtree and assigns a
// prefix to each. The empty namespace maps to the empty prefix.
func assignPrefixes(n *Node) map[string]string {
	spaces := map[string]bool{}
	n.Walk(func(c *Node) bool {
		if c.Name.Space != "" {
			spaces[c.Name.Space] = true
		}
		for _, a := range c.Attrs {
			if a.Name.Space != "" {
				spaces[a.Name.Space] = true
			}
		}
		return true
	})
	ordered := make([]string, 0, len(spaces))
	for s := range spaces {
		ordered = append(ordered, s)
	}
	sort.Strings(ordered)
	prefixes := map[string]string{}
	used := map[string]bool{}
	i := 0
	for _, s := range ordered {
		if p, ok := wellKnownPrefixes[s]; ok && !used[p] {
			prefixes[s] = p
			used[p] = true
			continue
		}
		for {
			p := fmt.Sprintf("ns%d", i)
			i++
			if !used[p] {
				prefixes[s] = p
				used[p] = true
				break
			}
		}
	}
	return prefixes
}

func qname(name xml.Name, prefixes map[string]string) string {
	if name.Space == "" {
		return name.Local
	}
	return prefixes[name.Space] + ":" + name.Local
}

func writeNode(buf *bytes.Buffer, n *Node, prefixes map[string]string, root bool) {
	buf.WriteByte('<')
	buf.WriteString(qname(n.Name, prefixes))
	if root {
		// Declare every namespace on the root so the fragment is
		// self-contained.
		ordered := make([]string, 0, len(prefixes))
		for s := range prefixes {
			ordered = append(ordered, s)
		}
		sort.Strings(ordered)
		for _, s := range ordered {
			fmt.Fprintf(buf, ` xmlns:%s="%s"`, prefixes[s], escapeAttr(s))
		}
	}
	for _, a := range n.Attrs {
		fmt.Fprintf(buf, ` %s="%s"`, qname(a.Name, prefixes), escapeAttr(a.Value))
	}
	if n.Text == "" && len(n.Children) == 0 {
		buf.WriteString("/>")
		return
	}
	buf.WriteByte('>')
	if n.Text != "" {
		xml.EscapeText(buf, []byte(n.Text))
	}
	for _, c := range n.Children {
		writeNode(buf, c, prefixes, false)
	}
	buf.WriteString("</")
	buf.WriteString(qname(n.Name, prefixes))
	buf.WriteByte('>')
}

func escapeAttr(s string) string {
	var buf bytes.Buffer
	xml.EscapeText(&buf, []byte(s))
	return strings.ReplaceAll(buf.String(), `"`, "&quot;")
}
