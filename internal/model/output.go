package model

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// NWChem-like output text. The real Ecce parsed computational-code
// output files to extract properties for the data store; the synthetic
// runner's results can be rendered to a plausible output listing and
// parsed back, so the repository exercises the same parse-and-store
// flow (the "raw calculation data" the paper migrates in stage 2 of
// §3.2.4).
//
// The listing format borrows NWChem's sign-posts:
//
//	Total SCF energy =     -76.02663157
//	Dipole moment (debye)  X  0.0000  Y  0.0000  Z  2.1000
//	Normal mode frequencies (cm-1):
//	    1649.23   3832.17   3942.57
//
// Only scalar energies, the dipole and the frequency list are carried
// in text; grid properties stay in their binary documents, as Ecce
// kept large data out of parsed summaries.

// FormatOutput renders a run's properties as an output listing.
func FormatOutput(calcName string, props []Property) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "          Synthetic Computational Chemistry Package\n")
	fmt.Fprintf(&sb, "          ------------------------------------------\n\n")
	fmt.Fprintf(&sb, " Calculation: %s\n\n", calcName)
	for _, p := range props {
		switch p.Name {
		case "total energy":
			fmt.Fprintf(&sb, " Total SCF energy = %20.8f\n\n", p.Values[0])
		case "dipole moment":
			if len(p.Values) == 3 {
				fmt.Fprintf(&sb, " Dipole moment (debye)  X %10.4f  Y %10.4f  Z %10.4f\n\n",
					p.Values[0], p.Values[1], p.Values[2])
			}
		case "vibrational frequencies":
			fmt.Fprintf(&sb, " Normal mode frequencies (cm-1):\n")
			for i, v := range p.Values {
				fmt.Fprintf(&sb, " %9.2f", v)
				if (i+1)%6 == 0 {
					sb.WriteByte('\n')
				}
			}
			if len(p.Values)%6 != 0 {
				sb.WriteByte('\n')
			}
			sb.WriteByte('\n')
		case "optimization trace":
			fmt.Fprintf(&sb, " Geometry optimization energies (hartree):\n")
			for _, v := range p.Values {
				fmt.Fprintf(&sb, "   step energy = %18.8f\n", v)
			}
			sb.WriteByte('\n')
		}
	}
	fmt.Fprintf(&sb, " Task completed\n")
	return sb.String()
}

// ParseOutput extracts the textual properties back out of a listing
// produced by FormatOutput (or a sufficiently NWChem-shaped file).
// Unrecognized lines are skipped; a listing without a terminal "Task
// completed" marker is reported as truncated.
func ParseOutput(r io.Reader) ([]Property, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	var props []Property
	var complete bool
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Total SCF energy"):
			_, after, ok := strings.Cut(line, "=")
			if !ok {
				return nil, fmt.Errorf("model: malformed energy line %q", line)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(after), 64)
			if err != nil {
				return nil, fmt.Errorf("model: bad energy %q", after)
			}
			props = append(props, Property{Name: "total energy", Units: "hartree",
				Values: []float64{v}})
		case strings.HasPrefix(line, "Dipole moment"):
			fields := strings.Fields(line)
			var xyz []float64
			for i := 0; i < len(fields)-1; i++ {
				switch fields[i] {
				case "X", "Y", "Z":
					v, err := strconv.ParseFloat(fields[i+1], 64)
					if err != nil {
						return nil, fmt.Errorf("model: bad dipole component %q", fields[i+1])
					}
					xyz = append(xyz, v)
				}
			}
			if len(xyz) != 3 {
				return nil, fmt.Errorf("model: dipole line %q has %d components", line, len(xyz))
			}
			props = append(props, Property{Name: "dipole moment", Units: "debye",
				Dims: []int{3}, Values: xyz})
		case strings.HasPrefix(line, "Normal mode frequencies"):
			values, err := parseFloatBlock(sc)
			if err != nil {
				return nil, err
			}
			props = append(props, Property{Name: "vibrational frequencies", Units: "cm-1",
				Dims: []int{len(values)}, Values: values})
		case strings.HasPrefix(line, "Geometry optimization energies"):
			var trace []float64
			for sc.Scan() {
				l := strings.TrimSpace(sc.Text())
				rest, ok := strings.CutPrefix(l, "step energy =")
				if !ok {
					break
				}
				v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
				if err != nil {
					return nil, fmt.Errorf("model: bad trace energy %q", rest)
				}
				trace = append(trace, v)
			}
			props = append(props, Property{Name: "optimization trace", Units: "hartree",
				Dims: []int{len(trace)}, Values: trace})
		case strings.HasPrefix(line, "Task completed"):
			complete = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !complete {
		return props, fmt.Errorf("model: output listing is truncated (no completion marker)")
	}
	return props, nil
}

// parseFloatBlock consumes subsequent lines of whitespace-separated
// floats until a non-numeric line.
func parseFloatBlock(sc *bufio.Scanner) ([]float64, error) {
	var values []float64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			break
		}
		fields := strings.Fields(line)
		lineVals := make([]float64, 0, len(fields))
		numeric := true
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				numeric = false
				break
			}
			lineVals = append(lineVals, v)
		}
		if !numeric {
			break
		}
		values = append(values, lineVals...)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("model: empty numeric block")
	}
	return values, nil
}
