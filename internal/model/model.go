// Package model implements the Ecce calculation object model of
// Figure 3: a study subject (Molecule) on which the Task of an
// Experiment (Calculation) is performed, producing a series of
// n-dimensional output Properties, with the Job capturing distributed
// execution and the BasisSet parameterizing the theory. All the
// information needed to reproduce a calculation and provide historical
// context is captured, as the paper requires.
//
// The model is storage-neutral: package core maps it onto DAV
// constructs (Figure 4) and onto the OODB baseline.
package model

import (
	"fmt"
	"time"

	"repro/internal/chem"
)

// State is the calculation lifecycle state Ecce tracks from setup
// through post-run analysis.
type State int

// Calculation lifecycle states.
const (
	StateCreated   State = iota // object exists, no input yet
	StateReady                  // input deck generated
	StateSubmitted              // handed to a compute host
	StateRunning                // executing
	StateComplete               // outputs stored
	StateFailed                 // terminated abnormally
)

var stateNames = [...]string{"created", "ready", "submitted", "running", "complete", "failed"}

// String returns the lower-case state name.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// ParseState reverses String.
func ParseState(name string) (State, error) {
	for i, n := range stateNames {
		if n == name {
			return State(i), nil
		}
	}
	return 0, fmt.Errorf("model: unknown state %q", name)
}

// validTransitions encodes the workflow the Ecce tools enforce.
var validTransitions = map[State][]State{
	StateCreated:   {StateReady},
	StateReady:     {StateSubmitted, StateReady},
	StateSubmitted: {StateRunning, StateFailed},
	StateRunning:   {StateComplete, StateFailed},
	StateFailed:    {StateReady}, // edit and resubmit
}

// CanTransition reports whether from → to is a legal lifecycle step.
func CanTransition(from, to State) bool {
	for _, t := range validTransitions[from] {
		if t == to {
			return true
		}
	}
	return false
}

// Project groups calculations, mapping to a DAV collection.
type Project struct {
	Name        string
	Description string
	Created     time.Time
}

// TaskKind is the type of computational task.
type TaskKind string

// Task kinds Ecce schedules.
const (
	TaskEnergy    TaskKind = "energy"
	TaskOptimize  TaskKind = "optimize"
	TaskFrequency TaskKind = "frequency"
)

// Task is one step in a calculation's task sequence ("the list of
// tasks in a calculation is located through the collection
// mechanism").
type Task struct {
	Name     string
	Kind     TaskKind
	Sequence int
	// InputDeck is the generated simulation input (raw calculation
	// data in the paper's terms).
	InputDeck string
}

// Calculation is the Experiment subclass the paper's Figure 3 centres
// on.
type Calculation struct {
	Name       string
	State      State
	Theory     string // e.g. "SCF", "DFT/B3LYP"
	Created    time.Time
	Annotation string
}

// JobStatus is the execution status of a submitted job.
type JobStatus string

// Job statuses.
const (
	JobPending JobStatus = "pending"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
	JobKilled  JobStatus = "killed"
	JobUnknown JobStatus = "unknown"
)

// Job captures distributed execution metadata.
type Job struct {
	Host       string
	Queue      string
	BatchID    string
	NodeCount  int
	Status     JobStatus
	SubmitTime time.Time
	StartTime  time.Time
	EndTime    time.Time
}

// Property is an n-dimensional output property ("the results of which
// are a series of n-dimensional output Properties"). Values are
// stored flat in row-major order; Dims gives the shape. Scalar
// properties have Dims == nil and one value.
type Property struct {
	Name   string
	Units  string
	Dims   []int
	Values []float64
}

// Len returns the expected number of values given Dims.
func (p *Property) Len() int {
	if len(p.Dims) == 0 {
		return 1
	}
	n := 1
	for _, d := range p.Dims {
		n *= d
	}
	return n
}

// Validate checks shape consistency.
func (p *Property) Validate() error {
	for _, d := range p.Dims {
		if d <= 0 {
			return fmt.Errorf("model: property %q has non-positive dimension %d", p.Name, d)
		}
	}
	if len(p.Values) != p.Len() {
		return fmt.Errorf("model: property %q has %d values, shape wants %d",
			p.Name, len(p.Values), p.Len())
	}
	return nil
}

// At indexes an n-dimensional property.
func (p *Property) At(idx ...int) (float64, error) {
	if len(idx) != len(p.Dims) {
		return 0, fmt.Errorf("model: property %q indexed with %d subscripts, has %d dims",
			p.Name, len(idx), len(p.Dims))
	}
	flat := 0
	for i, ix := range idx {
		if ix < 0 || ix >= p.Dims[i] {
			return 0, fmt.Errorf("model: property %q index %d out of range", p.Name, ix)
		}
		flat = flat*p.Dims[i] + ix
	}
	return p.Values[flat], nil
}

// CalculationBundle is the full in-memory state of one calculation —
// what the object/factory layer assembles from storage for the tools.
type CalculationBundle struct {
	Calc       Calculation
	Molecule   *chem.Molecule
	Basis      *chem.BasisSet
	Tasks      []Task
	Job        *Job
	Properties []Property
}

// Validate cross-checks the bundle.
func (b *CalculationBundle) Validate() error {
	if b.Molecule == nil {
		return fmt.Errorf("model: calculation %q has no molecule", b.Calc.Name)
	}
	if err := b.Molecule.Validate(); err != nil {
		return err
	}
	if b.Basis != nil && !b.Basis.Covers(b.Molecule) {
		return fmt.Errorf("model: basis %q does not cover molecule %q",
			b.Basis.Name, b.Molecule.Formula())
	}
	for i := range b.Properties {
		if err := b.Properties[i].Validate(); err != nil {
			return err
		}
	}
	seq := map[int]bool{}
	for _, task := range b.Tasks {
		if seq[task.Sequence] {
			return fmt.Errorf("model: duplicate task sequence %d", task.Sequence)
		}
		seq[task.Sequence] = true
	}
	return nil
}

// ClassDescriptors lists the persistent classes in the form consumed
// by oodb.SchemaHash — the 70-class Ecce schema reduced to the
// calculation-model subset the paper's Figure 3 shows. Changing any
// entry changes the schema fingerprint and (deliberately) breaks OODB
// client/server compatibility.
func ClassDescriptors() []string {
	return []string{
		"Project(name:string,description:string,created:time)",
		"Calculation(name:string,state:int,theory:string,created:time,annotation:string)",
		"Task(name:string,kind:string,sequence:int,inputdeck:string)",
		"Job(host:string,queue:string,batchid:string,nodecount:int,status:string,submit:time,start:time,end:time)",
		"Property(name:string,units:string,dims:[]int,values:[]float64)",
		"Molecule(name:string,atoms:[]Atom,charge:int,multiplicity:int,symmetry:string)",
		"Atom(symbol:string,x:float64,y:float64,z:float64)",
		"BasisSet(name:string,elements:[]ElementBasis)",
		"ElementBasis(symbol:string,shells:[]Shell)",
		"Shell(type:string,primitives:[]Primitive)",
		"Primitive(exponent:float64,coefficient:float64)",
	}
}
