package model

import (
	"math"

	"repro/internal/chem"
)

// SyntheticRunner stands in for NWChem (see DESIGN.md substitutions):
// it produces deterministic, plausibly shaped output properties for a
// calculation without real quantum chemistry. The property set and
// sizes mirror the paper's workload — "individual output properties up
// to 1.8 MB in size" for the UO2·15H2O system.
type SyntheticRunner struct {
	// GridPoints sets the edge length of the synthetic electron
	// density grid; the default of 61 yields a 61³ float64 property
	// (~1.8 MB), matching the paper's largest output.
	GridPoints int
}

// DefaultGridPoints produces an electron-density property of about
// 1.8 MB (61^3 float64 values ≈ 1.74 MiB), the paper's quoted maximum.
const DefaultGridPoints = 61

// Run produces the output property set for a task on mol. Results are
// deterministic functions of the geometry, so repeated runs agree and
// tests can assert on exact values.
func (r SyntheticRunner) Run(mol *chem.Molecule, kind TaskKind) []Property {
	grid := r.GridPoints
	if grid <= 0 {
		grid = DefaultGridPoints
	}
	var props []Property

	energy := syntheticEnergy(mol)
	props = append(props, Property{Name: "total energy", Units: "hartree", Values: []float64{energy}})
	props = append(props, Property{Name: "dipole moment", Units: "debye", Dims: []int{3},
		Values: syntheticDipole(mol)})

	switch kind {
	case TaskOptimize:
		// An optimization trace: 10 steps of monotonically decreasing
		// energy.
		trace := make([]float64, 10)
		for i := range trace {
			trace[i] = energy + 0.05*math.Exp(-float64(i))
		}
		props = append(props, Property{Name: "optimization trace", Units: "hartree",
			Dims: []int{len(trace)}, Values: trace})
	case TaskFrequency:
		props = append(props, Property{Name: "vibrational frequencies", Units: "cm-1",
			Dims: []int{vibModes(mol)}, Values: syntheticFrequencies(mol)})
	}

	// The big one: an electron-density grid.
	props = append(props, syntheticDensity(mol, grid))
	return props
}

// syntheticEnergy is a simple pairwise potential: enough structure to
// be geometry-sensitive and deterministic.
func syntheticEnergy(mol *chem.Molecule) float64 {
	e := 0.0
	for i := range mol.Atoms {
		zi := atomicNumber(mol.Atoms[i].Symbol)
		e -= float64(zi) * 0.5 // crude per-atom contribution
		for j := i + 1; j < len(mol.Atoms); j++ {
			d := mol.Distance(i, j)
			if d < 1e-9 {
				continue
			}
			zj := atomicNumber(mol.Atoms[j].Symbol)
			e += float64(zi*zj) / (d * 1000) // weak repulsion
		}
	}
	return e
}

func atomicNumber(sym string) int {
	if e, ok := chem.LookupElement(sym); ok {
		return e.Number
	}
	return 0
}

// syntheticDipole is the classical point-charge dipole using atomic
// numbers as charges (deterministic, not physical).
func syntheticDipole(mol *chem.Molecule) []float64 {
	var dx, dy, dz float64
	for _, a := range mol.Atoms {
		z := float64(atomicNumber(a.Symbol))
		dx += z * a.X
		dy += z * a.Y
		dz += z * a.Z
	}
	const scale = 1e-2
	return []float64{dx * scale, dy * scale, dz * scale}
}

// vibModes is 3N-6 (or 3N-5 for linear systems; we ignore linearity
// detection and floor at 1).
func vibModes(mol *chem.Molecule) int {
	n := 3*mol.AtomCount() - 6
	if n < 1 {
		n = 1
	}
	return n
}

// syntheticFrequencies yields 3N-6 positive wavenumbers.
func syntheticFrequencies(mol *chem.Molecule) []float64 {
	n := vibModes(mol)
	out := make([]float64, n)
	for i := range out {
		out[i] = 100 + 3500*float64(i)/float64(n) + 10*math.Sin(float64(i))
	}
	return out
}

// syntheticDensity builds a grid³ "electron density" from Gaussian
// blobs at atom sites.
func syntheticDensity(mol *chem.Molecule, grid int) Property {
	values := make([]float64, grid*grid*grid)
	// Bounding box with 2 Å margin.
	minX, minY, minZ := math.Inf(1), math.Inf(1), math.Inf(1)
	maxX, maxY, maxZ := math.Inf(-1), math.Inf(-1), math.Inf(-1)
	for _, a := range mol.Atoms {
		minX, maxX = math.Min(minX, a.X), math.Max(maxX, a.X)
		minY, maxY = math.Min(minY, a.Y), math.Max(maxY, a.Y)
		minZ, maxZ = math.Min(minZ, a.Z), math.Max(maxZ, a.Z)
	}
	if len(mol.Atoms) == 0 {
		minX, minY, minZ, maxX, maxY, maxZ = 0, 0, 0, 1, 1, 1
	}
	const margin = 2.0
	minX, minY, minZ = minX-margin, minY-margin, minZ-margin
	maxX, maxY, maxZ = maxX+margin, maxY+margin, maxZ+margin
	step := func(lo, hi float64, i int) float64 {
		if grid == 1 {
			return (lo + hi) / 2
		}
		return lo + (hi-lo)*float64(i)/float64(grid-1)
	}
	idx := 0
	for ix := 0; ix < grid; ix++ {
		x := step(minX, maxX, ix)
		for iy := 0; iy < grid; iy++ {
			y := step(minY, maxY, iy)
			for iz := 0; iz < grid; iz++ {
				z := step(minZ, maxZ, iz)
				var rho float64
				for _, a := range mol.Atoms {
					dx, dy, dz := x-a.X, y-a.Y, z-a.Z
					r2 := dx*dx + dy*dy + dz*dz
					rho += float64(atomicNumber(a.Symbol)) * math.Exp(-r2)
				}
				values[idx] = rho
				idx++
			}
		}
	}
	return Property{Name: "electron density", Units: "e/bohr^3",
		Dims: []int{grid, grid, grid}, Values: values}
}
