package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/chem"
	"repro/internal/oodb"
)

func TestStateStringRoundTrip(t *testing.T) {
	for s := StateCreated; s <= StateFailed; s++ {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseState(%q) = (%v, %v)", s.String(), got, err)
		}
	}
	if _, err := ParseState("bogus"); err == nil {
		t.Fatal("bad state accepted")
	}
}

func TestLifecycleTransitions(t *testing.T) {
	allowed := []struct{ from, to State }{
		{StateCreated, StateReady},
		{StateReady, StateSubmitted},
		{StateSubmitted, StateRunning},
		{StateRunning, StateComplete},
		{StateRunning, StateFailed},
		{StateFailed, StateReady},
		{StateReady, StateReady}, // re-edit input
	}
	for _, c := range allowed {
		if !CanTransition(c.from, c.to) {
			t.Errorf("transition %v -> %v should be legal", c.from, c.to)
		}
	}
	forbidden := []struct{ from, to State }{
		{StateCreated, StateRunning},
		{StateComplete, StateRunning},
		{StateComplete, StateReady},
		{StateSubmitted, StateComplete},
		{StateRunning, StateCreated},
	}
	for _, c := range forbidden {
		if CanTransition(c.from, c.to) {
			t.Errorf("transition %v -> %v should be illegal", c.from, c.to)
		}
	}
}

func TestPropertyShapeValidation(t *testing.T) {
	good := Property{Name: "dipole", Dims: []int{3}, Values: []float64{1, 2, 3}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	scalar := Property{Name: "energy", Values: []float64{-76.0}}
	if err := scalar.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Property{Name: "x", Dims: []int{2, 2}, Values: []float64{1, 2, 3}}
	if err := bad.Validate(); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	neg := Property{Name: "x", Dims: []int{-1}, Values: nil}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative dim accepted")
	}
}

func TestPropertyAt(t *testing.T) {
	p := Property{Name: "m", Dims: []int{2, 3}, Values: []float64{0, 1, 2, 10, 11, 12}}
	v, err := p.At(1, 2)
	if err != nil || v != 12 {
		t.Fatalf("At(1,2) = (%v, %v)", v, err)
	}
	if _, err := p.At(2, 0); err == nil {
		t.Fatal("out of range accepted")
	}
	if _, err := p.At(1); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestBundleValidate(t *testing.T) {
	mol := chem.MakeWater()
	b := &CalculationBundle{
		Calc:     Calculation{Name: "water-scf"},
		Molecule: mol,
		Basis:    chem.STO3G(),
		Tasks:    []Task{{Name: "t1", Kind: TaskEnergy, Sequence: 1}},
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Missing molecule.
	if err := (&CalculationBundle{Calc: Calculation{Name: "x"}}).Validate(); err == nil {
		t.Fatal("bundle without molecule accepted")
	}
	// Basis not covering.
	iron := &chem.Molecule{Atoms: []chem.Atom{{Symbol: "Fe"}}}
	bad := &CalculationBundle{Calc: Calculation{Name: "x"}, Molecule: iron, Basis: chem.STO3G()}
	if err := bad.Validate(); err == nil {
		t.Fatal("uncovered basis accepted")
	}
	// Duplicate task sequence.
	b.Tasks = append(b.Tasks, Task{Name: "t2", Kind: TaskEnergy, Sequence: 1})
	if err := b.Validate(); err == nil {
		t.Fatal("duplicate sequence accepted")
	}
}

func TestGenerateInputDeck(t *testing.T) {
	mol := chem.MakeUO2nH2O(2)
	calc := &Calculation{Name: "uranyl study", Theory: "DFT"}
	deck, err := GenerateInputDeck(calc, mol, chem.STO3G(), &Task{Kind: TaskEnergy})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"start uranyl_study", "charge 2", "geometry units angstroms",
		"basis", "task dft energy"} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q:\n%s", want, deck)
		}
	}
	// One geometry line per atom (count inside the geometry block only;
	// the basis block also mentions U).
	geomBlock := deck[strings.Index(deck, "geometry"):]
	geomBlock = geomBlock[:strings.Index(geomBlock, "end")]
	if n := strings.Count(geomBlock, "\n  U "); n != 1 {
		t.Errorf("U geometry lines = %d\n%s", n, geomBlock)
	}
	if n := strings.Count(geomBlock, "\n"); n != mol.AtomCount()+1 {
		t.Errorf("geometry lines = %d, want %d", n, mol.AtomCount()+1)
	}

	// Task kinds map to task lines.
	deck, _ = GenerateInputDeck(calc, mol, nil, &Task{Kind: TaskOptimize})
	if !strings.Contains(deck, "task dft optimize") {
		t.Error("optimize task line missing")
	}
	deck, _ = GenerateInputDeck(calc, mol, nil, &Task{Kind: TaskFrequency})
	if !strings.Contains(deck, "task dft freq") {
		t.Error("freq task line missing")
	}
	if _, err := GenerateInputDeck(calc, mol, nil, &Task{Kind: "bogus"}); err == nil {
		t.Error("unknown task kind accepted")
	}
	if _, err := GenerateInputDeck(calc, nil, nil, &Task{Kind: TaskEnergy}); err == nil {
		t.Error("nil molecule accepted")
	}
	// Open shell adds an scf block.
	radical := chem.MakeWater()
	radical.Multiplicity = 2
	deck, _ = GenerateInputDeck(&Calculation{Theory: "scf"}, radical, nil, &Task{Kind: TaskEnergy})
	if !strings.Contains(deck, "nopen 1") {
		t.Error("open-shell block missing")
	}
}

func TestSyntheticRunDeterministic(t *testing.T) {
	mol := chem.MakeUO2nH2O(3)
	r := SyntheticRunner{GridPoints: 8}
	a := r.Run(mol, TaskEnergy)
	b := r.Run(mol, TaskEnergy)
	if len(a) != len(b) {
		t.Fatal("nondeterministic property count")
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Values) != len(b[i].Values) {
			t.Fatalf("property %d differs", i)
		}
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				t.Fatalf("property %q value %d differs", a[i].Name, j)
			}
		}
	}
}

func TestSyntheticRunShapes(t *testing.T) {
	mol := chem.MakeWater()
	props := SyntheticRunner{GridPoints: 5}.Run(mol, TaskFrequency)
	byName := map[string]Property{}
	for _, p := range props {
		if err := p.Validate(); err != nil {
			t.Fatalf("property %q: %v", p.Name, err)
		}
		byName[p.Name] = p
	}
	if _, ok := byName["total energy"]; !ok {
		t.Fatal("no energy")
	}
	if d := byName["dipole moment"]; len(d.Values) != 3 {
		t.Fatalf("dipole = %+v", d)
	}
	if f := byName["vibrational frequencies"]; len(f.Values) != 3*3-6 {
		t.Fatalf("freqs = %d values", len(f.Values))
	}
	if g := byName["electron density"]; len(g.Values) != 125 {
		t.Fatalf("grid = %d values", len(g.Values))
	}
	// Frequencies are positive.
	for _, v := range byName["vibrational frequencies"].Values {
		if v <= 0 {
			t.Fatal("non-positive frequency")
		}
	}
}

func TestSyntheticDensitySizeMatchesPaper(t *testing.T) {
	// The default grid must land near the paper's 1.8 MB largest
	// property.
	mol := chem.MakeWater()
	props := SyntheticRunner{}.Run(mol, TaskEnergy)
	var grid Property
	for _, p := range props {
		if p.Name == "electron density" {
			grid = p
		}
	}
	bytes := len(grid.Values) * 8
	if bytes < 1_500_000 || bytes > 2_100_000 {
		t.Fatalf("density grid = %d bytes, want ≈1.8 MB", bytes)
	}
}

func TestOptimizeTraceDecreases(t *testing.T) {
	mol := chem.MakeWater()
	props := SyntheticRunner{GridPoints: 4}.Run(mol, TaskOptimize)
	var trace Property
	for _, p := range props {
		if p.Name == "optimization trace" {
			trace = p
		}
	}
	if len(trace.Values) == 0 {
		t.Fatal("no optimization trace")
	}
	for i := 1; i < len(trace.Values); i++ {
		if trace.Values[i] >= trace.Values[i-1] {
			t.Fatalf("trace not decreasing at %d", i)
		}
	}
}

func TestSchemaDescriptorsFingerprint(t *testing.T) {
	h1 := oodb.SchemaHash(ClassDescriptors())
	h2 := oodb.SchemaHash(ClassDescriptors())
	if h1 != h2 {
		t.Fatal("fingerprint unstable")
	}
	// Simulated schema evolution (the molecular-dynamics extension the
	// paper mentions) changes the fingerprint.
	evolved := append(ClassDescriptors(), "MDTrajectory(frames:[]Frame)")
	if oodb.SchemaHash(evolved) == h1 {
		t.Fatal("schema drift undetected")
	}
}

// TestQuickPropertyAtNeverPanics: At returns an error, never panics,
// for arbitrary indices.
func TestQuickPropertyAtNeverPanics(t *testing.T) {
	p := Property{Name: "q", Dims: []int{3, 4, 5}, Values: make([]float64, 60)}
	for i := range p.Values {
		p.Values[i] = float64(i)
	}
	check := func(i, j, k int) bool {
		v, err := p.At(i, j, k)
		inRange := i >= 0 && i < 3 && j >= 0 && j < 4 && k >= 0 && k < 5
		if inRange != (err == nil) {
			return false
		}
		if err == nil {
			want := float64(i*20 + j*5 + k)
			return math.Abs(v-want) < 1e-12
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
