package model

import (
	"fmt"
	"strings"

	"repro/internal/chem"
)

// GenerateInputDeck renders an NWChem-style input deck for one task —
// the "generation of input decks" capability the paper lists among
// Ecce's functions. The deck is plain text, stored as raw calculation
// data in the DAV store.
func GenerateInputDeck(calc *Calculation, mol *chem.Molecule, basis *chem.BasisSet, task *Task) (string, error) {
	if mol == nil {
		return "", fmt.Errorf("model: input deck requires a molecule")
	}
	if basis != nil && !basis.Covers(mol) {
		return "", fmt.Errorf("model: basis %q does not cover %s", basis.Name, mol.Formula())
	}
	var sb strings.Builder
	title := calc.Name
	if title == "" {
		title = mol.Formula()
	}
	fmt.Fprintf(&sb, "start %s\n", sanitizeToken(title))
	fmt.Fprintf(&sb, "title %q\n\n", title)
	fmt.Fprintf(&sb, "charge %d\n\n", mol.Charge)

	sb.WriteString("geometry units angstroms noautoz\n")
	for _, a := range mol.Atoms {
		fmt.Fprintf(&sb, "  %-2s %14.8f %14.8f %14.8f\n", a.Symbol, a.X, a.Y, a.Z)
	}
	if mol.Symmetry != "" && mol.Symmetry != "C1" {
		fmt.Fprintf(&sb, "  symmetry %s\n", mol.Symmetry)
	}
	sb.WriteString("end\n\n")

	if basis != nil {
		sb.WriteString("basis\n")
		for sym := range mol.ElementCounts() {
			eb, _ := basis.ForElement(sym)
			for _, sh := range eb.Shells {
				fmt.Fprintf(&sb, "  %s library %s ! %s shell, %d primitives\n",
					sym, basis.Name, sh.Type, len(sh.Primitives))
			}
		}
		sb.WriteString("end\n\n")
	}

	theory := strings.ToLower(calc.Theory)
	if theory == "" {
		theory = "scf"
	}
	var taskLine string
	switch task.Kind {
	case TaskEnergy:
		taskLine = fmt.Sprintf("task %s energy", theory)
	case TaskOptimize:
		taskLine = fmt.Sprintf("task %s optimize", theory)
	case TaskFrequency:
		taskLine = fmt.Sprintf("task %s freq", theory)
	default:
		return "", fmt.Errorf("model: unknown task kind %q", task.Kind)
	}
	if mol.Multiplicity > 1 {
		fmt.Fprintf(&sb, "scf\n  nopen %d\nend\n\n", mol.Multiplicity-1)
	}
	sb.WriteString(taskLine + "\n")
	return sb.String(), nil
}

// sanitizeToken makes a string safe as a deck identifier.
func sanitizeToken(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}
