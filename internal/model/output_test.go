package model

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/chem"
)

func TestFormatParseOutputRoundTrip(t *testing.T) {
	mol := chem.MakeUO2nH2O(2)
	props := SyntheticRunner{GridPoints: 4}.Run(mol, TaskFrequency)
	text := FormatOutput("uranyl freq", props)
	parsed, err := ParseOutput(strings.NewReader(text))
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	byName := map[string]Property{}
	for _, p := range parsed {
		byName[p.Name] = p
	}
	// Energy and dipole round-trip at the printed precision.
	var wantEnergy, wantDipole, wantFreqs Property
	for _, p := range props {
		switch p.Name {
		case "total energy":
			wantEnergy = p
		case "dipole moment":
			wantDipole = p
		case "vibrational frequencies":
			wantFreqs = p
		}
	}
	if got := byName["total energy"]; math.Abs(got.Values[0]-wantEnergy.Values[0]) > 1e-7 {
		t.Fatalf("energy = %v, want %v", got.Values[0], wantEnergy.Values[0])
	}
	for i := 0; i < 3; i++ {
		if math.Abs(byName["dipole moment"].Values[i]-wantDipole.Values[i]) > 1e-3 {
			t.Fatalf("dipole[%d] drifted", i)
		}
	}
	gotF := byName["vibrational frequencies"]
	if len(gotF.Values) != len(wantFreqs.Values) {
		t.Fatalf("freqs = %d, want %d", len(gotF.Values), len(wantFreqs.Values))
	}
	for i := range gotF.Values {
		if math.Abs(gotF.Values[i]-wantFreqs.Values[i]) > 5e-3 {
			t.Fatalf("freq %d = %v, want %v", i, gotF.Values[i], wantFreqs.Values[i])
		}
	}
	// The grid property is deliberately not in the listing.
	if _, ok := byName["electron density"]; ok {
		t.Fatal("grid property leaked into the text listing")
	}
}

func TestParseOutputOptimizeTrace(t *testing.T) {
	mol := chem.MakeWater()
	props := SyntheticRunner{GridPoints: 4}.Run(mol, TaskOptimize)
	text := FormatOutput("opt", props)
	parsed, err := ParseOutput(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	var trace Property
	for _, p := range parsed {
		if p.Name == "optimization trace" {
			trace = p
		}
	}
	if len(trace.Values) != 10 {
		t.Fatalf("trace = %d steps", len(trace.Values))
	}
	for i := 1; i < len(trace.Values); i++ {
		if trace.Values[i] >= trace.Values[i-1] {
			t.Fatal("parsed trace not decreasing")
		}
	}
}

func TestParseOutputTruncated(t *testing.T) {
	mol := chem.MakeWater()
	props := SyntheticRunner{GridPoints: 4}.Run(mol, TaskEnergy)
	text := FormatOutput("x", props)
	// Chop off the completion marker, as a crashed run would.
	cut := strings.Index(text, "Task completed")
	if _, err := ParseOutput(strings.NewReader(text[:cut])); err == nil {
		t.Fatal("truncated listing accepted")
	}
}

func TestParseOutputMalformed(t *testing.T) {
	cases := []string{
		" Total SCF energy = not-a-number\n Task completed\n",
		" Dipole moment (debye)  X 1.0  Y two  Z 3.0\n Task completed\n",
		" Dipole moment (debye)  X 1.0\n Task completed\n",
		" Normal mode frequencies (cm-1):\n no numbers here\n Task completed\n",
	}
	for i, c := range cases {
		if _, err := ParseOutput(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseOutputIgnoresNoise(t *testing.T) {
	text := `          Synthetic Computational Chemistry Package
 random banner line
 Total SCF energy =        -76.02663157
 some diagnostic chatter 1 2 3
 Task completed
`
	props, err := ParseOutput(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 1 || props[0].Name != "total energy" {
		t.Fatalf("props = %+v", props)
	}
}

// TestQuickOutputEnergyRoundTrip: arbitrary energies survive the text
// round trip at printed precision.
func TestQuickOutputEnergyRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := (rng.Float64() - 0.5) * 1e6
		props := []Property{{Name: "total energy", Units: "hartree", Values: []float64{e}}}
		parsed, err := ParseOutput(strings.NewReader(FormatOutput("q", props)))
		if err != nil || len(parsed) != 1 {
			return false
		}
		return math.Abs(parsed[0].Values[0]-e) < 1e-7*math.Max(1, math.Abs(e))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
