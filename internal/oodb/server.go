package oodb

import (
	"bufio"
	"encoding/binary"
	"net"
	"sort"
	"sync"
)

// Server exposes a DB over the binary wire protocol. The schema
// fingerprint supplied at construction is enforced on every
// connection's HELLO — the schema/application coupling the paper
// criticises.
type Server struct {
	db     *DB
	schema string

	mu       sync.Mutex
	listener net.Listener
	addr     string
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer wraps db with the given schema fingerprint.
func NewServer(db *DB, schemaHash string) *Server {
	return &Server{db: db, schema: schemaHash, conns: map[net.Conn]struct{}{}}
}

// Listen binds addr and serves in the background, returning the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	s.addr = l.Addr().String()
	s.mu.Unlock()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			go s.serveConn(conn)
		}
	}()
	return l.Addr().String(), nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Close stops the server (the DB is left open; close it separately).
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	reply := func(ok bool, payload []byte) bool {
		status := byte(0)
		if !ok {
			status = 1
		}
		if err := writeFrame(w, status, payload); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	fail := func(err error) bool { return reply(false, []byte(err.Error())) }

	// The first frame must be HELLO with a matching schema hash.
	kind, payload, err := readFrame(r)
	if err != nil || op(kind) != opHello {
		return
	}
	if string(payload) != s.schema {
		fail(ErrSchemaMismatch)
		return
	}
	if !reply(true, nil) {
		return
	}

	for {
		kind, payload, err := readFrame(r)
		if err != nil {
			return
		}
		var ok bool
		switch op(kind) {
		case opFetch:
			if len(payload) != 8 {
				ok = fail(ErrNotFound)
				break
			}
			data, err := s.db.Fetch(getOID(payload))
			if err != nil {
				ok = fail(err)
			} else {
				ok = reply(true, data)
			}
		case opStore:
			if len(payload) < 8 {
				ok = fail(ErrNotFound)
				break
			}
			oid, err := s.db.Store(getOID(payload), payload[8:])
			if err != nil {
				ok = fail(err)
			} else {
				out := make([]byte, 8)
				putOID(out, oid)
				ok = reply(true, out)
			}
		case opDelete:
			if err := s.db.Delete(getOID(payload)); err != nil {
				ok = fail(err)
			} else {
				ok = reply(true, nil)
			}
		case opSetRoot:
			name, rest, err := getString(payload)
			if err != nil || len(rest) != 8 {
				ok = fail(ErrNotFound)
				break
			}
			if err := s.db.SetRoot(name, getOID(rest)); err != nil {
				ok = fail(err)
			} else {
				ok = reply(true, nil)
			}
		case opGetRoot:
			name, _, err := getString(payload)
			if err != nil {
				ok = fail(ErrNotFound)
				break
			}
			oid, err := s.db.GetRoot(name)
			if err != nil {
				ok = fail(err)
			} else {
				out := make([]byte, 8)
				putOID(out, oid)
				ok = reply(true, out)
			}
		case opListRoots:
			roots, err := s.db.Roots()
			if err != nil {
				ok = fail(err)
				break
			}
			names := make([]string, 0, len(roots))
			for n := range roots {
				names = append(names, n)
			}
			sort.Strings(names)
			var out []byte
			var cnt [4]byte
			binary.LittleEndian.PutUint32(cnt[:], uint32(len(names)))
			out = append(out, cnt[:]...)
			for _, n := range names {
				out = putString(out, n)
				var ob [8]byte
				putOID(ob[:], roots[n])
				out = append(out, ob[:]...)
			}
			ok = reply(true, out)
		case opListOIDs:
			oids, err := s.db.OIDs()
			if err != nil {
				ok = fail(err)
				break
			}
			out := make([]byte, 4+8*len(oids))
			binary.LittleEndian.PutUint32(out, uint32(len(oids)))
			for i, oid := range oids {
				putOID(out[4+8*i:], oid)
			}
			ok = reply(true, out)
		case opStat:
			st, err := s.db.Stats()
			if err != nil {
				ok = fail(err)
				break
			}
			out := make([]byte, 24)
			binary.LittleEndian.PutUint64(out, uint64(st.Objects))
			binary.LittleEndian.PutUint64(out[8:], uint64(st.LiveBytes))
			binary.LittleEndian.PutUint64(out[16:], uint64(st.FileBytes))
			ok = reply(true, out)
		default:
			ok = fail(ErrNotFound)
		}
		if !ok {
			return
		}
	}
}
