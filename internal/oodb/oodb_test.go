package oodb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func openEngine(t *testing.T) *DB {
	t.Helper()
	db, err := OpenDB(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestEngineStoreFetchDelete(t *testing.T) {
	db := openEngine(t)
	oid, err := db.Store(0, []byte("object one"))
	if err != nil || oid == 0 {
		t.Fatalf("Store = (%v, %v)", oid, err)
	}
	data, err := db.Fetch(oid)
	if err != nil || string(data) != "object one" {
		t.Fatalf("Fetch = (%q, %v)", data, err)
	}
	// Overwrite.
	if _, err := db.Store(oid, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, _ = db.Fetch(oid)
	if string(data) != "v2" {
		t.Fatalf("overwritten Fetch = %q", data)
	}
	if err := db.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Fetch(oid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Fetch deleted = %v", err)
	}
	if err := db.Delete(oid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestEngineOIDsAreUnique(t *testing.T) {
	db := openEngine(t)
	seen := map[OID]bool{}
	for i := 0; i < 100; i++ {
		oid, err := db.Store(0, []byte{byte(i)})
		if err != nil || seen[oid] {
			t.Fatalf("Store %d: oid=%v err=%v dup=%v", i, oid, err, seen[oid])
		}
		seen[oid] = true
	}
	oids, _ := db.OIDs()
	if len(oids) != 100 {
		t.Fatalf("OIDs = %d", len(oids))
	}
	// Ascending.
	for i := 1; i < len(oids); i++ {
		if oids[i] <= oids[i-1] {
			t.Fatal("OIDs not ascending")
		}
	}
}

func TestEnginePersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[OID][]byte{}
	for i := 0; i < 50; i++ {
		oid, _ := db.Store(0, []byte(fmt.Sprintf("payload-%d", i)))
		want[oid] = []byte(fmt.Sprintf("payload-%d", i))
	}
	// Overwrite and delete a few.
	var someOID OID
	for oid := range want {
		someOID = oid
		break
	}
	db.Store(someOID, []byte("updated"))
	want[someOID] = []byte("updated")
	for oid := range want {
		if oid != someOID {
			db.Delete(oid)
			delete(want, oid)
			break
		}
	}
	db.SetRoot("projects", someOID)
	db.Close()

	db2, err := OpenDB(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	oids, _ := db2.OIDs()
	if len(oids) != len(want) {
		t.Fatalf("reopened OIDs = %d, want %d", len(oids), len(want))
	}
	for oid, v := range want {
		got, err := db2.Fetch(oid)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("Fetch(%v) = (%q, %v), want %q", oid, got, err, v)
		}
	}
	root, err := db2.GetRoot("projects")
	if err != nil || root != someOID {
		t.Fatalf("GetRoot = (%v, %v)", root, err)
	}
	// New OIDs don't collide with old ones.
	fresh, _ := db2.Store(0, []byte("new"))
	if _, exists := want[fresh]; exists {
		t.Fatal("OID reuse after reopen")
	}
}

func TestEngineHiddenSegmentOverhead(t *testing.T) {
	db := openEngine(t)
	db.Store(0, []byte("tiny"))
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FileBytes < segmentSize {
		t.Fatalf("FileBytes = %d, want >= one segment (%d)", st.FileBytes, segmentSize)
	}
	if st.LiveBytes != 4 || st.Objects != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSchemaHashStableAndOrderIndependent(t *testing.T) {
	a := SchemaHash([]string{"Molecule(atoms:[]Atom)", "Calc(id:string)"})
	b := SchemaHash([]string{"Calc(id:string)", "Molecule(atoms:[]Atom)"})
	if a != b {
		t.Fatal("SchemaHash should be order independent")
	}
	c := SchemaHash([]string{"Calc(id:string,extra:int)", "Molecule(atoms:[]Atom)"})
	if a == c {
		t.Fatal("schema drift should change the hash")
	}
}

// startServer returns a connected client with the given schema hash.
func startServer(t *testing.T, serverSchema string) (string, *DB) {
	t.Helper()
	db, err := OpenDB(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db, serverSchema)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return addr, db
}

func TestClientServerRoundTrip(t *testing.T) {
	addr, _ := startServer(t, "schema-v1")
	c, err := Dial(addr, "schema-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	oid, err := c.Store(0, []byte("remote object"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.Fetch(oid)
	if err != nil || string(data) != "remote object" {
		t.Fatalf("Fetch = (%q, %v)", data, err)
	}
	if err := c.SetRoot("top", oid); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetRoot("top")
	if err != nil || got != oid {
		t.Fatalf("GetRoot = (%v, %v)", got, err)
	}
	roots, err := c.Roots()
	if err != nil || roots["top"] != oid {
		t.Fatalf("Roots = (%v, %v)", roots, err)
	}
	oids, err := c.OIDs()
	if err != nil || len(oids) != 1 || oids[0] != oid {
		t.Fatalf("OIDs = (%v, %v)", oids, err)
	}
	st, err := c.Stat()
	if err != nil || st.Objects != 1 {
		t.Fatalf("Stat = (%+v, %v)", st, err)
	}
	if err := c.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fetch(oid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Fetch deleted = %v", err)
	}
}

func TestSchemaMismatchRefused(t *testing.T) {
	addr, _ := startServer(t, "schema-v1")
	if _, err := Dial(addr, "schema-v2"); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("Dial with wrong schema = %v, want ErrSchemaMismatch", err)
	}
	// Matching schema still works afterwards.
	c, err := Dial(addr, "schema-v1")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestCacheForward(t *testing.T) {
	addr, db := startServer(t, "s")
	c, err := Dial(addr, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	oid, _ := c.Store(0, []byte("cached"))
	// Store primes the cache, so the first Fetch is already a hit.
	if _, err := c.Fetch(oid); err != nil {
		t.Fatal(err)
	}
	hits, misses := c.CacheStats()
	if hits != 1 || misses != 0 {
		t.Fatalf("stats after fetch = (%d, %d)", hits, misses)
	}
	// Even if the server-side object changes behind our back, the
	// cache-forward client serves the stale copy (the coupling/staleness
	// trade-off of this architecture).
	db.Store(oid, []byte("changed on server"))
	data, _ := c.Fetch(oid)
	if string(data) != "cached" {
		t.Fatalf("cache-forward fetch = %q, want stale %q", data, "cached")
	}
	// With the cache disabled every fetch hits the server.
	c.SetCache(false)
	data, _ = c.Fetch(oid)
	if string(data) != "changed on server" {
		t.Fatalf("uncached fetch = %q", data)
	}
}

type testMolecule struct {
	Formula string
	Charge  int
	Coords  [][3]float64
}

func TestStoreFetchObjGob(t *testing.T) {
	addr, _ := startServer(t, "s")
	c, err := Dial(addr, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := testMolecule{Formula: "H2O", Charge: 0, Coords: [][3]float64{{0, 0, 0}, {0.96, 0, 0}}}
	oid, err := c.StoreObj(0, in)
	if err != nil {
		t.Fatal(err)
	}
	var out testMolecule
	if err := c.FetchObj(oid, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("gob round trip: %+v vs %+v", in, out)
	}
}

func TestLargeObject(t *testing.T) {
	addr, _ := startServer(t, "s")
	c, _ := Dial(addr, "s")
	defer c.Close()
	big := bytes.Repeat([]byte{0xCD}, 2<<20)
	oid, err := c.Store(0, big)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCache(false)
	got, err := c.Fetch(oid)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("large fetch: %d bytes, %v", len(got), err)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _ := startServer(t, "s")
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			c, err := Dial(addr, "s")
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < 25; i++ {
				oid, err := c.Store(0, []byte(fmt.Sprintf("g%d-i%d", g, i)))
				if err != nil {
					done <- err
					return
				}
				if _, err := c.Fetch(oid); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestQuickEngineMapEquivalence drives the engine with random ops and
// compares against a reference map.
func TestQuickEngineMapEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := openEngine(t)
		ref := map[OID][]byte{}
		var oids []OID
		for i := 0; i < 150; i++ {
			switch rng.Intn(4) {
			case 0, 1: // store new
				payload := []byte(fmt.Sprintf("v%d", rng.Intn(1000)))
				oid, err := db.Store(0, payload)
				if err != nil {
					return false
				}
				ref[oid] = payload
				oids = append(oids, oid)
			case 2: // overwrite
				if len(oids) == 0 {
					continue
				}
				oid := oids[rng.Intn(len(oids))]
				if _, live := ref[oid]; !live {
					continue
				}
				payload := []byte(fmt.Sprintf("u%d", rng.Intn(1000)))
				if _, err := db.Store(oid, payload); err != nil {
					return false
				}
				ref[oid] = payload
			case 3: // delete
				if len(oids) == 0 {
					continue
				}
				oid := oids[rng.Intn(len(oids))]
				_, live := ref[oid]
				err := db.Delete(oid)
				if live != (err == nil) {
					return false
				}
				delete(ref, oid)
			}
		}
		got, err := db.OIDs()
		if err != nil || len(got) != len(ref) {
			return false
		}
		for oid, want := range ref {
			data, err := db.Fetch(oid)
			if err != nil || !bytes.Equal(data, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsGarbageFrames(t *testing.T) {
	addr, _ := startServer(t, "s")
	// A raw connection that never sends a valid HELLO.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")) // wrong protocol entirely
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	// The server must drop the connection without replying OK.
	n, _ := conn.Read(buf)
	if n > 0 && buf[0] == 0 {
		t.Fatalf("server accepted garbage handshake: % x", buf[:n])
	}
	conn.Close()
	// The server still serves well-formed clients afterwards.
	c, err := Dial(addr, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Store(0, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
}

func TestClientClosedOperations(t *testing.T) {
	addr, _ := startServer(t, "s")
	c, err := Dial(addr, "s")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Fetch(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Fetch after close = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestOversizeFrameRefused(t *testing.T) {
	// A frame header claiming more than the sanity bound must error
	// out rather than allocate.
	var buf bytes.Buffer
	hdr := make([]byte, 5)
	hdr[0] = byte(opFetch)
	binary.LittleEndian.PutUint32(hdr[1:], maxFrame+1)
	buf.Write(hdr)
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("oversize frame accepted")
	}
}
