// Package oodb is a small object-oriented database management system
// standing in for the commercial OODBMS that Ecce 1.5 was built on. It
// deliberately reproduces the properties the paper criticises:
//
//   - a proprietary binary object format (encoding/gob);
//   - tight schema/application coupling — client and server exchange a
//     schema fingerprint at connect time and refuse to talk across
//     versions, modelling the "schema evolution process made painful
//     by outdated schema/application compilation cycles";
//   - a cache-forward architecture — the client keeps fetched objects
//     in a local cache, the design the paper compares DAV against;
//   - hidden storage segments — extents are preallocated in fixed-size
//     segments, so the on-disk footprint exceeds the live data ("our
//     OODBMS also creates its own overhead, using hidden segments to
//     optimize performance").
//
// Objects are opaque byte payloads addressed by 64-bit OIDs, with a
// named-root table for entry points. The migration tool walks LISTOIDS
// to convert databases to the DAV store.
package oodb

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Errors shared by client and server.
var (
	// ErrSchemaMismatch is returned when client and server schema
	// fingerprints differ.
	ErrSchemaMismatch = errors.New("oodb: schema fingerprint mismatch")
	// ErrNotFound is returned for unknown OIDs or roots.
	ErrNotFound = errors.New("oodb: object not found")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("oodb: closed")
)

// OID identifies a stored object. OID 0 is never allocated.
type OID uint64

// String formats the OID the way the tooling prints it.
func (o OID) String() string { return fmt.Sprintf("oid:%016x", uint64(o)) }

// SchemaHash fingerprints a schema from class descriptors of the form
// "ClassName(field:type,field:type,...)". Order is normalized, so two
// applications compiled against the same class set agree — and any
// drift (added field, renamed class) changes the fingerprint, which
// makes the server refuse the connection, exactly the coupling failure
// the paper complains about.
func SchemaHash(classes []string) string {
	sorted := append([]string(nil), classes...)
	sort.Strings(sorted)
	sum := sha256.Sum256([]byte(strings.Join(sorted, ";")))
	return hex.EncodeToString(sum[:8])
}

// Stats summarizes a database's storage accounting.
type Stats struct {
	Objects   int   // live objects
	LiveBytes int64 // payload bytes (excluding record headers)
	FileBytes int64 // bytes occupied on disk, including hidden segments
}
