package oodb

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol: each message is [op byte][len uint32][payload].
// Replies are [status byte][len uint32][payload], status 0 = OK,
// 1 = error (payload is the message). This is deliberately a custom
// binary protocol — the kind of access mechanism the paper calls
// "incompatible" and "non-discoverable".

type op byte

const (
	opHello op = iota + 1
	opFetch
	opStore
	opDelete
	opSetRoot
	opGetRoot
	opListRoots
	opListOIDs
	opStat
)

const maxFrame = 1 << 30 // 1 GiB sanity bound

// writeFrame sends one framed message.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	hdr := make([]byte, 5)
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one framed message.
func readFrame(r io.Reader) (byte, []byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("oodb: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

func putOID(b []byte, oid OID) { binary.LittleEndian.PutUint64(b, uint64(oid)) }
func getOID(b []byte) OID      { return OID(binary.LittleEndian.Uint64(b)) }

// putString appends a length-prefixed string.
func putString(b []byte, s string) []byte {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(s)))
	return append(append(b, l[:]...), s...)
}

// getString reads a length-prefixed string, returning it and the rest.
func getString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("oodb: short string header")
	}
	n := binary.LittleEndian.Uint32(b)
	if int(n) > len(b)-4 {
		return "", nil, fmt.Errorf("oodb: short string body")
	}
	return string(b[4 : 4+n]), b[4+n:], nil
}
