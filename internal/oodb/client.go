package oodb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Client is a cache-forward OODB client: every fetched object is kept
// in a local object cache and served from memory on re-access, the
// architecture the paper compares the DAV request/response model
// against.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	cache  map[OID][]byte
	useCch bool
	hits   int64
	misses int64
	closed bool
}

// Dial connects, performs the schema handshake, and returns a client
// with the cache enabled.
func Dial(addr, schemaHash string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:   conn,
		r:      bufio.NewReader(conn),
		w:      bufio.NewWriter(conn),
		cache:  map[OID][]byte{},
		useCch: true,
	}
	if _, err := c.call(opHello, []byte(schemaHash)); err != nil {
		conn.Close()
		if errors.Is(err, errRemote) {
			return nil, fmt.Errorf("%w: %v", ErrSchemaMismatch, err)
		}
		return nil, err
	}
	return c, nil
}

// errRemote tags server-reported errors.
var errRemote = errors.New("oodb: server error")

// call sends one request and returns the reply payload.
func (c *Client) call(kind op, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if err := writeFrame(c.w, byte(kind), payload); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	status, reply, err := readFrame(c.r)
	if err != nil {
		return nil, err
	}
	if status != 0 {
		msg := string(reply)
		if msg == ErrNotFound.Error() || len(msg) > len(ErrNotFound.Error()) && msg[:len(ErrNotFound.Error())] == ErrNotFound.Error() {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, msg)
		}
		return nil, fmt.Errorf("%w: %s", errRemote, msg)
	}
	return reply, nil
}

// SetCache enables or disables the cache-forward object cache.
func (c *Client) SetCache(enabled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.useCch = enabled
	if !enabled {
		c.cache = map[OID][]byte{}
	}
}

// CacheStats returns cache hit/miss counters.
func (c *Client) CacheStats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Fetch returns an object's payload, from cache when possible.
func (c *Client) Fetch(oid OID) ([]byte, error) {
	c.mu.Lock()
	if c.useCch {
		if data, ok := c.cache[oid]; ok {
			c.hits++
			c.mu.Unlock()
			return append([]byte(nil), data...), nil
		}
		c.misses++
	}
	c.mu.Unlock()

	req := make([]byte, 8)
	putOID(req, oid)
	data, err := c.call(opFetch, req)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.useCch {
		c.cache[oid] = append([]byte(nil), data...)
	}
	c.mu.Unlock()
	return data, nil
}

// Store writes payload under oid (0 allocates) and returns the OID.
func (c *Client) Store(oid OID, payload []byte) (OID, error) {
	req := make([]byte, 8+len(payload))
	putOID(req, oid)
	copy(req[8:], payload)
	reply, err := c.call(opStore, req)
	if err != nil {
		return 0, err
	}
	if len(reply) != 8 {
		return 0, fmt.Errorf("oodb: bad store reply")
	}
	newOID := getOID(reply)
	c.mu.Lock()
	if c.useCch {
		c.cache[newOID] = append([]byte(nil), payload...)
	}
	c.mu.Unlock()
	return newOID, nil
}

// Delete removes an object (and evicts it from the cache).
func (c *Client) Delete(oid OID) error {
	req := make([]byte, 8)
	putOID(req, oid)
	if _, err := c.call(opDelete, req); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.cache, oid)
	c.mu.Unlock()
	return nil
}

// SetRoot binds a named root.
func (c *Client) SetRoot(name string, oid OID) error {
	req := putString(nil, name)
	var ob [8]byte
	putOID(ob[:], oid)
	_, err := c.call(opSetRoot, append(req, ob[:]...))
	return err
}

// GetRoot resolves a named root.
func (c *Client) GetRoot(name string) (OID, error) {
	reply, err := c.call(opGetRoot, putString(nil, name))
	if err != nil {
		return 0, err
	}
	return getOID(reply), nil
}

// Roots returns the full root table.
func (c *Client) Roots() (map[string]OID, error) {
	reply, err := c.call(opListRoots, nil)
	if err != nil {
		return nil, err
	}
	if len(reply) < 4 {
		return nil, fmt.Errorf("oodb: bad roots reply")
	}
	n := binary.LittleEndian.Uint32(reply)
	rest := reply[4:]
	out := make(map[string]OID, n)
	for i := uint32(0); i < n; i++ {
		var name string
		name, rest, err = getString(rest)
		if err != nil || len(rest) < 8 {
			return nil, fmt.Errorf("oodb: bad roots reply")
		}
		out[name] = getOID(rest)
		rest = rest[8:]
	}
	return out, nil
}

// OIDs lists every live object, ascending.
func (c *Client) OIDs() ([]OID, error) {
	reply, err := c.call(opListOIDs, nil)
	if err != nil {
		return nil, err
	}
	if len(reply) < 4 {
		return nil, fmt.Errorf("oodb: bad oids reply")
	}
	n := binary.LittleEndian.Uint32(reply)
	if len(reply) != int(4+8*n) {
		return nil, fmt.Errorf("oodb: bad oids reply")
	}
	oids := make([]OID, n)
	for i := range oids {
		oids[i] = getOID(reply[4+8*i:])
	}
	return oids, nil
}

// Stat returns the server's storage accounting.
func (c *Client) Stat() (Stats, error) {
	reply, err := c.call(opStat, nil)
	if err != nil {
		return Stats{}, err
	}
	if len(reply) != 24 {
		return Stats{}, fmt.Errorf("oodb: bad stat reply")
	}
	return Stats{
		Objects:   int(binary.LittleEndian.Uint64(reply)),
		LiveBytes: int64(binary.LittleEndian.Uint64(reply[8:])),
		FileBytes: int64(binary.LittleEndian.Uint64(reply[16:])),
	}, nil
}

// StoreObj gob-encodes v (the proprietary binary format) and stores
// it, returning the allocated OID.
func (c *Client) StoreObj(oid OID, v any) (OID, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0, fmt.Errorf("oodb: encode: %w", err)
	}
	return c.Store(oid, buf.Bytes())
}

// FetchObj fetches and gob-decodes an object into out (a pointer).
func (c *Client) FetchObj(oid OID, out any) error {
	data, err := c.Fetch(oid)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return fmt.Errorf("oodb: decode %s: %w", oid, err)
	}
	return nil
}

// Close shuts the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
