package oodb

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// segmentSize is the extent preallocation unit — the "hidden segments"
// overhead.
const segmentSize = 64 * 1024

const tombstoneLen = 0xFFFFFFFF

// DB is the storage engine: an extent file of [oid, len, payload]
// records with an in-memory index, plus a named-root table persisted
// beside it. It is safe for concurrent use.
type DB struct {
	mu     sync.Mutex
	f      *os.File
	dir    string
	index  map[OID]recRef
	roots  map[string]OID
	next   OID
	end    int64 // append offset
	live   int64 // live payload bytes
	closed bool
}

type recRef struct {
	off int64
	len uint32
}

// OpenDB opens or creates a database in dir.
func OpenDB(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, "extents.dat"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	db := &DB{f: f, dir: dir, index: map[OID]recRef{}, roots: map[string]OID{}, next: 1}
	if err := db.load(); err != nil {
		f.Close()
		return nil, err
	}
	return db, nil
}

// load rebuilds the index by scanning the extent file and reads the
// root table.
func (db *DB) load() error {
	r := bufio.NewReader(io.NewSectionReader(db.f, 0, 1<<62))
	var off int64
	hdr := make([]byte, 12)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			break // EOF or trailing preallocated zeroes
		}
		oid := OID(binary.LittleEndian.Uint64(hdr))
		length := binary.LittleEndian.Uint32(hdr[8:])
		if oid == 0 {
			break // preallocated zero region
		}
		if length == tombstoneLen {
			if ref, ok := db.index[oid]; ok {
				db.live -= int64(ref.len)
				delete(db.index, oid)
			}
			off += 12
		} else {
			if old, ok := db.index[oid]; ok {
				db.live -= int64(old.len)
			}
			db.index[oid] = recRef{off: off + 12, len: length}
			db.live += int64(length)
			if _, err := r.Discard(int(length)); err != nil {
				return fmt.Errorf("oodb: truncated record at %d: %w", off, err)
			}
			off += 12 + int64(length)
		}
		if oid >= db.next {
			db.next = oid + 1
		}
	}
	db.end = off

	rf, err := os.Open(filepath.Join(db.dir, "roots.gob"))
	if err == nil {
		defer rf.Close()
		if err := gob.NewDecoder(rf).Decode(&db.roots); err != nil {
			return fmt.Errorf("oodb: bad root table: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	return nil
}

// saveRootsLocked rewrites the root table. Caller holds db.mu.
func (db *DB) saveRootsLocked() error {
	tmp := filepath.Join(db.dir, "roots.gob.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(db.roots); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(db.dir, "roots.gob"))
}

// appendLocked writes a record and grows the file to the next segment
// boundary (the hidden-segment overhead). Caller holds db.mu.
func (db *DB) appendLocked(oid OID, payload []byte, tombstone bool) error {
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint64(hdr, uint64(oid))
	if tombstone {
		binary.LittleEndian.PutUint32(hdr[8:], tombstoneLen)
	} else {
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	}
	if _, err := db.f.WriteAt(hdr, db.end); err != nil {
		return err
	}
	if !tombstone {
		if _, err := db.f.WriteAt(payload, db.end+12); err != nil {
			return err
		}
		db.end += 12 + int64(len(payload))
	} else {
		db.end += 12
	}
	// Preallocate to the segment boundary.
	want := (db.end + segmentSize - 1) / segmentSize * segmentSize
	fi, err := db.f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() < want {
		if err := db.f.Truncate(want); err != nil {
			return err
		}
	}
	return nil
}

// Store writes payload under oid; oid 0 allocates a fresh OID. The
// (possibly new) OID is returned.
func (db *DB) Store(oid OID, payload []byte) (OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if oid == 0 {
		oid = db.next
		db.next++
	} else if oid >= db.next {
		db.next = oid + 1
	}
	off := db.end + 12
	if err := db.appendLocked(oid, payload, false); err != nil {
		return 0, err
	}
	if old, ok := db.index[oid]; ok {
		db.live -= int64(old.len)
	}
	db.index[oid] = recRef{off: off, len: uint32(len(payload))}
	db.live += int64(len(payload))
	return oid, nil
}

// Fetch returns the payload for oid.
func (db *DB) Fetch(oid OID) ([]byte, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	ref, ok := db.index[oid]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	buf := make([]byte, ref.len)
	if _, err := db.f.ReadAt(buf, ref.off); err != nil {
		return nil, err
	}
	return buf, nil
}

// Delete removes oid.
func (db *DB) Delete(oid OID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	ref, ok := db.index[oid]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	if err := db.appendLocked(oid, nil, true); err != nil {
		return err
	}
	delete(db.index, oid)
	db.live -= int64(ref.len)
	return nil
}

// SetRoot binds a name to an OID.
func (db *DB) SetRoot(name string, oid OID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.roots[name] = oid
	return db.saveRootsLocked()
}

// GetRoot resolves a named root.
func (db *DB) GetRoot(name string) (OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	oid, ok := db.roots[name]
	if !ok {
		return 0, fmt.Errorf("%w: root %q", ErrNotFound, name)
	}
	return oid, nil
}

// Roots returns the root table, sorted by name.
func (db *DB) Roots() (map[string]OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	out := make(map[string]OID, len(db.roots))
	for k, v := range db.roots {
		out[k] = v
	}
	return out, nil
}

// OIDs returns every live OID in ascending order.
func (db *DB) OIDs() ([]OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	oids := make([]OID, 0, len(db.index))
	for oid := range db.index {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	return oids, nil
}

// Stats reports storage accounting including hidden-segment overhead.
func (db *DB) Stats() (Stats, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return Stats{}, ErrClosed
	}
	fi, err := db.f.Stat()
	if err != nil {
		return Stats{}, err
	}
	rootsSize := int64(0)
	if rfi, err := os.Stat(filepath.Join(db.dir, "roots.gob")); err == nil {
		rootsSize = rfi.Size()
	}
	return Stats{
		Objects:   len(db.index),
		LiveBytes: db.live,
		FileBytes: fi.Size() + rootsSize,
	}, nil
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if err := db.f.Sync(); err != nil {
		db.f.Close()
		return err
	}
	return db.f.Close()
}
