// Package auth provides the HTTP Basic authentication layer the paper
// configured on its Apache/mod_dav test servers ("configured to use
// basic authentication"). Credentials are stored as salted SHA-256
// digests in an htpasswd-like file.
package auth

import (
	"bufio"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
)

// Users holds a credential table. The zero value is empty; an empty
// table authenticates nobody (use a nil *Users to disable auth).
type Users struct {
	mu      sync.RWMutex
	entries map[string]entry // user -> salted digest
}

type entry struct {
	salt   string
	digest string // hex(sha256(salt + ":" + password))
}

// NewUsers returns an empty credential table.
func NewUsers() *Users {
	return &Users{entries: map[string]entry{}}
}

func digest(salt, password string) string {
	sum := sha256.Sum256([]byte(salt + ":" + password))
	return hex.EncodeToString(sum[:])
}

// Set adds or replaces a user's password.
func (u *Users) Set(user, password string) error {
	if user == "" || strings.ContainsAny(user, ":\n") {
		return fmt.Errorf("auth: invalid user name %q", user)
	}
	var sb [8]byte
	if _, err := rand.Read(sb[:]); err != nil {
		return err
	}
	salt := hex.EncodeToString(sb[:])
	u.mu.Lock()
	defer u.mu.Unlock()
	u.entries[user] = entry{salt: salt, digest: digest(salt, password)}
	return nil
}

// Remove deletes a user.
func (u *Users) Remove(user string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.entries, user)
}

// Check verifies a user/password pair in constant time with respect to
// the stored digest.
func (u *Users) Check(user, password string) bool {
	u.mu.RLock()
	e, ok := u.entries[user]
	u.mu.RUnlock()
	if !ok {
		// Burn comparable time to avoid a user-existence oracle.
		subtle.ConstantTimeCompare([]byte(digest("x", password)), []byte(digest("x", "y")))
		return false
	}
	want := digest(e.salt, password)
	return subtle.ConstantTimeCompare([]byte(want), []byte(e.digest)) == 1
}

// Names returns the sorted user names.
func (u *Users) Names() []string {
	u.mu.RLock()
	defer u.mu.RUnlock()
	names := make([]string, 0, len(u.entries))
	for n := range u.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Save writes the table in "user:salt:digest" lines.
func (u *Users) Save(path string) error {
	u.mu.RLock()
	defer u.mu.RUnlock()
	var sb strings.Builder
	names := make([]string, 0, len(u.entries))
	for n := range u.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := u.entries[n]
		fmt.Fprintf(&sb, "%s:%s:%s\n", n, e.salt, e.digest)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o600)
}

// Load reads a table written by Save.
func Load(path string) (*Users, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	u := NewUsers()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("auth: %s:%d: malformed entry", path, lineNo)
		}
		u.entries[parts[0]] = entry{salt: parts[1], digest: parts[2]}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return u, nil
}

// Basic wraps h with HTTP Basic authentication against users. A nil
// users table disables authentication.
func Basic(h http.Handler, realm string, users *Users) http.Handler {
	if users == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		user, pass, ok := r.BasicAuth()
		if !ok || !users.Check(user, pass) {
			w.Header().Set("WWW-Authenticate", fmt.Sprintf("Basic realm=%q", realm))
			http.Error(w, "authentication required", http.StatusUnauthorized)
			return
		}
		h.ServeHTTP(w, r)
	})
}
