package auth

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetCheck(t *testing.T) {
	u := NewUsers()
	if err := u.Set("karen", "pw1"); err != nil {
		t.Fatal(err)
	}
	if !u.Check("karen", "pw1") {
		t.Fatal("valid credentials rejected")
	}
	if u.Check("karen", "pw2") || u.Check("nobody", "pw1") || u.Check("", "") {
		t.Fatal("invalid credentials accepted")
	}
	// Replacing a password invalidates the old one.
	u.Set("karen", "pw2")
	if u.Check("karen", "pw1") || !u.Check("karen", "pw2") {
		t.Fatal("password replacement broken")
	}
	u.Remove("karen")
	if u.Check("karen", "pw2") {
		t.Fatal("removed user accepted")
	}
}

func TestInvalidUserNames(t *testing.T) {
	u := NewUsers()
	for _, bad := range []string{"", "a:b", "a\nb"} {
		if err := u.Set(bad, "pw"); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	u := NewUsers()
	u.Set("alice", "a")
	u.Set("bob", "b")
	path := filepath.Join(t.TempDir(), "users")
	if err := u.Save(path); err != nil {
		t.Fatal(err)
	}
	u2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(u2.Names(), []string{"alice", "bob"}) {
		t.Fatalf("Names = %v", u2.Names())
	}
	if !u2.Check("alice", "a") || !u2.Check("bob", "b") || u2.Check("alice", "b") {
		t.Fatal("loaded table mismatch")
	}
}

func TestLoadMalformed(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	if err := writeFile(bad, "justonefield\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("malformed file accepted")
	}
	// Comments and blank lines are fine.
	good := filepath.Join(dir, "good")
	if err := writeFile(good, "# comment\n\nu:salt:digest\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(good); err != nil {
		t.Fatalf("comments rejected: %v", err)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o600)
}

func TestBasicMiddleware(t *testing.T) {
	users := NewUsers()
	users.Set("u", "p")
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	})
	srv := httptest.NewServer(Basic(inner, "realm", users))
	defer srv.Close()

	resp, _ := http.Get(srv.URL)
	if resp.StatusCode != 401 {
		t.Fatalf("unauthenticated = %d", resp.StatusCode)
	}
	resp.Body.Close()

	req, _ := http.NewRequest("GET", srv.URL, nil)
	req.SetBasicAuth("u", "p")
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != 200 {
		t.Fatalf("authenticated = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestBasicNilUsersDisablesAuth(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	})
	srv := httptest.NewServer(Basic(inner, "realm", nil))
	defer srv.Close()
	resp, _ := http.Get(srv.URL)
	if resp.StatusCode != 200 {
		t.Fatalf("nil users = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestQuickOnlyExactPasswordChecks: for arbitrary password pairs, Check
// succeeds iff the password matches exactly.
func TestQuickOnlyExactPasswordChecks(t *testing.T) {
	u := NewUsers()
	check := func(pw, attempt string) bool {
		if err := u.Set("quser", pw); err != nil {
			return false
		}
		got := u.Check("quser", attempt)
		return got == (pw == attempt)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
